module bbmig
go 1.23
