package bbmig_test

import (
	"fmt"
	"log"

	"bbmig"
	"bbmig/internal/blkback"
	"bbmig/internal/blockdev"
	"bbmig/internal/vm"
)

// Example migrates a small VM between two in-process hosts and verifies the
// destination holds an identical copy — the library's minimal end-to-end
// wiring. Production use replaces NewPipe with Dial/Listen/Accept over TCP
// and routes live guest I/O through a Router (see examples/webmigration).
func Example() {
	const blocks, pages, domain = 1024, 64, 1

	// Source machine: a running VM with some data on its local disk.
	srcDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
	buf := make([]byte, blockdev.BlockSize)
	for n := 0; n < blocks; n += 4 {
		buf[0] = byte(n)
		srcDisk.WriteBlock(n, buf)
	}
	guest := vm.New("guest", domain, pages, 512)
	src := bbmig.Host{VM: guest, Backend: blkback.NewBackend(srcDisk, domain)}

	// Destination machine: an empty VBD and a VM shell.
	dstDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
	dst := bbmig.Host{VM: vm.NewDestination(guest), Backend: blkback.NewBackend(dstDisk, domain)}

	connSrc, connDst := bbmig.NewPipe(64)
	go func() {
		if _, err := bbmig.MigrateSource(bbmig.Config{}, src, connSrc, nil); err != nil {
			log.Fatal(err)
		}
	}()
	res, err := bbmig.MigrateDest(bbmig.Config{}, dst, connDst)
	if err != nil {
		log.Fatal(err)
	}

	diffs, _ := blockdev.Diff(srcDisk, dstDisk)
	fmt.Println("disks identical:", len(diffs) == 0)
	fmt.Println("gate synchronized:", res.Gate.Synchronized())
	fmt.Println("destination running:", dst.VM.State())
	// Output:
	// disks identical: true
	// gate synchronized: true
	// destination running: running
}
