package bbmig_test

import (
	"fmt"
	"log"

	"bbmig"
	"bbmig/internal/blkback"
	"bbmig/internal/blockdev"
	"bbmig/internal/cluster"
	"bbmig/internal/hostd"
	"bbmig/internal/vm"
	"bbmig/internal/workload"
)

// Example migrates a small VM between two in-process hosts and verifies the
// destination holds an identical copy — the library's minimal end-to-end
// wiring. Production use replaces NewPipe with Dial/Listen/Accept over TCP
// and routes live guest I/O through a Router (see examples/webmigration).
func Example() {
	const blocks, pages, domain = 1024, 64, 1

	// Source machine: a running VM with some data on its local disk.
	srcDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
	buf := make([]byte, blockdev.BlockSize)
	for n := 0; n < blocks; n += 4 {
		buf[0] = byte(n)
		srcDisk.WriteBlock(n, buf)
	}
	guest := vm.New("guest", domain, pages, 512)
	src := bbmig.Host{VM: guest, Backend: blkback.NewBackend(srcDisk, domain)}

	// Destination machine: an empty VBD and a VM shell.
	dstDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
	dst := bbmig.Host{VM: vm.NewDestination(guest), Backend: blkback.NewBackend(dstDisk, domain)}

	connSrc, connDst := bbmig.NewPipe(64)
	go func() {
		if _, err := bbmig.MigrateSource(bbmig.Config{}, src, connSrc, nil); err != nil {
			log.Fatal(err)
		}
	}()
	res, err := bbmig.MigrateDest(bbmig.Config{}, dst, connDst)
	if err != nil {
		log.Fatal(err)
	}

	diffs, _ := blockdev.Diff(srcDisk, dstDisk)
	fmt.Println("disks identical:", len(diffs) == 0)
	fmt.Println("gate synchronized:", res.Gate.Synchronized())
	fmt.Println("destination running:", dst.VM.State())
	// Output:
	// disks identical: true
	// gate synchronized: true
	// destination running: running
}

// Example_cluster drains a host through the cluster orchestrator: three
// registered machines, two domains on the first, one Drain call that
// places, pre-syncs, and migrates every guest off it over loopback TCP.
func Example_cluster() {
	fleet := cluster.New(cluster.Options{
		GlobalBandwidth: 200e6, // concurrent migrations share 200 MB/s
	})
	hosts := make([]*hostd.Machine, 3)
	for i := range hosts {
		hosts[i] = hostd.NewMachine(fmt.Sprintf("rack%d", i))
		if err := fleet.Register(hosts[i], cluster.MemberOptions{Capacity: 4}); err != nil {
			log.Fatal(err)
		}
	}
	for _, name := range []string{"vm-a", "vm-b"} {
		if _, err := hosts[0].CreateDomain(name, 1024, 64, workload.Web, 1, false); err != nil {
			log.Fatal(err)
		}
	}

	res, err := fleet.Drain("rack0", cluster.DrainOptions{PreSync: true})
	if err != nil {
		log.Fatal(err)
	}
	for _, mv := range res.Moves {
		if mv.Err != nil {
			log.Fatal(mv.Err)
		}
		fmt.Printf("%s -> pre-synced %d blocks, cutover iteration 1 sent %d\n",
			mv.Domain, mv.Sync.Blocks, mv.Report.DiskIterations[0].Units)
	}
	fmt.Println("rack0 hosts", hosts[0].Load().Domains, "domains; evacuees spread:",
		hosts[1].Load().Domains+hosts[2].Load().Domains)
	// Output:
	// vm-a -> pre-synced 1024 blocks, cutover iteration 1 sent 0
	// vm-b -> pre-synced 1024 blocks, cutover iteration 1 sent 0
	// rack0 hosts 0 domains; evacuees spread: 2
}

// Example_dedup migrates a template-provisioned VM with content-addressed
// deduplication (Config.Dedup): half the disk cycles 8 template payloads,
// the rest was never written. Each template payload crosses the wire once,
// its repeats travel as 16-byte references, and the zero half is elided
// outright — yet the destination disk is byte-identical. hostd shares one
// DedupIndex per machine, so a second clone migrating to the same host
// would arrive almost entirely by reference.
func Example_dedup() {
	const blocks, pages, domain = 2048, 16, 1

	srcDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
	buf := make([]byte, blockdev.BlockSize)
	for n := 0; n < blocks/2; n++ {
		buf[0] = byte(n%8) + 1 // 8 distinct template payloads, endlessly repeated
		srcDisk.WriteBlock(n, buf)
	}
	guest := vm.New("clone", domain, pages, 512)
	src := bbmig.Host{VM: guest, Backend: blkback.NewBackend(srcDisk, domain)}

	dstDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
	dst := bbmig.Host{VM: vm.NewDestination(guest), Backend: blkback.NewBackend(dstDisk, domain)}

	cfg := bbmig.Config{Dedup: true, MaxExtentBlocks: 64}
	connSrc, connDst := bbmig.NewPipe(64)
	repCh := make(chan *bbmig.Report, 1)
	go func() {
		rep, err := bbmig.MigrateSource(cfg, src, connSrc, nil)
		if err != nil {
			log.Fatal(err)
		}
		repCh <- rep
	}()
	if _, err := bbmig.MigrateDest(cfg, dst, connDst); err != nil {
		log.Fatal(err)
	}
	rep := <-repCh

	diffs, _ := blockdev.Diff(srcDisk, dstDisk)
	fmt.Println("disks identical:", len(diffs) == 0)
	fmt.Println("blocks by reference:", rep.DedupBlocks)
	fmt.Println("moved less than a tenth of the image:",
		rep.MigratedBytes*10 < int64(blocks)*blockdev.BlockSize)
	// Output:
	// disks identical: true
	// blocks by reference: 1984
	// moved less than a tenth of the image: true
}
