// Incremental: the paper's §V telecommuting scenario. Migrate a workstation
// VM from the office to home, keep working there (the destination tracks
// every write in a fresh block-bitmap), then migrate back — transferring
// only the blocks dirtied at home instead of the whole disk.
//
//	go run ./examples/incremental
package main

import (
	"fmt"
	"log"
	"time"

	"bbmig"
	"bbmig/internal/blkback"
	"bbmig/internal/blockdev"
	"bbmig/internal/clock"
	"bbmig/internal/vm"
	"bbmig/internal/workload"
)

const (
	blocks = 8192 // 32 MiB disk
	pages  = 512
	domain = 1
)

// migrate runs one full TPM/IM migration between two hosts over a pipe and
// returns both reports.
func migrate(src, dst bbmig.Host, router *bbmig.Router, initial *bbmig.Bitmap) (*bbmig.Report, *bbmig.DestResult) {
	connSrc, connDst := bbmig.NewPipe(64)
	cfg := bbmig.Config{OnFreeze: router.Freeze, OnResume: router.ResumeGate}
	repCh := make(chan *bbmig.Report, 1)
	go func() {
		rep, err := bbmig.MigrateSource(cfg, src, connSrc, initial)
		if err != nil {
			log.Fatalf("source: %v", err)
		}
		repCh <- rep
	}()
	res, err := bbmig.MigrateDest(cfg, dst, connDst)
	if err != nil {
		log.Fatalf("destination: %v", err)
	}
	return <-repCh, res
}

func main() {
	officeDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
	homeDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
	guest := vm.New("workstation", domain, pages, 1024)

	office := bbmig.Host{VM: guest, Backend: blkback.NewBackend(officeDisk, domain)}
	router := bbmig.NewRouter(office.Backend.Submit)

	// A kernel-build-like workload stands in for the user's work session.
	stop := make(chan struct{})
	go func() {
		gen := workload.NewKernelBuild(blocks, 7)
		if _, err := workload.Replay(clock.NewReal(), gen, domain, 24*time.Hour, 150, router.Submit, stop); err != nil {
			log.Fatalf("workload: %v", err)
		}
	}()
	time.Sleep(100 * time.Millisecond)

	// Evening: office → home, whole system.
	home := bbmig.Host{VM: vm.NewDestination(guest), Backend: blkback.NewBackend(homeDisk, domain)}
	repOut, resOut := migrate(office, home, router, nil)
	fmt.Println("== primary migration office → home ==")
	fmt.Print(repOut.String())

	// Work from home for a while; the gate records every write.
	time.Sleep(300 * time.Millisecond)
	close(stop)
	time.Sleep(20 * time.Millisecond) // drain the last request

	// Morning: home → office, incrementally. The home side seeds its
	// backend with the fresh bitmap; only those blocks travel.
	backSrc := bbmig.Host{VM: home.VM, Backend: blkback.NewBackend(homeDisk, domain)}
	backSrc.Backend.SeedDirty(resOut.Gate.FreshBitmap())
	backDst := bbmig.Host{VM: vm.NewDestination(home.VM), Backend: blkback.NewBackend(officeDisk, domain)}
	router2 := bbmig.NewRouter(backSrc.Backend.Submit)
	repBack, _ := migrate(backSrc, backDst, router2, backSrc.Backend.SwapDirty())
	fmt.Println("== incremental migration home → office ==")
	fmt.Print(repBack.String())

	diskBytes := func(r *bbmig.Report) int64 {
		var total int64
		for _, it := range r.DiskIterations {
			total += it.Bytes
		}
		return total
	}
	fmt.Printf("IM moved %.1f%% of the primary migration's total bytes and %.1f%% of its disk bytes\n",
		float64(repBack.MigratedBytes)/float64(repOut.MigratedBytes)*100,
		float64(diskBytes(repBack))/float64(diskBytes(repOut))*100)
	diffs, err := blockdev.Diff(officeDisk, homeDisk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("office and home disks identical after the round trip: %v\n", len(diffs) == 0)
}
