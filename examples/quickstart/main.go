// Quickstart: migrate a small VM — disk, memory, CPU state — between two
// in-process hosts over a pipe transport, then verify the destination holds
// an identical copy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bbmig"
	"bbmig/internal/blkback"
	"bbmig/internal/blockdev"
	"bbmig/internal/vm"
)

func main() {
	const (
		blocks = 4096 // 16 MiB disk
		pages  = 512  // 2 MiB memory
		domain = 1
	)

	// Source machine: a running VM with a local disk holding some data.
	srcDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
	buf := make([]byte, blockdev.BlockSize)
	for n := 0; n < blocks; n += 2 {
		for i := range buf {
			buf[i] = byte(n + i)
		}
		if err := srcDisk.WriteBlock(n, buf); err != nil {
			log.Fatal(err)
		}
	}
	guest := vm.New("quickstart-guest", domain, pages, 1024)
	src := bbmig.Host{VM: guest, Backend: blkback.NewBackend(srcDisk, domain)}

	// Destination machine: an empty VBD of the same geometry and a VM shell.
	dstDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
	dst := bbmig.Host{VM: vm.NewDestination(guest), Backend: blkback.NewBackend(dstDisk, domain)}

	// Wire the two migration daemons together (TCP in production — see
	// examples/webmigration; an in-process pipe here).
	connSrc, connDst := bbmig.NewPipe(64)

	srcDone := make(chan *bbmig.Report, 1)
	go func() {
		rep, err := bbmig.MigrateSource(bbmig.Config{}, src, connSrc, nil)
		if err != nil {
			log.Fatalf("source: %v", err)
		}
		srcDone <- rep
	}()
	res, err := bbmig.MigrateDest(bbmig.Config{}, dst, connDst)
	if err != nil {
		log.Fatalf("destination: %v", err)
	}
	rep := <-srcDone

	fmt.Print(rep.String())
	diffs, err := blockdev.Diff(srcDisk, dstDisk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("disks identical: %v\n", len(diffs) == 0)
	fmt.Printf("CPU state intact: %v\n", res.CPU.Equal(guest.CPU()))
	fmt.Printf("destination VM: %v; source VM: %v (safe to power off)\n",
		dst.VM.State(), src.VM.State())
}
