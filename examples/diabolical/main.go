// Diabolical: the paper's §VI-C-3 experiment. Migrate a VM running a
// Bonnie++-like disk exerciser twice — once with unlimited migration
// bandwidth, once with the pre-copy rate capped — and watch the trade-off:
// the cap roughly halves the impact on the workload but lengthens the
// pre-copy phase. The laptop-scale run uses the real engine; the program
// then replays the same experiment at the paper's 39 070 MB scale on the
// virtual-clock simulator.
//
//	go run ./examples/diabolical
package main

import (
	"fmt"
	"log"
	"time"

	"bbmig"
	"bbmig/internal/blkback"
	"bbmig/internal/blockdev"
	"bbmig/internal/clock"
	"bbmig/internal/sim"
	"bbmig/internal/vm"
	"bbmig/internal/workload"
)

const (
	blocks = 16384 // 64 MiB disk
	pages  = 512
	domain = 1
)

// runOnce migrates under the diabolical workload with the given bandwidth
// cap and reports the migration plus achieved workload ops.
func runOnce(capBytesPerSec int64) (*bbmig.Report, int64) {
	srcDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
	dstDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
	guest := vm.New("diabolical", domain, pages, 1024)
	src := bbmig.Host{VM: guest, Backend: blkback.NewBackend(srcDisk, domain)}
	dst := bbmig.Host{VM: vm.NewDestination(guest), Backend: blkback.NewBackend(dstDisk, domain)}
	router := bbmig.NewRouter(src.Backend.Submit)

	stop := make(chan struct{})
	opsCh := make(chan int64, 1)
	go func() {
		gen := workload.NewDiabolical(blocks, 3)
		gen.FileBlocks = blocks / 4
		gen.FileAStart = blocks / 8
		gen.FileBStart = blocks/8 + gen.FileBlocks + 64
		gen.Reset()
		st, err := workload.Replay(clock.NewReal(), gen, domain, 24*time.Hour, 40, router.Submit, stop)
		if err != nil {
			log.Fatalf("workload: %v", err)
		}
		opsCh <- st.Writes + st.Reads
	}()
	time.Sleep(100 * time.Millisecond)

	connSrc, connDst := bbmig.NewPipe(64)
	cfg := bbmig.Config{
		OnFreeze:       router.Freeze,
		OnResume:       router.ResumeGate,
		BandwidthLimit: capBytesPerSec,
	}
	repCh := make(chan *bbmig.Report, 1)
	go func() {
		rep, err := bbmig.MigrateSource(cfg, src, connSrc, nil)
		if err != nil {
			log.Fatalf("source: %v", err)
		}
		repCh <- rep
	}()
	if _, err := bbmig.MigrateDest(cfg, dst, connDst); err != nil {
		log.Fatalf("destination: %v", err)
	}
	rep := <-repCh
	close(stop)
	return rep, <-opsCh
}

func main() {
	fmt.Println("== laptop scale (64 MiB disk, real engine over a pipe) ==")
	unlimited, opsU := runOnce(0)
	limited, opsL := runOnce(24 << 20) // 24 MiB/s cap
	fmt.Printf("unlimited: pre-copy %6.0f ms, downtime %3d ms, %d workload ops completed\n",
		unlimited.PreCopyTime.Seconds()*1000, unlimited.Downtime.Milliseconds(), opsU)
	fmt.Printf("capped:    pre-copy %6.0f ms, downtime %3d ms, %d workload ops completed\n",
		limited.PreCopyTime.Seconds()*1000, limited.Downtime.Milliseconds(), opsL)
	fmt.Printf("the cap lengthens pre-copy %.1fx while the workload keeps more of the disk\n\n",
		limited.PreCopyTime.Seconds()/unlimited.PreCopyTime.Seconds())

	fmt.Println("== paper scale (39 070 MB disk, virtual clock) ==")
	unl, lim := sim.Fig6(1)
	impact := func(r *sim.Result) float64 {
		free := r.WorkloadSeries.Mean(r.MigEnd+2*time.Minute, r.MigEnd+8*time.Minute)
		during := r.WorkloadSeries.Mean(r.MigStart, r.MigEnd)
		return (1 - during/free) * 100
	}
	fmt.Printf("unlimited: Bonnie++ impact %4.1f%%, pre-copy %4.0f s\n", impact(unl), unl.Report.PreCopyTime.Seconds())
	fmt.Printf("limited:   Bonnie++ impact %4.1f%%, pre-copy %4.0f s (+%.0f%%)\n",
		impact(lim), lim.Report.PreCopyTime.Seconds(),
		(lim.Report.PreCopyTime.Seconds()/unl.Report.PreCopyTime.Seconds()-1)*100)
	fmt.Println("paper §VI-C-3: impact reduced about 50%, pre-copy about 37% longer")
}
