// Multihost: the paper's §VII future-work scenario made concrete, then
// pushed one layer up. Three host daemons (the Domain0 toolstack role) pass
// a live web-serving VM around office → lab → datacenter → office over real
// TCP; the per-domain vault travels with the VM, so every hop to a host that
// already holds an old copy of the disk is automatically incremental — not
// just the straight A→B→A round trip the paper's IM implementation
// supported.
//
// The second act is cluster maintenance: the office host must go down, so
// the fleet's orchestrator (internal/cluster) drains it — every hosted
// domain is pre-synced to a placement-chosen target while still running,
// then cut over incrementally. The toured webvm's evacuation is nearly free:
// both remaining hosts already hold old copies.
//
//	go run ./examples/multihost
package main

import (
	"fmt"
	"log"
	"time"

	"bbmig/internal/blockdev"
	"bbmig/internal/cluster"
	"bbmig/internal/core"
	"bbmig/internal/hostd"
	"bbmig/internal/transport"
	"bbmig/internal/workload"
)

const (
	blocks = 8192 // 32 MiB disk
	pages  = 256
)

// hop migrates the domain between two machines over loopback TCP.
func hop(src, dst *hostd.Machine, domain string) {
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	errCh := make(chan error, 1)
	go func() {
		_, err := dst.ServeOne(l, core.Config{})
		errCh <- err
	}()
	rep, err := src.MigrateOut(domain, dst.Name, l.Addr().String(), core.Config{})
	if err != nil {
		log.Fatalf("%s → %s: %v", src.Name, dst.Name, err)
	}
	if err := <-errCh; err != nil {
		log.Fatalf("%s → %s (dest): %v", src.Name, dst.Name, err)
	}
	kind := "full"
	if rep.Scheme == "IM" && rep.DiskIterations[0].Units < blocks {
		kind = "INCREMENTAL"
	}
	fmt.Printf("%-8s → %-10s %11s: sent %5d blocks in iteration 1, downtime %2d ms, %.1f MB total\n",
		src.Name, dst.Name, kind, rep.DiskIterations[0].Units, rep.Downtime.Milliseconds(), rep.MigratedMB())
}

func main() {
	office := hostd.NewMachine("office")
	lab := hostd.NewMachine("lab")
	dc := hostd.NewMachine("datacenter")

	if _, err := office.CreateDomain("webvm", blocks, pages, workload.Web, 1, true); err != nil {
		log.Fatal(err)
	}
	fmt.Println("webvm serving on office; migrating it around the fleet:")
	work := func() { time.Sleep(60 * time.Millisecond) } // the guest keeps serving

	work()
	hop(office, lab, "webvm") // first visit: full disk
	work()
	hop(lab, dc, "webvm") // first visit: full disk
	work()
	hop(dc, office, "webvm") // office holds an old copy: incremental
	work()
	hop(office, lab, "webvm") // lab holds an old copy too: incremental
	work()
	hop(lab, office, "webvm") // straight back: incremental

	d, ok := office.Domain("webvm")
	if !ok {
		log.Fatal("webvm lost")
	}
	footprint := 0
	if a, ok := d.Disk().(blockdev.Allocator); ok {
		footprint = a.AllocatedBitmap().Count()
	}
	fmt.Printf("\nwebvm finished its tour on %s, VM %v, disk footprint %d blocks\n",
		office.Name, d.VM().State(), footprint)
	fmt.Println("every revisit transferred only the divergence — the paper's §VII goal")

	// --- Act two: planned maintenance. The office host must go down, so the
	// cluster orchestrator drains it: every hosted domain is pre-synced to a
	// scored target while still serving, then cut over incrementally.
	for _, name := range []string{"batchvm", "buildvm"} {
		if _, err := office.CreateDomain(name, blocks, pages, workload.Stream, 2, true); err != nil {
			log.Fatal(err)
		}
	}
	fleet := cluster.New(cluster.Options{
		GlobalBandwidth: 400e6, // shared pre-copy budget for the drain
		BaseConfig:      core.Config{MaxExtentBlocks: 64},
	})
	for _, m := range []*hostd.Machine{office, lab, dc} {
		if err := fleet.Register(m, cluster.MemberOptions{Capacity: 4}); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("\noffice needs maintenance: draining %d domains through the orchestrator\n",
		office.Load().Domains)
	res, err := fleet.Drain("office", cluster.DrainOptions{PreSync: true})
	if err != nil {
		log.Fatal(err)
	}
	for _, mv := range res.Moves {
		if mv.Err != nil {
			log.Fatalf("drain move %s: %v", mv.Domain, mv.Err)
		}
		fmt.Printf("%-8s → %-10s presync %5d blocks, cutover iteration 1: %4d blocks, downtime %2d ms\n",
			mv.Domain, mv.Target, mv.Sync.Blocks, mv.Report.DiskIterations[0].Units, mv.Report.Downtime.Milliseconds())
	}
	fmt.Printf("office drained in %v; it now hosts %d domains and may power off\n",
		res.Makespan.Round(time.Millisecond), office.Load().Domains)
	for _, m := range []*hostd.Machine{lab, dc} {
		for _, name := range m.Domains() {
			if d, ok := m.Domain(name); ok {
				d.StopWorkload()
			}
		}
	}
	fmt.Println("the orchestrator placed, budgeted, and pre-synced every move — the paper's building block at fleet scale")
}
