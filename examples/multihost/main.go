// Multihost: the paper's §VII future-work scenario made concrete. Three
// host daemons (the Domain0 toolstack role) pass a live web-serving VM
// around office → lab → datacenter → office over real TCP. The per-domain
// vault travels with the VM, so every hop to a host that already holds an
// old copy of the disk is automatically incremental — not just the straight
// A→B→A round trip the paper's IM implementation supported.
//
//	go run ./examples/multihost
package main

import (
	"fmt"
	"log"
	"time"

	"bbmig/internal/core"
	"bbmig/internal/hostd"
	"bbmig/internal/transport"
	"bbmig/internal/workload"
)

const (
	blocks = 8192 // 32 MiB disk
	pages  = 256
)

// hop migrates the domain between two machines over loopback TCP.
func hop(src, dst *hostd.Machine, domain string) {
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	errCh := make(chan error, 1)
	go func() {
		_, err := dst.ServeOne(l, core.Config{})
		errCh <- err
	}()
	rep, err := src.MigrateOut(domain, dst.Name, l.Addr().String(), core.Config{})
	if err != nil {
		log.Fatalf("%s → %s: %v", src.Name, dst.Name, err)
	}
	if err := <-errCh; err != nil {
		log.Fatalf("%s → %s (dest): %v", src.Name, dst.Name, err)
	}
	kind := "full"
	if rep.Scheme == "IM" && rep.DiskIterations[0].Units < blocks {
		kind = "INCREMENTAL"
	}
	fmt.Printf("%-8s → %-10s %11s: sent %5d blocks in iteration 1, downtime %2d ms, %.1f MB total\n",
		src.Name, dst.Name, kind, rep.DiskIterations[0].Units, rep.Downtime.Milliseconds(), rep.MigratedMB())
}

func main() {
	office := hostd.NewMachine("office")
	lab := hostd.NewMachine("lab")
	dc := hostd.NewMachine("datacenter")

	if _, err := office.CreateDomain("webvm", blocks, pages, workload.Web, 1, true); err != nil {
		log.Fatal(err)
	}
	fmt.Println("webvm serving on office; migrating it around the fleet:")
	work := func() { time.Sleep(60 * time.Millisecond) } // the guest keeps serving

	work()
	hop(office, lab, "webvm") // first visit: full disk
	work()
	hop(lab, dc, "webvm") // first visit: full disk
	work()
	hop(dc, office, "webvm") // office holds an old copy: incremental
	work()
	hop(office, lab, "webvm") // lab holds an old copy too: incremental
	work()
	hop(lab, office, "webvm") // straight back: incremental

	d, ok := office.Domain("webvm")
	if !ok {
		log.Fatal("webvm lost")
	}
	d.StopWorkload()
	fmt.Printf("\nwebvm finished its tour on %s, VM %v, disk footprint %d blocks\n",
		office.Name, d.VM().State(), d.Disk().WrittenBlocks())
	fmt.Println("every revisit transferred only the divergence — the paper's §VII goal")
}
