// Webmigration: migrate a VM over real TCP while a SPECweb-like dynamic web
// workload keeps hammering its disk — the paper's §VI-C-1 scenario at
// laptop scale. The workload never stops: it is re-routed from the source
// backend to the destination's post-copy gate at the freeze point, and any
// read of a not-yet-transferred block transparently pulls it from the
// source.
//
//	go run ./examples/webmigration
package main

import (
	"fmt"
	"log"
	"time"

	"bbmig"
	"bbmig/internal/blkback"
	"bbmig/internal/blockdev"
	"bbmig/internal/clock"
	"bbmig/internal/metrics"
	"bbmig/internal/vm"
	"bbmig/internal/workload"
)

func main() {
	const (
		blocks  = 8192 // 32 MiB disk
		pages   = 1024 // 4 MiB memory
		domain  = 1
		speedup = 100 // compress workload time 100x
	)

	srcDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
	guest := vm.New("webserver", domain, pages, 2048)
	backend := blkback.NewBackend(srcDisk, domain)
	router := bbmig.NewRouter(backend.Submit)
	src := bbmig.Host{VM: guest, Backend: backend}

	dstDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
	dst := bbmig.Host{VM: vm.NewDestination(guest), Backend: blkback.NewBackend(dstDisk, domain)}

	// Destination daemon on a real TCP socket.
	l, err := bbmig.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	dstDone := make(chan *bbmig.DestResult, 1)
	// Track request latency per migration phase — the paper's §III-A
	// disruption-time metric, as a client of the web server would see it.
	lat := metrics.NewLatencyTracker("before")
	cfg := bbmig.Config{
		OnFreeze: func() {
			lat.SetWindow("freeze+post")
			router.Freeze()
		},
		OnResume: router.ResumeGate,
	}
	go func() {
		conn, err := bbmig.Accept(l)
		if err != nil {
			log.Fatalf("accept: %v", err)
		}
		defer conn.Close()
		res, err := bbmig.MigrateDest(cfg, dst, conn)
		if err != nil {
			log.Fatalf("destination: %v", err)
		}
		dstDone <- res
	}()

	// The web workload runs before, during, and after the migration.
	stop := make(chan struct{})
	wlDone := make(chan workload.ReplayStats, 1)
	go func() {
		gen := workload.NewWebServer(blocks, 42)
		timed := func(req blockdev.Request) error {
			start := time.Now()
			err := router.Submit(req)
			lat.Record(time.Since(start))
			return err
		}
		st, err := workload.Replay(clock.NewReal(), gen, domain, 24*time.Hour, speedup, timed, stop)
		if err != nil {
			log.Fatalf("workload: %v", err)
		}
		wlDone <- st
	}()
	time.Sleep(200 * time.Millisecond) // build up some dirty state first

	conn, err := bbmig.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	fmt.Printf("migrating %q over %s while the web workload runs...\n", guest.Name, l.Addr())
	rep, err := bbmig.MigrateSource(cfg, src, conn, nil)
	if err != nil {
		log.Fatalf("source: %v", err)
	}
	res := <-dstDone

	// Keep serving from the destination for a moment, then stop.
	time.Sleep(100 * time.Millisecond)
	lat.SetWindow("after")
	time.Sleep(100 * time.Millisecond)
	close(stop)
	st := <-wlDone

	fmt.Print(rep.String())
	fmt.Printf("workload: %d writes, %d reads across the migration — client-visible stall: %v\n",
		st.Writes, st.Reads, router.StallObserved())
	fmt.Printf("post-copy served %d pulls; %d stale pushes dropped\n",
		res.Report.BlocksPulled, res.Report.StalePushes)
	fmt.Printf("destination accumulated %d fresh blocks for a later incremental migration back\n",
		res.Gate.FreshBitmap().Count())
	fmt.Printf("request latency per phase (disruption view, §III-A):\n%s", lat.Summary())
}
