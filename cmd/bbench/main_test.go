package main

import "testing"

// TestExperimentPrintersRun smoke-runs every experiment printer except the
// slow Table III microbenchmark; each must complete without panicking.
// Output correctness is asserted in internal/sim's tests — this covers the
// rendering glue.
func TestExperimentPrintersRun(t *testing.T) {
	for name, fn := range map[string]func(int64, int){
		"table1":               table1,
		"table2":               table2,
		"fig5":                 fig5,
		"fig6":                 fig6,
		"iters":                iters,
		"locality":             locality,
		"granularity":          granularity,
		"downtime-granularity": downtimeGranularity,
		"availability":         availability,
		"schemes":              schemes,
	} {
		name, fn := name, fn
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			fn(1, 5)
		})
	}
}
