package main

import (
	"encoding/json"
	"os"
	"testing"
)

// TestExperimentPrintersRun smoke-runs every experiment printer except the
// slow Table III microbenchmark; each must complete without panicking.
// Output correctness is asserted in internal/sim's tests — this covers the
// rendering glue.
func TestExperimentPrintersRun(t *testing.T) {
	for name, fn := range map[string]func(int64, int){
		"table1":               table1,
		"table2":               table2,
		"fig5":                 fig5,
		"fig6":                 fig6,
		"iters":                iters,
		"locality":             locality,
		"granularity":          granularity,
		"downtime-granularity": downtimeGranularity,
		"availability":         availability,
		"schemes":              schemes,
	} {
		name, fn := name, fn
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			fn(1, 5)
		})
	}
}

// writeSnapshot writes a minimal BENCH_*.json for comparator tests.
func writeSnapshot(t *testing.T, path string, rates map[string]float64) {
	t.Helper()
	f := benchFile{Schema: "bbmig-bench/v1"}
	for name, mbps := range rates {
		f.Benchmarks = append(f.Benchmarks, benchResult{Name: name, MBPerSec: mbps})
	}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCompareBenchGate covers the regression comparator: within-tolerance
// drops and improvements pass, beyond-tolerance drops and missing headline
// rows fail, and non-headline rows are ignored.
func TestCompareBenchGate(t *testing.T) {
	dir := t.TempDir()
	base := dir + "/base.json"
	writeSnapshot(t, base, map[string]float64{
		"MigrateModeledLink/default-per-block": 100,
		"MigrateModeledLink/adaptive-policy":   1000,
		"SomethingElse/unrelated":              50,
	})

	ok := dir + "/ok.json"
	writeSnapshot(t, ok, map[string]float64{
		"MigrateModeledLink/default-per-block": 80,   // -20%: within 25%
		"MigrateModeledLink/adaptive-policy":   1200, // improvement
		"SomethingElse/unrelated":              1,    // ignored: not headline
	})
	if err := compareBench(ok, base, 25); err != nil {
		t.Fatalf("within-tolerance snapshot failed the gate: %v", err)
	}

	bad := dir + "/bad.json"
	writeSnapshot(t, bad, map[string]float64{
		"MigrateModeledLink/default-per-block": 70, // -30%: regression
		"MigrateModeledLink/adaptive-policy":   1000,
	})
	if err := compareBench(bad, base, 25); err == nil {
		t.Fatal("30% drop passed a 25% gate")
	}

	missing := dir + "/missing.json"
	writeSnapshot(t, missing, map[string]float64{
		"MigrateModeledLink/default-per-block": 100,
	})
	if err := compareBench(missing, base, 25); err == nil {
		t.Fatal("snapshot missing a headline benchmark passed the gate")
	}

	empty := dir + "/empty.json"
	writeSnapshot(t, empty, nil)
	if err := compareBench(base, empty, 25); err == nil {
		t.Fatal("baseline with no headline rows should fail loudly")
	}
}

// writeSnapshotV11 writes a v1.1 snapshot carrying allocation data.
func writeSnapshotV11(t *testing.T, path string, rows []benchResult) {
	t.Helper()
	f := benchFile{Schema: "bbmig-bench/v1.1", Benchmarks: rows}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCompareBenchAllocGate covers the allocs_per_op arm of the gate: a
// pre-bump v1 baseline without allocation data gates nothing, growth beyond
// tolerance fails, shrinkage and within-tolerance growth pass, and a row
// that silently loses its allocation data fails loudly.
func TestCompareBenchAllocGate(t *testing.T) {
	dir := t.TempDir()

	// Old-schema baseline: mb_per_s only. The new snapshot's extra fields
	// and bumped schema must not break the comparison.
	oldBase := dir + "/old.json"
	writeSnapshot(t, oldBase, map[string]float64{"MigrateModeledLink/default-per-block": 100})
	v11 := dir + "/v11.json"
	writeSnapshotV11(t, v11, []benchResult{
		{Name: "MigrateModeledLink/default-per-block", MBPerSec: 95, AllocsPerOp: 5000},
		{Name: "MigrateTCP/cold", MBPerSec: 900, AllocsPerOp: 2000},
	})
	if err := compareBench(v11, oldBase, 25); err != nil {
		t.Fatalf("v1.1 snapshot vs v1 baseline failed the gate: %v", err)
	}

	base := dir + "/base.json"
	writeSnapshotV11(t, base, []benchResult{
		{Name: "MigrateModeledLink/default-per-block", MBPerSec: 100, AllocsPerOp: 5000},
		{Name: "MigrateTCP/cold", MBPerSec: 900, AllocsPerOp: 2000},
		{Name: "SomethingElse/unrelated", MBPerSec: 50, AllocsPerOp: 10},
	})

	ok := dir + "/ok.json"
	writeSnapshotV11(t, ok, []benchResult{
		{Name: "MigrateModeledLink/default-per-block", MBPerSec: 100, AllocsPerOp: 6000}, // +20%: within 25%
		{Name: "MigrateTCP/cold", MBPerSec: 2000, AllocsPerOp: 100},                      // improvement
		{Name: "SomethingElse/unrelated", MBPerSec: 50, AllocsPerOp: 10000},              // ignored: not gated
	})
	if err := compareBench(ok, base, 25); err != nil {
		t.Fatalf("within-tolerance alloc growth failed the gate: %v", err)
	}

	bad := dir + "/bad.json"
	writeSnapshotV11(t, bad, []benchResult{
		{Name: "MigrateModeledLink/default-per-block", MBPerSec: 100, AllocsPerOp: 5000},
		{Name: "MigrateTCP/cold", MBPerSec: 900, AllocsPerOp: 3000}, // +50%: regression
	})
	if err := compareBench(bad, base, 25); err == nil {
		t.Fatal("50% alloc growth passed a 25% gate")
	}

	lost := dir + "/lost.json"
	writeSnapshotV11(t, lost, []benchResult{
		{Name: "MigrateModeledLink/default-per-block", MBPerSec: 100, AllocsPerOp: 5000},
		{Name: "MigrateTCP/cold", MBPerSec: 900}, // allocs_per_op vanished
	})
	if err := compareBench(lost, base, 25); err == nil {
		t.Fatal("snapshot that dropped a gated row's allocation data passed")
	}
}

// TestCompareBenchBadFiles: unreadable or malformed snapshots error.
func TestCompareBenchBadFiles(t *testing.T) {
	dir := t.TempDir()
	good := dir + "/good.json"
	writeSnapshot(t, good, map[string]float64{"MigrateModeledLink/x": 1})
	if err := compareBench(dir+"/absent.json", good, 25); err == nil {
		t.Fatal("missing new snapshot accepted")
	}
	badPath := dir + "/bad.json"
	if err := os.WriteFile(badPath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := compareBench(good, badPath, 25); err == nil {
		t.Fatal("malformed baseline accepted")
	}
	wrongSchema := dir + "/schema.json"
	if err := os.WriteFile(wrongSchema, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := compareBench(good, wrongSchema, 25); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

// TestFaultsPrinterRuns smoke-runs the fault-sweep printer.
func TestFaultsPrinterRuns(t *testing.T) {
	faults(1, 5)
}
