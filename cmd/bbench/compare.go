package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// This file is the bench-regression gate: CI regenerates the BENCH_*.json
// snapshot on every run and compares its headline throughput rows against
// the committed baseline, failing the build on a drop larger than the
// tolerance — so a perf regression is a red check, not an archaeology
// exercise three PRs later.

// headlinePrefix selects the benchmarks the gate enforces: the real-engine
// modeled-link migrations. The simulator rows are deterministic metrics, not
// throughput, and are reported but never gated.
//
// Caveat on cross-machine noise: the committed baseline was generated on a
// developer machine, CI compares on a runner. The default-per-block row is
// dominated by the modeled per-frame stall and is hardware-stable; the
// extent/adaptive rows are partly memcpy-bound and inherit some host speed.
// The 25% default tolerance absorbs typical ubuntu-latest variance — if the
// gate flakes on runner churn, regenerate the baseline on CI hardware
// rather than widening the tolerance.
const headlinePrefix = "MigrateModeledLink/"

// allocGatePrefixes selects the benchmarks whose allocs_per_op the gate
// enforces. Unlike MB/s, an allocation count is hardware-independent — the
// same binary allocates the same on a laptop and a CI runner — so the
// loopback-TCP rows, too noisy for a cross-machine throughput gate, are
// gated on allocations: an accidental per-block allocation on the hot path
// multiplies the count by orders of magnitude and trips the same 25%
// tolerance long before it shows up in wall-clock. The SnapshotScan rows
// ride the same gate: the live-contended scan is allocation-free and the
// snapshot scan allocates only CoW copies, so a leak in the cache's
// Get/Release or snapshot overlay paths trips it immediately. The
// MigrateWAN rows pin the delta path's allocation budget — signatures,
// diffs, and patch application all run per-extent, so a per-chunk leak
// multiplies fast.
var allocGatePrefixes = []string{"MigrateModeledLink/", "MigrateTCP/", "MigrateWAN/", "SnapshotScan/"}

// metricGates lists deterministic simulator metrics the gate enforces,
// higher-is-better: a drop beyond the tolerance fails the build. The fleet
// row pins the autopilot's headline — predictive drain speedup over
// reactive on the diurnal shape — so a forecaster or policy regression is a
// red check, not a quiet table change.
var metricGates = map[string]string{
	"SimFleetSweep/diurnal-predictive": "speedup",
}

// loadBenchFile reads a BENCH_*.json snapshot. Any schema in the
// "bbmig-bench/v1" family is accepted — v1 snapshots simply carry no
// allocs_per_op, and the alloc gate skips rows the baseline lacks.
func loadBenchFile(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if !strings.HasPrefix(f.Schema, "bbmig-bench/v1") {
		return nil, fmt.Errorf("%s: unknown schema %q", path, f.Schema)
	}
	return &f, nil
}

// mbPerSec indexes a snapshot's throughput rows by name.
func mbPerSec(f *benchFile) map[string]float64 {
	out := make(map[string]float64)
	for _, b := range f.Benchmarks {
		if b.MBPerSec > 0 {
			out[b.Name] = b.MBPerSec
		}
	}
	return out
}

// allocsPerOp indexes a snapshot's allocation rows by name.
func allocsPerOp(f *benchFile) map[string]float64 {
	out := make(map[string]float64)
	for _, b := range f.Benchmarks {
		if b.AllocsPerOp > 0 {
			out[b.Name] = b.AllocsPerOp
		}
	}
	return out
}

// allocGated reports whether name's allocs_per_op is regression-gated.
func allocGated(name string) bool {
	for _, p := range allocGatePrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// compareBench gates newPath against basePath: every headline benchmark
// present in the baseline must be present in the new snapshot and within
// maxRegressPct of the baseline's MB/s, and every alloc-gated row the
// baseline carries allocation data for must not have grown its allocs/op
// by more than maxRegressPct. Improvements and new benchmarks pass freely.
func compareBench(newPath, basePath string, maxRegressPct float64) error {
	newFile, err := loadBenchFile(newPath)
	if err != nil {
		return err
	}
	baseFile, err := loadBenchFile(basePath)
	if err != nil {
		return err
	}
	newRates, baseRates := mbPerSec(newFile), mbPerSec(baseFile)

	var failures []string
	checked := 0
	for name, base := range baseRates {
		if !strings.HasPrefix(name, headlinePrefix) {
			continue
		}
		checked++
		got, ok := newRates[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from %s", name, newPath))
			continue
		}
		drop := (base - got) / base * 100
		status := "ok"
		if drop > maxRegressPct {
			status = "REGRESSION"
			failures = append(failures,
				fmt.Sprintf("%s: %.1f MB/s vs baseline %.1f MB/s (-%.1f%%, tolerance %.0f%%)",
					name, got, base, drop, maxRegressPct))
		}
		fmt.Printf("gate %-44s base %9.1f MB/s  now %9.1f MB/s  (%+.1f%%) %s\n",
			name, base, got, -drop, status)
	}
	if checked == 0 {
		return fmt.Errorf("baseline %s has no %s* benchmarks to gate against", basePath, headlinePrefix)
	}

	newAllocs, baseAllocs := allocsPerOp(newFile), allocsPerOp(baseFile)
	allocChecked := 0
	for name, base := range baseAllocs {
		if !allocGated(name) {
			continue
		}
		allocChecked++
		got, ok := newAllocs[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: allocs_per_op missing from %s", name, newPath))
			continue
		}
		growth := (got - base) / base * 100
		status := "ok"
		if growth > maxRegressPct {
			status = "REGRESSION"
			failures = append(failures,
				fmt.Sprintf("%s: %.0f allocs/op vs baseline %.0f (+%.1f%%, tolerance %.0f%%)",
					name, got, base, growth, maxRegressPct))
		}
		fmt.Printf("gate %-44s base %9.0f allocs/op  now %9.0f allocs/op  (%+.1f%%) %s\n",
			name, base, got, growth, status)
	}

	// Deterministic metric floors: gated only when the baseline carries the
	// row, so a pre-fleet baseline still compares clean.
	metric := func(f *benchFile, name, key string) (float64, bool) {
		for _, b := range f.Benchmarks {
			if b.Name == name {
				v, ok := b.Metrics[key]
				return v, ok
			}
		}
		return 0, false
	}
	metricChecked := 0
	for name, key := range metricGates {
		base, ok := metric(baseFile, name, key)
		if !ok || base <= 0 {
			continue
		}
		metricChecked++
		got, ok := metric(newFile, name, key)
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: metric %q missing from %s", name, key, newPath))
			continue
		}
		drop := (base - got) / base * 100
		status := "ok"
		if drop > maxRegressPct {
			status = "REGRESSION"
			failures = append(failures,
				fmt.Sprintf("%s: %s %.2f vs baseline %.2f (-%.1f%%, tolerance %.0f%%)",
					name, key, got, base, drop, maxRegressPct))
		}
		fmt.Printf("gate %-44s base %9.2f %-9s  now %9.2f  (%+.1f%%) %s\n",
			name, base, key, got, -drop, status)
	}

	if len(failures) > 0 {
		return fmt.Errorf("bench regression gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Printf("bench gate passed: %d throughput + %d allocation + %d metric benchmarks within %.0f%% of %s\n",
		checked, allocChecked, metricChecked, maxRegressPct, basePath)
	return nil
}
