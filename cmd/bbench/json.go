package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"testing"
	"time"

	"bbmig/internal/bitmap"
	"bbmig/internal/blkback"
	"bbmig/internal/blockdev"
	"bbmig/internal/blockdev/bcache"
	"bbmig/internal/core"
	"bbmig/internal/sim"
	"bbmig/internal/transport"
	"bbmig/internal/vm"
	"bbmig/internal/workload"
)

// This file is the machine-readable benchmark harness: `bbench -json FILE`
// runs a curated suite — real-engine migrations over a latency-modelled link
// under each transfer policy, plus the paper-scale simulator's headline
// numbers — and writes a BENCH_*.json snapshot so the perf trajectory is
// tracked across PRs instead of living in scrollback.

// benchResult is one benchmark's outcome.
type benchResult struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations,omitempty"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	MBPerSec    float64            `json:"mb_per_s,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// benchFile is the BENCH_*.json schema. The schema string is versioned
// within the "bbmig-bench/v1" family: v1.1 added allocs_per_op and the
// MigrateTCP rows. Readers accept any v1* snapshot (missing fields decode
// to zero), so -compare still reads a pre-bump baseline.
type benchFile struct {
	Schema     string        `json:"schema"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// kernelImage builds a MemDisk carrying a deterministic kernel-build write
// footprint: the generator's first writes traces applied once.
func kernelImage(blocks, writes int) *blockdev.MemDisk {
	disk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
	gen := workload.New(workload.Kernel, blocks, 1)
	buf := make([]byte, blockdev.BlockSize)
	for i := 0; i < writes; i++ {
		a := gen.Next()
		if a.Op != blockdev.Write {
			continue
		}
		for n := a.Block; n < a.Block+a.Count && n < blocks; n++ {
			workload.FillBlock(buf, n, 1)
			disk.WriteBlock(n, buf)
		}
	}
	return disk
}

// modeledMigrate runs one full TPM migration of a kernel-build image over
// in-process pipes with a per-frame stall, under the given policy/extent
// shape, and is the body testing.Benchmark drives.
func modeledMigrate(b *testing.B, blocks, extentBlocks int, adaptive bool) {
	const frameStall = 40 * time.Microsecond
	srcDisk := kernelImage(blocks, 8000)
	b.SetBytes(int64(blocks) * blockdev.BlockSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dstDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
		guest := vm.New("g", 1, 64, 256)
		src := core.Host{VM: guest, Backend: blkback.NewBackend(srcDisk, 1)}
		dst := core.Host{VM: vm.NewDestination(guest), Backend: blkback.NewBackend(dstDisk, 1)}
		pa, pb := transport.NewPipe(256)
		cs, cd := transport.NewLatent(pa, frameStall), transport.NewLatent(pb, frameStall)
		cfg := core.Config{MaxExtentBlocks: extentBlocks}
		// Policies are stateful and per-migration: a fresh one each run, on
		// the sending side only (the receiver applies whatever arrives).
		srcCfg := cfg
		if adaptive {
			srcCfg.Policy = &core.AdaptivePolicy{}
		}
		errCh := make(chan error, 1)
		go func() {
			_, err := core.MigrateSource(srcCfg, src, cs, nil)
			errCh <- err
		}()
		if _, err := core.MigrateDest(cfg, dst, cd); err != nil {
			b.Fatal(err)
		}
		if err := <-errCh; err != nil {
			b.Fatal(err)
		}
		cs.Close()
		cd.Close()
	}
}

// tcpMigrate runs one full migration of a kernel-build image over loopback
// TCP under cfg — the real-socket arm of the suite, where the pooled buffer
// discipline and vectored sends show up as allocs/op and MB/s. Both
// endpoints share cfg, so the negotiated knobs always match.
func tcpMigrate(b *testing.B, blocks int, cfg core.Config) {
	srcDisk := kernelImage(blocks, 20000)
	b.SetBytes(int64(blocks) * blockdev.BlockSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := transport.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		dstDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
		guest := vm.New("g", 1, 64, 256)
		src := core.Host{VM: guest, Backend: blkback.NewBackend(srcDisk, 1)}
		dst := core.Host{VM: vm.NewDestination(guest), Backend: blkback.NewBackend(dstDisk, 1)}
		errCh := make(chan error, 1)
		go func() {
			var conn transport.Conn
			var err error
			if cfg.Streams > 1 {
				conn, err = transport.AcceptStriped(l, nil)
			} else {
				conn, err = transport.Accept(l)
			}
			if err == nil {
				defer conn.Close()
				_, err = core.MigrateDest(cfg, dst, conn)
			}
			errCh <- err
		}()
		var cs transport.Conn
		if cfg.Streams > 1 {
			cs, err = transport.DialStriped(l.Addr().String(), cfg.Streams, nil)
		} else {
			cs, err = transport.Dial(l.Addr().String())
		}
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.MigrateSource(cfg, src, cs, nil); err != nil {
			b.Fatal(err)
		}
		if err := <-errCh; err != nil {
			b.Fatal(err)
		}
		cs.Close()
		l.Close()
	}
}

// tcpCpBaseline is the wire-speed floor: the same image pushed through a
// raw TCP socket in 256 KiB chunks, no framing, no engine. MigrateTCP/cold
// is judged against this row.
func tcpCpBaseline(b *testing.B, blocks int) {
	chunkBlocks := (256 << 10) / blockdev.BlockSize
	srcDisk := kernelImage(blocks, 20000)
	b.SetBytes(int64(blocks) * blockdev.BlockSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := transport.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		dstDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
		done := make(chan error, 1)
		go func() {
			c, err := l.Accept()
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			buf := make([]byte, chunkBlocks*blockdev.BlockSize)
			for n := 0; n < blocks; n += chunkBlocks {
				if _, err := io.ReadFull(c, buf); err != nil {
					done <- err
					return
				}
				for j := 0; j < chunkBlocks; j++ {
					if err := dstDisk.WriteBlock(n+j, buf[j*blockdev.BlockSize:(j+1)*blockdev.BlockSize]); err != nil {
						done <- err
						return
					}
				}
			}
			done <- nil
		}()
		c, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, chunkBlocks*blockdev.BlockSize)
		for n := 0; n < blocks; n += chunkBlocks {
			for j := 0; j < chunkBlocks; j++ {
				if err := srcDisk.ReadBlock(n+j, buf[j*blockdev.BlockSize:(j+1)*blockdev.BlockSize]); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := c.Write(buf); err != nil {
				b.Fatal(err)
			}
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		c.Close()
		l.Close()
	}
}

// deltaMigrate runs the WAN return trip on the real engine: an incremental
// migration of a hot-rewritten prefix back toward a destination that still
// holds the stale pre-dwell image, over asymmetric WAN-shaped pipes. With
// delta off the rewrites travel as literals; with delta on they travel as
// signature-priced COPY/LITERAL patches against the stale copies.
func deltaMigrate(b *testing.B, blocks int, delta bool) {
	const frameStall = 40 * time.Microsecond
	hot := blocks / 8
	baseline := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
	srcDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
	buf := make([]byte, blockdev.BlockSize)
	head := make([]byte, blockdev.BlockSize)
	for n := 0; n < blocks; n++ {
		workload.FillBlock(buf, n, 7)
		baseline.WriteBlock(n, buf)
		if n < hot {
			workload.FillBlock(head, n+blocks, 13)
			copy(buf[:256], head[:256])
		}
		srcDisk.WriteBlock(n, buf)
	}
	b.SetBytes(int64(hot) * blockdev.BlockSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dstDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
		for n := 0; n < blocks; n++ {
			if err := baseline.ReadBlock(n, buf); err != nil {
				b.Fatal(err)
			}
			if err := dstDisk.WriteBlock(n, buf); err != nil {
				b.Fatal(err)
			}
		}
		guest := vm.New("g", 1, 64, 256)
		srcBk := blkback.NewBackend(srcDisk, 1)
		src := core.Host{VM: guest, Backend: srcBk}
		dst := core.Host{VM: vm.NewDestination(guest), Backend: blkback.NewBackend(dstDisk, 1)}
		pa, pb := transport.NewPipe(256)
		cs := transport.NewWAN(pa, frameStall, 100e6)
		cd := transport.NewWAN(pb, frameStall, 400e6)
		cfg := core.Config{MaxExtentBlocks: 16, Delta: delta}
		fresh := bitmap.New(blocks)
		fresh.SetRange(0, hot)
		srcBk.SeedDirty(fresh)
		initial := srcBk.SwapDirty()
		errCh := make(chan error, 1)
		go func() {
			_, err := core.MigrateSource(cfg, src, cs, initial)
			errCh <- err
		}()
		if _, err := core.MigrateDest(cfg, dst, cd); err != nil {
			b.Fatal(err)
		}
		if err := <-errCh; err != nil {
			b.Fatal(err)
		}
		cs.Close()
		cd.Close()
	}
}

// snapshotScan measures a full-device scan — the shape of the engine's
// fingerprint and dedup passes — over a bcache volume with guest writes
// interleaved every eight blocks. With frozen set the scan reads a CoW
// snapshot; otherwise it reads the mutating live device. The writes come
// from the scanning goroutine on a fixed stride, not a free-running
// goroutine, so allocs/op is exact and the -compare alloc gate can hold a
// tight line on the cache's hot paths. statsOut, when non-nil, receives the
// volume's counters after the last run.
func snapshotScan(b *testing.B, blocks int, frozen bool, statsOut *bcache.Stats) {
	disk := kernelImage(blocks, 8000)
	vol := bcache.New(disk, blocks)
	buf := make([]byte, blockdev.BlockSize)
	for n := 0; n < blocks; n++ { // warm: measure the cache, not the fill
		if err := vol.ReadBlock(n, buf); err != nil {
			b.Fatal(err)
		}
	}
	wbuf := make([]byte, blockdev.BlockSize)
	b.SetBytes(int64(blocks) * blockdev.BlockSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var view blockdev.Device = vol
		if frozen {
			view = vol.Snapshot()
		}
		for n := 0; n < blocks; n++ {
			if err := view.ReadBlock(n, buf); err != nil {
				b.Fatal(err)
			}
			if n%8 == 0 {
				if err := vol.WriteBlock((n*37+13)%blocks, wbuf); err != nil {
					b.Fatal(err)
				}
			}
		}
		if s, ok := view.(blockdev.Snapshot); ok {
			s.Release()
		}
	}
	b.StopTimer()
	if statsOut != nil {
		*statsOut = vol.Stats()
	}
}

// runJSON executes the suite and writes path.
func runJSON(path string, seed int64) error {
	const blocks = 4096 // 16 MiB image keeps the suite fast enough for CI
	out := benchFile{
		Schema:    "bbmig-bench/v1.1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	add := func(name string, r testing.BenchmarkResult) {
		mbps := 0.0
		if r.NsPerOp() > 0 && r.Bytes > 0 {
			mbps = float64(r.Bytes) / float64(r.NsPerOp()) * 1e9 / 1e6
		}
		out.Benchmarks = append(out.Benchmarks, benchResult{
			Name: name, Iterations: r.N, NsPerOp: float64(r.NsPerOp()), MBPerSec: mbps,
			AllocsPerOp: float64(r.AllocsPerOp()),
		})
		fmt.Printf("%-44s %8d ns/op  %9.1f MB/s  %8d allocs/op\n", name, r.NsPerOp(), mbps, r.AllocsPerOp())
	}

	// Real engine over the modelled link: the policy trajectory.
	add("MigrateModeledLink/default-per-block",
		testing.Benchmark(func(b *testing.B) { modeledMigrate(b, blocks, 1, false) }))
	add("MigrateModeledLink/fixed-64-extents",
		testing.Benchmark(func(b *testing.B) { modeledMigrate(b, blocks, 64, false) }))
	add("MigrateModeledLink/adaptive-policy",
		testing.Benchmark(func(b *testing.B) { modeledMigrate(b, blocks, 1, true) }))

	// Real engine over loopback TCP: the zero-copy hot path against the raw
	// socket floor. A 64 MiB image so the steady state, not the handshake,
	// dominates.
	const tcpBlocks = 16384
	add("MigrateTCP/cold",
		testing.Benchmark(func(b *testing.B) { tcpMigrate(b, tcpBlocks, core.Config{MaxExtentBlocks: 64, Readahead: 4}) }))
	add("MigrateTCP/striped4",
		testing.Benchmark(func(b *testing.B) {
			tcpMigrate(b, tcpBlocks, core.Config{Streams: 4, MaxExtentBlocks: 64, Workers: 4})
		}))
	add("MigrateTCP/compressed",
		testing.Benchmark(func(b *testing.B) {
			tcpMigrate(b, tcpBlocks, core.Config{MaxExtentBlocks: 64, CompressLevel: 1, Workers: 4})
		}))
	add("MigrateTCP/cp-baseline",
		testing.Benchmark(func(b *testing.B) { tcpCpBaseline(b, tcpBlocks) }))

	// WAN return trip: hot-rewrite divergence back toward the stale-copy
	// holder, literal vs delta-encoded.
	add("MigrateWAN/literal-back",
		testing.Benchmark(func(b *testing.B) { deltaMigrate(b, blocks, false) }))
	add("MigrateWAN/delta-back",
		testing.Benchmark(func(b *testing.B) { deltaMigrate(b, blocks, true) }))

	// Snapshot block layer: the fingerprint/dedup scan shape against a
	// write-hammered volume, live-contended vs frozen CoW snapshot. The
	// hit-rate row records how much of the scan the cache absorbed.
	var scanStats bcache.Stats
	add("SnapshotScan/live-contended",
		testing.Benchmark(func(b *testing.B) { snapshotScan(b, blocks, false, nil) }))
	add("SnapshotScan/snapshot",
		testing.Benchmark(func(b *testing.B) { snapshotScan(b, blocks, true, &scanStats) }))
	out.Benchmarks = append(out.Benchmarks, benchResult{
		Name: "BcacheScanStats/snapshot",
		Metrics: map[string]float64{
			"hit_rate":   scanStats.HitRate(),
			"cow_copies": float64(scanStats.CowCopies),
			"evictions":  float64(scanStats.Evictions),
		},
	})

	// Paper-scale simulator headlines: deterministic, so stored as metrics.
	for _, kind := range sim.TableIWorkloads() {
		p := sim.Defaults(kind)
		p.Seed = seed
		p.DwellAfter = time.Minute
		r := sim.RunTPM(p)
		out.Benchmarks = append(out.Benchmarks, benchResult{
			Name: "SimTableI/" + kind.String(),
			Metrics: map[string]float64{
				"total_s":     r.Report.TotalTime.Seconds(),
				"downtime_ms": float64(r.Report.Downtime.Milliseconds()),
				"migrated_mb": r.Report.MigratedMB(),
				"disk_iters":  float64(r.Report.DiskIterationCount()),
			},
		})
	}
	results, _ := sim.AdaptiveSweep(seed)
	for i, name := range []string{"default", "fixed64", "adaptive"} {
		out.Benchmarks = append(out.Benchmarks, benchResult{
			Name: "SimAdaptiveSweep/" + name,
			Metrics: map[string]float64{
				"total_s":     results[i].Report.TotalTime.Seconds(),
				"precopy_s":   results[i].Report.PreCopyTime.Seconds(),
				"migrated_mb": results[i].Report.MigratedMB(),
			},
		})
	}
	swarmRows, _ := sim.SwarmSweep(seed)
	for i, name := range []string{"literal", "single-source", "swarm"} {
		out.Benchmarks = append(out.Benchmarks, benchResult{
			Name: "SimSwarmSweep/" + name,
			Metrics: map[string]float64{
				"makespan_s":    swarmRows[i].Makespan.Seconds(),
				"fleet_wire_gb": swarmRows[i].FleetWireGB,
				"speedup":       swarmRows[i].Speedup,
			},
		})
	}

	wanRows, _ := sim.WANSweep(seed)
	wanSlug := map[string]string{"literal": "literal", "dedup only": "dedup-only", "dedup + delta": "dedup-delta"}
	for _, r := range wanRows {
		if r.HotPct != 35 {
			continue // snapshot the heaviest swept divergence only
		}
		out.Benchmarks = append(out.Benchmarks, benchResult{
			Name: "SimWANSweep/" + wanSlug[r.Label],
			Metrics: map[string]float64{
				"return_wire_mb": r.ReturnWireMB,
				"reduction":      r.Reduction,
				"trip_s":         r.TripTime.Seconds(),
			},
		})
	}

	// Fleet autopilot headline at the CI shape: small enough to stay
	// second-scale, large enough that the diurnal speedup is stable.
	fleetRows, _ := sim.FleetSweep(seed, 40, 2000)
	for _, r := range fleetRows {
		out.Benchmarks = append(out.Benchmarks, benchResult{
			Name: "SimFleetSweep/" + r.Shape + "-" + r.Policy,
			Metrics: map[string]float64{
				"makespan_s":       r.Makespan.Seconds(),
				"mean_downtime_ms": float64(r.MeanDowntime.Milliseconds()),
				"high_starts":      float64(r.HighStarts),
				"retrans_gb":       float64(r.RetransBlocks) * blockdev.BlockSize / 1e9,
				"speedup":          r.Speedup,
			},
		})
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(out.Benchmarks))
	return nil
}
