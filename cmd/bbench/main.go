// Command bbench regenerates every table and figure of the paper's
// evaluation (§VI) plus the ablations called out in DESIGN.md:
//
//	bbench -exp table1      Table I   — TPM results for three workloads
//	bbench -exp table2      Table II  — incremental migration vs primary TPM
//	bbench -exp table3      Table III — write-tracking I/O overhead
//	bbench -exp fig5        Fig. 5    — web server throughput during migration
//	bbench -exp fig6        Fig. 6    — Bonnie++ impact, unlimited vs rate-limited
//	bbench -exp iters       §VI-C     — per-iteration pre-copy detail
//	bbench -exp locality    §IV-A-2   — write locality of the workloads
//	bbench -exp granularity §IV-A-2   — 512 B vs 4 KiB bitmap sizing
//	bbench -exp downtime-granularity  — how granularity inflates downtime
//	bbench -exp schemes     §II       — all four schemes, one table
//	bbench -exp availability §II-B    — on-demand fetching availability p²
//	bbench -exp adaptive    transfer-policy sweep on a latency-modelled link
//	bbench -exp faults      link-outage sweep: resumable migration vs restart
//	bbench -exp cluster     evacuation sweep: drain makespan/downtime vs concurrency
//	bbench -exp dedup       clone-fleet sweep: content-addressed dedup vs literal transfer
//	bbench -exp swarm       cold-destination evacuation: multi-source swarm fetch vs single-source dedup
//	bbench -exp wan         WAN return trip: delta-encoded hot rewrites vs dedup-only vs literal
//	bbench -exp fleet       fleet drain sweep: reactive vs forecast-driven trough scheduling
//	bbench -exp all         everything above
//
// The fleet sweep defaults to the 10 000-domain, 200-host shape; -fleet-hosts
// and -fleet-domains shrink it (the CI smoke runs 40x2000).
//
// In addition, -json FILE runs the machine-readable benchmark suite (real
// engine over a modelled link under each transfer policy, plus the
// simulator's headline numbers) and writes a BENCH_*.json snapshot:
//
//	bbench -json BENCH_engine.json
//
// With -compare BASE the freshly written snapshot is checked against a
// committed baseline and the run fails when a headline modeled-link
// throughput drops by more than -max-regress percent — the CI perf gate:
//
//	bbench -json /tmp/new.json -compare BENCH_engine.json -max-regress 25
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bbmig/internal/core"
	"bbmig/internal/metrics"
	"bbmig/internal/sim"
	"bbmig/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1|table2|table3|fig5|fig6|iters|locality|granularity|availability|adaptive|faults|cluster|dedup|swarm|wan|fleet|all)")
	seed := flag.Int64("seed", 1, "workload seed")
	samples := flag.Int("samples", 40, "series rows to print for figures")
	flag.IntVar(&fleetHosts, "fleet-hosts", 200, "fleet sweep host count")
	flag.IntVar(&fleetDomains, "fleet-domains", 10000, "fleet sweep domain count")
	jsonOut := flag.String("json", "", "run the machine-readable benchmark suite and write BENCH_*.json here")
	compare := flag.String("compare", "", "baseline BENCH_*.json to gate the fresh -json snapshot against")
	maxRegress := flag.Float64("max-regress", 25, "max tolerated headline throughput drop vs -compare, in percent")
	flag.Parse()

	if *jsonOut != "" {
		if err := runJSON(*jsonOut, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "bbench: %v\n", err)
			os.Exit(1)
		}
		if *compare != "" {
			if err := compareBench(*jsonOut, *compare, *maxRegress); err != nil {
				fmt.Fprintf(os.Stderr, "bbench: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}
	if *compare != "" {
		fmt.Fprintln(os.Stderr, "bbench: -compare requires -json")
		os.Exit(2)
	}

	run := map[string]func(int64, int){
		"table1":               table1,
		"table2":               table2,
		"table3":               table3,
		"fig5":                 fig5,
		"fig6":                 fig6,
		"iters":                iters,
		"locality":             locality,
		"granularity":          granularity,
		"availability":         availability,
		"downtime-granularity": downtimeGranularity,
		"schemes":              schemes,
		"adaptive":             adaptive,
		"faults":               faults,
		"cluster":              clusterSweep,
		"dedup":                dedupSweep,
		"swarm":                swarmSweep,
		"wan":                  wanSweep,
		"fleet":                fleetSweep,
	}
	if *exp == "all" {
		for _, name := range []string{"table1", "table2", "table3", "fig5", "fig6", "iters", "locality", "granularity", "downtime-granularity", "schemes", "availability", "adaptive", "faults", "cluster", "dedup", "swarm", "wan", "fleet"} {
			run[name](*seed, *samples)
			fmt.Println()
		}
		return
	}
	fn, ok := run[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "bbench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	fn(*seed, *samples)
}

func table1(seed int64, _ int) {
	_, tab := sim.TableI(seed)
	fmt.Print(tab.String())
	fmt.Println("paper: 796 / 798 / 957 s; 60 / 62 / 110 ms; 39097 / 39072 / 40934 MB")
}

func table2(seed int64, _ int) {
	primary, _ := sim.TableI(seed)
	_, tab := sim.TableII(primary)
	fmt.Print(tab.String())
	fmt.Println("paper IM rows: 1.0 s & 52.5 MB / 0.6 s & 5.5 MB / 17 s & 911.4 MB")
}

func table3(_ int64, _ int) {
	_, tab := sim.TableIII(1<<16, 200000)
	fmt.Print(tab.String())
	fmt.Println("paper: 47740→47604 / 96122→95569 / 26125→25887 (<1% overhead)")
}

// printSeries prints a downsampled throughput series with the migration
// window marked.
func printSeries(r *sim.Result, samples int) {
	s := r.WorkloadSeries
	if len(s.Samples) == 0 {
		return
	}
	stride := len(s.Samples) / samples
	if stride < 1 {
		stride = 1
	}
	fmt.Printf("# %s (%s); migration window [%.0f s, %.0f s]\n",
		s.Label, s.Unit, r.MigStart.Seconds(), r.MigEnd.Seconds())
	fmt.Printf("%10s  %12s\n", "time (s)", "MB/s")
	for i := 0; i < len(s.Samples); i += stride {
		p := s.Samples[i]
		marker := ""
		if p.At >= r.MigStart && p.At <= r.MigEnd {
			marker = "  | migrating"
		}
		fmt.Printf("%10.0f  %12.2f%s\n", p.At.Seconds(), p.Value, marker)
	}
}

func fig5(seed int64, samples int) {
	fmt.Println("Fig. 5 — SPECweb-like banking server throughput while migrating")
	r := sim.Fig5(seed)
	printSeries(r, samples)
	during := r.WorkloadSeries.Mean(r.MigStart, r.MigEnd)
	after := r.WorkloadSeries.Mean(r.MigEnd+time.Minute, r.MigEnd+10*time.Minute)
	fmt.Printf("mean during migration %.2f MB/s vs free-running %.2f MB/s — no noticeable drop (paper: none visible)\n", during, after)
}

func fig6(seed int64, samples int) {
	fmt.Println("Fig. 6 — impact on Bonnie++ throughput (unlimited migration bandwidth)")
	unl, lim := sim.Fig6(seed)
	printSeries(unl, samples)
	impact := func(r *sim.Result) float64 {
		free := r.WorkloadSeries.Mean(r.MigEnd+2*time.Minute, r.MigEnd+8*time.Minute)
		during := r.WorkloadSeries.Mean(r.MigStart, r.MigEnd)
		return (1 - during/free) * 100
	}
	fmt.Printf("\n§VI-C-3 rate-limited variant:\n")
	fmt.Printf("  unlimited: impact %.0f%%, pre-copy %.0f s\n", impact(unl), unl.Report.PreCopyTime.Seconds())
	fmt.Printf("  limited:   impact %.0f%%, pre-copy %.0f s (%.0f%% longer)\n",
		impact(lim), lim.Report.PreCopyTime.Seconds(),
		(lim.Report.PreCopyTime.Seconds()/unl.Report.PreCopyTime.Seconds()-1)*100)
	fmt.Println("  paper: impact reduced about 50%, pre-copy about 37% longer")
}

func iters(seed int64, _ int) {
	results, _ := sim.TableI(seed)
	for _, r := range results {
		fmt.Print(sim.IterationDetail(r).String())
		fmt.Println()
	}
	fmt.Println("paper: web 3 iters / 6680 blocks retransferred / 62 left / 349 ms post-copy / 1 pulled;")
	fmt.Println("       stream 2 iters / 610 blocks / 5 left / 380 ms; diabolical 4 iters / ~1464 MB")
}

func locality(_ int64, _ int) {
	fmt.Print(sim.LocalityStats().String())
}

func granularity(_ int64, _ int) {
	fmt.Print(sim.GranularityAblation(32 << 30).String())
	fmt.Print(sim.GranularityAblation(int64(39070) << 20).String())
}

func downtimeGranularity(seed int64, _ int) {
	fmt.Print(sim.DowntimeVsGranularity(workload.Web, seed).String())
}

func schemes(seed int64, _ int) {
	fmt.Print(sim.SchemeComparison(workload.Web, seed).String())
	fmt.Print(sim.SchemeComparison(workload.Diabolic, seed).String())
}

func adaptive(seed int64, _ int) {
	_, tab := sim.AdaptiveSweep(seed)
	fmt.Print(tab.String())
	fmt.Println("adaptive slow-start must close most of the gap to the hand-tuned extent without configuration")
}

func faults(seed int64, _ int) {
	_, tab := sim.FaultSweep(seed)
	fmt.Print(tab.String())
	fmt.Println("cursor-exact resume re-sends only the in-flight window; restarting wastes everything before the cut")
}

func clusterSweep(seed int64, _ int) {
	_, tab := sim.ClusterSweep(seed)
	fmt.Print(tab.String())
	fmt.Println("concurrency buys makespan until the uplink budget saturates; past that it only dilutes")
	fmt.Println("per-migration bandwidth and inflates every VM's freeze window. The outage arm completes")
	fmt.Println("via resume, re-sending only the in-flight window.")
}

// fleetHosts and fleetDomains size the fleet sweep; -fleet-hosts and
// -fleet-domains override the 10k-domain default shape.
var fleetHosts, fleetDomains int

func fleetSweep(seed int64, _ int) {
	rows, tab := sim.FleetSweep(seed, fleetHosts, fleetDomains)
	fmt.Print(tab.String())
	for _, r := range rows {
		if r.Shape == "diurnal" && r.Policy == "predictive" {
			fmt.Printf("trough-aware scheduling drains the diurnal fleet %.2fx faster than reactive,\n", r.Speedup)
		}
	}
	fmt.Println("with near-zero high-phase starts; the constant shape is the control arm (no troughs,")
	fmt.Println("no win), and heartbeat-grain bursts are unforecastable, so prediction ties there too.")
}

func dedupSweep(seed int64, _ int) {
	_, tab := sim.DedupSweep(seed)
	fmt.Print(tab.String())
	fmt.Println("template-derived clones evacuating toward warm hosts ship fingerprints, not bytes:")
	fmt.Println("zero blocks elide without a round trip, shared template content travels as 16-byte")
	fmt.Println("references against the destination's retained and clone-sibling disks.")
}

func swarmSweep(seed int64, _ int) {
	_, tab := sim.SwarmSweep(seed)
	fmt.Print(tab.String())
	fmt.Println("cold destinations hold nothing to dedup against, so single-source transfer is stuck")
	fmt.Println("behind one uplink; fanning the want-set across three warm clone-hosting peers moves")
	fmt.Println("the template share over their links in parallel and collapses the evacuation makespan.")
}

func wanSweep(seed int64, _ int) {
	_, tab := sim.WANSweep(seed)
	fmt.Print(tab.String())
	fmt.Println("the IM return trip crosses the WAN toward a host that still holds stale copies of")
	fmt.Println("everything, so divergence is hot-block rewrites: dedup can only claim the few blocks")
	fmt.Println("whose new content the home host happens to index, while delta encoding ships just the")
	fmt.Println("changed chunks of every rewritten block against its stale counterpart.")
}

func availability(_ int64, _ int) {
	t := &metrics.Table{
		Title:   "On-demand fetching availability (§II-B): VM depends on two machines",
		Columns: []string{"machine availability p", "TPM after sync (p)", "on-demand (p²)"},
	}
	for _, p := range []float64{0.9, 0.99, 0.999} {
		t.AddRow(fmt.Sprintf("%.3f", p), fmt.Sprintf("%.4f", p), fmt.Sprintf("%.4f", core.Availability(p)))
	}
	fmt.Print(t.String())
	fmt.Println(strings.TrimSpace(`
TPM's push guarantees synchronization completes in finite time, after which
the source can be shut down; on-demand fetching never sheds the dependency.`))
}
