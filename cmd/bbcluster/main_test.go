package main

import (
	"strings"
	"testing"
)

func TestDrainVerb(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-domains", "2", "-blocks", "256", "-pages", "16", "-presync", "drain", "host1"}, &out)
	if err != nil {
		t.Fatalf("drain verb: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"drained host1", "presync", "cutover iter1    0 blk", "draining"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRebalanceVerb(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-hosts", "2", "-domains", "2", "-blocks", "256", "-pages", "16", "rebalance"}, &out)
	if err != nil {
		t.Fatalf("rebalance verb: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "rebalanced in") {
		t.Fatalf("output missing rebalance summary:\n%s", out.String())
	}
}

func TestStatusVerbAndErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"status"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fleet status") {
		t.Fatalf("status output:\n%s", out.String())
	}
	if err := run([]string{"explode"}, &out); err == nil {
		t.Fatal("unknown verb accepted")
	}
	if err := run([]string{"drain"}, &out); err == nil {
		t.Fatal("drain without a host accepted")
	}
	if err := run([]string{}, &out); err == nil {
		t.Fatal("missing verb accepted")
	}
}

func TestAutopilotVerb(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-hosts", "3", "-domains", "6", "-blocks", "256", "-pages", "16",
		"-forecast", "-ap-moves", "4", "autopilot"}, &out)
	if err != nil {
		t.Fatalf("autopilot verb: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "autopilot evened the fleet") {
		t.Fatalf("output missing autopilot summary:\n%s", s)
	}
	// The closing status table must show the even fleet: 2 domains each.
	tail := s[strings.LastIndex(s, "fleet status"):]
	for _, host := range []string{"host1", "host2", "host3"} {
		if !strings.Contains(tail, host+"  2") {
			t.Fatalf("final status not even at %s:\n%s", host, tail)
		}
	}
}
