// Command bbcluster demonstrates the cluster orchestrator on an in-process
// fleet: it provisions N host daemons with M domains stacked on the first
// one, registers them with internal/cluster, and runs one fleet verb —
// migrations travel over real loopback TCP through the same scheduler,
// placement engine, and bandwidth budget a production wiring would use.
//
//	bbcluster [flags] status            fleet table: loads, caps, budget share
//	bbcluster [flags] drain <host>      evacuate every domain off <host>
//	bbcluster [flags] rebalance         even out domain counts fleet-wide
//	bbcluster [flags] autopilot         run the continuous rebalance loop until the fleet is even
//
// Useful flags: -hosts/-domains size the fleet, -budget-mb sets the global
// pre-copy budget the in-flight migrations share, -max-total/-per-host set
// the scheduler's concurrency caps, -presync runs the incremental pre-sync
// leg before each drain cutover, -retries sets each migration's resume
// budget, -dedup negotiates content-addressed transfer on every migration
// (each machine answers adverts from its shared fingerprint index), -swarm
// additionally fans each dedup'd migration's want-set across peer machines
// nominated by content overlap (up to -swarm-peers sidecar serve sessions,
// paced from the shared budget), and -live runs the synthetic guest
// workloads during the verb. -forecast feeds heartbeat write counters into
// per-domain dirty-rate models and parks normal-priority migrations in
// predicted write troughs; -ap-interval, -ap-moves, and -ap-timeout shape
// the autopilot verb's control loop.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"bbmig/internal/blockdev"
	"bbmig/internal/cluster"
	"bbmig/internal/core"
	"bbmig/internal/hostd"
	"bbmig/internal/metrics"
	"bbmig/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "bbcluster: %v\n", err)
		os.Exit(1)
	}
}

// run builds the fleet and executes one verb; split from main for tests.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bbcluster", flag.ContinueOnError)
	hosts := fs.Int("hosts", 3, "number of host daemons in the fleet")
	domains := fs.Int("domains", 4, "number of domains, all created on host1")
	blocks := fs.Int("blocks", 2048, "VBD blocks per domain (4 KiB each)")
	pages := fs.Int("pages", 64, "memory pages per domain")
	budgetMB := fs.Float64("budget-mb", 0, "global pre-copy budget in MB/s shared by concurrent migrations (0 = unlimited)")
	perHost := fs.Int("per-host", cluster.DefaultMaxPerHost, "per-host concurrent migration cap")
	maxTotal := fs.Int("max-total", cluster.DefaultMaxTotal, "fleet-wide concurrent migration cap")
	presync := fs.Bool("presync", false, "pre-sync each drain move so the cutover ships only the recent write set")
	dedupFlag := fs.Bool("dedup", false, "negotiate content-addressed dedup on every migration and pre-sync")
	swarmFlag := fs.Bool("swarm", false, "fan each dedup'd migration's want-set across content-overlapping peer machines (implies nothing without -dedup)")
	swarmPeers := fs.Int("swarm-peers", cluster.DefaultSwarmPeers, "max sidecar swarm-serve peers nominated per migration")
	retries := fs.Int("retries", cluster.DefaultDrainRetries, "per-migration reconnect/resume budget")
	live := fs.Bool("live", false, "run the synthetic guest workloads during the verb")
	seed := fs.Int64("seed", 1, "workload seed")
	forecast := fs.Bool("forecast", false, "feed heartbeat write counters into per-domain dirty-rate models and defer normal-priority migrations into predicted write troughs")
	apInterval := fs.Duration("ap-interval", 50*time.Millisecond, "autopilot control-loop cadence")
	apMoves := fs.Int("ap-moves", cluster.DefaultAutopilotMoves, "autopilot in-flight move cap")
	apTimeout := fs.Duration("ap-timeout", 30*time.Second, "give up if the autopilot has not evened the fleet by then")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: bbcluster [flags] status | drain <host> | rebalance | autopilot")
	}
	verb := fs.Arg(0)

	c := cluster.New(cluster.Options{
		GlobalBandwidth: int64(*budgetMB * 1e6),
		MaxPerHost:      *perHost,
		MaxTotal:        *maxTotal,
		Swarm:           *swarmFlag,
		SwarmPeers:      *swarmPeers,
		Forecast:        *forecast,
		BaseConfig:      core.Config{MaxExtentBlocks: 64, MaxRetries: *retries, Dedup: *dedupFlag},
	})
	var machines []*hostd.Machine
	for i := 1; i <= *hosts; i++ {
		m := hostd.NewMachine(fmt.Sprintf("host%d", i))
		if err := c.Register(m, cluster.MemberOptions{Capacity: *domains + 2}); err != nil {
			return err
		}
		machines = append(machines, m)
	}
	for i := 1; i <= *domains; i++ {
		d, err := machines[0].CreateDomain(fmt.Sprintf("vm%02d", i), *blocks, *pages, workload.Web, *seed+int64(i), *live)
		if err != nil {
			return err
		}
		if !*live {
			// Without a live workload, prefill a quarter of the disk so the
			// migrations still move real bytes.
			if err := prefill(d, *blocks/4, uint32(i)); err != nil {
				return err
			}
		}
		if _, err := c.Heartbeat(machines[0].Name); err != nil {
			return err
		}
	}

	printStatus(out, c)
	start := time.Now()
	switch verb {
	case "status":
		return nil
	case "drain":
		if fs.NArg() < 2 {
			return fmt.Errorf("usage: bbcluster drain <host>")
		}
		res, err := c.Drain(fs.Arg(1), cluster.DrainOptions{PreSync: *presync, Retries: *retries})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\ndrained %s in %v (%d moves):\n", res.Host, res.Makespan.Round(time.Millisecond), len(res.Moves))
		for _, mv := range res.Moves {
			printMove(out, mv)
		}
		if failed := res.Failed(); len(failed) != 0 {
			return fmt.Errorf("%d moves failed", len(failed))
		}
	case "rebalance":
		res, err := c.Rebalance()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nrebalanced in %v (%d moves):\n", time.Since(start).Round(time.Millisecond), len(res.Moves))
		for _, mv := range res.Moves {
			printMove(out, mv)
		}
	case "autopilot":
		ap := c.StartAutopilot(cluster.AutopilotOptions{Interval: *apInterval, MaxMovesPerCycle: *apMoves})
		deadline := time.Now().Add(*apTimeout)
		for {
			if st := ap.Stats(); st.Cycles > 0 && st.InFlight == 0 && fleetSpread(c) <= 1 {
				break
			}
			if time.Now().After(deadline) {
				ap.Stop()
				return fmt.Errorf("autopilot did not even the fleet within %v: %+v", *apTimeout, ap.Stats())
			}
			time.Sleep(*apInterval)
		}
		ap.Stop()
		st := ap.Stats()
		fmt.Fprintf(out, "\nautopilot evened the fleet in %v: %d cycles, %d/%d planned moves completed, %d failed\n",
			time.Since(start).Round(time.Millisecond), st.Cycles, st.Completed, st.Submitted, st.Failed)
	default:
		return fmt.Errorf("unknown verb %q (want status, drain, rebalance, or autopilot)", verb)
	}
	for _, m := range machines {
		stopWorkloads(m)
	}
	fmt.Fprintln(out)
	printStatus(out, c)
	return nil
}

// prefill writes n patterned blocks into a workload-less domain.
func prefill(d *hostd.Domain, n int, gen uint32) error {
	buf := make([]byte, d.Disk().BlockSize())
	for b := 0; b < n; b++ {
		workload.FillBlock(buf, b, gen)
		req := blockdev.Request{Op: blockdev.Write, Block: b, Domain: d.VM().DomainID, Data: buf}
		if err := d.Submit(req); err != nil {
			return err
		}
	}
	return nil
}

// stopWorkloads quiesces every domain the machine still hosts.
func stopWorkloads(m *hostd.Machine) {
	for _, name := range m.Domains() {
		if d, ok := m.Domain(name); ok {
			d.StopWorkload()
		}
	}
}

// printMove renders one migration's outcome line.
func printMove(out io.Writer, mv cluster.Move) {
	if mv.Err != nil {
		fmt.Fprintf(out, "  %-6s -> %-8s FAILED after %d attempt(s): %v\n", mv.Domain, mv.Target, mv.Attempts, mv.Err)
		return
	}
	line := fmt.Sprintf("  %-6s -> %-8s", mv.Domain, mv.Target)
	if mv.Sync != nil {
		line += fmt.Sprintf(" presync %4d blk,", mv.Sync.Blocks)
	}
	if rep := mv.Report; rep != nil {
		line += fmt.Sprintf(" cutover iter1 %4d blk, downtime %3d ms, %6.1f MB total",
			rep.DiskIterations[0].Units, rep.Downtime.Milliseconds(), rep.MigratedMB())
		if rep.Retries > 0 {
			line += fmt.Sprintf(", %d resume(s)", rep.Retries)
		}
	}
	fmt.Fprintln(out, line)
}

// fleetSpread returns the domain-count spread across schedulable members.
func fleetSpread(c *cluster.Cluster) int {
	st := c.Status()
	lo, hi := 1<<30, 0
	for _, m := range st.Members {
		if m.Draining || m.Stale {
			continue
		}
		if m.Load.Domains < lo {
			lo = m.Load.Domains
		}
		if m.Load.Domains > hi {
			hi = m.Load.Domains
		}
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// printStatus renders the fleet table.
func printStatus(out io.Writer, c *cluster.Cluster) {
	st := c.Status()
	t := &metrics.Table{
		Title:   fmt.Sprintf("fleet status — %d queued, %d running", st.Queued, st.Running),
		Columns: []string{"host", "domains", "cap", "blocks", "active", "in/out", "state"},
	}
	for _, m := range st.Members {
		state := "ok"
		if m.Draining {
			state = "draining"
		}
		if m.Stale {
			state = "stale"
		}
		t.AddRow(m.Name,
			fmt.Sprintf("%d", m.Load.Domains),
			fmt.Sprintf("%d", m.Capacity),
			fmt.Sprintf("%d", m.Load.Blocks),
			fmt.Sprintf("%d", m.Load.ActiveMigrations),
			fmt.Sprintf("%d/%d", m.RunningIn, m.RunningOut),
			state)
	}
	fmt.Fprint(out, t.String())
}
