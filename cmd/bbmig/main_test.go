package main

import (
	"io"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bbmig/internal/bitmap"
	"bbmig/internal/blockdev"
	"bbmig/internal/core"
	"bbmig/internal/transport"
	"bbmig/internal/workload"
)

func TestPickWorkload(t *testing.T) {
	cases := map[string]struct {
		kind workload.Kind
		ok   bool
	}{
		"web":        {workload.Web, true},
		"stream":     {workload.Stream, true},
		"diabolical": {workload.Diabolic, true},
		"kernel":     {workload.Kernel, true},
		"none":       {0, false},
		"":           {0, false},
		"bogus":      {0, false},
	}
	for in, want := range cases {
		kind, ok := pickWorkload(in)
		if ok != want.ok || (ok && kind != want.kind) {
			t.Errorf("pickWorkload(%q) = %v, %v", in, kind, ok)
		}
	}
}

func TestOpenOrCreate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "img")
	d, err := openOrCreate(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumBlocks() != 1<<20/blockdev.BlockSize {
		t.Fatalf("NumBlocks = %d", d.NumBlocks())
	}
	buf := make([]byte, blockdev.BlockSize)
	buf[0] = 0xAA
	d.WriteBlock(3, buf)
	d.Close()
	// reopening keeps contents and ignores the size hint
	d2, err := openOrCreate(path, 999)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.NumBlocks() != 1<<20/blockdev.BlockSize {
		t.Fatal("existing image resized")
	}
	got := make([]byte, blockdev.BlockSize)
	d2.ReadBlock(3, got)
	if got[0] != 0xAA {
		t.Fatal("contents lost on reopen")
	}
}

func TestXferOptsConfig(t *testing.T) {
	cfg := xferOpts{streams: 4, extentBlocks: 16, workers: 3, compressLevel: 6}.config()
	if cfg.Streams != 4 || cfg.MaxExtentBlocks != 16 || cfg.Workers != 3 || cfg.CompressLevel != 6 {
		t.Fatalf("config mapping lost knobs: %+v", cfg)
	}
	if cfg.OnEvent != nil {
		t.Fatal("OnEvent set without -progress")
	}
	if c2 := (xferOpts{progress: true}).config(); c2.OnEvent == nil {
		t.Fatal("-progress did not install an event handler")
	}
}

func TestImagesEqual(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a")
	b := filepath.Join(dir, "b")
	for _, p := range []string{a, b} {
		d, err := blockdev.CreateFileDisk(p, 4, blockdev.BlockSize)
		if err != nil {
			t.Fatal(err)
		}
		d.Close()
	}
	same, err := imagesEqual(a, b)
	if err != nil || !same {
		t.Fatalf("identical images: %v %v", same, err)
	}
	d, _ := blockdev.OpenFileDisk(b, blockdev.BlockSize)
	buf := make([]byte, blockdev.BlockSize)
	buf[0] = 1
	d.WriteBlock(2, buf)
	d.Close()
	same, err = imagesEqual(a, b)
	if err != nil || same {
		t.Fatalf("differing images: %v %v", same, err)
	}
	if _, err := imagesEqual(a, filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing image accepted")
	}
}

// TestSendRecvRoundTripWithIM drives the real CLI paths end to end over
// loopback TCP: primary migration with compression and fresh-bitmap
// persistence, then an incremental migration back seeded from the saved
// bitmap file.
func TestSendRecvRoundTripWithIM(t *testing.T) {
	dir := t.TempDir()
	srcImg := filepath.Join(dir, "src.img")
	dstImg := filepath.Join(dir, "dst.img")
	bmPath := filepath.Join(dir, "fresh.bitmap")
	const sizeMB, memMB = 8, 2

	// Pre-populate the source image.
	d, err := openOrCreate(srcImg, sizeMB)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, blockdev.BlockSize)
	for n := 0; n < d.NumBlocks(); n += 5 {
		workload.FillBlock(buf, n, 0)
		d.WriteBlock(n, buf)
	}
	d.Close()

	// Primary migration src → dst with compression and bitmap persistence.
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	recvDone := make(chan error, 1)
	go func() { recvDone <- recvServe(l, dstImg, sizeMB, memMB, xferOpts{compressLevel: -1}, bmPath) }()
	if err := runSend(l.Addr().String(), srcImg, sizeMB, memMB, "none", 0, 1, 1, xferOpts{compressLevel: -1}, "", false); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := <-recvDone; err != nil {
		t.Fatalf("recv: %v", err)
	}
	same, err := imagesEqual(srcImg, dstImg)
	if err != nil || !same {
		t.Fatalf("images differ after primary migration: %v %v", same, err)
	}
	bm, err := bitmap.LoadFile(bmPath)
	if err != nil {
		t.Fatalf("fresh bitmap not persisted: %v", err)
	}
	if bm.Len() != sizeMB<<20/blockdev.BlockSize {
		t.Fatalf("bitmap covers %d blocks", bm.Len())
	}

	// Dirty a few blocks on the destination (work done "at home") and
	// record them in the bitmap file, as the daemon's gate would have.
	d2, err := blockdev.OpenFileDisk(dstImg, blockdev.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3, 100} {
		workload.FillBlock(buf, n, 9)
		d2.WriteBlock(n, buf)
		bm.Set(n)
	}
	d2.Close()
	if err := bm.SaveFile(bmPath); err != nil {
		t.Fatal(err)
	}

	// Incremental migration dst → src seeded from the bitmap file.
	l2, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recvDone2 := make(chan error, 1)
	go func() { recvDone2 <- recvServe(l2, srcImg, sizeMB, memMB, xferOpts{}, "") }()
	if err := runSend(l2.Addr().String(), dstImg, sizeMB, memMB, "none", 0, 1, 1, xferOpts{}, bmPath, false); err != nil {
		t.Fatalf("IM send: %v", err)
	}
	if err := <-recvDone2; err != nil {
		t.Fatalf("IM recv: %v", err)
	}
	same, err = imagesEqual(srcImg, dstImg)
	if err != nil || !same {
		t.Fatalf("images differ after incremental migration back: %v %v", same, err)
	}
}

// TestRunSendValidation covers the argument checks.
func TestRunSendValidation(t *testing.T) {
	if err := runSend("", "", 1, 1, "none", 0, 1, 1, xferOpts{}, "", false); err == nil {
		t.Fatal("missing args accepted")
	}
	if err := runRecv(":0", "", 1, 1, xferOpts{}, ""); err == nil {
		t.Fatal("recv without image accepted")
	}
	if !strings.Contains(runSend("", "", 1, 1, "none", 0, 1, 1, xferOpts{}, "", false).Error(), "-addr") {
		t.Fatal("unhelpful error")
	}
}

// TestStripedCompressedMigration runs a full send/recv over loopback TCP
// with 4 striped streams, per-stream compression, extent coalescing, and
// worker pools, then verifies the images match.
func TestStripedCompressedMigration(t *testing.T) {
	dir := t.TempDir()
	srcImg := filepath.Join(dir, "src.img")
	dstImg := filepath.Join(dir, "dst.img")
	const sizeMB, memMB = 4, 1

	// Pre-populate the source with recognizable content.
	d, err := openOrCreate(srcImg, sizeMB)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, blockdev.BlockSize)
	for n := 0; n < d.NumBlocks(); n += 2 {
		workload.FillBlock(buf, n, 3)
		d.WriteBlock(n, buf)
	}
	d.Close()

	opts := xferOpts{streams: 4, extentBlocks: 16, workers: 3, compressLevel: 6, progress: true}
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	recvDone := make(chan error, 1)
	go func() { recvDone <- recvServe(l, dstImg, sizeMB, memMB, opts, "") }()
	if err := runSend(l.Addr().String(), srcImg, sizeMB, memMB, "none", 0, 1, 1, opts, "", false); err != nil {
		t.Fatalf("striped send: %v", err)
	}
	if err := <-recvDone; err != nil {
		t.Fatalf("striped recv: %v", err)
	}
	same, err := imagesEqual(srcImg, dstImg)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatal("images differ after striped compressed migration")
	}
}

// cutProxy forwards TCP to backend, severing the first connection after
// capBytes of client→backend traffic; later connections pass clean.
type cutProxy struct {
	l       net.Listener
	backend string
	cap     int64
	once    sync.Once
}

func startCutProxy(t *testing.T, backend string, capBytes int64) *cutProxy {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &cutProxy{l: l, backend: backend, cap: capBytes}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			flaky := false
			p.once.Do(func() { flaky = true })
			go p.pipe(c, flaky)
		}
	}()
	t.Cleanup(func() { l.Close() })
	return p
}

func (p *cutProxy) pipe(client net.Conn, flaky bool) {
	server, err := net.Dial("tcp", p.backend)
	if err != nil {
		client.Close()
		return
	}
	go func() {
		if flaky {
			io.CopyN(server, client, p.cap)
		} else {
			io.Copy(server, client)
		}
		client.Close()
		server.Close()
	}()
	io.Copy(client, server)
	client.Close()
	server.Close()
}

// TestCLIResumableMigration cuts the TCP link mid-migration between the two
// CLI endpoints; -max-retries lets the sender resume and finish, and the
// images converge.
func TestCLIResumableMigration(t *testing.T) {
	dir := t.TempDir()
	srcImg := filepath.Join(dir, "src.img")
	dstImg := filepath.Join(dir, "dst.img")
	const sizeMB, memMB = 8, 2

	d, err := openOrCreate(srcImg, sizeMB)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, blockdev.BlockSize)
	for n := 0; n < d.NumBlocks(); n += 2 {
		workload.FillBlock(buf, n, 3)
		d.WriteBlock(n, buf)
	}
	d.Close()

	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Cut mid disk pre-copy (~half the 8 MiB image).
	proxy := startCutProxy(t, l.Addr().String(), 4<<20)

	sendOpts := xferOpts{maxRetries: 5, retryBackoff: 5 * time.Millisecond, journalPath: filepath.Join(dir, "j.bin")}
	recvDone := make(chan error, 1)
	go func() { recvDone <- recvServe(l, dstImg, sizeMB, memMB, xferOpts{}, "") }()
	if err := runSend(proxy.l.Addr().String(), srcImg, sizeMB, memMB, "none", 0, 1, 1, sendOpts, "", false); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := <-recvDone; err != nil {
		t.Fatalf("recv: %v", err)
	}
	same, err := imagesEqual(srcImg, dstImg)
	if err != nil || !same {
		t.Fatalf("images differ after resumed CLI migration: %v %v", same, err)
	}
	// The journal records completion.
	st, err := core.LoadJournal(sendOpts.journalPath)
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	if st.Phase != "done" {
		t.Fatalf("journal phase %q after success, want done", st.Phase)
	}
}

// TestCLIColdResume re-runs a crashed migration from its journal: only the
// owed blocks travel (incrementally) and the images converge.
func TestCLIColdResume(t *testing.T) {
	dir := t.TempDir()
	srcImg := filepath.Join(dir, "src.img")
	dstImg := filepath.Join(dir, "dst.img")
	journalPath := filepath.Join(dir, "j.bin")
	const sizeMB, memMB = 8, 2

	d, err := openOrCreate(srcImg, sizeMB)
	if err != nil {
		t.Fatal(err)
	}
	blocks := d.NumBlocks()
	buf := make([]byte, blockdev.BlockSize)
	for n := 0; n < blocks; n++ {
		workload.FillBlock(buf, n, 5)
		d.WriteBlock(n, buf)
	}
	d.Close()

	// Simulate the partial first run: the destination already holds
	// everything except a tail of blocks, and the crashed source's journal
	// names exactly that tail as pending.
	dd, err := openOrCreate(dstImg, sizeMB)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < blocks-200; n++ {
		workload.FillBlock(buf, n, 5)
		dd.WriteBlock(n, buf)
	}
	dd.Close()
	pending := bitmap.New(blocks)
	for n := blocks - 200; n < blocks; n++ {
		pending.Set(n)
	}
	j := &core.Journal{Path: journalPath}
	if err := j.Checkpoint(core.JournalState{Phase: core.PhaseDiskPreCopy, Iter: 1, Pending: pending}); err != nil {
		t.Fatal(err)
	}

	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	recvDone := make(chan error, 1)
	go func() { recvDone <- recvServe(l, dstImg, sizeMB, memMB, xferOpts{}, "") }()
	opts := xferOpts{journalPath: journalPath}
	if err := runSend(l.Addr().String(), srcImg, sizeMB, memMB, "none", 0, 1, 1, opts, "", true); err != nil {
		t.Fatalf("cold-resume send: %v", err)
	}
	if err := <-recvDone; err != nil {
		t.Fatalf("recv: %v", err)
	}
	same, err := imagesEqual(srcImg, dstImg)
	if err != nil || !same {
		t.Fatalf("images differ after cold resume: %v %v", same, err)
	}
}
