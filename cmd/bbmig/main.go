// Command bbmig migrates a virtual machine — disk image, memory, CPU state —
// between two hosts over TCP using three-phase block-bitmap migration.
//
// Destination (run first; prepares a VBD and waits):
//
//	bbmig -mode recv -listen :7011 -image /var/vm/guest.img
//
// Source (migrates the VM whose disk is guest.img):
//
//	bbmig -mode send -addr dsthost:7011 -image /var/vm/guest.img \
//	      -mem-mb 64 -workload web -limit-mbps 0
//
// Because this is a userspace reproduction there is no hypervisor to supply
// a guest: the source synthesizes one (memory pages, CPU state) and can
// drive a chosen synthetic workload against the disk during the migration so
// the pre-copy iterations, freeze bitmap, and post-copy push/pull all do
// real work. With -workload none the image is migrated quiescently.
//
// A single-process demonstration over a loopback TCP connection:
//
//	bbmig -mode demo
//
// Parallel transfer: -streams N opens N TCP connections and stripes block
// data across them, -extent-blocks M coalesces up to M contiguous blocks
// per frame, and -workers W pipelines device reads and sends. Both ends
// must pass the same -streams value (like -compress / -compress-level,
// which now ride in core.Config and are applied by the engine itself); the
// defaults keep the single-connection per-block wire format:
//
//	bbmig -mode recv -listen :7011 -image guest.img -streams 4
//	bbmig -mode send -addr dst:7011 -image guest.img -streams 4 -extent-blocks 64 -workers 4
//
// -progress prints the engine's live event stream (phase transitions,
// pre-copy iterations, wire-byte heartbeats, suspend/resume, post-copy
// pulls) as the migration runs.
//
// Content-addressed dedup: -dedup (both ends must pass it, like -streams)
// replaces literal disk transfer with the hash-advert/want-bitmap/reference
// protocol — all-zero blocks are elided outright and any block whose
// content the receiver can already produce (received earlier in the same
// migration, or present on its disk) travels as a 16-byte reference:
//
//	bbmig -mode recv -listen :7011 -image guest.img -dedup
//	bbmig -mode send -addr dst:7011 -image guest.img -dedup
//
// Swarm multi-source fetch: -swarm-peers (recv mode, needs -dedup) names
// peer hostd swarm-serve addresses; blocks the source advertises that no
// local content can produce are fetched from those peers over sidecar
// sessions, verified by fingerprint on arrival, and only the remainder
// travels as literals from the source:
//
//	bbmig -mode recv -listen :7011 -image guest.img -dedup -swarm-peers peer1:7012,peer2:7012
//
// Delta encoding: -delta (both ends must pass it, like -dedup; hostd
// negotiates it automatically via its announce) replaces literal transfer
// of blocks whose stale counterpart the destination already holds with
// signature-priced COPY/LITERAL patches — the WAN-friendly path for
// migrating an environment back home after a dwell, when divergence is
// hot-block rewrites. -delta-chunk tunes the receiver-local signature
// chunk size:
//
//	bbmig -mode recv -listen :7011 -image guest.img -delta
//	bbmig -mode send -addr dst:7011 -image guest.img -delta -initial-bitmap fresh.bm
//
// Fault tolerance: -max-retries N makes the sender survive up to N
// connection failures by resuming the negotiated session — the receiver
// always offers a reconnect path — re-sending only the blocks the receiver
// hasn't confirmed. -journal FILE persists the migration journal (pipeline
// cursor + pending bitmap) at every checkpoint; after a sender crash,
// -resume re-runs the migration incrementally from the journaled owed set:
//
//	bbmig -mode send -addr dst:7011 -image src.img -max-retries 5 -journal src.journal
//	bbmig -mode send -addr dst:7011 -image src.img -journal src.journal -resume
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"bbmig/internal/bitmap"
	"bbmig/internal/blkback"
	"bbmig/internal/blockdev"
	"bbmig/internal/blockdev/bcache"
	"bbmig/internal/clock"
	"bbmig/internal/core"
	"bbmig/internal/transport"
	"bbmig/internal/vm"
	"bbmig/internal/workload"
)

func main() {
	var (
		mode       = flag.String("mode", "", "send | recv | demo")
		addr       = flag.String("addr", "", "destination address (send mode)")
		listen     = flag.String("listen", ":7011", "listen address (recv mode)")
		image      = flag.String("image", "", "disk image path")
		sizeMB     = flag.Int("size-mb", 256, "image size when creating (MB)")
		memMB      = flag.Int("mem-mb", 64, "guest memory size (MB)")
		wl         = flag.String("workload", "none", "workload during migration: none|web|stream|diabolical|kernel")
		limitMbps  = flag.Int("limit-mbps", 0, "pre-copy bandwidth cap in Mbit/s (0 = unlimited)")
		seed       = flag.Int64("seed", 1, "workload seed")
		speedup    = flag.Float64("speedup", 1, "workload time compression factor")
		compress   = flag.Bool("compress", false, "DEFLATE-compress the migration stream at the default level (both ends must agree)")
		compLevel  = flag.Int("compress-level", 0, "explicit flate level -2..9 (overrides -compress; both ends must agree)")
		progress   = flag.Bool("progress", false, "print live phase/iteration/byte progress events")
		streams    = flag.Int("streams", 1, "parallel transport connections (both ends must agree)")
		extentBlk  = flag.Int("extent-blocks", 1, "send: max contiguous blocks coalesced per frame")
		workers    = flag.Int("workers", 1, "send: read/send pipeline workers; recv: scatter-write workers")
		readahead  = flag.Int("readahead", 0, "send: extents prefetched into pooled buffers ahead of the wire (0 = sequential; ignored with -workers > 1 or -dedup)")
		dedupFlag  = flag.Bool("dedup", false, "content-addressed dedup: ship block fingerprints and references instead of known bytes (both ends must agree)")
		swarmPeers = flag.String("swarm-peers", "", "recv: comma-separated peer swarm-serve addresses to fetch wanted blocks from (needs -dedup)")
		deltaFlag  = flag.Bool("delta", false, "delta-encode blocks against the destination's stale copies (both ends must agree)")
		deltaChunk = flag.Int("delta-chunk", 0, "recv: signature chunk size in bytes (0 = default 128; local, travels inside each signature)")
		initialBM  = flag.String("initial-bitmap", "", "send: bitmap file selecting blocks for an incremental migration")
		freshBM    = flag.String("fresh-bitmap", "", "recv: file to save the fresh-write bitmap to (enables a later IM back)")
		retries    = flag.Int("max-retries", 0, "send: survive this many connection failures by resuming the session (0 = fail fast)")
		backoff    = flag.Duration("retry-backoff", 0, "send: base reconnect delay (doubles per attempt; 0 = default)")
		journal    = flag.String("journal", "", "send: persist the migration journal (cursor + pending bitmap) to this file")
		resume     = flag.Bool("resume", false, "send: cold-resume from -journal after a source restart (incremental re-run of the owed blocks)")
		cacheBlk   = flag.Int("cache-blocks", 0, "front the image with a write-back block cache of this many blocks; migration reads come from CoW snapshots of it (0 = direct file I/O)")
	)
	flag.Parse()

	level := *compLevel
	if level == 0 && *compress {
		level = -1 // flate.DefaultCompression
	}
	opts := xferOpts{
		streams: *streams, extentBlocks: *extentBlk, workers: *workers,
		readahead: *readahead, compressLevel: level, dedup: *dedupFlag,
		delta: *deltaFlag, deltaChunk: *deltaChunk,
		progress: *progress, maxRetries: *retries, retryBackoff: *backoff,
		journalPath: *journal, cacheBlocks: *cacheBlk,
	}
	if *swarmPeers != "" {
		if !*dedupFlag {
			fmt.Fprintln(os.Stderr, "bbmig: -swarm-peers needs -dedup")
			os.Exit(2)
		}
		opts.swarmPeers = strings.Split(*swarmPeers, ",")
	}
	var err error
	switch *mode {
	case "send":
		if *resume && *journal == "" {
			err = fmt.Errorf("-resume needs -journal")
			break
		}
		err = runSend(*addr, *image, *sizeMB, *memMB, *wl, *limitMbps, *seed, *speedup, opts, *initialBM, *resume)
	case "recv":
		err = runRecv(*listen, *image, *sizeMB, *memMB, opts, *freshBM)
	case "demo":
		err = runDemo(*sizeMB, *memMB, *wl, *seed, opts)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbmig: %v\n", err)
		os.Exit(1)
	}
}

func pickWorkload(name string) (workload.Kind, bool) {
	switch name {
	case "web":
		return workload.Web, true
	case "stream":
		return workload.Stream, true
	case "diabolical":
		return workload.Diabolic, true
	case "kernel":
		return workload.Kernel, true
	default:
		return 0, false
	}
}

func openOrCreate(path string, sizeMB int) (*blockdev.FileDisk, error) {
	if _, err := os.Stat(path); err == nil {
		return blockdev.OpenFileDisk(path, blockdev.BlockSize)
	}
	blocks := sizeMB << 20 / blockdev.BlockSize
	return blockdev.CreateFileDisk(path, blocks, blockdev.BlockSize)
}

// xferOpts bundles the transfer-shape knobs shared by both endpoints.
// Compression is no longer a connection-layer wrap here: it rides in
// core.Config.CompressLevel and the engine decorates its own stream, so the
// cmd layer only builds the raw (possibly striped) transport.
type xferOpts struct {
	streams       int
	extentBlocks  int
	workers       int
	readahead     int
	compressLevel int
	dedup         bool
	delta         bool
	deltaChunk    int
	swarmPeers    []string
	progress      bool
	maxRetries    int
	retryBackoff  time.Duration
	journalPath   string
	cacheBlocks   int
}

// config renders the shared knobs as an engine Config.
func (o xferOpts) config() core.Config {
	cfg := core.Config{
		Streams:         o.streams,
		MaxExtentBlocks: o.extentBlocks,
		Workers:         o.workers,
		Readahead:       o.readahead,
		CompressLevel:   o.compressLevel,
		Dedup:           o.dedup,
		Delta:           o.delta,
		DeltaChunk:      o.deltaChunk,
		Swarm:           len(o.swarmPeers) > 0,
		SwarmPeers:      o.swarmPeers,
		MaxRetries:      o.maxRetries,
		RetryBackoff:    o.retryBackoff,
		JournalPath:     o.journalPath,
	}
	if o.progress {
		cfg.OnEvent = progressPrinter()
	}
	return cfg
}

// progressPrinter renders engine events as human-readable progress lines.
func progressPrinter() core.EventFunc {
	var mu sync.Mutex
	return func(ev core.Event) {
		mu.Lock()
		defer mu.Unlock()
		at := ev.At.Round(time.Millisecond)
		switch ev.Kind {
		case core.EventPhaseStart:
			fmt.Printf("[%s %7v] phase %s\n", ev.Side, at, ev.Phase)
		case core.EventIterationEnd:
			fmt.Printf("[%s %7v] %s iteration %d: %d units, %.1f MiB, %d dirty\n",
				ev.Side, at, ev.Phase, ev.Iteration, ev.Units, float64(ev.Bytes)/(1<<20), ev.Dirty)
		case core.EventBytesTransferred:
			fmt.Printf("[%s %7v] %.0f MiB on the wire\n", ev.Side, at, float64(ev.Bytes)/(1<<20))
		case core.EventSuspended:
			fmt.Printf("[%s %7v] VM suspended (downtime begins)\n", ev.Side, at)
		case core.EventResumed:
			fmt.Printf("[%s %7v] VM running on destination (downtime over)\n", ev.Side, at)
		case core.EventPullServed:
			fmt.Printf("[%s %7v] pull served for block %d\n", ev.Side, at, ev.Units)
		case core.EventCompleted:
			fmt.Printf("[%s %7v] migration complete: %.1f MiB total\n", ev.Side, at, float64(ev.Bytes)/(1<<20))
		case core.EventFailed:
			fmt.Printf("[%s %7v] migration FAILED in %s: %s\n", ev.Side, at, ev.Phase, ev.Err)
		}
	}
}

// dialConn opens the migration transport: a single connection, or a striped
// bundle of o.streams raw connections.
func dialConn(addr string, o xferOpts) (transport.Conn, error) {
	if o.streams <= 1 {
		return transport.Dial(addr)
	}
	return transport.DialStriped(addr, o.streams, nil)
}

// acceptConn mirrors dialConn on the listening side.
func acceptConn(l net.Listener, o xferOpts) (transport.Conn, error) {
	if o.streams <= 1 {
		return transport.Accept(l)
	}
	return transport.AcceptStriped(l, nil)
}

// cacheWrap fronts a file-backed image with a write-back block cache when
// -cache-blocks is set; the engine then reads pre-copy data from CoW
// snapshots of the cache instead of the contended live device. The returned
// flush writes buffered dirty blocks back to the file and must run before
// the image file is read directly, synced, or closed.
func cacheWrap(fd *blockdev.FileDisk, opts xferOpts) (blockdev.Device, func() error) {
	if opts.cacheBlocks <= 0 {
		return fd, func() error { return nil }
	}
	vol := bcache.New(fd, opts.cacheBlocks)
	return vol, vol.Release
}

func runSend(addr, image string, sizeMB, memMB int, wl string, limitMbps int, seed int64, speedup float64, opts xferOpts, initialBMPath string, coldResume bool) error {
	if addr == "" || image == "" {
		return fmt.Errorf("send mode needs -addr and -image")
	}
	disk, err := openOrCreate(image, sizeMB)
	if err != nil {
		return err
	}
	defer disk.Close()
	dev, flushCache := cacheWrap(disk, opts)
	defer func() { _ = flushCache() }() // error path; the success path flushes explicitly
	guest := vm.New("guest", 1, memMB<<20/vm.PageSize, 4096)
	backend := blkback.NewBackend(dev, guest.DomainID)
	router := core.NewRouter(backend.Submit)

	// Optional synthetic workload during the migration.
	stop := make(chan struct{})
	done := make(chan error, 1)
	if kind, ok := pickWorkload(wl); ok {
		gen := workload.New(kind, disk.NumBlocks(), seed)
		go func() {
			_, err := workload.Replay(clock.NewReal(), gen, guest.DomainID, 24*time.Hour, speedup, router.Submit, stop)
			done <- err
		}()
		fmt.Printf("driving %s workload against %s during migration\n", kind, image)
	} else {
		done <- nil
	}

	conn, err := dialConn(addr, opts)
	if err != nil {
		return err
	}
	cur := conn
	defer func() { cur.Close() }()
	var initial *bitmap.Bitmap
	if coldResume {
		// A restarted source re-runs the migration incrementally from the
		// journal's owed-block view (the destination's VBD retains what
		// already landed; duplicates are applied idempotently).
		st, err := core.LoadJournal(opts.journalPath)
		if err != nil {
			return fmt.Errorf("cold resume: %w", err)
		}
		if st.Pending == nil {
			return fmt.Errorf("cold resume: journal at phase %q carries no pending blocks", st.Phase)
		}
		if st.Pending.Len() != disk.NumBlocks() {
			return fmt.Errorf("journal bitmap covers %d blocks, disk has %d", st.Pending.Len(), disk.NumBlocks())
		}
		backend.SeedDirty(st.Pending)
		initial = backend.SwapDirty()
		fmt.Printf("cold resume from %s (phase %s, iteration %d): %d blocks owed\n",
			opts.journalPath, st.Phase, st.Iter, initial.Count())
	} else if initialBMPath != "" {
		initial, err = bitmap.LoadFile(initialBMPath)
		if err != nil {
			return err
		}
		if initial.Len() != disk.NumBlocks() {
			return fmt.Errorf("initial bitmap covers %d blocks, disk has %d", initial.Len(), disk.NumBlocks())
		}
		backend.SeedDirty(initial)
		initial = backend.SwapDirty()
		fmt.Printf("incremental migration: %d blocks to send\n", initial.Count())
	}
	cfg := opts.config()
	cfg.OnFreeze = router.Freeze
	if limitMbps > 0 {
		cfg.BandwidthLimit = int64(limitMbps) * 1e6 / 8
	}
	if cfg.MaxRetries > 0 {
		// Reconnects re-dial a single plain stream; the engine re-applies
		// compression and resumes the session on it.
		cfg.Redial = func() (transport.Conn, error) {
			c, err := transport.Dial(addr)
			if err != nil {
				return nil, err
			}
			cur = c
			return c, nil
		}
	}
	fmt.Printf("migrating %s (%d MB disk, %d MB memory) to %s...\n",
		image, int(blockdev.Capacity(disk)>>20), memMB, addr)
	rep, err := core.MigrateSource(cfg, core.Host{VM: guest, Backend: backend}, conn, initial)
	// The VM now runs on the destination; release any workload I/O frozen
	// at the freeze point by routing it to a sink, then stop the driver.
	router.ResumeAt(func(blockdev.Request) error { return nil })
	close(stop)
	if werr := <-done; werr != nil && err == nil {
		err = werr
	}
	if err != nil {
		return err
	}
	if err := flushCache(); err != nil {
		return err
	}
	fmt.Print(rep.String())
	if rep.Retries > 0 {
		fmt.Printf("survived %d connection failure(s) by resuming the session\n", rep.Retries)
	}
	fmt.Println("source VM stopped; this machine can be shut down (finite dependency)")
	return nil
}

func runRecv(listenAddr, image string, sizeMB, memMB int, opts xferOpts, freshBMPath string) error {
	if image == "" {
		return fmt.Errorf("recv mode needs -image")
	}
	l, err := transport.Listen(listenAddr)
	if err != nil {
		return err
	}
	defer l.Close()
	return recvServe(l, image, sizeMB, memMB, opts, freshBMPath)
}

// recvServe accepts one migration on an already-bound listener; split from
// runRecv so tests (and the demo) can bind the port themselves.
func recvServe(l net.Listener, image string, sizeMB, memMB int, opts xferOpts, freshBMPath string) error {
	fmt.Printf("waiting for migration on %s...\n", l.Addr())
	conn, err := acceptConn(l, opts)
	if err != nil {
		return err
	}
	defer conn.Close()

	disk, err := openOrCreate(image, sizeMB)
	if err != nil {
		return err
	}
	defer disk.Close()
	dev, flushCache := cacheWrap(disk, opts)
	defer func() { _ = flushCache() }()
	shell := vm.New("guest", 1, memMB<<20/vm.PageSize, 0)
	shell.Suspend() // destination shells are born frozen
	backend := blkback.NewBackend(dev, shell.DomainID)

	cfg := opts.config()
	cfg.OnResume = func(g *blkback.PostCopyGate) {
		fmt.Println("VM resumed here; post-copy synchronization running")
	}
	// Always offer a reconnect path: it only activates when the sender
	// negotiates a resumable session in its handshake.
	cfg.WaitReconnect = func(token transport.SessionToken, lastEpoch uint32) (transport.Conn, uint32, error) {
		fmt.Println("link lost; waiting for the source to reconnect...")
		return transport.AcceptResume(l, token, lastEpoch, transport.DefaultResumeWait)
	}
	res, err := core.MigrateDest(cfg, core.Host{VM: shell, Backend: backend}, conn)
	if err != nil {
		return err
	}
	if err := flushCache(); err != nil {
		return err
	}
	if err := disk.Sync(); err != nil {
		return err
	}
	fmt.Printf("migration complete: disk synchronized, %d bytes CPU state, VM %v\n",
		len(res.CPU.Registers), shell.State())
	fmt.Printf("post-copy: %d blocks pulled, %d stale pushes dropped\n",
		res.Report.BlocksPulled, res.Report.StalePushes)
	fresh := res.Gate.FreshBitmap()
	fmt.Printf("fresh-write bitmap holds %d blocks for an incremental migration back\n", fresh.Count())
	if freshBMPath != "" {
		if err := fresh.SaveFile(freshBMPath); err != nil {
			return err
		}
		fmt.Printf("fresh bitmap saved to %s (use as -initial-bitmap when migrating back)\n", freshBMPath)
	}
	return nil
}

// runDemo migrates a synthetic VM over loopback TCP inside one process: the
// receiver binds an ephemeral port and the sender dials it.
func runDemo(sizeMB, memMB int, wl string, seed int64, opts xferOpts) error {
	dir, err := os.MkdirTemp("", "bbmig-demo")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	srcImg := dir + "/src.img"
	dstImg := dir + "/dst.img"

	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer l.Close()
	errCh := make(chan error, 1)
	go func() {
		conn, err := acceptConn(l, opts)
		if err != nil {
			errCh <- err
			return
		}
		defer conn.Close()
		disk, err := openOrCreate(dstImg, sizeMB)
		if err != nil {
			errCh <- err
			return
		}
		defer disk.Close()
		dev, flushCache := cacheWrap(disk, opts)
		shell := vm.New("guest", 1, memMB<<20/vm.PageSize, 0)
		shell.Suspend()
		backend := blkback.NewBackend(dev, shell.DomainID)
		res, err := core.MigrateDest(opts.config(), core.Host{VM: shell, Backend: backend}, conn)
		if ferr := flushCache(); ferr != nil && err == nil {
			err = ferr // the image file is compared below; buffered blocks must land
		}
		if err == nil {
			fmt.Printf("demo receiver: synchronized; %d blocks pulled, fresh bitmap %d blocks\n",
				res.Report.BlocksPulled, res.Gate.FreshBitmap().Count())
		}
		errCh <- err
	}()

	if wl == "" || wl == "none" {
		wl = "web"
	}
	if err := runSend(l.Addr().String(), srcImg, sizeMB, memMB, wl, 0, seed, 50, opts, "", false); err != nil {
		return err
	}
	if err := <-errCh; err != nil {
		return err
	}
	same, err := imagesEqual(srcImg, dstImg)
	if err != nil {
		return err
	}
	fmt.Printf("demo: destination image matches the source's frozen state: %v\n", same)
	return nil
}

func imagesEqual(a, b string) (bool, error) {
	da, err := blockdev.OpenFileDisk(a, blockdev.BlockSize)
	if err != nil {
		return false, err
	}
	defer da.Close()
	db, err := blockdev.OpenFileDisk(b, blockdev.BlockSize)
	if err != nil {
		return false, err
	}
	defer db.Close()
	diffs, err := blockdev.Diff(da, db)
	if err != nil {
		return false, err
	}
	return len(diffs) == 0, nil
}
