package main

import (
	"path/filepath"
	"testing"
)

func TestMakeGenerator(t *testing.T) {
	for _, wl := range []string{"web", "stream", "diabolical", "kernel"} {
		g, blocks, err := makeGenerator(wl, 100, 1)
		if err != nil || g == nil || blocks != 100<<20/4096 {
			t.Fatalf("%s: %v %v %d", wl, g, err, blocks)
		}
	}
	if _, _, err := makeGenerator("bogus", 100, 1); err == nil {
		t.Fatal("bogus workload accepted")
	}
}

func TestRecordThenAnalyze(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.trace")
	if err := runRecord("web", out, 0.2, 64, 1); err != nil {
		t.Fatal(err)
	}
	if err := runAnalyze("", out, 0.2, 64, 1); err != nil {
		t.Fatal(err)
	}
	// live analysis without a file
	if err := runAnalyze("kernel", "", 0.1, 64, 1); err != nil {
		t.Fatal(err)
	}
	// argument validation
	if err := runRecord("web", "", 1, 64, 1); err == nil {
		t.Fatal("record without -out accepted")
	}
	if err := runAnalyze("", "", 1, 64, 1); err == nil {
		t.Fatal("analyze without inputs accepted")
	}
	if err := runRecord("bogus", out, 1, 64, 1); err == nil {
		t.Fatal("bogus workload accepted")
	}
}
