// Command bbtrace records, inspects, and analyzes block-I/O traces — the
// instrumentation behind the paper's §IV-A-2 write-locality measurements.
//
//	bbtrace -mode record -workload web -minutes 30 -out web.trace
//	bbtrace -mode analyze -in web.trace
//	bbtrace -mode analyze -workload diabolical       # analyze live, no file
//
// Recorded traces replay through the migration engine exactly like the
// built-in generators (workload.LoadTrace returns a Generator), so a trace
// captured from one experiment can drive another reproducibly.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bbmig/internal/blockdev"
	"bbmig/internal/workload"
)

func main() {
	var (
		mode    = flag.String("mode", "", "record | analyze")
		wl      = flag.String("workload", "", "workload to record/analyze: web|stream|diabolical|kernel")
		in      = flag.String("in", "", "trace file to analyze")
		out     = flag.String("out", "", "trace file to write")
		minutes = flag.Float64("minutes", 10, "workload time to cover")
		diskMB  = flag.Int("disk-mb", 39070, "disk size the workload runs against (MB)")
		seed    = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	var err error
	switch *mode {
	case "record":
		err = runRecord(*wl, *out, *minutes, *diskMB, *seed)
	case "analyze":
		err = runAnalyze(*wl, *in, *minutes, *diskMB, *seed)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbtrace: %v\n", err)
		os.Exit(1)
	}
}

func makeGenerator(wl string, diskMB int, seed int64) (workload.Generator, int, error) {
	blocks := diskMB << 20 / blockdev.BlockSize
	switch wl {
	case "web":
		return workload.NewWebServer(blocks, seed), blocks, nil
	case "stream":
		return workload.NewStreaming(blocks, seed), blocks, nil
	case "diabolical":
		return workload.NewDiabolical(blocks, seed), blocks, nil
	case "kernel":
		return workload.NewKernelBuild(blocks, seed), blocks, nil
	default:
		return nil, 0, fmt.Errorf("unknown workload %q", wl)
	}
}

func runRecord(wl, out string, minutes float64, diskMB int, seed int64) error {
	if out == "" {
		return fmt.Errorf("record mode needs -out")
	}
	gen, blocks, err := makeGenerator(wl, diskMB, seed)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	tw, err := workload.NewTraceWriter(f, blocks)
	if err != nil {
		return err
	}
	horizon := time.Duration(minutes * float64(time.Minute))
	for {
		a := gen.Next()
		if a.At >= horizon {
			break
		}
		if err := tw.Append(a); err != nil {
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("recorded %d accesses (%.1f min of %s) to %s\n", tw.Count(), minutes, gen.Name(), out)
	return nil
}

func runAnalyze(wl, in string, minutes float64, diskMB int, seed int64) error {
	var gen workload.Generator
	var err error
	switch {
	case in != "":
		gen, err = workload.LoadTrace(in)
		if err != nil {
			return err
		}
	case wl != "":
		gen, _, err = makeGenerator(wl, diskMB, seed)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("analyze mode needs -in or -workload")
	}
	horizon := time.Duration(minutes * float64(time.Minute))
	if d, ok := gen.(*workload.Diabolical); ok {
		horizon = d.CycleDuration()
	}
	st := workload.Locality(gen, horizon)
	fmt.Printf("%s over %v:\n  %s\n", gen.Name(), horizon.Round(time.Second), st)
	fmt.Printf("  dirty footprint: %.1f MB; bitmap to cover it (dense): %.2f MiB\n",
		float64(st.UniqueBlocks)*blockdev.BlockSize/1e6,
		float64(diskMB<<20/blockdev.BlockSize/8)/(1<<20))
	fmt.Println("paper §IV-A-2: kernel build ~11%, SPECweb banking 25.2%, Bonnie++ 35.6%")
	return nil
}
