// Package bbmig is the public facade of the block-bitmap whole-system live
// VM migration library, a reproduction of Luo et al., "Live and Incremental
// Whole-System Migration of Virtual Machines Using Block-Bitmap" (IEEE
// CLUSTER 2008).
//
// The library migrates a virtual machine's complete run-time state — local
// disk storage, memory, and CPU state — between two hosts with no shared
// storage, keeping the VM live throughout:
//
//	src := bbmig.Host{VM: guest, Backend: blkback.NewBackend(disk, guest.DomainID)}
//	report, err := bbmig.MigrateSource(bbmig.Config{}, src, conn, nil)
//
// Three phases (§IV): pre-copy iteratively ships the disk then memory while
// a block-bitmap records concurrent writes; freeze-and-copy suspends the VM
// just long enough to send the final dirty pages, CPU state, and the bitmap;
// post-copy resumes the VM on the destination while the source pushes the
// remaining dirty blocks and the destination pulls any the guest reads
// first. Passing a bitmap from a previous migration's destination gate as
// the `initial` argument performs Incremental Migration back (§V).
//
// # Parallel transfer
//
// The paper ships every dirty block as its own frame over one ordered
// connection; three Config knobs lift that limit while defaulting to the
// paper's exact behavior:
//
//   - Config.MaxExtentBlocks coalesces runs of contiguous dirty blocks into
//     single MsgExtent frames (Arg packs start and count, payload carries
//     the concatenated blocks), amortizing per-frame header and flush cost.
//   - Config.Workers pipelines read→compress→send on the source and
//     scatter-applies received frames on the destination. Parallelism stays
//     within one pre-copy iteration — each block/page number appears at most
//     once per iteration — and iteration boundaries drain the pools.
//   - Config.Streams stripes data frames round-robin across N connections
//     (DialStriped/AcceptStriped/NewStriped). Control frames are pinned to
//     stream 0 behind a broadcast barrier, so SUSPEND/RESUME/ITER_END keep
//     their ordering against data on other streams.
//
// The default (1 stream, extent size 1, 1 worker) is wire-compatible with
// the seed protocol; any other setting requires both endpoints to agree on
// the stream count, exactly as with compression.
//
// Subpackages (internal/...) hold the substrates: bitmap, blockdev, blkback,
// transport, vm, workload, metrics, and the paper-scale simulator sim. The
// examples/ directory shows complete wirings; cmd/bbmig is a runnable
// migration daemon and cmd/bbench regenerates every table and figure of the
// paper's evaluation.
package bbmig

import (
	"bbmig/internal/bitmap"
	"bbmig/internal/core"
	"bbmig/internal/metrics"
	"bbmig/internal/transport"
)

// Config parameterizes a migration; the zero value uses the paper's
// defaults. See core.Config for field documentation.
type Config = core.Config

// Host bundles one machine's VM and block backend.
type Host = core.Host

// Router switches the guest's I/O path across the migration and implements
// the freeze window.
type Router = core.Router

// DestResult is the destination side's outcome, carrying the post-copy gate
// whose fresh bitmap seeds an incremental migration back.
type DestResult = core.DestResult

// Report carries the paper's §III-A metrics for one migration run.
type Report = metrics.Report

// Bitmap is the block-bitmap used to select blocks for incremental
// migration.
type Bitmap = bitmap.Bitmap

// NewRouter returns a Router initially routing to submit.
var NewRouter = core.NewRouter

// MigrateSource runs the source side of a three-phase migration. A nil
// initial bitmap migrates the whole disk; a previous DestResult's
// Gate.FreshBitmap() migrates incrementally.
var MigrateSource = core.MigrateSource

// MigrateDest runs the destination side of a three-phase migration.
var MigrateDest = core.MigrateDest

// Dial connects to a destination migration daemon over TCP.
var Dial = transport.Dial

// Listen opens a TCP listener for incoming migrations.
var Listen = transport.Listen

// Accept wraps an accepted connection as a migration transport.
var Accept = transport.Accept

// NewPipe returns two connected in-process transports, for tests and
// single-process demonstrations.
var NewPipe = transport.NewPipe

// NewStriped bundles several transports into one multi-stream connection;
// pair with Config.Streams, MaxExtentBlocks, and Workers for parallel
// transfer.
var NewStriped = transport.NewStriped

// DialStriped opens a Config.Streams-wide striped bundle to a destination.
var DialStriped = transport.DialStriped

// AcceptStriped accepts a striped bundle opened by DialStriped.
var AcceptStriped = transport.AcceptStriped
