// Package bbmig is the public facade of the block-bitmap whole-system live
// VM migration library, a reproduction of Luo et al., "Live and Incremental
// Whole-System Migration of Virtual Machines Using Block-Bitmap" (IEEE
// CLUSTER 2008).
//
// The library migrates a virtual machine's complete run-time state — local
// disk storage, memory, and CPU state — between two hosts with no shared
// storage, keeping the VM live throughout:
//
//	src := bbmig.Host{VM: guest, Backend: blkback.NewBackend(disk, guest.DomainID)}
//	report, err := bbmig.MigrateSource(bbmig.Config{}, src, conn, nil)
//
// Three phases (§IV): pre-copy iteratively ships the disk then memory while
// a block-bitmap records concurrent writes; freeze-and-copy suspends the VM
// just long enough to send the final dirty pages, CPU state, and the bitmap;
// post-copy resumes the VM on the destination while the source pushes the
// remaining dirty blocks and the destination pulls any the guest reads
// first. Passing a bitmap from a previous migration's destination gate as
// the `initial` argument performs Incremental Migration back (§V).
//
// # Parallel transfer
//
// The paper ships every dirty block as its own frame over one ordered
// connection; three Config knobs lift that limit while defaulting to the
// paper's exact behavior:
//
//   - Config.MaxExtentBlocks coalesces runs of contiguous dirty blocks into
//     single MsgExtent frames (Arg packs start and count, payload carries
//     the concatenated blocks), amortizing per-frame header and flush cost.
//   - Config.Workers pipelines read→compress→send on the source and
//     scatter-applies received frames on the destination. Parallelism stays
//     within one pre-copy iteration — each block/page number appears at most
//     once per iteration — and iteration boundaries drain the pools.
//   - Config.Streams stripes data frames round-robin across N connections
//     (DialStriped/AcceptStriped/NewStriped). Control frames are pinned to
//     stream 0 behind a broadcast barrier, so SUSPEND/RESUME/ITER_END keep
//     their ordering against data on other streams.
//
// The default (1 stream, extent size 1, 1 worker) is wire-compatible with
// the seed protocol.
//
// # Phase pipeline and progress events
//
// Every scheme the library implements — TPM, IM, and the three comparison
// baselines — is a pipeline of named phases (handshake, disk-precopy,
// mem-precopy, freeze-and-copy, post-copy, …) over one shared transfer
// substrate. Both endpoints publish typed progress events as the pipeline
// runs: set Config.OnEvent and receive PhaseStart/PhaseEnd transitions,
// IterationEnd summaries, throttled BytesTransferred heartbeats, the
// Suspended/Resumed downtime bounds, PullServed notifications, and a
// terminal Completed or Failed. Handlers may be called concurrently and
// must not block. ProgressTracker folds the stream into a queryable
// Progress snapshot — the hostd layer uses exactly this to answer
// live-status queries for in-flight migrations.
//
// # Policies
//
// The Policy interface owns the decisions the engine otherwise freezes in
// constants: pre-copy stop conditions, the live extent coalescing limit,
// per-payload compression verdicts, and pre-copy pacing. DefaultPolicy (the
// nil default) reproduces the paper's behavior exactly — with the other
// knobs at their defaults it is wire-identical to the seed protocol, which
// a golden frame-trace test enforces. AdaptivePolicy grows the extent size
// by slow start from observed throughput and gates compression attempts by
// observed shrink ratio; on a latency-bound link it recovers the hand-tuned
// configuration's throughput without anyone picking constants.
//
// # Content-addressed deduplication
//
// The block-bitmap deduplicates positionally — a block dirtied many times
// ships once per iteration. Config.Dedup deduplicates by content: during
// disk pre-copy the source adverts each extent's per-block fingerprints
// (SHA-256/128), the destination answers with a want-bitmap naming the
// content it cannot already produce, and everything else travels as
// 16-byte references materialized from the destination's fingerprint
// index — retained peer copies, clone siblings' disks, blocks received
// earlier in the same migration, and the implicit zero block (all-zero
// runs are elided without even a round trip). The index is advisory and
// verify-on-read: a stale or corrupt-loaded entry degrades to a literal
// send, never to wrong bytes. hostd maintains one index per machine
// (persisted alongside its retained disks), so evacuating a fleet of
// template-provisioned clones between the same hosts ships fingerprints
// instead of images — `bbench -exp dedup` models a clone-fleet evacuation
// moving 5-10x fewer bytes. Dedup is negotiated like Streams and
// CompressLevel: hostd carries it in the announce; raw engine users pass
// -dedup (bbmig) or Config.Dedup on both sides.
//
// # Fault tolerance and resumable migration
//
// By default a connection failure is fatal, matching the seed protocol.
// Setting Config.MaxRetries (with a Config.Redial callback on the source
// and a Config.WaitReconnect callback on the destination) makes the
// migration resumable: the handshake negotiates a session token, the source
// checkpoints a journal (pipeline cursor + pending bitmap — the paper's
// persistent block-bitmap put to work) at phase and iteration boundaries,
// and on a link failure it backs off, re-dials, and exchanges a resume
// handshake in which the destination reports exactly what it has received —
// down to a per-iteration transfer-cursor bitmap. The source then re-enters
// the earliest unconfirmed phase sending only the blocks still owed, so a
// flap deep into a 40 GB transfer costs roughly the frames in flight, not a
// restart. Config.JournalPath persists the journal so a restarted source
// can cold-resume incrementally (cmd/bbmig -resume). Fault-free resumable
// runs add only the token to the HELLO payload; with resumption disabled
// the wire format is byte-identical to the seed protocol.
//
// # Cluster orchestration
//
// internal/cluster manages a fleet of host daemons above all of this: a
// placement engine scores destinations by free capacity, migration load,
// and link bandwidth; an admission-controlled scheduler runs many
// concurrent migrations under per-host and fleet-wide caps with priority
// queues and queued-job cancellation; and Drain/Rebalance build maintenance
// operations on both. Concurrent migrations share the network through a
// RateBudget: each one's Config carries a BudgetPolicy whose pacing verdict
// is re-read on every paced frame, so the per-migration share re-splits
// live as migrations start and finish. Drains can pre-sync each domain's
// divergence to its target while the guest keeps running (hostd.SyncOut),
// shrinking the cutover to the recent write set — the paper's Incremental
// Migration applied to planned maintenance. cmd/bbcluster demonstrates the
// drain/rebalance/status verbs on an in-process fleet, and `bbench -exp
// cluster` sweeps evacuation makespan and per-VM downtime against scheduler
// concurrency at paper scale.
//
// # Negotiated vs local configuration
//
// Three Config fields change the wire framing and must match on both
// endpoints: Streams, CompressLevel, and Dedup. The hostd layer negotiates
// all three automatically in its announce frame (a mismatched receiver
// refuses before the engine handshake); raw engine users pass matching
// values on both sides. Everything else — thresholds, Workers,
// MaxExtentBlocks, BandwidthLimit, Policy, OnEvent and the lifecycle
// hooks — is local-only and may differ freely between endpoints.
//
// Subpackages (internal/...) hold the substrates: bitmap, blockdev, blkback,
// transport, vm, workload, metrics, and the paper-scale simulator sim. The
// examples/ directory shows complete wirings; cmd/bbmig is a runnable
// migration daemon and cmd/bbench regenerates every table and figure of the
// paper's evaluation (plus a machine-readable BENCH_*.json suite).
package bbmig

import (
	"bbmig/internal/bitmap"
	"bbmig/internal/core"
	"bbmig/internal/dedup"
	"bbmig/internal/metrics"
	"bbmig/internal/transport"
)

// Config parameterizes a migration; the zero value uses the paper's
// defaults. See core.Config for field documentation.
type Config = core.Config

// Host bundles one machine's VM and block backend.
type Host = core.Host

// Router switches the guest's I/O path across the migration and implements
// the freeze window.
type Router = core.Router

// DestResult is the destination side's outcome, carrying the post-copy gate
// whose fresh bitmap seeds an incremental migration back.
type DestResult = core.DestResult

// Report carries the paper's §III-A metrics for one migration run.
type Report = metrics.Report

// Policy owns the runtime transfer decisions (stop conditions, extent size,
// compression verdicts, pacing). Nil in Config selects DefaultPolicy.
type Policy = core.Policy

// DefaultPolicy reproduces the paper's fixed behavior; it is wire-identical
// to the seed protocol under the default Config.
type DefaultPolicy = core.DefaultPolicy

// AdaptivePolicy tunes extent size and compression from observed
// dirty-rate vs. throughput. One instance per migration.
type AdaptivePolicy = core.AdaptivePolicy

// IterationStat summarizes one pre-copy iteration for policy decisions.
type IterationStat = core.IterationStat

// RateBudget divides a global pre-copy bandwidth budget among the
// migrations currently drawing from it (the cluster orchestrator's shared
// allocator).
type RateBudget = core.RateBudget

// NewRateBudget returns a budget of total bytes/second; <= 0 disables it.
var NewRateBudget = core.NewRateBudget

// BudgetPolicy decorates a Policy so a migration's pre-copy pacing follows
// a shared RateBudget, re-read live on every paced frame.
type BudgetPolicy = core.BudgetPolicy

// DedupIndex is the destination-side content-fingerprint index consulted
// under Config.Dedup; share one per machine so retained and clone-sibling
// disks deduplicate across migrations (hostd does exactly this).
type DedupIndex = dedup.Index

// NewDedupIndex returns an empty content index for the given block size.
var NewDedupIndex = dedup.NewIndex

// Fingerprint is one block's content hash (SHA-256 truncated to 128 bits).
type Fingerprint = dedup.Fingerprint

// FingerprintOf fingerprints a block's content.
var FingerprintOf = dedup.Of

// Event is one typed progress notification; see Config.OnEvent.
type Event = core.Event

// EventKind identifies a progress event.
type EventKind = core.EventKind

// EventFunc consumes progress events; it may be invoked concurrently.
type EventFunc = core.EventFunc

// Progress is a point-in-time snapshot of one migration endpoint.
type Progress = core.Progress

// ProgressTracker folds an event stream into a queryable Progress snapshot.
type ProgressTracker = core.ProgressTracker

// NewProgressTracker returns an empty tracker; wire Handle into
// Config.OnEvent and call Snapshot from any goroutine.
var NewProgressTracker = core.NewProgressTracker

// ChainEvents composes several event handlers into one.
var ChainEvents = core.ChainEvents

// Bitmap is the block-bitmap used to select blocks for incremental
// migration.
type Bitmap = bitmap.Bitmap

// RedialFunc re-establishes the source's transport after a connection
// failure; pair with Config.MaxRetries.
type RedialFunc = core.RedialFunc

// ReconnectFunc hands the destination engine a reconnecting source's fresh
// connection; see Config.WaitReconnect.
type ReconnectFunc = core.ReconnectFunc

// SessionToken identifies a resumable migration across reconnects.
type SessionToken = transport.SessionToken

// JournalState is one checkpoint of a resumable migration's journal.
type JournalState = core.JournalState

// Journal mirrors a resumable migration's checkpoints (optionally to disk).
type Journal = core.Journal

// LoadJournal reads a journal persisted via Config.JournalPath, for
// cold-resuming a migration after a source restart.
var LoadJournal = core.LoadJournal

// AcceptResume parks on a listener until a connection opens with a valid
// session-resume frame — the standard Config.WaitReconnect implementation
// for TCP destinations.
var AcceptResume = transport.AcceptResume

// IsConnError reports whether an error is a retryable connection failure
// (as opposed to a protocol or device error).
var IsConnError = transport.IsConnError

// NewRouter returns a Router initially routing to submit.
var NewRouter = core.NewRouter

// MigrateSource runs the source side of a three-phase migration. A nil
// initial bitmap migrates the whole disk; a previous DestResult's
// Gate.FreshBitmap() migrates incrementally.
var MigrateSource = core.MigrateSource

// MigrateDest runs the destination side of a three-phase migration.
var MigrateDest = core.MigrateDest

// Dial connects to a destination migration daemon over TCP.
var Dial = transport.Dial

// Listen opens a TCP listener for incoming migrations.
var Listen = transport.Listen

// Accept wraps an accepted connection as a migration transport.
var Accept = transport.Accept

// NewPipe returns two connected in-process transports, for tests and
// single-process demonstrations.
var NewPipe = transport.NewPipe

// NewStriped bundles several transports into one multi-stream connection;
// pair with Config.Streams, MaxExtentBlocks, and Workers for parallel
// transfer.
var NewStriped = transport.NewStriped

// DialStriped opens a Config.Streams-wide striped bundle to a destination.
var DialStriped = transport.DialStriped

// AcceptStriped accepts a striped bundle opened by DialStriped.
var AcceptStriped = transport.AcceptStriped
