package vm

import (
	"bytes"
	"crypto/rand"
	"fmt"
	"sync"
)

// CPUState is the opaque register file transferred during freeze-and-copy.
// The migration engine never interprets it — it only needs the bytes to
// arrive intact, which Equal verifies in tests.
type CPUState struct {
	Registers []byte
}

// NewCPUState returns a CPUState of n random register bytes, standing in for
// the architectural state a hypervisor would serialize.
func NewCPUState(n int) CPUState {
	r := make([]byte, n)
	if _, err := rand.Read(r); err != nil {
		panic(fmt.Sprintf("vm: cpu state entropy: %v", err))
	}
	return CPUState{Registers: r}
}

// Equal reports whether two CPU states are identical.
func (c CPUState) Equal(o CPUState) bool { return bytes.Equal(c.Registers, o.Registers) }

// Clone returns a deep copy.
func (c CPUState) Clone() CPUState {
	r := make([]byte, len(c.Registers))
	copy(r, c.Registers)
	return CPUState{Registers: r}
}

// State is the VM lifecycle state.
type State int

// Lifecycle states. A migrating VM is Running on the source until
// freeze-and-copy suspends it, then Running again on the destination after
// the post-copy resume.
const (
	// Running means the guest executes and submits I/O.
	Running State = iota
	// Suspended means the guest is frozen (freeze-and-copy phase).
	Suspended
	// Stopped means the VM was shut down (e.g. the source copy after a
	// completed migration).
	Stopped
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Running:
		return "running"
	case Suspended:
		return "suspended"
	case Stopped:
		return "stopped"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// VM is a migratable virtual machine: a domain ID (the paper's R.VM field),
// memory, and CPU state. The VBD is attached externally through the blkback
// layer, mirroring Xen's split-driver architecture where the disk lives in
// Domain0, not in the guest.
type VM struct {
	Name     string
	DomainID int

	mu    sync.RWMutex
	state State
	mem   *Memory
	cpu   CPUState
}

// New returns a Running VM with the given memory geometry and CPU state size.
func New(name string, domainID, numPages, cpuBytes int) *VM {
	return &VM{
		Name:     name,
		DomainID: domainID,
		state:    Running,
		mem:      NewMemory(numPages, PageSize),
		cpu:      NewCPUState(cpuBytes),
	}
}

// Memory returns the guest memory.
func (v *VM) Memory() *Memory {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.mem
}

// CPU returns a copy of the CPU state.
func (v *VM) CPU() CPUState {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.cpu.Clone()
}

// SetCPU installs CPU state (used on the destination after freeze-and-copy).
func (v *VM) SetCPU(c CPUState) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.cpu = c.Clone()
}

// State returns the lifecycle state.
func (v *VM) State() State {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.state
}

// Suspend freezes a Running VM. Suspending a non-running VM is an error —
// the engine must never double-suspend.
func (v *VM) Suspend() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.state != Running {
		return fmt.Errorf("vm %s: suspend in state %v", v.Name, v.state)
	}
	v.state = Suspended
	return nil
}

// Resume unfreezes a Suspended VM.
func (v *VM) Resume() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.state != Suspended {
		return fmt.Errorf("vm %s: resume in state %v", v.Name, v.state)
	}
	v.state = Running
	return nil
}

// Stop shuts the VM down from any state.
func (v *VM) Stop() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.state = Stopped
}

// NewDestination builds the destination-side shell of a migrating VM: same
// name/domain, empty memory of identical geometry, no CPU state yet.
func NewDestination(src *VM) *VM {
	m := src.Memory()
	return &VM{
		Name:     src.Name,
		DomainID: src.DomainID,
		state:    Suspended, // born frozen; resumed by post-copy
		mem:      NewMemory(m.NumPages(), m.PageSize()),
	}
}
