// Package vm models the migrated virtual machine: paged memory with
// dirty-page tracking, opaque CPU state, and the running/suspended lifecycle.
//
// The paper's memory migration is inherited unchanged from Xen live
// migration (Clark et al., NSDI'05): iterative pre-copy with a dirty-page
// bitmap, then a final copy of remaining dirty pages during the freeze. This
// package provides the substrate — paged memory whose writes are tracked in
// an atomic bitmap exactly like disk writes are tracked in the block-bitmap —
// and the engine in internal/core drives the iterations.
package vm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"bbmig/internal/bitmap"
)

// PageSize is the guest page granularity.
const PageSize = 4096

// Memory is the guest's physical memory: numPages pages of pageSize bytes,
// lazily allocated, with optional dirty tracking. It is safe for concurrent
// use; the guest workload writes pages while the migration engine snapshots
// the dirty bitmap.
type Memory struct {
	mu       sync.RWMutex
	pages    map[int][]byte
	pageSize int
	numPages int
	dirty    *bitmap.Atomic
	tracking atomic.Bool
	writes   atomic.Int64
}

// NewMemory returns a zeroed Memory with numPages pages of pageSize bytes.
func NewMemory(numPages, pageSize int) *Memory {
	if numPages < 0 || pageSize <= 0 {
		panic(fmt.Sprintf("vm: bad memory geometry %dx%d", numPages, pageSize))
	}
	return &Memory{
		pages:    make(map[int][]byte),
		pageSize: pageSize,
		numPages: numPages,
		dirty:    bitmap.NewAtomic(numPages),
	}
}

// PageSize returns the page size in bytes.
func (m *Memory) PageSize() int { return m.pageSize }

// NumPages returns the number of pages.
func (m *Memory) NumPages() int { return m.numPages }

// check validates a page number.
func (m *Memory) check(n int) error {
	if n < 0 || n >= m.numPages {
		return fmt.Errorf("vm: page %d out of range [0,%d)", n, m.numPages)
	}
	return nil
}

// ReadPage copies page n into dst (len ≥ PageSize). Unwritten pages read as
// zeros.
func (m *Memory) ReadPage(n int, dst []byte) error {
	if err := m.check(n); err != nil {
		return err
	}
	if len(dst) < m.pageSize {
		return fmt.Errorf("vm: read buffer %d < page size %d", len(dst), m.pageSize)
	}
	m.mu.RLock()
	p := m.pages[n]
	if p == nil {
		m.mu.RUnlock()
		clear(dst[:m.pageSize])
		return nil
	}
	copy(dst, p)
	m.mu.RUnlock()
	return nil
}

// WritePage overwrites page n with src and, when tracking is on, marks the
// page dirty — the software analogue of the shadow-page-table write faults
// Xen uses to populate its dirty bitmap.
func (m *Memory) WritePage(n int, src []byte) error {
	if err := m.check(n); err != nil {
		return err
	}
	if len(src) < m.pageSize {
		return fmt.Errorf("vm: write buffer %d < page size %d", len(src), m.pageSize)
	}
	m.mu.Lock()
	p := m.pages[n]
	if p == nil {
		p = make([]byte, m.pageSize)
		m.pages[n] = p
	}
	copy(p, src)
	m.mu.Unlock()
	m.writes.Add(1)
	if m.tracking.Load() {
		m.dirty.Set(n)
	}
	return nil
}

// StartTracking begins recording dirtied pages.
func (m *Memory) StartTracking() { m.tracking.Store(true) }

// StopTracking stops recording dirtied pages.
func (m *Memory) StopTracking() { m.tracking.Store(false) }

// Tracking reports whether dirty tracking is active.
func (m *Memory) Tracking() bool { return m.tracking.Load() }

// SwapDirty atomically captures and clears the dirty-page bitmap; the
// iterative pre-copy calls this at each iteration boundary.
func (m *Memory) SwapDirty() *bitmap.Bitmap { return m.dirty.SwapOut() }

// DirtyCount returns the current number of dirty pages.
func (m *Memory) DirtyCount() int { return m.dirty.Count() }

// Writes returns the total number of page writes ever applied.
func (m *Memory) Writes() int64 { return m.writes.Load() }

// AllocatedPages returns how many pages have ever been written.
func (m *Memory) AllocatedPages() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.pages)
}
