package vm

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory(16, PageSize)
	if m.NumPages() != 16 || m.PageSize() != PageSize {
		t.Fatal("geometry wrong")
	}
	buf := make([]byte, PageSize)
	if err := m.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, PageSize)) {
		t.Fatal("fresh page not zero")
	}
	src := bytes.Repeat([]byte{0x5A}, PageSize)
	if err := m.WritePage(7, src); err != nil {
		t.Fatal(err)
	}
	m.ReadPage(7, buf)
	if !bytes.Equal(buf, src) {
		t.Fatal("round trip mismatch")
	}
	if m.AllocatedPages() != 1 || m.Writes() != 1 {
		t.Fatalf("alloc=%d writes=%d", m.AllocatedPages(), m.Writes())
	}
}

func TestMemoryBounds(t *testing.T) {
	m := NewMemory(4, PageSize)
	buf := make([]byte, PageSize)
	if err := m.ReadPage(4, buf); err == nil {
		t.Fatal("OOB read accepted")
	}
	if err := m.WritePage(-1, buf); err == nil {
		t.Fatal("OOB write accepted")
	}
	if err := m.ReadPage(0, buf[:8]); err == nil {
		t.Fatal("short read buffer accepted")
	}
	if err := m.WritePage(0, buf[:8]); err == nil {
		t.Fatal("short write buffer accepted")
	}
}

func TestMemoryDirtyTracking(t *testing.T) {
	m := NewMemory(32, PageSize)
	buf := make([]byte, PageSize)
	m.WritePage(1, buf)
	if m.DirtyCount() != 0 {
		t.Fatal("dirty recorded before tracking enabled")
	}
	m.StartTracking()
	if !m.Tracking() {
		t.Fatal("Tracking false")
	}
	m.WritePage(2, buf)
	m.WritePage(3, buf)
	m.WritePage(2, buf) // rewrite: one bit
	if m.DirtyCount() != 2 {
		t.Fatalf("DirtyCount = %d", m.DirtyCount())
	}
	d := m.SwapDirty()
	if d.Count() != 2 || !d.Test(2) || !d.Test(3) {
		t.Fatal("SwapDirty contents wrong")
	}
	if m.DirtyCount() != 0 {
		t.Fatal("SwapDirty did not clear")
	}
	m.StopTracking()
	m.WritePage(4, buf)
	if m.DirtyCount() != 0 {
		t.Fatal("dirty recorded after StopTracking")
	}
}

func TestMemoryConcurrentWriters(t *testing.T) {
	m := NewMemory(128, PageSize)
	m.StartTracking()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := bytes.Repeat([]byte{byte(w)}, PageSize)
			for i := 0; i < 128; i++ {
				if err := m.WritePage(i, buf); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if m.DirtyCount() != 128 {
		t.Fatalf("DirtyCount = %d", m.DirtyCount())
	}
	if m.Writes() != 8*128 {
		t.Fatalf("Writes = %d", m.Writes())
	}
}

func TestCPUState(t *testing.T) {
	c := NewCPUState(512)
	if len(c.Registers) != 512 {
		t.Fatal("size wrong")
	}
	cl := c.Clone()
	if !c.Equal(cl) {
		t.Fatal("clone not equal")
	}
	cl.Registers[0] ^= 0xFF
	if c.Equal(cl) {
		t.Fatal("clone aliases original")
	}
}

func TestVMLifecycle(t *testing.T) {
	v := New("guest", 1, 64, 256)
	if v.State() != Running {
		t.Fatal("new VM not running")
	}
	if err := v.Resume(); err == nil {
		t.Fatal("resume of running VM accepted")
	}
	if err := v.Suspend(); err != nil {
		t.Fatal(err)
	}
	if v.State() != Suspended {
		t.Fatal("not suspended")
	}
	if err := v.Suspend(); err == nil {
		t.Fatal("double suspend accepted")
	}
	if err := v.Resume(); err != nil {
		t.Fatal(err)
	}
	v.Stop()
	if v.State() != Stopped {
		t.Fatal("not stopped")
	}
	if Running.String() != "running" || Suspended.String() != "suspended" ||
		Stopped.String() != "stopped" || State(9).String() == "" {
		t.Fatal("State.String wrong")
	}
}

func TestVMCPURoundTrip(t *testing.T) {
	v := New("guest", 1, 64, 128)
	orig := v.CPU()
	// mutating the returned copy must not affect the VM
	orig.Registers[0] ^= 0xFF
	if v.CPU().Equal(orig) {
		t.Fatal("CPU() exposes internal state")
	}
	v.SetCPU(orig)
	if !v.CPU().Equal(orig) {
		t.Fatal("SetCPU lost state")
	}
}

func TestNewDestinationShell(t *testing.T) {
	src := New("guest", 5, 64, 128)
	buf := bytes.Repeat([]byte{1}, PageSize)
	src.Memory().WritePage(0, buf)
	dst := NewDestination(src)
	if dst.State() != Suspended {
		t.Fatal("destination shell not suspended")
	}
	if dst.Name != "guest" || dst.DomainID != 5 {
		t.Fatal("identity not copied")
	}
	if dst.Memory().NumPages() != 64 {
		t.Fatal("geometry not copied")
	}
	if dst.Memory().AllocatedPages() != 0 {
		t.Fatal("destination memory not empty")
	}
}

// TestQuickMemoryMatchesMap property-tests Memory against a map oracle and
// verifies the dirty bitmap records exactly the written pages.
func TestQuickMemoryMatchesMap(t *testing.T) {
	f := func(writes []uint16) bool {
		const n = 200
		m := NewMemory(n, PageSize)
		m.StartTracking()
		ref := make(map[int]byte)
		buf := make([]byte, PageSize)
		for i, w := range writes {
			page := int(w) % n
			fill := byte(i)
			for j := range buf {
				buf[j] = fill
			}
			if err := m.WritePage(page, buf); err != nil {
				return false
			}
			ref[page] = fill
		}
		got := make([]byte, PageSize)
		for page, fill := range ref {
			if err := m.ReadPage(page, got); err != nil {
				return false
			}
			for _, b := range got {
				if b != fill {
					return false
				}
			}
		}
		return m.DirtyCount() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
