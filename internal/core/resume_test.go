package core

import (
	"errors"
	"os"
	"testing"
	"time"

	"bbmig/internal/bitmap"
	"bbmig/internal/blockdev"
	"bbmig/internal/metrics"
	"bbmig/internal/transport"
	"bbmig/internal/workload"
)

// writeRaw replaces path's contents without the atomic-save discipline,
// simulating torn or corrupt on-disk state.
func writeRaw(t *testing.T, path string, data []byte) error {
	t.Helper()
	return os.WriteFile(path, data, 0o644)
}

// pipeRelinker wires a resumable migration's two reconnect callbacks over
// in-process pipes: the source's Redial mints a fresh pipe pair (optionally
// fault-wrapped per epoch by inj) and the destination's WaitReconnect
// receives the peer end and validates the resume frame, exactly as a TCP
// accept loop would via transport.AcceptResume.
type pipeRelinker struct {
	ch  chan transport.Conn
	inj *transport.Injector
}

func newPipeRelinker(inj *transport.Injector) *pipeRelinker {
	return &pipeRelinker{ch: make(chan transport.Conn, 4), inj: inj}
}

func (r *pipeRelinker) redial() (transport.Conn, error) {
	pa, pb := transport.NewPipe(64)
	r.ch <- pb
	if r.inj != nil {
		return r.inj.Wrap(pa), nil
	}
	return pa, nil
}

func (r *pipeRelinker) waitReconnect(token transport.SessionToken, lastEpoch uint32) (transport.Conn, uint32, error) {
	for {
		c, ok := <-r.ch
		if !ok {
			return nil, 0, errors.New("relinker closed")
		}
		m, err := c.Recv()
		if err != nil {
			c.Close()
			continue
		}
		epoch, err := transport.ParseResume(m, token, lastEpoch)
		if err != nil {
			c.Close()
			continue
		}
		return c, epoch, nil
	}
}

// runResumable migrates e's world with the given per-epoch fault scripts on
// the source's connections, returning both reports.
func (e *env) runResumable(t *testing.T, scripts ...[]transport.Fault) (*DestResult, int64) {
	t.Helper()
	inj := transport.NewInjector(scripts...)
	relink := newPipeRelinker(inj)

	srcCfg := Config{
		MaxRetries:   5,
		RetryBackoff: time.Millisecond,
		Redial:       relink.redial,
		OnFreeze:     e.router.Freeze,
	}
	dstCfg := Config{WaitReconnect: relink.waitReconnect}

	srcCh := make(chan error, 1)
	var rep *metrics.Report
	go func() {
		var err error
		rep, err = MigrateSource(srcCfg, e.src, inj.Wrap(e.connSrc), nil)
		srcCh <- err
	}()
	res, err := MigrateDest(dstCfg, e.dst, e.connDst)
	if err != nil {
		t.Fatalf("destination: %v", err)
	}
	if err := <-srcCh; err != nil {
		t.Fatalf("source: %v", err)
	}
	wantRetries := 0
	for _, sc := range scripts {
		if len(sc) > 0 {
			wantRetries++
		}
	}
	if rep.Retries != wantRetries {
		t.Fatalf("source survived %d retries, want %d", rep.Retries, wantRetries)
	}
	return res, rep.MigratedBytes
}

// cleanRunBytes measures one fault-free default-config migration of a fresh
// identical world, the baseline for the "materially less than two full
// transfers" assertion.
func cleanRunBytes(t *testing.T) int64 {
	t.Helper()
	e := newEnv(t)
	rep, _ := e.runTPM(Config{}, nil)
	return rep.MigratedBytes
}

// framesMidMemPhase lands a fault halfway through the memory pre-copy of
// the deterministic quiescent migration: HELLO, one disk iteration
// (ITER_START + testBlocks + ITER_END, converging immediately on a quiescent
// guest), MEM_ITER_START, then half the pages.
const framesMidMemPhase = 1 + (1 + testBlocks + 1) + 1 + testPages/2

// TestResumeMidMemPreCopy is the headline crash/resume scenario: the link
// dies halfway through the memory pre-copy, the source reconnects, re-enters
// the interrupted phase, and completes — re-sending only the interrupted
// iteration, so the total wire cost stays materially below two full
// transfers.
func TestResumeMidMemPreCopy(t *testing.T) {
	clean := cleanRunBytes(t)

	e := newEnv(t)
	res, bytes := e.runResumable(t,
		[]transport.Fault{{AfterSends: framesMidMemPhase, Kind: transport.FaultCut}})
	e.checkConverged(res.CPU)

	if bytes <= clean {
		t.Fatalf("resumed run moved %d bytes, below the clean run's %d — fault never fired?", bytes, clean)
	}
	// One full transfer plus only the frames in flight at the cut and the
	// resume bookkeeping: the destination's transfer cursor spares
	// everything it confirmed. Anything near 2x means phases were re-sent.
	if limit := clean + clean/4; bytes >= limit {
		t.Fatalf("resumed run moved %d bytes, want < %d (clean run %d): resume re-transferred too much", bytes, limit, clean)
	}
	t.Logf("clean %d bytes, resumed %d bytes (overhead %.1f%%)", clean, bytes, float64(bytes-clean)/float64(clean)*100)
}

// TestResumeMidDiskPreCopy kills the link a quarter into the first disk
// iteration; the rewind re-sends that iteration only.
func TestResumeMidDiskPreCopy(t *testing.T) {
	e := newEnv(t)
	res, _ := e.runResumable(t,
		[]transport.Fault{{AfterSends: 2 + testBlocks/4, Kind: transport.FaultCut}})
	e.checkConverged(res.CPU)
}

// TestResumeRecvFault kills the source's receive path (the reader goroutine
// notices, not the send path), during the freeze/post-copy window where the
// source is waiting on destination traffic.
func TestResumeRecvFault(t *testing.T) {
	e := newEnv(t)
	// The source receives HELLO_ACK (1) and then destination notifications;
	// failing the 2nd recv lands while waiting for RESUMED or DONE.
	res, _ := e.runResumable(t,
		[]transport.Fault{{AfterRecvs: 1, Kind: transport.FaultCut}})
	e.checkConverged(res.CPU)
}

// TestResumeTwoFaults survives a mid-mem-precopy cut and then a second cut
// on the first reconnected epoch.
func TestResumeTwoFaults(t *testing.T) {
	e := newEnv(t)
	res, _ := e.runResumable(t,
		[]transport.Fault{{AfterSends: framesMidMemPhase, Kind: transport.FaultCut}},
		[]transport.Fault{{AfterSends: testPages / 2, Kind: transport.FaultCut}})
	e.checkConverged(res.CPU)
}

// TestResumeHalfClose: the source's send side dies but its receive side
// stays up (one-sided close); the retry driver must still re-establish a
// fresh link and complete.
func TestResumeHalfClose(t *testing.T) {
	e := newEnv(t)
	res, _ := e.runResumable(t,
		[]transport.Fault{{AfterSends: framesMidMemPhase, Kind: transport.FaultHalfClose}})
	e.checkConverged(res.CPU)
}

// TestFaultFailsFastWithoutRetries: a cut link under the default config
// (MaxRetries 0) aborts both endpoints with a connection error instead of
// hanging or retrying.
func TestFaultFailsFastWithoutRetries(t *testing.T) {
	e := newEnv(t)
	faulty := transport.NewScriptedFaultConn(e.connSrc,
		transport.Fault{AfterSends: framesMidMemPhase, Kind: transport.FaultCut})
	srcCh := make(chan error, 1)
	go func() {
		_, err := MigrateSource(Config{OnFreeze: e.router.Freeze}, e.src, faulty, nil)
		srcCh <- err
	}()
	if _, err := MigrateDest(Config{}, e.dst, e.connDst); err == nil {
		t.Fatal("destination completed over a cut link")
	}
	if err := <-srcCh; !transport.IsConnError(err) {
		t.Fatalf("source error %v, want a connection error", err)
	}
}

// TestResumeDeclinedByDest: when the destination has no reconnect path, the
// handshake declines the offered token and a later fault is fatal despite
// the source's retry budget.
func TestResumeDeclinedByDest(t *testing.T) {
	e := newEnv(t)
	relink := newPipeRelinker(nil)
	srcCfg := Config{
		MaxRetries:   3,
		RetryBackoff: time.Millisecond,
		Redial:       relink.redial,
		OnFreeze:     e.router.Freeze,
	}
	faulty := transport.NewScriptedFaultConn(e.connSrc,
		transport.Fault{AfterSends: framesMidMemPhase, Kind: transport.FaultCut})
	srcCh := make(chan error, 1)
	go func() {
		_, err := MigrateSource(srcCfg, e.src, faulty, nil)
		srcCh <- err
	}()
	if _, err := MigrateDest(Config{}, e.dst, e.connDst); err == nil {
		t.Fatal("destination completed over a cut link")
	}
	if err := <-srcCh; err == nil {
		t.Fatal("source completed although the destination declined resume")
	}
}

// TestResumeUnderWorkload runs the crash/resume scenario with the guest
// dirtying blocks throughout, verifying post-resume convergence with
// concurrent writes (the shadow-disk check is authoritative).
func TestResumeUnderWorkload(t *testing.T) {
	e := newEnv(t)
	stop := make(chan struct{})
	done := make(chan struct{})
	gen := workload.New(workload.Web, testBlocks, 7)
	go func() {
		defer close(done)
		buf := make([]byte, blockdev.BlockSize)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			a := gen.Next()
			if a.Op != blockdev.Write {
				continue
			}
			for n := a.Block; n < a.Block+a.Count && n < testBlocks; n++ {
				workload.FillBlock(buf, n, uint32(i+1))
				_ = e.submitVerified(blockdev.Request{Domain: testDomain, Op: blockdev.Write, Block: n, Data: buf})
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()
	defer func() {
		select {
		case <-stop:
		default:
			close(stop)
		}
		<-done
	}()

	inj := transport.NewInjector(
		[]transport.Fault{{AfterSends: framesMidMemPhase, Kind: transport.FaultCut}})
	relink := newPipeRelinker(inj)
	srcCfg := Config{
		MaxRetries:   5,
		RetryBackoff: time.Millisecond,
		Redial:       relink.redial,
		OnFreeze: func() {
			close(stop)
			<-done
			e.router.Freeze()
		},
	}
	srcCh := make(chan error, 1)
	go func() {
		_, err := MigrateSource(srcCfg, e.src, inj.Wrap(e.connSrc), nil)
		srcCh <- err
	}()
	res, err := MigrateDest(Config{WaitReconnect: relink.waitReconnect}, e.dst, e.connDst)
	if err != nil {
		t.Fatalf("destination: %v", err)
	}
	if err := <-srcCh; err != nil {
		t.Fatalf("source: %v", err)
	}
	e.checkConverged(res.CPU)
}

// TestResumeEventStream checks the reconnect surfaces on the event bus and
// in ProgressTracker.
func TestResumeEventStream(t *testing.T) {
	e := newEnv(t)
	tracker := NewProgressTracker()
	inj := transport.NewInjector(
		[]transport.Fault{{AfterSends: framesMidMemPhase, Kind: transport.FaultCut}})
	relink := newPipeRelinker(inj)
	srcCfg := Config{
		MaxRetries:   5,
		RetryBackoff: time.Millisecond,
		Redial:       relink.redial,
		OnFreeze:     e.router.Freeze,
		OnEvent:      tracker.Handle,
	}
	srcCh := make(chan error, 1)
	go func() {
		_, err := MigrateSource(srcCfg, e.src, inj.Wrap(e.connSrc), nil)
		srcCh <- err
	}()
	if _, err := MigrateDest(Config{WaitReconnect: relink.waitReconnect}, e.dst, e.connDst); err != nil {
		t.Fatalf("destination: %v", err)
	}
	if err := <-srcCh; err != nil {
		t.Fatalf("source: %v", err)
	}
	p := tracker.Snapshot()
	if p.Reconnects != 1 {
		t.Fatalf("tracker saw %d reconnects, want 1", p.Reconnects)
	}
	if !p.Done || p.Err != "" {
		t.Fatalf("tracker final state %+v, want clean completion", p)
	}
}

// TestResumeJournalCheckpoints: the on-disk journal tracks the pipeline and
// ends in the done state; intermediate checkpoints load and carry a pending
// set usable for a cold incremental restart.
func TestResumeJournalCheckpoints(t *testing.T) {
	e := newEnv(t)
	path := t.TempDir() + "/migration.journal"

	var sawDiskPhase bool
	inj := transport.NewInjector(
		[]transport.Fault{{AfterSends: framesMidMemPhase, Kind: transport.FaultCut}})
	relink := newPipeRelinker(inj)
	srcCfg := Config{
		MaxRetries:   5,
		RetryBackoff: time.Millisecond,
		Redial:       relink.redial,
		JournalPath:  path,
		OnFreeze:     e.router.Freeze,
		OnEvent: func(ev Event) {
			if ev.Kind == EventPhaseEnd && ev.Phase == PhaseDiskPreCopy && ev.Side == "source" {
				st, err := LoadJournal(path)
				if err == nil && st.Phase == PhaseDiskPreCopy {
					sawDiskPhase = true
				}
			}
		},
	}
	srcCh := make(chan error, 1)
	go func() {
		_, err := MigrateSource(srcCfg, e.src, inj.Wrap(e.connSrc), nil)
		srcCh <- err
	}()
	if _, err := MigrateDest(Config{WaitReconnect: relink.waitReconnect}, e.dst, e.connDst); err != nil {
		t.Fatalf("destination: %v", err)
	}
	if err := <-srcCh; err != nil {
		t.Fatalf("source: %v", err)
	}
	if !sawDiskPhase {
		t.Fatal("journal never reflected the disk pre-copy phase")
	}
	final, err := LoadJournal(path)
	if err != nil {
		t.Fatalf("final journal: %v", err)
	}
	if final.Phase != "done" {
		t.Fatalf("final journal phase %q, want done", final.Phase)
	}
}

// TestJournalStateRoundTrip exercises the journal file format directly,
// including torn-write detection.
func TestJournalStateRoundTrip(t *testing.T) {
	path := t.TempDir() + "/j.bin"
	pending := bitmap.New(testBlocks)
	for _, n := range []int{0, 5, 100, testBlocks - 1} {
		pending.Set(n)
	}
	token, err := transport.NewSessionToken()
	if err != nil {
		t.Fatal(err)
	}
	j := &Journal{Path: path}
	st := JournalState{Token: token, Epoch: 3, Phase: PhaseDiskPreCopy, Iter: 2, Pending: pending}
	if err := j.Checkpoint(st); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Token != token || got.Epoch != 3 || got.Phase != PhaseDiskPreCopy || got.Iter != 2 {
		t.Fatalf("journal round-trip mismatch: %+v", got)
	}
	if !got.Pending.Equal(pending) {
		t.Fatal("pending bitmap did not round-trip")
	}

	// A torn write (any truncation) must be detected, not half-loaded.
	data, err := marshalJournal(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 4, journalHeaderLen, len(data) - 5, len(data) - 1} {
		if err := writeRaw(t, path, data[:cut]); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadJournal(path); err == nil {
			t.Fatalf("truncation to %d bytes loaded successfully", cut)
		}
	}
	// Bit-flip corruption must fail the checksum.
	flipped := append([]byte(nil), data...)
	flipped[journalHeaderLen+2] ^= 0x40
	if err := writeRaw(t, path, flipped); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJournal(path); err == nil {
		t.Fatal("corrupted journal loaded successfully")
	}
}

// TestOwedUnitsCrossIterationRedirty: a block the destination confirms for
// iteration k can be owed AGAIN by iteration k+1 (re-dirtied while k was in
// flight); the cursor subtraction must never erase the newer copy's debt.
func TestOwedUnitsCrossIterationRedirty(t *testing.T) {
	const n = 64
	iter1 := bitmap.New(n) // in flight at the cut
	iter1.Set(10)
	iter1.Set(11)
	iter2 := bitmap.New(n) // already started on the source (buffered ahead)
	iter2.Set(11)          // block 11 re-dirtied during iteration 1
	recv := bitmap.New(n)  // dest confirms both blocks of iteration 1
	recv.Set(10)
	recv.Set(11)
	owed := owedUnits(map[int]*bitmap.Bitmap{1: iter1, 2: iter2}, 0, 1, recv)
	if owed == nil || !owed.Test(11) {
		t.Fatal("block 11's iteration-2 copy dropped: confirmed-for-iter-1 must not cancel a later iteration's debt")
	}
	if owed.Test(10) {
		t.Fatal("block 10 re-owed although the destination confirmed it and no later iteration touched it")
	}
	// And the fully-confirmed case owes nothing.
	if owed := owedUnits(map[int]*bitmap.Bitmap{1: iter1}, 0, 1, recv); owed != nil && owed.Any() {
		t.Fatalf("%d blocks owed after full confirmation", owed.Count())
	}
}

// recvDeadConn lets one reconnect attempt deliver its outbound frames and
// even receive the peer's reply — then drops it and dies: the "session ack
// sent successfully but lost in flight" failure, deterministically.
type recvDeadConn struct{ transport.Conn }

func (c recvDeadConn) Recv() (transport.Message, error) {
	c.Conn.Recv() // the ack arrives... and is lost with the link
	c.Conn.Close()
	return transport.Message{}, transport.ErrInjected
}

// TestResumeSurvivesLostAck: the destination's ack for reconnect epoch N is
// lost (its lastEpoch advanced, the source's did not). The source's next
// attempt must offer a HIGHER epoch — re-offering N would be rejected as
// stale forever, burning the whole retry budget.
func TestResumeSurvivesLostAck(t *testing.T) {
	e := newEnv(t)
	relink := newPipeRelinker(nil)
	ackLost := false
	redial := func() (transport.Conn, error) {
		pa, pb := transport.NewPipe(64)
		relink.ch <- pb
		if !ackLost {
			ackLost = true
			return recvDeadConn{pa}, nil
		}
		return pa, nil
	}
	srcCfg := Config{
		MaxRetries:   5,
		RetryBackoff: time.Millisecond,
		Redial:       redial,
		OnFreeze:     e.router.Freeze,
	}
	inj := transport.NewInjector(
		[]transport.Fault{{AfterSends: framesMidMemPhase, Kind: transport.FaultCut}})
	srcCh := make(chan error, 1)
	var rep *metrics.Report
	go func() {
		var err error
		rep, err = MigrateSource(srcCfg, e.src, inj.Wrap(e.connSrc), nil)
		srcCh <- err
	}()
	res, err := MigrateDest(Config{WaitReconnect: relink.waitReconnect}, e.dst, e.connDst)
	if err != nil {
		t.Fatalf("destination: %v", err)
	}
	if err := <-srcCh; err != nil {
		t.Fatalf("source: %v", err)
	}
	// One link cut, two reconnect attempts (the first lost its ack), one
	// successful resume.
	if rep.Retries != 1 {
		t.Fatalf("source recorded %d successful resumes, want 1", rep.Retries)
	}
	e.checkConverged(res.CPU)
}
