package core

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"bbmig/internal/bitmap"
	"bbmig/internal/blkback"
	"bbmig/internal/blockdev"
	"bbmig/internal/transport"
	"bbmig/internal/vm"
	"bbmig/internal/workload"
)

// parallelConfigs is the equivalence matrix: the seed's sequential
// single-stream per-block transfer against coalesced/striped/pipelined
// variants. Every row must produce byte-identical results.
var parallelConfigs = []struct {
	name            string
	streams         int
	maxExtentBlocks int
	workers         int
}{
	{"serial-1stream-extent1", 1, 1, 1},
	{"coalesced-1stream", 1, 16, 1},
	{"pipelined-1stream", 1, 16, 4},
	{"striped-4stream-coalesced", 4, 64, 4},
}

// useStriped replaces the env's single pipe with an n-wide striped bundle.
func (e *env) useStriped(n int) {
	if n <= 1 {
		return
	}
	a := make([]transport.Conn, n)
	b := make([]transport.Conn, n)
	for i := range a {
		a[i], b[i] = transport.NewPipe(64)
	}
	e.connSrc, e.connDst = transport.NewStriped(a), transport.NewStriped(b)
}

// diskImage flattens a disk into one byte slice for cross-run comparison.
func diskImage(t *testing.T, d blockdev.Device) []byte {
	t.Helper()
	out := make([]byte, d.NumBlocks()*d.BlockSize())
	for n := 0; n < d.NumBlocks(); n++ {
		if err := d.ReadBlock(n, out[n*d.BlockSize():(n+1)*d.BlockSize()]); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// memImage flattens guest memory likewise.
func memImage(t *testing.T, m *vm.Memory) []byte {
	t.Helper()
	out := make([]byte, m.NumPages()*m.PageSize())
	for p := 0; p < m.NumPages(); p++ {
		if err := m.ReadPage(p, out[p*m.PageSize():(p+1)*m.PageSize()]); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestEquivalenceTPM migrates the same deterministic VM under every
// transfer configuration and requires byte-identical destination disks and
// memories — the wire format may change shape, the data may not.
func TestEquivalenceTPM(t *testing.T) {
	var refDisk, refMem []byte
	for _, pc := range parallelConfigs {
		t.Run(pc.name, func(t *testing.T) {
			e := newEnv(t)
			e.useStriped(pc.streams)
			cfg := Config{Streams: pc.streams, MaxExtentBlocks: pc.maxExtentBlocks, Workers: pc.workers}
			rep, res := e.runTPM(cfg, nil)
			e.checkConverged(res.CPU)
			if rep.DiskIterations[0].Units != testBlocks {
				t.Fatalf("first iteration sent %d blocks, want %d", rep.DiskIterations[0].Units, testBlocks)
			}
			disk := diskImage(t, e.dstDisk)
			mem := memImage(t, e.dst.VM.Memory())
			if refDisk == nil {
				refDisk, refMem = disk, mem
				return
			}
			if !bytes.Equal(disk, refDisk) {
				t.Fatal("destination disk differs from the serial baseline")
			}
			if !bytes.Equal(mem, refMem) {
				t.Fatal("destination memory differs from the serial baseline")
			}
		})
	}
}

// TestEquivalenceTPMUnderWorkload races a verified write workload against
// the migration under each configuration: the shadow-truth check in
// checkConverged asserts the destination ends byte-identical to the source's
// write history, pull path and stale-push dropping included.
func TestEquivalenceTPMUnderWorkload(t *testing.T) {
	for _, pc := range parallelConfigs {
		t.Run(pc.name, func(t *testing.T) {
			e := newEnv(t)
			e.useStriped(pc.streams)
			gen := workload.NewWebServer(testBlocks, 23)
			stopIO := make(chan struct{})
			stopMem := make(chan struct{})
			var replayErr error
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, replayErr = workload.Replay(clockReal(), gen, testDomain, time.Hour, 200, e.submitVerified, stopIO)
			}()
			go memDirtier(e.src.VM.Memory(), 32, stopMem)

			cfg := Config{
				Streams:         pc.streams,
				MaxExtentBlocks: pc.maxExtentBlocks,
				Workers:         pc.workers,
				OnFreeze: func() {
					close(stopMem)
					e.router.Freeze()
				},
				OnResume: e.router.ResumeGate,
			}
			_, res := e.runTPM(cfg, nil)
			close(stopIO)
			wg.Wait()
			if replayErr != nil {
				t.Fatalf("workload: %v", replayErr)
			}
			e.checkConverged(res.CPU)
		})
	}
}

// TestEquivalenceIM runs the incremental scheme under each configuration: a
// primary migration, deterministic divergence on the destination, then an
// IM back seeded from a bitmap of the divergent blocks. The returned source
// disk must equal the destination's final state, identically across
// configurations.
func TestEquivalenceIM(t *testing.T) {
	divergent := []int{0, 1, 2, 3, 64, 65, 66, 500, 501, 777, 1024, 2047}
	var refDisk []byte
	for _, pc := range parallelConfigs {
		t.Run(pc.name, func(t *testing.T) {
			e := newEnv(t)
			e.useStriped(pc.streams)
			cfg := Config{Streams: pc.streams, MaxExtentBlocks: pc.maxExtentBlocks, Workers: pc.workers}
			_, res := e.runTPM(cfg, nil)
			e.checkConverged(res.CPU)

			// Deterministic post-migration divergence on the destination.
			buf := make([]byte, blockdev.BlockSize)
			fresh := bitmap.New(testBlocks)
			for _, n := range divergent {
				workload.FillBlock(buf, n, 99)
				if err := e.dstDisk.WriteBlock(n, buf); err != nil {
					t.Fatal(err)
				}
				fresh.Set(n)
			}

			// Migrate back incrementally: the old source disk is the stale
			// peer copy, only the divergent blocks travel.
			backSrcVM := e.dst.VM
			backDstVM := vm.NewDestination(backSrcVM)
			backSrc := Host{VM: backSrcVM, Backend: blkback.NewBackend(e.dstDisk, testDomain)}
			backDst := Host{VM: backDstVM, Backend: blkback.NewBackend(e.srcDisk, testDomain)}
			backSrc.Backend.SeedDirty(fresh)
			router2 := NewRouter(backSrc.Backend.Submit)
			var c1, c2 transport.Conn
			if pc.streams > 1 {
				a := make([]transport.Conn, pc.streams)
				b := make([]transport.Conn, pc.streams)
				for i := range a {
					a[i], b[i] = transport.NewPipe(64)
				}
				c1, c2 = transport.NewStriped(a), transport.NewStriped(b)
			} else {
				c1, c2 = transport.NewPipe(64)
			}
			backCfg := Config{
				Streams: pc.streams, MaxExtentBlocks: pc.maxExtentBlocks, Workers: pc.workers,
				OnFreeze: router2.Freeze, OnResume: router2.ResumeGate,
			}
			srcCh := make(chan error, 1)
			go func() {
				rep, err := MigrateSource(backCfg, backSrc, c1, backSrc.Backend.SwapDirty())
				if err == nil && rep.Scheme != "IM" {
					t.Errorf("scheme %q, want IM", rep.Scheme)
				}
				srcCh <- err
			}()
			if _, err := MigrateDest(backCfg, backDst, c2); err != nil {
				t.Fatalf("IM destination: %v", err)
			}
			if err := <-srcCh; err != nil {
				t.Fatalf("IM source: %v", err)
			}

			diffs, err := blockdev.Diff(e.srcDisk, e.dstDisk)
			if err != nil {
				t.Fatal(err)
			}
			if len(diffs) != 0 {
				t.Fatalf("after IM back, disks differ at %d blocks (first %v)", len(diffs), diffs[0])
			}
			disk := diskImage(t, e.srcDisk)
			if refDisk == nil {
				refDisk = disk
				return
			}
			if !bytes.Equal(disk, refDisk) {
				t.Fatal("IM result differs from the serial baseline")
			}
		})
	}
}

// TestScatterPool exercises the pool directly: ordering across drains,
// inline mode, and error stickiness.
func TestScatterPool(t *testing.T) {
	p := newScatterPool(4)
	defer p.close()
	var mu sync.Mutex
	applied := 0
	for i := 0; i < 100; i++ {
		if err := p.do(func() error {
			mu.Lock()
			applied++
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.drain(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if applied != 100 {
		t.Fatalf("drain returned before %d/100 applies", applied)
	}
	mu.Unlock()

	inline := newScatterPool(1)
	ran := false
	if err := inline.do(func() error { ran = true; return nil }); err != nil || !ran {
		t.Fatal("inline pool did not run the apply synchronously")
	}
	inline.close()
}

// TestOversizedMaxExtentClamped is a regression test: a MaxExtentBlocks far
// beyond the device (or the frame payload limit) must be clamped, not used
// to size staging buffers — the unclamped value once requested a 64 GiB
// allocation in the post-copy pusher.
func TestOversizedMaxExtentClamped(t *testing.T) {
	e := newEnv(t)
	cfg := Config{MaxExtentBlocks: transport.MaxExtentBlocks, Workers: 2}
	_, res := e.runTPM(cfg, nil)
	e.checkConverged(res.CPU)
}
