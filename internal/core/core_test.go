package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"bbmig/internal/bitmap"
	"bbmig/internal/blkback"
	"bbmig/internal/blockdev"
	"bbmig/internal/clock"
	"bbmig/internal/metrics"
	"bbmig/internal/transport"
	"bbmig/internal/vm"
	"bbmig/internal/workload"
)

func clockReal() clock.Clock { return clock.NewReal() }

const (
	testBlocks = 2048 // 8 MiB disk
	testPages  = 256  // 1 MiB memory
	testDomain = 1
)

// env is a two-host world: a running source VM with a pattern-filled disk, a
// prepared destination, an I/O router, and a shadow disk receiving the exact
// write stream for consistency checking.
type env struct {
	t                *testing.T
	srcDisk, dstDisk *blockdev.MemDisk
	shadow           *blockdev.MemDisk
	src, dst         Host
	router           *Router
	connSrc, connDst transport.Conn

	mu  sync.Mutex
	gen map[int]uint32 // per-block write generation (shadow truth)
}

func newEnv(t *testing.T) *env {
	t.Helper()
	e := &env{
		t:       t,
		srcDisk: blockdev.NewMemDisk(testBlocks, blockdev.BlockSize),
		dstDisk: blockdev.NewMemDisk(testBlocks, blockdev.BlockSize),
		shadow:  blockdev.NewMemDisk(testBlocks, blockdev.BlockSize),
		gen:     make(map[int]uint32),
	}
	// initial disk image: every 3rd block pre-filled
	buf := make([]byte, blockdev.BlockSize)
	for n := 0; n < testBlocks; n += 3 {
		workload.FillBlock(buf, n, 0)
		if err := e.srcDisk.WriteBlock(n, buf); err != nil {
			t.Fatal(err)
		}
		if err := e.shadow.WriteBlock(n, buf); err != nil {
			t.Fatal(err)
		}
	}
	srcVM := vm.New("guest", testDomain, testPages, 512)
	// initial memory image
	for p := 0; p < testPages; p += 2 {
		workload.FillBlock(buf, p+100000, 0)
		if err := srcVM.Memory().WritePage(p, buf[:vm.PageSize]); err != nil {
			t.Fatal(err)
		}
	}
	dstVM := vm.NewDestination(srcVM)
	e.src = Host{VM: srcVM, Backend: blkback.NewBackend(e.srcDisk, testDomain)}
	e.dst = Host{VM: dstVM, Backend: blkback.NewBackend(e.dstDisk, testDomain)}
	e.router = NewRouter(e.src.Backend.Submit)
	e.connSrc, e.connDst = transport.NewPipe(64)
	return e
}

// submitVerified routes a request through the router, mirrors writes into
// the shadow disk, and cross-checks read contents against the latest
// generation — a read returning stale data fails the test immediately.
func (e *env) submitVerified(req blockdev.Request) error {
	if req.Op == blockdev.Write {
		e.mu.Lock()
		// Replay fills Data before calling us; recover the generation from
		// our own counter to keep the shadow in lockstep.
		e.gen[req.Block]++
		g := e.gen[req.Block]
		e.mu.Unlock()
		workload.FillBlock(req.Data, req.Block, g)
		if err := e.router.Submit(req); err != nil {
			return err
		}
		return e.shadow.WriteBlock(req.Block, req.Data)
	}
	if err := e.router.Submit(req); err != nil {
		return err
	}
	e.mu.Lock()
	g, written := e.gen[req.Block]
	e.mu.Unlock()
	if written {
		want := make([]byte, blockdev.BlockSize)
		workload.FillBlock(want, req.Block, g)
		if !bytes.Equal(req.Data, want) {
			return fmt.Errorf("stale read of block %d (generation %d)", req.Block, g)
		}
	}
	return nil
}

// checkConverged verifies the destination disk equals the shadow truth and
// the memories and CPU state transferred intact.
func (e *env) checkConverged(cpu vm.CPUState) {
	e.t.Helper()
	diffs, err := blockdev.Diff(e.dstDisk, e.shadow)
	if err != nil {
		e.t.Fatal(err)
	}
	if len(diffs) != 0 {
		e.t.Fatalf("destination disk differs from truth at %d blocks (first: %v)", len(diffs), diffs[0])
	}
	srcMem, dstMem := e.src.VM.Memory(), e.dst.VM.Memory()
	a := make([]byte, vm.PageSize)
	b := make([]byte, vm.PageSize)
	for p := 0; p < testPages; p++ {
		srcMem.ReadPage(p, a)
		dstMem.ReadPage(p, b)
		if !bytes.Equal(a, b) {
			e.t.Fatalf("memory page %d differs", p)
		}
	}
	if !cpu.Equal(e.src.VM.CPU()) {
		e.t.Fatal("CPU state corrupted in transit")
	}
}

// runTPM executes a full TPM migration with the standard hook wiring and
// returns both reports.
func (e *env) runTPM(cfg Config, initial *bitmap.Bitmap) (*metrics.Report, *DestResult) {
	e.t.Helper()
	if cfg.OnFreeze == nil {
		cfg.OnFreeze = e.router.Freeze
	}
	if cfg.OnResume == nil {
		cfg.OnResume = e.router.ResumeGate
	}
	type srcOut struct {
		rep *metrics.Report
		err error
	}
	srcCh := make(chan srcOut, 1)
	go func() {
		rep, err := MigrateSource(cfg, e.src, e.connSrc, initial)
		srcCh <- srcOut{rep, err}
	}()
	res, err := MigrateDest(cfg, e.dst, e.connDst)
	if err != nil {
		e.t.Fatalf("destination: %v", err)
	}
	out := <-srcCh
	if out.err != nil {
		e.t.Fatalf("source: %v", out.err)
	}
	return out.rep, res
}

func TestTPMIdleVM(t *testing.T) {
	e := newEnv(t)
	rep, res := e.runTPM(Config{}, nil)
	e.checkConverged(res.CPU)
	if e.src.VM.State() != vm.Stopped {
		t.Fatal("source VM not stopped after migration")
	}
	if e.dst.VM.State() != vm.Running {
		t.Fatal("destination VM not running")
	}
	if got := rep.DiskIterationCount(); got != 1 {
		t.Fatalf("idle VM took %d disk iterations, want 1", got)
	}
	if rep.DiskIterations[0].Units != testBlocks {
		t.Fatalf("first iteration sent %d blocks, want %d", rep.DiskIterations[0].Units, testBlocks)
	}
	if rep.RetransferredBlocks() != 0 {
		t.Fatal("idle VM retransferred blocks")
	}
	if rep.Downtime <= 0 || rep.Downtime > rep.TotalTime {
		t.Fatalf("implausible downtime %v of %v total", rep.Downtime, rep.TotalTime)
	}
	if rep.MigratedBytes < blockdev.Capacity(e.srcDisk) {
		t.Fatalf("migrated %d bytes < disk size", rep.MigratedBytes)
	}
	if res.Gate == nil || !res.Gate.Synchronized() {
		t.Fatal("gate not synchronized")
	}
	if rep.Scheme != "TPM" {
		t.Fatalf("scheme %q", rep.Scheme)
	}
}

// dirtier churns guest memory pages until stopped, standing in for the
// running guest's memory writes.
func memDirtier(mem *vm.Memory, hot int, stop <-chan struct{}) {
	buf := make([]byte, vm.PageSize)
	i := uint32(0)
	for {
		select {
		case <-stop:
			return
		default:
		}
		p := int(i) % hot
		workload.FillBlock(buf, p+200000, i)
		mem.WritePage(p, buf)
		i++
		time.Sleep(200 * time.Microsecond)
	}
}

func TestTPMUnderWorkload(t *testing.T) {
	e := newEnv(t)
	gen := workload.NewWebServer(testBlocks, 11)
	stopIO := make(chan struct{})
	stopMem := make(chan struct{})
	var replayErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, replayErr = workload.Replay(clockReal(), gen, testDomain, time.Hour, 200, e.submitVerified, stopIO)
	}()
	go memDirtier(e.src.VM.Memory(), 32, stopMem)

	cfg := Config{
		OnFreeze: func() {
			close(stopMem) // guest pauses: memory writes stop
			e.router.Freeze()
		},
		OnResume: e.router.ResumeGate,
	}
	rep, res := e.runTPM(cfg, nil)

	// Let the workload run on the destination a little, then stop it.
	time.Sleep(100 * time.Millisecond)
	close(stopIO)
	wg.Wait()
	if replayErr != nil {
		t.Fatalf("workload: %v", replayErr)
	}
	e.checkConverged(res.CPU)
	if rep.DiskIterationCount() < 1 {
		t.Fatal("no disk iterations")
	}
	if !e.router.StallObserved() && rep.Downtime > 50*time.Millisecond {
		t.Log("note: no I/O stall observed despite downtime (bursty workload)")
	}
	// The workload keeps writing after resume: those writes are new state
	// on the destination, tracked for IM.
	if res.Gate.FreshBitmap().Count() == 0 {
		t.Log("note: no post-resume writes landed during the test window")
	}
}

// TestTPMForcedPostCopyPull forces blocks to stay dirty at freeze and makes
// the destination VM read one immediately, exercising the pull path
// end-to-end.
func TestTPMForcedPostCopyPull(t *testing.T) {
	e := newEnv(t)
	// Dirty a contiguous range during the first (and only) pre-copy
	// iteration so it all rides the freeze bitmap, then read the
	// highest-numbered dirty block the instant the VM resumes: the push
	// stream proceeds in ascending order, so that block is still dirty and
	// the read must pull it.
	const loDirty, hiDirty = 1000, 1300
	const hotBlock = hiDirty - 1
	buf := make([]byte, blockdev.BlockSize)
	pulled := make(chan error, 1)
	writerDone := make(chan struct{})
	cfg := Config{
		MaxDiskIters: 1, // everything dirtied during iter1 rides the bitmap
		OnFreeze: func() {
			<-writerDone // all 300 dirty writes land before the freeze
			e.router.Freeze()
		},
		OnResume: func(g *blkback.PostCopyGate) {
			e.router.ResumeGate(g)
			// Read the hot block through the gate. At this instant no
			// pushed block has been processed (the destination's post-copy
			// receive loop starts after OnResume returns, and the source
			// only starts pushing once it sees MsgResumed), so the block is
			// guaranteed dirty and the read MUST pull. Block OnResume until
			// the pull request is registered to make that deterministic.
			go func() {
				rbuf := make([]byte, blockdev.BlockSize)
				err := g.Submit(blockdev.Request{Op: blockdev.Read, Block: hotBlock, Domain: testDomain, Data: rbuf})
				if err == nil {
					want := make([]byte, blockdev.BlockSize)
					workload.FillBlock(want, hotBlock, 9)
					if !bytes.Equal(rbuf, want) {
						err = fmt.Errorf("pulled read returned stale data")
					}
				}
				pulled <- err
			}()
			for g.Stats().Pulls == 0 {
				time.Sleep(100 * time.Microsecond)
			}
		},
	}
	// Dirty the range after tracking starts, from a goroutine that waits
	// for tracking to engage.
	go func() {
		defer close(writerDone)
		for !e.src.Backend.Tracking() {
			time.Sleep(time.Millisecond)
		}
		for n := loDirty; n < hiDirty; n++ {
			workload.FillBlock(buf, n, 9)
			if err := e.router.Submit(blockdev.Request{Op: blockdev.Write, Block: n, Domain: testDomain, Data: buf}); err != nil {
				t.Errorf("dirty write %d: %v", n, err)
				return
			}
			e.shadow.WriteBlock(n, buf)
		}
	}()
	rep, res := e.runTPM(cfg, nil)
	if err := <-pulled; err != nil {
		t.Fatal(err)
	}
	e.checkConverged(res.CPU)
	// The dirtied range must have been synchronized in post-copy.
	if rep.BlocksPushed+rep.BlocksPulled == 0 {
		t.Fatal("nothing synchronized in post-copy despite dirty blocks")
	}
	if res.Report.BlocksPulled == 0 {
		t.Fatal("the forced read did not pull")
	}
	if res.Report.ReadStallTime < 0 {
		t.Fatal("negative read stall")
	}
}

func TestIMRoundTrip(t *testing.T) {
	e := newEnv(t)
	// Forward migration under load.
	gen := workload.NewWebServer(testBlocks, 21)
	stopIO := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var replayErr error
	go func() {
		defer wg.Done()
		_, replayErr = workload.Replay(clockReal(), gen, testDomain, time.Hour, 200, e.submitVerified, stopIO)
	}()
	repFwd, res := e.runTPM(Config{}, nil)

	// Keep working on the destination so IM has something to carry back.
	time.Sleep(50 * time.Millisecond)
	close(stopIO)
	wg.Wait()
	if replayErr != nil {
		t.Fatalf("workload: %v", replayErr)
	}

	// Migrate back: B is now the source. Writes since the resume live in
	// the gate's fresh bitmap.
	fresh := res.Gate.FreshBitmap()
	backSrcVM := e.dst.VM // running on B
	backDstVM := vm.NewDestination(backSrcVM)
	// A's old disk contents are still in place; only fresh blocks differ.
	backSrc := Host{VM: backSrcVM, Backend: blkback.NewBackend(e.dstDisk, testDomain)}
	backDst := Host{VM: backDstVM, Backend: blkback.NewBackend(e.srcDisk, testDomain)}
	backSrc.Backend.SeedDirty(fresh)
	router2 := NewRouter(backSrc.Backend.Submit)
	c1, c2 := transport.NewPipe(64)
	cfg := Config{OnFreeze: router2.Freeze, OnResume: router2.ResumeGate}
	srcCh := make(chan error, 1)
	var repBack *metrics.Report
	go func() {
		var err error
		repBack, err = MigrateSource(cfg, backSrc, c1, backSrc.Backend.SwapDirty())
		srcCh <- err
	}()
	resBack, err := MigrateDest(cfg, backDst, c2)
	if err != nil {
		t.Fatalf("backward destination: %v", err)
	}
	if err := <-srcCh; err != nil {
		t.Fatalf("backward source: %v", err)
	}

	// A's disk must now equal the shadow truth again.
	diffs, err := blockdev.Diff(e.srcDisk, e.shadow)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("after IM back, source disk differs at %d blocks", len(diffs))
	}
	if !resBack.CPU.Equal(backSrcVM.CPU()) {
		t.Fatal("CPU state lost on the way back")
	}
	// The incremental migration must be drastically cheaper than primary.
	if repBack.Scheme != "IM" {
		t.Fatalf("backward scheme %q", repBack.Scheme)
	}
	if repBack.MigratedBytes >= repFwd.MigratedBytes/2 {
		t.Fatalf("IM moved %d bytes, primary %d — not incremental", repBack.MigratedBytes, repFwd.MigratedBytes)
	}
	// The disk component is where IM wins (memory is re-sent in full either
	// way; at paper scale disk ≫ memory, so the total shrinks ~100x).
	diskBytes := func(r *metrics.Report) int64 {
		var total int64
		for _, it := range r.DiskIterations {
			total += it.Bytes
		}
		return total
	}
	if diskBytes(repBack) >= diskBytes(repFwd)/4 {
		t.Fatalf("IM disk bytes %d vs primary %d — not incremental", diskBytes(repBack), diskBytes(repFwd))
	}
	if repBack.DiskIterations[0].Units >= testBlocks/4 {
		t.Fatalf("IM first iteration sent %d blocks", repBack.DiskIterations[0].Units)
	}
}

func TestTPMBandwidthLimit(t *testing.T) {
	e := newEnv(t)
	start := time.Now()
	// 8 MiB disk at 32 MiB/s ≥ ~250 ms; unlimited would finish in ~50 ms.
	rep, res := e.runTPM(Config{BandwidthLimit: 32 << 20}, nil)
	elapsed := time.Since(start)
	e.checkConverged(res.CPU)
	if elapsed < 150*time.Millisecond {
		t.Fatalf("rate-limited migration finished in %v — cap not applied", elapsed)
	}
	// Downtime must NOT be throttled: the freeze transfer is tiny.
	if rep.Downtime > elapsed/2 {
		t.Fatalf("downtime %v dominated by the bandwidth cap", rep.Downtime)
	}
}

func TestTPMGeometryMismatch(t *testing.T) {
	e := newEnv(t)
	wrongDisk := blockdev.NewMemDisk(testBlocks+1, blockdev.BlockSize)
	e.dst.Backend = blkback.NewBackend(wrongDisk, testDomain)
	srcCh := make(chan error, 1)
	go func() {
		_, err := MigrateSource(Config{}, e.src, e.connSrc, nil)
		srcCh <- err
	}()
	if _, err := MigrateDest(Config{}, e.dst, e.connDst); err == nil {
		t.Fatal("destination accepted mismatched geometry")
	}
	if err := <-srcCh; err == nil {
		t.Fatal("source did not observe the abort")
	}
}

func TestTPMOverTCP(t *testing.T) {
	e := newEnv(t)
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accCh := make(chan transport.Conn, 1)
	go func() {
		c, err := transport.Accept(l)
		if err != nil {
			t.Error(err)
			close(accCh)
			return
		}
		accCh <- c
	}()
	client, err := transport.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server, ok := <-accCh
	if !ok {
		t.Fatal("accept failed")
	}
	e.connSrc, e.connDst = client, server
	defer client.Close()
	defer server.Close()
	_, res := e.runTPM(Config{}, nil)
	e.checkConverged(res.CPU)
}

func TestFreezeAndCopyBaseline(t *testing.T) {
	e := newEnv(t)
	srcCh := make(chan error, 1)
	var rep *metrics.Report
	go func() {
		var err error
		rep, err = MigrateFreezeAndCopySource(Config{OnFreeze: e.router.Freeze}, e.src, e.connSrc)
		srcCh <- err
	}()
	res, err := MigrateFreezeAndCopyDest(Config{}, e.dst, e.connDst)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-srcCh; err != nil {
		t.Fatal(err)
	}
	e.checkConverged(res.CPU)
	if e.dst.VM.State() != vm.Running {
		t.Fatal("destination not running")
	}
	// The defining defect: downtime is essentially the whole migration.
	if rep.Downtime < rep.TotalTime/2 {
		t.Fatalf("freeze-and-copy downtime %v vs total %v — should dominate", rep.Downtime, rep.TotalTime)
	}
	if rep.Scheme != "freeze-and-copy" {
		t.Fatalf("scheme %q", rep.Scheme)
	}
}

func TestOnDemandBaseline(t *testing.T) {
	e := newEnv(t)
	release := make(chan struct{})
	srcCh := make(chan error, 1)
	var srcRep *metrics.Report
	go func() {
		var err error
		srcRep, err = MigrateOnDemandSource(Config{OnFreeze: e.router.Freeze}, e.src, e.connSrc)
		srcCh <- err
	}()
	var gate *blkback.PostCopyGate
	gateReady := make(chan struct{})
	cfg := Config{OnResume: func(g *blkback.PostCopyGate) {
		gate = g
		e.router.ResumeGate(g)
		close(gateReady)
	}}
	dstCh := make(chan error, 1)
	var res *DestResult
	go func() {
		var err error
		res, err = MigrateOnDemandDest(cfg, e.dst, e.connDst, release)
		dstCh <- err
	}()
	<-gateReady
	// Read a handful of blocks on the destination: each must fault and pull.
	buf := make([]byte, blockdev.BlockSize)
	for _, n := range []int{0, 3, 9, 600} {
		if err := gate.Submit(blockdev.Request{Op: blockdev.Read, Block: n, Domain: testDomain, Data: buf}); err != nil {
			t.Fatalf("on-demand read %d: %v", n, err)
		}
		want := make([]byte, blockdev.BlockSize)
		if n%3 == 0 {
			workload.FillBlock(want, n, 0)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("on-demand read %d returned wrong data", n)
		}
	}
	close(release)
	if err := <-dstCh; err != nil {
		t.Fatal(err)
	}
	if err := <-srcCh; err != nil {
		t.Fatal(err)
	}
	if res.Report.ResidualDirty == 0 {
		t.Fatal("on-demand migration reported no residual dependency — it must")
	}
	if srcRep.BlocksPulled < 4 {
		t.Fatalf("source served %d pulls", srcRep.BlocksPulled)
	}
	// Availability argument (§II-B).
	if got := Availability(0.99); got <= 0.98 || got >= 0.9802 {
		t.Fatalf("Availability(0.99) = %v", got)
	}
}

func TestDeltaForwardBaseline(t *testing.T) {
	e := newEnv(t)
	fwd := NewDeltaForwarder(e.src.Backend, e.connSrc)
	e.router = NewRouter(fwd.Submit)
	resumed := make(chan struct{})
	cfgSrc := Config{OnFreeze: func() {
		// Guarantee some writes were forwarded while the full-disk pass
		// ran before freezing (the workload goroutine may be descheduled
		// on a loaded machine).
		for fwd.Deltas() < 20 { // >2 cycles of the 8-block writer: guarantees redundant deltas
			time.Sleep(time.Millisecond)
		}
		e.router.Freeze()
	}}
	cfgDst := Config{OnResume: func(g *blkback.PostCopyGate) {
		if g != nil {
			t.Error("delta dest passed a gate")
		}
		e.router.ResumeAt(e.dst.Backend.Submit)
		close(resumed)
	}}
	// workload: rewrite the same few blocks repeatedly to force redundant
	// deltas, racing the full-disk pass.
	stopIO := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, blockdev.BlockSize)
		i := uint32(0)
		for {
			select {
			case <-stopIO:
				return
			default:
			}
			n := int(i) % 8
			e.mu.Lock()
			e.gen[n]++
			g := e.gen[n]
			e.mu.Unlock()
			workload.FillBlock(buf, n, g)
			if err := e.router.Submit(blockdev.Request{Op: blockdev.Write, Block: n, Domain: testDomain, Data: buf}); err != nil {
				t.Error(err)
				return
			}
			e.shadow.WriteBlock(n, buf)
			i++
			time.Sleep(300 * time.Microsecond)
		}
	}()

	srcCh := make(chan error, 1)
	var srcRep *metrics.Report
	go func() {
		var err error
		srcRep, err = MigrateDeltaSource(cfgSrc, e.src, e.connSrc, fwd)
		srcCh <- err
	}()
	res, err := MigrateDeltaDest(cfgDst, e.dst, e.connDst)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-srcCh; err != nil {
		t.Fatal(err)
	}
	<-resumed
	close(stopIO)
	wg.Wait()
	e.checkConverged(res.CPU)
	if fwd.Deltas() == 0 {
		t.Fatal("no deltas forwarded")
	}
	// The paper's §IV-A-2 point: write locality produces redundant deltas.
	if res.Report.StalePushes == 0 {
		t.Fatalf("no redundant deltas despite rewrites (forwarded %d)", fwd.Deltas())
	}
	if srcRep.Scheme != "delta-forward" {
		t.Fatalf("scheme %q", srcRep.Scheme)
	}
	if res.Report.IOBlockedTime < 0 {
		t.Fatal("negative replay time")
	}
}

func TestRouterFreezeResume(t *testing.T) {
	dev := blockdev.NewMemDisk(8, blockdev.BlockSize)
	b := blkback.NewBackend(dev, 1)
	r := NewRouter(b.Submit)
	buf := make([]byte, blockdev.BlockSize)
	if err := r.Submit(blockdev.Request{Op: blockdev.Write, Block: 0, Domain: 1, Data: buf}); err != nil {
		t.Fatal(err)
	}
	r.Freeze()
	done := make(chan error, 1)
	go func() {
		done <- r.Submit(blockdev.Request{Op: blockdev.Read, Block: 0, Domain: 1, Data: buf})
	}()
	select {
	case <-done:
		t.Fatal("request completed while frozen")
	case <-time.After(30 * time.Millisecond):
	}
	r.ResumeAt(b.Submit)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !r.StallObserved() {
		t.Fatal("stall not recorded")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Clock == nil || c.MaxDiskIters != DefaultMaxDiskIters ||
		c.DiskDirtyThreshold != DefaultDiskDirtyThreshold ||
		c.MaxMemIters != DefaultMaxMemIters || c.MemDirtyThreshold != DefaultMemDirtyThreshold {
		t.Fatalf("defaults not applied: %+v", c)
	}
	c2 := Config{MaxDiskIters: 7}.withDefaults()
	if c2.MaxDiskIters != 7 {
		t.Fatal("explicit value overridden")
	}
}
