package core

import (
	"fmt"
	"sync"

	"bbmig/internal/dedup"
	"bbmig/internal/transport"
)

// This file is the destination half of swarm multi-source fetch
// (Config.Swarm): sidecar sessions to peer host daemons whose fingerprint
// indexes can produce wanted content, so an evacuation draws on the fleet's
// uplinks instead of the source's alone. The swarm rides entirely outside
// the migration channel — MsgSwarmHello / MsgSwarmFetch / MsgSwarmBlock
// frames (WIRE.md §11) travel destination→peer connections — and it is
// purely an optimization: every fetched block is re-fingerprinted before it
// is trusted, and anything the swarm fails to produce simply stays in the
// want-bitmap for a literal send from the source.

// SwarmDialFunc opens a sidecar connection to one swarm peer address.
type SwarmDialFunc func(addr string) (transport.Conn, error)

// swarmPeer is one live sidecar session.
type swarmPeer struct {
	addr string
	conn transport.Conn
}

// swarmClient fans fingerprint fetches across the sidecar sessions that
// survived the hello exchange. Methods are called only from the
// destination's receive loop (one advert at a time), but the per-fetch
// fan-out runs one goroutine per peer.
type swarmClient struct {
	mu    sync.Mutex
	peers []*swarmPeer
	seq   uint64
}

// dialSwarm opens and handshakes every configured peer session. Peers that
// cannot be dialed, refuse the hello, or answer nonsense are dropped
// silently: the swarm is best-effort by contract. Returns nil when no peer
// survived, which disables the swarm for this migration.
func dialSwarm(cfg Config, domain string, blockSize int) *swarmClient {
	dial := cfg.SwarmDial
	if dial == nil {
		dial = transport.Dial
	}
	sc := &swarmClient{}
	for _, addr := range cfg.SwarmPeers {
		conn, err := dial(addr)
		if err != nil {
			continue
		}
		hello := transport.Message{
			Type:    transport.MsgSwarmHello,
			Arg:     uint64(blockSize),
			Payload: []byte(domain),
		}
		if err := conn.Send(hello); err != nil {
			conn.Close()
			continue
		}
		ack, err := conn.Recv()
		if err != nil || ack.Type != transport.MsgSwarmHello || ack.Arg != uint64(blockSize) {
			conn.Close()
			continue
		}
		sc.peers = append(sc.peers, &swarmPeer{addr: addr, conn: conn})
	}
	if len(sc.peers) == 0 {
		return nil
	}
	return sc
}

// fetch asks the live peers for the given fingerprints, round-robin
// partitioned, and returns whatever content arrived and verified
// (dedup.Of(content) == fingerprint at the right block size). Missing
// entries mean no peer produced the block; the caller leaves those wanted.
// A peer that errors — dead connection, bad frame, or content failing
// verification — is dropped for the rest of the migration, and its share of
// the request is simply not retried: the literal fallback covers it.
func (sc *swarmClient) fetch(fps []dedup.Fingerprint, blockSize int) map[dedup.Fingerprint][]byte {
	sc.mu.Lock()
	live := append([]*swarmPeer(nil), sc.peers...)
	sc.mu.Unlock()
	if len(live) == 0 || len(fps) == 0 {
		return nil
	}

	// Partition round-robin so every peer's uplink pulls its share. Each
	// fingerprint goes to exactly one peer: the fleet's aggregate bandwidth
	// is the win, not redundant fetching.
	shares := make([][]dedup.Fingerprint, len(live))
	for i, fp := range fps {
		k := i % len(live)
		shares[k] = append(shares[k], fp)
	}

	type result struct {
		peer *swarmPeer
		got  map[dedup.Fingerprint][]byte
		err  error
	}
	results := make(chan result, len(live))
	for k, peer := range live {
		share := shares[k]
		if len(share) == 0 {
			continue
		}
		seq := sc.nextSeq()
		go func(p *swarmPeer) {
			got, err := fetchFromPeer(p.conn, seq, share, blockSize)
			results <- result{peer: p, got: got, err: err}
		}(peer)
	}

	out := make(map[dedup.Fingerprint][]byte)
	for k := range live {
		if len(shares[k]) == 0 {
			continue
		}
		r := <-results
		if r.err != nil {
			sc.drop(r.peer)
			continue
		}
		for fp, content := range r.got {
			out[fp] = content
		}
	}
	return out
}

// nextSeq mints a request sequence number.
func (sc *swarmClient) nextSeq() uint64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.seq++
	return sc.seq
}

// drop removes a failed peer and closes its connection.
func (sc *swarmClient) drop(p *swarmPeer) {
	sc.mu.Lock()
	for i, q := range sc.peers {
		if q == p {
			sc.peers = append(sc.peers[:i], sc.peers[i+1:]...)
			break
		}
	}
	sc.mu.Unlock()
	p.conn.Close()
}

// close tears down every remaining session.
func (sc *swarmClient) close() {
	sc.mu.Lock()
	peers := sc.peers
	sc.peers = nil
	sc.mu.Unlock()
	for _, p := range peers {
		p.conn.Close()
	}
}

// fetchFromPeer runs one MsgSwarmFetch/MsgSwarmBlock round trip and
// verifies everything the peer produced. Any protocol violation — wrong
// type, wrong echoed sequence, a payload that does not match its hit-mask,
// or content whose fingerprint does not verify — is an error: a peer that
// lies once is not consulted again.
func fetchFromPeer(conn transport.Conn, seq uint64, fps []dedup.Fingerprint, blockSize int) (map[dedup.Fingerprint][]byte, error) {
	req := transport.Message{
		Type:    transport.MsgSwarmFetch,
		Arg:     seq,
		Payload: dedup.AppendFingerprints(nil, fps),
	}
	if err := conn.Send(req); err != nil {
		return nil, err
	}
	m, err := conn.Recv()
	if err != nil {
		return nil, err
	}
	if m.Type != transport.MsgSwarmBlock || m.Arg != seq {
		return nil, fmt.Errorf("core: swarm peer answered %v (arg %d), want SWARM_BLOCK (arg %d)", m.Type, m.Arg, seq)
	}
	maskLen := dedup.WantLen(len(fps))
	if len(m.Payload) < maskLen {
		return nil, fmt.Errorf("core: swarm block payload %d bytes, want ≥%d-byte hit-mask", len(m.Payload), maskLen)
	}
	mask, body := m.Payload[:maskLen], m.Payload[maskLen:]
	got := make(map[dedup.Fingerprint][]byte)
	off := 0
	for i, fp := range fps {
		if !dedup.Want(mask, i) {
			continue
		}
		if off+blockSize > len(body) {
			return nil, fmt.Errorf("core: swarm block payload short: %d hits need %d bytes, have %d", i+1, off+blockSize, len(body))
		}
		content := body[off : off+blockSize]
		off += blockSize
		// Verify before trusting: the peer's index is advisory, and a
		// corrupt or stale copy must degrade to a miss, never wrong bytes.
		if dedup.Of(content) != fp {
			return nil, fmt.Errorf("core: swarm peer served content failing fingerprint verification")
		}
		got[fp] = content
	}
	if off != len(body) {
		return nil, fmt.Errorf("core: swarm block payload has %d trailing bytes", len(body)-off)
	}
	return got, nil
}
