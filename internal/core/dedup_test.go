package core

import (
	"sync"
	"testing"
	"time"

	"bbmig/internal/blockdev"
	"bbmig/internal/dedup"
	"bbmig/internal/workload"
)

// templateDisk rewrites the env's source disk (and shadow) into a
// clone-fleet shape: the first three quarters cycle through `distinct`
// template contents, the last quarter is all zeros — the §IV-A-2 dedup
// argument taken from positional to content identity.
func templateDisk(t *testing.T, e *env, distinct int) {
	t.Helper()
	buf := make([]byte, blockdev.BlockSize)
	filled := testBlocks * 3 / 4
	for n := 0; n < testBlocks; n++ {
		if n < filled {
			workload.FillBlock(buf, n%distinct, 7)
		} else {
			clear(buf)
		}
		if err := e.srcDisk.WriteBlock(n, buf); err != nil {
			t.Fatal(err)
		}
		if err := e.shadow.WriteBlock(n, buf); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDedupEquivalence migrates the same template-shaped VM with and
// without content dedup: the destination must end byte-identical, and the
// dedup'd run must move at least 5x fewer wire bytes (the clone-fleet
// acceptance bar) because repeated template content ships once and the zero
// quarter ships as references only.
func TestDedupEquivalence(t *testing.T) {
	run := func(cfg Config) (int64, int, int) {
		e := newEnv(t)
		templateDisk(t, e, 16)
		rep, res := e.runTPM(cfg, nil)
		e.checkConverged(res.CPU)
		return rep.MigratedBytes, rep.DedupBlocks, res.Report.DedupBlocks
	}
	baseBytes, baseDedup, _ := run(Config{})
	if baseDedup != 0 {
		t.Fatalf("literal run reported %d dedup blocks", baseDedup)
	}
	dedupBytes, srcDedup, dstDedup := run(Config{Dedup: true})
	if srcDedup == 0 || srcDedup != dstDedup {
		t.Fatalf("dedup accounting: source %d, destination %d", srcDedup, dstDedup)
	}
	if srcDedup < testBlocks/2 {
		t.Fatalf("only %d of %d blocks travelled by reference", srcDedup, testBlocks)
	}
	if dedupBytes*5 > baseBytes {
		t.Fatalf("dedup moved %d bytes vs %d literal — less than the 5x bar", dedupBytes, baseBytes)
	}
}

// TestDedupTransferShapes runs the dedup protocol under the non-default
// transfer shapes it must compose with — extent coalescing, compression,
// and a striped bundle — requiring byte-identical convergence each time.
func TestDedupTransferShapes(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"coalesced16", Config{Dedup: true, MaxExtentBlocks: 16}},
		{"compressed", Config{Dedup: true, MaxExtentBlocks: 16, CompressLevel: -1}},
		{"striped4", Config{Dedup: true, MaxExtentBlocks: 16, Streams: 4}},
		{"adaptive", Config{Dedup: true, Policy: &AdaptivePolicy{}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := newEnv(t)
			templateDisk(t, e, 16)
			e.useStriped(tc.cfg.Streams)
			rep, res := e.runTPM(tc.cfg, nil)
			e.checkConverged(res.CPU)
			if rep.DedupBlocks == 0 {
				t.Fatal("no blocks travelled by reference")
			}
		})
	}
}

// TestDedupUnderWorkload races a verified write workload against a dedup'd
// migration: the shadow-truth check proves reference materialization never
// writes stale or wrong bytes even while the dirty set churns.
func TestDedupUnderWorkload(t *testing.T) {
	e := newEnv(t)
	templateDisk(t, e, 16)
	gen := workload.NewWebServer(testBlocks, 23)
	stopIO := make(chan struct{})
	stopMem := make(chan struct{})
	var replayErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, replayErr = workload.Replay(clockReal(), gen, testDomain, time.Hour, 200, e.submitVerified, stopIO)
	}()
	go memDirtier(e.src.VM.Memory(), 32, stopMem)

	cfg := Config{Dedup: true, MaxExtentBlocks: 8}
	cfg.OnFreeze = func() {
		close(stopMem)
		e.router.Freeze()
	}
	cfg.OnResume = e.router.ResumeGate
	_, res := e.runTPM(cfg, nil)
	close(stopIO)
	wg.Wait()
	if replayErr != nil {
		t.Fatalf("workload: %v", replayErr)
	}
	e.checkConverged(res.CPU)
}

// TestDedupSharedIndexAcrossMigrations is the clone-fleet scenario at engine
// level: two template siblings migrate into the same destination index, and
// the second must ride the content the first already landed.
func TestDedupSharedIndexAcrossMigrations(t *testing.T) {
	idx := dedup.NewIndex(blockdev.BlockSize)
	run := func(name string, distinct int) (int64, int) {
		e := newEnv(t)
		templateDisk(t, e, distinct)
		cfg := Config{Dedup: true, DedupIndex: idx, DedupName: name}
		rep, res := e.runTPM(cfg, nil)
		e.checkConverged(res.CPU)
		return rep.MigratedBytes, rep.DedupBlocks
	}
	// Many distinct contents: the first clone seeds the index.
	firstBytes, _ := run("disk/web1", 512)
	// The sibling carries the same 512 template contents: every disk block
	// should arrive by reference against web1's landed copy. What remains
	// of the wire is dominated by the (never deduplicated) memory pages.
	secondBytes, secondRefs := run("disk/web2", 512)
	if secondRefs != testBlocks {
		t.Fatalf("sibling moved %d of %d blocks by reference", secondRefs, testBlocks)
	}
	if secondBytes*2 > firstBytes {
		t.Fatalf("sibling moved %d bytes vs first clone's %d — index not shared", secondBytes, firstBytes)
	}
}

// TestDedupMismatchFailsCleanly pins the negotiation contract for raw
// engine users: a dedup sender against a literal receiver must error out on
// both sides, not corrupt anything.
func TestDedupMismatchFailsCleanly(t *testing.T) {
	e := newEnv(t)
	srcCh := make(chan error, 1)
	go func() {
		_, err := MigrateSource(Config{Dedup: true}, e.src, e.connSrc, nil)
		srcCh <- err
	}()
	if _, err := MigrateDest(Config{}, e.dst, e.connDst); err == nil {
		t.Fatal("literal destination accepted dedup frames")
	}
	if err := <-srcCh; err == nil {
		t.Fatal("dedup source completed against a literal destination")
	}
}

// TestDedupZeroElision pins the no-round-trip path: an all-zero disk must
// travel as references alone, with wire bytes a small fraction of capacity.
func TestDedupZeroElision(t *testing.T) {
	e := newEnv(t)
	buf := make([]byte, blockdev.BlockSize)
	for n := 0; n < testBlocks; n += 3 {
		if err := e.srcDisk.WriteBlock(n, buf); err != nil {
			t.Fatal(err)
		}
		if err := e.shadow.WriteBlock(n, buf); err != nil {
			t.Fatal(err)
		}
	}
	rep, res := e.runTPM(Config{Dedup: true, MaxExtentBlocks: 64}, nil)
	e.checkConverged(res.CPU)
	if rep.DedupBlocks != testBlocks {
		t.Fatalf("%d of %d zero blocks elided", rep.DedupBlocks, testBlocks)
	}
	if capacity := int64(testBlocks) * blockdev.BlockSize; rep.MigratedBytes*4 > capacity {
		t.Fatalf("zero disk still moved %d of %d bytes", rep.MigratedBytes, capacity)
	}
}
