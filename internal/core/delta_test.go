package core

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"bbmig/internal/bitmap"
	"bbmig/internal/blkback"
	"bbmig/internal/blockdev"
	"bbmig/internal/metrics"
	"bbmig/internal/transport"
	"bbmig/internal/vm"
	"bbmig/internal/workload"
)

// backReports pairs the two ends' reports of one return-trip migration.
type backReports struct {
	src *metrics.Report
	dst *metrics.Report
}

// hotRewrite diverges the destination disk the way a warm workload does:
// each listed block keeps most of its content and gets a small in-place
// rewrite — the divergence shape exact-match dedup cannot exploit and delta
// encoding exists for. rewriteLen bytes at the block head change; the rest
// survives.
func hotRewrite(t *testing.T, disk *blockdev.MemDisk, blocks []int, rewriteLen int, salt uint32) {
	t.Helper()
	buf := make([]byte, blockdev.BlockSize)
	patch := make([]byte, blockdev.BlockSize)
	for _, n := range blocks {
		if err := disk.ReadBlock(n, buf); err != nil {
			t.Fatal(err)
		}
		workload.FillBlock(patch, n+50000, salt)
		copy(buf[:rewriteLen], patch)
		if err := disk.WriteBlock(n, buf); err != nil {
			t.Fatal(err)
		}
	}
}

// migrateBack runs the incremental return trip of the env's world — the
// destination's current disk travels back onto the (stale) source disk —
// and returns the source report. The caller is responsible for having
// diverged e.dstDisk first. wrap, when non-nil, decorates each side's conn.
func (e *env) migrateBack(t *testing.T, cfg Config, fresh *bitmap.Bitmap, wrap func(transport.Conn) transport.Conn) *backReports {
	t.Helper()
	backSrcVM := e.dst.VM
	backDstVM := vm.NewDestination(backSrcVM)
	backSrc := Host{VM: backSrcVM, Backend: blkback.NewBackend(e.dstDisk, testDomain)}
	backDst := Host{VM: backDstVM, Backend: blkback.NewBackend(e.srcDisk, testDomain)}
	backSrc.Backend.SeedDirty(fresh)
	router2 := NewRouter(backSrc.Backend.Submit)
	c1, c2 := transport.NewPipe(64)
	var sc, dc transport.Conn = c1, c2
	if wrap != nil {
		sc, dc = wrap(sc), wrap(dc)
	}
	cfg.OnFreeze = router2.Freeze
	cfg.OnResume = router2.ResumeGate
	type out struct {
		rep *metrics.Report
		err error
	}
	srcCh := make(chan out, 1)
	go func() {
		rep, err := MigrateSource(cfg, backSrc, sc, backSrc.Backend.SwapDirty())
		srcCh <- out{rep, err}
	}()
	dres, derr := MigrateDest(cfg, backDst, dc)
	if derr != nil {
		t.Fatalf("IM destination: %v", derr)
	}
	o := <-srcCh
	if o.err != nil {
		t.Fatalf("IM source: %v", o.err)
	}
	return &backReports{src: o.rep, dst: dres.Report}
}

// TestDeltaTPMConvergence runs delta-negotiated primary migrations under
// the transfer shapes delta must compose with — coalescing, compression, a
// striped bundle, and content dedup — requiring byte-identical convergence
// each time. The fresh destination is the cold-signature case: every
// signature summarizes zeros, so filled extents fall back to literals while
// the source's zero runs ride near-empty patches.
func TestDeltaTPMConvergence(t *testing.T) {
	cases := []struct {
		name        string
		cfg         Config
		wantPatches bool
	}{
		{"coalesced16", Config{Delta: true, MaxExtentBlocks: 16}, true},
		{"compressed", Config{Delta: true, MaxExtentBlocks: 16, CompressLevel: -1}, true},
		{"striped4", Config{Delta: true, MaxExtentBlocks: 16, Streams: 4}, true},
		// With dedup also on, a cold primary migration has nothing for delta
		// to win: zero runs are elided as references first and filled blocks
		// against a cold destination fall back to literals — the composition
		// must still converge. (The IM test exercises the composed win.)
		{"with-dedup", Config{Delta: true, Dedup: true, MaxExtentBlocks: 16}, false},
		{"chunk512", Config{Delta: true, MaxExtentBlocks: 16, DeltaChunk: 512}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := newEnv(t)
			e.useStriped(tc.cfg.Streams)
			rep, res := e.runTPM(tc.cfg, nil)
			e.checkConverged(res.CPU)
			if tc.wantPatches && rep.DeltaBlocks == 0 {
				t.Fatal("no blocks travelled as patches")
			}
			if rep.DeltaBlocks != res.Report.DeltaBlocks {
				t.Fatalf("delta accounting: source %d, destination %d", rep.DeltaBlocks, res.Report.DeltaBlocks)
			}
		})
	}
}

// TestDeltaEquivalenceIM is the headline Table II scenario: after a primary
// migration, the destination rewrites a hot fraction of its blocks in place
// and migrates back incrementally. With delta negotiated the return trip
// must land the identical disk while moving several times fewer disk-phase
// wire bytes than the literal run — the hot rewrites travel as patches
// covering only the chunks that changed.
func TestDeltaEquivalenceIM(t *testing.T) {
	// ~25% of the disk, rewritten over the first 1/16th of each block.
	divergent := make([]int, 0, testBlocks/4)
	for n := 0; n < testBlocks; n += 4 {
		divergent = append(divergent, n)
	}
	run := func(backCfg Config) (diskWire int64, img []byte, srcPatched, dstPatched int) {
		e := newEnv(t)
		_, res := e.runTPM(Config{}, nil)
		e.checkConverged(res.CPU)
		hotRewrite(t, e.dstDisk, divergent, blockdev.BlockSize/16, 7)
		fresh := bitmap.New(testBlocks)
		for _, n := range divergent {
			fresh.Set(n)
		}
		back := e.migrateBack(t, backCfg, fresh, nil)
		diffs, err := blockdev.Diff(e.srcDisk, e.dstDisk)
		if err != nil {
			t.Fatal(err)
		}
		if len(diffs) != 0 {
			t.Fatalf("after IM back, disks differ at %d blocks (first %v)", len(diffs), diffs[0])
		}
		for _, it := range back.src.DiskIterations {
			diskWire += it.Bytes
		}
		return diskWire, diskImage(t, e.srcDisk), back.src.DeltaBlocks, back.dst.DeltaBlocks
	}
	litWire, litImg, litPatched, _ := run(Config{MaxExtentBlocks: 16})
	if litPatched != 0 {
		t.Fatalf("literal run reported %d delta blocks", litPatched)
	}
	deltaWire, deltaImg, srcPatched, dstPatched := run(Config{Delta: true, MaxExtentBlocks: 16})
	if !bytes.Equal(litImg, deltaImg) {
		t.Fatal("delta-on and delta-off runs produced different disks")
	}
	if srcPatched != len(divergent) || srcPatched != dstPatched {
		t.Fatalf("patched %d (src) / %d (dst) of %d divergent blocks", srcPatched, dstPatched, len(divergent))
	}
	if deltaWire*3 > litWire {
		t.Fatalf("delta return trip moved %d disk bytes vs %d literal — less than the 3x bar", deltaWire, litWire)
	}
	// Composed with dedup: the hot rewrites are content the stale peer
	// cannot claim, so the want-bitmap routes them into the delta path and
	// the same 3x bar must hold.
	bothWire, bothImg, bothPatched, _ := run(Config{Delta: true, Dedup: true, MaxExtentBlocks: 16})
	if !bytes.Equal(litImg, bothImg) {
		t.Fatal("dedup+delta run produced a different disk")
	}
	if bothPatched == 0 {
		t.Fatal("dedup+delta return trip shipped no patches")
	}
	if bothWire*3 > litWire {
		t.Fatalf("dedup+delta return trip moved %d disk bytes vs %d literal — less than the 3x bar", bothWire, litWire)
	}
}

// patchCorruptor flips one payload byte of every outbound patch,
// manufacturing the verify-on-apply failure deterministically.
type patchCorruptor struct{ transport.Conn }

func (c patchCorruptor) Send(m transport.Message) error {
	if m.Type == transport.MsgDeltaPatch && len(m.Payload) > 0 {
		p := append([]byte(nil), m.Payload...)
		p[len(p)/2] ^= 0xff
		m.Payload = p
	}
	return c.Conn.Send(m)
}

// TestDeltaMismatchDegrades pins the verify-on-apply contract: when every
// patch arrives corrupted, the destination refuses each one and the source
// re-sends the content literally — the migration still converges
// byte-identically and zero blocks are accounted as delta-moved.
func TestDeltaMismatchDegrades(t *testing.T) {
	e := newEnv(t)
	e.connSrc = patchCorruptor{e.connSrc}
	rep, res := e.runTPM(Config{Delta: true, MaxExtentBlocks: 16}, nil)
	e.checkConverged(res.CPU)
	if res.Report.DeltaBlocks != 0 {
		t.Fatalf("destination applied %d corrupted patches", res.Report.DeltaBlocks)
	}
	if rep.DeltaBlocks != 0 {
		t.Fatalf("source still accounts %d blocks as delta-moved after refusals", rep.DeltaBlocks)
	}
}

// TestDeltaNegotiationMismatchFailsCleanly pins the negotiation contract
// for raw engine users: a delta sender against a literal receiver must
// error out on both sides, not corrupt anything.
func TestDeltaNegotiationMismatchFailsCleanly(t *testing.T) {
	e := newEnv(t)
	srcCh := make(chan error, 1)
	go func() {
		_, err := MigrateSource(Config{Delta: true}, e.src, e.connSrc, nil)
		srcCh <- err
	}()
	if _, err := MigrateDest(Config{}, e.dst, e.connDst); err == nil {
		t.Fatal("literal destination accepted delta frames")
	}
	if err := <-srcCh; err == nil {
		t.Fatal("delta source completed against a literal destination")
	}
}

// TestDeltaUnderWorkload races a verified write workload against a
// delta-negotiated migration: the shadow-truth check proves patch
// application never writes stale or wrong bytes while the dirty set churns
// under the signature round trips.
func TestDeltaUnderWorkload(t *testing.T) {
	e := newEnv(t)
	gen := workload.NewWebServer(testBlocks, 23)
	stopIO := make(chan struct{})
	stopMem := make(chan struct{})
	var replayErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, replayErr = workload.Replay(clockReal(), gen, testDomain, time.Hour, 200, e.submitVerified, stopIO)
	}()
	go memDirtier(e.src.VM.Memory(), 32, stopMem)

	cfg := Config{Delta: true, MaxExtentBlocks: 8}
	cfg.OnFreeze = func() {
		close(stopMem)
		e.router.Freeze()
	}
	cfg.OnResume = e.router.ResumeGate
	_, res := e.runTPM(cfg, nil)
	close(stopIO)
	wg.Wait()
	if replayErr != nil {
		t.Fatalf("workload: %v", replayErr)
	}
	e.checkConverged(res.CPU)
}

// TestDeltaWANFlakyResume is the end-to-end WAN scenario the layer exists
// for: an incremental return trip over a latency- and bandwidth-shaped link
// with compression negotiated, delta on, and the link cut mid-transfer. The
// source must reconnect, resume the interrupted phase, and land a disk
// byte-identical to the sender's freeze-time content.
func TestDeltaWANFlakyResume(t *testing.T) {
	e := newEnv(t)
	_, res := e.runTPM(Config{}, nil)
	e.checkConverged(res.CPU)

	divergent := make([]int, 0, testBlocks/4)
	for n := 0; n < testBlocks; n += 4 {
		divergent = append(divergent, n)
	}
	hotRewrite(t, e.dstDisk, divergent, blockdev.BlockSize/16, 9)
	fresh := bitmap.New(testBlocks)
	for _, n := range divergent {
		fresh.Set(n)
	}

	// WAN shape: per-frame stall plus serialization at an asymmetric rate
	// (the return direction is the slow uplink). Stalls are kept far below
	// the real 50-200 ms RTT so the round-trip-heavy delta path stays
	// testable; the shape — every sig request pays a round trip — is the
	// same.
	wan := func(c transport.Conn) transport.Conn {
		return transport.NewWAN(c, 200*time.Microsecond, 64<<20)
	}

	inj := transport.NewInjector([]transport.Fault{{AfterSends: 40, Kind: transport.FaultCut}})
	relink := newPipeRelinker(inj)
	redial := func() (transport.Conn, error) {
		c, err := relink.redial()
		if err != nil {
			return nil, err
		}
		return wan(c), nil
	}

	backSrcVM := e.dst.VM
	backDstVM := vm.NewDestination(backSrcVM)
	backSrc := Host{VM: backSrcVM, Backend: blkback.NewBackend(e.dstDisk, testDomain)}
	backDst := Host{VM: backDstVM, Backend: blkback.NewBackend(e.srcDisk, testDomain)}
	backSrc.Backend.SeedDirty(fresh)
	router2 := NewRouter(backSrc.Backend.Submit)
	c1, c2 := transport.NewPipe(64)

	srcCfg := Config{
		Delta: true, CompressLevel: -1, MaxExtentBlocks: 16,
		MaxRetries: 5, RetryBackoff: time.Millisecond,
		Redial:   redial,
		OnFreeze: router2.Freeze,
	}
	dstCfg := Config{
		Delta: true, CompressLevel: -1, MaxExtentBlocks: 16,
		WaitReconnect: relink.waitReconnect,
		OnResume:      router2.ResumeGate,
	}
	srcCh := make(chan error, 1)
	var retries int
	go func() {
		rep, err := MigrateSource(srcCfg, backSrc, inj.Wrap(wan(c1)), backSrc.Backend.SwapDirty())
		if rep != nil {
			retries = rep.Retries
		}
		srcCh <- err
	}()
	if _, err := MigrateDest(dstCfg, backDst, wan(c2)); err != nil {
		t.Fatalf("IM destination: %v", err)
	}
	if err := <-srcCh; err != nil {
		t.Fatalf("IM source: %v", err)
	}
	if retries != 1 {
		t.Fatalf("source survived %d retries, want 1", retries)
	}
	diffs, err := blockdev.Diff(e.srcDisk, e.dstDisk)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("after flaky WAN IM back, disks differ at %d blocks (first %v)", len(diffs), diffs[0])
	}
}
