package core

import (
	"fmt"

	"bbmig/internal/bitmap"
	"bbmig/internal/delta"
	"bbmig/internal/transport"
)

// This file is the engine half of delta-encoded transfer (Config.Delta),
// the WAN path for content that diverged but stayed similar — the 11-35%
// hot-block rewrites exact-match dedup cannot exploit. The protocol per
// extent is a strictly alternating round trip: the source requests the
// signature of the destination's current content (MsgDeltaSig, empty
// payload), the destination answers with the marshaled chunk signature,
// and the source ships either a COPY/LITERAL patch (MsgDeltaPatch) or the
// plain literal, whichever is smaller. The destination verifies every
// patch's embedded strong hash before a single byte lands; a mismatch is
// refused back (MsgDeltaPatch, empty payload) and the source re-sends that
// extent literally before the pass's fence — degraded, never wrong. With
// Dedup also negotiated, delta replaces the literal sends for the blocks
// the want-bitmap asked for, composing the two. Memory pages,
// freeze-and-copy, and post-copy pushes are never delta-encoded.

// deltaFenceArg is the MsgDeltaSig Arg bounding one delta send pass.
// ExtentArg never produces 0 (a packed extent has count >= 1), so the value
// can never collide with a real signature request.
const deltaFenceArg = 0

// sendExtentsDelta is the delta counterpart of sendExtentsSeq: it walks
// bm's runs with a cursor and moves each extent through the signature round
// trip. Sequential by design — each extent is a round trip, so a worker
// pool would just reorder waits.
func (t *transfer) sendExtentsDelta(bm *bitmap.Bitmap, phaseName string, limited bool) (int, int64, error) {
	dev := t.srcDev
	bs := dev.BlockSize()
	var buf []byte
	defer func() { transport.PutBuf(buf) }()
	sent := 0
	var bytes int64
	for pos := 0; ; {
		maxExt := t.extentBlocks(phaseName)
		ext := bm.NextExtent(pos, maxExt)
		if ext.Count == 0 {
			fenceWire, err := t.deltaFence(limited)
			return sent, bytes + fenceWire, err
		}
		if need := ext.Count * bs; cap(buf) < need {
			transport.PutBuf(buf)
			buf = transport.GetBuf(maxExt * bs)
		}
		data := buf[:ext.Count*bs]
		extStart := t.clk.Now()
		for k := 0; k < ext.Count; k++ {
			if err := dev.ReadBlock(ext.Start+k, data[k*bs:(k+1)*bs]); err != nil {
				return sent, bytes, err
			}
		}
		wire, err := t.sendDeltaExtent(ext, data, phaseName, limited)
		if err != nil {
			return sent, bytes, err
		}
		t.pol.ObserveExtent(ext.Count, wire, t.clk.Now()-extStart)
		sent += ext.Count
		bytes += wire
		pos = ext.End()
	}
}

// sendDeltaExtent moves one extent under the delta protocol and returns the
// wire bytes it sent. The literal fallbacks — policy verdict false, or a
// patch no smaller than the content — produce frames any delta-negotiated
// destination accepts, so the round trip gates cost, never correctness.
func (t *transfer) sendDeltaExtent(ext bitmap.Extent, data []byte, phaseName string, limited bool) (int64, error) {
	if !t.pol.DeltaExtent(phaseName, ext.Count) {
		m := extentMessage(ext, data)
		return int64(m.FrameSize()), t.send(m, limited)
	}
	arg := transport.ExtentArg(ext.Start, ext.Count)
	req := transport.Message{Type: transport.MsgDeltaSig, Arg: arg}
	if err := t.send(req, limited); err != nil {
		return 0, err
	}
	wire := int64(req.FrameSize())
	sigRaw, err := t.awaitDeltaSig(arg)
	if err != nil {
		return wire, err
	}
	sig, perr := delta.ParseSignature(sigRaw)
	transport.PutBuf(sigRaw)
	if perr != nil {
		return wire, fmt.Errorf("core: delta signature for extent [%d,+%d): %w", ext.Start, ext.Count, perr)
	}
	patch := delta.Diff(sig, data)
	if len(patch) >= len(data) {
		// Diverged wholesale: the literal is no bigger and needs no apply.
		m := extentMessage(ext, data)
		if err := t.send(m, limited); err != nil {
			return wire, err
		}
		return wire + int64(m.FrameSize()), nil
	}
	m := transport.Message{Type: transport.MsgDeltaPatch, Arg: arg, Payload: patch}
	if err := t.send(m, limited); err != nil {
		return wire, err
	}
	t.deltaBlocks += ext.Count
	t.deltaPending++
	return wire + int64(m.FrameSize()), nil
}

// deltaFence bounds one delta send pass. The source sends the Arg-0
// signature request and waits for the destination's echo; both directions
// are FIFO, so by the time the echo arrives every patch of the pass has
// been applied or refused and every refusal has been routed to the NAK
// list. Refused extents are then re-sent literally — within the same pass,
// so iteration accounting on both sides stays exact. Passes that shipped no
// patch skip the round trip entirely.
func (t *transfer) deltaFence(limited bool) (int64, error) {
	if t.deltaPending == 0 {
		return 0, nil
	}
	t.deltaPending = 0
	req := transport.Message{Type: transport.MsgDeltaSig, Arg: deltaFenceArg}
	if err := t.send(req, limited); err != nil {
		return 0, err
	}
	wire := int64(req.FrameSize())
	echo, err := t.awaitDeltaSig(deltaFenceArg)
	if err != nil {
		return wire, err
	}
	transport.PutBuf(echo)
	naks := t.takeDeltaNaks()
	if len(naks) == 0 {
		return wire, nil
	}
	dev := t.srcDev
	bs := dev.BlockSize()
	var buf []byte
	defer func() { transport.PutBuf(buf) }()
	for _, arg := range naks {
		start, count := transport.ExtentSplit(arg)
		if count < 1 || start < 0 || start+count > dev.NumBlocks() {
			return wire, fmt.Errorf("core: delta refusal names extent [%d,+%d) outside the device", start, count)
		}
		if need := count * bs; cap(buf) < need {
			transport.PutBuf(buf)
			buf = transport.GetBuf(need)
		}
		data := buf[:count*bs]
		for k := 0; k < count; k++ {
			if err := dev.ReadBlock(start+k, data[k*bs:(k+1)*bs]); err != nil {
				return wire, err
			}
		}
		t.deltaBlocks -= count // the patch was refused; these blocks moved literally
		m := extentMessage(bitmap.Extent{Start: start, Count: count}, data)
		if err := t.send(m, limited); err != nil {
			return wire, err
		}
		wire += int64(m.FrameSize())
	}
	return wire, nil
}

// --- Destination side ---

// checkDeltaExtent validates a MsgDeltaSig/MsgDeltaPatch Arg against the
// prepared VBD.
func (t *transfer) checkDeltaExtent(arg uint64) (bitmap.Extent, error) {
	start, count := transport.ExtentSplit(arg)
	dev := t.host.Backend.Device()
	if count < 1 || start < 0 || start+count > dev.NumBlocks() {
		return bitmap.Extent{}, fmt.Errorf("core: delta extent [%d,+%d) outside %d-block VBD", start, count, dev.NumBlocks())
	}
	return bitmap.Extent{Start: start, Count: count}, nil
}

// readExtent reads the destination's current on-disk content for ext into a
// pooled buffer the caller must PutBuf.
func (d *destRun) readExtent(ext bitmap.Extent) ([]byte, error) {
	dev := d.host.Backend.Device()
	bs := dev.BlockSize()
	buf := transport.GetBuf(ext.Count * bs)
	for k := 0; k < ext.Count; k++ {
		if err := dev.ReadBlock(ext.Start+k, buf[k*bs:(k+1)*bs]); err != nil {
			transport.PutBuf(buf)
			return nil, err
		}
	}
	return buf[:ext.Count*bs], nil
}

// handleDeltaSig answers one signature request from the destination's
// current content. Runs under drainOn, so every earlier write is on the
// device before its content is summarized.
func (d *destRun) handleDeltaSig(m transport.Message) error {
	if m.Arg == deltaFenceArg {
		// End-of-pass fence: by FIFO, every refusal this pass produced is
		// already ahead of this echo on the return path.
		return d.destSend(transport.Message{Type: transport.MsgDeltaSig, Arg: deltaFenceArg})
	}
	ext, err := d.checkDeltaExtent(m.Arg)
	if err != nil {
		return err
	}
	old, err := d.readExtent(ext)
	if err != nil {
		return err
	}
	sig := delta.Sig(old, d.cfg.DeltaChunk)
	transport.PutBuf(old)
	return d.destSend(transport.Message{Type: transport.MsgDeltaSig, Arg: m.Arg, Payload: sig.Marshal()})
}

// handleDeltaPatch applies one patch against the destination's current
// content, verifying the patch's embedded strong hash before any byte
// lands. A patch that fails to parse, rebuild, or verify is refused back to
// the source with an empty echo — the literal re-send follows before the
// fence — and is never partially applied.
func (d *destRun) handleDeltaPatch(m transport.Message) error {
	ext, err := d.checkDeltaExtent(m.Arg)
	if err != nil {
		return err
	}
	dev := d.host.Backend.Device()
	bs := dev.BlockSize()
	old, err := d.readExtent(ext)
	if err != nil {
		return err
	}
	out, aerr := delta.Apply(old, m.Payload)
	transport.PutBuf(old)
	if aerr == nil && len(out) != ext.Count*bs {
		aerr = fmt.Errorf("core: patch rebuilt %d bytes for a %d-block extent", len(out), ext.Count)
	}
	if aerr != nil {
		return d.destSend(transport.Message{Type: transport.MsgDeltaPatch, Arg: m.Arg})
	}
	for k := 0; k < ext.Count; k++ {
		blk := out[k*bs : (k+1)*bs]
		if err := dev.WriteBlock(ext.Start+k, blk); err != nil {
			return fmt.Errorf("core: apply delta block %d: %w", ext.Start+k, err)
		}
		if d.dd != nil {
			d.dd.observe(ext.Start+k, blk)
		}
	}
	d.deltaBlocks += ext.Count
	d.noteRecvBlocks(ext.Start, ext.End())
	return nil
}
