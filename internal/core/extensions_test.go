package core

import (
	"testing"
	"time"

	"bbmig/internal/bitmap"
	"bbmig/internal/blkback"
	"bbmig/internal/blockdev"
	"bbmig/internal/metrics"
	"bbmig/internal/transport"
	"bbmig/internal/vm"
	"bbmig/internal/workload"
)

// TestSkipUnusedElidesFreeBlocks exercises the §VII guest-cooperation
// extension: a mostly-empty disk migrates by sending only its allocated
// blocks, and the destination still ends up bit-identical (zeros read as
// zeros on the fresh VBD).
func TestSkipUnusedElidesFreeBlocks(t *testing.T) {
	e := newEnv(t) // every 3rd block allocated → ~683 of 2048
	allocated := e.srcDisk.WrittenBlocks()
	rep, res := e.runTPM(Config{SkipUnused: true}, nil)
	e.checkConverged(res.CPU)
	if got := rep.DiskIterations[0].Units; got != allocated {
		t.Fatalf("first iteration sent %d blocks, allocation map has %d", got, allocated)
	}
	if rep.DiskIterations[0].Units >= testBlocks {
		t.Fatal("SkipUnused sent the whole disk")
	}
	// Compare against a full migration's first iteration for the saving.
	e2 := newEnv(t)
	repFull, _ := e2.runTPM(Config{}, nil)
	if rep.MigratedBytes >= repFull.MigratedBytes {
		t.Fatalf("SkipUnused moved %d bytes, full migration %d", rep.MigratedBytes, repFull.MigratedBytes)
	}
}

func TestSkipUnusedIgnoredWithoutAllocator(t *testing.T) {
	e := newEnv(t)
	// FileDisk does not implement Allocator: SkipUnused must fall back to
	// the full disk rather than fail or corrupt.
	img, err := blockdev.CreateFileDisk(t.TempDir()+"/img", testBlocks, blockdev.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	defer img.Close()
	buf := make([]byte, blockdev.BlockSize)
	for n := 0; n < testBlocks; n += 3 {
		workload.FillBlock(buf, n, 0)
		img.WriteBlock(n, buf)
	}
	e.src.Backend = blkback.NewBackend(img, testDomain)
	e.router = NewRouter(e.src.Backend.Submit)
	rep, _ := e.runTPM(Config{SkipUnused: true}, nil)
	if rep.DiskIterations[0].Units != testBlocks {
		t.Fatalf("non-allocator device sent %d blocks, want full %d", rep.DiskIterations[0].Units, testBlocks)
	}
}

// TestVaultMultiHost walks a VM A→B→C→A and checks each hop's initial
// bitmap is exactly the divergence the receiving host missed.
func TestVaultMultiHost(t *testing.T) {
	const blocks = 1000
	v := NewVault(blocks)

	// VM starts on A; B and C have never seen the disk.
	if v.DivergentBlocks("B") != -1 {
		t.Fatal("unknown peer reports divergence")
	}
	if got := v.InitialFor("B").Count(); got != blocks {
		t.Fatalf("unknown peer initial = %d, want all-set %d", got, blocks)
	}

	// Migrate A→B (full). B's vault now knows A as synchronized.
	v.MarkSynced("A")
	if got := v.InitialFor("A").Count(); got != 0 {
		t.Fatalf("freshly synced peer diverges by %d", got)
	}

	// Work on B dirties blocks 0-99: A is now behind by those.
	dirty := newBitmapWith(blocks, 0, 100)
	v.RecordWrites(dirty)
	if got := v.DivergentBlocks("A"); got != 100 {
		t.Fatalf("A divergence = %d, want 100", got)
	}

	// Migrate B→C (C unknown → full). After sync, C registers; A keeps
	// its 100-block divergence (the vault state travels with the VM).
	if got := v.InitialFor("C").Count(); got != blocks {
		t.Fatal("C should need a full migration")
	}
	v.MarkSynced("C")

	// Work on C dirties 50-149: now A is behind by 0-149, C's old host B
	// by 50-149.
	v.MarkSynced("B") // B was left synchronized at the migration point
	v.RecordWrites(newBitmapWith(blocks, 50, 100))
	if got := v.DivergentBlocks("A"); got != 150 {
		t.Fatalf("A divergence = %d, want 150", got)
	}
	if got := v.DivergentBlocks("B"); got != 100 {
		t.Fatalf("B divergence = %d, want 100", got)
	}
	// Migrating back to A needs 150 blocks, not the whole kilobyte disk.
	if got := v.InitialFor("A").Count(); got != 150 {
		t.Fatalf("A initial = %d", got)
	}
	v.MarkSynced("A")
	if got := v.DivergentBlocks("A"); got != 0 {
		t.Fatal("A not reset after sync")
	}
	if len(v.Peers()) != 3 {
		t.Fatalf("peers = %v", v.Peers())
	}
}

func newBitmapWith(n, lo, count int) *bitmap.Bitmap {
	bm := bitmap.New(n)
	bm.SetRange(lo, lo+count)
	return bm
}

// TestVaultPanicsOnSizeMismatch guards the geometry invariant.
func TestVaultPanicsOnSizeMismatch(t *testing.T) {
	v := NewVault(10)
	v.MarkSynced("A")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	v.RecordWrites(bitmap.New(11))
}

// TestVaultDrivenIM runs a real three-host migration chain using the vault
// to seed each hop, verifying disk consistency at every stop.
func TestVaultDrivenIM(t *testing.T) {
	const domain = 1
	disks := map[string]*blockdev.MemDisk{
		"A": blockdev.NewMemDisk(testBlocks, blockdev.BlockSize),
		"B": blockdev.NewMemDisk(testBlocks, blockdev.BlockSize),
		"C": blockdev.NewMemDisk(testBlocks, blockdev.BlockSize),
	}
	shadow := blockdev.NewMemDisk(testBlocks, blockdev.BlockSize)
	buf := make([]byte, blockdev.BlockSize)
	for n := 0; n < testBlocks; n += 4 {
		workload.FillBlock(buf, n, 0)
		disks["A"].WriteBlock(n, buf)
		shadow.WriteBlock(n, buf)
	}
	guest := vm.New("vaulted", domain, 64, 256)
	vault := NewVault(testBlocks)
	cur := "A"

	// writeSome dirties a few blocks on the current host and tells the vault.
	gen := uint32(0)
	writeSome := func(lo, n int) {
		dirty := bitmap.New(testBlocks)
		for i := lo; i < lo+n; i++ {
			gen++
			workload.FillBlock(buf, i, gen)
			if err := disks[cur].WriteBlock(i, buf); err != nil {
				t.Fatal(err)
			}
			shadow.WriteBlock(i, buf)
			dirty.Set(i)
		}
		vault.RecordWrites(dirty)
	}

	hop := func(to string) {
		src := Host{VM: guest, Backend: blkback.NewBackend(disks[cur], domain)}
		src.Backend.SeedDirty(vault.InitialFor(to))
		dstVM := vm.NewDestination(guest)
		dst := Host{VM: dstVM, Backend: blkback.NewBackend(disks[to], domain)}
		c1, c2 := transport.NewPipe(64)
		errCh := make(chan error, 1)
		go func() {
			_, err := MigrateSource(Config{}, src, c1, src.Backend.SwapDirty())
			errCh <- err
		}()
		if _, err := MigrateDest(Config{}, dst, c2); err != nil {
			t.Fatalf("hop %s→%s dest: %v", cur, to, err)
		}
		if err := <-errCh; err != nil {
			t.Fatalf("hop %s→%s src: %v", cur, to, err)
		}
		vault.MarkSynced(cur) // the host we left holds a synced copy
		vault.MarkSynced(to)
		cur = to
		guest = dstVM
		diffs, err := blockdev.Diff(disks[to], shadow)
		if err != nil {
			t.Fatal(err)
		}
		if len(diffs) != 0 {
			t.Fatalf("after hop to %s, %d blocks differ", to, len(diffs))
		}
	}

	writeSome(100, 30)
	hop("B")
	writeSome(200, 20)
	hop("C")
	writeSome(300, 10)
	hop("A") // back to A: must carry blocks 200-219 and 300-309, not everything
	if v := vault.DivergentBlocks("A"); v != 0 {
		t.Fatalf("A still diverges by %d", v)
	}
}

// TestCompressedMigration runs TPM through symmetric compression wrappers
// and verifies consistency plus a wire-byte reduction on the zero-heavy
// disk.
func TestCompressedMigration(t *testing.T) {
	e := newEnv(t)
	rawSrc, rawDst := e.connSrc, e.connDst
	meter := transport.NewMeter(rawSrc)
	cs, err := transport.NewCompressed(meter, 6)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := transport.NewCompressed(rawDst, 6)
	if err != nil {
		t.Fatal(err)
	}
	e.connSrc, e.connDst = cs, cd
	rep, res := e.runTPM(Config{}, nil)
	e.checkConverged(res.CPU)
	// 2/3 of the disk is zeros and the patterned blocks are regular: the
	// wire must carry far less than the logical amount.
	if meter.BytesSent() >= rep.DiskBytes/2 {
		t.Fatalf("compressed wire bytes %d vs %d logical — compression ineffective",
			meter.BytesSent(), rep.DiskBytes)
	}
}

// TestMigrationSurvivesLinkDeath injects connection failures at several
// points and requires both sides to return errors promptly — no hangs, no
// partial success reported as success.
func TestMigrationSurvivesLinkDeath(t *testing.T) {
	// Fault points land in the handshake, early disk pre-copy, mid disk
	// pre-copy, and the memory phase (the idle migration totals ~2320
	// sends, so all of these strike mid-flight).
	for _, failAfter := range []int64{1, 5, 100, 2100} {
		e := newEnv(t)
		faulty := transport.NewFaultConn(e.connSrc, failAfter, 0)
		srcCh := make(chan error, 1)
		go func() {
			_, err := MigrateSource(Config{}, e.src, faulty, nil)
			srcCh <- err
		}()
		dstCh := make(chan error, 1)
		go func() {
			_, err := MigrateDest(Config{}, e.dst, e.connDst)
			dstCh <- err
		}()
		timeout := time.After(10 * time.Second)
		for i := 0; i < 2; i++ {
			select {
			case err := <-srcCh:
				if err == nil {
					t.Fatalf("failAfter=%d: source reported success over a dead link", failAfter)
				}
			case err := <-dstCh:
				if err == nil {
					t.Fatalf("failAfter=%d: destination reported success over a dead link", failAfter)
				}
			case <-timeout:
				t.Fatalf("failAfter=%d: migration hung after link death", failAfter)
			}
		}
		// the source VM must still be intact and runnable
		if e.src.VM.State() != vm.Running {
			t.Fatalf("failAfter=%d: source VM state %v after failed migration", failAfter, e.src.VM.State())
		}
	}
}

// TestLinkDeathDuringPostCopy cuts the link after the destination resumed:
// the destination VM is already running; the engine must surface the error.
func TestLinkDeathDuringPostCopy(t *testing.T) {
	e := newEnv(t)
	// Keep a large dirty set for post-copy (single iteration, then
	// everything else rides the bitmap).
	buf := make([]byte, blockdev.BlockSize)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for !e.src.Backend.Tracking() {
			time.Sleep(time.Millisecond)
		}
		for n := 0; n < 600; n++ {
			workload.FillBlock(buf, n, 1)
			e.router.Submit(blockdev.Request{Op: blockdev.Write, Block: n, Domain: testDomain, Data: buf})
		}
	}()
	// Fail the source's sends a little after the resume handshake: the
	// hello + iteration + pages + control messages total ~2320, and the
	// freeze waits for all 600 dirty writes to land, so cutting at 2500
	// sends is guaranteed to strike inside the post-copy push stream.
	faulty := transport.NewFaultConn(e.connSrc, 2500, 0)
	cfg := Config{MaxDiskIters: 1, OnFreeze: func() {
		<-writerDone
		e.router.Freeze()
	}}
	srcCh := make(chan error, 1)
	go func() {
		_, err := MigrateSource(cfg, e.src, faulty, nil)
		srcCh <- err
	}()
	_, dstErr := MigrateDest(Config{MaxDiskIters: 1}, e.dst, e.connDst)
	srcErr := <-srcCh
	if srcErr == nil && dstErr == nil {
		t.Fatal("both sides reported success despite link death")
	}
}

// TestReportStorageTime covers the Table II accounting helper.
func TestReportStorageTime(t *testing.T) {
	r := metrics.Report{
		PostCopyTime: 100 * time.Millisecond,
		DiskIterations: []metrics.Iteration{
			{Duration: time.Second}, {Duration: 2 * time.Second},
		},
		MemIterations: []metrics.Iteration{{Duration: time.Hour}}, // excluded
	}
	if got := r.StorageTime(); got != 3*time.Second+100*time.Millisecond {
		t.Fatalf("StorageTime = %v", got)
	}
}

func TestVaultMarshalRoundTrip(t *testing.T) {
	v := NewVault(500)
	v.MarkSynced("alpha")
	v.MarkSynced("beta")
	v.RecordWrites(newBitmapWith(500, 10, 25))
	v.MarkSynced("beta") // beta resynced: empty set
	v.RecordWrites(newBitmapWith(500, 100, 5))

	data, err := v.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalVault(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.DivergentBlocks("alpha") != 30 || got.DivergentBlocks("beta") != 5 {
		t.Fatalf("divergence after round trip: alpha=%d beta=%d",
			got.DivergentBlocks("alpha"), got.DivergentBlocks("beta"))
	}
	if got.DivergentBlocks("gamma") != -1 {
		t.Fatal("phantom peer after round trip")
	}
	// deterministic wire form
	data2, _ := v.MarshalBinary()
	if string(data) != string(data2) {
		t.Fatal("marshal not deterministic")
	}
	// corruption rejected
	if _, err := UnmarshalVault(data[:8]); err == nil {
		t.Fatal("truncated vault accepted")
	}
	if _, err := UnmarshalVault(data[:len(data)-3]); err == nil {
		t.Fatal("clipped vault accepted")
	}
}

func TestVaultAddPeerAndRecordWriteRange(t *testing.T) {
	v := NewVault(100)
	v.AddPeer("X")
	v.AddPeer("X") // idempotent
	if got := v.DivergentBlocks("X"); got != 0 {
		t.Fatalf("new peer diverges by %d", got)
	}
	v.RecordWriteRange(10, 20)
	if got := v.DivergentBlocks("X"); got != 10 {
		t.Fatalf("divergence = %d", got)
	}
	if len(v.Peers()) != 1 {
		t.Fatalf("peers = %v", v.Peers())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative vault accepted")
		}
	}()
	NewVault(-1)
}
