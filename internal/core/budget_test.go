package core

import (
	"sync"
	"testing"
	"time"

	"bbmig/internal/clock"
	"bbmig/internal/transport"
)

func TestRateBudgetShare(t *testing.T) {
	b := NewRateBudget(100)
	if got := b.Share(); got != 100 {
		t.Fatalf("idle share %d, want the whole budget", got)
	}
	l1 := b.Join()
	l2 := b.Join()
	if got := b.Share(); got != 50 {
		t.Fatalf("share with 2 active = %d, want 50", got)
	}
	if got := b.Active(); got != 2 {
		t.Fatalf("active %d", got)
	}
	l1()
	l1() // idempotent
	if got := b.Share(); got != 100 {
		t.Fatalf("share after leave = %d, want 100", got)
	}
	b.SetTotal(200)
	if got := b.Share(); got != 200 {
		t.Fatalf("share after SetTotal = %d", got)
	}
	b.SetTotal(0) // disables the budget
	if got := b.Share(); got != clock.Unlimited {
		t.Fatalf("unlimited budget share = %d", got)
	}
	l2()
}

func TestRateBudgetConcurrent(t *testing.T) {
	b := NewRateBudget(1 << 30)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				leave := b.Join()
				b.Share()
				leave()
			}
		}()
	}
	wg.Wait()
	if got := b.Active(); got != 0 {
		t.Fatalf("active %d after balanced join/leave", got)
	}
}

func TestBudgetPolicyPrecopyRate(t *testing.T) {
	b := NewRateBudget(100)
	p := &BudgetPolicy{Budget: b}
	leave := b.Join()
	defer leave()
	if got := p.PrecopyRate(clock.Unlimited); got != 100 {
		t.Fatalf("budgeted rate %d, want 100", got)
	}
	// The inner policy's verdict wins when it is stricter than the share.
	if got := p.PrecopyRate(60); got != 60 {
		t.Fatalf("rate with tighter local cap = %d, want 60", got)
	}
	leave2 := b.Join()
	if got := p.PrecopyRate(clock.Unlimited); got != 50 {
		t.Fatalf("rate after second join = %d, want 50", got)
	}
	leave2()
	// Nil budget and nil inner degrade to DefaultPolicy pass-through.
	var pt BudgetPolicy
	if got := pt.PrecopyRate(42); got != 42 {
		t.Fatalf("pass-through rate %d", got)
	}
	if !pt.ContinuePreCopy(IterationStat{Dirty: 10, Threshold: 1, Iteration: 1, MaxIterations: 4}) {
		t.Fatal("delegated ContinuePreCopy verdict wrong")
	}
	if !pt.CompressPayload(transport.MsgBlockData, 4096) {
		t.Fatal("delegated CompressPayload verdict wrong")
	}
	pt.ObserveExtent(1, 1, time.Millisecond)
	pt.ObserveCompression(transport.MsgBlockData, 10, 10)
	if got := pt.ExtentBlocks(PhaseDiskPreCopy, 8); got != 8 {
		t.Fatalf("delegated ExtentBlocks %d", got)
	}
}

// TestBudgetSharedAcrossMigrations drives the engine's live-retune path: a
// migration paced by a BudgetPolicy must speed up when a second budget
// member leaves mid-run. Asserted structurally (the limiter's rate moves),
// via the policy's own view of the share.
func TestBudgetSharedAcrossMigrations(t *testing.T) {
	b := NewRateBudget(1000)
	p := &BudgetPolicy{Budget: b}
	leave1 := b.Join()
	leave2 := b.Join()
	if got := p.PrecopyRate(clock.Unlimited); got != 500 {
		t.Fatalf("share %d with two active", got)
	}
	leave2()
	if got := p.PrecopyRate(clock.Unlimited); got != 1000 {
		t.Fatalf("share %d after a peer left — the engine re-reads this per frame", got)
	}
	leave1()
}
