package core

import "sync"

// scatterPool applies received data frames concurrently on the destination.
// The receive loop stays a single reader (one goroutine owns conn.Recv) and
// hands each apply — a device write, a page write, or a post-copy
// gate.ReceiveBlock — to the pool; control frames call drain so every apply
// sent before a phase boundary lands before the phase advances. That
// preserves the single-stream apply semantics: within one iteration each
// block/page appears once, so concurrent applies never conflict, and
// cross-iteration rewrites are ordered by the drain at the iteration's
// control frame.
//
// With workers <= 1 the pool runs every apply inline, byte-for-byte the
// seed's sequential behavior (errors surface immediately rather than at the
// next drain).
type scatterPool struct {
	jobs chan func() error

	mu      sync.Mutex
	cond    *sync.Cond
	pending int
	err     error // first apply error, sticky
	wg      sync.WaitGroup
}

// newScatterPool starts workers appliers; workers <= 1 selects inline mode.
func newScatterPool(workers int) *scatterPool {
	p := &scatterPool{}
	p.cond = sync.NewCond(&p.mu)
	if workers <= 1 {
		return p
	}
	p.jobs = make(chan func() error, workers*2)
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range p.jobs {
				err := fn()
				p.mu.Lock()
				if err != nil && p.err == nil {
					p.err = err
				}
				p.pending--
				if p.pending == 0 {
					p.cond.Broadcast()
				}
				p.mu.Unlock()
			}
		}()
	}
	return p
}

// do applies fn, inline or on a worker. In pooled mode a past apply error is
// returned eagerly so the receive loop aborts instead of queueing onto a
// failed device.
func (p *scatterPool) do(fn func() error) error {
	if p.jobs == nil {
		return fn()
	}
	p.mu.Lock()
	if p.err != nil {
		err := p.err
		p.mu.Unlock()
		return err
	}
	p.pending++
	p.mu.Unlock()
	p.jobs <- fn
	return nil
}

// drain blocks until every queued apply has landed and returns the first
// apply error, if any.
func (p *scatterPool) drain() error {
	if p.jobs == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.pending > 0 {
		p.cond.Wait()
	}
	return p.err
}

// close drains and stops the workers. Safe to call once.
func (p *scatterPool) close() {
	if p.jobs == nil {
		return
	}
	close(p.jobs)
	p.wg.Wait()
}
