package core

import (
	"testing"

	"bbmig/internal/transport"
)

// TestPoisonedPoolMigrations runs full migrations with the buffer pool's
// use-after-release poison mode armed: every released payload is scribbled
// over before it can be recycled, so any path that touches a buffer after
// handing it back — applier, dedup observer, replay queue, compression
// stage — corrupts data deterministically and fails the convergence check.
// The matrix covers every composition the release discipline threads
// through: readahead prefetch, striped multi-stream with scatter workers,
// negotiated compression, and content dedup. Run with -race, the striped
// rows double as the concurrent send/recv pool-recycling race test.
func TestPoisonedPoolMigrations(t *testing.T) {
	transport.SetBufPoison(true)
	defer transport.SetBufPoison(false)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"per-block", Config{}},
		{"readahead", Config{MaxExtentBlocks: 16, Readahead: 4}},
		{"striped-workers", Config{Streams: 4, MaxExtentBlocks: 16, Workers: 4}},
		{"compressed", Config{MaxExtentBlocks: 16, CompressLevel: -1}},
		{"compressed-workers", Config{MaxExtentBlocks: 16, CompressLevel: -1, Workers: 4}},
		{"dedup", Config{Dedup: true, MaxExtentBlocks: 16}},
		{"dedup-striped", Config{Dedup: true, MaxExtentBlocks: 16, Streams: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := newEnv(t)
			e.useStriped(tc.cfg.Streams)
			_, res := e.runTPM(tc.cfg, nil)
			e.checkConverged(res.CPU)
		})
	}
}

// TestWireTraceReadaheadEquivalence proves the readahead path is a pure
// pipelining change: with identical configs otherwise, the prefetching
// sender emits a frame-for-frame identical dialogue (types, args, payload
// hashes, order) to the sequential extent path.
func TestWireTraceReadaheadEquivalence(t *testing.T) {
	run := func(readahead int) []string {
		e := newTraceEnv(t)
		src, dst := runTraced(t, e, Config{MaxExtentBlocks: 8, Readahead: readahead}, nil)
		return append(src, dst...)
	}
	seq := run(0)
	ra := run(4)
	if len(seq) != len(ra) {
		t.Fatalf("frame count diverges: sequential %d, readahead %d", len(seq), len(ra))
	}
	for i := range seq {
		if seq[i] != ra[i] {
			t.Fatalf("frame %d diverges:\n  sequential: %s\n  readahead:  %s", i, seq[i], ra[i])
		}
	}
}
