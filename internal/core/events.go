package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// Phase names of the migration pipeline. Every scheme — TPM, IM, and the
// comparison baselines — is a composition of these named phases; the engine
// announces each transition on the event stream, so an observer can follow
// any scheme with one vocabulary.
const (
	PhaseHandshake    = "handshake"
	PhaseDiskPreCopy  = "disk-precopy"
	PhaseMemPreCopy   = "mem-precopy"
	PhaseFreezeCopy   = "freeze-and-copy"
	PhasePostCopy     = "post-copy"
	PhaseOnDemand     = "on-demand-serve" // on-demand baseline: pull service after resume
	PhaseDeltaForward = "delta-forward"   // delta baseline: full-disk pass with write forwarding
	PhaseDeltaReplay  = "delta-replay"    // delta baseline: destination replays the queue
)

// EventKind identifies a progress event.
type EventKind uint8

// Progress event kinds emitted by both migration endpoints.
const (
	// EventPhaseStart marks entry into Event.Phase.
	EventPhaseStart EventKind = iota + 1
	// EventPhaseEnd marks completion of Event.Phase.
	EventPhaseEnd
	// EventIterationEnd closes one pre-copy iteration; Iteration, Units,
	// Bytes, and Dirty carry the iteration's outcome.
	EventIterationEnd
	// EventBytesTransferred reports cumulative wire bytes moved by this
	// endpoint (Bytes). Emitted at most once per progressByteQuantum of
	// traffic, so consumers see a steady heartbeat without per-frame cost.
	EventBytesTransferred
	// EventSuspended marks the VM freeze (source: the suspend itself;
	// destination: the SUSPEND frame's arrival).
	EventSuspended
	// EventResumed marks the VM running on the destination (source: the
	// RESUMED notification; destination: the resume itself).
	EventResumed
	// EventPullServed reports one post-copy pull request served
	// preferentially by the source; Units is the block number.
	EventPullServed
	// EventCompleted is the final event of a successful migration.
	EventCompleted
	// EventFailed is the final event of a failed migration; Err carries the
	// cause.
	EventFailed
	// EventReconnected marks a resumable migration surviving a connection
	// failure: the session was re-established and the interrupted phase
	// re-entered. Iteration carries the new session epoch.
	EventReconnected
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventPhaseStart:
		return "phase-start"
	case EventPhaseEnd:
		return "phase-end"
	case EventIterationEnd:
		return "iteration-end"
	case EventBytesTransferred:
		return "bytes-transferred"
	case EventSuspended:
		return "suspended"
	case EventResumed:
		return "resumed"
	case EventPullServed:
		return "pull-served"
	case EventCompleted:
		return "completed"
	case EventFailed:
		return "failed"
	case EventReconnected:
		return "reconnected"
	}
	return "event(?)"
}

// Event is one typed progress notification from a migration endpoint.
type Event struct {
	Kind   EventKind
	Scheme string        // TPM, IM, freeze-and-copy, on-demand, delta-forward
	Side   string        // "source" or "dest"
	Phase  string        // current pipeline phase (Phase* constants)
	At     time.Duration // engine clock timestamp

	Iteration int   // EventIterationEnd: 1-based iteration index
	Units     int   // iteration units (blocks/pages) or pulled block number
	Bytes     int64 // iteration wire bytes, or cumulative endpoint bytes
	Dirty     int   // EventIterationEnd: dirty units at iteration end

	Err string // EventFailed: the failure cause
}

// EventFunc consumes progress events. The engine may invoke it from several
// goroutines concurrently (worker pools report bytes as they send); handlers
// must be safe for concurrent use and must not block — a slow handler stalls
// the transfer path it is observing.
type EventFunc func(Event)

// progressByteQuantum throttles EventBytesTransferred: one event per this
// many wire bytes.
const progressByteQuantum = 1 << 20

// emitter fans engine progress out to an EventFunc. A nil function makes
// every emit a cheap no-op, so the pipeline code emits unconditionally.
type emitter struct {
	fn     EventFunc
	clk    interface{ Now() time.Duration }
	scheme string
	side   string

	phaseMu sync.Mutex
	phase   string

	bytes     atomic.Int64 // cumulative wire bytes
	lastEmit  atomic.Int64 // bytes value at the last BytesTransferred event
	completed atomic.Bool
}

func newEmitter(fn EventFunc, clk interface{ Now() time.Duration }, scheme, side string) *emitter {
	return &emitter{fn: fn, clk: clk, scheme: scheme, side: side}
}

func (e *emitter) currentPhase() string {
	e.phaseMu.Lock()
	defer e.phaseMu.Unlock()
	return e.phase
}

func (e *emitter) emit(ev Event) {
	if e.fn == nil {
		return
	}
	ev.Scheme, ev.Side = e.scheme, e.side
	if ev.Phase == "" {
		ev.Phase = e.currentPhase()
	}
	ev.At = e.clk.Now()
	e.fn(ev)
}

// phaseStart records and announces entry into a named phase.
func (e *emitter) phaseStart(name string) {
	e.phaseMu.Lock()
	e.phase = name
	e.phaseMu.Unlock()
	e.emit(Event{Kind: EventPhaseStart, Phase: name})
}

func (e *emitter) phaseEnd(name string) {
	e.emit(Event{Kind: EventPhaseEnd, Phase: name})
}

// noteBytes records the endpoint's cumulative wire-byte total (as measured
// by the transport meter, so compression savings are reflected) and emits a
// throttled progress heartbeat. Safe for concurrent use from send/receive
// workers; the total is monotonic.
func (e *emitter) noteBytes(total int64) {
	for {
		cur := e.bytes.Load()
		if total <= cur || e.bytes.CompareAndSwap(cur, total) {
			break
		}
	}
	if e.fn == nil {
		return
	}
	last := e.lastEmit.Load()
	if total-last < progressByteQuantum {
		return
	}
	if !e.lastEmit.CompareAndSwap(last, total) {
		return // another worker just emitted for this quantum
	}
	e.emit(Event{Kind: EventBytesTransferred, Bytes: total})
}

func (e *emitter) iterationEnd(st IterationStat) {
	e.emit(Event{
		Kind: EventIterationEnd, Phase: st.Phase,
		Iteration: st.Iteration, Units: st.Sent, Bytes: st.SentBytes, Dirty: st.Dirty,
	})
}

func (e *emitter) suspended() { e.emit(Event{Kind: EventSuspended}) }
func (e *emitter) resumed()   { e.emit(Event{Kind: EventResumed}) }

func (e *emitter) pullServed(block int) {
	e.emit(Event{Kind: EventPullServed, Units: block})
}

func (e *emitter) reconnected(epoch int) {
	e.emit(Event{Kind: EventReconnected, Iteration: epoch})
}

// finish emits the terminal event exactly once.
func (e *emitter) finish(err error) {
	if !e.completed.CompareAndSwap(false, true) {
		return
	}
	if err != nil {
		e.emit(Event{Kind: EventFailed, Err: err.Error(), Bytes: e.bytes.Load()})
		return
	}
	e.emit(Event{Kind: EventCompleted, Bytes: e.bytes.Load()})
}

// Progress is a point-in-time snapshot of one migration endpoint, maintained
// by a ProgressTracker consuming the event stream.
type Progress struct {
	Scheme string
	Side   string
	Phase  string

	Iteration        int   // most recently completed pre-copy iteration
	BytesTransferred int64 // cumulative wire bytes at the last heartbeat
	PullsServed      int   // post-copy pulls served (source side)
	Reconnects       int   // resumable-session reconnects survived
	Suspended        bool  // freeze seen
	Resumed          bool  // destination VM running

	Done bool   // terminal event seen
	Err  string // non-empty if the migration failed
}

// ProgressTracker folds an event stream into a queryable snapshot. Wire its
// Handle method into Config.OnEvent (directly or chained) and call Snapshot
// from any goroutine — this is how hostd answers live-status queries for
// in-flight migrations.
type ProgressTracker struct {
	mu sync.Mutex
	p  Progress
}

// NewProgressTracker returns an empty tracker.
func NewProgressTracker() *ProgressTracker { return &ProgressTracker{} }

// Handle implements EventFunc.
func (t *ProgressTracker) Handle(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.p.Scheme, t.p.Side = ev.Scheme, ev.Side
	if ev.Phase != "" {
		t.p.Phase = ev.Phase
	}
	switch ev.Kind {
	case EventIterationEnd:
		t.p.Iteration = ev.Iteration
	case EventBytesTransferred:
		t.p.BytesTransferred = ev.Bytes
	case EventSuspended:
		t.p.Suspended = true
	case EventResumed:
		t.p.Resumed = true
	case EventPullServed:
		t.p.PullsServed++
	case EventReconnected:
		t.p.Reconnects++
	case EventCompleted:
		t.p.Done = true
		t.p.BytesTransferred = ev.Bytes
	case EventFailed:
		t.p.Done, t.p.Err = true, ev.Err
		if ev.Bytes > t.p.BytesTransferred {
			t.p.BytesTransferred = ev.Bytes
		}
	}
}

// Snapshot returns the current progress.
func (t *ProgressTracker) Snapshot() Progress {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.p
}

// ChainEvents composes event handlers: each non-nil handler sees every event.
// Useful to attach a ProgressTracker without displacing a user's Config.OnEvent.
func ChainEvents(fns ...EventFunc) EventFunc {
	live := make([]EventFunc, 0, len(fns))
	for _, fn := range fns {
		if fn != nil {
			live = append(live, fn)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(ev Event) {
		for _, fn := range live {
			fn(ev)
		}
	}
}
