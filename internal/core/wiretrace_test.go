package core

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"bbmig/internal/bitmap"
	"bbmig/internal/blkback"
	"bbmig/internal/blockdev"
	"bbmig/internal/transport"
	"bbmig/internal/vm"
	"bbmig/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite wire-trace golden files")

// traceConn records every frame sent through it. Each endpoint's send
// sequence is deterministic for a quiescent migration (one send goroutine per
// side under the default config), so recording sends on both sides captures
// the full wire dialogue without cross-direction interleaving ambiguity.
type traceConn struct {
	inner  transport.Conn
	mu     sync.Mutex
	frames []string
}

func (t *traceConn) Send(m transport.Message) error {
	h := fnv.New64a()
	h.Write(m.Payload)
	t.mu.Lock()
	t.frames = append(t.frames, fmt.Sprintf("%s arg=%d len=%d fnv=%016x", m.Type, m.Arg, len(m.Payload), h.Sum64()))
	t.mu.Unlock()
	return t.inner.Send(m)
}

func (t *traceConn) Recv() (transport.Message, error) { return t.inner.Recv() }
func (t *traceConn) Close() error                     { return t.inner.Close() }

func (t *traceConn) trace() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.frames...)
}

// traceEnv is a fully deterministic two-host world: pattern-filled disk and
// memory, fixed CPU state, no workload, no randomness.
type traceEnv struct {
	srcDisk, dstDisk *blockdev.MemDisk
	src, dst         Host
	connSrc, connDst *traceConn
}

func newTraceEnv(t *testing.T) *traceEnv {
	t.Helper()
	e := &traceEnv{
		srcDisk: blockdev.NewMemDisk(testBlocks, blockdev.BlockSize),
		dstDisk: blockdev.NewMemDisk(testBlocks, blockdev.BlockSize),
	}
	buf := make([]byte, blockdev.BlockSize)
	for n := 0; n < testBlocks; n += 3 {
		workload.FillBlock(buf, n, 0)
		if err := e.srcDisk.WriteBlock(n, buf); err != nil {
			t.Fatal(err)
		}
	}
	srcVM := vm.New("guest", testDomain, testPages, 0)
	cpu := make([]byte, 512)
	for i := range cpu {
		cpu[i] = byte(i * 7)
	}
	srcVM.SetCPU(vm.CPUState{Registers: cpu})
	for p := 0; p < testPages; p += 2 {
		workload.FillBlock(buf, p+100000, 0)
		if err := srcVM.Memory().WritePage(p, buf[:vm.PageSize]); err != nil {
			t.Fatal(err)
		}
	}
	e.src = Host{VM: srcVM, Backend: blkback.NewBackend(e.srcDisk, testDomain)}
	e.dst = Host{VM: vm.NewDestination(srcVM), Backend: blkback.NewBackend(e.dstDisk, testDomain)}
	cs, cd := transport.NewPipe(64)
	e.connSrc = &traceConn{inner: cs}
	e.connDst = &traceConn{inner: cd}
	return e
}

// runTraced migrates with the default config and returns both directions'
// frame sequences.
func runTraced(t *testing.T, e *traceEnv, cfg Config, initial *bitmap.Bitmap) (srcTrace, dstTrace []string) {
	t.Helper()
	srcCh := make(chan error, 1)
	go func() {
		_, err := MigrateSource(cfg, e.src, e.connSrc, initial)
		srcCh <- err
	}()
	if _, err := MigrateDest(cfg, e.dst, e.connDst); err != nil {
		t.Fatalf("destination: %v", err)
	}
	if err := <-srcCh; err != nil {
		t.Fatalf("source: %v", err)
	}
	return e.connSrc.trace(), e.connDst.trace()
}

// renderTrace formats both directions as one golden document.
func renderTrace(srcTrace, dstTrace []string) string {
	var b strings.Builder
	b.WriteString("# wire trace: frames sent by each endpoint, in send order\n")
	b.WriteString("--- source->dest ---\n")
	for _, f := range srcTrace {
		b.WriteString(f)
		b.WriteByte('\n')
	}
	b.WriteString("--- dest->source ---\n")
	for _, f := range dstTrace {
		b.WriteString(f)
		b.WriteByte('\n')
	}
	return b.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update-golden to create): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("wire trace diverges from seed protocol at line %d:\n  got:  %q\n  want: %q\n(total %d vs %d lines)",
				i+1, g, w, len(gotLines), len(wantLines))
		}
	}
	t.Fatal("wire trace differs from golden (length mismatch)")
}

// TestWireTraceGoldenTPM proves the engine under the default config emits a
// frame-for-frame identical wire dialogue to the seed protocol for a primary
// (whole-disk) TPM migration: same frame types, same order, same args, same
// payload bytes (FNV-1a hashed). Any refactor of the engine must keep this
// green without regenerating the golden.
func TestWireTraceGoldenTPM(t *testing.T) {
	e := newTraceEnv(t)
	src, dst := runTraced(t, e, Config{}, nil)
	checkGolden(t, "wiretrace_tpm.golden", renderTrace(src, dst))
}

// TestWireTraceGoldenIM does the same for an incremental migration seeded
// from a fixed bitmap of divergent blocks (§V).
func TestWireTraceGoldenIM(t *testing.T) {
	e := newTraceEnv(t)
	initial := bitmap.New(testBlocks)
	for _, n := range []int{0, 1, 2, 3, 64, 65, 66, 500, 501, 777, 1024, 2047} {
		initial.Set(n)
	}
	e.src.Backend.SeedDirty(initial)
	src, dst := runTraced(t, e, Config{}, e.src.Backend.SwapDirty())
	checkGolden(t, "wiretrace_im.golden", renderTrace(src, dst))
}
