package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"bbmig/internal/bitmap"
	"bbmig/internal/transport"
)

// The migration journal is the source side's durable record of how far a
// migration has progressed: the negotiated session token, the reconnect
// epoch, the pipeline cursor (phase + iteration), and the bitmap of units
// still owed in the unit the interrupted phase moves (blocks or pages).
// It is checkpointed at phase and iteration boundaries — the paper's
// persistent block-bitmap, extended with enough cursor state to re-enter the
// pipeline instead of restarting it.
//
// Two consumers:
//
//   - in-process reconnect resume reads the in-memory copy to decide which
//     blocks are still owed after a link flap;
//   - cmd/bbmig -resume reads the on-disk copy after a source restart and
//     re-runs the migration incrementally from the journaled pending set.
//     The on-disk copy is crash-consistent per checkpoint (atomic rename +
//     CRC), but guest writes between the last checkpoint and the crash are
//     not captured — cold resume is exact for quiescent sources and
//     best-effort otherwise, which the README's failure model spells out.

// Journal phase codes (the wire/disk form of the Phase* names).
const (
	journalPhaseHandshake = iota
	journalPhaseDisk
	journalPhaseMem
	journalPhaseFreeze
	journalPhasePost
	journalPhaseDone
)

// journalPhaseCode maps a pipeline phase name to its disk code.
func journalPhaseCode(phase string) uint8 {
	switch phase {
	case PhaseHandshake:
		return journalPhaseHandshake
	case PhaseDiskPreCopy:
		return journalPhaseDisk
	case PhaseMemPreCopy:
		return journalPhaseMem
	case PhaseFreezeCopy:
		return journalPhaseFreeze
	case PhasePostCopy:
		return journalPhasePost
	}
	return journalPhaseDone
}

// journalPhaseName is the inverse of journalPhaseCode.
func journalPhaseName(code uint8) string {
	switch code {
	case journalPhaseHandshake:
		return PhaseHandshake
	case journalPhaseDisk:
		return PhaseDiskPreCopy
	case journalPhaseMem:
		return PhaseMemPreCopy
	case journalPhaseFreeze:
		return PhaseFreezeCopy
	case journalPhasePost:
		return PhasePostCopy
	}
	return "done"
}

// JournalState is one checkpoint of a resumable migration.
type JournalState struct {
	Token transport.SessionToken
	Epoch uint32
	Phase string // Phase* constant of the in-flight phase
	Iter  int    // 1-based iteration within an iterative phase
	// Pending marks the disk blocks still owed as of this checkpoint —
	// always blocks, the unit that survives a restart (memory cannot):
	// the interrupted iteration's set plus the live dirty snapshot during
	// disk pre-copy, the dirty snapshot during memory pre-copy, the
	// residual dirty blocks during freeze and post-copy. Nil once the
	// pipeline has completed.
	Pending *bitmap.Bitmap
}

// Journal keeps the latest checkpoint in memory and, when Path is set,
// mirrors every checkpoint to disk atomically.
type Journal struct {
	Path  string
	state JournalState
}

// Checkpoint records st as the latest state, persisting it when the journal
// has a path. A persistence failure is returned but the in-memory state is
// updated regardless — an unwritable journal degrades cold-restart resume,
// not in-process resume.
func (j *Journal) Checkpoint(st JournalState) error {
	if st.Pending != nil {
		st.Pending = st.Pending.Clone()
	}
	j.state = st
	if j.Path == "" {
		return nil
	}
	return writeJournalFile(j.Path, st)
}

// State returns the latest checkpoint.
func (j *Journal) State() JournalState { return j.state }

// journalMagic identifies a journal file; the version byte follows it.
var journalMagic = [4]byte{'B', 'B', 'J', 'R'}

const journalVersion = 1

// journal file layout:
//
//	magic(4) | version(1) | phase(1) | pad(2) |
//	epoch(4) | iter(4) | token(16) | bitmapLen(4) | bitmap | crc32(4)
//
// The trailing CRC covers everything before it, so a torn write (partial
// flush, crash mid-rename on a non-atomic filesystem) is detected on load
// rather than silently resuming from garbage.
const journalHeaderLen = 4 + 1 + 1 + 2 + 4 + 4 + 16 + 4

func marshalJournal(st JournalState) ([]byte, error) {
	var bm []byte
	if st.Pending != nil {
		var err error
		bm, err = st.Pending.MarshalBinary()
		if err != nil {
			return nil, err
		}
	}
	out := make([]byte, journalHeaderLen, journalHeaderLen+len(bm)+4)
	copy(out, journalMagic[:])
	out[4] = journalVersion
	out[5] = journalPhaseCode(st.Phase)
	binary.LittleEndian.PutUint32(out[8:], st.Epoch)
	binary.LittleEndian.PutUint32(out[12:], uint32(st.Iter))
	copy(out[16:32], st.Token[:])
	binary.LittleEndian.PutUint32(out[32:], uint32(len(bm)))
	out = append(out, bm...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(out))
	return append(out, crc[:]...), nil
}

func unmarshalJournal(data []byte) (JournalState, error) {
	var st JournalState
	if len(data) < journalHeaderLen+4 {
		return st, fmt.Errorf("core: journal truncated: %d bytes", len(data))
	}
	if [4]byte(data[:4]) != journalMagic {
		return st, fmt.Errorf("core: not a migration journal")
	}
	if data[4] != journalVersion {
		return st, fmt.Errorf("core: journal version %d, want %d", data[4], journalVersion)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return st, fmt.Errorf("core: journal checksum mismatch (torn write?)")
	}
	st.Phase = journalPhaseName(data[5])
	st.Epoch = binary.LittleEndian.Uint32(data[8:])
	st.Iter = int(binary.LittleEndian.Uint32(data[12:]))
	copy(st.Token[:], data[16:32])
	bmLen := int(binary.LittleEndian.Uint32(data[32:]))
	if len(body) != journalHeaderLen+bmLen {
		return st, fmt.Errorf("core: journal bitmap length %d inconsistent with %d-byte file", bmLen, len(data))
	}
	if bmLen > 0 {
		st.Pending = &bitmap.Bitmap{}
		if err := st.Pending.UnmarshalBinary(body[journalHeaderLen:]); err != nil {
			return st, fmt.Errorf("core: journal bitmap: %w", err)
		}
	}
	return st, nil
}

// writeJournalFile persists one checkpoint with the shared atomic-save
// crash discipline.
func writeJournalFile(path string, st JournalState) error {
	data, err := marshalJournal(st)
	if err != nil {
		return err
	}
	if err := bitmap.AtomicWriteFile(path, data); err != nil {
		return fmt.Errorf("core: journal save: %w", err)
	}
	return nil
}

// LoadJournal reads a journal file written by Checkpoint.
func LoadJournal(path string) (JournalState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return JournalState{}, fmt.Errorf("core: journal load: %w", err)
	}
	return unmarshalJournal(data)
}
