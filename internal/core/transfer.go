package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bbmig/internal/bitmap"
	"bbmig/internal/blockdev"
	"bbmig/internal/clock"
	"bbmig/internal/metrics"
	"bbmig/internal/transport"
)

// This file is the transfer substrate every migration scheme composes:
// connection decoration (metering, negotiated compression, policy pacing),
// the handshake, the block/extent/page send paths, the iterative pre-copy
// scaffolding, and the destination-side frame appliers. TPM, IM, and the
// three comparison baselines are phase pipelines over these primitives —
// they differ in which phases they chain, not in how bytes move.

// phase is one named step of a migration pipeline.
type phase struct {
	name string
	run  func() error
}

// transfer is the per-endpoint substrate state.
type transfer struct {
	cfg     Config
	host    Host
	srcDev  blockdev.Device // source read path: live device, or a frozen snapshot of it
	clk     clock.Clock
	conn    transport.Conn   // engine-facing top of the decorator stack
	meter   *transport.Meter // wire-byte accounting, closest to the raw conn
	limiter *clock.RateLimiter
	pol     Policy
	ev      *emitter
	start   time.Duration

	// resumable-session state. sess is always non-nil; swap is the stack's
	// rebind point (nil when the session cannot resume, keeping the default
	// stack identical to the seed's). destState, ckpt, and resumeIter are
	// wired by the endpoint runs that support resumption.
	sess       *session
	swap       *transport.Swappable
	destState  func() destProgress
	ckpt       func(phase string, iter int, pending *bitmap.Bitmap)
	resumeIter map[string]*iterResume

	// content-dedup state (Config.Dedup). awaitWant is the source's
	// advert-reply hook, wired by sourceRun.startup (the endpoint read loop
	// routes MsgHashWant frames into it); nil selects the literal send
	// paths. dedupBlocks counts blocks this source moved by reference.
	awaitWant   func(arg uint64) ([]byte, error)
	dedupBlocks int

	// delta state (Config.Delta). awaitDeltaSig is the source's
	// signature-reply hook, wired by sourceRun.startup (the endpoint read
	// loop routes MsgDeltaSig replies into it); nil selects the literal
	// send paths. takeDeltaNaks drains the refusals collected since the
	// last fence. deltaBlocks counts blocks this source moved as patches;
	// deltaPending counts patches sent since the last fence.
	awaitDeltaSig func(arg uint64) ([]byte, error)
	takeDeltaNaks func() []uint64
	deltaBlocks   int
	deltaPending  int
}

// newTransfer decorates conn and assembles the substrate. cfg must already
// have defaults applied. The decorator order is meter innermost (it counts
// actual wire bytes) with compression above it when negotiated; a resumable
// session slips a rebindable shim underneath so a reconnect swaps the dead
// link without disturbing metering or negotiated compression.
func newTransfer(cfg Config, host Host, conn transport.Conn, scheme, side string) (*transfer, error) {
	t := &transfer{cfg: cfg, host: host, srcDev: host.Backend.Device(), clk: cfg.Clock, pol: cfg.Policy, sess: &session{}}
	if (side == "source" && cfg.MaxRetries > 0) || (side != "source" && cfg.WaitReconnect != nil) {
		t.swap = transport.NewSwappable(conn)
		conn = t.swap
	}
	t.meter = transport.NewMeter(conn)
	t.conn = t.meter
	if cfg.CompressLevel != 0 {
		cc, err := transport.NewCompressedPolicy(t.meter, cfg.CompressLevel, t.pol.CompressPayload, t.pol.ObserveCompression)
		if err != nil {
			return nil, err
		}
		t.conn = cc
	}
	if rate := t.pol.PrecopyRate(cfg.BandwidthLimit); rate != clock.Unlimited && rate > 0 {
		t.limiter = clock.NewRateLimiter(t.clk, rate, rate/10)
	}
	t.ev = newEmitter(cfg.OnEvent, t.clk, scheme, side)
	t.start = t.clk.Now()
	return t, nil
}

// runPhases executes the pipeline, announcing each phase on the event
// stream. The terminal Completed/Failed event is the caller's to emit
// (via ev.finish) once scheme-specific bookkeeping is done.
func (t *transfer) runPhases(phases ...phase) error {
	for _, ph := range phases {
		t.ev.phaseStart(ph.name)
		if err := ph.run(); err != nil {
			return err
		}
		t.ev.phaseEnd(ph.name)
	}
	return nil
}

// send transmits m, applying the pre-copy pacing cap when limited is true
// and feeding the progress heartbeat. The policy's pacing verdict is
// re-consulted per paced frame, so a policy whose rate moves over time — a
// BudgetPolicy re-sharing a cluster-wide budget as migrations come and go —
// takes effect mid-iteration. Rate changes are honoured only when the
// migration started with a finite rate (otherwise no limiter exists to
// retune, keeping the unlimited path identical to the seed's).
func (t *transfer) send(m transport.Message, limited bool) error {
	if limited && t.limiter != nil {
		if rate := t.pol.PrecopyRate(t.cfg.BandwidthLimit); rate > 0 && rate != t.limiter.Rate() {
			t.limiter.SetRate(rate)
		}
		t.limiter.Wait(m.FrameSize())
	}
	if err := t.conn.Send(m); err != nil {
		return err
	}
	t.noteWire()
	return nil
}

// noteWire feeds the progress heartbeat with the meter's view of the wire,
// so compressed streams report actual wire bytes, consistent with
// Report.MigratedBytes.
func (t *transfer) noteWire() {
	t.ev.noteBytes(t.meter.BytesSent() + t.meter.BytesReceived())
}

// handshake runs the HELLO/HELLO_ACK exchange from the source side. A
// resumable source (MaxRetries > 0) appends a freshly minted session token
// to the geometry payload; the destination's ack reports whether it will
// honour resumes, and sessions the peer declines run fail-fast.
func (t *transfer) handshake() error {
	dev := t.host.Backend.Device()
	mem := t.host.VM.Memory()
	geom := transport.Geometry{
		BlockSize: dev.BlockSize(), NumBlocks: dev.NumBlocks(),
		PageSize: mem.PageSize(), NumPages: mem.NumPages(),
	}
	gb, err := geom.MarshalBinary()
	if err != nil {
		return err
	}
	if t.cfg.MaxRetries > 0 {
		token, err := transport.NewSessionToken()
		if err != nil {
			return err
		}
		t.sess.token = token
		t.sess.offered = true
		gb = append(gb, token[:]...)
	}
	if err := t.send(transport.Message{Type: transport.MsgHello, Arg: transport.ProtocolVersion, Payload: gb}, false); err != nil {
		return err
	}
	ack, err := t.conn.Recv()
	if err != nil {
		return fmt.Errorf("core: waiting for hello ack: %w", err)
	}
	if ack.Type != transport.MsgHelloAck {
		return fmt.Errorf("core: unexpected handshake reply %v", ack.Type)
	}
	t.sess.setResumable(t.sess.offered && ack.Arg&transport.HelloAckResume != 0)
	return nil
}

// acceptHandshake runs the destination side of the handshake, validating
// version and geometry against the prepared VBD and VM shell.
func (t *transfer) acceptHandshake() error {
	dev := t.host.Backend.Device()
	mem := t.host.VM.Memory()
	hello, err := t.conn.Recv()
	if err != nil {
		return fmt.Errorf("core: waiting for hello: %w", err)
	}
	if hello.Type != transport.MsgHello {
		return fmt.Errorf("core: expected HELLO, got %v", hello.Type)
	}
	if hello.Arg != transport.ProtocolVersion {
		return fmt.Errorf("core: protocol version %d, want %d", hello.Arg, transport.ProtocolVersion)
	}
	// A resumable source appends a 16-byte session token to the geometry.
	// Accept it (and advertise resume support in the ack) only when this
	// destination was given a reconnect path; otherwise the session
	// degrades to fail-fast and the token is ignored.
	var ackArg uint64
	payload := hello.Payload
	if len(payload) == 32+16 {
		token, err := transport.TokenFromBytes(payload[32:])
		if err != nil {
			return err
		}
		payload = payload[:32]
		if t.cfg.WaitReconnect != nil {
			t.sess.token = token
			t.sess.offered = true
			t.sess.setResumable(true)
			ackArg = transport.HelloAckResume
		}
	}
	var geom transport.Geometry
	if err := geom.UnmarshalBinary(payload); err != nil {
		return err
	}
	if geom.BlockSize != dev.BlockSize() || geom.NumBlocks != dev.NumBlocks() {
		return fmt.Errorf("core: source disk %dx%d, prepared VBD %dx%d",
			geom.NumBlocks, geom.BlockSize, dev.NumBlocks(), dev.BlockSize())
	}
	if geom.PageSize != mem.PageSize() || geom.NumPages != mem.NumPages() {
		return fmt.Errorf("core: source memory %dx%d, shell %dx%d",
			geom.NumPages, geom.PageSize, mem.NumPages(), mem.PageSize())
	}
	hello.Release() // token and geometry both copied out above
	return t.send(transport.Message{Type: transport.MsgHelloAck, Arg: ackArg}, false)
}

// effectiveMaxExtent bounds an extent limit by what one frame may carry
// (MaxPayload, minus one byte for the marker a Compressed decorator prepends
// to incompressible payloads) and what the device holds, so an oversized
// limit can neither demand absurd staging buffers nor produce unencodable
// frames.
func effectiveMaxExtent(maxExt int, dev blockdev.Device) int {
	if limit := (transport.MaxPayload - 1) / dev.BlockSize(); maxExt > limit {
		maxExt = limit
	}
	if n := dev.NumBlocks(); maxExt > n {
		maxExt = n
	}
	if maxExt < 1 {
		maxExt = 1
	}
	return maxExt
}

// extentBlocks asks the policy for the live coalescing limit and clamps it.
func (t *transfer) extentBlocks(phase string) int {
	return effectiveMaxExtent(t.pol.ExtentBlocks(phase, t.cfg.MaxExtentBlocks), t.host.Backend.Device())
}

// extentMessage frames one extent's data. Single-block extents keep the
// seed's MsgBlockData form so extent coalescing alone never changes how a
// lone block looks on the wire.
func extentMessage(e bitmap.Extent, data []byte) transport.Message {
	if e.Count == 1 {
		return transport.Message{Type: transport.MsgBlockData, Arg: uint64(e.Start), Payload: data}
	}
	return transport.Message{Type: transport.MsgExtent, Arg: transport.ExtentArg(e.Start, e.Count), Payload: data}
}

// sendBlocks streams every block marked in bm and returns the count and
// payload wire bytes. The path is chosen by the live policy verdict and
// Workers: the sequential per-block path below is wire-identical to the seed
// protocol; otherwise contiguous runs are coalesced into extents, either
// inline or through a read→send worker pool.
func (t *transfer) sendBlocks(bm *bitmap.Bitmap, phaseName string, limited bool) (int, int64, error) {
	if t.cfg.Dedup && t.awaitWant != nil {
		// Negotiated content dedup replaces the literal paths for disk
		// sends; the advert/want alternation is inherently sequential, so
		// Workers does not apply here. When Delta is also negotiated the
		// wanted (would-be literal) sub-runs route through the delta
		// protocol inside sendDedupExtent.
		return t.sendExtentsDedup(bm, phaseName, limited)
	}
	if t.cfg.Delta && t.awaitDeltaSig != nil {
		// Negotiated delta encoding without dedup: every extent takes the
		// signature round trip, equally sequential.
		return t.sendExtentsDelta(bm, phaseName, limited)
	}
	_, fixedPolicy := t.pol.(DefaultPolicy)
	if t.cfg.Workers <= 1 && t.cfg.MaxExtentBlocks <= 1 && t.cfg.Readahead <= 0 && fixedPolicy {
		dev := t.srcDev
		buf := transport.GetBuf(dev.BlockSize())
		defer transport.PutBuf(buf)
		sent := 0
		var bytes int64
		var fail error
		bm.ForEachSet(func(n int) bool {
			if err := dev.ReadBlock(n, buf); err != nil {
				fail = err
				return false
			}
			m := transport.Message{Type: transport.MsgBlockData, Arg: uint64(n), Payload: buf}
			if err := t.send(m, limited); err != nil {
				fail = err
				return false
			}
			sent++
			bytes += int64(m.FrameSize())
			return true
		})
		return sent, bytes, fail
	}
	if t.cfg.Workers > 1 {
		return t.sendExtentsPooled(bm, phaseName, limited)
	}
	if t.cfg.Readahead > 0 {
		return t.sendExtentsReadahead(bm, phaseName, limited)
	}
	return t.sendExtentsSeq(bm, phaseName, limited)
}

// sendExtentsSeq walks bm's runs with a cursor, re-consulting the policy for
// the coalescing limit before each extent so an adaptive policy can grow it
// mid-iteration.
func (t *transfer) sendExtentsSeq(bm *bitmap.Bitmap, phaseName string, limited bool) (int, int64, error) {
	dev := t.srcDev
	bs := dev.BlockSize()
	var buf []byte
	defer func() { transport.PutBuf(buf) }()
	sent := 0
	var bytes int64
	for pos := 0; ; {
		maxExt := t.extentBlocks(phaseName)
		ext := bm.NextExtent(pos, maxExt)
		if ext.Count == 0 {
			return sent, bytes, nil
		}
		if need := ext.Count * bs; cap(buf) < need {
			transport.PutBuf(buf)
			buf = transport.GetBuf(maxExt * bs)
		}
		data := buf[:ext.Count*bs]
		extStart := t.clk.Now()
		for k := 0; k < ext.Count; k++ {
			if err := dev.ReadBlock(ext.Start+k, data[k*bs:(k+1)*bs]); err != nil {
				return sent, bytes, err
			}
		}
		m := extentMessage(ext, data)
		if err := t.send(m, limited); err != nil {
			return sent, bytes, err
		}
		t.pol.ObserveExtent(ext.Count, int64(m.FrameSize()), t.clk.Now()-extStart)
		sent += ext.Count
		bytes += int64(m.FrameSize())
		pos = ext.End()
	}
}

// firstErr latches the first error a worker pool hits.
type firstErr struct {
	failed atomic.Bool
	mu     sync.Mutex
	err    error
}

func (f *firstErr) set(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
		f.failed.Store(true)
	}
	f.mu.Unlock()
}

func (f *firstErr) get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// sendExtentsPooled fans bm's coalesced extents across cfg.Workers
// goroutines, each reading an extent from the device and sending it, so
// device reads, optional compression, and transport writes of different
// extents overlap. Within one iteration every block number appears at most
// once, so the destination may apply the extents in any order; the engine's
// control frames bound the iteration on both sides.
func (t *transfer) sendExtentsPooled(bm *bitmap.Bitmap, phaseName string, limited bool) (int, int64, error) {
	dev := t.srcDev
	bs := dev.BlockSize()
	workers := t.cfg.Workers
	jobs := make(chan bitmap.Extent, workers*2)
	var sent, bytes atomic.Int64
	var fail firstErr
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []byte
			defer func() { transport.PutBuf(buf) }()
			for ext := range jobs {
				if fail.failed.Load() {
					continue // drain the queue so the producer never blocks
				}
				if need := ext.Count * bs; cap(buf) < need {
					transport.PutBuf(buf)
					buf = transport.GetBuf(need)
				}
				data := buf[:ext.Count*bs]
				readOK := true
				extStart := t.clk.Now()
				for k := 0; k < ext.Count; k++ {
					if err := dev.ReadBlock(ext.Start+k, data[k*bs:(k+1)*bs]); err != nil {
						fail.set(err)
						readOK = false
						break
					}
				}
				if !readOK {
					continue
				}
				m := extentMessage(ext, data)
				if err := t.send(m, limited); err != nil {
					fail.set(err)
					continue
				}
				t.pol.ObserveExtent(ext.Count, int64(m.FrameSize()), t.clk.Now()-extStart)
				sent.Add(int64(ext.Count))
				bytes.Add(int64(m.FrameSize()))
			}
		}()
	}
	for pos := 0; ; {
		ext := bm.NextExtent(pos, t.extentBlocks(phaseName))
		if ext.Count == 0 || fail.failed.Load() {
			break
		}
		jobs <- ext
		pos = ext.End()
	}
	close(jobs)
	wg.Wait()
	return int(sent.Load()), bytes.Load(), fail.get()
}

// sendExtentsReadahead walks bm's runs like sendExtentsSeq but decouples
// device reads from transport writes: a prefetch goroutine assembles up to
// cfg.Readahead extents into pooled buffers ahead of the sender, so the
// next extent's blocks are read while the current one is on the wire. The
// sender drains the queue in cursor order, which keeps the frame sequence
// — and therefore the golden wire traces — identical to the sequential
// path.
func (t *transfer) sendExtentsReadahead(bm *bitmap.Bitmap, phaseName string, limited bool) (int, int64, error) {
	dev := t.srcDev
	bs := dev.BlockSize()
	type job struct {
		ext  bitmap.Extent
		data []byte // pooled; ownership passes to the sender
		err  error
	}
	jobs := make(chan job, t.cfg.Readahead)
	stop := make(chan struct{})
	go func() {
		defer close(jobs)
		for pos := 0; ; {
			ext := bm.NextExtent(pos, t.extentBlocks(phaseName))
			if ext.Count == 0 {
				return
			}
			pos = ext.End()
			data := transport.GetBuf(ext.Count * bs)
			var jerr error
			for k := 0; k < ext.Count; k++ {
				if err := dev.ReadBlock(ext.Start+k, data[k*bs:(k+1)*bs]); err != nil {
					jerr = err
					break
				}
			}
			select {
			case jobs <- job{ext: ext, data: data, err: jerr}:
			case <-stop:
				transport.PutBuf(data)
				return
			}
			if jerr != nil {
				return
			}
		}
	}()
	defer func() {
		close(stop)
		for j := range jobs { // reclaim extents prefetched past a failure
			transport.PutBuf(j.data)
		}
	}()
	sent := 0
	var bytes int64
	for j := range jobs {
		if j.err != nil {
			transport.PutBuf(j.data)
			return sent, bytes, j.err
		}
		sendStart := t.clk.Now()
		m := extentMessage(j.ext, j.data)
		err := t.send(m, limited)
		transport.PutBuf(j.data)
		if err != nil {
			return sent, bytes, err
		}
		t.pol.ObserveExtent(j.ext.Count, int64(m.FrameSize()), t.clk.Now()-sendStart)
		sent += j.ext.Count
		bytes += int64(m.FrameSize())
	}
	return sent, bytes, nil
}

// sendPages streams every page marked in bm. Pages are never coalesced —
// each MsgMemPage is its own frame, the Xen-style format.
func (t *transfer) sendPages(bm *bitmap.Bitmap, limited bool) (int, int64, error) {
	mem := t.host.VM.Memory()
	buf := transport.GetBuf(mem.PageSize())
	defer transport.PutBuf(buf)
	sent := 0
	var bytes int64
	var fail error
	bm.ForEachSet(func(n int) bool {
		if err := mem.ReadPage(n, buf); err != nil {
			fail = err
			return false
		}
		m := transport.Message{Type: transport.MsgMemPage, Arg: uint64(n), Payload: buf}
		if err := t.send(m, limited); err != nil {
			fail = err
			return false
		}
		sent++
		bytes += int64(m.FrameSize())
		return true
	})
	return sent, bytes, fail
}

// snapshotForReads freezes the source read path on a point-in-time view of
// the backend device for the duration of one send pass. When the backend
// was wired with a snapshot-capable blockdev.Volume (hostd's bcache path),
// every block of the pass is read from the moment the pass began — guest
// writes racing the pass land in the dirty tracker and travel next
// iteration instead of tearing this one. For a plain device this is a
// no-op, which keeps the default engine path byte-identical to the seed.
// The returned restore function must be called when the pass ends.
func (t *transfer) snapshotForReads() func() {
	vol, ok := t.host.Backend.Volume()
	if !ok {
		return func() {}
	}
	snap := vol.Snapshot()
	t.srcDev = snap
	return func() {
		t.srcDev = t.host.Backend.Device()
		snap.Release()
	}
}

// preCopySpec abstracts the disk/memory differences of one iterative
// pre-copy loop: which control frames bound an iteration, how to move one
// bitmap's worth of data, and how dirtying is observed.
type preCopySpec struct {
	phase              string
	startMsg, endMsg   transport.MsgType
	threshold, maxIter int
	send               func(bm *bitmap.Bitmap) (int, int64, error)
	dirtyCount         func() int
	swapDirty          func() *bitmap.Bitmap
	record             func(metrics.Iteration)
}

// preCopyLoop is the shared iteration scaffolding: iteration 1 sends the
// initial set, iteration k sends what was dirtied during k-1, and the policy
// decides when to stop. The remaining dirty set stays in the tracker for the
// next phase.
//
// A resumable source re-enters here mid-phase: a pending resumeIter entry
// replaces the start iteration and its bitmap (the blocks still owed after a
// reconnect), and every iteration start is checkpointed through ckpt so the
// next failure rewinds at most one iteration.
func (t *transfer) preCopyLoop(sp preCopySpec, initial *bitmap.Bitmap) error {
	toSend := initial
	startIter := 1
	if res := t.takeResume(sp.phase); res != nil {
		startIter, toSend = res.iter, res.pending
	}
	prev := toSend.Count()
	for iter := startIter; ; iter++ {
		if t.ckpt != nil {
			t.ckpt(sp.phase, iter, toSend)
		}
		iterStart := t.clk.Now()
		if err := t.send(transport.Message{Type: sp.startMsg, Arg: uint64(iter)}, true); err != nil {
			return err
		}
		sent, bytes, err := sp.send(toSend)
		if err != nil {
			return err
		}
		if err := t.send(transport.Message{Type: sp.endMsg, Arg: uint64(sent)}, true); err != nil {
			return err
		}
		iterDur := t.clk.Now() - iterStart
		dirtyNow := sp.dirtyCount()
		sp.record(metrics.Iteration{
			Index: iter, Units: sent, Bytes: bytes, Duration: iterDur, DirtyEnd: dirtyNow,
		})
		st := IterationStat{
			Phase: sp.phase, Iteration: iter, Sent: sent, SentBytes: bytes,
			Duration: iterDur, Dirty: dirtyNow, PrevDirty: prev,
			Threshold: sp.threshold, MaxIterations: sp.maxIter,
			MaxExtentBlocks: t.cfg.MaxExtentBlocks,
		}
		t.ev.iterationEnd(st)
		if !t.pol.ContinuePreCopy(st) {
			return nil
		}
		prev = dirtyNow
		toSend = sp.swapDirty()
	}
}

// diskPreCopy runs the iterative disk copy (§IV-A-1). Iteration 1 sends the
// initial set (whole disk, or an incremental bitmap); iteration k sends the
// blocks dirtied during k-1. The remaining dirty blocks stay in the backend
// bitmap and ride to the destination in freeze-and-copy.
func (t *transfer) diskPreCopy(rep *metrics.Report, initial *bitmap.Bitmap) error {
	dev := t.host.Backend.Device()
	t.host.Backend.StartTracking()
	toSend := initial
	if toSend == nil {
		if alloc, ok := dev.(blockdev.Allocator); ok && t.cfg.SkipUnused {
			toSend = alloc.AllocatedBitmap()
		} else {
			toSend = bitmap.NewAllSet(dev.NumBlocks())
		}
	}
	return t.preCopyLoop(preCopySpec{
		phase:    PhaseDiskPreCopy,
		startMsg: transport.MsgIterStart, endMsg: transport.MsgIterEnd,
		threshold: t.cfg.DiskDirtyThreshold, maxIter: t.cfg.MaxDiskIters,
		send: func(bm *bitmap.Bitmap) (int, int64, error) {
			restore := t.snapshotForReads()
			defer restore()
			return t.sendBlocks(bm, PhaseDiskPreCopy, true)
		},
		dirtyCount: t.host.Backend.DirtyCount,
		swapDirty:  t.host.Backend.SwapDirty,
		record: func(it metrics.Iteration) {
			rep.DiskIterations = append(rep.DiskIterations, it)
		},
	}, toSend)
}

// memPreCopy runs the Xen-style iterative memory pre-copy: iteration 1 sends
// every page, later iterations send pages dirtied during the previous one.
func (t *transfer) memPreCopy(rep *metrics.Report) error {
	mem := t.host.VM.Memory()
	mem.StartTracking()
	return t.preCopyLoop(preCopySpec{
		phase:    PhaseMemPreCopy,
		startMsg: transport.MsgMemIterStart, endMsg: transport.MsgMemIterEnd,
		threshold: t.cfg.MemDirtyThreshold, maxIter: t.cfg.MaxMemIters,
		send: func(bm *bitmap.Bitmap) (int, int64, error) {
			return t.sendPages(bm, true)
		},
		dirtyCount: mem.DirtyCount,
		swapDirty:  mem.SwapDirty,
		record: func(it metrics.Iteration) {
			rep.MemIterations = append(rep.MemIterations, it)
		},
	}, bitmap.NewAllSet(mem.NumPages()))
}

// --- Destination-side frame application ---

// checkExtent validates a MsgExtent frame against the prepared VBD.
func (t *transfer) checkExtent(m transport.Message) (bitmap.Extent, error) {
	start, count := transport.ExtentSplit(m.Arg)
	dev := t.host.Backend.Device()
	if count < 1 || start < 0 || start+count > dev.NumBlocks() {
		return bitmap.Extent{}, fmt.Errorf("core: extent [%d,+%d) outside %d-block VBD", start, count, dev.NumBlocks())
	}
	if want := count * dev.BlockSize(); len(m.Payload) != want {
		return bitmap.Extent{}, fmt.Errorf("core: extent [%d,+%d) payload %d bytes, want %d", start, count, len(m.Payload), want)
	}
	return bitmap.Extent{Start: start, Count: count}, nil
}

// applyBlock writes one MsgBlockData frame to the VBD.
func (t *transfer) applyBlock(m transport.Message) error {
	if err := t.host.Backend.Device().WriteBlock(int(m.Arg), m.Payload); err != nil {
		return fmt.Errorf("core: apply block %d: %w", m.Arg, err)
	}
	return nil
}

// applyExtent scatters one MsgExtent frame's blocks to the VBD.
func (t *transfer) applyExtent(m transport.Message) error {
	ext, err := t.checkExtent(m)
	if err != nil {
		return err
	}
	dev := t.host.Backend.Device()
	bs := dev.BlockSize()
	for k := 0; k < ext.Count; k++ {
		if err := dev.WriteBlock(ext.Start+k, m.Payload[k*bs:(k+1)*bs]); err != nil {
			return fmt.Errorf("core: apply block %d: %w", ext.Start+k, err)
		}
	}
	return nil
}

// applyPage writes one MsgMemPage frame into the VM shell's memory.
func (t *transfer) applyPage(m transport.Message) error {
	if err := t.host.VM.Memory().WritePage(int(m.Arg), m.Payload); err != nil {
		return fmt.Errorf("core: apply page %d: %w", m.Arg, err)
	}
	return nil
}

// takeResume consumes the re-entry state for one phase, if any.
func (t *transfer) takeResume(phase string) *iterResume {
	res := t.resumeIter[phase]
	if res != nil {
		delete(t.resumeIter, phase)
	}
	return res
}

// frameHandlers maps message types to appliers for recvLoop. A nil handler
// marks the type as an accepted phase marker with nothing to apply.
type frameHandlers map[transport.MsgType]func(transport.Message) error

// recvLoop receives frames, dispatching each to its handler, until the
// `until` type arrives. MsgError frames abort with the carried cause;
// unlisted types are protocol errors. The receive side of the byte heartbeat
// is fed here. Receives ride destRecv, so a resumable destination survives
// connection loss mid-loop: duplicate frames the reconnecting source re-sends
// are applied idempotently by the handlers.
//
// Buffer ownership: non-data frames are consumed synchronously by their
// handlers (every handler parses or copies what it keeps), so their pooled
// payloads are released here. Data frames pass through to appliers that may
// defer the write into the scatter pool; those release their own payloads
// once applied (or leave them to the GC on cold paths — see bufpool.go).
func (t *transfer) recvLoop(until transport.MsgType, handlers frameHandlers) error {
	for {
		m, err := t.destRecv()
		if err != nil {
			return fmt.Errorf("core: receive: %w", err)
		}
		t.noteWire()
		if m.Type == until {
			m.Release()
			return nil
		}
		if m.Type == transport.MsgError {
			return fmt.Errorf("core: source error: %s", m.Payload)
		}
		fn, ok := handlers[m.Type]
		if !ok {
			return fmt.Errorf("core: unexpected message %v", m.Type)
		}
		if fn == nil {
			m.Release()
			continue
		}
		if err := fn(m); err != nil {
			return err
		}
		if !transport.IsDataFrame(m.Type) && m.Type != transport.MsgDelta {
			// MsgDelta is the one non-data frame whose handler retains the
			// payload (the forward-and-replay queue); its replay loop
			// releases the buffers once applied.
			m.Release()
		}
	}
}
