package core

import (
	"sync"

	"bbmig/internal/blkback"
	"bbmig/internal/blockdev"
)

// Router is the guest's I/O path across a migration: it forwards requests to
// the current submitter (source backend before the freeze, destination
// post-copy gate after the resume) and blocks the guest during the freeze
// window — which is precisely the downtime the paper measures.
//
// Wire it up as:
//
//	r := core.NewRouter(srcBackend.Submit)
//	cfg.OnFreeze = r.Freeze
//	cfg.OnResume = func(g *blkback.PostCopyGate) { r.ResumeAt(g.Submit) }
//
// and drive the workload through r.Submit.
type Router struct {
	mu       sync.Mutex
	cond     *sync.Cond
	submit   func(blockdev.Request) error
	frozen   bool
	inflight sync.WaitGroup

	stallObserved bool // a request experienced the freeze window
}

// NewRouter returns a Router initially routing to submit.
func NewRouter(submit func(blockdev.Request) error) *Router {
	r := &Router{submit: submit}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Submit routes one request, blocking while the VM is frozen.
func (r *Router) Submit(req blockdev.Request) error {
	r.mu.Lock()
	for r.frozen {
		r.stallObserved = true
		r.cond.Wait()
	}
	fn := r.submit
	r.inflight.Add(1)
	r.mu.Unlock()
	defer r.inflight.Done()
	return fn(req)
}

// Freeze stops admitting requests and waits for in-flight ones to drain,
// quiescing the guest's I/O so the engine can capture a stable final state.
func (r *Router) Freeze() {
	r.mu.Lock()
	r.frozen = true
	r.mu.Unlock()
	r.inflight.Wait()
}

// ResumeAt switches the route to submit (typically the destination gate) and
// unfreezes the guest.
func (r *Router) ResumeAt(submit func(blockdev.Request) error) {
	r.mu.Lock()
	r.submit = submit
	r.frozen = false
	r.mu.Unlock()
	r.cond.Broadcast()
}

// ResumeGate is shorthand for ResumeAt(g.Submit), matching Config.OnResume's
// signature.
func (r *Router) ResumeGate(g *blkback.PostCopyGate) { r.ResumeAt(g.Submit) }

// StallObserved reports whether any request was delayed by a freeze — i.e.
// whether a client could have noticed the downtime.
func (r *Router) StallObserved() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stallObserved
}
