package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"bbmig/internal/bitmap"
	"bbmig/internal/blkback"
	"bbmig/internal/blockdev"
	"bbmig/internal/metrics"
	"bbmig/internal/transport"
	"bbmig/internal/vm"
)

// This file implements the three comparison schemes the paper's related-work
// section argues against (§II-B). Each is a different composition of the
// same phase pipeline and transfer substrate TPM uses (transfer.go), so
// benchmarks compare algorithms, not implementations:
//
//   - Freeze-and-copy (Internet Suspend/Resume, the Collective): suspend,
//     copy everything, resume. Downtime ≈ total migration time.
//   - On-demand fetching: migrate memory+CPU only, fetch storage blocks
//     lazily forever. Shared-storage-like downtime but an unbounded
//     residual dependency on the source (availability drops to p²).
//   - Delta forward-and-replay (Bradford et al., VEE'07): forward every
//     write during a single full-disk pass, queue the deltas on the
//     destination, and block I/O after resume until the queue replays.
//     Write locality makes a fraction of the deltas redundant — the
//     redundancy the block-bitmap eliminates by construction.

// baselineReport seeds a source-side report with the host's geometry.
func baselineReport(scheme string, host Host) *metrics.Report {
	dev := host.Backend.Device()
	mem := host.VM.Memory()
	return &metrics.Report{
		Scheme:      scheme,
		DiskBytes:   blockdev.Capacity(dev),
		MemoryBytes: int64(mem.NumPages()) * int64(mem.PageSize()),
	}
}

// awaitDone consumes destination→source notifications until MsgDone,
// recording the downtime when MsgResumed arrives. serve, when non-nil,
// handles scheme-specific frames (the on-demand pull service).
func awaitDone(t *transfer, rep *metrics.Report, freezeStart *time.Duration, serve frameHandlers) error {
	for {
		m, err := t.conn.Recv()
		if err != nil {
			return err
		}
		t.noteWire()
		switch m.Type {
		case transport.MsgResumed:
			rep.Downtime = t.clk.Now() - *freezeStart
			t.ev.resumed()
		case transport.MsgDone:
			return nil
		case transport.MsgError:
			return fmt.Errorf("core: destination error: %s", m.Payload)
		default:
			fn, ok := serve[m.Type]
			if !ok || fn == nil {
				return fmt.Errorf("core: unexpected %v", m.Type)
			}
			if err := fn(m); err != nil {
				return err
			}
		}
	}
}

// --- Freeze-and-copy ---

// MigrateFreezeAndCopySource migrates by suspending the VM for the entire
// transfer: a pipeline of just handshake and freeze-and-copy, with the whole
// disk and memory moved inside the freeze. The report's Downtime ≈
// TotalTime, the defect that motivates live migration.
func MigrateFreezeAndCopySource(cfg Config, host Host, conn transport.Conn) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	t, err := newTransfer(cfg, host, conn, "freeze-and-copy", "source")
	if err != nil {
		return baselineReport("freeze-and-copy", host), err
	}
	rep := baselineReport("freeze-and-copy", host)
	dev := host.Backend.Device()
	mem := host.VM.Memory()
	var freezeStart time.Duration

	err = t.runPhases(
		phase{PhaseHandshake, t.handshake},
		phase{PhaseFreezeCopy, func() error {
			if cfg.OnFreeze != nil {
				cfg.OnFreeze()
			}
			if err := host.VM.Suspend(); err != nil {
				return err
			}
			t.ev.suspended()
			freezeStart = t.clk.Now()
			if err := t.send(transport.Message{Type: transport.MsgSuspend}, false); err != nil {
				return err
			}
			// Whole disk, whole memory, CPU — one copy and only one copy.
			// Never paced: the entire transfer is downtime, and the paper
			// caps only pre-copy bandwidth.
			sent, bytes, err := t.sendBlocks(bitmap.NewAllSet(dev.NumBlocks()), PhaseFreezeCopy, false)
			if err != nil {
				return err
			}
			rep.DiskIterations = []metrics.Iteration{{Index: 1, Units: sent, Bytes: bytes, Duration: t.clk.Now() - freezeStart}}
			nPages, pBytes, err := t.sendPages(bitmap.NewAllSet(mem.NumPages()), false)
			if err != nil {
				return err
			}
			rep.MemIterations = []metrics.Iteration{{Index: 1, Units: nPages, Bytes: pBytes}}
			cpu := host.VM.CPU()
			if err := t.send(transport.Message{Type: transport.MsgCPUState, Payload: cpu.Registers}, false); err != nil {
				return err
			}
			if err := t.send(transport.Message{Type: transport.MsgResume}, false); err != nil {
				return err
			}
			return awaitDone(t, rep, &freezeStart, nil)
		}},
	)
	t.ev.finish(err)
	if err != nil {
		return rep, err
	}
	rep.TotalTime = t.clk.Now() - t.start
	rep.MigratedBytes = t.meter.BytesSent() + t.meter.BytesReceived()
	host.VM.Stop()
	return rep, nil
}

// MigrateFreezeAndCopyDest receives a freeze-and-copy migration.
func MigrateFreezeAndCopyDest(cfg Config, host Host, conn transport.Conn) (*DestResult, error) {
	cfg = cfg.withDefaults()
	t, err := newTransfer(cfg, host, conn, "freeze-and-copy-dest", "dest")
	if err != nil {
		return &DestResult{Report: &metrics.Report{Scheme: "freeze-and-copy-dest"}}, err
	}
	rep := &metrics.Report{Scheme: "freeze-and-copy-dest"}
	res := &DestResult{Report: rep}

	err = t.runPhases(
		phase{PhaseHandshake, t.acceptHandshake},
		phase{PhaseFreezeCopy, func() error {
			return t.recvLoop(transport.MsgResume, frameHandlers{
				transport.MsgSuspend: func(transport.Message) error {
					t.ev.suspended()
					return nil
				},
				transport.MsgBlockData: t.applyBlock,
				transport.MsgExtent:    t.applyExtent,
				transport.MsgMemPage:   t.applyPage,
				transport.MsgCPUState: func(m transport.Message) error {
					res.CPU = vm.CPUState{Registers: append([]byte(nil), m.Payload...)}
					host.VM.SetCPU(res.CPU)
					return nil
				},
			})
		}},
		phase{PhasePostCopy, func() error {
			if err := host.VM.Resume(); err != nil {
				return err
			}
			t.ev.resumed()
			if err := t.send(transport.Message{Type: transport.MsgResumed}, false); err != nil {
				return err
			}
			return t.send(transport.Message{Type: transport.MsgDone}, false)
		}},
	)
	t.ev.finish(err)
	if err != nil {
		_ = t.conn.Send(transport.Message{Type: transport.MsgError, Payload: []byte(err.Error())})
		return res, err
	}
	rep.MigratedBytes = t.meter.BytesSent() + t.meter.BytesReceived()
	return res, nil
}

// --- On-demand fetching ---

// MigrateOnDemandSource migrates memory and CPU with pre-copy, then serves
// block pulls until the destination releases it — which may be never, the
// residual-dependency defect the paper's push-and-pull avoids. The returned
// report's ResidualDirty is filled by the destination side.
func MigrateOnDemandSource(cfg Config, host Host, conn transport.Conn) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	t, err := newTransfer(cfg, host, conn, "on-demand", "source")
	if err != nil {
		return baselineReport("on-demand", host), err
	}
	rep := baselineReport("on-demand", host)
	dev := host.Backend.Device()
	mem := host.VM.Memory()
	var freezeStart time.Duration

	err = t.runPhases(
		phase{PhaseHandshake, t.handshake},
		phase{PhaseMemPreCopy, func() error {
			if err := t.memPreCopy(rep); err != nil {
				return err
			}
			rep.PreCopyTime = t.clk.Now() - t.start
			return nil
		}},
		phase{PhaseFreezeCopy, func() error {
			if cfg.OnFreeze != nil {
				cfg.OnFreeze()
			}
			freezeStart = t.clk.Now()
			if err := host.VM.Suspend(); err != nil {
				return err
			}
			t.ev.suspended()
			if err := t.send(transport.Message{Type: transport.MsgSuspend}, false); err != nil {
				return err
			}
			if _, _, err := t.sendPages(mem.SwapDirty(), false); err != nil {
				return err
			}
			cpu := host.VM.CPU()
			if err := t.send(transport.Message{Type: transport.MsgCPUState, Payload: cpu.Registers}, false); err != nil {
				return err
			}
			// Disk state: nothing but an all-dirty bitmap; every block is
			// fetched on demand.
			bm, err := bitmap.NewAllSet(dev.NumBlocks()).MarshalBinary()
			if err != nil {
				return err
			}
			if err := t.send(transport.Message{Type: transport.MsgBitmap, Payload: bm}, false); err != nil {
				return err
			}
			return t.send(transport.Message{Type: transport.MsgResume}, false)
		}},
		phase{PhaseOnDemand, func() error {
			// Serve pulls until released. No push: the dependency persists
			// for as long as the destination keeps faulting.
			buf := make([]byte, dev.BlockSize())
			return awaitDone(t, rep, &freezeStart, frameHandlers{
				transport.MsgPullRequest: func(m transport.Message) error {
					n := int(m.Arg)
					if err := dev.ReadBlock(n, buf); err != nil {
						return err
					}
					if err := t.send(transport.Message{Type: transport.MsgBlockData, Arg: m.Arg, Payload: buf}, false); err != nil {
						return err
					}
					rep.BlocksPulled++
					t.ev.pullServed(n)
					return nil
				},
			})
		}},
	)
	t.ev.finish(err)
	if err != nil {
		return rep, err
	}
	rep.TotalTime = t.clk.Now() - t.start
	rep.MigratedBytes = t.meter.BytesSent() + t.meter.BytesReceived()
	return rep, nil
}

// MigrateOnDemandDest receives an on-demand migration. After resume it keeps
// the gate faulting blocks from the source until release is closed, then
// reports how many blocks were never localized (ResidualDirty — the blocks
// whose loss would take the VM down with the source).
func MigrateOnDemandDest(cfg Config, host Host, conn transport.Conn, release <-chan struct{}) (*DestResult, error) {
	cfg = cfg.withDefaults()
	t, err := newTransfer(cfg, host, conn, "on-demand-dest", "dest")
	if err != nil {
		return &DestResult{Report: &metrics.Report{Scheme: "on-demand-dest"}}, err
	}
	rep := &metrics.Report{Scheme: "on-demand-dest"}
	res := &DestResult{Report: rep}
	mem := host.VM.Memory()
	var transferred *bitmap.Bitmap
	var gate *blkback.PostCopyGate
	var postStart time.Duration
	var memIter int

	err = t.runPhases(
		phase{PhaseHandshake, t.acceptHandshake},
		phase{PhaseMemPreCopy, func() error {
			return t.recvLoop(transport.MsgResume, frameHandlers{
				transport.MsgSuspend: func(transport.Message) error {
					t.ev.suspended()
					return nil
				},
				transport.MsgMemIterStart: func(m transport.Message) error {
					memIter = int(m.Arg)
					return nil
				},
				transport.MsgMemIterEnd: func(m transport.Message) error {
					t.ev.emit(Event{Kind: EventIterationEnd, Iteration: memIter, Units: int(m.Arg)})
					return nil
				},
				transport.MsgMemPage: func(m transport.Message) error {
					return mem.WritePage(int(m.Arg), m.Payload)
				},
				transport.MsgCPUState: func(m transport.Message) error {
					res.CPU = vm.CPUState{Registers: append([]byte(nil), m.Payload...)}
					host.VM.SetCPU(res.CPU)
					return nil
				},
				transport.MsgBitmap: func(m transport.Message) error {
					transferred = &bitmap.Bitmap{}
					return transferred.UnmarshalBinary(m.Payload)
				},
			})
		}},
		phase{PhaseOnDemand, func() error {
			if transferred == nil {
				return fmt.Errorf("core: source resumed without a bitmap")
			}
			gate = blkback.NewPostCopyGate(host.Backend.Device(), host.VM.DomainID, transferred, func(n int) error {
				return t.conn.Send(transport.Message{Type: transport.MsgPullRequest, Arg: uint64(n)})
			}, t.clk)
			res.Gate = gate
			if err := host.VM.Resume(); err != nil {
				return err
			}
			t.ev.resumed()
			if cfg.OnResume != nil {
				cfg.OnResume(gate)
			}
			if err := t.send(transport.Message{Type: transport.MsgResumed}, false); err != nil {
				return err
			}
			postStart = t.clk.Now()

			// Apply pulled blocks until released. Recv runs in its own
			// goroutine so the release signal is honoured even while no
			// traffic flows.
			type inbound struct {
				m   transport.Message
				err error
			}
			msgCh := make(chan inbound)
			go func() {
				for {
					m, err := t.conn.Recv()
					select {
					case msgCh <- inbound{m, err}:
						if err != nil {
							return
						}
					case <-release:
						return
					}
				}
			}()
			for {
				select {
				case in := <-msgCh:
					if in.err != nil {
						return in.err
					}
					t.noteWire()
					switch in.m.Type {
					case transport.MsgBlockData:
						if err := gate.ReceiveBlock(int(in.m.Arg), in.m.Payload); err != nil {
							return err
						}
					case transport.MsgError:
						return fmt.Errorf("core: source error: %s", in.m.Payload)
					default:
						return fmt.Errorf("core: unexpected %v", in.m.Type)
					}
				case <-release:
					// Fail any read still waiting on a pull: the dependency
					// is being cut.
					gate.Close()
					return t.send(transport.Message{Type: transport.MsgDone}, false)
				}
			}
		}},
	)
	t.ev.finish(err)
	if err != nil {
		_ = t.conn.Send(transport.Message{Type: transport.MsgError, Payload: []byte(err.Error())})
		return res, err
	}
	rep.PostCopyTime = t.clk.Now() - postStart
	rep.ResidualDirty = gate.RemainingDirty()
	rep.MigratedBytes = t.meter.BytesSent() + t.meter.BytesReceived()
	gs := gate.Stats()
	rep.BlocksPulled = int(gs.Pulls)
	rep.ReadStallTime = gs.ReadStallTime
	return res, nil
}

// Availability returns the availability of an on-demand-migrated VM that
// depends on two machines of individual availability p: p² (§II-B). With
// TPM's finite dependency the VM returns to availability p once post-copy
// completes.
func Availability(p float64) float64 { return p * p }

// --- Bradford-style delta forward-and-replay ---

// DeltaForwarder intercepts the guest's writes during a delta migration and
// forwards each one to the destination as a delta record, the §IV-A-2
// comparison mechanism. Route the workload through Submit.
type DeltaForwarder struct {
	backend *blkback.Backend
	conn    transport.Conn
	active  atomic.Bool

	deltas     atomic.Int64
	deltaBytes atomic.Int64
}

// NewDeltaForwarder wraps backend, forwarding writes over conn while active.
func NewDeltaForwarder(backend *blkback.Backend, conn transport.Conn) *DeltaForwarder {
	return &DeltaForwarder{backend: backend, conn: conn}
}

// Submit applies the request locally and forwards writes from the tracked
// domain while forwarding is active.
func (f *DeltaForwarder) Submit(req blockdev.Request) error {
	if err := f.backend.Submit(req); err != nil {
		return err
	}
	if req.Op == blockdev.Write && req.Domain == f.backend.Domain() && f.active.Load() {
		m := transport.Message{Type: transport.MsgDelta, Arg: uint64(req.Block), Payload: req.Data}
		if err := f.conn.Send(m); err != nil {
			return fmt.Errorf("core: forward delta: %w", err)
		}
		f.deltas.Add(1)
		f.deltaBytes.Add(int64(m.FrameSize()))
	}
	return nil
}

// Deltas returns how many write deltas were forwarded.
func (f *DeltaForwarder) Deltas() int64 { return f.deltas.Load() }

// MigrateDeltaSource migrates with Bradford-style forwarding: one full-disk
// pass while fwd forwards every write, then memory pre-copy, freeze, resume.
// The destination replays the queued deltas with guest I/O blocked.
func MigrateDeltaSource(cfg Config, host Host, conn transport.Conn, fwd *DeltaForwarder) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	t, err := newTransfer(cfg, host, conn, "delta-forward", "source")
	if err != nil {
		return baselineReport("delta-forward", host), err
	}
	rep := baselineReport("delta-forward", host)
	dev := host.Backend.Device()
	mem := host.VM.Memory()
	var freezeStart time.Duration

	err = t.runPhases(
		phase{PhaseHandshake, func() error {
			if err := t.handshake(); err != nil {
				return err
			}
			// Forward every write from now on; the full-disk pass races
			// them, and the destination's replay-after-copy resolves the
			// races. Deltas share the engine's metered conn.
			fwd.conn = t.conn
			fwd.active.Store(true)
			return nil
		}},
		phase{PhaseDeltaForward, func() error {
			iterStart := t.clk.Now()
			if err := t.send(transport.Message{Type: transport.MsgIterStart, Arg: 1}, true); err != nil {
				return err
			}
			// The full pass reads a frozen snapshot when the device is a
			// Volume: every racing write is forwarded as a delta anyway,
			// so a consistent base image plus the delta replay reproduces
			// the live disk exactly.
			restore := t.snapshotForReads()
			sent, bytes, err := t.sendBlocks(bitmap.NewAllSet(dev.NumBlocks()), PhaseDeltaForward, true)
			restore()
			if err != nil {
				return err
			}
			if err := t.send(transport.Message{Type: transport.MsgIterEnd, Arg: uint64(sent)}, true); err != nil {
				return err
			}
			rep.DiskIterations = []metrics.Iteration{{Index: 1, Units: sent, Bytes: bytes, Duration: t.clk.Now() - iterStart}}
			return nil
		}},
		phase{PhaseMemPreCopy, func() error {
			if err := t.memPreCopy(rep); err != nil {
				return err
			}
			rep.PreCopyTime = t.clk.Now() - t.start
			return nil
		}},
		phase{PhaseFreezeCopy, func() error {
			if cfg.OnFreeze != nil {
				cfg.OnFreeze()
			}
			freezeStart = t.clk.Now()
			if err := host.VM.Suspend(); err != nil {
				return err
			}
			t.ev.suspended()
			fwd.active.Store(false)
			if err := t.send(transport.Message{Type: transport.MsgSuspend}, false); err != nil {
				return err
			}
			if _, _, err := t.sendPages(mem.SwapDirty(), false); err != nil {
				return err
			}
			cpu := host.VM.CPU()
			if err := t.send(transport.Message{Type: transport.MsgCPUState, Payload: cpu.Registers}, false); err != nil {
				return err
			}
			if err := t.send(transport.Message{Type: transport.MsgResume}, false); err != nil {
				return err
			}
			return awaitDone(t, rep, &freezeStart, nil)
		}},
	)
	t.ev.finish(err)
	if err != nil {
		return rep, err
	}
	rep.TotalTime = t.clk.Now() - t.start
	rep.MigratedBytes = t.meter.BytesSent() + t.meter.BytesReceived()
	host.VM.Stop()
	return rep, nil
}

// MigrateDeltaDest receives a delta migration: it queues forwarded writes,
// applies the queue after the full copy, and reports how long guest I/O
// stayed blocked after resume (IOBlockedTime) plus how many deltas were
// redundant rewrites of the same block — the cost the paper's block-bitmap
// eliminates.
func MigrateDeltaDest(cfg Config, host Host, conn transport.Conn) (*DestResult, error) {
	cfg = cfg.withDefaults()
	t, err := newTransfer(cfg, host, conn, "delta-forward-dest", "dest")
	if err != nil {
		return &DestResult{Report: &metrics.Report{Scheme: "delta-forward-dest"}}, err
	}
	rep := &metrics.Report{Scheme: "delta-forward-dest"}
	res := &DestResult{Report: rep}
	dev := host.Backend.Device()
	type delta struct {
		block int
		data  []byte
	}
	var queue []delta
	seen := make(map[int]int)

	err = t.runPhases(
		phase{PhaseHandshake, t.acceptHandshake},
		phase{PhaseDeltaForward, func() error {
			return t.recvLoop(transport.MsgResume, frameHandlers{
				transport.MsgIterStart:    nil,
				transport.MsgIterEnd:      nil,
				transport.MsgMemIterStart: nil,
				transport.MsgMemIterEnd:   nil,
				transport.MsgSuspend: func(transport.Message) error {
					t.ev.suspended()
					return nil
				},
				transport.MsgBlockData: t.applyBlock,
				transport.MsgExtent:    t.applyExtent,
				transport.MsgDelta: func(m transport.Message) error {
					queue = append(queue, delta{block: int(m.Arg), data: m.Payload})
					seen[int(m.Arg)]++
					return nil
				},
				transport.MsgMemPage: t.applyPage,
				transport.MsgCPUState: func(m transport.Message) error {
					res.CPU = vm.CPUState{Registers: append([]byte(nil), m.Payload...)}
					host.VM.SetCPU(res.CPU)
					return nil
				},
			})
		}},
		phase{PhaseDeltaReplay, func() error {
			// Resume, then replay with I/O blocked (Bradford: "all the write
			// accesses must be blocked before all forwarded deltas are
			// applied").
			if err := host.VM.Resume(); err != nil {
				return err
			}
			t.ev.resumed()
			if err := t.send(transport.Message{Type: transport.MsgResumed}, false); err != nil {
				return err
			}
			replayStart := t.clk.Now()
			for _, d := range queue {
				if err := dev.WriteBlock(d.block, d.data); err != nil {
					return err
				}
				transport.PutBuf(d.data) // queued at receive time; consumed here
			}
			rep.IOBlockedTime = t.clk.Now() - replayStart
			redundant := 0
			for _, c := range seen {
				if c > 1 {
					redundant += c - 1
				}
			}
			rep.StalePushes = redundant // redundant deltas play the same role
			if cfg.OnResume != nil {
				cfg.OnResume(nil) // I/O may flow again; no gate needed
			}
			return t.send(transport.Message{Type: transport.MsgDone}, false)
		}},
	)
	t.ev.finish(err)
	if err != nil {
		_ = t.conn.Send(transport.Message{Type: transport.MsgError, Payload: []byte(err.Error())})
		return res, err
	}
	rep.MigratedBytes = t.meter.BytesSent() + t.meter.BytesReceived()
	return res, nil
}
