package core

import (
	"fmt"
	"sync/atomic"

	"bbmig/internal/bitmap"
	"bbmig/internal/blkback"
	"bbmig/internal/blockdev"
	"bbmig/internal/clock"
	"bbmig/internal/metrics"
	"bbmig/internal/transport"
	"bbmig/internal/vm"
)

// This file implements the three comparison schemes the paper's related-work
// section argues against (§II-B). They share TPM's wire protocol and
// substrate so benchmarks compare algorithms, not implementations:
//
//   - Freeze-and-copy (Internet Suspend/Resume, the Collective): suspend,
//     copy everything, resume. Downtime ≈ total migration time.
//   - On-demand fetching: migrate memory+CPU only, fetch storage blocks
//     lazily forever. Shared-storage-like downtime but an unbounded
//     residual dependency on the source (availability drops to p²).
//   - Delta forward-and-replay (Bradford et al., VEE'07): forward every
//     write during a single full-disk pass, queue the deltas on the
//     destination, and block I/O after resume until the queue replays.
//     Write locality makes a fraction of the deltas redundant — the
//     redundancy the block-bitmap eliminates by construction.

// handshake runs the HELLO/HELLO_ACK exchange from the source side.
func handshake(conn transport.Conn, dev blockdev.Device, mem *vm.Memory) error {
	geom := transport.Geometry{
		BlockSize: dev.BlockSize(), NumBlocks: dev.NumBlocks(),
		PageSize: mem.PageSize(), NumPages: mem.NumPages(),
	}
	gb, err := geom.MarshalBinary()
	if err != nil {
		return err
	}
	if err := conn.Send(transport.Message{Type: transport.MsgHello, Arg: transport.ProtocolVersion, Payload: gb}); err != nil {
		return err
	}
	ack, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("core: waiting for hello ack: %w", err)
	}
	if ack.Type != transport.MsgHelloAck {
		return fmt.Errorf("core: unexpected handshake reply %v", ack.Type)
	}
	return nil
}

// acceptHandshake runs the destination side of the handshake, validating
// geometry against the prepared resources.
func acceptHandshake(conn transport.Conn, dev blockdev.Device, mem *vm.Memory) error {
	hello, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("core: waiting for hello: %w", err)
	}
	if hello.Type != transport.MsgHello {
		return fmt.Errorf("core: expected HELLO, got %v", hello.Type)
	}
	var geom transport.Geometry
	if err := geom.UnmarshalBinary(hello.Payload); err != nil {
		return err
	}
	if geom.BlockSize != dev.BlockSize() || geom.NumBlocks != dev.NumBlocks() ||
		geom.PageSize != mem.PageSize() || geom.NumPages != mem.NumPages() {
		return fmt.Errorf("core: geometry mismatch: %+v", geom)
	}
	return conn.Send(transport.Message{Type: transport.MsgHelloAck})
}

// --- Freeze-and-copy ---

// MigrateFreezeAndCopySource migrates by suspending the VM for the entire
// transfer. The report's Downtime ≈ TotalTime, the defect that motivates
// live migration.
func MigrateFreezeAndCopySource(cfg Config, host Host, conn transport.Conn) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	clk := cfg.Clock
	meter := transport.NewMeter(conn)
	dev := host.Backend.Device()
	mem := host.VM.Memory()
	rep := &metrics.Report{
		Scheme:      "freeze-and-copy",
		DiskBytes:   blockdev.Capacity(dev),
		MemoryBytes: int64(mem.NumPages()) * int64(mem.PageSize()),
	}
	start := clk.Now()
	if err := handshake(meter, dev, mem); err != nil {
		return rep, err
	}
	if cfg.OnFreeze != nil {
		cfg.OnFreeze()
	}
	if err := host.VM.Suspend(); err != nil {
		return rep, err
	}
	freezeStart := clk.Now()
	if err := meter.Send(transport.Message{Type: transport.MsgSuspend}); err != nil {
		return rep, err
	}
	// Whole disk, whole memory, CPU — one copy and only one copy.
	s := &sourceRun{cfg: cfg, host: host, clk: clk, conn: meter, meter: meter}
	sent, bytes, err := s.sendBlocks(bitmap.NewAllSet(dev.NumBlocks()))
	if err != nil {
		return rep, err
	}
	rep.DiskIterations = []metrics.Iteration{{Index: 1, Units: sent, Bytes: bytes, Duration: clk.Now() - freezeStart}}
	nPages, pBytes, err := s.sendPages(bitmap.NewAllSet(mem.NumPages()), false)
	if err != nil {
		return rep, err
	}
	rep.MemIterations = []metrics.Iteration{{Index: 1, Units: nPages, Bytes: pBytes}}
	cpu := host.VM.CPU()
	if err := meter.Send(transport.Message{Type: transport.MsgCPUState, Payload: cpu.Registers}); err != nil {
		return rep, err
	}
	if err := meter.Send(transport.Message{Type: transport.MsgResume}); err != nil {
		return rep, err
	}
	for {
		m, err := meter.Recv()
		if err != nil {
			return rep, err
		}
		switch m.Type {
		case transport.MsgResumed:
			rep.Downtime = clk.Now() - freezeStart
		case transport.MsgDone:
			rep.TotalTime = clk.Now() - start
			rep.MigratedBytes = meter.BytesSent() + meter.BytesReceived()
			host.VM.Stop()
			return rep, nil
		case transport.MsgError:
			return rep, fmt.Errorf("core: destination error: %s", m.Payload)
		default:
			return rep, fmt.Errorf("core: unexpected %v", m.Type)
		}
	}
}

// MigrateFreezeAndCopyDest receives a freeze-and-copy migration.
func MigrateFreezeAndCopyDest(cfg Config, host Host, conn transport.Conn) (*DestResult, error) {
	cfg = cfg.withDefaults()
	meter := transport.NewMeter(conn)
	dev := host.Backend.Device()
	mem := host.VM.Memory()
	rep := &metrics.Report{Scheme: "freeze-and-copy-dest"}
	res := &DestResult{Report: rep}
	if err := acceptHandshake(meter, dev, mem); err != nil {
		return res, err
	}
	for {
		m, err := meter.Recv()
		if err != nil {
			return res, err
		}
		switch m.Type {
		case transport.MsgSuspend:
		case transport.MsgBlockData:
			if err := dev.WriteBlock(int(m.Arg), m.Payload); err != nil {
				return res, err
			}
		case transport.MsgMemPage:
			if err := mem.WritePage(int(m.Arg), m.Payload); err != nil {
				return res, err
			}
		case transport.MsgCPUState:
			res.CPU = vm.CPUState{Registers: append([]byte(nil), m.Payload...)}
			host.VM.SetCPU(res.CPU)
		case transport.MsgResume:
			if err := host.VM.Resume(); err != nil {
				return res, err
			}
			if err := meter.Send(transport.Message{Type: transport.MsgResumed}); err != nil {
				return res, err
			}
			if err := meter.Send(transport.Message{Type: transport.MsgDone}); err != nil {
				return res, err
			}
			rep.MigratedBytes = meter.BytesSent() + meter.BytesReceived()
			return res, nil
		case transport.MsgError:
			return res, fmt.Errorf("core: source error: %s", m.Payload)
		default:
			return res, fmt.Errorf("core: unexpected %v", m.Type)
		}
	}
}

// --- On-demand fetching ---

// MigrateOnDemandSource migrates memory and CPU with pre-copy, then serves
// block pulls until the destination releases it — which may be never, the
// residual-dependency defect the paper's push-and-pull avoids. The returned
// report's ResidualDirty is filled by the destination side.
func MigrateOnDemandSource(cfg Config, host Host, conn transport.Conn) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	clk := cfg.Clock
	meter := transport.NewMeter(conn)
	dev := host.Backend.Device()
	mem := host.VM.Memory()
	rep := &metrics.Report{
		Scheme:      "on-demand",
		DiskBytes:   blockdev.Capacity(dev),
		MemoryBytes: int64(mem.NumPages()) * int64(mem.PageSize()),
	}
	start := clk.Now()
	if err := handshake(meter, dev, mem); err != nil {
		return rep, err
	}
	s := &sourceRun{cfg: cfg, host: host, clk: clk, conn: meter, meter: meter}
	if err := s.memPreCopy(rep); err != nil {
		return rep, err
	}
	rep.PreCopyTime = clk.Now() - start
	if cfg.OnFreeze != nil {
		cfg.OnFreeze()
	}
	freezeStart := clk.Now()
	if err := host.VM.Suspend(); err != nil {
		return rep, err
	}
	if err := meter.Send(transport.Message{Type: transport.MsgSuspend}); err != nil {
		return rep, err
	}
	if _, _, err := s.sendPages(mem.SwapDirty(), false); err != nil {
		return rep, err
	}
	cpu := host.VM.CPU()
	if err := meter.Send(transport.Message{Type: transport.MsgCPUState, Payload: cpu.Registers}); err != nil {
		return rep, err
	}
	// Disk state: nothing but an all-dirty bitmap; every block is fetched
	// on demand.
	bm, err := bitmap.NewAllSet(dev.NumBlocks()).MarshalBinary()
	if err != nil {
		return rep, err
	}
	if err := meter.Send(transport.Message{Type: transport.MsgBitmap, Payload: bm}); err != nil {
		return rep, err
	}
	if err := meter.Send(transport.Message{Type: transport.MsgResume}); err != nil {
		return rep, err
	}
	// Serve pulls until released. No push: the dependency persists for as
	// long as the destination keeps faulting.
	buf := make([]byte, dev.BlockSize())
	for {
		m, err := meter.Recv()
		if err != nil {
			return rep, err
		}
		switch m.Type {
		case transport.MsgResumed:
			rep.Downtime = clk.Now() - freezeStart
		case transport.MsgPullRequest:
			n := int(m.Arg)
			if err := dev.ReadBlock(n, buf); err != nil {
				return rep, err
			}
			if err := meter.Send(transport.Message{Type: transport.MsgBlockData, Arg: m.Arg, Payload: buf}); err != nil {
				return rep, err
			}
			rep.BlocksPulled++
		case transport.MsgDone:
			rep.TotalTime = clk.Now() - start
			rep.MigratedBytes = meter.BytesSent() + meter.BytesReceived()
			return rep, nil
		case transport.MsgError:
			return rep, fmt.Errorf("core: destination error: %s", m.Payload)
		default:
			return rep, fmt.Errorf("core: unexpected %v", m.Type)
		}
	}
}

// MigrateOnDemandDest receives an on-demand migration. After resume it keeps
// the gate faulting blocks from the source until release is closed, then
// reports how many blocks were never localized (ResidualDirty — the blocks
// whose loss would take the VM down with the source).
func MigrateOnDemandDest(cfg Config, host Host, conn transport.Conn, release <-chan struct{}) (*DestResult, error) {
	cfg = cfg.withDefaults()
	clk := cfg.Clock
	meter := transport.NewMeter(conn)
	dev := host.Backend.Device()
	mem := host.VM.Memory()
	rep := &metrics.Report{Scheme: "on-demand-dest"}
	res := &DestResult{Report: rep}
	if err := acceptHandshake(meter, dev, mem); err != nil {
		return res, err
	}
	var transferred *bitmap.Bitmap
receive:
	for {
		m, err := meter.Recv()
		if err != nil {
			return res, err
		}
		switch m.Type {
		case transport.MsgSuspend, transport.MsgMemIterStart, transport.MsgMemIterEnd:
		case transport.MsgMemPage:
			if err := mem.WritePage(int(m.Arg), m.Payload); err != nil {
				return res, err
			}
		case transport.MsgCPUState:
			res.CPU = vm.CPUState{Registers: append([]byte(nil), m.Payload...)}
			host.VM.SetCPU(res.CPU)
		case transport.MsgBitmap:
			transferred = &bitmap.Bitmap{}
			if err := transferred.UnmarshalBinary(m.Payload); err != nil {
				return res, err
			}
		case transport.MsgResume:
			break receive
		case transport.MsgError:
			return res, fmt.Errorf("core: source error: %s", m.Payload)
		default:
			return res, fmt.Errorf("core: unexpected %v", m.Type)
		}
	}
	if transferred == nil {
		return res, fmt.Errorf("core: source resumed without a bitmap")
	}
	gate := blkback.NewPostCopyGate(dev, host.VM.DomainID, transferred, func(n int) error {
		return meter.Send(transport.Message{Type: transport.MsgPullRequest, Arg: uint64(n)})
	}, clk)
	res.Gate = gate
	if err := host.VM.Resume(); err != nil {
		return res, err
	}
	if cfg.OnResume != nil {
		cfg.OnResume(gate)
	}
	if err := meter.Send(transport.Message{Type: transport.MsgResumed}); err != nil {
		return res, err
	}
	postStart := clk.Now()

	// Apply pulled blocks until released. Recv runs in its own goroutine so
	// the release signal is honoured even while no traffic flows.
	type inbound struct {
		m   transport.Message
		err error
	}
	msgCh := make(chan inbound)
	go func() {
		for {
			m, err := meter.Recv()
			select {
			case msgCh <- inbound{m, err}:
				if err != nil {
					return
				}
			case <-release:
				return
			}
		}
	}()
serve:
	for {
		select {
		case in := <-msgCh:
			if in.err != nil {
				return res, in.err
			}
			switch in.m.Type {
			case transport.MsgBlockData:
				if err := gate.ReceiveBlock(int(in.m.Arg), in.m.Payload); err != nil {
					return res, err
				}
			case transport.MsgError:
				return res, fmt.Errorf("core: source error: %s", in.m.Payload)
			default:
				return res, fmt.Errorf("core: unexpected %v", in.m.Type)
			}
		case <-release:
			break serve
		}
	}
	// Fail any read still waiting on a pull: the dependency is being cut.
	gate.Close()
	if err := meter.Send(transport.Message{Type: transport.MsgDone}); err != nil {
		return res, err
	}
	rep.PostCopyTime = clk.Now() - postStart
	rep.ResidualDirty = gate.RemainingDirty()
	rep.MigratedBytes = meter.BytesSent() + meter.BytesReceived()
	gs := gate.Stats()
	rep.BlocksPulled = int(gs.Pulls)
	rep.ReadStallTime = gs.ReadStallTime
	return res, nil
}

// Availability returns the availability of an on-demand-migrated VM that
// depends on two machines of individual availability p: p² (§II-B). With
// TPM's finite dependency the VM returns to availability p once post-copy
// completes.
func Availability(p float64) float64 { return p * p }

// --- Bradford-style delta forward-and-replay ---

// DeltaForwarder intercepts the guest's writes during a delta migration and
// forwards each one to the destination as a delta record, the §IV-A-2
// comparison mechanism. Route the workload through Submit.
type DeltaForwarder struct {
	backend *blkback.Backend
	conn    transport.Conn
	active  atomic.Bool

	deltas     atomic.Int64
	deltaBytes atomic.Int64
}

// NewDeltaForwarder wraps backend, forwarding writes over conn while active.
func NewDeltaForwarder(backend *blkback.Backend, conn transport.Conn) *DeltaForwarder {
	return &DeltaForwarder{backend: backend, conn: conn}
}

// Submit applies the request locally and forwards writes from the tracked
// domain while forwarding is active.
func (f *DeltaForwarder) Submit(req blockdev.Request) error {
	if err := f.backend.Submit(req); err != nil {
		return err
	}
	if req.Op == blockdev.Write && req.Domain == f.backend.Domain() && f.active.Load() {
		m := transport.Message{Type: transport.MsgDelta, Arg: uint64(req.Block), Payload: req.Data}
		if err := f.conn.Send(m); err != nil {
			return fmt.Errorf("core: forward delta: %w", err)
		}
		f.deltas.Add(1)
		f.deltaBytes.Add(int64(m.FrameSize()))
	}
	return nil
}

// Deltas returns how many write deltas were forwarded.
func (f *DeltaForwarder) Deltas() int64 { return f.deltas.Load() }

// MigrateDeltaSource migrates with Bradford-style forwarding: one full-disk
// pass while fwd forwards every write, then memory pre-copy, freeze, resume.
// The destination replays the queued deltas with guest I/O blocked.
func MigrateDeltaSource(cfg Config, host Host, conn transport.Conn, fwd *DeltaForwarder) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	clk := cfg.Clock
	meter := transport.NewMeter(conn)
	dev := host.Backend.Device()
	mem := host.VM.Memory()
	rep := &metrics.Report{
		Scheme:      "delta-forward",
		DiskBytes:   blockdev.Capacity(dev),
		MemoryBytes: int64(mem.NumPages()) * int64(mem.PageSize()),
	}
	start := clk.Now()
	if err := handshake(meter, dev, mem); err != nil {
		return rep, err
	}
	// Forward every write from now on; the full-disk pass races them, and
	// the destination's replay-after-copy resolves the races.
	fwd.conn = meter
	fwd.active.Store(true)
	s := &sourceRun{cfg: cfg, host: host, clk: clk, conn: meter, meter: meter}
	if cfg.BandwidthLimit != clock.Unlimited {
		s.limiter = clock.NewRateLimiter(clk, cfg.BandwidthLimit, cfg.BandwidthLimit/10)
	}
	iterStart := clk.Now()
	if err := meter.Send(transport.Message{Type: transport.MsgIterStart, Arg: 1}); err != nil {
		return rep, err
	}
	sent, bytes, err := s.sendBlocks(bitmap.NewAllSet(dev.NumBlocks()))
	if err != nil {
		return rep, err
	}
	if err := meter.Send(transport.Message{Type: transport.MsgIterEnd, Arg: uint64(sent)}); err != nil {
		return rep, err
	}
	rep.DiskIterations = []metrics.Iteration{{Index: 1, Units: sent, Bytes: bytes, Duration: clk.Now() - iterStart}}
	if err := s.memPreCopy(rep); err != nil {
		return rep, err
	}
	rep.PreCopyTime = clk.Now() - start
	if cfg.OnFreeze != nil {
		cfg.OnFreeze()
	}
	freezeStart := clk.Now()
	if err := host.VM.Suspend(); err != nil {
		return rep, err
	}
	fwd.active.Store(false)
	if err := meter.Send(transport.Message{Type: transport.MsgSuspend}); err != nil {
		return rep, err
	}
	if _, _, err := s.sendPages(mem.SwapDirty(), false); err != nil {
		return rep, err
	}
	cpu := host.VM.CPU()
	if err := meter.Send(transport.Message{Type: transport.MsgCPUState, Payload: cpu.Registers}); err != nil {
		return rep, err
	}
	if err := meter.Send(transport.Message{Type: transport.MsgResume}); err != nil {
		return rep, err
	}
	for {
		m, err := meter.Recv()
		if err != nil {
			return rep, err
		}
		switch m.Type {
		case transport.MsgResumed:
			rep.Downtime = clk.Now() - freezeStart
		case transport.MsgDone:
			rep.TotalTime = clk.Now() - start
			rep.MigratedBytes = meter.BytesSent() + meter.BytesReceived()
			host.VM.Stop()
			return rep, nil
		case transport.MsgError:
			return rep, fmt.Errorf("core: destination error: %s", m.Payload)
		default:
			return rep, fmt.Errorf("core: unexpected %v", m.Type)
		}
	}
}

// MigrateDeltaDest receives a delta migration: it queues forwarded writes,
// applies the queue after the full copy, and reports how long guest I/O
// stayed blocked after resume (IOBlockedTime) plus how many deltas were
// redundant rewrites of the same block — the cost the paper's block-bitmap
// eliminates.
func MigrateDeltaDest(cfg Config, host Host, conn transport.Conn) (*DestResult, error) {
	cfg = cfg.withDefaults()
	clk := cfg.Clock
	meter := transport.NewMeter(conn)
	dev := host.Backend.Device()
	mem := host.VM.Memory()
	rep := &metrics.Report{Scheme: "delta-forward-dest"}
	res := &DestResult{Report: rep}
	if err := acceptHandshake(meter, dev, mem); err != nil {
		return res, err
	}
	type delta struct {
		block int
		data  []byte
	}
	var queue []delta
	seen := make(map[int]int)
receive:
	for {
		m, err := meter.Recv()
		if err != nil {
			return res, err
		}
		switch m.Type {
		case transport.MsgIterStart, transport.MsgIterEnd,
			transport.MsgMemIterStart, transport.MsgMemIterEnd, transport.MsgSuspend:
		case transport.MsgBlockData:
			if err := dev.WriteBlock(int(m.Arg), m.Payload); err != nil {
				return res, err
			}
		case transport.MsgDelta:
			queue = append(queue, delta{block: int(m.Arg), data: m.Payload})
			seen[int(m.Arg)]++
		case transport.MsgMemPage:
			if err := mem.WritePage(int(m.Arg), m.Payload); err != nil {
				return res, err
			}
		case transport.MsgCPUState:
			res.CPU = vm.CPUState{Registers: append([]byte(nil), m.Payload...)}
			host.VM.SetCPU(res.CPU)
		case transport.MsgResume:
			break receive
		case transport.MsgError:
			return res, fmt.Errorf("core: source error: %s", m.Payload)
		default:
			return res, fmt.Errorf("core: unexpected %v", m.Type)
		}
	}
	// Resume, then replay with I/O blocked (Bradford: "all the write
	// accesses must be blocked before all forwarded deltas are applied").
	if err := host.VM.Resume(); err != nil {
		return res, err
	}
	if err := meter.Send(transport.Message{Type: transport.MsgResumed}); err != nil {
		return res, err
	}
	replayStart := clk.Now()
	for _, d := range queue {
		if err := dev.WriteBlock(d.block, d.data); err != nil {
			return res, err
		}
	}
	rep.IOBlockedTime = clk.Now() - replayStart
	redundant := 0
	for _, c := range seen {
		if c > 1 {
			redundant += c - 1
		}
	}
	rep.StalePushes = redundant // redundant deltas play the same role
	if cfg.OnResume != nil {
		cfg.OnResume(nil) // I/O may flow again; no gate needed
	}
	if err := meter.Send(transport.Message{Type: transport.MsgDone}); err != nil {
		return res, err
	}
	rep.MigratedBytes = meter.BytesSent() + meter.BytesReceived()
	return res, nil
}
