package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"bbmig/internal/blockdev"
	"bbmig/internal/dedup"
	"bbmig/internal/metrics"
	"bbmig/internal/transport"
	"bbmig/internal/workload"
)

// swarmTestPeer serves the WIRE.md §11 sidecar protocol from a content map,
// with scriptable misbehaviour: refusing the hello, dying on the first
// fetch, or serving bytes that do not match their fingerprint.
type swarmTestPeer struct {
	content    map[dedup.Fingerprint][]byte
	refuse     bool // answer the hello with MsgError
	dieOnFetch bool // close the session instead of answering the first fetch
	corrupt    bool // claim hits but serve flipped bytes

	mu      sync.Mutex
	fetches int
}

func (p *swarmTestPeer) fetchCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fetches
}

func (p *swarmTestPeer) dial() (transport.Conn, error) {
	a, b := transport.NewPipe(64)
	go p.serve(b)
	return a, nil
}

func (p *swarmTestPeer) serve(conn transport.Conn) {
	defer conn.Close()
	hello, err := conn.Recv()
	if err != nil || hello.Type != transport.MsgSwarmHello {
		return
	}
	if p.refuse {
		conn.Send(transport.Message{Type: transport.MsgError, Payload: []byte("swarm refused")})
		return
	}
	if err := conn.Send(hello); err != nil { // echo = accept
		return
	}
	for {
		m, err := conn.Recv()
		if err != nil || m.Type != transport.MsgSwarmFetch {
			return
		}
		p.mu.Lock()
		p.fetches++
		dead := p.dieOnFetch
		p.mu.Unlock()
		if dead {
			return
		}
		count := len(m.Payload) / dedup.FingerprintSize
		fps, err := dedup.ParseFingerprints(m.Payload, count)
		if err != nil {
			return
		}
		mask := make([]byte, dedup.WantLen(count))
		var body []byte
		for i, fp := range fps {
			content, ok := p.content[fp]
			if !ok {
				continue
			}
			dedup.SetWant(mask, i)
			if p.corrupt {
				bad := append([]byte(nil), content...)
				bad[0] ^= 0xFF
				content = bad
			}
			body = append(body, content...)
		}
		reply := transport.Message{Type: transport.MsgSwarmBlock, Arg: m.Arg, Payload: append(mask, body...)}
		if err := conn.Send(reply); err != nil {
			return
		}
	}
}

// swarmDialer routes Config.SwarmPeers addresses to in-process test peers.
func swarmDialer(peers map[string]*swarmTestPeer) SwarmDialFunc {
	return func(addr string) (transport.Conn, error) {
		p, ok := peers[addr]
		if !ok {
			return nil, fmt.Errorf("no such swarm peer %q", addr)
		}
		return p.dial()
	}
}

// templateContents builds the template block contents templateDisk writes,
// keyed by fingerprint — a warm peer's servable inventory.
func templateContents(distinct int) map[dedup.Fingerprint][]byte {
	out := make(map[dedup.Fingerprint][]byte, distinct)
	buf := make([]byte, blockdev.BlockSize)
	for i := 0; i < distinct; i++ {
		workload.FillBlock(buf, i, 7)
		c := append([]byte(nil), buf...)
		out[dedup.Of(c)] = c
	}
	return out
}

// TestSwarmFetchEndToEnd migrates the same template world single-source and
// swarm-assisted: the swarm run must fetch blocks from the peer, move
// materially fewer source-link bytes, and still converge byte-identically.
func TestSwarmFetchEndToEnd(t *testing.T) {
	const distinct = 512
	run := func(cfg Config) (*metrics.Report, *DestResult) {
		e := newEnv(t)
		templateDisk(t, e, distinct)
		rep, res := e.runTPM(cfg, nil)
		e.checkConverged(res.CPU)
		return rep, res
	}
	base, baseRes := run(Config{Dedup: true, MaxExtentBlocks: 16})
	if baseRes.Report.SwarmBlocks != 0 {
		t.Fatalf("single-source run reported %d swarm blocks", baseRes.Report.SwarmBlocks)
	}

	peer := &swarmTestPeer{content: templateContents(distinct)}
	rep, res := run(Config{
		Dedup: true, MaxExtentBlocks: 16,
		Swarm:      true,
		SwarmPeers: []string{"warm"},
		SwarmDial:  swarmDialer(map[string]*swarmTestPeer{"warm": peer}),
	})
	if res.Report.SwarmBlocks == 0 {
		t.Fatal("swarm run fetched nothing from the peer")
	}
	if peer.fetchCount() == 0 {
		t.Fatal("peer never consulted")
	}
	// The distinct template contents came over the sidecar instead of the
	// migration channel: the source link must be spared about that much.
	margin := int64(distinct) * blockdev.BlockSize / 2
	if rep.MigratedBytes+margin > base.MigratedBytes {
		t.Fatalf("swarm run moved %d source bytes vs %d single-source — sidecar saved too little", rep.MigratedBytes, base.MigratedBytes)
	}
}

// TestSwarmPeerFailures drives the fallback discipline: a refused hello, a
// peer dying mid-fetch, and a peer serving corrupt content must each leave
// the migration correct — the want-set falls back to literal sends — and a
// lying peer must be dropped after its first bad answer.
func TestSwarmPeerFailures(t *testing.T) {
	const distinct = 64
	run := func(peers map[string]*swarmTestPeer, order ...string) *DestResult {
		e := newEnv(t)
		templateDisk(t, e, distinct)
		_, res := e.runTPM(Config{
			Dedup: true, MaxExtentBlocks: 16,
			Swarm:      true,
			SwarmPeers: order,
			SwarmDial:  swarmDialer(peers),
		}, nil)
		e.checkConverged(res.CPU)
		return res
	}

	t.Run("refused-hello", func(t *testing.T) {
		peer := &swarmTestPeer{refuse: true}
		res := run(map[string]*swarmTestPeer{"p": peer}, "p")
		if res.Report.SwarmBlocks != 0 {
			t.Fatalf("%d swarm blocks from a peer that refused the hello", res.Report.SwarmBlocks)
		}
		if peer.fetchCount() != 0 {
			t.Fatal("fetch sent to a peer that refused the hello")
		}
	})

	t.Run("dies-mid-fetch", func(t *testing.T) {
		peer := &swarmTestPeer{content: templateContents(distinct), dieOnFetch: true}
		res := run(map[string]*swarmTestPeer{"p": peer}, "p")
		if res.Report.SwarmBlocks != 0 {
			t.Fatalf("%d swarm blocks from a peer that died mid-fetch", res.Report.SwarmBlocks)
		}
		if got := peer.fetchCount(); got != 1 {
			t.Fatalf("dead peer consulted %d times, want 1 (dropped after the failure)", got)
		}
	})

	t.Run("corrupt-content", func(t *testing.T) {
		peer := &swarmTestPeer{content: templateContents(distinct), corrupt: true}
		res := run(map[string]*swarmTestPeer{"p": peer}, "p")
		if res.Report.SwarmBlocks != 0 {
			t.Fatalf("%d swarm blocks accepted from a peer serving corrupt content", res.Report.SwarmBlocks)
		}
		if got := peer.fetchCount(); got != 1 {
			t.Fatalf("lying peer consulted %d times, want 1 (dropped after the first lie)", got)
		}
	})

	t.Run("survivor-covers", func(t *testing.T) {
		dead := &swarmTestPeer{content: templateContents(distinct), dieOnFetch: true}
		honest := &swarmTestPeer{content: templateContents(distinct)}
		res := run(map[string]*swarmTestPeer{"dead": dead, "honest": honest}, "dead", "honest")
		if res.Report.SwarmBlocks == 0 {
			t.Fatal("surviving peer served nothing after its sibling died")
		}
		if honest.fetchCount() == 0 {
			t.Fatal("honest peer never consulted")
		}
	})
}

// TestSwarmResumeAcrossCut cuts the migration channel mid disk pre-copy of
// a swarm-assisted run: the sidecar sessions are untouched, the source
// resumes over a fresh link, and the migration converges with the swarm's
// pre-cut work intact.
func TestSwarmResumeAcrossCut(t *testing.T) {
	const distinct = 64
	peer := &swarmTestPeer{content: templateContents(distinct)}
	e := newEnv(t)
	templateDisk(t, e, distinct)

	inj := transport.NewInjector([]transport.Fault{{AfterSends: 80, Kind: transport.FaultCut}})
	relink := newPipeRelinker(inj)
	srcCfg := Config{
		Dedup: true, MaxExtentBlocks: 16,
		MaxRetries: 5, RetryBackoff: time.Millisecond,
		Redial:   relink.redial,
		OnFreeze: e.router.Freeze,
	}
	dstCfg := Config{
		Dedup: true, MaxExtentBlocks: 16,
		Swarm:         true,
		SwarmPeers:    []string{"warm"},
		SwarmDial:     swarmDialer(map[string]*swarmTestPeer{"warm": peer}),
		WaitReconnect: relink.waitReconnect,
	}

	srcCh := make(chan error, 1)
	var rep *metrics.Report
	go func() {
		var err error
		rep, err = MigrateSource(srcCfg, e.src, inj.Wrap(e.connSrc), nil)
		srcCh <- err
	}()
	res, err := MigrateDest(dstCfg, e.dst, e.connDst)
	if err != nil {
		t.Fatalf("destination: %v", err)
	}
	if err := <-srcCh; err != nil {
		t.Fatalf("source: %v", err)
	}
	e.checkConverged(res.CPU)
	if rep.Retries != 1 {
		t.Fatalf("source survived %d retries, want 1", rep.Retries)
	}
	if res.Report.SwarmBlocks == 0 {
		t.Fatal("swarm produced nothing across the cut")
	}
}
