package core

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"bbmig/internal/blkback"
	"bbmig/internal/blockdev"
	"bbmig/internal/transport"
)

// collectEvents is a concurrency-safe event recorder.
type collectEvents struct {
	mu  sync.Mutex
	evs []Event
}

func (c *collectEvents) handle(ev Event) {
	c.mu.Lock()
	c.evs = append(c.evs, ev)
	c.mu.Unlock()
}

func (c *collectEvents) all() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.evs...)
}

// kinds returns the event kinds in order, de-duplicating consecutive
// BytesTransferred heartbeats.
func (c *collectEvents) kinds() []EventKind {
	var out []EventKind
	for _, ev := range c.all() {
		if ev.Kind == EventBytesTransferred && len(out) > 0 && out[len(out)-1] == EventBytesTransferred {
			continue
		}
		out = append(out, ev.Kind)
	}
	return out
}

// TestEventStreamTPM verifies both endpoints announce the full phase
// pipeline in order, with iteration, suspend/resume, and terminal events.
func TestEventStreamTPM(t *testing.T) {
	e := newEnv(t)
	var srcEvs, dstEvs collectEvents
	srcCfg := Config{OnEvent: srcEvs.handle, OnFreeze: e.router.Freeze}
	dstCfg := Config{OnEvent: dstEvs.handle, OnResume: e.router.ResumeGate}
	srcCh := make(chan error, 1)
	go func() {
		_, err := MigrateSource(srcCfg, e.src, e.connSrc, nil)
		srcCh <- err
	}()
	if _, err := MigrateDest(dstCfg, e.dst, e.connDst); err != nil {
		t.Fatalf("destination: %v", err)
	}
	if err := <-srcCh; err != nil {
		t.Fatalf("source: %v", err)
	}

	// Source: every phase in pipeline order, then completion.
	wantPhases := []string{PhaseHandshake, PhaseDiskPreCopy, PhaseMemPreCopy, PhaseFreezeCopy, PhasePostCopy}
	var srcPhases []string
	sawSuspend, sawResume, sawCompleted := false, false, false
	for _, ev := range srcEvs.all() {
		if ev.Side != "source" || ev.Scheme != "TPM" {
			t.Fatalf("source event carries %s/%s", ev.Scheme, ev.Side)
		}
		switch ev.Kind {
		case EventPhaseStart:
			srcPhases = append(srcPhases, ev.Phase)
		case EventSuspended:
			sawSuspend = true
		case EventResumed:
			sawResume = true
		case EventCompleted:
			sawCompleted = true
			if ev.Bytes <= 0 {
				t.Fatal("completion event carries no byte total")
			}
		case EventFailed:
			t.Fatalf("failure event on a successful run: %s", ev.Err)
		}
	}
	if strings.Join(srcPhases, ",") != strings.Join(wantPhases, ",") {
		t.Fatalf("source phases %v, want %v", srcPhases, wantPhases)
	}
	if !sawSuspend || !sawResume || !sawCompleted {
		t.Fatalf("source missing lifecycle events: suspend=%v resume=%v completed=%v", sawSuspend, sawResume, sawCompleted)
	}

	// Source iteration events must match the report's accounting.
	iters := 0
	for _, ev := range srcEvs.all() {
		if ev.Kind == EventIterationEnd && ev.Phase == PhaseDiskPreCopy {
			iters++
			if ev.Units != testBlocks {
				t.Fatalf("disk iteration event reports %d units, want %d", ev.Units, testBlocks)
			}
		}
	}
	if iters != 1 {
		t.Fatalf("%d disk iteration events for an idle VM, want 1", iters)
	}

	// Destination: pipeline announced, resume and completion seen.
	var dstPhases []string
	dstCompleted := false
	for _, ev := range dstEvs.all() {
		if ev.Kind == EventPhaseStart {
			dstPhases = append(dstPhases, ev.Phase)
		}
		if ev.Kind == EventCompleted {
			dstCompleted = true
		}
	}
	want := []string{PhaseHandshake, PhaseDiskPreCopy, PhasePostCopy}
	if strings.Join(dstPhases, ",") != strings.Join(want, ",") {
		t.Fatalf("dest phases %v, want %v", dstPhases, want)
	}
	if !dstCompleted {
		t.Fatal("destination never emitted completion")
	}
}

// TestProgressTracker folds a live event stream into snapshots and checks
// the mid-flight view: during the freeze the tracker must already report the
// phase and bytes moved.
func TestProgressTracker(t *testing.T) {
	e := newEnv(t)
	tracker := NewProgressTracker()
	var atFreeze Progress
	cfg := Config{
		OnEvent: tracker.Handle,
		OnFreeze: func() {
			atFreeze = tracker.Snapshot()
			e.router.Freeze()
		},
	}
	_, res := e.runTPM(cfg, nil)
	e.checkConverged(res.CPU)

	if atFreeze.Done {
		t.Fatal("tracker reported done at the freeze point")
	}
	if atFreeze.Phase != PhaseMemPreCopy && atFreeze.Phase != PhaseFreezeCopy {
		t.Fatalf("phase at freeze %q", atFreeze.Phase)
	}
	if atFreeze.BytesTransferred == 0 {
		t.Fatal("no bytes reported by the freeze point (8 MiB disk already moved)")
	}
	final := tracker.Snapshot()
	if !final.Done || final.Err != "" {
		t.Fatalf("final snapshot %+v", final)
	}
	if !final.Resumed || !final.Suspended {
		t.Fatalf("final snapshot missing lifecycle: %+v", final)
	}
}

// TestEventStreamFailure: a geometry mismatch must surface as EventFailed on
// the source.
func TestEventStreamFailure(t *testing.T) {
	e := newEnv(t)
	var evs collectEvents
	srcCh := make(chan error, 1)
	go func() {
		_, err := MigrateSource(Config{OnEvent: evs.handle}, e.src, e.connSrc, nil)
		srcCh <- err
	}()
	// Destination with a mismatched VBD: one block too many.
	badDst := e.dst
	badDst.Backend = blkbackNew(testBlocks + 1)
	if _, err := MigrateDest(Config{}, badDst, e.connDst); err == nil {
		t.Fatal("destination accepted mismatched geometry")
	}
	if err := <-srcCh; err == nil {
		t.Fatal("source did not observe the abort")
	}
	final := evs.all()
	if len(final) == 0 {
		t.Fatal("no events")
	}
	last := final[len(final)-1]
	if last.Kind != EventFailed || last.Err == "" {
		t.Fatalf("last source event %v (%q), want failure", last.Kind, last.Err)
	}
}

// blkbackNew returns a backend over a fresh MemDisk of n blocks.
func blkbackNew(n int) *blkback.Backend {
	return blkback.NewBackend(blockdev.NewMemDisk(n, blockdev.BlockSize), testDomain)
}

// TestEquivalenceAdaptivePolicy: the adaptive policy changes frame shapes,
// never data. The destination must converge byte-identically.
func TestEquivalenceAdaptivePolicy(t *testing.T) {
	e := newEnv(t)
	cfg := Config{Policy: &AdaptivePolicy{}}
	rep, res := e.runTPM(cfg, nil)
	e.checkConverged(res.CPU)
	if rep.DiskIterations[0].Units != testBlocks {
		t.Fatalf("first iteration sent %d blocks, want %d", rep.DiskIterations[0].Units, testBlocks)
	}
}

// modeledEnv wires an env over Latent pipes: every frame pays a per-message
// stall, the latency-bound link shape the adaptive policy exists for.
func modeledEnv(t *testing.T, stall time.Duration) *env {
	e := newEnv(t)
	a, b := transport.NewPipe(256)
	e.connSrc, e.connDst = transport.NewLatent(a, stall), transport.NewLatent(b, stall)
	return e
}

// TestAdaptiveBeatsDefaultOnModeledLink is the acceptance benchmark scenario
// as a test: on a link with a 100 µs per-frame stall, the adaptive policy's
// extent growth must finish the same migration well ahead of the fixed
// default (which pays the stall once per 4 KiB block).
func TestAdaptiveBeatsDefaultOnModeledLink(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const stall = 100 * time.Microsecond
	run := func(pol Policy) time.Duration {
		e := modeledEnv(t, stall)
		start := time.Now()
		_, res := e.runTPM(Config{Policy: pol}, nil)
		elapsed := time.Since(start)
		e.checkConverged(res.CPU)
		return elapsed
	}
	fixed := run(nil) // DefaultPolicy, extent 1: one stall per block
	adaptive := run(&AdaptivePolicy{})
	t.Logf("modeled link (%v/frame): default %v, adaptive %v", stall, fixed, adaptive)
	if adaptive*2 >= fixed {
		t.Fatalf("adaptive policy (%v) did not clearly beat the fixed default (%v) on a latency-bound link", adaptive, fixed)
	}
}

// TestAdaptivePolicyExtentGrowth drives the policy directly: full extents at
// healthy throughput must grow the limit; a rate collapse must shrink it.
func TestAdaptivePolicyExtentGrowth(t *testing.T) {
	p := &AdaptivePolicy{}
	if got := p.ExtentBlocks(PhaseDiskPreCopy, 1); got != 1 {
		t.Fatalf("initial extent %d, want the configured 1", got)
	}
	for i := 0; i < 64; i++ {
		cur := p.ExtentBlocks(PhaseDiskPreCopy, 1)
		p.ObserveExtent(cur, int64(cur*4096), time.Duration(cur)*time.Microsecond)
	}
	grown := p.ExtentBlocks(PhaseDiskPreCopy, 1)
	if grown < 16 {
		t.Fatalf("extent failed to grow under healthy throughput: %d", grown)
	}
	// Collapse: full extent, terrible rate.
	p.ObserveExtent(grown, int64(grown*4096), 10*time.Second)
	if shrunk := p.ExtentBlocks(PhaseDiskPreCopy, 1); shrunk >= grown {
		t.Fatalf("extent did not shrink after a rate collapse: %d -> %d", grown, shrunk)
	}
}

// TestAdaptiveCompressionGating: incompressible payloads must stop being
// attempted after the observation window, then be re-probed.
func TestAdaptiveCompressionGating(t *testing.T) {
	p := &AdaptivePolicy{}
	kind := transport.MsgBlockData
	// 32 incompressible outcomes → gate closes.
	for i := 0; i < 32; i++ {
		if !p.CompressPayload(kind, 4096) {
			t.Fatal("gate closed before the observation window filled")
		}
		p.ObserveCompression(kind, 4096, 4097)
	}
	if p.CompressPayload(kind, 4096) {
		t.Fatal("gate still open after 32 incompressible payloads")
	}
	// The gate re-probes after compressionProbeEvery skips.
	reopened := false
	for i := 0; i < compressionProbeEvery+1; i++ {
		if p.CompressPayload(kind, 4096) {
			reopened = true
			break
		}
	}
	if !reopened {
		t.Fatal("gate never re-probed")
	}
	// Compressible data keeps the gate open.
	for i := 0; i < 32; i++ {
		p.ObserveCompression(kind, 4096, 512)
	}
	if !p.CompressPayload(kind, 4096) {
		t.Fatal("gate closed on compressible data")
	}
}

// TestCompressLevelConfig migrates with engine-owned stream compression on
// both ends and verifies convergence plus an actual wire-byte saving on the
// zero-heavy disk.
func TestCompressLevelConfig(t *testing.T) {
	for _, pol := range []struct {
		name string
		p    Policy
	}{{"default", nil}, {"adaptive", &AdaptivePolicy{}}} {
		t.Run(pol.name, func(t *testing.T) {
			e := newEnv(t)
			cfg := Config{CompressLevel: 6, Policy: pol.p}
			rep, res := e.runTPM(cfg, nil)
			e.checkConverged(res.CPU)
			uncompressed := int64(testBlocks)*4096 + int64(testPages)*4096
			if rep.MigratedBytes >= uncompressed {
				t.Fatalf("compressed migration moved %d wire bytes, more than the %d raw payload", rep.MigratedBytes, uncompressed)
			}
		})
	}
}

// TestCompressLevelMismatchFails: one compressed endpoint against one raw
// endpoint must abort in the handshake, not corrupt the stream.
func TestCompressLevelMismatchFails(t *testing.T) {
	e := newEnv(t)
	srcCh := make(chan error, 1)
	go func() {
		_, err := MigrateSource(Config{CompressLevel: 6}, e.src, e.connSrc, nil)
		srcCh <- err
	}()
	_, dstErr := MigrateDest(Config{}, e.dst, e.connDst)
	if dstErr == nil {
		t.Fatal("raw destination accepted a compressed stream")
	}
	if err := <-srcCh; err == nil {
		t.Fatal("compressed source never noticed the mismatch")
	}
	// The destination disk must be untouched: the failure happened before
	// any data frame.
	img := diskImage(t, e.dstDisk)
	if !bytes.Equal(img, make([]byte, len(img))) {
		t.Fatal("mismatched handshake corrupted the destination disk")
	}
}
