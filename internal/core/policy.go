package core

import (
	"sync"
	"time"

	"bbmig/internal/transport"
)

// IterationStat summarizes one completed pre-copy iteration for policy
// decisions and progress events. Threshold, MaxIterations, and
// MaxExtentBlocks carry the configured limits so policies can stay stateless
// with respect to Config.
type IterationStat struct {
	Phase     string // PhaseDiskPreCopy or PhaseMemPreCopy
	Iteration int    // 1-based index of the iteration that just finished
	Sent      int    // units (blocks or pages) transferred
	SentBytes int64  // wire bytes of the iteration's frames
	Duration  time.Duration
	Dirty     int // dirty units when the iteration ended
	PrevDirty int // dirty count after the previous iteration (or the initial set size)

	Threshold       int // configured dirty threshold for this phase
	MaxIterations   int // configured iteration budget for this phase
	MaxExtentBlocks int // configured extent coalescing limit
}

// Throughput returns the iteration's achieved wire rate in bytes/second.
func (st IterationStat) Throughput() float64 {
	if st.Duration <= 0 {
		return 0
	}
	return float64(st.SentBytes) / st.Duration.Seconds()
}

// DirtyRate returns the rate at which dirty units accumulated during the
// iteration, in units/second.
func (st IterationStat) DirtyRate() float64 {
	if st.Duration <= 0 {
		return 0
	}
	return float64(st.Dirty) / st.Duration.Seconds()
}

// Policy owns the transfer decisions the engine previously froze in
// constants: when to run another pre-copy iteration, how many contiguous
// blocks to coalesce per frame, whether a given payload is worth attempting
// to compress, and how hard to pace the pre-copy phases.
//
// The engine consults the policy; the wire protocol constrains nothing —
// every choice a Policy can make produces frames any destination accepts, so
// policies are a local (non-negotiated) concern. DefaultPolicy reproduces
// the paper's exact behavior and is wire-identical to the seed protocol
// (guarded by the golden trace test); AdaptivePolicy tunes itself from
// observed dirty-rate vs. throughput.
//
// Observe* methods are feedback hooks called from send paths, possibly from
// several worker goroutines at once; implementations must be concurrency-safe.
type Policy interface {
	// ContinuePreCopy reports whether another pre-copy iteration should run
	// after the one st describes. Returning false hands the remaining dirty
	// set to the next phase (freeze-and-copy for disk, suspend for memory).
	ContinuePreCopy(st IterationStat) bool

	// ExtentBlocks returns the extent coalescing limit to use right now for
	// the given phase; configured is Config.MaxExtentBlocks. The engine
	// clamps the result to what one frame can carry. Values <= 1 select the
	// paper's block-per-message format.
	ExtentBlocks(phase string, configured int) int

	// ObserveExtent feeds one completed extent send back: blocks coalesced,
	// wire bytes, and the time the read+send took.
	ObserveExtent(blocks int, wireBytes int64, d time.Duration)

	// CompressPayload reports whether a payload of the given type and size
	// is worth attempting to compress. Consulted only when the stream is
	// compressed (Config.CompressLevel != 0); a false verdict sends the
	// payload raw under the compression framing, which every compressed
	// destination accepts.
	CompressPayload(kind transport.MsgType, size int) bool

	// ObserveCompression reports a compression attempt's outcome: the raw
	// payload size and the size that went to the wire, compression framing
	// included (rawLen+1 when the payload was incompressible and sent raw
	// under its one-byte marker).
	ObserveCompression(kind transport.MsgType, rawLen, wireLen int)

	// PrecopyRate returns the pre-copy pacing in bytes/second; configured is
	// Config.BandwidthLimit (clock.Unlimited when uncapped). The cap applies
	// to pre-copy traffic only — freeze-and-copy and post-copy are never
	// throttled.
	PrecopyRate(configured int64) int64

	// DedupExtent reports whether the source should attempt content
	// deduplication — a hash-advert/want-bitmap round trip — for a disk
	// extent of the given phase and block count. Consulted only when
	// Config.Dedup was negotiated; a false verdict sends the extent
	// literally, which every dedup-negotiated destination accepts, so the
	// verdict is a local latency/bandwidth trade (tiny extents can cost
	// more in round trip than they save in bytes). All-zero runs are elided
	// regardless of the verdict — they need no round trip.
	DedupExtent(phase string, blocks int) bool

	// DeltaExtent reports whether the source should attempt delta encoding
	// — a signature-request round trip followed by a COPY/LITERAL patch —
	// for a disk extent of the given phase and block count. Consulted only
	// when Config.Delta was negotiated; a false verdict sends the extent
	// literally, which every delta-negotiated destination accepts, so the
	// verdict is a local trade: the round trip ships the destination's
	// signature (roughly a tenth of the extent) in the hope that the patch
	// saves far more, which pays off exactly when divergence is hot-block
	// rewrites rather than wholesale replacement. The source additionally
	// falls back to the literal whenever the computed patch is not smaller,
	// so the verdict gates cost, never correctness.
	DeltaExtent(phase string, blocks int) bool
}

// DefaultPolicy reproduces the paper's fixed behavior: stop conditions from
// the configured thresholds and budgets (§IV-A-1), the configured extent
// size, compression attempted on every payload, pacing from Config. The
// zero value is ready to use.
type DefaultPolicy struct{}

// ContinuePreCopy implements the paper's three stop conditions: dirty set
// below threshold, iteration budget exhausted, or the dirty rate catching up
// with the transfer rate (the set stopped shrinking).
func (DefaultPolicy) ContinuePreCopy(st IterationStat) bool {
	if st.Dirty <= st.Threshold {
		return false
	}
	if st.Iteration >= st.MaxIterations {
		return false
	}
	if st.Iteration > 1 && st.Dirty >= st.PrevDirty {
		return false
	}
	return true
}

// ExtentBlocks returns the configured limit unchanged.
func (DefaultPolicy) ExtentBlocks(_ string, configured int) int { return configured }

// ObserveExtent is a no-op.
func (DefaultPolicy) ObserveExtent(int, int64, time.Duration) {}

// CompressPayload always attempts compression, the seed's -compress behavior.
func (DefaultPolicy) CompressPayload(transport.MsgType, int) bool { return true }

// ObserveCompression is a no-op.
func (DefaultPolicy) ObserveCompression(transport.MsgType, int, int) {}

// PrecopyRate returns the configured cap unchanged.
func (DefaultPolicy) PrecopyRate(configured int64) int64 { return configured }

// DedupExtent always attempts deduplication once Config.Dedup is
// negotiated: the advert for even a single block costs 16 bytes plus a
// round trip against a 4 KiB literal saved on a hit.
func (DefaultPolicy) DedupExtent(string, int) bool { return true }

// DeltaExtent always attempts delta encoding once Config.Delta is
// negotiated: even a single 4 KiB block's signature round trip (~400
// bytes) wins whenever more than a tenth of the block survived, and the
// source's patch-vs-literal size check caps the loss when nothing did.
func (DefaultPolicy) DeltaExtent(string, int) bool { return true }

// AdaptivePolicy tunes the transfer from observations instead of constants:
//
//   - Extent growth (slow start): the coalescing limit starts at the
//     configured value and doubles after every adaptWindow full extents whose
//     measured wire rate kept improving, up to the frame-payload cap. On a
//     latency-bound link this converges on large extents within one pre-copy
//     iteration; if the measured rate collapses (a congested or
//     contention-limited link where big bursts hurt), the limit halves.
//   - Compression gating: per payload kind, attempts are skipped once the
//     observed shrink ratio shows the data is incompressible, then re-probed
//     periodically, so CPU is spent only where the link wins.
//   - Stop conditions and pacing follow DefaultPolicy — the adaptive layer
//     changes how bytes move, not the paper's phase semantics.
//
// The zero value is ready to use. Safe for concurrent use by one migration;
// do not share one instance between concurrent migrations.
type AdaptivePolicy struct {
	DefaultPolicy

	mu      sync.Mutex
	extent  int     // current coalescing limit (0 = uninitialized)
	inGrow  int     // full extents observed in the current growth window
	bestBps float64 // best observed extent wire rate

	comp map[transport.MsgType]*compStat
}

// adaptWindow is how many full extents must be observed at the current limit
// before it doubles.
const adaptWindow = 4

// adaptMaxExtent caps growth; the engine additionally clamps to the frame
// payload limit and the device size.
const adaptMaxExtent = 1 << 14

// compStat tracks compression outcomes for one payload kind.
type compStat struct {
	attempts int
	raw      int64
	wire     int64
	skipping bool
	skipped  int
}

// ExtentBlocks returns the adaptive coalescing limit, starting from the
// configured value.
func (p *AdaptivePolicy) ExtentBlocks(phase string, configured int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.extent == 0 {
		if configured < 1 {
			configured = 1
		}
		p.extent = configured
	}
	return p.extent
}

// ObserveExtent grows the limit while throughput keeps up and shrinks it
// when an extent's measured rate collapses.
func (p *AdaptivePolicy) ObserveExtent(blocks int, wireBytes int64, d time.Duration) {
	if d <= 0 {
		return
	}
	bps := float64(wireBytes) / d.Seconds()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.extent == 0 {
		p.extent = 1
	}
	if bps > p.bestBps {
		p.bestBps = bps
	}
	if blocks < p.extent {
		return // partial extent: run length, not the limit, bounded it
	}
	if p.bestBps > 0 && bps < p.bestBps/8 && p.extent > 1 {
		p.extent /= 2
		p.inGrow = 0
		return
	}
	p.inGrow++
	if p.inGrow >= adaptWindow && p.extent < adaptMaxExtent {
		p.extent *= 2
		p.inGrow = 0
	}
}

// compressionProbeEvery re-attempts compression after this many skipped
// payloads, so a phase change in the data (e.g. disk blocks → memory pages)
// is noticed.
const compressionProbeEvery = 256

// incompressibleRatio is the wire/raw ratio above which a payload kind is
// declared not worth compressing.
const incompressibleRatio = 0.95

// CompressPayload gates compression attempts per payload kind.
func (p *AdaptivePolicy) CompressPayload(kind transport.MsgType, size int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.comp[kind]
	if st == nil || !st.skipping {
		return true
	}
	st.skipped++
	if st.skipped >= compressionProbeEvery {
		// probe: reset the window and try again
		st.skipping, st.skipped = false, 0
		st.attempts, st.raw, st.wire = 0, 0, 0
		return true
	}
	return false
}

// ObserveCompression updates the per-kind shrink statistics.
func (p *AdaptivePolicy) ObserveCompression(kind transport.MsgType, rawLen, wireLen int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.comp == nil {
		p.comp = make(map[transport.MsgType]*compStat)
	}
	st := p.comp[kind]
	if st == nil {
		st = &compStat{}
		p.comp[kind] = st
	}
	st.attempts++
	st.raw += int64(rawLen)
	st.wire += int64(wireLen)
	if st.attempts >= 32 {
		st.skipping = float64(st.wire) >= incompressibleRatio*float64(st.raw)
		st.attempts, st.raw, st.wire = 0, 0, 0
		st.skipped = 0
	}
}
