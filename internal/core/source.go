package core

import (
	"fmt"
	"sync"
	"time"

	"bbmig/internal/bitmap"
	"bbmig/internal/blockdev"
	"bbmig/internal/metrics"
	"bbmig/internal/transport"
)

// MigrateSource runs the source side of a TPM migration over conn. initial
// selects the blocks to send in the first disk iteration: nil means the
// whole disk (primary migration); a bitmap from a previous migration's
// destination gate selects incremental migration (§V).
//
// The migration is a pipeline of named phases — handshake, disk pre-copy,
// memory pre-copy, freeze-and-copy, post-copy — each announced on
// cfg.OnEvent. With Config.MaxRetries and Redial set, the pipeline is
// resumable: progress is checkpointed at phase and iteration boundaries and
// a connection failure re-dials, re-negotiates the session, and re-enters
// the interrupted phase sending only the blocks still owed. On success the
// source VM is Stopped (the paper's finite source dependency: once MsgDone
// arrives, the source machine may be shut down) and the report carries every
// §III-A metric the source can observe.
func MigrateSource(cfg Config, host Host, conn transport.Conn, initial *bitmap.Bitmap) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	scheme := "TPM"
	if initial != nil {
		scheme = "IM"
	}
	tr, err := newTransfer(cfg, host, conn, scheme, "source")
	if err != nil {
		return &metrics.Report{Scheme: scheme}, err
	}
	s := &sourceRun{transfer: tr}
	rep, err := s.run(initial)
	tr.ev.finish(err)
	if err != nil {
		// best-effort abort notification
		_ = tr.conn.Send(transport.Message{Type: transport.MsgError, Payload: []byte(err.Error())})
		return rep, err
	}
	return rep, nil
}

// Pipeline cursor positions of the source run. The cursor advances as
// phases complete, and is where a resumed session re-enters.
const (
	curHandshake = iota
	curDisk
	curMem
	curFreeze
	curPost
	curDone
)

type sourceRun struct {
	*transfer

	rep     *metrics.Report
	initial *bitmap.Bitmap
	cursor  int
	journal Journal

	// Per-iteration pending bitmaps, kept while the session is resumable.
	// A send that "succeeds" into a socket buffer can still be lost with
	// the link, so the source's own cursor may run ahead of reality; on
	// reconnect the destination's ack is authoritative and the owed set is
	// rebuilt from these (minus what the destination confirms).
	diskIterBMs map[int]*bitmap.Bitmap
	memIterBMs  map[int]*bitmap.Bitmap

	// post-copy coordination (set by the reader goroutine)
	pullCh     chan int
	resumedCh  chan time.Duration // destination resume observed (clock time)
	doneCh     chan error
	readerDone chan struct{}
	wantCh     chan transport.Message // MsgHashWant replies (dedup sessions only)
	sigCh      chan transport.Message // MsgDeltaSig replies (delta sessions only)

	// Delta refusals (MsgDeltaPatch echoes) collected by the read loop.
	// A slice under a mutex, not a bounded channel: a dropped refusal would
	// leave the destination holding stale content for blocks the source
	// considers sent, so every one must survive until the fence drains it.
	deltaMu   sync.Mutex
	deltaNaks []uint64

	// freeze-and-copy state carried between phases (and across reconnects)
	freezeStart time.Duration
	freezePages *bitmap.Bitmap
	finalDirty  *bitmap.Bitmap
	suspended   bool

	// reconnect-derived shortcuts
	skipPush   bool   // destination reported fully synchronized: don't re-push
	doneSeen   bool   // a clean DONE was consumed while recovering
	epochTried uint32 // highest epoch ever offered; epochs must never repeat
}

func (s *sourceRun) run(initial *bitmap.Bitmap) (*metrics.Report, error) {
	dev := s.host.Backend.Device()
	mem := s.host.VM.Memory()
	rep := &metrics.Report{
		Scheme:      "TPM",
		DiskBytes:   blockdev.Capacity(dev),
		MemoryBytes: int64(mem.NumPages()) * int64(mem.PageSize()),
	}
	if initial != nil {
		rep.Scheme = "IM"
	}
	s.rep = rep
	s.initial = initial
	if s.cfg.MaxRetries > 0 {
		s.journal.Path = s.cfg.JournalPath
		s.ckpt = s.checkpoint
		s.resumeIter = make(map[string]*iterResume)
		s.diskIterBMs = make(map[int]*bitmap.Bitmap)
		s.memIterBMs = make(map[int]*bitmap.Bitmap)
	}

	attempt := 0
	for {
		err := s.runFromCursor()
		if err == nil {
			break
		}
		if !s.canResume(err) {
			return rep, err
		}
		redialed := false
		for attempt < s.cfg.MaxRetries {
			attempt++
			if rerr := s.reconnect(attempt); rerr == nil {
				redialed = true
				break
			}
		}
		if !redialed {
			return rep, fmt.Errorf("core: retries exhausted: %w", err)
		}
	}
	rep.TotalTime = s.clk.Now() - s.start
	rep.MigratedBytes = s.meter.BytesSent() + s.meter.BytesReceived()
	rep.DedupBlocks = s.dedupBlocks
	rep.DeltaBlocks = s.deltaBlocks

	// Finite dependency achieved: the source copy can be shut down.
	s.host.VM.Stop()
	return rep, nil
}

// runFromCursor executes the pipeline from the current cursor position,
// emitting the same phase events a straight-through run produces.
func (s *sourceRun) runFromCursor() error {
	for {
		switch s.cursor {
		case curHandshake:
			if err := s.phaseStep(PhaseHandshake, s.startup); err != nil {
				return err
			}
			s.cursor = curDisk
		case curDisk:
			// Pre-copy: disk first, then memory (§IV-B: "disk storage data
			// are pre-copied before memory copying because memory dirty rate
			// is much higher").
			if err := s.phaseStep(PhaseDiskPreCopy, func() error { return s.diskPreCopy(s.rep, s.initial) }); err != nil {
				return err
			}
			delete(s.resumeIter, PhaseDiskPreCopy)
			s.cursor = curMem
		case curMem:
			err := s.phaseStep(PhaseMemPreCopy, func() error {
				if err := s.memPreCopy(s.rep); err != nil {
					return err
				}
				s.rep.PreCopyTime = s.clk.Now() - s.start
				return nil
			})
			if err != nil {
				return err
			}
			delete(s.resumeIter, PhaseMemPreCopy)
			s.cursor = curFreeze
		case curFreeze:
			if err := s.phaseStep(PhaseFreezeCopy, func() error { return s.freezeAndCopy(s.rep) }); err != nil {
				return err
			}
			s.cursor = curPost
		case curPost:
			if err := s.phaseStep(PhasePostCopy, func() error { return s.postCopy(s.rep) }); err != nil {
				return err
			}
			s.cursor = curDone
		default:
			if s.ckpt != nil {
				_ = s.journal.Checkpoint(JournalState{Token: s.sess.token, Epoch: s.sess.epoch, Phase: "done"})
			}
			return nil
		}
	}
}

// phaseStep runs one named phase with its start/end events.
func (s *sourceRun) phaseStep(name string, fn func() error) error {
	s.ev.phaseStart(name)
	if err := fn(); err != nil {
		return err
	}
	s.ev.phaseEnd(name)
	return nil
}

// startup is the handshake phase body: the HELLO exchange plus starting the
// destination reader before any pull/ack traffic flows.
func (s *sourceRun) startup() error {
	if err := s.handshake(); err != nil {
		return err
	}
	s.pullCh = make(chan int, 1024)
	s.resumedCh = make(chan time.Duration, 1)
	s.doneCh = make(chan error, 1)
	if s.cfg.Dedup {
		s.wantCh = make(chan transport.Message, 8)
		s.awaitWant = s.waitWant
	}
	if s.cfg.Delta {
		s.sigCh = make(chan transport.Message, 8)
		s.awaitDeltaSig = s.waitDeltaSig
		s.takeDeltaNaks = s.takeNaks
	}
	s.startReader()
	return nil
}

// waitWant blocks until the destination's reply to the outstanding advert
// arrives. Replies whose Arg does not echo the advert are stale — left over
// from a connection epoch that died mid-round-trip — and are discarded. A
// destination failure surfaces through doneCh exactly as in post-copy.
func (s *sourceRun) waitWant(arg uint64) ([]byte, error) {
	for {
		select {
		case m := <-s.wantCh:
			if m.Arg != arg {
				m.Release() // stale epoch's reply, fully superseded
				continue
			}
			return m.Payload, nil
		case err := <-s.doneCh:
			if err == nil {
				err = fmt.Errorf("core: destination completed while an advert was outstanding")
			}
			return nil, err
		}
	}
}

// waitDeltaSig blocks until the destination's reply to the outstanding
// signature request (or fence) arrives; the same stale-epoch discipline as
// waitWant applies. Note a fence echo's Arg is deltaFenceArg (0), which a
// real signature reply can never carry.
func (s *sourceRun) waitDeltaSig(arg uint64) ([]byte, error) {
	for {
		select {
		case m := <-s.sigCh:
			if m.Arg != arg {
				m.Release() // stale epoch's reply, fully superseded
				continue
			}
			return m.Payload, nil
		case err := <-s.doneCh:
			if err == nil {
				err = fmt.Errorf("core: destination completed while a delta request was outstanding")
			}
			return nil, err
		}
	}
}

// takeNaks returns and clears the refusals collected since the last fence.
func (s *sourceRun) takeNaks() []uint64 {
	s.deltaMu.Lock()
	naks := s.deltaNaks
	s.deltaNaks = nil
	s.deltaMu.Unlock()
	return naks
}

func (s *sourceRun) startReader() {
	done := make(chan struct{})
	s.readerDone = done
	go s.readLoop(done)
}

// canResume reports whether err is a connection failure a negotiated
// resumable session can ride out.
func (s *sourceRun) canResume(err error) bool {
	return s.cfg.MaxRetries > 0 && s.cfg.Redial != nil &&
		s.sess.isResumable() && transport.IsConnError(err)
}

// checkpoint is the preCopyLoop hook: it records each iteration's pending
// set for reconnect reconciliation and mirrors the owed-block view to the
// journal. The journal's pending bitmap is always in disk blocks — the unit
// that survives a restart — so a cold resume can seed an incremental
// migration from it.
func (s *sourceRun) checkpoint(phase string, iter int, pending *bitmap.Bitmap) {
	switch phase {
	case PhaseDiskPreCopy:
		s.diskIterBMs[iter] = pending
	case PhaseMemPreCopy:
		s.memIterBMs[iter] = pending
	}
	st := JournalState{Token: s.sess.token, Epoch: s.sess.epoch, Phase: phase, Iter: iter}
	switch phase {
	case PhaseDiskPreCopy:
		st.Pending = pending.Clone()
		st.Pending.Union(s.host.Backend.DirtySnapshot())
	case PhaseMemPreCopy:
		st.Pending = s.host.Backend.DirtySnapshot()
	}
	_ = s.journal.Checkpoint(st)
}

// backoffFor doubles the base backoff per attempt, capped at 32x.
func (s *sourceRun) backoffFor(attempt int) time.Duration {
	shift := attempt - 1
	if shift > 5 {
		shift = 5
	}
	return s.cfg.RetryBackoff << shift
}

// reconnect tears down the dead link, re-dials, runs the session-resume
// exchange, and re-positions the pipeline from the destination's progress
// record so the next runFromCursor sends only what is still owed.
func (s *sourceRun) reconnect(attempt int) error {
	// Quiesce: kill the dead link so the reader unblocks, wait for it to
	// exit, and consume any failure it reported (a clean DONE is latched —
	// the migration may have completed under us).
	if s.swap != nil {
		s.swap.Current().Close()
	}
	if s.readerDone != nil {
		<-s.readerDone
		s.readerDone = nil
	}
	select {
	case err := <-s.doneCh:
		if err == nil {
			s.doneSeen = true
		}
	default:
	}
	// Drop advert replies from the dead epoch: the next runFromCursor
	// re-adverts whatever it re-sends, and the destination stages against
	// the newest advert only.
	for s.wantCh != nil {
		select {
		case <-s.wantCh:
			continue
		default:
		}
		break
	}
	// Same for delta signature replies; refusals from the dead epoch are
	// dropped too — their extents were never confirmed received, so the
	// owed-set reconciliation below re-sends them anyway.
	for s.sigCh != nil {
		select {
		case <-s.sigCh:
			continue
		default:
		}
		break
	}
	s.deltaMu.Lock()
	s.deltaNaks = nil
	s.deltaMu.Unlock()
	s.deltaPending = 0

	s.clk.Sleep(s.backoffFor(attempt))
	conn, err := s.cfg.Redial()
	if err != nil {
		return err
	}
	// Epochs advance per ATTEMPT, not per adopted session: if the
	// destination's ack was lost in flight, its lastEpoch moved while ours
	// did not, and re-offering the same epoch would be rejected as stale
	// forever.
	epoch := s.sess.epoch
	if s.epochTried > epoch {
		epoch = s.epochTried
	}
	epoch++
	s.epochTried = epoch
	if err := conn.Send(transport.ResumeFrame(s.sess.token, epoch)); err != nil {
		conn.Close()
		return err
	}
	// Watchdog: nothing in Conn carries a deadline, and a destination that
	// died (or whose listener accepted us into a backlog nobody serves)
	// would otherwise hang this Recv forever. Real time on purpose — this
	// guards against a hung peer, not a simulated one.
	watchdog := time.AfterFunc(resumeAckTimeout, func() { conn.Close() })
	ack, err := conn.Recv()
	watchdog.Stop()
	if err != nil {
		conn.Close()
		return err
	}
	if ack.Type != transport.MsgSessionAck || uint32(ack.Arg) != epoch {
		conn.Close()
		return fmt.Errorf("core: bad session ack (%v, epoch %d)", ack.Type, ack.Arg)
	}
	prog, err := parseDestProgress(ack.Payload)
	if err != nil {
		conn.Close()
		return err
	}
	s.swap.Rebind(conn)
	s.sess.mu.Lock()
	s.sess.epoch = epoch
	s.sess.gen++
	s.sess.mu.Unlock()
	s.rep.Retries++
	s.startReader()
	s.applyDestProgress(prog)
	s.ev.reconnected(int(epoch))
	return nil
}

// owedUnits rebuilds the set a phase still owes the destination: the union
// of every iteration the source started beyond what the destination reports
// fully received, minus the destination's transfer cursor. The cursor is
// subtracted from its own iteration's bitmap BEFORE unioning later ones: a
// block the destination confirms for iteration k can still be owed by
// iteration k+1, whose newer copy was swapped out of the dirty tracker and
// exists nowhere else.
func owedUnits(iterBMs map[int]*bitmap.Bitmap, destIters uint32, recvNum uint32, recv *bitmap.Bitmap) *bitmap.Bitmap {
	var owed *bitmap.Bitmap
	for iter, bm := range iterBMs {
		if iter <= int(destIters) {
			continue
		}
		cur := bm
		if recv != nil && uint32(iter) == recvNum && recvNum == destIters+1 && recv.Len() == bm.Len() {
			cur = bm.Clone()
			cur.Subtract(recv)
		}
		if owed == nil {
			owed = cur.Clone()
		} else {
			owed.Union(cur)
		}
	}
	return owed
}

// applyDestProgress re-positions the pipeline from the destination's ack.
// The destination is authoritative: sends that "succeeded" into a socket
// buffer may have died with the link, so the source's own cursor can be
// ahead of reality. The rules, earliest-need first:
//
//   - destination VM resumed/synced → post-copy only (its receive loops
//     have left pre-copy and would reject those frames);
//   - disk iterations it hasn't confirmed → rewind to disk pre-copy,
//     re-sending exactly the owed blocks;
//   - memory iterations it hasn't confirmed → (also) re-enter memory
//     pre-copy at the owed pages;
//   - freeze content unconfirmed (not resumed) → re-enter freeze-and-copy,
//     whose captured sets re-send verbatim.
func (s *sourceRun) applyDestProgress(p destProgress) {
	s.resumeIter = make(map[string]*iterResume)
	if p.flags&destResumed != 0 {
		if s.cursor < curPost {
			// The freeze phase completed even though the RESUMED
			// notification was lost with the link.
			if s.rep.Downtime == 0 {
				s.rep.Downtime = s.clk.Now() - s.freezeStart
			}
			s.ev.resumed()
			s.cursor = curPost
		}
		if p.flags&destSynced != 0 {
			// Every block is consistent; pushing again would address a
			// receive loop that has already exited. Wait for DONE only.
			s.skipPush = true
		}
		return
	}
	diskStarted := len(s.diskIterBMs) > 0
	memStarted := len(s.memIterBMs) > 0
	// Confirmed iterations can never be owed again: drop their bitmaps.
	// (Pruning only against confirmations — never against the source's own
	// send progress — because small iterations can sit wholly inside
	// socket buffers, letting the destination lag several iterations.)
	for iter := range s.diskIterBMs {
		if iter <= int(p.diskIters) {
			delete(s.diskIterBMs, iter)
		}
	}
	for iter := range s.memIterBMs {
		if iter <= int(p.memIters) {
			delete(s.memIterBMs, iter)
		}
	}
	// Pre-copy reconciliation. A phase the source has entered always has at
	// least one checkpointed iteration, so an empty map means "never
	// started" and the normal cursor path handles it.
	origCursor := s.cursor
	diskRewound := false
	if diskStarted && s.cursor >= curDisk {
		if owed := owedUnits(s.diskIterBMs, p.diskIters, p.recvDiskNum, p.recvDisk); owed != nil && owed.Any() {
			s.resumeIter[PhaseDiskPreCopy] = &iterResume{iter: int(p.diskIters) + 1, pending: owed}
			s.cursor = curDisk
			diskRewound = origCursor > curDisk
		} else if s.cursor == curDisk {
			// Mid-phase failure with nothing owed: re-enter at the next
			// iteration rather than restarting the phase from scratch.
			empty := bitmap.New(s.host.Backend.Device().NumBlocks())
			s.resumeIter[PhaseDiskPreCopy] = &iterResume{iter: int(p.diskIters) + 1, pending: empty}
		}
	}
	if memStarted && origCursor >= curMem {
		owed := owedUnits(s.memIterBMs, p.memIters, p.recvMemNum, p.recvMem)
		// Re-enter the memory phase only when something is owed, the
		// failure struck mid-phase, or a disk rewind will re-run the
		// pipeline through it anyway — never drag a clean freeze/post
		// cursor back through a no-op iteration (which would pollute the
		// iteration tables and PreCopyTime).
		if (owed != nil && owed.Any()) || origCursor == curMem || diskRewound {
			if owed == nil {
				owed = bitmap.New(s.host.VM.Memory().NumPages())
			}
			s.resumeIter[PhaseMemPreCopy] = &iterResume{iter: int(p.memIters) + 1, pending: owed}
			if s.cursor > curMem {
				s.cursor = curMem
			}
		}
	}
}

// freezeAndCopy suspends the VM and transfers the final dirty pages, CPU
// state, and the block-bitmap of all inconsistent blocks — the only disk
// state transferred during downtime (§IV-A-3). The phase ends when the
// destination reports the VM running, which bounds the measured downtime.
// On re-entry after a reconnect the VM is already suspended and the captured
// page/bitmap sets are re-sent verbatim; the destination applies duplicates
// idempotently.
func (s *sourceRun) freezeAndCopy(rep *metrics.Report) error {
	mem := s.host.VM.Memory()
	if !s.suspended {
		if s.cfg.OnFreeze != nil {
			s.cfg.OnFreeze()
		}
		s.freezeStart = s.clk.Now()
		if err := s.host.VM.Suspend(); err != nil {
			return fmt.Errorf("core: freeze: %w", err)
		}
		s.suspended = true
		s.ev.suspended()
	}
	if err := s.send(transport.Message{Type: transport.MsgSuspend}, false); err != nil {
		return err
	}
	// Remaining dirty memory pages and CPU state. The sets are captured
	// once — the VM is frozen, so they cannot grow — and retained for
	// re-sending if the link dies mid-phase.
	if s.freezePages == nil {
		s.freezePages = mem.SwapDirty()
		s.host.Backend.StopTracking()
		s.finalDirty = s.host.Backend.SwapDirty()
		if s.ckpt != nil {
			_ = s.journal.Checkpoint(JournalState{
				Token: s.sess.token, Epoch: s.sess.epoch,
				Phase: PhaseFreezeCopy, Pending: s.finalDirty,
			})
		}
	}
	nPages, pageBytes, err := s.sendPages(s.freezePages, false)
	if err != nil {
		return err
	}
	rep.MemIterations = append(rep.MemIterations, metrics.Iteration{
		Index: len(rep.MemIterations) + 1, Units: nPages, Bytes: pageBytes,
		Duration: s.clk.Now() - s.freezeStart,
	})
	cpu := s.host.VM.CPU()
	if err := s.send(transport.Message{Type: transport.MsgCPUState, Payload: cpu.Registers}, false); err != nil {
		return err
	}
	// The block-bitmap of all inconsistent blocks.
	bmBytes, err := s.finalDirty.MarshalBinary()
	if err != nil {
		return err
	}
	if err := s.send(transport.Message{Type: transport.MsgBitmap, Payload: bmBytes}, false); err != nil {
		return err
	}
	if err := s.send(transport.Message{Type: transport.MsgResume}, false); err != nil {
		return err
	}
	// Downtime ends when the destination reports the VM running.
	select {
	case at := <-s.resumedCh:
		rep.Downtime = at - s.freezeStart
		s.ev.resumed()
	case err := <-s.doneCh:
		if err == nil {
			err = fmt.Errorf("core: connection closed before resume")
		}
		return err
	}
	return nil
}

// postCopy pushes all blocks in the freeze bitmap, serving pulls
// preferentially (§IV-A-3), then waits for the destination's
// fully-synchronized acknowledgement. Re-entry after a reconnect re-pushes
// the whole freeze set: frames in flight when the link died are
// unconfirmed, and the destination gate drops duplicates as stale.
func (s *sourceRun) postCopy(rep *metrics.Report) error {
	postStart := s.clk.Now()
	if s.ckpt != nil {
		_ = s.journal.Checkpoint(JournalState{
			Token: s.sess.token, Epoch: s.sess.epoch,
			Phase: PhasePostCopy, Pending: s.finalDirty,
		})
	}
	if s.doneSeen {
		rep.PostCopyTime = s.clk.Now() - postStart
		return nil
	}
	if !s.skipPush {
		if err := s.pushBlocks(rep, s.finalDirty); err != nil {
			return err
		}
	}
	if err := <-s.doneCh; err != nil {
		return err
	}
	rep.PostCopyTime = s.clk.Now() - postStart
	return nil
}

// pushBlocks pushes every block of bm to the destination, serving queued
// pull requests first ("sends the pulled block preferentially"). Pull
// replies always travel as single blocks; the background push coalesces the
// remaining set into extents at the policy's live limit.
func (s *sourceRun) pushBlocks(rep *metrics.Report, bm *bitmap.Bitmap) error {
	dev := s.srcDev
	bs := dev.BlockSize()
	var buf []byte
	defer func() { transport.PutBuf(buf) }()
	sendExtent := func(e bitmap.Extent) error {
		if need := e.Count * bs; cap(buf) < need {
			transport.PutBuf(buf)
			buf = transport.GetBuf(need)
		}
		data := buf[:e.Count*bs]
		for k := 0; k < e.Count; k++ {
			if err := dev.ReadBlock(e.Start+k, data[k*bs:(k+1)*bs]); err != nil {
				return err
			}
		}
		return s.send(extentMessage(e, data), false)
	}
	remaining := bm.Clone()
	for {
		// Serve every queued pull first.
		for {
			select {
			case n := <-s.pullCh:
				if remaining.Test(n) { // not yet pushed
					if err := sendExtent(bitmap.Extent{Start: n, Count: 1}); err != nil {
						return err
					}
					remaining.Clear(n)
					rep.BlocksPulled++
					s.ev.pullServed(n)
				}
				continue
			default:
			}
			break
		}
		ext := remaining.NextExtent(0, s.extentBlocks(PhasePostCopy))
		if ext.Count == 0 {
			break
		}
		if err := sendExtent(ext); err != nil {
			return err
		}
		remaining.ClearRange(ext.Start, ext.End())
		rep.BlocksPushed += ext.Count
	}
	return s.send(transport.Message{Type: transport.MsgPushDone}, false)
}

// readLoop consumes destination → source messages for one connection epoch;
// it exits (closing done) on the first error so a reconnect can swap the
// link underneath without a stale reader stealing the new epoch's frames.
func (s *sourceRun) readLoop(done chan struct{}) {
	defer close(done)
	for {
		m, err := s.conn.Recv()
		if err != nil {
			s.doneCh <- fmt.Errorf("core: source read loop: %w", err)
			return
		}
		switch m.Type {
		case transport.MsgPullRequest:
			s.pullCh <- int(m.Arg)
		case transport.MsgHashWant:
			if s.wantCh == nil {
				s.doneCh <- fmt.Errorf("core: HASH_WANT on a session without dedup")
				return
			}
			// Non-blocking with drop-oldest: at most one advert is ever
			// outstanding, so anything already buffered is a stale epoch's
			// reply and the freshest frame is the one worth keeping.
			for {
				select {
				case s.wantCh <- m:
				default:
					select {
					case stale := <-s.wantCh:
						stale.Release()
					default:
					}
					continue
				}
				break
			}
		case transport.MsgDeltaSig:
			if s.sigCh == nil {
				s.doneCh <- fmt.Errorf("core: DELTA_SIG on a session without delta")
				return
			}
			// Same drop-oldest discipline as MsgHashWant: at most one
			// signature request (or fence) is ever outstanding.
			for {
				select {
				case s.sigCh <- m:
				default:
					select {
					case stale := <-s.sigCh:
						stale.Release()
					default:
					}
					continue
				}
				break
			}
		case transport.MsgDeltaPatch:
			// A refusal: the destination could not verify a patch and wants
			// the extent literally. Collected — never dropped — until the
			// pass's fence re-sends the content.
			if s.sigCh == nil {
				s.doneCh <- fmt.Errorf("core: DELTA_PATCH refusal on a session without delta")
				return
			}
			s.deltaMu.Lock()
			s.deltaNaks = append(s.deltaNaks, m.Arg)
			s.deltaMu.Unlock()
			m.Release()
		case transport.MsgResumed:
			// Non-blocking: a retried RESUMED after a reconnect may duplicate
			// one already latched.
			select {
			case s.resumedCh <- s.clk.Now():
			default:
			}
		case transport.MsgDone:
			s.doneCh <- nil
			return
		case transport.MsgError:
			s.doneCh <- fmt.Errorf("core: destination error: %s", m.Payload)
			return
		default:
			s.doneCh <- fmt.Errorf("core: unexpected message %v from destination", m.Type)
			return
		}
	}
}
