package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bbmig/internal/bitmap"
	"bbmig/internal/blockdev"
	"bbmig/internal/clock"
	"bbmig/internal/metrics"
	"bbmig/internal/transport"
)

// MigrateSource runs the source side of a TPM migration over conn. initial
// selects the blocks to send in the first disk iteration: nil means the
// whole disk (primary migration); a bitmap from a previous migration's
// destination gate selects incremental migration (§V).
//
// On success the source VM is Stopped (the paper's finite source dependency:
// once MsgDone arrives, the source machine may be shut down) and the report
// carries every §III-A metric the source can observe.
func MigrateSource(cfg Config, host Host, conn transport.Conn, initial *bitmap.Bitmap) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	s := &sourceRun{cfg: cfg, host: host, clk: cfg.Clock}
	s.meter = transport.NewMeter(conn)
	s.conn = s.meter
	if cfg.BandwidthLimit != clock.Unlimited {
		s.limiter = clock.NewRateLimiter(cfg.Clock, cfg.BandwidthLimit, cfg.BandwidthLimit/10)
	}
	rep, err := s.run(initial)
	if err != nil {
		// best-effort abort notification
		_ = s.conn.Send(transport.Message{Type: transport.MsgError, Payload: []byte(err.Error())})
		return rep, err
	}
	return rep, nil
}

type sourceRun struct {
	cfg     Config
	host    Host
	clk     clock.Clock
	conn    transport.Conn
	meter   *transport.Meter
	limiter *clock.RateLimiter

	// post-copy coordination (set by the reader goroutine)
	pullCh    chan int
	resumedCh chan time.Duration // destination resume observed (clock time)
	doneCh    chan error
}

// send transmits m, applying the pre-copy bandwidth cap when limited is true.
func (s *sourceRun) send(m transport.Message, limited bool) error {
	if limited && s.limiter != nil {
		s.limiter.Wait(m.FrameSize())
	}
	return s.conn.Send(m)
}

func (s *sourceRun) run(initial *bitmap.Bitmap) (*metrics.Report, error) {
	dev := s.host.Backend.Device()
	mem := s.host.VM.Memory()
	rep := &metrics.Report{
		Scheme:      "TPM",
		DiskBytes:   blockdev.Capacity(dev),
		MemoryBytes: int64(mem.NumPages()) * int64(mem.PageSize()),
	}
	if initial != nil {
		rep.Scheme = "IM"
	}
	start := s.clk.Now()

	// Initialization: handshake, ask the destination to prepare a VBD.
	geom := transport.Geometry{
		BlockSize: dev.BlockSize(), NumBlocks: dev.NumBlocks(),
		PageSize: mem.PageSize(), NumPages: mem.NumPages(),
	}
	gb, err := geom.MarshalBinary()
	if err != nil {
		return rep, err
	}
	if err := s.send(transport.Message{Type: transport.MsgHello, Arg: transport.ProtocolVersion, Payload: gb}, false); err != nil {
		return rep, err
	}
	ack, err := s.conn.Recv()
	if err != nil {
		return rep, fmt.Errorf("core: waiting for hello ack: %w", err)
	}
	if ack.Type != transport.MsgHelloAck {
		return rep, fmt.Errorf("core: unexpected handshake reply %v", ack.Type)
	}

	// Start the destination reader before any pull/ack traffic can flow.
	s.pullCh = make(chan int, 1024)
	s.resumedCh = make(chan time.Duration, 1)
	s.doneCh = make(chan error, 1)
	go s.readLoop()

	// --- Pre-copy phase: disk first, then memory (§IV-B: "disk storage
	// data are pre-copied before memory copying because memory dirty rate
	// is much higher"). ---
	if err := s.diskPreCopy(rep, initial); err != nil {
		return rep, err
	}
	if err := s.memPreCopy(rep); err != nil {
		return rep, err
	}
	rep.PreCopyTime = s.clk.Now() - start

	// --- Freeze-and-copy phase. ---
	if s.cfg.OnFreeze != nil {
		s.cfg.OnFreeze()
	}
	freezeStart := s.clk.Now()
	if err := s.host.VM.Suspend(); err != nil {
		return rep, fmt.Errorf("core: freeze: %w", err)
	}
	if err := s.send(transport.Message{Type: transport.MsgSuspend}, false); err != nil {
		return rep, err
	}
	// Remaining dirty memory pages and CPU state.
	finalPages := mem.SwapDirty()
	nPages, pageBytes, err := s.sendPages(finalPages, false)
	if err != nil {
		return rep, err
	}
	rep.MemIterations = append(rep.MemIterations, metrics.Iteration{
		Index: len(rep.MemIterations) + 1, Units: nPages, Bytes: pageBytes,
		Duration: s.clk.Now() - freezeStart,
	})
	cpu := s.host.VM.CPU()
	if err := s.send(transport.Message{Type: transport.MsgCPUState, Payload: cpu.Registers}, false); err != nil {
		return rep, err
	}
	// The block-bitmap of all inconsistent blocks — the only disk state
	// transferred during downtime (§IV-A-3).
	s.host.Backend.StopTracking()
	finalDirty := s.host.Backend.SwapDirty()
	bmBytes, err := finalDirty.MarshalBinary()
	if err != nil {
		return rep, err
	}
	if err := s.send(transport.Message{Type: transport.MsgBitmap, Payload: bmBytes}, false); err != nil {
		return rep, err
	}
	if err := s.send(transport.Message{Type: transport.MsgResume}, false); err != nil {
		return rep, err
	}
	// Downtime ends when the destination reports the VM running.
	select {
	case at := <-s.resumedCh:
		rep.Downtime = at - freezeStart
	case err := <-s.doneCh:
		if err == nil {
			err = fmt.Errorf("core: connection closed before resume")
		}
		return rep, err
	}

	// --- Post-copy phase: push all blocks in the bitmap, serving pulls
	// preferentially (§IV-A-3). ---
	postStart := s.clk.Now()
	if err := s.pushBlocks(rep, finalDirty); err != nil {
		return rep, err
	}
	// Wait for the destination's fully-synchronized acknowledgement.
	if err := <-s.doneCh; err != nil {
		return rep, err
	}
	rep.PostCopyTime = s.clk.Now() - postStart
	rep.TotalTime = s.clk.Now() - start
	rep.MigratedBytes = s.meter.BytesSent() + s.meter.BytesReceived()

	// Finite dependency achieved: the source copy can be shut down.
	s.host.VM.Stop()
	return rep, nil
}

// diskPreCopy runs the iterative disk copy. Iteration 1 sends the initial
// set (whole disk, or the incremental bitmap); iteration k sends the blocks
// dirtied during iteration k-1. Stop conditions: dirty set below threshold,
// iteration budget exhausted, or dirty rate outrunning transfer rate.
func (s *sourceRun) diskPreCopy(rep *metrics.Report, initial *bitmap.Bitmap) error {
	dev := s.host.Backend.Device()
	s.host.Backend.StartTracking()

	toSend := initial
	if toSend == nil {
		if alloc, ok := dev.(blockdev.Allocator); ok && s.cfg.SkipUnused {
			toSend = alloc.AllocatedBitmap()
		} else {
			toSend = bitmap.NewAllSet(dev.NumBlocks())
		}
	}
	prevSent := toSend.Count()
	for iter := 1; ; iter++ {
		iterStart := s.clk.Now()
		if err := s.send(transport.Message{Type: transport.MsgIterStart, Arg: uint64(iter)}, true); err != nil {
			return err
		}
		sent, bytes, err := s.sendBlocks(toSend)
		if err != nil {
			return err
		}
		if err := s.send(transport.Message{Type: transport.MsgIterEnd, Arg: uint64(sent)}, true); err != nil {
			return err
		}
		iterDur := s.clk.Now() - iterStart
		dirtyNow := s.host.Backend.DirtyCount()
		rep.DiskIterations = append(rep.DiskIterations, metrics.Iteration{
			Index: iter, Units: sent, Bytes: bytes, Duration: iterDur, DirtyEnd: dirtyNow,
		})

		// Stop conditions. The remaining dirty blocks stay in the backend
		// bitmap and ride to the destination in freeze-and-copy.
		if dirtyNow <= s.cfg.DiskDirtyThreshold {
			return nil
		}
		if iter >= s.cfg.MaxDiskIters {
			return nil
		}
		// Proactive stop: the dirty set stopped shrinking, so the dirty
		// rate has caught up with the transfer rate (§IV-A-1).
		if iter > 1 && dirtyNow >= prevSent {
			return nil
		}
		prevSent = dirtyNow
		toSend = s.host.Backend.SwapDirty()
	}
}

// sendBlocks streams every block marked in bm and returns the count and
// payload wire bytes. With Workers or MaxExtentBlocks above one, contiguous
// dirty runs are coalesced into extents and pipelined through a read→send
// worker pool; the default configuration takes the sequential per-block path
// below, which is wire-identical to the seed protocol.
func (s *sourceRun) sendBlocks(bm *bitmap.Bitmap) (int, int64, error) {
	if s.cfg.Workers <= 1 && s.cfg.MaxExtentBlocks <= 1 {
		dev := s.host.Backend.Device()
		buf := make([]byte, dev.BlockSize())
		sent := 0
		var bytes int64
		var fail error
		bm.ForEachSet(func(n int) bool {
			if err := dev.ReadBlock(n, buf); err != nil {
				fail = err
				return false
			}
			m := transport.Message{Type: transport.MsgBlockData, Arg: uint64(n), Payload: buf}
			if err := s.send(m, true); err != nil {
				fail = err
				return false
			}
			sent++
			bytes += int64(m.FrameSize())
			return true
		})
		return sent, bytes, fail
	}
	return s.sendExtents(bm)
}

// effectiveMaxExtent bounds the configured coalescing limit by what one
// frame may carry (MaxPayload, minus one byte for the marker a Compressed
// decorator prepends to incompressible payloads) and what the device holds,
// so an oversized MaxExtentBlocks can neither demand absurd staging buffers
// nor produce unencodable frames.
func effectiveMaxExtent(maxExt int, dev blockdev.Device) int {
	if limit := (transport.MaxPayload - 1) / dev.BlockSize(); maxExt > limit {
		maxExt = limit
	}
	if n := dev.NumBlocks(); maxExt > n {
		maxExt = n
	}
	if maxExt < 1 {
		maxExt = 1
	}
	return maxExt
}

// extentMessage frames one extent's data. Single-block extents keep the
// seed's MsgBlockData form so extent coalescing alone never changes how a
// lone block looks on the wire.
func extentMessage(e bitmap.Extent, data []byte) transport.Message {
	if e.Count == 1 {
		return transport.Message{Type: transport.MsgBlockData, Arg: uint64(e.Start), Payload: data}
	}
	return transport.Message{Type: transport.MsgExtent, Arg: transport.ExtentArg(e.Start, e.Count), Payload: data}
}

// firstErr latches the first error a worker pool hits.
type firstErr struct {
	failed atomic.Bool
	mu     sync.Mutex
	err    error
}

func (f *firstErr) set(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
		f.failed.Store(true)
	}
	f.mu.Unlock()
}

func (f *firstErr) get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// sendExtents fans bm's coalesced extents across cfg.Workers goroutines,
// each reading an extent from the device and sending it, so device reads,
// optional compression, and transport writes of different extents overlap.
// Within one iteration every block number appears at most once, so the
// destination may apply the extents in any order; the engine's control
// frames bound the iteration on both sides.
func (s *sourceRun) sendExtents(bm *bitmap.Bitmap) (int, int64, error) {
	dev := s.host.Backend.Device()
	bs := dev.BlockSize()
	maxExt := effectiveMaxExtent(s.cfg.MaxExtentBlocks, dev)
	workers := s.cfg.Workers
	jobs := make(chan bitmap.Extent, workers*2)
	var sent, bytes atomic.Int64
	var fail firstErr
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, maxExt*bs)
			for ext := range jobs {
				if fail.failed.Load() {
					continue // drain the queue so the producer never blocks
				}
				data := buf[:ext.Count*bs]
				readOK := true
				for k := 0; k < ext.Count; k++ {
					if err := dev.ReadBlock(ext.Start+k, data[k*bs:(k+1)*bs]); err != nil {
						fail.set(err)
						readOK = false
						break
					}
				}
				if !readOK {
					continue
				}
				m := extentMessage(ext, data)
				if err := s.send(m, true); err != nil {
					fail.set(err)
					continue
				}
				sent.Add(int64(ext.Count))
				bytes.Add(int64(m.FrameSize()))
			}
		}()
	}
	bm.ForEachExtent(maxExt, func(e bitmap.Extent) bool {
		jobs <- e
		return !fail.failed.Load()
	})
	close(jobs)
	wg.Wait()
	return int(sent.Load()), bytes.Load(), fail.get()
}

// memPreCopy runs the Xen-style iterative memory pre-copy: iteration 1 sends
// every page, later iterations send pages dirtied during the previous one.
func (s *sourceRun) memPreCopy(rep *metrics.Report) error {
	mem := s.host.VM.Memory()
	mem.StartTracking()

	toSend := bitmap.NewAllSet(mem.NumPages())
	prevSent := toSend.Count()
	for iter := 1; ; iter++ {
		iterStart := s.clk.Now()
		if err := s.send(transport.Message{Type: transport.MsgMemIterStart, Arg: uint64(iter)}, true); err != nil {
			return err
		}
		sent, bytes, err := s.sendPages(toSend, true)
		if err != nil {
			return err
		}
		if err := s.send(transport.Message{Type: transport.MsgMemIterEnd, Arg: uint64(sent)}, true); err != nil {
			return err
		}
		dirtyNow := mem.DirtyCount()
		rep.MemIterations = append(rep.MemIterations, metrics.Iteration{
			Index: iter, Units: sent, Bytes: bytes,
			Duration: s.clk.Now() - iterStart, DirtyEnd: dirtyNow,
		})
		if dirtyNow <= s.cfg.MemDirtyThreshold || iter >= s.cfg.MaxMemIters {
			return nil
		}
		if iter > 1 && dirtyNow >= prevSent {
			return nil // writable working set reached; suspend handles the rest
		}
		prevSent = dirtyNow
		toSend = mem.SwapDirty()
	}
}

// sendPages streams every page marked in bm.
func (s *sourceRun) sendPages(bm *bitmap.Bitmap, limited bool) (int, int64, error) {
	mem := s.host.VM.Memory()
	buf := make([]byte, mem.PageSize())
	sent := 0
	var bytes int64
	var fail error
	bm.ForEachSet(func(n int) bool {
		if err := mem.ReadPage(n, buf); err != nil {
			fail = err
			return false
		}
		m := transport.Message{Type: transport.MsgMemPage, Arg: uint64(n), Payload: buf}
		if err := s.send(m, limited); err != nil {
			fail = err
			return false
		}
		sent++
		bytes += int64(m.FrameSize())
		return true
	})
	return sent, bytes, fail
}

// pushBlocks pushes every block of bm to the destination, serving queued
// pull requests first ("sends the pulled block preferentially"). Pull
// replies always travel as single blocks; the background push coalesces the
// remaining set into extents of up to MaxExtentBlocks.
func (s *sourceRun) pushBlocks(rep *metrics.Report, bm *bitmap.Bitmap) error {
	dev := s.host.Backend.Device()
	bs := dev.BlockSize()
	maxExt := effectiveMaxExtent(s.cfg.MaxExtentBlocks, dev)
	buf := make([]byte, maxExt*bs)
	sendExtent := func(e bitmap.Extent) error {
		data := buf[:e.Count*bs]
		for k := 0; k < e.Count; k++ {
			if err := dev.ReadBlock(e.Start+k, data[k*bs:(k+1)*bs]); err != nil {
				return err
			}
		}
		return s.send(extentMessage(e, data), false)
	}
	remaining := bm.Clone()
	for {
		// Serve every queued pull first.
		for {
			select {
			case n := <-s.pullCh:
				if remaining.Test(n) { // not yet pushed
					if err := sendExtent(bitmap.Extent{Start: n, Count: 1}); err != nil {
						return err
					}
					remaining.Clear(n)
					rep.BlocksPulled++
				}
				continue
			default:
			}
			break
		}
		ext := remaining.NextExtent(0, maxExt)
		if ext.Count == 0 {
			break
		}
		if err := sendExtent(ext); err != nil {
			return err
		}
		remaining.ClearRange(ext.Start, ext.End())
		rep.BlocksPushed += ext.Count
	}
	return s.send(transport.Message{Type: transport.MsgPushDone}, false)
}

// readLoop consumes destination → source messages for the whole migration.
func (s *sourceRun) readLoop() {
	for {
		m, err := s.conn.Recv()
		if err != nil {
			s.doneCh <- fmt.Errorf("core: source read loop: %w", err)
			return
		}
		switch m.Type {
		case transport.MsgPullRequest:
			s.pullCh <- int(m.Arg)
		case transport.MsgResumed:
			s.resumedCh <- s.clk.Now()
		case transport.MsgDone:
			s.doneCh <- nil
			return
		case transport.MsgError:
			s.doneCh <- fmt.Errorf("core: destination error: %s", m.Payload)
			return
		default:
			s.doneCh <- fmt.Errorf("core: unexpected message %v from destination", m.Type)
			return
		}
	}
}
