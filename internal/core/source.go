package core

import (
	"fmt"
	"time"

	"bbmig/internal/bitmap"
	"bbmig/internal/blockdev"
	"bbmig/internal/metrics"
	"bbmig/internal/transport"
)

// MigrateSource runs the source side of a TPM migration over conn. initial
// selects the blocks to send in the first disk iteration: nil means the
// whole disk (primary migration); a bitmap from a previous migration's
// destination gate selects incremental migration (§V).
//
// The migration is a pipeline of named phases — handshake, disk pre-copy,
// memory pre-copy, freeze-and-copy, post-copy — each announced on
// cfg.OnEvent. On success the source VM is Stopped (the paper's finite
// source dependency: once MsgDone arrives, the source machine may be shut
// down) and the report carries every §III-A metric the source can observe.
func MigrateSource(cfg Config, host Host, conn transport.Conn, initial *bitmap.Bitmap) (*metrics.Report, error) {
	cfg = cfg.withDefaults()
	scheme := "TPM"
	if initial != nil {
		scheme = "IM"
	}
	tr, err := newTransfer(cfg, host, conn, scheme, "source")
	if err != nil {
		return &metrics.Report{Scheme: scheme}, err
	}
	s := &sourceRun{transfer: tr}
	rep, err := s.run(initial)
	tr.ev.finish(err)
	if err != nil {
		// best-effort abort notification
		_ = tr.conn.Send(transport.Message{Type: transport.MsgError, Payload: []byte(err.Error())})
		return rep, err
	}
	return rep, nil
}

type sourceRun struct {
	*transfer

	// post-copy coordination (set by the reader goroutine)
	pullCh    chan int
	resumedCh chan time.Duration // destination resume observed (clock time)
	doneCh    chan error

	// freeze-and-copy state carried between phases
	freezeStart time.Duration
	finalDirty  *bitmap.Bitmap
}

func (s *sourceRun) run(initial *bitmap.Bitmap) (*metrics.Report, error) {
	dev := s.host.Backend.Device()
	mem := s.host.VM.Memory()
	rep := &metrics.Report{
		Scheme:      "TPM",
		DiskBytes:   blockdev.Capacity(dev),
		MemoryBytes: int64(mem.NumPages()) * int64(mem.PageSize()),
	}
	if initial != nil {
		rep.Scheme = "IM"
	}

	err := s.runPhases(
		phase{PhaseHandshake, func() error {
			if err := s.handshake(); err != nil {
				return err
			}
			// Start the destination reader before any pull/ack traffic flows.
			s.pullCh = make(chan int, 1024)
			s.resumedCh = make(chan time.Duration, 1)
			s.doneCh = make(chan error, 1)
			go s.readLoop()
			return nil
		}},
		// Pre-copy: disk first, then memory (§IV-B: "disk storage data are
		// pre-copied before memory copying because memory dirty rate is much
		// higher").
		phase{PhaseDiskPreCopy, func() error { return s.diskPreCopy(rep, initial) }},
		phase{PhaseMemPreCopy, func() error {
			if err := s.memPreCopy(rep); err != nil {
				return err
			}
			rep.PreCopyTime = s.clk.Now() - s.start
			return nil
		}},
		phase{PhaseFreezeCopy, func() error { return s.freezeAndCopy(rep) }},
		phase{PhasePostCopy, func() error { return s.postCopy(rep) }},
	)
	if err != nil {
		return rep, err
	}
	rep.TotalTime = s.clk.Now() - s.start
	rep.MigratedBytes = s.meter.BytesSent() + s.meter.BytesReceived()

	// Finite dependency achieved: the source copy can be shut down.
	s.host.VM.Stop()
	return rep, nil
}

// freezeAndCopy suspends the VM and transfers the final dirty pages, CPU
// state, and the block-bitmap of all inconsistent blocks — the only disk
// state transferred during downtime (§IV-A-3). The phase ends when the
// destination reports the VM running, which bounds the measured downtime.
func (s *sourceRun) freezeAndCopy(rep *metrics.Report) error {
	mem := s.host.VM.Memory()
	if s.cfg.OnFreeze != nil {
		s.cfg.OnFreeze()
	}
	s.freezeStart = s.clk.Now()
	if err := s.host.VM.Suspend(); err != nil {
		return fmt.Errorf("core: freeze: %w", err)
	}
	s.ev.suspended()
	if err := s.send(transport.Message{Type: transport.MsgSuspend}, false); err != nil {
		return err
	}
	// Remaining dirty memory pages and CPU state.
	finalPages := mem.SwapDirty()
	nPages, pageBytes, err := s.sendPages(finalPages, false)
	if err != nil {
		return err
	}
	rep.MemIterations = append(rep.MemIterations, metrics.Iteration{
		Index: len(rep.MemIterations) + 1, Units: nPages, Bytes: pageBytes,
		Duration: s.clk.Now() - s.freezeStart,
	})
	cpu := s.host.VM.CPU()
	if err := s.send(transport.Message{Type: transport.MsgCPUState, Payload: cpu.Registers}, false); err != nil {
		return err
	}
	// The block-bitmap of all inconsistent blocks.
	s.host.Backend.StopTracking()
	s.finalDirty = s.host.Backend.SwapDirty()
	bmBytes, err := s.finalDirty.MarshalBinary()
	if err != nil {
		return err
	}
	if err := s.send(transport.Message{Type: transport.MsgBitmap, Payload: bmBytes}, false); err != nil {
		return err
	}
	if err := s.send(transport.Message{Type: transport.MsgResume}, false); err != nil {
		return err
	}
	// Downtime ends when the destination reports the VM running.
	select {
	case at := <-s.resumedCh:
		rep.Downtime = at - s.freezeStart
		s.ev.resumed()
	case err := <-s.doneCh:
		if err == nil {
			err = fmt.Errorf("core: connection closed before resume")
		}
		return err
	}
	return nil
}

// postCopy pushes all blocks in the freeze bitmap, serving pulls
// preferentially (§IV-A-3), then waits for the destination's
// fully-synchronized acknowledgement.
func (s *sourceRun) postCopy(rep *metrics.Report) error {
	postStart := s.clk.Now()
	if err := s.pushBlocks(rep, s.finalDirty); err != nil {
		return err
	}
	if err := <-s.doneCh; err != nil {
		return err
	}
	rep.PostCopyTime = s.clk.Now() - postStart
	return nil
}

// pushBlocks pushes every block of bm to the destination, serving queued
// pull requests first ("sends the pulled block preferentially"). Pull
// replies always travel as single blocks; the background push coalesces the
// remaining set into extents at the policy's live limit.
func (s *sourceRun) pushBlocks(rep *metrics.Report, bm *bitmap.Bitmap) error {
	dev := s.host.Backend.Device()
	bs := dev.BlockSize()
	var buf []byte
	sendExtent := func(e bitmap.Extent) error {
		if need := e.Count * bs; cap(buf) < need {
			buf = make([]byte, need)
		}
		data := buf[:e.Count*bs]
		for k := 0; k < e.Count; k++ {
			if err := dev.ReadBlock(e.Start+k, data[k*bs:(k+1)*bs]); err != nil {
				return err
			}
		}
		return s.send(extentMessage(e, data), false)
	}
	remaining := bm.Clone()
	for {
		// Serve every queued pull first.
		for {
			select {
			case n := <-s.pullCh:
				if remaining.Test(n) { // not yet pushed
					if err := sendExtent(bitmap.Extent{Start: n, Count: 1}); err != nil {
						return err
					}
					remaining.Clear(n)
					rep.BlocksPulled++
					s.ev.pullServed(n)
				}
				continue
			default:
			}
			break
		}
		ext := remaining.NextExtent(0, s.extentBlocks(PhasePostCopy))
		if ext.Count == 0 {
			break
		}
		if err := sendExtent(ext); err != nil {
			return err
		}
		remaining.ClearRange(ext.Start, ext.End())
		rep.BlocksPushed += ext.Count
	}
	return s.send(transport.Message{Type: transport.MsgPushDone}, false)
}

// readLoop consumes destination → source messages for the whole migration.
func (s *sourceRun) readLoop() {
	for {
		m, err := s.conn.Recv()
		if err != nil {
			s.doneCh <- fmt.Errorf("core: source read loop: %w", err)
			return
		}
		switch m.Type {
		case transport.MsgPullRequest:
			s.pullCh <- int(m.Arg)
		case transport.MsgResumed:
			s.resumedCh <- s.clk.Now()
		case transport.MsgDone:
			s.doneCh <- nil
			return
		case transport.MsgError:
			s.doneCh <- fmt.Errorf("core: destination error: %s", m.Payload)
			return
		default:
			s.doneCh <- fmt.Errorf("core: unexpected message %v from destination", m.Type)
			return
		}
	}
}
