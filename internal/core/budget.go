package core

import (
	"fmt"
	"sync"
	"time"

	"bbmig/internal/clock"
	"bbmig/internal/transport"
)

// RateBudget divides a global pre-copy bandwidth budget among the
// migrations currently drawing from it. The cluster orchestrator creates one
// budget per fleet and gives every migration it schedules a BudgetPolicy
// pointing at it: each migration's pacing becomes total/active, re-read
// live, so admitting or completing a migration immediately re-shares the
// bandwidth among the survivors without restarting anyone's limiter.
//
// A RateBudget is safe for concurrent use; unlike a Policy, sharing one
// instance between concurrent migrations is the whole point.
type RateBudget struct {
	mu     sync.Mutex
	total  int64 // bytes/second; clock.Unlimited disables the budget
	active int   // migrations currently drawing a share
}

// NewRateBudget returns a budget of total bytes/second. A total <= 0 means
// unlimited: the budget admits everyone and shares nothing.
func NewRateBudget(total int64) *RateBudget {
	if total <= 0 {
		total = clock.Unlimited
	}
	return &RateBudget{total: total}
}

// Join registers one migration as drawing from the budget and returns the
// matching release function. Call Join before the migration starts and the
// release after it ends (in error paths too); the release is idempotent.
func (b *RateBudget) Join() (leave func()) {
	b.mu.Lock()
	b.active++
	b.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			b.mu.Lock()
			b.active--
			if b.active < 0 {
				panic(fmt.Sprintf("core: rate budget released %d times", -b.active))
			}
			b.mu.Unlock()
		})
	}
}

// Active reports how many migrations currently draw from the budget.
func (b *RateBudget) Active() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.active
}

// Total returns the budget's global rate in bytes/second (clock.Unlimited
// when the budget is disabled).
func (b *RateBudget) Total() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// SetTotal changes the global rate. A total <= 0 disables the budget. Every
// migration drawing from the budget sees the new share on its next frame.
func (b *RateBudget) SetTotal(total int64) {
	if total <= 0 {
		total = clock.Unlimited
	}
	b.mu.Lock()
	b.total = total
	b.mu.Unlock()
}

// Share returns the per-migration rate right now: total divided by the
// active draw count (at least one, so a migration that forgot to Join still
// gets a sane cap). An unlimited budget returns clock.Unlimited.
func (b *RateBudget) Share() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.total == clock.Unlimited {
		return clock.Unlimited
	}
	n := b.active
	if n < 1 {
		n = 1
	}
	return b.total / int64(n)
}

// BudgetPolicy decorates an inner Policy so the migration's pre-copy pacing
// follows a shared RateBudget: PrecopyRate returns the smaller of the inner
// policy's verdict and the live budget share. Every other decision delegates
// to the inner policy (nil selects DefaultPolicy).
//
// The engine re-consults PrecopyRate on every paced frame, so share changes
// (migrations joining or leaving the budget) take effect mid-iteration. One
// BudgetPolicy instance per migration, as with any Policy; only the
// RateBudget behind it is shared.
type BudgetPolicy struct {
	// Inner is the decorated policy; nil selects DefaultPolicy.
	Inner Policy
	// Budget is the shared allocator. A nil Budget makes the decorator a
	// pass-through.
	Budget *RateBudget
}

// inner returns the decorated policy, defaulting to DefaultPolicy.
func (p *BudgetPolicy) inner() Policy {
	if p.Inner == nil {
		return DefaultPolicy{}
	}
	return p.Inner
}

// ContinuePreCopy delegates to the inner policy.
func (p *BudgetPolicy) ContinuePreCopy(st IterationStat) bool {
	return p.inner().ContinuePreCopy(st)
}

// ExtentBlocks delegates to the inner policy.
func (p *BudgetPolicy) ExtentBlocks(phase string, configured int) int {
	return p.inner().ExtentBlocks(phase, configured)
}

// ObserveExtent delegates to the inner policy.
func (p *BudgetPolicy) ObserveExtent(blocks int, wireBytes int64, d time.Duration) {
	p.inner().ObserveExtent(blocks, wireBytes, d)
}

// CompressPayload delegates to the inner policy.
func (p *BudgetPolicy) CompressPayload(kind transport.MsgType, size int) bool {
	return p.inner().CompressPayload(kind, size)
}

// ObserveCompression delegates to the inner policy.
func (p *BudgetPolicy) ObserveCompression(kind transport.MsgType, rawLen, wireLen int) {
	p.inner().ObserveCompression(kind, rawLen, wireLen)
}

// DedupExtent delegates to the inner policy.
func (p *BudgetPolicy) DedupExtent(phase string, blocks int) bool {
	return p.inner().DedupExtent(phase, blocks)
}

// DeltaExtent delegates to the inner policy.
func (p *BudgetPolicy) DeltaExtent(phase string, blocks int) bool {
	return p.inner().DeltaExtent(phase, blocks)
}

// PrecopyRate returns min(inner verdict, live budget share). Note the
// engine only honours live rate changes when the migration starts with a
// finite rate (a limiter must exist to retune); a finite RateBudget
// guarantees that.
func (p *BudgetPolicy) PrecopyRate(configured int64) int64 {
	rate := p.inner().PrecopyRate(configured)
	if p.Budget == nil {
		return rate
	}
	if share := p.Budget.Share(); share < rate {
		return share
	}
	return rate
}
