package core

import (
	"fmt"
	"sync"
	"time"

	"bbmig/internal/bitmap"
	"bbmig/internal/blkback"
	"bbmig/internal/metrics"
	"bbmig/internal/transport"
	"bbmig/internal/vm"
)

// DestResult is what a completed destination-side migration hands back.
type DestResult struct {
	// Report carries the destination's view of the run.
	Report *metrics.Report
	// Gate is the post-copy gate, fully synchronized. Its FreshBitmap is
	// the input to an incremental migration back (§V).
	Gate *blkback.PostCopyGate
	// CPU is the received CPU state (also installed into the VM).
	CPU vm.CPUState
}

// MigrateDest runs the destination side of a TPM migration over conn. host
// provides the prepared VBD (via its Backend) and the VM shell that will
// receive memory, CPU state, and eventually run. The function returns once
// the local disk is fully synchronized with the (now stopped) source.
//
// Like the source, the destination is a phase pipeline — handshake, pre-copy
// receive, post-copy — announced on cfg.OnEvent, so a host daemon can report
// the live state of an inbound migration.
func MigrateDest(cfg Config, host Host, conn transport.Conn) (*DestResult, error) {
	cfg = cfg.withDefaults()
	tr, err := newTransfer(cfg, host, conn, "TPM-dest", "dest")
	if err != nil {
		return &DestResult{Report: &metrics.Report{Scheme: "TPM-dest"}}, err
	}
	d := &destRun{transfer: tr}
	res, err := d.run()
	tr.ev.finish(err)
	if err != nil {
		_ = tr.conn.Send(transport.Message{Type: transport.MsgError, Payload: []byte(err.Error())})
		return res, err
	}
	return res, nil
}

type destRun struct {
	*transfer

	sc          *scatterPool
	dd          *destDedup     // content-dedup session (nil unless negotiated)
	deltaBlocks int            // blocks landed as delta patches (Report.DeltaBlocks)
	transferred *bitmap.Bitmap // the freeze bitmap, set during pre-copy receive
	postStart   time.Duration

	// prog is the pipeline position reported to a reconnecting source in
	// the session ack — the destination's half of the agreement on which
	// blocks are still owed. Guarded by progMu: the receive loop updates it
	// while a concurrent pull-send may be recovering the connection.
	progMu sync.Mutex
	prog   destProgress
}

// progressSnapshot implements the transfer.destState callback. The cursor
// bitmaps are cloned: the receive loop may keep applying frames (one-sided
// failure) while another goroutine marshals the snapshot.
func (d *destRun) progressSnapshot() destProgress {
	d.progMu.Lock()
	defer d.progMu.Unlock()
	p := d.prog
	if p.recvDisk != nil {
		p.recvDisk = p.recvDisk.Clone()
	}
	if p.recvMem != nil {
		p.recvMem = p.recvMem.Clone()
	}
	return p
}

// noteRecvBlocks records blocks received for the in-flight disk iteration.
// Out-of-range frames are left for the apply path to reject.
func (d *destRun) noteRecvBlocks(lo, hi int) {
	d.progMu.Lock()
	if bm := d.prog.recvDisk; bm != nil && lo >= 0 && hi <= bm.Len() && lo < hi {
		bm.SetRange(lo, hi)
	}
	d.progMu.Unlock()
}

// noteProgress applies one update to the progress record.
func (d *destRun) noteProgress(fn func(*destProgress)) {
	d.progMu.Lock()
	fn(&d.prog)
	d.progMu.Unlock()
}

func (d *destRun) run() (*DestResult, error) {
	rep := &metrics.Report{Scheme: "TPM-dest"}
	res := &DestResult{Report: rep}
	d.destState = d.progressSnapshot
	if d.cfg.Dedup {
		dd, err := newDestDedup(d.cfg, d.host.Backend.Device())
		if err != nil {
			return res, err
		}
		d.dd = dd
		if d.cfg.Swarm && len(d.cfg.SwarmPeers) > 0 {
			// Peers that fail to dial or refuse the hello drop out here;
			// losing all of them just leaves the session single-source.
			dd.swarm = dialSwarm(d.cfg, dd.self, d.host.Backend.Device().BlockSize())
			if dd.swarm != nil {
				defer dd.swarm.close()
			}
		}
	}

	// Data frames are handed to the scatter pool; every control frame drains
	// it first, so iteration boundaries order cross-iteration rewrites
	// exactly as the sequential loop did.
	d.sc = newScatterPool(d.cfg.Workers)
	defer d.sc.close()

	err := d.runPhases(
		phase{PhaseHandshake, d.acceptHandshake},
		phase{PhaseDiskPreCopy, d.preCopyReceive},
		phase{PhasePostCopy, func() error { return d.postCopyReceive(res) }},
	)
	if err != nil {
		return res, err
	}

	if d.dd != nil {
		rep.DedupBlocks = d.dd.refs
		rep.SwarmBlocks = d.dd.swarmBlocks
	}
	rep.DeltaBlocks = d.deltaBlocks
	gs := res.Gate.Stats()
	rep.PostCopyTime = d.clk.Now() - d.postStart
	rep.TotalTime = d.clk.Now() - d.start
	rep.MigratedBytes = d.meter.BytesSent() + d.meter.BytesReceived()
	rep.BlocksPulled = int(gs.Pulls)
	rep.StalePushes = int(gs.StalePushes)
	rep.ReadStallTime = gs.ReadStallTime
	return res, nil
}

// scatterApply queues an apply on the pool (or runs it inline).
func (d *destRun) scatterApply(fn func() error) error { return d.sc.do(fn) }

// preCopyReceive applies every pre-copy and freeze-and-copy frame until the
// source orders the resume. The destination cannot distinguish the disk,
// memory, and freeze sub-phases more precisely than the control frames it
// receives; the event stream reports iteration ends and the suspend as they
// arrive.
func (d *destRun) preCopyReceive() error {
	hostVM := d.host.VM
	// MsgIterStart/MsgMemIterStart carry the iteration index in Arg; keep it
	// so the end-of-iteration event reports which iteration finished.
	var curIter int
	// Iteration starts reset the transfer cursor for their phase — unless
	// the same iteration restarts after a reconnect, in which case the
	// already-received set keeps accumulating so nothing is counted twice.
	diskIterStart := func(m transport.Message) error {
		curIter = int(m.Arg)
		d.noteProgress(func(p *destProgress) {
			if p.recvDisk == nil || p.recvDiskNum != uint32(curIter) {
				p.recvDiskNum = uint32(curIter)
				p.recvDisk = bitmap.New(d.host.Backend.Device().NumBlocks())
			}
		})
		return nil
	}
	memIterStart := func(m transport.Message) error {
		curIter = int(m.Arg)
		d.noteProgress(func(p *destProgress) {
			if p.recvMem == nil || p.recvMemNum != uint32(curIter) {
				p.recvMemNum = uint32(curIter)
				p.recvMem = bitmap.New(hostVM.Memory().NumPages())
			}
		})
		return nil
	}
	iterEnd := func(note func(*destProgress, uint32)) func(transport.Message) error {
		return func(m transport.Message) error {
			d.ev.emit(Event{Kind: EventIterationEnd, Iteration: curIter, Units: int(m.Arg)})
			d.noteProgress(func(p *destProgress) { note(p, uint32(curIter)) })
			return nil
		}
	}
	handlers := frameHandlers{
		transport.MsgIterStart:    d.drainOn(diskIterStart),
		transport.MsgIterEnd:      d.drainOn(iterEnd(func(p *destProgress, it uint32) { p.diskIters = it })),
		transport.MsgMemIterStart: d.drainOn(memIterStart),
		transport.MsgMemIterEnd:   d.drainOn(iterEnd(func(p *destProgress, it uint32) { p.memIters = it })),
		transport.MsgSuspend: d.drainOn(func(transport.Message) error {
			d.ev.suspended()
			d.noteProgress(func(p *destProgress) { p.flags |= destSuspendSeen })
			return nil
		}),
		// Data-frame appliers own their pooled payloads (the Recv transfer
		// contract) and release them inside the scatter closure, after the
		// device write and dedup observation — i.e. no earlier than the
		// drain barrier any later control frame waits on.
		transport.MsgBlockData: func(m transport.Message) error {
			d.noteRecvBlocks(int(m.Arg), int(m.Arg)+1)
			return d.scatterApply(func() error {
				if err := d.applyBlock(m); err != nil {
					return err
				}
				if d.dd != nil {
					d.dd.observe(int(m.Arg), m.Payload)
				}
				m.Release()
				return nil
			})
		},
		transport.MsgExtent: func(m transport.Message) error {
			ext, err := d.checkExtent(m)
			if err != nil {
				return err
			}
			d.noteRecvBlocks(ext.Start, ext.End())
			dev := d.host.Backend.Device()
			payload, bs := m.Payload, dev.BlockSize()
			return d.scatterApply(func() error {
				for k := 0; k < ext.Count; k++ {
					blk := payload[k*bs : (k+1)*bs]
					if err := dev.WriteBlock(ext.Start+k, blk); err != nil {
						return fmt.Errorf("core: apply block %d: %w", ext.Start+k, err)
					}
					if d.dd != nil {
						d.dd.observe(ext.Start+k, blk)
					}
				}
				transport.PutBuf(payload)
				return nil
			})
		},
		transport.MsgMemPage: func(m transport.Message) error {
			d.noteProgress(func(p *destProgress) {
				if n := int(m.Arg); p.recvMem != nil && n >= 0 && n < p.recvMem.Len() {
					p.recvMem.Set(n)
				}
			})
			return d.scatterApply(func() error {
				if err := d.applyPage(m); err != nil {
					return err
				}
				m.Release()
				return nil
			})
		},
		transport.MsgCPUState: d.drainOn(func(m transport.Message) error {
			cpu := vm.CPUState{Registers: append([]byte(nil), m.Payload...)}
			hostVM.SetCPU(cpu)
			return nil
		}),
		transport.MsgBitmap: d.drainOn(func(m transport.Message) error {
			d.transferred = &bitmap.Bitmap{}
			if err := d.transferred.UnmarshalBinary(m.Payload); err != nil {
				return fmt.Errorf("core: bitmap: %w", err)
			}
			d.noteProgress(func(p *destProgress) { p.flags |= destBitmapSeen })
			return nil
		}),
	}
	if d.dd != nil {
		// Both dedup frames drain the scatter pool first: an advert's index
		// lookups must see every literal already applied (and observed), and
		// a reference materialized from this VBD must not race a queued
		// write to its backing block.
		handlers[transport.MsgHashAdvert] = d.drainOn(d.handleAdvert)
		handlers[transport.MsgBlockRef] = d.drainOn(d.applyBlockRef)
	}
	if d.cfg.Delta {
		// Delta frames drain too: a signature must summarize content with
		// every queued literal already on the device, and a patch applies
		// against (then overwrites) blocks a queued write may still own.
		handlers[transport.MsgDeltaSig] = d.drainOn(d.handleDeltaSig)
		handlers[transport.MsgDeltaPatch] = d.drainOn(d.handleDeltaPatch)
	}
	err := d.recvLoop(transport.MsgResume, handlers)
	if err != nil {
		return err
	}
	// MsgResume is a control frame too: drain before acting on it.
	if err := d.sc.drain(); err != nil {
		return err
	}
	if d.transferred == nil {
		return fmt.Errorf("core: source resumed without sending a bitmap")
	}
	return nil
}

// drainOn wraps a control-frame handler so the scatter pool is drained
// before it acts — everything sent before a phase boundary is applied before
// the boundary advances. (transport.IsDataFrame is the same predicate
// Striped stripes by; these are exactly the non-data frames.)
func (d *destRun) drainOn(fn func(transport.Message) error) func(transport.Message) error {
	return func(m transport.Message) error {
		if err := d.sc.drain(); err != nil {
			return err
		}
		if fn == nil {
			return nil
		}
		return fn(m)
	}
}

// postCopyReceive resumes the VM behind the gate and applies pushed/pulled
// blocks until the source reports push completion and the gate is fully
// synchronized.
func (d *destRun) postCopyReceive(res *DestResult) error {
	dev := d.host.Backend.Device()
	// CPU was installed during pre-copy receive; surface it on the result.
	res.CPU = d.host.VM.CPU()
	gate := blkback.NewPostCopyGate(dev, d.host.VM.DomainID, d.transferred, func(n int) error {
		return d.destSend(transport.Message{Type: transport.MsgPullRequest, Arg: uint64(n)})
	}, d.clk)
	res.Gate = gate
	if err := d.host.VM.Resume(); err != nil {
		return fmt.Errorf("core: resume: %w", err)
	}
	d.ev.resumed()
	// The flag is raised before RESUMED is sent: if that send dies with the
	// link, the reconnect ack must already tell the source the VM runs here.
	d.noteProgress(func(p *destProgress) { p.flags |= destResumed })
	if d.cfg.OnResume != nil {
		d.cfg.OnResume(gate)
	}
	if err := d.destSend(transport.Message{Type: transport.MsgResumed}); err != nil {
		return err
	}
	d.postStart = d.clk.Now()

	// Apply pushed/pulled blocks until the source reports push completion.
	// The scatter pool applies extents concurrently; the gate's internal
	// locking keeps each ReceiveBlock atomic against the resumed guest's
	// reads and writes, so the write gate stays correct under concurrency.
	bs := dev.BlockSize()
	pushDone := false
	for {
		if pushDone {
			if err := d.sc.drain(); err != nil {
				return err
			}
			if gate.Synchronized() {
				break
			}
		}
		m, err := d.destRecv()
		if err != nil {
			return fmt.Errorf("core: post-copy receive: %w", err)
		}
		d.noteWire()
		switch m.Type {
		case transport.MsgBlockData:
			n, payload := int(m.Arg), m.Payload
			if err := d.scatterApply(func() error {
				if err := gate.ReceiveBlock(n, payload); err != nil {
					return err
				}
				transport.PutBuf(payload)
				return nil
			}); err != nil {
				return err
			}
		case transport.MsgExtent:
			ext, err := d.checkExtent(m)
			if err != nil {
				return err
			}
			payload := m.Payload
			if err := d.scatterApply(func() error {
				for k := 0; k < ext.Count; k++ {
					if err := gate.ReceiveBlock(ext.Start+k, payload[k*bs:(k+1)*bs]); err != nil {
						return err
					}
				}
				transport.PutBuf(payload)
				return nil
			}); err != nil {
				return err
			}
		case transport.MsgPushDone:
			if err := d.sc.drain(); err != nil {
				return err
			}
			pushDone = true
			d.noteProgress(func(p *destProgress) { p.flags |= destPushDone })
		case transport.MsgError:
			return fmt.Errorf("core: source error: %s", m.Payload)
		default:
			return fmt.Errorf("core: unexpected message %v in post-copy", m.Type)
		}
	}
	d.noteProgress(func(p *destProgress) { p.flags |= destSynced })
	return d.destSend(transport.Message{Type: transport.MsgDone})
}
