package core

import (
	"fmt"

	"bbmig/internal/bitmap"
	"bbmig/internal/blkback"
	"bbmig/internal/metrics"
	"bbmig/internal/transport"
	"bbmig/internal/vm"
)

// DestResult is what a completed destination-side migration hands back.
type DestResult struct {
	// Report carries the destination's view of the run.
	Report *metrics.Report
	// Gate is the post-copy gate, fully synchronized. Its FreshBitmap is
	// the input to an incremental migration back (§V).
	Gate *blkback.PostCopyGate
	// CPU is the received CPU state (also installed into the VM).
	CPU vm.CPUState
}

// MigrateDest runs the destination side of a TPM migration over conn. host
// provides the prepared VBD (via its Backend) and the VM shell that will
// receive memory, CPU state, and eventually run. The function returns once
// the local disk is fully synchronized with the (now stopped) source.
func MigrateDest(cfg Config, host Host, conn transport.Conn) (*DestResult, error) {
	cfg = cfg.withDefaults()
	d := &destRun{cfg: cfg, host: host}
	d.meter = transport.NewMeter(conn)
	d.conn = d.meter
	res, err := d.run()
	if err != nil {
		_ = d.conn.Send(transport.Message{Type: transport.MsgError, Payload: []byte(err.Error())})
		return res, err
	}
	return res, nil
}

type destRun struct {
	cfg   Config
	host  Host
	conn  transport.Conn
	meter *transport.Meter
}

func (d *destRun) run() (*DestResult, error) {
	dev := d.host.Backend.Device()
	mem := d.host.VM.Memory()
	rep := &metrics.Report{Scheme: "TPM-dest"}
	res := &DestResult{Report: rep}
	clk := d.cfg.Clock
	start := clk.Now()

	// Handshake: verify geometry against the prepared VBD and VM shell.
	hello, err := d.conn.Recv()
	if err != nil {
		return res, fmt.Errorf("core: waiting for hello: %w", err)
	}
	if hello.Type != transport.MsgHello {
		return res, fmt.Errorf("core: expected HELLO, got %v", hello.Type)
	}
	if hello.Arg != transport.ProtocolVersion {
		return res, fmt.Errorf("core: protocol version %d, want %d", hello.Arg, transport.ProtocolVersion)
	}
	var geom transport.Geometry
	if err := geom.UnmarshalBinary(hello.Payload); err != nil {
		return res, err
	}
	if geom.BlockSize != dev.BlockSize() || geom.NumBlocks != dev.NumBlocks() {
		return res, fmt.Errorf("core: source disk %dx%d, prepared VBD %dx%d",
			geom.NumBlocks, geom.BlockSize, dev.NumBlocks(), dev.BlockSize())
	}
	if geom.PageSize != mem.PageSize() || geom.NumPages != mem.NumPages() {
		return res, fmt.Errorf("core: source memory %dx%d, shell %dx%d",
			geom.NumPages, geom.PageSize, mem.NumPages(), mem.PageSize())
	}
	if err := d.conn.Send(transport.Message{Type: transport.MsgHelloAck}); err != nil {
		return res, err
	}

	// --- Pre-copy and freeze-and-copy receive loop. ---
	var transferred *bitmap.Bitmap
receive:
	for {
		m, err := d.conn.Recv()
		if err != nil {
			return res, fmt.Errorf("core: pre-copy receive: %w", err)
		}
		switch m.Type {
		case transport.MsgIterStart, transport.MsgIterEnd,
			transport.MsgMemIterStart, transport.MsgMemIterEnd, transport.MsgSuspend:
			// phase markers; nothing to apply
		case transport.MsgBlockData:
			if err := dev.WriteBlock(int(m.Arg), m.Payload); err != nil {
				return res, fmt.Errorf("core: apply block %d: %w", m.Arg, err)
			}
		case transport.MsgMemPage:
			if err := mem.WritePage(int(m.Arg), m.Payload); err != nil {
				return res, fmt.Errorf("core: apply page %d: %w", m.Arg, err)
			}
		case transport.MsgCPUState:
			res.CPU = vm.CPUState{Registers: append([]byte(nil), m.Payload...)}
			d.host.VM.SetCPU(res.CPU)
		case transport.MsgBitmap:
			transferred = &bitmap.Bitmap{}
			if err := transferred.UnmarshalBinary(m.Payload); err != nil {
				return res, fmt.Errorf("core: bitmap: %w", err)
			}
		case transport.MsgResume:
			break receive
		case transport.MsgError:
			return res, fmt.Errorf("core: source error: %s", m.Payload)
		default:
			return res, fmt.Errorf("core: unexpected message %v in pre-copy", m.Type)
		}
	}
	if transferred == nil {
		return res, fmt.Errorf("core: source resumed without sending a bitmap")
	}

	// --- Post-copy phase: resume the VM behind the gate. ---
	gate := blkback.NewPostCopyGate(dev, d.host.VM.DomainID, transferred, func(n int) error {
		return d.conn.Send(transport.Message{Type: transport.MsgPullRequest, Arg: uint64(n)})
	}, clk)
	res.Gate = gate
	if err := d.host.VM.Resume(); err != nil {
		return res, fmt.Errorf("core: resume: %w", err)
	}
	if d.cfg.OnResume != nil {
		d.cfg.OnResume(gate)
	}
	if err := d.conn.Send(transport.Message{Type: transport.MsgResumed}); err != nil {
		return res, err
	}
	postStart := clk.Now()

	// Apply pushed/pulled blocks until the source reports push completion.
	pushDone := false
	for !(pushDone && gate.Synchronized()) {
		m, err := d.conn.Recv()
		if err != nil {
			return res, fmt.Errorf("core: post-copy receive: %w", err)
		}
		switch m.Type {
		case transport.MsgBlockData:
			if err := gate.ReceiveBlock(int(m.Arg), m.Payload); err != nil {
				return res, err
			}
		case transport.MsgPushDone:
			pushDone = true
		case transport.MsgError:
			return res, fmt.Errorf("core: source error: %s", m.Payload)
		default:
			return res, fmt.Errorf("core: unexpected message %v in post-copy", m.Type)
		}
	}
	if err := d.conn.Send(transport.Message{Type: transport.MsgDone}); err != nil {
		return res, err
	}

	gs := gate.Stats()
	rep.PostCopyTime = clk.Now() - postStart
	rep.TotalTime = clk.Now() - start
	rep.MigratedBytes = d.meter.BytesSent() + d.meter.BytesReceived()
	rep.BlocksPulled = int(gs.Pulls)
	rep.StalePushes = int(gs.StalePushes)
	rep.ReadStallTime = gs.ReadStallTime
	return res, nil
}
