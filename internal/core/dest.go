package core

import (
	"fmt"

	"bbmig/internal/bitmap"
	"bbmig/internal/blkback"
	"bbmig/internal/metrics"
	"bbmig/internal/transport"
	"bbmig/internal/vm"
)

// DestResult is what a completed destination-side migration hands back.
type DestResult struct {
	// Report carries the destination's view of the run.
	Report *metrics.Report
	// Gate is the post-copy gate, fully synchronized. Its FreshBitmap is
	// the input to an incremental migration back (§V).
	Gate *blkback.PostCopyGate
	// CPU is the received CPU state (also installed into the VM).
	CPU vm.CPUState
}

// MigrateDest runs the destination side of a TPM migration over conn. host
// provides the prepared VBD (via its Backend) and the VM shell that will
// receive memory, CPU state, and eventually run. The function returns once
// the local disk is fully synchronized with the (now stopped) source.
func MigrateDest(cfg Config, host Host, conn transport.Conn) (*DestResult, error) {
	cfg = cfg.withDefaults()
	d := &destRun{cfg: cfg, host: host}
	d.meter = transport.NewMeter(conn)
	d.conn = d.meter
	res, err := d.run()
	if err != nil {
		_ = d.conn.Send(transport.Message{Type: transport.MsgError, Payload: []byte(err.Error())})
		return res, err
	}
	return res, nil
}

type destRun struct {
	cfg   Config
	host  Host
	conn  transport.Conn
	meter *transport.Meter
}

// checkExtent validates a MsgExtent frame against the prepared VBD.
func (d *destRun) checkExtent(m transport.Message) (bitmap.Extent, error) {
	start, count := transport.ExtentSplit(m.Arg)
	dev := d.host.Backend.Device()
	if count < 1 || start < 0 || start+count > dev.NumBlocks() {
		return bitmap.Extent{}, fmt.Errorf("core: extent [%d,+%d) outside %d-block VBD", start, count, dev.NumBlocks())
	}
	if want := count * dev.BlockSize(); len(m.Payload) != want {
		return bitmap.Extent{}, fmt.Errorf("core: extent [%d,+%d) payload %d bytes, want %d", start, count, len(m.Payload), want)
	}
	return bitmap.Extent{Start: start, Count: count}, nil
}

func (d *destRun) run() (*DestResult, error) {
	dev := d.host.Backend.Device()
	mem := d.host.VM.Memory()
	rep := &metrics.Report{Scheme: "TPM-dest"}
	res := &DestResult{Report: rep}
	clk := d.cfg.Clock
	start := clk.Now()

	// Handshake: verify geometry against the prepared VBD and VM shell.
	hello, err := d.conn.Recv()
	if err != nil {
		return res, fmt.Errorf("core: waiting for hello: %w", err)
	}
	if hello.Type != transport.MsgHello {
		return res, fmt.Errorf("core: expected HELLO, got %v", hello.Type)
	}
	if hello.Arg != transport.ProtocolVersion {
		return res, fmt.Errorf("core: protocol version %d, want %d", hello.Arg, transport.ProtocolVersion)
	}
	var geom transport.Geometry
	if err := geom.UnmarshalBinary(hello.Payload); err != nil {
		return res, err
	}
	if geom.BlockSize != dev.BlockSize() || geom.NumBlocks != dev.NumBlocks() {
		return res, fmt.Errorf("core: source disk %dx%d, prepared VBD %dx%d",
			geom.NumBlocks, geom.BlockSize, dev.NumBlocks(), dev.BlockSize())
	}
	if geom.PageSize != mem.PageSize() || geom.NumPages != mem.NumPages() {
		return res, fmt.Errorf("core: source memory %dx%d, shell %dx%d",
			geom.NumPages, geom.PageSize, mem.NumPages(), mem.PageSize())
	}
	if err := d.conn.Send(transport.Message{Type: transport.MsgHelloAck}); err != nil {
		return res, err
	}

	// --- Pre-copy and freeze-and-copy receive loop. ---
	// Data frames are handed to the scatter pool; every control frame drains
	// it first, so iteration boundaries order cross-iteration rewrites
	// exactly as the sequential loop did.
	sc := newScatterPool(d.cfg.Workers)
	defer sc.close()
	var transferred *bitmap.Bitmap
receive:
	for {
		m, err := d.conn.Recv()
		if err != nil {
			return res, fmt.Errorf("core: pre-copy receive: %w", err)
		}
		// Non-data frames are phase boundaries: drain the scatter pool so
		// everything sent before the boundary is applied before it acts.
		// (transport.IsDataFrame is the same predicate Striped stripes by.)
		if !transport.IsDataFrame(m.Type) {
			if err := sc.drain(); err != nil {
				return res, err
			}
		}
		switch m.Type {
		case transport.MsgIterStart, transport.MsgIterEnd,
			transport.MsgMemIterStart, transport.MsgMemIterEnd, transport.MsgSuspend:
			// phase markers; nothing to apply
		case transport.MsgBlockData:
			n, payload := int(m.Arg), m.Payload
			if err := sc.do(func() error {
				if err := dev.WriteBlock(n, payload); err != nil {
					return fmt.Errorf("core: apply block %d: %w", n, err)
				}
				return nil
			}); err != nil {
				return res, err
			}
		case transport.MsgExtent:
			ext, err := d.checkExtent(m)
			if err != nil {
				return res, err
			}
			payload, bs := m.Payload, dev.BlockSize()
			if err := sc.do(func() error {
				for k := 0; k < ext.Count; k++ {
					if err := dev.WriteBlock(ext.Start+k, payload[k*bs:(k+1)*bs]); err != nil {
						return fmt.Errorf("core: apply block %d: %w", ext.Start+k, err)
					}
				}
				return nil
			}); err != nil {
				return res, err
			}
		case transport.MsgMemPage:
			n, payload := int(m.Arg), m.Payload
			if err := sc.do(func() error {
				if err := mem.WritePage(n, payload); err != nil {
					return fmt.Errorf("core: apply page %d: %w", n, err)
				}
				return nil
			}); err != nil {
				return res, err
			}
		case transport.MsgCPUState:
			res.CPU = vm.CPUState{Registers: append([]byte(nil), m.Payload...)}
			d.host.VM.SetCPU(res.CPU)
		case transport.MsgBitmap:
			transferred = &bitmap.Bitmap{}
			if err := transferred.UnmarshalBinary(m.Payload); err != nil {
				return res, fmt.Errorf("core: bitmap: %w", err)
			}
		case transport.MsgResume:
			break receive
		case transport.MsgError:
			return res, fmt.Errorf("core: source error: %s", m.Payload)
		default:
			return res, fmt.Errorf("core: unexpected message %v in pre-copy", m.Type)
		}
	}
	if transferred == nil {
		return res, fmt.Errorf("core: source resumed without sending a bitmap")
	}

	// --- Post-copy phase: resume the VM behind the gate. ---
	gate := blkback.NewPostCopyGate(dev, d.host.VM.DomainID, transferred, func(n int) error {
		return d.conn.Send(transport.Message{Type: transport.MsgPullRequest, Arg: uint64(n)})
	}, clk)
	res.Gate = gate
	if err := d.host.VM.Resume(); err != nil {
		return res, fmt.Errorf("core: resume: %w", err)
	}
	if d.cfg.OnResume != nil {
		d.cfg.OnResume(gate)
	}
	if err := d.conn.Send(transport.Message{Type: transport.MsgResumed}); err != nil {
		return res, err
	}
	postStart := clk.Now()

	// Apply pushed/pulled blocks until the source reports push completion.
	// The scatter pool applies extents concurrently; the gate's internal
	// locking keeps each ReceiveBlock atomic against the resumed guest's
	// reads and writes, so the write gate stays correct under concurrency.
	pushDone := false
	for {
		if pushDone {
			if err := sc.drain(); err != nil {
				return res, err
			}
			if gate.Synchronized() {
				break
			}
		}
		m, err := d.conn.Recv()
		if err != nil {
			return res, fmt.Errorf("core: post-copy receive: %w", err)
		}
		switch m.Type {
		case transport.MsgBlockData:
			n, payload := int(m.Arg), m.Payload
			if err := sc.do(func() error { return gate.ReceiveBlock(n, payload) }); err != nil {
				return res, err
			}
		case transport.MsgExtent:
			ext, err := d.checkExtent(m)
			if err != nil {
				return res, err
			}
			payload, bs := m.Payload, dev.BlockSize()
			if err := sc.do(func() error {
				for k := 0; k < ext.Count; k++ {
					if err := gate.ReceiveBlock(ext.Start+k, payload[k*bs:(k+1)*bs]); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				return res, err
			}
		case transport.MsgPushDone:
			if err := sc.drain(); err != nil {
				return res, err
			}
			pushDone = true
		case transport.MsgError:
			return res, fmt.Errorf("core: source error: %s", m.Payload)
		default:
			return res, fmt.Errorf("core: unexpected message %v in post-copy", m.Type)
		}
	}
	if err := d.conn.Send(transport.Message{Type: transport.MsgDone}); err != nil {
		return res, err
	}

	gs := gate.Stats()
	rep.PostCopyTime = clk.Now() - postStart
	rep.TotalTime = clk.Now() - start
	rep.MigratedBytes = d.meter.BytesSent() + d.meter.BytesReceived()
	rep.BlocksPulled = int(gs.Pulls)
	rep.StalePushes = int(gs.StalePushes)
	rep.ReadStallTime = gs.ReadStallTime
	return res, nil
}
