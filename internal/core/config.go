// Package core implements the paper's contribution: Three-Phase Migration
// (TPM) and Incremental Migration (IM) of a whole VM — local disk storage,
// memory, and CPU state — plus the three comparison baselines the paper
// argues against (freeze-and-copy, pure on-demand fetching, and Bradford-
// style delta forward-and-replay).
//
// The engine is transport- and clock-agnostic: the same code migrates a VM
// over an in-process pipe in tests, over TCP via cmd/bbmig, and at paper
// scale on a virtual clock in internal/sim.
package core

import (
	"time"

	"bbmig/internal/blkback"
	"bbmig/internal/clock"
	"bbmig/internal/dedup"
	"bbmig/internal/delta"
	"bbmig/internal/transport"
	"bbmig/internal/vm"
)

// Defaults for Config fields left zero.
const (
	// DefaultMaxDiskIters bounds disk pre-copy iterations ("we limit the
	// maximum number of iterations to avoid endless migration", §IV-A-1).
	DefaultMaxDiskIters = 4
	// DefaultDiskDirtyThreshold stops disk pre-copy once the per-iteration
	// dirty set is this small (blocks); the remainder rides in the bitmap.
	DefaultDiskDirtyThreshold = 128
	// DefaultMaxMemIters bounds memory pre-copy iterations (Xen default
	// behaviour: ~30 rounds max, convergence usually much earlier).
	DefaultMaxMemIters = 30
	// DefaultMemDirtyThreshold suspends the VM once the dirty page set is
	// this small (pages).
	DefaultMemDirtyThreshold = 64
	// DefaultStreams is the number of transport connections: one, the
	// paper's single blkd socket.
	DefaultStreams = 1
	// DefaultMaxExtentBlocks is the per-frame block coalescing limit: one,
	// the paper's block-per-message wire format.
	DefaultMaxExtentBlocks = 1
	// DefaultWorkers is the source read/send and destination scatter-write
	// concurrency: one, the paper's sequential loops.
	DefaultWorkers = 1
	// DefaultRetryBackoff is the base reconnect delay when Config.MaxRetries
	// enables resumable migration and RetryBackoff is left zero.
	DefaultRetryBackoff = 100 * time.Millisecond
)

// RedialFunc re-establishes the source side's transport after a connection
// failure. See Config.Redial.
type RedialFunc func() (transport.Conn, error)

// ReconnectFunc hands the destination engine a reconnecting source's fresh
// connection together with the validated session epoch. See
// Config.WaitReconnect.
type ReconnectFunc func(token transport.SessionToken, lastEpoch uint32) (transport.Conn, uint32, error)

// Config parameterizes a migration.
//
// Four fields are negotiated — both endpoints must agree or the handshake
// fails: Streams (the striped connection count), CompressLevel (the stream
// compression setting), Dedup (content-addressed transfer), and Delta
// (rsync-style delta encoding). The hostd layer negotiates all four
// automatically through its announce frame; raw engine users (cmd/bbmig,
// tests) must pass matching values on both sides.
// Swarm is a fourth announced capability, but a soft one: it permits the
// destination to open sidecar peer sessions without changing a single byte
// of the migration channel, so a mismatch degrades to single-source dedup
// rather than failing the handshake.
// Every other field is local-only: stop
// conditions, Workers, MaxExtentBlocks, BandwidthLimit, Policy, and the
// OnEvent/OnFreeze/OnResume hooks all produce frames any destination
// accepts.
type Config struct {
	// Clock paces and measures the run. Nil defaults to a wall clock.
	Clock clock.Clock

	// MaxDiskIters, DiskDirtyThreshold, MaxMemIters, MemDirtyThreshold
	// control the pre-copy stop conditions; zero selects the defaults.
	MaxDiskIters       int
	DiskDirtyThreshold int
	MaxMemIters        int
	MemDirtyThreshold  int

	// BandwidthLimit caps the pre-copy transfer rate in bytes/second
	// (§VI-C-3). Zero or clock.Unlimited disables the cap. The cap is not
	// applied to the freeze-and-copy phase: throttling the downtime-
	// critical transfer would be self-defeating, and the paper limits only
	// the pre-copy bandwidth.
	BandwidthLimit int64

	// Streams is the number of transport connections the migration should
	// fan data frames across. The engine itself migrates over whatever Conn
	// it is handed; this knob is read by the connection-owning layers
	// (cmd/bbmig, hostd) to build a transport.Striped of this width, and is
	// threaded through Config so one struct configures the whole path.
	// Zero or one selects the paper's single ordered connection.
	Streams int

	// MaxExtentBlocks caps how many contiguous dirty blocks are coalesced
	// into one MsgExtent frame. Zero or one reproduces the paper's
	// block-per-message wire format (and is wire-compatible with it);
	// larger values amortize the per-frame header and flush cost so
	// iterations become bandwidth- rather than latency-bound.
	MaxExtentBlocks int

	// Workers sizes the source-side read→send worker pool and the
	// destination-side scatter-write pool. Zero or one selects the paper's
	// sequential loops. Workers only parallelize within one pre-copy
	// iteration, where every block and page number appears at most once, so
	// reordering is safe; iteration boundaries remain synchronization
	// points.
	Workers int

	// Readahead, when positive, prefetches up to that many extents into
	// pooled buffers while the current extent is on the wire, overlapping
	// device reads with transport writes without reordering anything: the
	// frame sequence stays identical to the sequential path, so the knob is
	// purely local and needs no negotiation. Ignored when Workers > 1 (the
	// worker pool already overlaps reads and sends) and on the dedup path
	// (the advert/want alternation is inherently sequential). Zero (the
	// default) keeps the fully sequential read→send loop.
	Readahead int

	// CompressLevel, when non-zero, DEFLATE-compresses the migration stream
	// at that flate level (-1 = flate default, 1 fastest … 9 best, -2
	// Huffman-only). Both endpoints must use the same setting — it changes
	// the wire framing — so it is negotiated: hostd carries it in the
	// announce frame and rejects mismatches before the engine handshake.
	// Zero (the default) keeps the seed's uncompressed wire format.
	CompressLevel int

	// Dedup, when true, enables content-addressed deduplication for disk
	// pre-copy traffic: the source adverts each extent's per-block
	// fingerprints (MsgHashAdvert), the destination answers with a
	// want-bitmap (MsgHashWant) naming the blocks whose content it cannot
	// already produce, and everything else travels as 16-byte references
	// (MsgBlockRef) materialized from the destination's fingerprint index —
	// retained peer copies, clone siblings' disks, blocks received earlier
	// in this migration, and the implicit zero block. All-zero runs are
	// elided without a round trip. Like Streams and CompressLevel this is
	// negotiated — both endpoints must agree or the destination rejects the
	// unexpected frames; hostd carries it in the announce and an
	// unconfigured receiver adopts the sender's choice. The Policy's
	// DedupExtent verdict gates the round trip per extent. The dedup send
	// path is sequential (Workers does not parallelize it), and memory
	// pages, freeze-and-copy, and post-copy pushes always travel literally.
	// False (the default) keeps the seed wire format byte for byte.
	Dedup bool

	// DedupIndex is the destination-side fingerprint index consulted to
	// answer hash adverts (ignored on the source). Nil with Dedup set
	// builds a fresh per-migration index, which still elides zero blocks
	// and deduplicates repeated content within the migration; hostd passes
	// its machine-wide index so retained and clone-sibling disks dedup
	// across migrations. The index may be shared between concurrent
	// migrations — it is concurrency-safe and verify-on-read.
	DedupIndex *dedup.Index

	// DedupName is the source name under which the destination's own VBD is
	// registered (and its received blocks observed) in DedupIndex; empty
	// selects "self". hostd passes a stable per-domain name so the
	// observations outlive the migration.
	DedupName string

	// Swarm, when true alongside Dedup, lets the destination fan its
	// want-set across sidecar fetch sessions to peer host daemons before
	// answering each hash advert: content a peer's index can produce (and
	// verify on read) arrives over the peers' uplinks, the want bit clears,
	// and the source ships only a 16-byte reference — turning an evacuation
	// from a source-bandwidth problem into a fleet-bandwidth problem. The
	// capability travels in the hostd announce (a destination never opens
	// sidecar sessions the source did not allow), but the migration channel
	// itself is untouched: swarm frames ride separate connections, so the
	// main-channel wire format is byte-identical with or without it, and a
	// block no peer produces simply stays wanted and falls back to a
	// literal send from the source. False (the default) keeps dedup
	// single-source.
	Swarm bool

	// SwarmPeers lists the peer hostd swarm-serve addresses the destination
	// may fetch from (ignored on the source). The cluster orchestrator
	// nominates peers from placement's content-overlap data; raw engine
	// users pass addresses directly. Peers that refuse, die, or serve
	// content that fails fingerprint verification are dropped for the rest
	// of the migration — correctness never depends on peer health.
	SwarmPeers []string

	// SwarmDial opens one sidecar connection to a SwarmPeers address; nil
	// selects the TCP dialer. Tests inject in-process pipes here.
	SwarmDial SwarmDialFunc

	// Delta, when true, enables rsync-style delta encoding for disk
	// pre-copy traffic — the WAN path for content that diverged but stayed
	// similar, which exact-match dedup cannot exploit. Per extent the
	// source requests a chunk signature of the destination's current
	// content (MsgDeltaSig), diffs the new content against it, and ships a
	// COPY/LITERAL op stream (MsgDeltaPatch) when — and only when — the
	// patch is smaller than the literal. The destination applies each patch
	// against its own content and verifies the patch's embedded strong hash
	// before any byte lands; a mismatch is refused back to the source,
	// which re-sends the extent literally before the pass ends — degraded,
	// never wrong. Like Dedup this is negotiated: both endpoints must agree
	// or the destination rejects the unexpected frames; hostd carries it in
	// the announce and an unconfigured receiver adopts the sender's choice.
	// The Policy's DeltaExtent verdict gates the round trip per extent.
	// With Dedup also negotiated, delta replaces the literal sends for the
	// blocks the destination's want-bitmap asked for, composing the two:
	// exact matches travel as 16-byte references, near matches as patches.
	// The delta send path is sequential (each extent is a round trip), and
	// memory pages, freeze-and-copy, and post-copy pushes always travel
	// literally. False (the default) keeps the seed wire format byte for
	// byte.
	Delta bool

	// DeltaChunk is the signature chunk size in bytes used by the
	// destination when answering signature requests (ignored on the
	// source — the chunk size travels inside every signature and patch, so
	// the endpoints need not agree on it). Zero selects delta.DefaultChunk
	// (128: a 4 KiB block signs in 392 bytes); out-of-range values are
	// clamped to [delta.MinChunk, delta.MaxChunk]. Smaller chunks find
	// finer-grained reuse at the cost of larger signatures.
	DeltaChunk int

	// Policy owns the transfer decisions the engine otherwise freezes in
	// constants: pre-copy stop conditions, the live extent coalescing limit,
	// per-payload compression verdicts, and pre-copy pacing. Nil selects
	// DefaultPolicy, which reproduces the paper's exact behavior (and, with
	// the other knobs at their defaults, the seed wire format byte for
	// byte). Policies are local-only: nothing they decide needs the peer's
	// agreement. A Policy instance must not be shared between concurrent
	// migrations.
	Policy Policy

	// OnEvent, when non-nil, receives typed progress events (phase
	// transitions, iteration ends, byte heartbeats, suspend/resume, pull
	// service) as the migration runs. May be invoked concurrently; must not
	// block. Local-only.
	OnEvent EventFunc

	// MaxRetries, when positive, makes the source side resumable: the
	// handshake negotiates a session token, progress is checkpointed at
	// phase and iteration boundaries, and a connection failure re-dials
	// (via Redial) up to MaxRetries times, re-entering the interrupted
	// phase and sending only the blocks still owed instead of restarting.
	// Zero (the default) keeps the seed's fail-fast behaviour and its exact
	// wire format.
	MaxRetries int

	// RetryBackoff is the base delay before the first reconnect attempt;
	// each further attempt doubles it (capped at 32x). Zero selects
	// DefaultRetryBackoff. Slept on Config.Clock, so simulated migrations
	// retry on the virtual timeline.
	RetryBackoff time.Duration

	// Redial re-establishes the migration transport after a connection
	// failure (source side). The engine performs the session-resume
	// exchange on the returned connection itself; the callback only
	// supplies a fresh link (re-dialing TCP, rebuilding nothing else —
	// resumed epochs always run on a single stream, though negotiated
	// compression is re-applied by the engine). Required for MaxRetries to
	// take effect. The engine closes superseded connections; the most
	// recently returned one is the caller's to close after the migration
	// ends.
	Redial RedialFunc

	// WaitReconnect, when non-nil, makes the destination side resumable: on
	// a connection failure the engine parks here until the layer that owns
	// the listener hands it the reconnecting source's fresh link. The
	// callback must validate the MsgSessionResume frame itself (token
	// match, epoch > lastEpoch — transport.AcceptResume does exactly this)
	// and return the connection with the frame's epoch.
	WaitReconnect ReconnectFunc

	// JournalPath, when non-empty, persists the source's migration journal
	// (session token, pipeline cursor, pending bitmap) to this file at
	// every checkpoint, so an operator can restart a crashed source and
	// re-run the migration incrementally from the journal instead of
	// re-sending the whole image (cmd/bbmig -resume). In-process
	// reconnect resume does not need it — the journal is also kept in
	// memory.
	JournalPath string

	// SkipUnused elides never-written blocks from the first pre-copy
	// iteration when the source device reports its allocation map
	// (blockdev.Allocator) — the paper's §VII guest-cooperation future-work
	// item. The destination VBD must be freshly zeroed, which MigrateDest
	// cannot verify; enabling this on a dirty destination corrupts it.
	SkipUnused bool

	// OnFreeze, when non-nil, is invoked on the source right before the VM
	// is suspended; the caller must quiesce guest I/O before returning
	// (the Router helper does this).
	OnFreeze func()

	// OnResume, when non-nil, is invoked on the destination right after
	// the VM resumes, handing over the post-copy gate the guest's I/O must
	// now flow through.
	OnResume func(*blkback.PostCopyGate)
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = clock.NewReal()
	}
	if c.MaxDiskIters <= 0 {
		c.MaxDiskIters = DefaultMaxDiskIters
	}
	if c.DiskDirtyThreshold <= 0 {
		c.DiskDirtyThreshold = DefaultDiskDirtyThreshold
	}
	if c.MaxMemIters <= 0 {
		c.MaxMemIters = DefaultMaxMemIters
	}
	if c.MemDirtyThreshold <= 0 {
		c.MemDirtyThreshold = DefaultMemDirtyThreshold
	}
	if c.BandwidthLimit <= 0 {
		c.BandwidthLimit = clock.Unlimited
	}
	if c.Streams <= 0 {
		c.Streams = DefaultStreams
	}
	if c.Streams > transport.MaxStreams {
		c.Streams = transport.MaxStreams // stream counts travel in one wire byte
	}
	if c.MaxExtentBlocks <= 0 {
		c.MaxExtentBlocks = DefaultMaxExtentBlocks
	}
	if c.MaxExtentBlocks > transport.MaxExtentBlocks {
		c.MaxExtentBlocks = transport.MaxExtentBlocks
	}
	if c.Workers <= 0 {
		c.Workers = DefaultWorkers
	}
	if c.Readahead < 0 {
		c.Readahead = 0
	}
	if c.CompressLevel < -2 {
		c.CompressLevel = -2
	}
	if c.CompressLevel > 9 {
		c.CompressLevel = 9
	}
	if c.DeltaChunk <= 0 {
		c.DeltaChunk = delta.DefaultChunk
	}
	if c.DeltaChunk < delta.MinChunk {
		c.DeltaChunk = delta.MinChunk
	}
	if c.DeltaChunk > delta.MaxChunk {
		c.DeltaChunk = delta.MaxChunk
	}
	if c.Policy == nil {
		c.Policy = DefaultPolicy{}
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = DefaultRetryBackoff
	}
	return c
}

// Host bundles the pieces of one physical machine participating in a
// migration: the VM (source: the running guest; destination: the shell that
// will receive it) and the block backend over the local disk.
type Host struct {
	VM      *vm.VM
	Backend *blkback.Backend
}
