package core

import (
	"fmt"

	"bbmig/internal/bitmap"
	"bbmig/internal/blockdev"
	"bbmig/internal/dedup"
	"bbmig/internal/transport"
)

// This file is the engine half of content-addressed transfer (Config.Dedup):
// the source-side dedup send path that replaces literal extent sends during
// disk pre-copy, and the destination-side advert/reference appliers wired
// into the receive loop. The protocol per extent is strictly alternating —
// one MsgHashAdvert, one MsgHashWant reply, then the extent's literal
// sub-runs and MsgBlockRef sub-runs — so at most one advert is ever
// outstanding and a reference only ever names a fingerprint from the advert
// that immediately precedes it (or the implicit zero fingerprint, which
// needs no advert at all). Memory pages, freeze-and-copy, and post-copy
// pushes are never deduplicated.

// sendExtentsDedup is the dedup counterpart of sendExtentsSeq: it walks bm's
// runs with a cursor, fingerprints each extent, elides all-zero runs
// outright, and otherwise — when the policy agrees the round trip is worth
// it — adverts the fingerprints and sends only what the destination wants
// literally. The path is sequential by design: the advert/want alternation
// is a per-extent round trip, so a worker pool would just reorder waits.
func (t *transfer) sendExtentsDedup(bm *bitmap.Bitmap, phaseName string, limited bool) (int, int64, error) {
	dev := t.srcDev
	bs := dev.BlockSize()
	zero := dedup.ZeroFingerprint(bs)
	var buf []byte
	defer func() { transport.PutBuf(buf) }()
	var fps []dedup.Fingerprint
	sent := 0
	var bytes int64
	for pos := 0; ; {
		maxExt := t.extentBlocks(phaseName)
		ext := bm.NextExtent(pos, maxExt)
		if ext.Count == 0 {
			// With Delta also negotiated, the wanted sub-runs below may have
			// travelled as patches; the fence bounds them (no-op otherwise).
			fenceWire, err := t.deltaFence(limited)
			return sent, bytes + fenceWire, err
		}
		if need := ext.Count * bs; cap(buf) < need {
			transport.PutBuf(buf)
			buf = transport.GetBuf(maxExt * bs)
		}
		data := buf[:ext.Count*bs]
		extStart := t.clk.Now()
		fps = fps[:0]
		allZero := true
		for k := 0; k < ext.Count; k++ {
			blk := data[k*bs : (k+1)*bs]
			if err := dev.ReadBlock(ext.Start+k, blk); err != nil {
				return sent, bytes, err
			}
			fp := dedup.Of(blk)
			fps = append(fps, fp)
			if fp != zero {
				allZero = false
			}
		}
		wire, err := t.sendDedupExtent(ext, data, fps, allZero, phaseName, limited)
		if err != nil {
			return sent, bytes, err
		}
		t.pol.ObserveExtent(ext.Count, wire, t.clk.Now()-extStart)
		sent += ext.Count
		bytes += wire
		pos = ext.End()
	}
}

// sendDedupExtent moves one extent under the dedup protocol and returns the
// wire bytes it cost.
func (t *transfer) sendDedupExtent(ext bitmap.Extent, data []byte, fps []dedup.Fingerprint, allZero bool, phaseName string, limited bool) (int64, error) {
	bs := t.host.Backend.Device().BlockSize()
	arg := transport.ExtentArg(ext.Start, ext.Count)
	// Fingerprint payloads (adverts, references) are staged in one pooled
	// scratch buffer: sends only borrow their payload, so the scratch is
	// reusable the moment each send returns.
	fpBuf := transport.GetBuf(len(fps) * dedup.FingerprintSize)
	defer transport.PutBuf(fpBuf)
	if allZero {
		// Zero elision: the destination materializes zeros with no round
		// trip and no staging — the zero fingerprint is always resolvable.
		m := transport.Message{Type: transport.MsgBlockRef, Arg: arg, Payload: dedup.AppendFingerprints(fpBuf[:0], fps)}
		if err := t.send(m, limited); err != nil {
			return 0, err
		}
		t.dedupBlocks += ext.Count
		return int64(m.FrameSize()), nil
	}
	if !t.pol.DedupExtent(phaseName, ext.Count) {
		m := extentMessage(ext, data)
		return int64(m.FrameSize()), t.send(m, limited)
	}
	adv := transport.Message{Type: transport.MsgHashAdvert, Arg: arg, Payload: dedup.AppendFingerprints(fpBuf[:0], fps)}
	if err := t.send(adv, limited); err != nil {
		return 0, err
	}
	wire := int64(adv.FrameSize())
	want, err := t.awaitWant(arg)
	if err != nil {
		return wire, err
	}
	if len(want) != dedup.WantLen(ext.Count) {
		return wire, fmt.Errorf("core: want bitmap %d bytes for %d-block advert", len(want), ext.Count)
	}
	// Walk the want bitmap as maximal same-verdict runs: wanted runs travel
	// as literals (single blocks keep the seed's MsgBlockData form) — or
	// through the delta protocol when that is also negotiated, since a
	// wanted run is exactly the content exact-match dedup could not save —
	// and unwanted runs as fingerprint references.
	err = dedup.WalkWant(ext.Count, want, func(off, n int, wanted bool) error {
		sub := bitmap.Extent{Start: ext.Start + off, Count: n}
		var m transport.Message
		if wanted {
			if t.cfg.Delta && t.awaitDeltaSig != nil {
				w, err := t.sendDeltaExtent(sub, data[off*bs:(off+n)*bs], phaseName, limited)
				wire += w
				return err
			}
			m = extentMessage(sub, data[off*bs:(off+n)*bs])
		} else {
			m = transport.Message{
				Type:    transport.MsgBlockRef,
				Arg:     transport.ExtentArg(sub.Start, sub.Count),
				Payload: dedup.AppendFingerprints(fpBuf[:0], fps[off:off+n]),
			}
			t.dedupBlocks += sub.Count
		}
		if err := t.send(m, limited); err != nil {
			return err
		}
		wire += int64(m.FrameSize())
		return nil
	})
	transport.PutBuf(want) // the reply's pooled payload, fully consumed
	return wire, err
}

// --- Destination side ---

// destDedup is one migration's destination-side dedup session: the
// fingerprint index consulted for adverts, the content staged between an
// advert and its references, and the name the destination VBD's own blocks
// are observed under.
type destDedup struct {
	idx   *dedup.Index
	self  string
	stage map[dedup.Fingerprint][]byte
	refs  int // blocks materialized by reference (Report.DedupBlocks)

	// swarm fans want-sets across peer host daemons (Config.Swarm); nil
	// keeps the session single-source. swarmBlocks counts blocks whose
	// content a peer produced (Report.SwarmBlocks).
	swarm       *swarmClient
	swarmBlocks int
}

// newDestDedup builds the session state, registering the destination VBD as
// a lookup source so content received earlier in the migration deduplicates
// later iterations.
func newDestDedup(cfg Config, dev blockdev.Device) (*destDedup, error) {
	idx := cfg.DedupIndex
	if idx == nil {
		idx = dedup.NewIndex(dev.BlockSize())
	}
	name := cfg.DedupName
	if name == "" {
		name = "self"
	}
	if err := idx.RegisterSource(name, dev); err != nil {
		return nil, err
	}
	return &destDedup{idx: idx, self: name}, nil
}

// observe records one applied block's content in the index. Called from
// scatter-pool workers for literals and inline for references; the index is
// concurrency-safe.
func (dd *destDedup) observe(block int, data []byte) {
	dd.idx.Observe(dd.self, block, dedup.Of(data))
}

// checkFPExtent validates a MsgHashAdvert/MsgBlockRef frame against the
// prepared VBD and decodes its fingerprints.
func (t *transfer) checkFPExtent(m transport.Message) (bitmap.Extent, []dedup.Fingerprint, error) {
	start, count := transport.ExtentSplit(m.Arg)
	dev := t.host.Backend.Device()
	if count < 1 || start < 0 || start+count > dev.NumBlocks() {
		return bitmap.Extent{}, nil, fmt.Errorf("core: dedup extent [%d,+%d) outside %d-block VBD", start, count, dev.NumBlocks())
	}
	fps, err := dedup.ParseFingerprints(m.Payload, count)
	if err != nil {
		return bitmap.Extent{}, nil, err
	}
	return bitmap.Extent{Start: start, Count: count}, fps, nil
}

// handleAdvert answers one MsgHashAdvert through Index.Answer. Runs under
// drainOn, so every earlier literal is applied — and observed — before the
// lookup.
func (d *destRun) handleAdvert(m transport.Message) error {
	_, fps, err := d.checkFPExtent(m)
	if err != nil {
		return err
	}
	want, stage := d.dd.idx.Answer(fps)
	// Swarm fetch: before conceding a literal send, ask the peer fleet for
	// the still-wanted content. Whatever arrives (already verified against
	// its fingerprint) is staged exactly as locally-produced content is, and
	// its want bit clears so the source ships a 16-byte reference instead.
	// Anything the swarm misses stays wanted — the literal fallback needs no
	// extra protocol.
	if d.dd.swarm != nil {
		var missing []dedup.Fingerprint
		seen := make(map[dedup.Fingerprint]bool)
		for k, fp := range fps {
			if dedup.Want(want, k) && !seen[fp] {
				seen[fp] = true
				missing = append(missing, fp)
			}
		}
		if len(missing) > 0 {
			bs := d.host.Backend.Device().BlockSize()
			got := d.dd.swarm.fetch(missing, bs)
			if len(got) > 0 {
				if stage == nil {
					stage = make(map[dedup.Fingerprint][]byte, len(got))
				}
				for k, fp := range fps {
					if !dedup.Want(want, k) {
						continue
					}
					if content, ok := got[fp]; ok {
						stage[fp] = content
						dedup.ClearWant(want, k)
						d.dd.swarmBlocks++
					}
				}
			}
		}
	}
	// Replace the previous advert's staging wholesale: references only ever
	// name the immediately preceding advert (or zero), so older staged
	// content can no longer be referenced.
	d.dd.stage = stage
	return d.destSend(transport.Message{Type: transport.MsgHashWant, Arg: m.Arg, Payload: want})
}

// applyBlockRef materializes one MsgBlockRef run through Index.Materialize.
// An unresolvable fingerprint is a protocol error — the source only sends
// references for content this destination claimed, so reaching it means
// the claim expired mid-extent; failing the migration (and letting the
// retry path re-send) is the only answer that cannot write wrong bytes.
func (d *destRun) applyBlockRef(m transport.Message) error {
	ext, fps, err := d.checkFPExtent(m)
	if err != nil {
		return err
	}
	dev := d.host.Backend.Device()
	for k, fp := range fps {
		content, ok := d.dd.idx.Materialize(d.dd.stage, fp)
		if !ok {
			return fmt.Errorf("core: block ref %d names content this host cannot produce", ext.Start+k)
		}
		if err := dev.WriteBlock(ext.Start+k, content); err != nil {
			return fmt.Errorf("core: apply block ref %d: %w", ext.Start+k, err)
		}
		d.dd.idx.Observe(d.dd.self, ext.Start+k, fp)
	}
	d.dd.refs += ext.Count
	d.noteRecvBlocks(ext.Start, ext.End())
	return nil
}
