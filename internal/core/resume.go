package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"bbmig/internal/bitmap"
	"bbmig/internal/transport"
)

// This file holds the engine half of resumable migration: the per-migration
// session state, the destination progress record exchanged in MsgSessionAck,
// and the destination-side connection recovery (the source side's active
// retry driver lives in source.go).

// resumeAckTimeout bounds how long a reconnecting source waits for the
// destination's session ack before declaring the attempt dead and retrying.
const resumeAckTimeout = 30 * time.Second

// session tracks one migration's resume identity across reconnects.
type session struct {
	token   transport.SessionToken
	offered bool // source minted / destination received a token

	mu        sync.Mutex
	resumable bool   // both endpoints agreed in the handshake
	epoch     uint32 // last completed resume epoch (0 = original connection)
	gen       uint64 // bumped per successful rebind; single-flights recovery
}

func (s *session) generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

func (s *session) isResumable() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resumable
}

func (s *session) setResumable(v bool) {
	s.mu.Lock()
	s.resumable = v
	s.mu.Unlock()
}

// destProgress is the destination's pipeline position: how many pre-copy
// iterations it has fully received per phase, which milestones it has
// passed, and — the transfer cursor — the exact units received so far in
// the in-flight iteration. The reconnect ack carries it so the source
// re-enters the pipeline exactly where the destination's knowledge ends:
// the blocks still owed are the interrupted iteration's set minus what the
// destination confirms, so a fault deep into a 40 GB first iteration costs
// only the frames in flight, not the gigabytes already landed.
type destProgress struct {
	diskIters uint32 // disk ITER_END frames seen (fully received iterations)
	memIters  uint32 // memory ITER_END frames seen
	flags     uint8

	recvDiskNum uint32         // iteration the received-blocks set belongs to
	recvDisk    *bitmap.Bitmap // blocks received in that iteration (nil if none)
	recvMemNum  uint32         // iteration the received-pages set belongs to
	recvMem     *bitmap.Bitmap // pages received in that iteration (nil if none)
}

// destProgress flag bits.
const (
	destSuspendSeen = 1 << 0 // SUSPEND arrived: freeze-and-copy reached
	destBitmapSeen  = 1 << 1 // freeze bitmap arrived
	destResumed     = 1 << 2 // destination VM is running (post-copy reached)
	destPushDone    = 1 << 3 // PUSH_DONE arrived
	destSynced      = 1 << 4 // every block consistent; DONE sent or imminent
)

// marshal encodes the progress record for the MsgSessionAck payload:
// flags(1) diskIters(4) memIters(4), then two length-prefixed cursor
// sections (iteration number + marshalled bitmap; length 0 = absent).
func (p destProgress) marshal() ([]byte, error) {
	out := make([]byte, 9)
	out[0] = p.flags
	binary.LittleEndian.PutUint32(out[1:], p.diskIters)
	binary.LittleEndian.PutUint32(out[5:], p.memIters)
	for _, sec := range []struct {
		num uint32
		bm  *bitmap.Bitmap
	}{{p.recvDiskNum, p.recvDisk}, {p.recvMemNum, p.recvMem}} {
		var body []byte
		if sec.bm != nil {
			var err error
			if body, err = sec.bm.MarshalBinary(); err != nil {
				return nil, err
			}
		}
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:], sec.num)
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(body)))
		out = append(out, hdr[:]...)
		out = append(out, body...)
	}
	return out, nil
}

// parseDestProgress decodes a MsgSessionAck payload.
func parseDestProgress(data []byte) (destProgress, error) {
	var p destProgress
	if len(data) < 9 {
		return p, fmt.Errorf("core: session ack payload %d bytes, want >= 9", len(data))
	}
	p.flags = data[0]
	p.diskIters = binary.LittleEndian.Uint32(data[1:])
	p.memIters = binary.LittleEndian.Uint32(data[5:])
	rest := data[9:]
	for i := 0; i < 2; i++ {
		if len(rest) < 8 {
			return p, fmt.Errorf("core: session ack cursor section truncated")
		}
		num := binary.LittleEndian.Uint32(rest[0:])
		n := int(binary.LittleEndian.Uint32(rest[4:]))
		rest = rest[8:]
		if len(rest) < n {
			return p, fmt.Errorf("core: session ack cursor bitmap truncated")
		}
		var bm *bitmap.Bitmap
		if n > 0 {
			bm = &bitmap.Bitmap{}
			if err := bm.UnmarshalBinary(rest[:n]); err != nil {
				return p, fmt.Errorf("core: session ack cursor: %w", err)
			}
		}
		rest = rest[n:]
		if i == 0 {
			p.recvDiskNum, p.recvDisk = num, bm
		} else {
			p.recvMemNum, p.recvMem = num, bm
		}
	}
	if len(rest) != 0 {
		return p, fmt.Errorf("core: session ack payload has %d trailing bytes", len(rest))
	}
	return p, nil
}

// iterResume describes re-entry into an iterative pre-copy phase: restart at
// iteration iter, re-sending pending (the interrupted iteration's set).
type iterResume struct {
	iter    int
	pending *bitmap.Bitmap
}

// destRecoverable reports whether the destination side can recover from err
// by waiting for the source to reconnect.
func (t *transfer) destRecoverable(err error) bool {
	return t.cfg.WaitReconnect != nil && t.destState != nil &&
		t.sess.isResumable() && transport.IsConnError(err)
}

// destRecv receives one frame, transparently riding out connection failures
// when the session is resumable: the engine parks until the source
// reconnects, acks with the destination's progress record, rebinds the
// decorator stack, and retries.
func (t *transfer) destRecv() (transport.Message, error) {
	for {
		gen := t.sess.generation()
		m, err := t.conn.Recv()
		if err == nil {
			return m, nil
		}
		if rerr := t.recoverDest(gen, err); rerr != nil {
			return m, rerr
		}
	}
}

// destSend sends one frame with the same recovery discipline as destRecv.
// Safe concurrently with destRecv: recovery is single-flighted on the
// session generation, so whichever goroutine notices the dead link first
// performs the rebind and the other simply retries on the fresh connection.
func (t *transfer) destSend(m transport.Message) error {
	for {
		gen := t.sess.generation()
		err := t.conn.Send(m)
		if err == nil {
			return nil
		}
		if rerr := t.recoverDest(gen, err); rerr != nil {
			return rerr
		}
	}
}

// recoverDest waits for the source to reconnect and rebinds the stack. A nil
// return means the session was rebound (by this call or a concurrent one)
// and the failed operation should be retried; otherwise the original error
// stands.
func (t *transfer) recoverDest(gen uint64, cause error) error {
	if !t.destRecoverable(cause) {
		return cause
	}
	t.sess.mu.Lock()
	defer t.sess.mu.Unlock()
	if t.sess.gen != gen {
		return nil // a concurrent operation already recovered this failure
	}
	for {
		conn, epoch, err := t.cfg.WaitReconnect(t.sess.token, t.sess.epoch)
		if err != nil {
			return cause
		}
		payload, merr := t.destState().marshal()
		if merr != nil {
			conn.Close()
			return merr
		}
		ack := transport.Message{Type: transport.MsgSessionAck, Arg: uint64(epoch), Payload: payload}
		if err := conn.Send(ack); err != nil {
			conn.Close()
			continue // that reconnect died immediately; wait for the next
		}
		t.swap.Rebind(conn)
		t.sess.epoch = epoch
		t.sess.gen++
		t.ev.reconnected(int(epoch))
		return nil
	}
}
