package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"bbmig/internal/blkback"
	"bbmig/internal/blockdev"
	"bbmig/internal/metrics"
	"bbmig/internal/transport"
	"bbmig/internal/workload"
)

// TestRandomizedMigrationsConverge is the engine's end-to-end property test:
// across randomized initial disk fill, workload kind, engine stop
// conditions, transport buffer depth, bandwidth caps, and compression, every
// migration must leave the destination disk identical to the shadow truth,
// memory intact, and both engines error-free. Any lost write, stale push
// applied, or mis-ordered pull shows up as a block diff.
func TestRandomizedMigrationsConverge(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			e := newEnv(t)
			// randomized transport stack
			buffer := 1 << (3 + rng.Intn(5)) // 8..128
			cs, cd := transport.NewPipe(buffer)
			var meterAgnostic transport.Conn = cs
			if rng.Intn(2) == 1 {
				a, err := transport.NewCompressed(cs, 1+rng.Intn(8))
				if err != nil {
					t.Fatal(err)
				}
				b, err := transport.NewCompressed(cd, 1)
				if err != nil {
					t.Fatal(err)
				}
				meterAgnostic, cd = a, b
			}
			e.connSrc, e.connDst = meterAgnostic, cd

			cfg := Config{
				MaxDiskIters:       1 + rng.Intn(5),
				DiskDirtyThreshold: 1 + rng.Intn(256),
				MaxMemIters:        1 + rng.Intn(8),
				MemDirtyThreshold:  1 + rng.Intn(64),
				SkipUnused:         rng.Intn(2) == 1,
			}
			if rng.Intn(3) == 0 {
				cfg.BandwidthLimit = int64(16+rng.Intn(64)) << 20
			}

			kinds := []workload.Kind{workload.Web, workload.Kernel, workload.Stream}
			gen := workload.New(kinds[rng.Intn(len(kinds))], testBlocks, seed*7+1)
			stopIO := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			var replayErr error
			go func() {
				defer wg.Done()
				_, replayErr = workload.Replay(clockReal(), gen, testDomain, time.Hour,
					float64(50+rng.Intn(300)), e.submitVerified, stopIO)
			}()

			_, res := e.runTPM(cfg, nil)
			time.Sleep(time.Duration(rng.Intn(50)) * time.Millisecond)
			close(stopIO)
			wg.Wait()
			if replayErr != nil {
				t.Fatalf("workload: %v", replayErr)
			}
			e.checkConverged(res.CPU)
			if !res.Gate.Synchronized() {
				t.Fatal("gate not synchronized")
			}
		})
	}
}

// TestDisruptionTimeBounded measures the paper's §III-A disruption metric
// with the latency tracker: for the light web workload, request latencies
// while migrating must stay within an order of magnitude of the undisturbed
// baseline (no I/O blocking like the Bradford baseline's replay window).
func TestDisruptionTimeBounded(t *testing.T) {
	e := newEnv(t)
	lat := metrics.NewLatencyTracker("before")
	gen := workload.NewWebServer(testBlocks, 33)
	stopIO := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	timed := func(req blockdev.Request) error {
		start := time.Now()
		err := e.submitVerified(req)
		lat.Record(time.Since(start))
		return err
	}
	var replayErr error
	go func() {
		defer wg.Done()
		_, replayErr = workload.Replay(clockReal(), gen, testDomain, time.Hour, 300, timed, stopIO)
	}()
	time.Sleep(100 * time.Millisecond) // collect a baseline
	cfg := Config{
		OnFreeze: func() {
			lat.SetWindow("migrating")
			e.router.Freeze()
		},
		OnResume: func(g *blkback.PostCopyGate) {
			e.router.ResumeGate(g)
		},
	}
	// The "migrating" window opens at the freeze (downtime + post-copy is
	// where disruption concentrates; pre-copy contention is the other
	// component but a MemDisk doesn't contend).
	_, res := e.runTPM(cfg, nil)
	time.Sleep(100 * time.Millisecond)
	lat.SetWindow("after")
	time.Sleep(50 * time.Millisecond)
	close(stopIO)
	wg.Wait()
	if replayErr != nil {
		t.Fatalf("workload: %v", replayErr)
	}
	e.checkConverged(res.CPU)
	if lat.Count("before") == 0 || lat.Count("migrating") == 0 {
		t.Skipf("windows undersampled: before=%d migrating=%d", lat.Count("before"), lat.Count("migrating"))
	}
	// p50 during migration must not degrade by more than ~10x the baseline
	// p50 (the freeze stall lands on a handful of requests, visible in max,
	// not in the median).
	base, during := lat.Percentile("before", 0.5), lat.Percentile("migrating", 0.5)
	if base > 0 && during > 10*base+5*time.Millisecond {
		t.Fatalf("median latency %v while migrating vs %v baseline — disruption too high\n%s",
			during, base, lat.Summary())
	}
}
