package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"bbmig/internal/bitmap"
)

// Vault maintains per-peer divergence bitmaps so a VM can migrate
// incrementally among *any* recently visited host, not just straight back —
// the paper's §VII "local disk storage version maintenance" future-work
// item. ("Our implementation of IM can only act between the primary
// destination and the source machine.")
//
// The host currently running the VM owns the Vault. Every write the local
// blkback observes is recorded against every known peer (each peer's copy
// is now stale at those blocks). When the VM migrates to peer P, the
// initial bitmap is exactly P's divergence set; after the migration
// synchronizes, P's set resets to empty. Peers never seen get an all-set
// bitmap, degenerating to a full primary migration.
type Vault struct {
	mu        sync.Mutex
	numBlocks int
	peers     map[string]*bitmap.Bitmap
}

// NewVault returns a Vault for a disk of numBlocks.
func NewVault(numBlocks int) *Vault {
	if numBlocks < 0 {
		panic(fmt.Sprintf("core: negative vault size %d", numBlocks))
	}
	return &Vault{numBlocks: numBlocks, peers: make(map[string]*bitmap.Bitmap)}
}

// AddPeer registers a host that now holds a synchronized copy of the disk
// (e.g. the source we just arrived from). Its divergence set starts empty.
func (v *Vault) AddPeer(name string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.peers[name]; !ok {
		v.peers[name] = bitmap.New(v.numBlocks)
	}
}

// Peers returns the registered peer names.
func (v *Vault) Peers() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	names := make([]string, 0, len(v.peers))
	for n := range v.peers {
		names = append(names, n)
	}
	return names
}

// RecordWrites folds locally observed writes into every peer's divergence
// set. Call it per pre-copy-style interval with Backend.SwapDirty output,
// or once with a gate's FreshBitmap.
func (v *Vault) RecordWrites(dirty *bitmap.Bitmap) {
	if dirty.Len() != v.numBlocks {
		panic(fmt.Sprintf("core: vault size %d, bitmap %d", v.numBlocks, dirty.Len()))
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, bm := range v.peers {
		bm.Union(dirty)
	}
}

// RecordWriteRange folds one write of blocks [lo, hi) into every peer's
// divergence set — the per-request path for an interposed submit function.
func (v *Vault) RecordWriteRange(lo, hi int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, bm := range v.peers {
		bm.SetRange(lo, hi)
	}
}

// DivergePeer folds bm into one peer's divergence set, registering the peer
// if new. This is the rollback path for a failed pre-sync: only the peer
// that missed the blocks is re-diverged, unlike RecordWrites which charges
// every peer.
func (v *Vault) DivergePeer(name string, bm *bitmap.Bitmap) {
	if bm.Len() != v.numBlocks {
		panic(fmt.Sprintf("core: vault size %d, bitmap %d", v.numBlocks, bm.Len()))
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	cur, ok := v.peers[name]
	if !ok {
		cur = bitmap.New(v.numBlocks)
		v.peers[name] = cur
	}
	cur.Union(bm)
}

// InitialFor returns the bitmap to seed a migration to peer with: its
// divergence set if known, otherwise all-set (full migration). The returned
// bitmap is a copy.
func (v *Vault) InitialFor(peer string) *bitmap.Bitmap {
	v.mu.Lock()
	defer v.mu.Unlock()
	if bm, ok := v.peers[peer]; ok {
		return bm.Clone()
	}
	return bitmap.NewAllSet(v.numBlocks)
}

// MarkSynced records that peer now holds an identical copy (a migration to
// it completed): its divergence set resets and it is registered if new.
func (v *Vault) MarkSynced(peer string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if bm, ok := v.peers[peer]; ok {
		bm.Reset()
		return
	}
	v.peers[peer] = bitmap.New(v.numBlocks)
}

// MarshalBinary serializes the vault so it can travel with the VM to the
// next host (the divergence sets describe the *disk*, which moves).
// Layout: numBlocks(8) | peerCount(4) | per peer: nameLen(2) name bitmapLen(4) bitmap.
func (v *Vault) MarshalBinary() ([]byte, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	names := make([]string, 0, len(v.peers))
	for n := range v.peers {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic wire form
	out := make([]byte, 12)
	binary.LittleEndian.PutUint64(out, uint64(v.numBlocks))
	binary.LittleEndian.PutUint32(out[8:], uint32(len(names)))
	for _, name := range names {
		if len(name) > 0xFFFF {
			return nil, fmt.Errorf("core: peer name %q too long", name[:32])
		}
		bm, err := v.peers[name].MarshalBinary()
		if err != nil {
			return nil, err
		}
		var hdr [6]byte
		binary.LittleEndian.PutUint16(hdr[0:], uint16(len(name)))
		binary.LittleEndian.PutUint32(hdr[2:], uint32(len(bm)))
		out = append(out, hdr[:]...)
		out = append(out, name...)
		out = append(out, bm...)
	}
	return out, nil
}

// UnmarshalVault deserializes a vault produced by MarshalBinary.
func UnmarshalVault(data []byte) (*Vault, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("core: vault truncated: %d bytes", len(data))
	}
	numBlocks := int(binary.LittleEndian.Uint64(data))
	count := int(binary.LittleEndian.Uint32(data[8:]))
	v := NewVault(numBlocks)
	off := 12
	for i := 0; i < count; i++ {
		if len(data) < off+6 {
			return nil, fmt.Errorf("core: vault peer %d header truncated", i)
		}
		nameLen := int(binary.LittleEndian.Uint16(data[off:]))
		bmLen := int(binary.LittleEndian.Uint32(data[off+2:]))
		off += 6
		if len(data) < off+nameLen+bmLen {
			return nil, fmt.Errorf("core: vault peer %d body truncated", i)
		}
		name := string(data[off : off+nameLen])
		off += nameLen
		bm := &bitmap.Bitmap{}
		if err := bm.UnmarshalBinary(data[off : off+bmLen]); err != nil {
			return nil, fmt.Errorf("core: vault peer %q: %w", name, err)
		}
		off += bmLen
		if bm.Len() != numBlocks {
			return nil, fmt.Errorf("core: vault peer %q bitmap %d bits, want %d", name, bm.Len(), numBlocks)
		}
		v.peers[name] = bm
	}
	return v, nil
}

// DivergentBlocks reports how many blocks peer is behind by, or -1 if the
// peer is unknown.
func (v *Vault) DivergentBlocks(peer string) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	if bm, ok := v.peers[peer]; ok {
		return bm.Count()
	}
	return -1
}
