package workload

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"bbmig/internal/blockdev"
	"bbmig/internal/clock"
)

const testDiskBlocks = 1 << 20 // "4 GiB" disk for generator tests

func kinds() []Kind { return []Kind{Web, Stream, Diabolic, Kernel} }

func TestGeneratorsDeterministic(t *testing.T) {
	for _, k := range kinds() {
		g1 := New(k, testDiskBlocks, 42)
		g2 := New(k, testDiskBlocks, 42)
		for i := 0; i < 5000; i++ {
			a, b := g1.Next(), g2.Next()
			if a != b {
				t.Fatalf("%v: event %d differs: %+v vs %+v", k, i, a, b)
			}
		}
	}
}

func TestGeneratorsResetReproduces(t *testing.T) {
	for _, k := range kinds() {
		g := New(k, testDiskBlocks, 7)
		var first []Access
		for i := 0; i < 1000; i++ {
			first = append(first, g.Next())
		}
		g.Reset()
		for i := 0; i < 1000; i++ {
			if a := g.Next(); a != first[i] {
				t.Fatalf("%v: event %d differs after Reset", k, i)
			}
		}
	}
}

func TestGeneratorsSeedMatters(t *testing.T) {
	// Kinds with stochastic components must differ across seeds.
	for _, k := range []Kind{Web, Kernel} {
		g1, g2 := New(k, testDiskBlocks, 1), New(k, testDiskBlocks, 2)
		same := true
		for i := 0; i < 2000; i++ {
			if g1.Next() != g2.Next() {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%v: different seeds produced identical streams", k)
		}
	}
}

func TestGeneratorsTimeMonotoneAndInRange(t *testing.T) {
	for _, k := range kinds() {
		g := New(k, testDiskBlocks, 99)
		var last time.Duration
		for i := 0; i < 20000; i++ {
			a := g.Next()
			if a.At < last {
				t.Fatalf("%v: time went backwards at event %d: %v < %v", k, i, a.At, last)
			}
			last = a.At
			if a.Count < 1 {
				t.Fatalf("%v: empty access %+v", k, a)
			}
			if a.Block < 0 || a.Block+a.Count > testDiskBlocks {
				t.Fatalf("%v: access out of range %+v", k, a)
			}
			if a.Op != blockdev.Read && a.Op != blockdev.Write {
				t.Fatalf("%v: bad op %+v", k, a)
			}
		}
	}
}

// TestLocalityMatchesPaper reproduces the §IV-A-2 rewrite percentages:
// kernel build ≈ 11%, SPECweb banking ≈ 25.2%, Bonnie++ ≈ 35.6%.
func TestLocalityMatchesPaper(t *testing.T) {
	cases := []struct {
		kind      Kind
		horizon   time.Duration
		want      float64
		tolerance float64
	}{
		{Kernel, 10 * time.Minute, 0.110, 0.03},
		{Web, 30 * time.Minute, 0.252, 0.03},
		{Diabolic, 0, 0.356, 0.06}, // horizon = one cycle, set below
	}
	for _, c := range cases {
		g := New(c.kind, testDiskBlocks, 1)
		horizon := c.horizon
		if c.kind == Diabolic {
			horizon = g.(*Diabolical).CycleDuration()
		}
		st := Locality(g, horizon)
		if st.Writes < 100 {
			t.Fatalf("%v: only %d writes in %v", c.kind, st.Writes, horizon)
		}
		if diff := st.RewriteRatio - c.want; diff > c.tolerance || diff < -c.tolerance {
			t.Errorf("%v: rewrite ratio %.3f, want %.3f ± %.2f (%s)",
				c.kind, st.RewriteRatio, c.want, c.tolerance, st)
		}
	}
}

// TestWebUniqueDirtyRate checks the calibration behind Table I: the web
// server dirties roughly 8 unique blocks/s so that a ~790 s first pre-copy
// iteration leaves ~6-7k dirty blocks.
func TestWebUniqueDirtyRate(t *testing.T) {
	g := NewWebServer(testDiskBlocks, 3)
	st := Locality(g, 790*time.Second)
	if st.UniqueBlocks < 4000 || st.UniqueBlocks > 10000 {
		t.Fatalf("unique dirty blocks in 790s = %d, want ~6600", st.UniqueBlocks)
	}
}

// TestStreamingUniqueDirtyRate checks the streaming server's calibration:
// ~610 unique blocks dirtied in ~796 s.
func TestStreamingUniqueDirtyRate(t *testing.T) {
	g := NewStreaming(testDiskBlocks, 3)
	st := Locality(g, 796*time.Second)
	if st.UniqueBlocks < 400 || st.UniqueBlocks > 900 {
		t.Fatalf("unique dirty blocks in 796s = %d, want ~610", st.UniqueBlocks)
	}
}

// TestDiabolicalFootprint checks the Bonnie++ stand-in dirties ~660 MB of
// unique blocks per cycle (two ~330 MB test files).
func TestDiabolicalFootprint(t *testing.T) {
	g := NewDiabolical(testDiskBlocks, 3)
	st := Locality(g, g.CycleDuration())
	uniqueMB := st.UniqueBlocks * blockdev.BlockSize >> 20
	if uniqueMB < 500 || uniqueMB > 800 {
		t.Fatalf("unique dirty footprint per cycle = %d MB, want ~660", uniqueMB)
	}
}

func TestDiabolicalPhaseAt(t *testing.T) {
	g := NewDiabolical(testDiskBlocks, 1)
	if g.PhaseAt(0) != PhasePutc {
		t.Fatalf("cycle starts with %v", g.PhaseAt(0))
	}
	cycle := g.CycleDuration()
	if cycle <= 0 {
		t.Fatal("non-positive cycle")
	}
	// phase order is respected across a full cycle
	var seen []DiabolicalPhase
	for f := 0.001; f < 1.0; f += 0.002 {
		p := g.PhaseAt(time.Duration(float64(cycle) * f))
		if len(seen) == 0 || seen[len(seen)-1] != p {
			seen = append(seen, p)
		}
	}
	want := []DiabolicalPhase{PhasePutc, PhaseWrite, PhaseRewrite, PhaseGetc, PhaseRead, PhaseSeeks}
	if len(seen) != len(want) {
		t.Fatalf("phases %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("phases %v, want %v", seen, want)
		}
	}
	// second cycle wraps
	if g.PhaseAt(cycle+time.Millisecond) != PhasePutc {
		t.Fatal("cycle does not wrap")
	}
	// all phases have names
	for p := PhasePutc; p < numPhases; p++ {
		if p.String() == "unknown" {
			t.Fatalf("phase %d unnamed", p)
		}
	}
}

func TestDiabolicalRewritePhaseAlternates(t *testing.T) {
	g := NewDiabolical(testDiskBlocks, 1)
	// skip to the rewrite phase
	for {
		a := g.Next()
		if g.PhaseAt(a.At) == PhaseRewrite && a.Block >= g.FileBStart {
			// back-to-back read then write of the same chunk
			if a.Op == blockdev.Read {
				b := g.Next()
				if b.Op != blockdev.Write || b.Block != a.Block || b.Count != a.Count {
					t.Fatalf("rewrite pair mismatch: %+v then %+v", a, b)
				}
				return
			}
		}
		if a.At > g.CycleDuration() {
			t.Fatal("never reached rewrite phase")
		}
	}
}

func TestKindStringAndFactory(t *testing.T) {
	for _, k := range kinds() {
		if k.String() == "" || New(k, 1000, 1).Name() != k.String() {
			t.Fatalf("kind %d naming broken", k)
		}
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind has empty name")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("factory accepted unknown kind")
		}
	}()
	New(Kind(42), 1000, 1)
}

func TestProfiles(t *testing.T) {
	// Bonnie++ must churn memory hardest — that ordering produces the
	// paper's 110 ms vs 60 ms downtimes.
	if !(Profile(Diabolic).DirtyRate > Profile(Web).DirtyRate) {
		t.Fatal("diabolical memory dirty rate not highest")
	}
	if !(Profile(Web).DirtyRate > Profile(Stream).DirtyRate) {
		t.Fatal("web memory dirty rate not above streaming")
	}
	if Profile(Kind(42)).HotPages <= 0 {
		t.Fatal("default profile degenerate")
	}
}

func TestReplayAgainstDevice(t *testing.T) {
	dev := blockdev.NewMemDisk(testDiskBlocks, blockdev.BlockSize)
	g := NewWebServer(testDiskBlocks, 5)
	clk := clock.NewVirtual()
	st, err := Replay(clk, g, 1, 30*time.Second, 1, func(r blockdev.Request) error {
		if r.Op == blockdev.Write {
			return dev.WriteBlock(r.Block, r.Data)
		}
		return dev.ReadBlock(r.Block, r.Data)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Writes == 0 || st.Reads == 0 {
		t.Fatalf("stats %+v", st)
	}
	if dev.WrittenBlocks() == 0 {
		t.Fatal("no blocks written")
	}
	// virtual clock advanced to (about) the workload horizon
	if clk.Now() > 31*time.Second {
		t.Fatalf("virtual clock at %v after 30s replay", clk.Now())
	}
}

func TestReplayStops(t *testing.T) {
	g := NewStreaming(testDiskBlocks, 5)
	stop := make(chan struct{})
	close(stop)
	st, err := Replay(clock.NewVirtual(), g, 1, time.Hour, 1,
		func(r blockdev.Request) error { return nil }, stop)
	if err != nil {
		t.Fatal(err)
	}
	if st.Writes+st.Reads != 0 {
		t.Fatalf("replay ran after stop: %+v", st)
	}
}

func TestReplayPropagatesSubmitError(t *testing.T) {
	g := NewKernelBuild(testDiskBlocks, 5)
	wantErr := blockdev.ErrOutOfRange
	_, err := Replay(clock.NewVirtual(), g, 1, time.Hour, 1,
		func(r blockdev.Request) error { return wantErr }, nil)
	if err == nil {
		t.Fatal("submit error swallowed")
	}
}

func TestFillBlockDistinguishesGenerations(t *testing.T) {
	a := make([]byte, blockdev.BlockSize)
	b := make([]byte, blockdev.BlockSize)
	FillBlock(a, 10, 1)
	FillBlock(b, 10, 2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("generations produce identical blocks")
	}
	FillBlock(b, 10, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("FillBlock not deterministic")
		}
	}
}

func TestLocalityStatsString(t *testing.T) {
	st := LocalityStats{Writes: 100, UniqueBlocks: 75, Rewrites: 25, RewriteRatio: 0.25}
	s := st.String()
	for _, want := range []string{"100 writes", "75 unique", "25.0%"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String %q missing %q", s, want)
		}
	}
}

func TestExpoZeroMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if expo(rng, 0) != 0 {
		t.Fatal("zero mean not zero")
	}
	// clamped at 20x mean
	for i := 0; i < 1000; i++ {
		if d := expo(rng, time.Second); d > 20*time.Second {
			t.Fatalf("expo exceeded clamp: %v", d)
		}
	}
}
