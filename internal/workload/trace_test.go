package workload

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bbmig/internal/blockdev"
	"bbmig/internal/clock"
)

func TestTraceRecordReplayRoundTrip(t *testing.T) {
	gen := NewWebServer(testDiskBlocks, 5)
	var buf bytes.Buffer
	const horizon = 5000
	n, err := Record(gen, horizon, &buf, testDiskBlocks)
	if err != nil {
		t.Fatal(err)
	}
	if n != horizon {
		t.Fatalf("recorded %d events", n)
	}
	tr, err := ReadTrace("test", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumBlocks() != testDiskBlocks || tr.Len() != horizon {
		t.Fatalf("trace geometry %d/%d", tr.NumBlocks(), tr.Len())
	}
	// the replay must be event-for-event identical to the original stream
	gen.Reset()
	for i := 0; i < horizon; i++ {
		want := gen.Next()
		got := tr.Next()
		if got != want {
			t.Fatalf("event %d: %+v != %+v", i, got, want)
		}
	}
	if tr.Name() == "" {
		t.Fatal("unnamed trace")
	}
}

func TestTraceLoopsWithTimeShift(t *testing.T) {
	gen := NewStreaming(testDiskBlocks, 5)
	var buf bytes.Buffer
	if _, err := Record(gen, 100, &buf, testDiskBlocks); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace("loop", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var last time.Duration
	for i := 0; i < 350; i++ { // 3.5 passes
		a := tr.Next()
		if a.At < last {
			t.Fatalf("time went backwards at replayed event %d: %v < %v", i, a.At, last)
		}
		last = a.At
	}
	tr.Reset()
	if a := tr.Next(); a.At > last/2 {
		t.Fatal("Reset did not rewind the time shift")
	}
}

func TestTraceAsMigrationWorkload(t *testing.T) {
	// A recorded trace drives a device exactly like a live generator.
	gen := NewKernelBuild(1024, 5)
	var buf bytes.Buffer
	if _, err := Record(gen, 2000, &buf, 1024); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace("kb", &buf)
	if err != nil {
		t.Fatal(err)
	}
	dev := blockdev.NewMemDisk(1024, blockdev.BlockSize)
	st, err := Replay(clock.NewVirtual(), tr, 1, 30*time.Second, 1, func(r blockdev.Request) error {
		if r.Op == blockdev.Write {
			return dev.WriteBlock(r.Block, r.Data)
		}
		return dev.ReadBlock(r.Block, r.Data)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Writes == 0 || dev.WrittenBlocks() == 0 {
		t.Fatalf("trace replay did nothing: %+v", st)
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trace")
	gen := NewDiabolical(testDiskBlocks, 5)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Record(gen, 1000, f, testDiskBlocks); err != nil {
		t.Fatal(err)
	}
	f.Close()
	tr, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if _, err := LoadTrace(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing trace accepted")
	}
}

func TestTraceRejectsCorruption(t *testing.T) {
	gen := NewWebServer(testDiskBlocks, 5)
	var buf bytes.Buffer
	Record(gen, 10, &buf, testDiskBlocks)
	data := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("NOTTRACE"), data[8:]...),
		"truncated": data[:len(data)-5],
		"no events": data[:16],
		"bad op":    corruptAt(data, 16+8, 7),
		"bad block": corruptAt(data, 16+9, 0xFF), // pushes block out of range
	}
	for name, d := range cases {
		if _, err := ReadTrace(name, bytes.NewReader(d)); !errors.Is(err, ErrTraceCorrupt) {
			t.Errorf("%s: err = %v, want ErrTraceCorrupt", name, err)
		}
	}
}

func corruptAt(data []byte, off int, val byte) []byte {
	out := append([]byte(nil), data...)
	for i := 0; i < 4 && off+i < len(out); i++ {
		out[off+i] = val
	}
	return out
}
