// Package workload provides deterministic, seeded block-I/O generators that
// stand in for the paper's three evaluation workloads (§VI-B) plus the
// kernel-build trace used for the write-locality statistics (§IV-A-2):
//
//   - WebServer: a SPECweb2005-banking-like dynamic web server — bursty
//     writes with strong locality, scattered reads.
//   - Streaming: a Samba video-streaming server — continuous sequential
//     reads at stream rate, rare sequential log appends.
//   - Diabolical: a Bonnie++-like disk exerciser — phased sequential
//     output (per-char and block), rewrite, sequential input, and random
//     seeks at disk speed.
//   - KernelBuild: a compile-like trace of many small file creates with
//     occasional metadata rewrites.
//
// Each generator emits an infinite, reproducible stream of timed block
// accesses. The migration engine replays them against a real device in
// integration tests and examples; the paper-scale simulator consumes them
// directly at bitmap level. The same streams feed the locality analysis that
// reproduces the paper's rewrite percentages (kernel build ≈ 11%, SPECweb ≈
// 25.2%, Bonnie++ ≈ 35.6%).
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"bbmig/internal/blockdev"
)

// Access is one timed block-granular I/O: Count consecutive blocks starting
// at Block, issued at absolute workload time At.
type Access struct {
	At    time.Duration
	Op    blockdev.Op
	Block int
	Count int
}

// Generator produces an infinite, deterministic stream of accesses in
// non-decreasing At order. Generators are not safe for concurrent use.
type Generator interface {
	// Name identifies the workload in reports.
	Name() string
	// Next returns the next access.
	Next() Access
	// Reset restarts the stream from time zero with the original seed.
	Reset()
}

// MemoryProfile describes how a workload dirties guest memory, the input to
// the Xen-style iterative memory pre-copy. HotPages is the writable working
// set that is re-dirtied continuously; DirtyRate is pages/second touched
// (spread over the hot set).
type MemoryProfile struct {
	HotPages  int
	DirtyRate float64
}

// Kind selects one of the built-in workloads.
type Kind int

// Built-in workload kinds.
const (
	// Web is the dynamic web server (SPECweb-banking-like).
	Web Kind = iota
	// Stream is the low-latency video streaming server.
	Stream
	// Diabolic is the Bonnie++-like I/O-intensive server.
	Diabolic
	// Kernel is the Linux-kernel-build-like write trace.
	Kernel
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Web:
		return "dynamic-web-server"
	case Stream:
		return "low-latency-server"
	case Diabolic:
		return "diabolical-server"
	case Kernel:
		return "kernel-build"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// New returns the generator of the given kind over a disk of numBlocks.
func New(kind Kind, numBlocks int, seed int64) Generator {
	switch kind {
	case Web:
		return NewWebServer(numBlocks, seed)
	case Stream:
		return NewStreaming(numBlocks, seed)
	case Diabolic:
		return NewDiabolical(numBlocks, seed)
	case Kernel:
		return NewKernelBuild(numBlocks, seed)
	default:
		panic(fmt.Sprintf("workload: unknown kind %d", kind))
	}
}

// Profile returns the memory-dirtying profile the paper's workloads exhibit:
// the web server re-dirties a moderate working set (session state, buffer
// cache metadata), the streaming server barely touches memory, and Bonnie++
// churns its I/O buffers hard — which is why the paper's downtimes are
// 60/62/110 ms respectively.
func Profile(kind Kind) MemoryProfile {
	switch kind {
	case Web:
		return MemoryProfile{HotPages: 2000, DirtyRate: 4000}
	case Stream:
		return MemoryProfile{HotPages: 600, DirtyRate: 1200}
	case Diabolic:
		return MemoryProfile{HotPages: 900, DirtyRate: 25000}
	case Kernel:
		return MemoryProfile{HotPages: 4000, DirtyRate: 8000}
	default:
		return MemoryProfile{HotPages: 1000, DirtyRate: 2000}
	}
}

// merge2 interleaves two access streams by time. Generators use it to
// combine independent read and write processes.
type merge2 struct {
	a, b   func() Access
	pa, pb *Access
}

func (m *merge2) next() Access {
	if m.pa == nil {
		a := m.a()
		m.pa = &a
	}
	if m.pb == nil {
		b := m.b()
		m.pb = &b
	}
	if m.pa.At <= m.pb.At {
		out := *m.pa
		m.pa = nil
		return out
	}
	out := *m.pb
	m.pb = nil
	return out
}

func (m *merge2) reset() { m.pa, m.pb = nil, nil }

// expo returns an exponentially distributed interarrival time with the given
// mean, clamped to keep event streams well-behaved.
func expo(rng *rand.Rand, mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	d := time.Duration(rng.ExpFloat64() * float64(mean))
	if d > 20*mean {
		d = 20 * mean
	}
	return d
}
