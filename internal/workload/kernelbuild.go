package workload

import (
	"math/rand"
	"time"

	"bbmig/internal/blockdev"
)

// KernelBuild models a Linux kernel compilation: a steady stream of small
// object-file writes that mostly allocate fresh blocks, with occasional
// rewrites of filesystem metadata and repeatedly regenerated files. The
// paper measured that "about 11% of the write operations rewrite those
// blocks written before" during a kernel build (§IV-A-2).
type KernelBuild struct {
	// NumBlocks is the disk size in blocks.
	NumBlocks int
	// BuildStart and BuildBlocks bound the build output region.
	BuildStart, BuildBlocks int
	// WriteInterval is the mean gap between block writes.
	WriteInterval time.Duration
	// RewriteProb is the probability a write rewrites a recent block
	// (metadata, regenerated objects).
	RewriteProb float64
	// ReadInterval is the mean gap between source-file reads.
	ReadInterval time.Duration

	seed    int64
	rng     *rand.Rand
	m       merge2
	alloc   int
	recent  []int
	recentW int
	wTime   time.Duration
	rTime   time.Duration
}

// NewKernelBuild returns a KernelBuild generator with defaults calibrated to
// the paper's 11% rewrite locality.
func NewKernelBuild(numBlocks int, seed int64) *KernelBuild {
	k := &KernelBuild{
		NumBlocks:     numBlocks,
		BuildStart:    numBlocks / 3,
		BuildBlocks:   numBlocks / 3,
		WriteInterval: 7 * time.Millisecond, // ~140 block writes/s
		RewriteProb:   0.11,
		ReadInterval:  10 * time.Millisecond,
		seed:          seed,
	}
	k.Reset()
	return k
}

// Name implements Generator.
func (k *KernelBuild) Name() string { return Kernel.String() }

// Reset implements Generator.
func (k *KernelBuild) Reset() {
	k.rng = rand.New(rand.NewSource(k.seed))
	k.alloc = 0
	k.recent = make([]int, 0, 2048)
	k.recentW = 0
	k.wTime, k.rTime = 0, 0
	k.m = merge2{a: k.nextWrite, b: k.nextRead}
	k.m.reset()
}

// Next implements Generator.
func (k *KernelBuild) Next() Access { return k.m.next() }

func (k *KernelBuild) nextWrite() Access {
	k.wTime += expo(k.rng, k.WriteInterval)
	var blk int
	if len(k.recent) > 0 && k.rng.Float64() < k.RewriteProb {
		blk = k.recent[k.rng.Intn(len(k.recent))]
	} else {
		blk = k.BuildStart + (k.alloc % k.BuildBlocks)
		k.alloc++
		k.remember(blk)
	}
	return Access{At: k.wTime, Op: blockdev.Write, Block: blk, Count: 1}
}

func (k *KernelBuild) remember(blk int) {
	const ringMax = 2048
	if len(k.recent) < ringMax {
		k.recent = append(k.recent, blk)
		return
	}
	k.recent[k.recentW%ringMax] = blk
	k.recentW++
}

func (k *KernelBuild) nextRead() Access {
	k.rTime += expo(k.rng, k.ReadInterval)
	// source tree reads: first third of the disk
	return Access{At: k.rTime, Op: blockdev.Read, Block: k.rng.Intn(k.NumBlocks / 3), Count: 1}
}
