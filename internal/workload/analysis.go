package workload

import (
	"encoding/binary"
	"fmt"
	"time"

	"bbmig/internal/blockdev"
	"bbmig/internal/clock"
)

// LocalityStats summarizes the write locality of a trace prefix, the measure
// behind the paper's §IV-A-2 argument that delta-queue synchronization
// (Bradford et al.) retransmits redundant data while a bitmap does not.
type LocalityStats struct {
	Writes       int     // total block writes observed
	UniqueBlocks int     // distinct blocks written
	Rewrites     int     // writes that hit an already-written block
	RewriteRatio float64 // Rewrites / Writes
}

// Locality consumes the generator until duration elapses (workload time) and
// returns its write-locality statistics. The generator is left mid-stream;
// Reset it before reuse.
func Locality(g Generator, duration time.Duration) LocalityStats {
	seen := make(map[int]bool)
	var st LocalityStats
	for {
		a := g.Next()
		if a.At >= duration {
			break
		}
		if a.Op != blockdev.Write {
			continue
		}
		for i := 0; i < a.Count; i++ {
			st.Writes++
			if seen[a.Block+i] {
				st.Rewrites++
			} else {
				seen[a.Block+i] = true
				st.UniqueBlocks++
			}
		}
	}
	if st.Writes > 0 {
		st.RewriteRatio = float64(st.Rewrites) / float64(st.Writes)
	}
	return st
}

// String renders the stats in the paper's terms.
func (s LocalityStats) String() string {
	return fmt.Sprintf("%d writes, %d unique blocks, %.1f%% rewrite previously written blocks",
		s.Writes, s.UniqueBlocks, s.RewriteRatio*100)
}

// ReplayStats summarizes a Replay run.
type ReplayStats struct {
	Reads, Writes   int64 // requests submitted
	BlocksRead      int64
	BlocksWritten   int64
	WorkloadElapsed time.Duration // workload-time horizon actually replayed
}

// Replay drives a generator against a submit function (typically
// Backend.Submit or PostCopyGate.Submit) for `until` of workload time,
// compressed by speedup (speedup 100 replays 100 s of workload in 1 s). The
// clock paces the replay; with a Virtual clock the replay is instantaneous.
// Write payloads are synthesized deterministically from the block number and
// a per-block generation counter so that every rewrite changes the content
// (letting tests verify synchronization catches rewrites). Replay stops
// early, without error, when stop is closed.
func Replay(clk clock.Clock, g Generator, domain int, until time.Duration, speedup float64,
	submit func(blockdev.Request) error, stop <-chan struct{}) (ReplayStats, error) {

	if speedup <= 0 {
		speedup = 1
	}
	var st ReplayStats
	gen := make(map[int]uint32)
	buf := make([]byte, blockdev.BlockSize)
	for {
		select {
		case <-stop:
			return st, nil
		default:
		}
		a := g.Next()
		if a.At >= until {
			st.WorkloadElapsed = until
			return st, nil
		}
		if lag := time.Duration(float64(a.At)/speedup) - clk.Now(); lag > 0 {
			clk.Sleep(lag)
		}
		for i := 0; i < a.Count; i++ {
			blk := a.Block + i
			req := blockdev.Request{Op: a.Op, Block: blk, Domain: domain, Data: buf}
			if a.Op == blockdev.Write {
				gen[blk]++
				FillBlock(buf, blk, gen[blk])
				st.Writes++
				st.BlocksWritten++
			} else {
				st.Reads++
				st.BlocksRead++
			}
			if err := submit(req); err != nil {
				return st, fmt.Errorf("workload %s: %v op at block %d: %w", g.Name(), a.Op, blk, err)
			}
		}
		st.WorkloadElapsed = a.At
	}
}

// FillBlock writes a deterministic pattern identifying (block, generation)
// into buf. Verification code uses it to check that the destination holds
// the latest generation of every block.
func FillBlock(buf []byte, block int, generation uint32) {
	var seed [12]byte
	binary.LittleEndian.PutUint64(seed[0:], uint64(block))
	binary.LittleEndian.PutUint32(seed[8:], generation)
	for i := 0; i < len(buf); i++ {
		buf[i] = seed[i%12] ^ byte(i)
	}
}
