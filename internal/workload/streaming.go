package workload

import (
	"math/rand"
	"time"

	"bbmig/internal/blockdev"
)

// Streaming models the paper's low-latency server: a Samba share serving a
// video file to a client at under 500 kb/s — continuous sequential reads —
// plus occasional sequential log appends ("only a few writes for logs"). The
// paper observed 610 blocks dirtied during the first pre-copy iteration
// (~796 s), i.e. ~0.77 unique blocks/s, dominated by the log appends.
type Streaming struct {
	// NumBlocks is the disk size in blocks.
	NumBlocks int
	// VideoStart and VideoBlocks bound the streamed file (210 MB in the
	// paper).
	VideoStart, VideoBlocks int
	// ReadInterval is the gap between single-block stream reads; 65 ms
	// corresponds to ~500 kb/s.
	ReadInterval time.Duration
	// LogStart bounds the log region; appends walk forward from it.
	LogStart int
	// LogInterval is the mean gap between log appends.
	LogInterval time.Duration
	// TailRewriteProb is the probability an append lands in the current
	// tail block again (a partially filled block receiving more records)
	// rather than advancing to a fresh block.
	TailRewriteProb float64

	seed   int64
	rng    *rand.Rand
	m      merge2
	rTime  time.Duration
	rPos   int
	wTime  time.Duration
	logPos int
}

// NewStreaming returns a Streaming generator with paper-calibrated defaults.
func NewStreaming(numBlocks int, seed int64) *Streaming {
	videoBlocks := 210 * 1024 * 1024 / blockdev.BlockSize // the 210MB .rmvb
	if videoBlocks > numBlocks/2 {
		videoBlocks = numBlocks / 2
	}
	s := &Streaming{
		NumBlocks:       numBlocks,
		VideoStart:      numBlocks / 8,
		VideoBlocks:     videoBlocks,
		ReadInterval:    65 * time.Millisecond,
		LogStart:        numBlocks - numBlocks/16,
		LogInterval:     1300 * time.Millisecond,
		TailRewriteProb: 0.15,
		seed:            seed,
	}
	s.Reset()
	return s
}

// Name implements Generator.
func (s *Streaming) Name() string { return Stream.String() }

// Reset implements Generator.
func (s *Streaming) Reset() {
	s.rng = rand.New(rand.NewSource(s.seed))
	s.rTime, s.wTime = 0, 0
	s.rPos, s.logPos = 0, 0
	s.m = merge2{a: s.nextRead, b: s.nextWrite}
	s.m.reset()
}

// Next implements Generator.
func (s *Streaming) Next() Access { return s.m.next() }

func (s *Streaming) nextRead() Access {
	s.rTime += s.ReadInterval
	blk := s.VideoStart + s.rPos%s.VideoBlocks
	s.rPos++ // the player loops the file
	return Access{At: s.rTime, Op: blockdev.Read, Block: blk, Count: 1}
}

func (s *Streaming) nextWrite() Access {
	s.wTime += expo(s.rng, s.LogInterval)
	if s.rng.Float64() >= s.TailRewriteProb {
		s.logPos++
	}
	span := s.NumBlocks - s.LogStart
	blk := s.LogStart + s.logPos%span
	return Access{At: s.wTime, Op: blockdev.Write, Block: blk, Count: 1}
}
