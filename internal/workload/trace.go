package workload

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"bbmig/internal/blockdev"
)

// This file implements I/O trace recording and replay — the instrumentation
// behind the paper's §IV-A-2 statistics ("we have checked the storage write
// locality using some benchmarks": a kernel build, SPECweb, Bonnie++). A
// Recorder interposes on a submit path and logs every access; a TraceReader
// replays a recorded trace as a Generator, so captured workloads drive
// migrations exactly like the synthetic ones.
//
// Wire format: 16-byte header ("BBTRACE1" + block count), then one 17-byte
// record per access: at(8) op(1) block(4) count(4), little-endian.

const traceMagic = "BBTRACE1"

// ErrTraceCorrupt reports an unreadable trace file.
var ErrTraceCorrupt = errors.New("workload: corrupt trace")

// TraceWriter streams accesses to an io.Writer in trace format.
type TraceWriter struct {
	w         *bufio.Writer
	numBlocks int
	count     int64
}

// NewTraceWriter writes a trace header for a disk of numBlocks and returns
// the writer.
func NewTraceWriter(w io.Writer, numBlocks int) (*TraceWriter, error) {
	tw := &TraceWriter{w: bufio.NewWriterSize(w, 64<<10), numBlocks: numBlocks}
	var hdr [16]byte
	copy(hdr[:8], traceMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(numBlocks))
	if _, err := tw.w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("workload: trace header: %w", err)
	}
	return tw, nil
}

// Append logs one access.
func (t *TraceWriter) Append(a Access) error {
	var rec [17]byte
	binary.LittleEndian.PutUint64(rec[0:], uint64(a.At))
	rec[8] = byte(a.Op)
	binary.LittleEndian.PutUint32(rec[9:], uint32(a.Block))
	binary.LittleEndian.PutUint32(rec[13:], uint32(a.Count))
	if _, err := t.w.Write(rec[:]); err != nil {
		return fmt.Errorf("workload: trace append: %w", err)
	}
	t.count++
	return nil
}

// Count returns how many accesses have been appended.
func (t *TraceWriter) Count() int64 { return t.count }

// Flush drains the write buffer.
func (t *TraceWriter) Flush() error { return t.w.Flush() }

// Record consumes gen until the horizon and writes the trace to w,
// returning the number of accesses captured.
func Record(gen Generator, horizon int64, w io.Writer, numBlocks int) (int64, error) {
	tw, err := NewTraceWriter(w, numBlocks)
	if err != nil {
		return 0, err
	}
	for i := int64(0); i < horizon; i++ {
		if err := tw.Append(gen.Next()); err != nil {
			return tw.Count(), err
		}
	}
	return tw.Count(), tw.Flush()
}

// TraceReader replays a recorded trace as a Generator. The whole trace is
// held in memory so Reset is cheap; traces of tens of millions of events fit
// comfortably (17 B/event). When the trace is exhausted the reader repeats
// it, shifted in time, so migrations longer than the capture still see load
// (mirroring how the paper loops Bonnie++).
type TraceReader struct {
	name      string
	numBlocks int
	events    []Access
	pos       int
	loops     int
}

// ReadTrace parses a trace from r.
func ReadTrace(name string, r io.Reader) (*TraceReader, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrTraceCorrupt, err)
	}
	if string(hdr[:8]) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrTraceCorrupt, hdr[:8])
	}
	tr := &TraceReader{name: name, numBlocks: int(binary.LittleEndian.Uint64(hdr[8:]))}
	var rec [17]byte
	for {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("%w: record %d: %v", ErrTraceCorrupt, len(tr.events), err)
		}
		a := Access{
			At:    time.Duration(binary.LittleEndian.Uint64(rec[0:])),
			Op:    blockdev.Op(rec[8]),
			Block: int(binary.LittleEndian.Uint32(rec[9:])),
			Count: int(binary.LittleEndian.Uint32(rec[13:])),
		}
		if a.Op != blockdev.Read && a.Op != blockdev.Write {
			return nil, fmt.Errorf("%w: record %d has op %d", ErrTraceCorrupt, len(tr.events), rec[8])
		}
		if a.Count < 1 || a.Block < 0 || a.Block+a.Count > tr.numBlocks {
			return nil, fmt.Errorf("%w: record %d out of range", ErrTraceCorrupt, len(tr.events))
		}
		tr.events = append(tr.events, a)
	}
	if len(tr.events) == 0 {
		return nil, fmt.Errorf("%w: empty trace", ErrTraceCorrupt)
	}
	return tr, nil
}

// LoadTrace reads a trace file from disk.
func LoadTrace(path string) (*TraceReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(path, f)
}

// NumBlocks returns the disk size the trace was captured against.
func (t *TraceReader) NumBlocks() int { return t.numBlocks }

// Len returns the number of events in one pass of the trace.
func (t *TraceReader) Len() int { return len(t.events) }

// Name implements Generator.
func (t *TraceReader) Name() string { return fmt.Sprintf("trace(%s)", t.name) }

// Next implements Generator, looping the trace with a time shift when it
// runs out.
func (t *TraceReader) Next() Access {
	a := t.events[t.pos]
	// shift by completed passes BEFORE advancing, so the final event of a
	// pass is not double-shifted by its own wrap
	a.At += time.Duration(t.loops) * t.events[len(t.events)-1].At
	t.pos++
	if t.pos == len(t.events) {
		t.pos = 0
		t.loops++
	}
	return a
}

// Reset implements Generator.
func (t *TraceReader) Reset() { t.pos, t.loops = 0, 0 }
