package workload

import (
	"math/rand"
	"time"

	"bbmig/internal/blockdev"
)

// WebServer models a SPECweb2005-banking-like dynamic web application:
// client transactions arrive in bursts, each burst writing session/database
// blocks with strong locality (the paper measured 25.2% of SPECweb banking
// writes rewriting previously written blocks), while reads scatter over the
// whole image. Exported fields may be tuned before the first Next call.
type WebServer struct {
	// NumBlocks is the disk size in blocks.
	NumBlocks int
	// DBStart and DBBlocks bound the database/session region writes land in.
	DBStart, DBBlocks int
	// BurstEvery is the mean gap between write bursts.
	BurstEvery time.Duration
	// BurstWrites is the mean number of block writes per burst.
	BurstWrites int
	// BurstSpread is the duration a burst's writes spread over.
	BurstSpread time.Duration
	// RewriteProb is the probability a write rewrites a recently written
	// block rather than allocating a fresh one.
	RewriteProb float64
	// ReadInterval is the mean gap between (scattered) read requests.
	ReadInterval time.Duration

	seed    int64
	rng     *rand.Rand
	m       merge2
	alloc   int   // next fresh block offset within the DB region
	recent  []int // ring of recently written blocks
	recentW int
	wTime   time.Duration // write-process clock
	wLeft   int           // writes remaining in the current burst
	rTime   time.Duration // read-process clock
}

// NewWebServer returns a WebServer generator with paper-calibrated defaults:
// the average unique-dirty rate (~8 blocks/s) reproduces Table I's dynamic
// web server row (≈6680 retransferred blocks across 3 pre-copy iterations of
// a 39 070 MB disk at gigabit speed).
func NewWebServer(numBlocks int, seed int64) *WebServer {
	w := &WebServer{
		NumBlocks:    numBlocks,
		DBStart:      numBlocks / 4,
		DBBlocks:     numBlocks / 2,
		BurstEvery:   5 * time.Second,
		BurstWrites:  55,
		BurstSpread:  500 * time.Millisecond,
		RewriteProb:  0.252,
		ReadInterval: 20 * time.Millisecond,
		seed:         seed,
	}
	w.Reset()
	return w
}

// Name implements Generator.
func (w *WebServer) Name() string { return Web.String() }

// Reset implements Generator.
func (w *WebServer) Reset() {
	w.rng = rand.New(rand.NewSource(w.seed))
	w.alloc = 0
	w.recent = make([]int, 0, 4096)
	w.recentW = 0
	w.wTime, w.rTime = 0, 0
	w.wLeft = 0
	w.m = merge2{a: w.nextWrite, b: w.nextRead}
	w.m.reset()
}

// Next implements Generator.
func (w *WebServer) Next() Access { return w.m.next() }

func (w *WebServer) nextWrite() Access {
	if w.wLeft == 0 {
		// gap to the next burst
		w.wTime += expo(w.rng, w.BurstEvery)
		w.wLeft = 1 + w.rng.Intn(2*w.BurstWrites)
	}
	w.wLeft--
	w.wTime += time.Duration(w.rng.Int63n(int64(w.BurstSpread)))/time.Duration(w.BurstWrites) + 1
	var blk int
	if len(w.recent) > 0 && w.rng.Float64() < w.RewriteProb {
		blk = w.recent[w.rng.Intn(len(w.recent))]
	} else {
		blk = w.DBStart + (w.alloc % w.DBBlocks)
		// advance with small jumps so fresh blocks cluster like B-tree
		// leaf splits rather than a pure sequential stream
		w.alloc += 1 + w.rng.Intn(3)
		w.remember(blk)
	}
	return Access{At: w.wTime, Op: blockdev.Write, Block: blk, Count: 1}
}

func (w *WebServer) remember(blk int) {
	const ringMax = 4096
	if len(w.recent) < ringMax {
		w.recent = append(w.recent, blk)
		return
	}
	w.recent[w.recentW%ringMax] = blk
	w.recentW++
}

func (w *WebServer) nextRead() Access {
	w.rTime += expo(w.rng, w.ReadInterval)
	return Access{At: w.rTime, Op: blockdev.Read, Block: w.rng.Intn(w.NumBlocks), Count: 1}
}
