package workload

import (
	"math/rand"
	"time"

	"bbmig/internal/blockdev"
)

// DiabolicalPhase identifies one Bonnie++-like phase within a cycle.
type DiabolicalPhase int

// Phases, in cycle order, mirroring Bonnie++'s tests: sequential output
// per-character (putc) and per-block (write), rewrite, sequential input
// per-character (getc) and per-block (read), then random seeks.
const (
	PhasePutc DiabolicalPhase = iota
	PhaseWrite
	PhaseRewrite
	PhaseGetc
	PhaseRead
	PhaseSeeks
	numPhases
)

// String implements fmt.Stringer.
func (p DiabolicalPhase) String() string {
	switch p {
	case PhasePutc:
		return "putc"
	case PhaseWrite:
		return "write(2)"
	case PhaseRewrite:
		return "rewrite"
	case PhaseGetc:
		return "getc"
	case PhaseRead:
		return "read"
	case PhaseSeeks:
		return "seeks"
	default:
		return "unknown"
	}
}

// Diabolical models the paper's diabolical server: Bonnie++ running in the
// VM, "performing a number of simple tests ... including sequential output,
// sequential input, random seeks, sequential create and random create",
// writing the disk at disk speed. One cycle writes test file A once (putc),
// test file B once (write), rewrites B (rewrite), reads both back (getc,
// read), then random-seeks with 10% rewrites — so over a single cycle
// roughly a third of writes hit already-written blocks, reproducing the
// paper's 35.6% Bonnie++ rewrite locality.
type Diabolical struct {
	// NumBlocks is the disk size in blocks.
	NumBlocks int
	// FileBlocks is the size of each test file in blocks.
	FileBlocks int
	// FileAStart and FileBStart locate the two test files.
	FileAStart, FileBStart int
	// Rates in bytes/second for each sequential phase.
	PutcRate, WriteRate, RewriteRate, GetcRate, ReadRate int64
	// SeekOps is the number of random seeks per cycle; SeekRate their
	// rate in ops/second; SeekWriteFrac the fraction that rewrite the
	// block they land on (Bonnie++ default: 10%).
	SeekOps       int
	SeekRate      float64
	SeekWriteFrac float64
	// Chunk is the number of consecutive blocks per emitted access for the
	// sequential phases.
	Chunk int

	seed  int64
	rng   *rand.Rand
	t     time.Duration
	phase DiabolicalPhase
	pos   int  // progress within the current phase (blocks or ops)
	half  bool // rewrite sub-step: false=read, true=write
}

// NewDiabolical returns a Diabolical generator calibrated so that Table I's
// diabolical row emerges: ~330 MB test files give a per-pass unique-dirty
// footprint of ~660 MB, which across shrinking pre-copy iterations at
// gigabit speed yields ~1464 MB of retransferred blocks in 4 iterations.
func NewDiabolical(numBlocks int, seed int64) *Diabolical {
	fileBlocks := 330 * 1024 * 1024 / blockdev.BlockSize
	if fileBlocks > numBlocks/4 {
		fileBlocks = numBlocks / 4
	}
	d := &Diabolical{
		NumBlocks:     numBlocks,
		FileBlocks:    fileBlocks,
		FileAStart:    numBlocks / 8,
		FileBStart:    numBlocks/8 + fileBlocks + fileBlocks/8,
		PutcRate:      45 << 20,
		WriteRate:     90 << 20,
		RewriteRate:   25 << 20,
		GetcRate:      30 << 20,
		ReadRate:      90 << 20,
		SeekOps:       4000,
		SeekRate:      500,
		SeekWriteFrac: 0.10,
		Chunk:         16,
		seed:          seed,
	}
	d.Reset()
	return d
}

// Name implements Generator.
func (d *Diabolical) Name() string { return Diabolic.String() }

// Reset implements Generator.
func (d *Diabolical) Reset() {
	d.rng = rand.New(rand.NewSource(d.seed))
	d.t = 0
	d.phase = PhasePutc
	d.pos = 0
	d.half = false
}

// CycleDuration returns the length of one full phase cycle.
func (d *Diabolical) CycleDuration() time.Duration {
	fileBytes := int64(d.FileBlocks) * blockdev.BlockSize
	total := seqDur(fileBytes, d.PutcRate) +
		seqDur(fileBytes, d.WriteRate) +
		seqDur(2*fileBytes, d.RewriteRate) + // rewrite reads and writes
		seqDur(fileBytes, d.GetcRate) +
		seqDur(fileBytes, d.ReadRate) +
		time.Duration(float64(d.SeekOps)/d.SeekRate*float64(time.Second))
	return total
}

func seqDur(bytes, rate int64) time.Duration {
	return time.Duration(float64(bytes) / float64(rate) * float64(time.Second))
}

// PhaseAt returns which phase is active at absolute workload time t.
func (d *Diabolical) PhaseAt(t time.Duration) DiabolicalPhase {
	cycle := d.CycleDuration()
	if cycle <= 0 {
		return PhasePutc
	}
	rem := t % cycle
	fileBytes := int64(d.FileBlocks) * blockdev.BlockSize
	bounds := []time.Duration{
		seqDur(fileBytes, d.PutcRate),
		seqDur(fileBytes, d.WriteRate),
		seqDur(2*fileBytes, d.RewriteRate),
		seqDur(fileBytes, d.GetcRate),
		seqDur(fileBytes, d.ReadRate),
	}
	for i, b := range bounds {
		if rem < b {
			return DiabolicalPhase(i)
		}
		rem -= b
	}
	return PhaseSeeks
}

// Next implements Generator.
func (d *Diabolical) Next() Access {
	switch d.phase {
	case PhasePutc:
		return d.seq(blockdev.Write, d.FileAStart, d.PutcRate, PhaseWrite)
	case PhaseWrite:
		return d.seq(blockdev.Write, d.FileBStart, d.WriteRate, PhaseRewrite)
	case PhaseRewrite:
		return d.rewriteStep()
	case PhaseGetc:
		return d.seq(blockdev.Read, d.FileAStart, d.GetcRate, PhaseRead)
	case PhaseRead:
		return d.seq(blockdev.Read, d.FileBStart, d.ReadRate, PhaseSeeks)
	default:
		return d.seekStep()
	}
}

// seq emits the next chunk of a sequential pass over a file, advancing to
// nextPhase when the file is exhausted.
func (d *Diabolical) seq(op blockdev.Op, start int, rate int64, nextPhase DiabolicalPhase) Access {
	chunk := d.Chunk
	if rem := d.FileBlocks - d.pos; chunk > rem {
		chunk = rem
	}
	a := Access{At: d.t, Op: op, Block: start + d.pos, Count: chunk}
	d.t += seqDur(int64(chunk)*blockdev.BlockSize, rate)
	d.pos += chunk
	if d.pos >= d.FileBlocks {
		d.pos = 0
		d.phase = nextPhase
	}
	return a
}

// rewriteStep alternates read and write of the same chunk of file B, the way
// Bonnie++'s rewrite test reads, dirties, and rewrites each block.
func (d *Diabolical) rewriteStep() Access {
	chunk := d.Chunk
	if rem := d.FileBlocks - d.pos; chunk > rem {
		chunk = rem
	}
	op := blockdev.Read
	if d.half {
		op = blockdev.Write
	}
	a := Access{At: d.t, Op: op, Block: d.FileBStart + d.pos, Count: chunk}
	d.t += seqDur(int64(chunk)*blockdev.BlockSize, d.RewriteRate)
	if d.half {
		d.pos += chunk
		if d.pos >= d.FileBlocks {
			d.pos = 0
			d.phase = PhaseGetc
		}
	}
	d.half = !d.half
	return a
}

// seekStep emits one random single-block seek (read, or read-modify-write
// 10% of the time) across the two test files.
func (d *Diabolical) seekStep() Access {
	span := 2 * d.FileBlocks
	off := d.rng.Intn(span)
	blk := d.FileAStart + off
	if off >= d.FileBlocks {
		blk = d.FileBStart + (off - d.FileBlocks)
	}
	op := blockdev.Read
	if d.rng.Float64() < d.SeekWriteFrac {
		op = blockdev.Write
	}
	a := Access{At: d.t, Op: op, Block: blk, Count: 1}
	d.t += time.Duration(float64(time.Second) / d.SeekRate)
	d.pos++
	if d.pos >= d.SeekOps {
		d.pos = 0
		d.phase = PhasePutc
	}
	return a
}
