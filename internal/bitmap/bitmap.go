// Package bitmap implements the block-bitmap data structures from
// "Live and Incremental Whole-System Migration of Virtual Machines Using
// Block-Bitmap" (Luo et al., CLUSTER 2008).
//
// A block-bitmap records which disk blocks were written ("dirtied") during a
// migration phase: one bit per block, 0 = clean, 1 = dirty (paper §IV-A-2).
// Three variants are provided:
//
//   - Bitmap: a plain, dense bitmap. For a 32 GiB disk with 4 KiB blocks it
//     occupies 1 MiB, exactly as the paper computes.
//   - Atomic: a dense bitmap safe for concurrent writers, used by the block
//     backend driver which records writes while the migration engine scans.
//   - Layered: the paper's two-layer bitmap. The upper layer marks which
//     fixed-size chunks contain any dirty bit; leaf chunks are allocated
//     lazily on first write, so a sparse bitmap consumes little memory and
//     full scans skip clean chunks.
package bitmap

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

const wordBits = 64

// Bitmap is a dense bitmap over a fixed number of bits. The zero value is
// unusable; construct with New. Bitmap is not safe for concurrent use; see
// Atomic for the concurrent variant.
type Bitmap struct {
	words []uint64
	n     int // number of valid bits
}

// New returns a Bitmap of n bits, all clear.
func New(n int) *Bitmap {
	if n < 0 {
		panic(fmt.Sprintf("bitmap: negative size %d", n))
	}
	return &Bitmap{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// NewAllSet returns a Bitmap of n bits, all set. The paper's incremental
// migration generates an all-set bitmap when no prior bitmap exists,
// "suggesting that all the blocks need to be transmitted" (§V).
func NewAllSet(n int) *Bitmap {
	b := New(n)
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.clearTail()
	return b
}

// clearTail zeroes the unused high bits of the final word so that Count and
// scans never observe bits beyond Len.
func (b *Bitmap) clearTail() {
	if r := b.n % wordBits; r != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (uint64(1) << uint(r)) - 1
	}
}

// Len returns the number of bits in the bitmap.
func (b *Bitmap) Len() int { return b.n }

// check panics when i is outside the bitmap. Out-of-range block numbers
// indicate a protocol or driver bug, never a recoverable condition.
func (b *Bitmap) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitmap: index %d out of range [0,%d)", i, b.n))
	}
}

// Set marks bit i dirty.
func (b *Bitmap) Set(i int) {
	b.check(i)
	b.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear marks bit i clean.
func (b *Bitmap) Clear(i int) {
	b.check(i)
	b.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Test reports whether bit i is dirty.
func (b *Bitmap) Test(i int) bool {
	b.check(i)
	return b.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// SetRange marks bits [lo, hi) dirty. The block backend uses this when a
// write request spans several blocks (the paper splits each written area
// into 4 KiB blocks and sets the corresponding bits).
func (b *Bitmap) SetRange(lo, hi int) {
	if lo < 0 || hi > b.n || lo > hi {
		panic(fmt.Sprintf("bitmap: bad range [%d,%d) of %d", lo, hi, b.n))
	}
	for i := lo; i < hi; {
		w, off := i/wordBits, i%wordBits
		span := wordBits - off
		if rem := hi - i; rem < span {
			span = rem
		}
		var mask uint64
		if span == wordBits {
			mask = ^uint64(0)
		} else {
			mask = ((uint64(1) << uint(span)) - 1) << uint(off)
		}
		b.words[w] |= mask
		i += span
	}
}

// Reset clears every bit. The paper resets the bitmap at the start of each
// pre-copy iteration (§IV-A-3).
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Count returns the number of dirty bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// NextSet returns the index of the first dirty bit at or after i, or -1 if
// none. Scanning is word-at-a-time so sparse bitmaps are cheap to walk.
func (b *Bitmap) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= b.n {
		return -1
	}
	w := i / wordBits
	cur := b.words[w] >> uint(i%wordBits)
	if cur != 0 {
		return i + bits.TrailingZeros64(cur)
	}
	for w++; w < len(b.words); w++ {
		if b.words[w] != 0 {
			return w*wordBits + bits.TrailingZeros64(b.words[w])
		}
	}
	return -1
}

// ForEachSet calls fn for every dirty bit in ascending order. fn returning
// false stops the scan early.
func (b *Bitmap) ForEachSet(fn func(i int) bool) {
	for w, word := range b.words {
		for word != 0 {
			t := bits.TrailingZeros64(word)
			if !fn(w*wordBits + t) {
				return
			}
			word &^= 1 << uint(t)
		}
	}
}

// Union sets every bit in b that is set in other. Panics if lengths differ.
func (b *Bitmap) Union(other *Bitmap) {
	if other.n != b.n {
		panic(fmt.Sprintf("bitmap: union size mismatch %d != %d", other.n, b.n))
	}
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// Subtract clears every bit in b that is set in other.
func (b *Bitmap) Subtract(other *Bitmap) {
	if other.n != b.n {
		panic(fmt.Sprintf("bitmap: subtract size mismatch %d != %d", other.n, b.n))
	}
	for i, w := range other.words {
		b.words[i] &^= w
	}
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	c := New(b.n)
	copy(c.words, b.words)
	return c
}

// Equal reports whether two bitmaps have identical length and contents.
func (b *Bitmap) Equal(other *Bitmap) bool {
	if b.n != other.n {
		return false
	}
	for i, w := range b.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// marshal layout: 8-byte little-endian bit count, then the words.
const marshalHeader = 8

// MarshalBinary serializes the bitmap. The freeze-and-copy phase transfers
// exactly this representation to the destination (§IV-A-3).
func (b *Bitmap) MarshalBinary() ([]byte, error) {
	out := make([]byte, marshalHeader+8*len(b.words))
	binary.LittleEndian.PutUint64(out, uint64(b.n))
	for i, w := range b.words {
		binary.LittleEndian.PutUint64(out[marshalHeader+8*i:], w)
	}
	return out, nil
}

// UnmarshalBinary deserializes a bitmap produced by MarshalBinary.
func (b *Bitmap) UnmarshalBinary(data []byte) error {
	if len(data) < marshalHeader {
		return fmt.Errorf("bitmap: truncated header: %d bytes", len(data))
	}
	n := binary.LittleEndian.Uint64(data)
	const maxBits = 1 << 40 // 1 Tbit guard against corrupt headers
	if n > maxBits {
		return fmt.Errorf("bitmap: implausible bit count %d", n)
	}
	words := (int(n) + wordBits - 1) / wordBits
	if len(data) != marshalHeader+8*words {
		return fmt.Errorf("bitmap: want %d payload bytes for %d bits, have %d",
			8*words, n, len(data)-marshalHeader)
	}
	b.n = int(n)
	b.words = make([]uint64, words)
	for i := range b.words {
		b.words[i] = binary.LittleEndian.Uint64(data[marshalHeader+8*i:])
	}
	b.clearTail()
	return nil
}

// SizeBytes returns the in-memory size of the bit array, the quantity the
// paper uses to argue 4 KiB granularity (1 MiB per 32 GiB disk) over 512 B
// sectors (8 MiB).
func (b *Bitmap) SizeBytes() int { return 8 * len(b.words) }

// String renders a short human-readable summary, e.g. "bitmap{37/1024 set}".
func (b *Bitmap) String() string {
	return fmt.Sprintf("bitmap{%d/%d set}", b.Count(), b.n)
}
