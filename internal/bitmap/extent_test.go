package bitmap

import (
	"math/rand"
	"testing"
)

// collectExtents runs ForEachExtent and returns the visited extents.
func collectExtents(b *Bitmap, max int) []Extent {
	var out []Extent
	b.ForEachExtent(max, func(e Extent) bool {
		out = append(out, e)
		return true
	})
	return out
}

// checkExtentProperties asserts the extent iteration invariants against the
// ground truth of ForEachSet: the extents visit exactly the set bits, in
// ascending order, never exceeding max, and never spanning a clear bit.
func checkExtentProperties(t *testing.T, b *Bitmap, max int) {
	t.Helper()
	var fromSets []int
	b.ForEachSet(func(i int) bool { fromSets = append(fromSets, i); return true })

	var fromExtents []int
	prevEnd := -1
	for _, e := range collectExtents(b, max) {
		if e.Count < 1 {
			t.Fatalf("max=%d: empty extent %v", max, e)
		}
		if max > 0 && e.Count > max {
			t.Fatalf("max=%d: extent %v exceeds max", max, e)
		}
		if e.Start < prevEnd {
			t.Fatalf("max=%d: extent %v out of order (prev end %d)", max, e, prevEnd)
		}
		prevEnd = e.End()
		for i := e.Start; i < e.End(); i++ {
			if !b.Test(i) {
				t.Fatalf("max=%d: extent %v covers clear bit %d", max, e, i)
			}
			fromExtents = append(fromExtents, i)
		}
	}
	if len(fromExtents) != len(fromSets) {
		t.Fatalf("max=%d: extents visit %d bits, ForEachSet %d", max, len(fromExtents), len(fromSets))
	}
	for i := range fromSets {
		if fromExtents[i] != fromSets[i] {
			t.Fatalf("max=%d: bit %d visited as %d, want %d", max, i, fromExtents[i], fromSets[i])
		}
	}
}

func TestExtentsKnownPatterns(t *testing.T) {
	b := New(300)
	for _, i := range []int{0, 1, 2, 63, 64, 65, 130, 299} {
		b.Set(i)
	}
	got := collectExtents(b, 0)
	want := []Extent{{0, 3}, {63, 3}, {130, 1}, {299, 1}}
	if len(got) != len(want) {
		t.Fatalf("extents %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("extent %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Splitting: the run of 3 at 63 becomes [63,2)+[65,1) under max=2.
	got = collectExtents(b, 2)
	want = []Extent{{0, 2}, {2, 1}, {63, 2}, {65, 1}, {130, 1}, {299, 1}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("max=2 extent %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestExtentsEdgeCases(t *testing.T) {
	if got := collectExtents(New(0), 4); len(got) != 0 {
		t.Fatalf("empty bitmap yielded %v", got)
	}
	if got := collectExtents(New(100), 4); len(got) != 0 {
		t.Fatalf("all-clear bitmap yielded %v", got)
	}
	full := NewAllSet(130)
	checkExtentProperties(t, full, 0)
	checkExtentProperties(t, full, 1)
	checkExtentProperties(t, full, 64)
	if got := collectExtents(full, 0); len(got) != 1 || got[0] != (Extent{0, 130}) {
		t.Fatalf("all-set unsplit extents = %v", got)
	}
	// Early stop.
	n := 0
	full.ForEachExtent(7, func(Extent) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d extents", n)
	}
}

func TestExtentsRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		size := 1 + rng.Intn(1000)
		b := New(size)
		// Mix single bits and runs so word boundaries get crossed often.
		for k := rng.Intn(30); k > 0; k-- {
			if rng.Intn(2) == 0 {
				b.Set(rng.Intn(size))
			} else {
				lo := rng.Intn(size)
				hi := lo + 1 + rng.Intn(size-lo)
				b.SetRange(lo, hi)
			}
		}
		for _, max := range []int{0, 1, 2, 3, 63, 64, 65, size + 10} {
			checkExtentProperties(t, b, max)
		}
	}
}

func TestNextClear(t *testing.T) {
	b := New(200)
	b.SetRange(0, 200)
	if got := b.nextClear(0); got != 200 {
		t.Fatalf("nextClear on all-set = %d, want 200", got)
	}
	b.Clear(77)
	if got := b.nextClear(0); got != 77 {
		t.Fatalf("nextClear = %d, want 77", got)
	}
	if got := b.nextClear(78); got != 200 {
		t.Fatalf("nextClear(78) = %d, want 200", got)
	}
	// Tail handling: the final partial word's unused bits must not read as
	// set or clear positions beyond Len.
	c := NewAllSet(70)
	if got := c.nextClear(0); got != 70 {
		t.Fatalf("nextClear beyond tail = %d, want 70", got)
	}
}

func TestNextExtent(t *testing.T) {
	b := New(100)
	b.SetRange(10, 20)
	b.Set(50)
	if got := b.NextExtent(0, 0); got != (Extent{10, 10}) {
		t.Fatalf("NextExtent = %v", got)
	}
	if got := b.NextExtent(0, 4); got != (Extent{10, 4}) {
		t.Fatalf("clipped NextExtent = %v", got)
	}
	if got := b.NextExtent(21, 0); got != (Extent{50, 1}) {
		t.Fatalf("NextExtent after run = %v", got)
	}
	if got := b.NextExtent(51, 0); got.Count != 0 {
		t.Fatalf("NextExtent past last = %v", got)
	}
}

func TestClearRange(t *testing.T) {
	b := NewAllSet(300)
	b.ClearRange(10, 200)
	for i := 0; i < 300; i++ {
		want := i < 10 || i >= 200
		if b.Test(i) != want {
			t.Fatalf("bit %d = %v after ClearRange", i, b.Test(i))
		}
	}
	b.ClearRange(0, 0) // empty range is a no-op
	if b.Count() != 10+100 {
		t.Fatalf("count %d", b.Count())
	}
}

// FuzzExtents feeds arbitrary bitmap contents and max values through the
// extent iterator and checks the coverage invariants.
func FuzzExtents(f *testing.F) {
	f.Add([]byte{0xFF, 0x00, 0xAA}, 3, uint8(4))
	f.Add([]byte{}, 1, uint8(1))
	f.Add([]byte{0x01}, 8, uint8(0))
	f.Fuzz(func(t *testing.T, words []byte, extra int, max uint8) {
		size := len(words)*8 + abs(extra)%9
		if size > 1<<16 {
			size = 1 << 16
		}
		b := New(size)
		for i := 0; i < size; i++ {
			if i/8 < len(words) && words[i/8]&(1<<(i%8)) != 0 {
				b.Set(i)
			}
		}
		checkExtentProperties(t, b, int(max))
	})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
