package bitmap

import (
	"fmt"
	"math/bits"
)

// Extent is a run of consecutive set bits: blocks [Start, Start+Count).
// The migration engine coalesces dirty-bitmap runs into extents so one wire
// frame can carry many contiguous blocks instead of paying the per-message
// framing and flush cost for each (the paper ships every block as its own
// message over the single blkd socket, which leaves disk iterations
// latency-bound rather than bandwidth-bound).
type Extent struct {
	Start int
	Count int
}

// End returns the first block past the extent.
func (e Extent) End() int { return e.Start + e.Count }

// String renders the extent as a half-open interval.
func (e Extent) String() string { return fmt.Sprintf("[%d,%d)", e.Start, e.Start+e.Count) }

// nextClear returns the index of the first clear bit at or after i, or Len
// if every remaining bit is set. Scanning is word-at-a-time, mirroring
// NextSet.
func (b *Bitmap) nextClear(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= b.n {
		return b.n
	}
	w := i / wordBits
	// Invert so clear bits become set, mask off the bits below i.
	cur := ^b.words[w] >> uint(i%wordBits)
	if cur != 0 {
		j := i + bits.TrailingZeros64(cur)
		if j > b.n {
			return b.n
		}
		return j
	}
	for w++; w < len(b.words); w++ {
		if inv := ^b.words[w]; inv != 0 {
			j := w*wordBits + bits.TrailingZeros64(inv)
			if j > b.n {
				return b.n
			}
			return j
		}
	}
	return b.n
}

// ForEachExtent calls fn for every run of set bits in ascending order,
// splitting runs longer than max into chunks of at most max bits. A max of
// zero or less means runs are never split. fn returning false stops the
// scan early.
//
// The extents visit exactly the set bits: concatenating them reproduces
// ForEachSet's sequence.
func (b *Bitmap) ForEachExtent(max int, fn func(e Extent) bool) {
	i := b.NextSet(0)
	for i >= 0 {
		j := b.nextClear(i) // end of the maximal run starting at i
		for start := i; start < j; {
			count := j - start
			if max > 0 && count > max {
				count = max
			}
			if !fn(Extent{Start: start, Count: count}) {
				return
			}
			start += count
		}
		if j >= b.n {
			return
		}
		i = b.NextSet(j)
	}
}

// NextExtent returns the first run of set bits starting at or after i,
// clipped to at most max bits (max <= 0 means unclipped), or a zero-Count
// extent when no set bit remains. The post-copy pusher uses this to coalesce
// its remaining set around the push cursor.
func (b *Bitmap) NextExtent(i, max int) Extent {
	start := b.NextSet(i)
	if start < 0 {
		return Extent{}
	}
	end := b.nextClear(start)
	count := end - start
	if max > 0 && count > max {
		count = max
	}
	return Extent{Start: start, Count: count}
}

// ClearRange clears bits [lo, hi), the inverse of SetRange.
func (b *Bitmap) ClearRange(lo, hi int) {
	if lo < 0 || hi > b.n || lo > hi {
		panic(fmt.Sprintf("bitmap: bad range [%d,%d) of %d", lo, hi, b.n))
	}
	for i := lo; i < hi; {
		w, off := i/wordBits, i%wordBits
		span := wordBits - off
		if rem := hi - i; rem < span {
			span = rem
		}
		var mask uint64
		if span == wordBits {
			mask = ^uint64(0)
		} else {
			mask = ((uint64(1) << uint(span)) - 1) << uint(off)
		}
		b.words[w] &^= mask
		i += span
	}
}
