package bitmap

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// Atomic is a dense bitmap safe for concurrent use. The block backend driver
// sets bits from the domain's I/O path while the migration engine concurrently
// scans, snapshots, and resets the bitmap, mirroring the paper's blkback
// (writer) / blkd (reader) split.
//
// All operations are lock-free word-level atomics. Snapshot and Reset are not
// mutually atomic with in-flight writers; the engine tolerates this the same
// way the paper does — a write racing a snapshot lands in either the current
// or the next iteration's bitmap, both of which preserve consistency because
// a block recorded "dirty" is simply retransmitted.
type Atomic struct {
	words []atomic.Uint64
	n     int
}

// NewAtomic returns an Atomic bitmap of n bits, all clear.
func NewAtomic(n int) *Atomic {
	if n < 0 {
		panic(fmt.Sprintf("bitmap: negative size %d", n))
	}
	return &Atomic{words: make([]atomic.Uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the number of bits.
func (a *Atomic) Len() int { return a.n }

func (a *Atomic) check(i int) {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("bitmap: index %d out of range [0,%d)", i, a.n))
	}
}

// Set marks bit i dirty.
func (a *Atomic) Set(i int) {
	a.check(i)
	a.words[i/wordBits].Or(1 << uint(i%wordBits))
}

// Clear marks bit i clean.
func (a *Atomic) Clear(i int) {
	a.check(i)
	a.words[i/wordBits].And(^(uint64(1) << uint(i%wordBits)))
}

// Test reports whether bit i is dirty.
func (a *Atomic) Test(i int) bool {
	a.check(i)
	return a.words[i/wordBits].Load()&(1<<uint(i%wordBits)) != 0
}

// SetRange marks bits [lo, hi) dirty.
func (a *Atomic) SetRange(lo, hi int) {
	if lo < 0 || hi > a.n || lo > hi {
		panic(fmt.Sprintf("bitmap: bad range [%d,%d) of %d", lo, hi, a.n))
	}
	for i := lo; i < hi; {
		w, off := i/wordBits, i%wordBits
		span := wordBits - off
		if rem := hi - i; rem < span {
			span = rem
		}
		var mask uint64
		if span == wordBits {
			mask = ^uint64(0)
		} else {
			mask = ((uint64(1) << uint(span)) - 1) << uint(off)
		}
		a.words[w].Or(mask)
		i += span
	}
}

// Count returns the number of dirty bits at this instant.
func (a *Atomic) Count() int {
	c := 0
	for i := range a.words {
		c += bits.OnesCount64(a.words[i].Load())
	}
	return c
}

// Any reports whether any bit is set.
func (a *Atomic) Any() bool {
	for i := range a.words {
		if a.words[i].Load() != 0 {
			return true
		}
	}
	return false
}

// Snapshot copies the current contents into a plain Bitmap.
func (a *Atomic) Snapshot() *Bitmap {
	b := New(a.n)
	for i := range a.words {
		b.words[i] = a.words[i].Load()
	}
	return b
}

// SwapOut atomically captures and clears the bitmap word by word, returning
// the captured contents. This is the per-iteration "copy then reset" step of
// the pre-copy loop (§IV-A-3): blkd reads the bitmap from blkback and blkback
// resets it for the next iteration. Word-level swap guarantees no set bit is
// ever lost — a concurrent Set lands either in the returned snapshot or in
// the freshly cleared bitmap.
func (a *Atomic) SwapOut() *Bitmap {
	b := New(a.n)
	for i := range a.words {
		b.words[i] = a.words[i].Swap(0)
	}
	return b
}

// Reset clears all bits.
func (a *Atomic) Reset() {
	for i := range a.words {
		a.words[i].Store(0)
	}
}

// LoadFrom overwrites the contents from a plain Bitmap of identical length.
func (a *Atomic) LoadFrom(b *Bitmap) {
	if b.n != a.n {
		panic(fmt.Sprintf("bitmap: load size mismatch %d != %d", b.n, a.n))
	}
	for i := range a.words {
		a.words[i].Store(b.words[i])
	}
}
