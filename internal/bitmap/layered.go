package bitmap

import "fmt"

// DefaultChunkBits is the number of bits per leaf chunk of a Layered bitmap.
// 32 Ki bits = 4 KiB of leaf memory, covering 128 MiB of disk at 4 KiB
// blocks; the upper layer for a 1 TiB disk then has only 8192 entries.
const DefaultChunkBits = 32 * 1024

// Layered is the paper's two-layer bitmap (§IV-A-2): the bit space is divided
// into fixed-size chunks; an upper-layer bitmap records which chunks contain
// any dirty bit, and leaf chunks are allocated lazily on the first write to
// their region. Scans consult the upper layer first and skip clean chunks,
// which the paper introduces to keep per-iteration scan cost low on large,
// sparse bitmaps. Layered is not safe for concurrent use.
type Layered struct {
	upper     *Bitmap   // one bit per chunk: "this chunk may contain dirty bits"
	chunks    []*Bitmap // nil until first Set in the chunk's range
	chunkBits int
	n         int
}

// NewLayered returns a Layered bitmap of n bits with the default chunk size.
func NewLayered(n int) *Layered { return NewLayeredChunk(n, DefaultChunkBits) }

// NewLayeredChunk returns a Layered bitmap of n bits with chunkBits bits per
// leaf chunk.
func NewLayeredChunk(n, chunkBits int) *Layered {
	if n < 0 || chunkBits <= 0 {
		panic(fmt.Sprintf("bitmap: bad layered size n=%d chunkBits=%d", n, chunkBits))
	}
	nchunks := (n + chunkBits - 1) / chunkBits
	return &Layered{
		upper:     New(nchunks),
		chunks:    make([]*Bitmap, nchunks),
		chunkBits: chunkBits,
		n:         n,
	}
}

// Len returns the number of bits.
func (l *Layered) Len() int { return l.n }

func (l *Layered) check(i int) {
	if i < 0 || i >= l.n {
		panic(fmt.Sprintf("bitmap: index %d out of range [0,%d)", i, l.n))
	}
}

// chunkLen returns the number of valid bits in chunk c (the final chunk may
// be short).
func (l *Layered) chunkLen(c int) int {
	if rem := l.n - c*l.chunkBits; rem < l.chunkBits {
		return rem
	}
	return l.chunkBits
}

// Set marks bit i dirty, allocating the leaf chunk if needed.
func (l *Layered) Set(i int) {
	l.check(i)
	c := i / l.chunkBits
	if l.chunks[c] == nil {
		l.chunks[c] = New(l.chunkLen(c))
	}
	l.chunks[c].Set(i % l.chunkBits)
	l.upper.Set(c)
}

// Clear marks bit i clean. The upper-layer bit is left set even if the chunk
// becomes empty; it is a conservative "may contain dirty" hint, re-tightened
// by Reset. This matches the cheap-write-path design: clearing must not scan.
func (l *Layered) Clear(i int) {
	l.check(i)
	c := i / l.chunkBits
	if l.chunks[c] != nil {
		l.chunks[c].Clear(i % l.chunkBits)
	}
}

// Test reports whether bit i is dirty.
func (l *Layered) Test(i int) bool {
	l.check(i)
	c := i / l.chunkBits
	return l.chunks[c] != nil && l.chunks[c].Test(i%l.chunkBits)
}

// SetRange marks bits [lo, hi) dirty.
func (l *Layered) SetRange(lo, hi int) {
	if lo < 0 || hi > l.n || lo > hi {
		panic(fmt.Sprintf("bitmap: bad range [%d,%d) of %d", lo, hi, l.n))
	}
	for i := lo; i < hi; {
		c := i / l.chunkBits
		end := (c + 1) * l.chunkBits
		if end > hi {
			end = hi
		}
		if l.chunks[c] == nil {
			l.chunks[c] = New(l.chunkLen(c))
		}
		l.chunks[c].SetRange(i%l.chunkBits, end-c*l.chunkBits)
		l.upper.Set(c)
		i = end
	}
}

// Count returns the number of dirty bits, skipping unallocated chunks.
func (l *Layered) Count() int {
	total := 0
	l.upper.ForEachSet(func(c int) bool {
		if l.chunks[c] != nil {
			total += l.chunks[c].Count()
		}
		return true
	})
	return total
}

// Any reports whether any bit is set.
func (l *Layered) Any() bool {
	any := false
	l.upper.ForEachSet(func(c int) bool {
		if l.chunks[c] != nil && l.chunks[c].Any() {
			any = true
			return false
		}
		return true
	})
	return any
}

// ForEachSet calls fn for every dirty bit in ascending order, consulting the
// upper layer to skip clean chunks — the scan optimization the paper's
// layered design exists for. fn returning false stops early.
func (l *Layered) ForEachSet(fn func(i int) bool) {
	stopped := false
	l.upper.ForEachSet(func(c int) bool {
		ch := l.chunks[c]
		if ch == nil {
			return true
		}
		base := c * l.chunkBits
		ch.ForEachSet(func(j int) bool {
			if !fn(base + j) {
				stopped = true
				return false
			}
			return true
		})
		return !stopped
	})
}

// NextSet returns the first dirty bit at or after i, or -1.
func (l *Layered) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	for i < l.n {
		c := i / l.chunkBits
		uc := l.upper.NextSet(c)
		if uc < 0 {
			return -1
		}
		if uc != c {
			i = uc * l.chunkBits
			c = uc
		}
		ch := l.chunks[c]
		if ch != nil {
			if j := ch.NextSet(i % l.chunkBits); j >= 0 {
				return c*l.chunkBits + j
			}
		}
		i = (c + 1) * l.chunkBits
	}
	return -1
}

// Reset clears the bitmap and releases every leaf chunk back to the
// allocator, restoring the minimal-memory state.
func (l *Layered) Reset() {
	l.upper.Reset()
	for i := range l.chunks {
		l.chunks[i] = nil
	}
}

// Dense converts to a plain Bitmap of the same contents.
func (l *Layered) Dense() *Bitmap {
	b := New(l.n)
	l.ForEachSet(func(i int) bool { b.Set(i); return true })
	return b
}

// LoadFrom overwrites the contents from a dense bitmap of identical length.
func (l *Layered) LoadFrom(b *Bitmap) {
	if b.Len() != l.n {
		panic(fmt.Sprintf("bitmap: load size mismatch %d != %d", b.Len(), l.n))
	}
	l.Reset()
	b.ForEachSet(func(i int) bool { l.Set(i); return true })
}

// SizeBytes returns the memory consumed by allocated chunks plus the upper
// layer, the quantity the paper's "reduce bitmap size and save memory space"
// claim is about.
func (l *Layered) SizeBytes() int {
	total := l.upper.SizeBytes()
	for _, ch := range l.chunks {
		if ch != nil {
			total += ch.SizeBytes()
		}
	}
	return total
}

// AllocatedChunks returns how many leaf chunks have been materialized.
func (l *Layered) AllocatedChunks() int {
	n := 0
	for _, ch := range l.chunks {
		if ch != nil {
			n++
		}
	}
	return n
}

// String renders a short summary.
func (l *Layered) String() string {
	return fmt.Sprintf("layered{%d/%d set, %d/%d chunks}", l.Count(), l.n, l.AllocatedChunks(), len(l.chunks))
}
