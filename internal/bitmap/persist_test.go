package bitmap

import (
	"os"
	"path/filepath"
	"testing"
)

func samplePersistBitmap(n int) *Bitmap {
	b := New(n)
	for i := 0; i < n; i += 7 {
		b.Set(i)
	}
	b.Set(n - 1)
	return b
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.bm")
	for _, n := range []int{1, 63, 64, 65, 4096} {
		b := samplePersistBitmap(n)
		if err := b.SaveFile(path); err != nil {
			t.Fatalf("n=%d save: %v", n, err)
		}
		got, err := LoadFile(path)
		if err != nil {
			t.Fatalf("n=%d load: %v", n, err)
		}
		if !got.Equal(b) {
			t.Fatalf("n=%d round-trip mismatch", n)
		}
	}
}

// TestSaveOverwritesAtomically: a save over an existing file replaces it
// whole, and a stale .tmp from a crashed previous save is harmless.
func TestSaveOverwritesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bm")
	first := samplePersistBitmap(128)
	if err := first.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash that left a garbage temp file behind.
	if err := os.WriteFile(path+".tmp", []byte("garbage from a dead process"), 0o644); err != nil {
		t.Fatal(err)
	}
	second := New(128)
	second.Set(5)
	if err := second.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(second) {
		t.Fatal("overwrite did not take")
	}
}

// TestLoadDetectsPartialWrites: every truncation of a saved file must fail
// to load — a partially flushed bitmap silently missing dirty blocks would
// corrupt a later incremental migration.
func TestLoadDetectsPartialWrites(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.bm")
	b := samplePersistBitmap(1024)
	if err := b.SaveFile(full); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 3, 7, 8, 12, len(data) / 2, len(data) - 1} {
		torn := filepath.Join(dir, "torn.bm")
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if got, err := LoadFile(torn); err == nil {
			t.Fatalf("truncation to %d bytes loaded a %d-bit bitmap", cut, got.Len())
		}
	}
}

// TestLoadDetectsBitRot: single-byte corruption anywhere in the payload
// fails the checksum.
func TestLoadDetectsBitRot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rot.bm")
	b := samplePersistBitmap(512)
	if err := b.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []int{8, 16, len(data) - 1} {
		flipped := append([]byte(nil), data...)
		flipped[at] ^= 0x10
		if err := os.WriteFile(path, flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadFile(path); err == nil {
			t.Fatalf("bit flip at %d loaded successfully", at)
		}
	}
}

// TestLoadLegacyFormat: files written before the checksum header (a bare
// marshalled bitmap) still load.
func TestLoadLegacyFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.bm")
	b := samplePersistBitmap(256)
	raw, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(b) {
		t.Fatal("legacy round-trip mismatch")
	}
}

// TestLoadMissingFile returns an error rather than an empty bitmap.
func TestLoadMissingFile(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "absent.bm")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}

// FuzzLoadBytes feeds arbitrary bytes through the load path (via a temp
// file): it must either load a consistent bitmap or error — never panic.
func FuzzLoadBytes(f *testing.F) {
	b := samplePersistBitmap(128)
	raw, _ := b.MarshalBinary()
	f.Add(raw)
	f.Add([]byte("BBM1junk"))
	f.Add([]byte{})
	dir := f.TempDir()
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(dir, "fuzz.bm")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		got, err := LoadFile(path)
		if err != nil {
			return
		}
		if got.Len() < 0 || got.Count() > got.Len() {
			t.Fatalf("inconsistent bitmap from %d bytes: len=%d count=%d", len(data), got.Len(), got.Count())
		}
	})
}
