package bitmap

import (
	"testing"
	"testing/quick"
)

func TestLayeredBasics(t *testing.T) {
	l := NewLayeredChunk(1000, 100)
	if l.Len() != 1000 || l.Any() {
		t.Fatal("new layered not empty")
	}
	l.Set(0)
	l.Set(150)
	l.Set(999)
	if l.Count() != 3 || !l.Test(0) || !l.Test(150) || !l.Test(999) || l.Test(1) {
		t.Fatal("Set/Test wrong")
	}
	if l.AllocatedChunks() != 3 {
		t.Fatalf("AllocatedChunks = %d, want 3 (lazy allocation)", l.AllocatedChunks())
	}
	l.Clear(150)
	if l.Test(150) || l.Count() != 2 {
		t.Fatal("Clear wrong")
	}
	// Clearing a bit in a never-allocated chunk is a no-op, not a panic.
	l.Clear(500)
}

func TestLayeredLazyAllocation(t *testing.T) {
	// Paper: "the lower parts are allocated only when there is a write
	// access to this part, which can reduce bitmap size and save memory".
	l := NewLayeredChunk(1<<20, 1<<12)
	if l.AllocatedChunks() != 0 {
		t.Fatal("chunks allocated before any write")
	}
	dense := New(1 << 20)
	if l.SizeBytes() >= dense.SizeBytes() {
		t.Fatalf("empty layered (%dB) not smaller than dense (%dB)", l.SizeBytes(), dense.SizeBytes())
	}
	l.Set(12345)
	if l.AllocatedChunks() != 1 {
		t.Fatalf("AllocatedChunks = %d after one write", l.AllocatedChunks())
	}
}

func TestLayeredSetRangeCrossesChunks(t *testing.T) {
	l := NewLayeredChunk(1000, 128)
	l.SetRange(100, 700)
	if l.Count() != 600 {
		t.Fatalf("Count = %d, want 600", l.Count())
	}
	for i := 0; i < 1000; i++ {
		want := i >= 100 && i < 700
		if l.Test(i) != want {
			t.Fatalf("bit %d = %v, want %v", i, l.Test(i), want)
		}
	}
}

func TestLayeredNextSet(t *testing.T) {
	l := NewLayeredChunk(1000, 64)
	for _, i := range []int{5, 63, 64, 500, 999} {
		l.Set(i)
	}
	cases := []struct{ from, want int }{
		{0, 5}, {6, 63}, {64, 64}, {65, 500}, {501, 999}, {1000, -1},
	}
	for _, c := range cases {
		if got := l.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
}

func TestLayeredResetReleasesMemory(t *testing.T) {
	l := NewLayeredChunk(10000, 100)
	l.SetRange(0, 10000)
	if l.AllocatedChunks() != 100 {
		t.Fatalf("AllocatedChunks = %d", l.AllocatedChunks())
	}
	l.Reset()
	if l.Any() || l.AllocatedChunks() != 0 {
		t.Fatal("Reset did not release chunks")
	}
}

func TestLayeredDenseRoundTrip(t *testing.T) {
	l := NewLayeredChunk(777, 50)
	for _, i := range []int{0, 49, 50, 333, 776} {
		l.Set(i)
	}
	d := l.Dense()
	if d.Count() != 5 {
		t.Fatalf("dense Count = %d", d.Count())
	}
	l2 := NewLayeredChunk(777, 64)
	l2.LoadFrom(d)
	if l2.Count() != 5 || !l2.Test(333) {
		t.Fatal("LoadFrom mismatch")
	}
}

func TestLayeredFinalShortChunk(t *testing.T) {
	l := NewLayeredChunk(130, 64) // final chunk has 2 bits
	l.Set(129)
	if !l.Test(129) || l.Count() != 1 {
		t.Fatal("short final chunk broken")
	}
	l.SetRange(120, 130)
	if l.Count() != 10 {
		t.Fatalf("Count = %d", l.Count())
	}
}

// TestQuickLayeredMatchesDense drives both implementations with the same
// random ops and compares every observable.
func TestQuickLayeredMatchesDense(t *testing.T) {
	f := func(ops []uint32, chunkSel uint8) bool {
		const n = 900
		chunk := []int{32, 64, 100, 128, 900, 1024}[int(chunkSel)%6]
		lay := NewLayeredChunk(n, chunk)
		dense := New(n)
		ref := make(reference)
		applyOps(n, ops, dense, lay, ref)
		if lay.Count() != dense.Count() || lay.Any() != dense.Any() {
			return false
		}
		ok := true
		dense.ForEachSet(func(i int) bool {
			if !lay.Test(i) {
				ok = false
				return false
			}
			return true
		})
		// enumeration order must be identical
		var a, b []int
		dense.ForEachSet(func(i int) bool { a = append(a, i); return true })
		lay.ForEachSet(func(i int) bool { b = append(b, i); return true })
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestLayeredDefaultChunkAndString(t *testing.T) {
	l := NewLayered(DefaultChunkBits * 3)
	l.Set(1)
	l.Set(DefaultChunkBits + 5)
	if l.Count() != 2 || l.AllocatedChunks() != 2 {
		t.Fatalf("default-chunk layered wrong: %v", l)
	}
	if s := l.String(); s == "" {
		t.Fatal("empty String")
	}
	if s := New(10).String(); s == "" {
		t.Fatal("dense String empty")
	}
}

func TestLayeredPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"bad-new":      func() { NewLayeredChunk(-1, 10) },
		"bad-chunk":    func() { NewLayeredChunk(10, 0) },
		"oob-set":      func() { NewLayered(10).Set(10) },
		"oob-test":     func() { NewLayered(10).Test(-1) },
		"bad-range":    func() { NewLayered(10).SetRange(5, 3) },
		"bad-loadfrom": func() { NewLayered(10).LoadFrom(New(11)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
