package bitmap

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// persistMagic prefixes a checksummed bitmap file: magic, CRC-32 (IEEE) of
// the marshalled bitmap, then the bitmap itself. The checksum turns a torn
// or partial write — the failure mode the atomic rename cannot cover on
// every filesystem — into a load error instead of a silently wrong dirty
// set, which for an incremental migration would mean silently missing
// blocks.
var persistMagic = [4]byte{'B', 'B', 'M', '1'}

// SaveFile writes the bitmap to path atomically (write-to-temp + rename)
// with a leading checksum, so a crash mid-save leaves either the old bitmap
// or the new one — never a torn file that loads — and corruption is detected
// on load. The migration daemon persists the destination's fresh-write
// bitmap this way so an incremental migration back works across daemon
// restarts.
func (b *Bitmap) SaveFile(path string) error {
	data, err := b.MarshalBinary()
	if err != nil {
		return err
	}
	out := make([]byte, 8, 8+len(data))
	copy(out, persistMagic[:])
	binary.LittleEndian.PutUint32(out[4:], crc32.ChecksumIEEE(data))
	out = append(out, data...)
	if err := AtomicWriteFile(path, out); err != nil {
		return fmt.Errorf("bitmap: save: %w", err)
	}
	return nil
}

// AtomicWriteFile is the crash discipline every migration persistence path
// shares (fresh-write bitmaps here, the journal in core): write to a
// sibling temp file, then rename over the target, so a crash leaves either
// the old contents or the new — never a torn file that silently loads.
func AtomicWriteFile(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("rename: %w", err)
	}
	return nil
}

// LoadFile reads a bitmap previously written by SaveFile. Files from the
// pre-checksum format (a bare marshalled bitmap) still load; checksummed
// files fail loudly on any truncation or corruption.
func LoadFile(path string) (*Bitmap, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bitmap: load: %w", err)
	}
	if len(data) >= 8 && [4]byte(data[:4]) == persistMagic {
		body := data[8:]
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[4:]) {
			return nil, fmt.Errorf("bitmap: load %s: checksum mismatch (torn write?)", path)
		}
		data = body
	}
	b := &Bitmap{}
	if err := b.UnmarshalBinary(data); err != nil {
		return nil, fmt.Errorf("bitmap: load %s: %w", path, err)
	}
	return b, nil
}
