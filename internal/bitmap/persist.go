package bitmap

import (
	"fmt"
	"os"
)

// SaveFile writes the bitmap to path atomically (write-to-temp + rename), so
// a crash mid-save leaves either the old bitmap or the new one, never a
// torn file. The migration daemon persists the destination's fresh-write
// bitmap this way so an incremental migration back works across daemon
// restarts.
func (b *Bitmap) SaveFile(path string) error {
	data, err := b.MarshalBinary()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("bitmap: save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("bitmap: save rename: %w", err)
	}
	return nil
}

// LoadFile reads a bitmap previously written by SaveFile.
func LoadFile(path string) (*Bitmap, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bitmap: load: %w", err)
	}
	b := &Bitmap{}
	if err := b.UnmarshalBinary(data); err != nil {
		return nil, fmt.Errorf("bitmap: load %s: %w", path, err)
	}
	return b, nil
}
