package bitmap

import (
	"math/rand"
	"os"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 1 << 20} {
		b := New(n)
		if b.Len() != n {
			t.Fatalf("Len = %d, want %d", b.Len(), n)
		}
		if b.Count() != 0 {
			t.Fatalf("n=%d: new bitmap has %d bits set", n, b.Count())
		}
		if b.Any() {
			t.Fatalf("n=%d: new bitmap reports Any", n)
		}
	}
}

func TestNewAllSet(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		b := NewAllSet(n)
		if got := b.Count(); got != n {
			t.Fatalf("n=%d: Count = %d", n, got)
		}
		for i := 0; i < n; i++ {
			if !b.Test(i) {
				t.Fatalf("n=%d: bit %d not set", n, i)
			}
		}
	}
}

func TestSetClearTest(t *testing.T) {
	b := New(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		if b.Test(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		b.Clear(i)
		if b.Test(i) {
			t.Fatalf("bit %d still set after Clear", i)
		}
	}
}

func TestSetIdempotent(t *testing.T) {
	b := New(100)
	b.Set(42)
	b.Set(42)
	if b.Count() != 1 {
		t.Fatalf("Count = %d after double Set", b.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := New(10)
	for name, fn := range map[string]func(){
		"Set-neg":   func() { b.Set(-1) },
		"Set-high":  func() { b.Set(10) },
		"Test-high": func() { b.Test(10) },
		"Clear-neg": func() { b.Clear(-1) },
		"Range-rev": func() { b.SetRange(5, 3) },
		"Range-hi":  func() { b.SetRange(0, 11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
	if func() (p bool) { defer func() { p = recover() != nil }(); New(-1); return }() != true {
		t.Error("New(-1): no panic")
	}
}

func TestSetRange(t *testing.T) {
	cases := []struct{ lo, hi int }{
		{0, 0}, {0, 1}, {0, 64}, {1, 63}, {63, 65}, {64, 128}, {5, 200}, {130, 300},
	}
	for _, c := range cases {
		b := New(300)
		b.SetRange(c.lo, c.hi)
		for i := 0; i < 300; i++ {
			want := i >= c.lo && i < c.hi
			if b.Test(i) != want {
				t.Fatalf("range [%d,%d): bit %d = %v, want %v", c.lo, c.hi, i, b.Test(i), want)
			}
		}
		if b.Count() != c.hi-c.lo {
			t.Fatalf("range [%d,%d): Count = %d", c.lo, c.hi, b.Count())
		}
	}
}

func TestNextSet(t *testing.T) {
	b := New(300)
	for _, i := range []int{3, 64, 100, 299} {
		b.Set(i)
	}
	cases := []struct{ from, want int }{
		{0, 3}, {3, 3}, {4, 64}, {64, 64}, {65, 100}, {101, 299}, {299, 299}, {300, -1}, {-5, 3},
	}
	for _, c := range cases {
		if got := b.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := New(10).NextSet(0); got != -1 {
		t.Errorf("empty NextSet = %d", got)
	}
}

func TestForEachSetOrderAndEarlyStop(t *testing.T) {
	b := New(500)
	want := []int{1, 64, 65, 200, 499}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEachSet(func(i int) bool { got = append(got, i); return true })
	if len(got) != len(want) {
		t.Fatalf("visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visited %v, want %v", got, want)
		}
	}
	count := 0
	b.ForEachSet(func(i int) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestUnionSubtract(t *testing.T) {
	a, b := New(130), New(130)
	a.Set(1)
	a.Set(100)
	b.Set(100)
	b.Set(129)
	u := a.Clone()
	u.Union(b)
	for _, i := range []int{1, 100, 129} {
		if !u.Test(i) {
			t.Fatalf("union missing %d", i)
		}
	}
	if u.Count() != 3 {
		t.Fatalf("union Count = %d", u.Count())
	}
	s := a.Clone()
	s.Subtract(b)
	if !s.Test(1) || s.Test(100) || s.Count() != 1 {
		t.Fatalf("subtract wrong: %v", s)
	}
}

func TestUnionSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(10).Union(New(11))
}

func TestCloneIndependent(t *testing.T) {
	a := New(64)
	a.Set(5)
	c := a.Clone()
	c.Set(6)
	if a.Test(6) {
		t.Fatal("clone aliases original")
	}
	if !c.Test(5) {
		t.Fatal("clone lost bit")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(7)
	if a.Equal(b) {
		t.Fatal("unequal bitmaps compare equal")
	}
	b.Set(7)
	if !a.Equal(b) {
		t.Fatal("equal bitmaps compare unequal")
	}
	if a.Equal(New(101)) {
		t.Fatal("different lengths compare equal")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 64, 65, 1000} {
		b := New(n)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < n/3; i++ {
			b.Set(rng.Intn(n))
		}
		data, err := b.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var got Bitmap
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !got.Equal(b) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var b Bitmap
	if err := b.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Fatal("short input accepted")
	}
	big, _ := NewAllSet(128).MarshalBinary()
	if err := b.UnmarshalBinary(big[:len(big)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	huge := make([]byte, 16)
	for i := 0; i < 8; i++ {
		huge[i] = 0xff
	}
	if err := b.UnmarshalBinary(huge); err == nil {
		t.Fatal("implausible size accepted")
	}
}

func TestSizeBytesMatchesPaper(t *testing.T) {
	// Paper §IV-A-2: for a 32GB disk a 4KB-block bitmap costs 1MB; a
	// 512B-sector bitmap costs 8MB.
	const disk = 32 << 30
	if got := New(disk / 4096).SizeBytes(); got != 1<<20 {
		t.Fatalf("4KiB-granularity bitmap = %d bytes, want 1MiB", got)
	}
	if got := New(disk / 512).SizeBytes(); got != 8<<20 {
		t.Fatalf("512B-granularity bitmap = %d bytes, want 8MiB", got)
	}
}

// reference is an oracle implementation backed by a map.
type reference map[int]bool

func applyOps(n int, ops []uint32, dense *Bitmap, lay *Layered, ref reference) {
	for _, op := range ops {
		i := int(op>>2) % n
		switch op & 3 {
		case 0, 1: // bias toward sets, like a write-dominated trace
			dense.Set(i)
			lay.Set(i)
			ref[i] = true
		case 2:
			dense.Clear(i)
			lay.Clear(i)
			delete(ref, i)
		case 3:
			j := i + int(op%17)
			if j > n {
				j = n
			}
			dense.SetRange(i, j)
			lay.SetRange(i, j)
			for k := i; k < j; k++ {
				ref[k] = true
			}
		}
	}
}

// TestQuickDenseMatchesReference property-tests Bitmap against a map oracle.
func TestQuickDenseMatchesReference(t *testing.T) {
	f := func(ops []uint32) bool {
		const n = 700
		dense := New(n)
		lay := NewLayeredChunk(n, 64)
		ref := make(reference)
		applyOps(n, ops, dense, lay, ref)
		if dense.Count() != len(ref) || lay.Count() != len(ref) {
			return false
		}
		for i := 0; i < n; i++ {
			if dense.Test(i) != ref[i] || lay.Test(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMarshalRoundTrip property-tests serialization.
func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(idx []uint16, nRaw uint16) bool {
		n := int(nRaw)%2000 + 1
		b := New(n)
		for _, i := range idx {
			b.Set(int(i) % n)
		}
		data, err := b.MarshalBinary()
		if err != nil {
			return false
		}
		var got Bitmap
		if err := got.UnmarshalBinary(data); err != nil {
			return false
		}
		return got.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNextSetConsistent checks NextSet against ForEachSet enumeration.
func TestQuickNextSetConsistent(t *testing.T) {
	f := func(idx []uint16) bool {
		const n = 3000
		b := New(n)
		for _, i := range idx {
			b.Set(int(i) % n)
		}
		var viaForEach []int
		b.ForEachSet(func(i int) bool { viaForEach = append(viaForEach, i); return true })
		var viaNext []int
		for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1) {
			viaNext = append(viaNext, i)
		}
		if len(viaForEach) != len(viaNext) {
			return false
		}
		for i := range viaNext {
			if viaNext[i] != viaForEach[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/fresh.bitmap"
	b := New(1000)
	b.SetRange(10, 40)
	b.Set(999)
	if err := b.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(b) {
		t.Fatal("round trip mismatch")
	}
	// overwrite is atomic and replaces contents
	b2 := New(1000)
	b2.Set(1)
	if err := b2.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got2, _ := LoadFile(path)
	if !got2.Equal(b2) {
		t.Fatal("overwrite mismatch")
	}
	if _, err := LoadFile(dir + "/missing"); err == nil {
		t.Fatal("missing file accepted")
	}
	// corrupt file rejected
	os.WriteFile(path, []byte{1, 2, 3}, 0o644)
	if _, err := LoadFile(path); err == nil {
		t.Fatal("corrupt file accepted")
	}
}
