package bitmap

import (
	"sync"
	"testing"
)

func TestAtomicBasics(t *testing.T) {
	a := NewAtomic(200)
	if a.Len() != 200 || a.Any() || a.Count() != 0 {
		t.Fatal("new Atomic not empty")
	}
	a.Set(0)
	a.Set(64)
	a.Set(199)
	if a.Count() != 3 || !a.Test(0) || !a.Test(64) || !a.Test(199) || a.Test(1) {
		t.Fatal("Set/Test wrong")
	}
	a.Clear(64)
	if a.Test(64) || a.Count() != 2 {
		t.Fatal("Clear wrong")
	}
	a.SetRange(10, 20)
	if a.Count() != 12 {
		t.Fatalf("SetRange Count = %d", a.Count())
	}
	a.Reset()
	if a.Any() {
		t.Fatal("Reset left bits")
	}
}

func TestAtomicOutOfRangePanics(t *testing.T) {
	a := NewAtomic(8)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	a.Set(8)
}

func TestAtomicSnapshotAndLoad(t *testing.T) {
	a := NewAtomic(130)
	a.Set(3)
	a.Set(129)
	snap := a.Snapshot()
	if snap.Count() != 2 || !snap.Test(3) || !snap.Test(129) {
		t.Fatal("snapshot wrong")
	}
	a.Set(64) // snapshot must be independent
	if snap.Test(64) {
		t.Fatal("snapshot aliases atomic bitmap")
	}
	b := New(130)
	b.Set(7)
	a.LoadFrom(b)
	if a.Count() != 1 || !a.Test(7) {
		t.Fatal("LoadFrom wrong")
	}
}

func TestAtomicSwapOut(t *testing.T) {
	a := NewAtomic(100)
	a.Set(1)
	a.Set(99)
	out := a.SwapOut()
	if out.Count() != 2 || !out.Test(1) || !out.Test(99) {
		t.Fatal("SwapOut contents wrong")
	}
	if a.Any() {
		t.Fatal("SwapOut did not clear")
	}
}

// TestAtomicConcurrentNoLostBits is the core safety property of the
// blkback/blkd split: bits set concurrently with iterating SwapOut calls must
// appear in exactly one snapshot or remain in the live bitmap — never vanish.
func TestAtomicConcurrentNoLostBits(t *testing.T) {
	const n = 1 << 16
	const writers = 8
	const perWriter = n / writers
	a := NewAtomic(n)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w * perWriter; i < (w+1)*perWriter; i++ {
				a.Set(i)
			}
		}(w)
	}
	merged := New(n)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		merged.Union(a.SwapOut())
		select {
		case <-done:
			merged.Union(a.SwapOut())
			if got := merged.Count(); got != n {
				t.Errorf("lost bits: merged %d of %d", got, n)
			}
			return
		default:
		}
	}
}

func TestAtomicConcurrentSetRange(t *testing.T) {
	const n = 4096
	a := NewAtomic(n)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i += 64 {
				a.SetRange(i, i+32)
			}
		}(w)
	}
	wg.Wait()
	if got := a.Count(); got != n/2 {
		t.Fatalf("Count = %d, want %d", got, n/2)
	}
}

func TestAtomicPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"bad-new":   func() { NewAtomic(-1) },
		"bad-range": func() { NewAtomic(10).SetRange(5, 3) },
		"bad-load":  func() { NewAtomic(10).LoadFrom(New(11)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
