// Command doclint enforces the repository's godoc contract: every exported
// identifier in the named package directories must carry a doc comment, and
// every package must have a package comment. It is the CI doc gate — run it
// the way the lint job does:
//
//	go run ./internal/tools/doclint . ./internal/cluster ./internal/core ./internal/hostd \
//	    ./internal/transport ./internal/sim ./internal/dedup \
//	    ./internal/blockdev ./internal/blockdev/bcache
//
// The rules mirror the classic golint/staticcheck ST1000+ST1020..ST1022
// presence checks (a comment on a const/var/type group covers its specs;
// methods of exported types count; test files are skipped), with no network
// or external tooling required.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	var findings []string
	for _, dir := range dirs {
		fs, err := LintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported identifiers\n", len(findings))
		os.Exit(1)
	}
}

// LintDir parses one package directory (tests excluded) and returns a
// finding per undocumented exported identifier, each formatted as
// "path:line: message".
func LintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []string
	add := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, fmt.Sprintf(format, args...)))
	}
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		pkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				pkgDoc = true
			}
		}
		if !pkgDoc {
			for _, f := range pkg.Files {
				add(f.Package, "package %s has no package comment", name)
				break
			}
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				lintDecl(decl, add)
			}
		}
	}
	return findings, nil
}

// lintDecl reports undocumented exported identifiers of one declaration.
func lintDecl(decl ast.Decl, add func(token.Pos, string, ...any)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return
		}
		if recv := receiverName(d); recv != "" {
			if !ast.IsExported(recv) {
				return // method of an unexported type: not API surface
			}
			add(d.Pos(), "exported method %s.%s has no doc comment", recv, d.Name.Name)
			return
		}
		add(d.Pos(), "exported function %s has no doc comment", d.Name.Name)
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					add(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
				}
			case *ast.ValueSpec:
				if d.Doc != nil || s.Doc != nil || s.Comment != nil {
					continue // a comment on the group or the spec covers it
				}
				for _, n := range s.Names {
					if n.IsExported() {
						add(s.Pos(), "exported %s %s has no doc comment", strings.ToLower(d.Tok.String()), n.Name)
					}
				}
			}
		}
	}
}

// receiverName returns the base type name of a method receiver, or "" for a
// plain function.
func receiverName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
