package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestTargetPackagesDocumented is the in-tree half of the CI doc gate: the
// facade, the cluster orchestrator, the engine, the host daemon, the
// transport, the simulator, the dedup layer, and the block layer must have
// zero undocumented exported identifiers.
func TestTargetPackagesDocumented(t *testing.T) {
	root := filepath.Join("..", "..", "..")
	for _, dir := range []string{
		".", "internal/cluster", "internal/core", "internal/hostd",
		"internal/transport", "internal/sim", "internal/dedup",
		"internal/delta", "internal/blockdev", "internal/blockdev/bcache",
		"internal/forecast",
	} {
		findings, err := LintDir(filepath.Join(root, filepath.FromSlash(dir)))
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
}

// TestLintDirDetects pins the checker's rules against a fixture package.
func TestLintDirDetects(t *testing.T) {
	dir := t.TempDir()
	src := `package fixture

const Bad = 1

// Grouped constants share the group comment.
const (
	GoodA = 1
	GoodB = 2
)

type AlsoBad struct{}

func (AlsoBad) Method() {}

// Documented is fine.
func Documented() {}

type hidden int

func (hidden) Fine() {}

var Inline = 3 // an inline comment also counts
`
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := LintDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"package fixture has no package comment":            false,
		"exported const Bad has no doc comment":             false,
		"exported type AlsoBad has no doc comment":          false,
		"exported method AlsoBad.Method has no doc comment": false,
	}
	for _, f := range findings {
		matched := false
		for w := range want {
			if !want[w] && len(f) >= len(w) && f[len(f)-len(w):] == w {
				want[w] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for w, hit := range want {
		if !hit {
			t.Errorf("missing finding: %s", w)
		}
	}
}
