package doccheck

import (
	"os"
	"path/filepath"
	"testing"
)

var repoRoot = filepath.Join("..", "..", "..")

// TestWireFrameCoverage is the tier-1 half of the docs CI gate: every Msg*
// frame constant in the transport must be specified in docs/WIRE.md, so the
// wire spec cannot silently fall behind the protocol.
func TestWireFrameCoverage(t *testing.T) {
	findings, err := WireFrameCoverage(repoRoot)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Error(f)
	}
}

// TestMarkdownLinks verifies every relative link in the repo's
// documentation set points at a file that exists.
func TestMarkdownLinks(t *testing.T) {
	files, err := DocFiles(repoRoot)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("doc file set suspiciously small: %v", files)
	}
	findings, err := CheckLinks(repoRoot, files)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Error(f)
	}
}

// TestCheckLinksDetects pins the checker against a synthetic tree: good
// relative links, anchors, and absolute URLs pass; a dangling target fails.
func TestCheckLinksDetects(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "docs"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "docs", "REAL.md"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	md := `[ok](docs/REAL.md) [anchored](docs/REAL.md#sec) [web](https://example.com)
[broken](docs/MISSING.md) [self](#local)`
	if err := os.WriteFile(filepath.Join(dir, "index.md"), []byte(md), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := CheckLinks(dir, []string{"index.md"})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly the broken link", findings)
	}
}

// TestWireCoverageDetects pins the frame scanner: it must actually find the
// transport's constants (a regex rot here would silently pass everything).
func TestWireCoverageDetects(t *testing.T) {
	src, err := os.ReadFile(filepath.Join(repoRoot, "internal", "transport", "message.go"))
	if err != nil {
		t.Fatal(err)
	}
	names := msgConst.FindAllStringSubmatch(string(src), -1)
	if len(names) < 20 {
		t.Fatalf("scanner found only %d Msg* constants", len(names))
	}
	found := map[string]bool{}
	for _, m := range names {
		found[m[1]] = true
	}
	for _, want := range []string{"MsgHello", "MsgHashAdvert", "MsgHashWant", "MsgBlockRef"} {
		if !found[want] {
			t.Errorf("scanner missed %s", want)
		}
	}
}
