// Package doccheck keeps the documentation honest mechanically: a relative
// markdown link checker (every `[text](path)` in the repo's documentation
// must point at a file that exists) and a wire-spec coverage check (every
// `Msg*` frame constant declared in internal/transport/message.go must be
// specified in docs/WIRE.md). Both run under `go test` — the repository's
// tier-1 gate — and again in the CI docs job, so a frame type can no
// longer land without its byte-offset spec and a moved file can no longer
// leave dangling doc links.
package doccheck

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// DocFiles lists the repo-relative markdown files the link checker covers:
// the README, the docs/ tree, the example walkthroughs, and the
// paper/roadmap material.
func DocFiles(root string) ([]string, error) {
	var files []string
	for _, name := range []string{"README.md", "PAPER.md", "PAPERS.md", "ROADMAP.md", "examples/README.md"} {
		if _, err := os.Stat(filepath.Join(root, name)); err == nil {
			files = append(files, name)
		}
	}
	docs, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		return nil, err
	}
	for _, d := range docs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		files = append(files, rel)
	}
	return files, nil
}

// mdLink matches one inline markdown link and captures its target. Images
// (`![...](...)`) are matched the same way — their targets must exist too,
// except remote ones, which are skipped like every absolute URL.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// CheckLinks verifies every relative link target in the given repo-relative
// markdown files, returning one finding per broken link.
func CheckLinks(root string, files []string) ([]string, error) {
	var findings []string
	for _, file := range files {
		data, err := os.ReadFile(filepath.Join(root, file))
		if err != nil {
			return nil, err
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0] // drop the anchor
			if target == "" {
				continue
			}
			resolved := filepath.Join(root, filepath.Dir(file), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				findings = append(findings, fmt.Sprintf("%s: broken link %q", file, m[1]))
			}
		}
	}
	return findings, nil
}

// msgConst matches one Msg* constant declaration line of the transport
// message-type block (tab-indented, as gofmt formats the const block).
var msgConst = regexp.MustCompile(`(?m)^\t(Msg[A-Za-z0-9]+)\b`)

// WireFrameCoverage verifies that every Msg* constant declared in
// internal/transport/message.go appears in docs/WIRE.md, returning one
// finding per unspecified frame type.
func WireFrameCoverage(root string) ([]string, error) {
	src, err := os.ReadFile(filepath.Join(root, "internal", "transport", "message.go"))
	if err != nil {
		return nil, err
	}
	spec, err := os.ReadFile(filepath.Join(root, "docs", "WIRE.md"))
	if err != nil {
		return nil, err
	}
	var findings []string
	seen := map[string]bool{}
	for _, m := range msgConst.FindAllStringSubmatch(string(src), -1) {
		name := m[1]
		if seen[name] {
			continue
		}
		seen[name] = true
		if !strings.Contains(string(spec), name) {
			findings = append(findings, fmt.Sprintf("docs/WIRE.md: frame type %s has no spec entry", name))
		}
	}
	if len(seen) == 0 {
		return nil, fmt.Errorf("doccheck: no Msg* constants found in transport/message.go")
	}
	return findings, nil
}
