package blockdev

import (
	"fmt"
	"os"
	"sync"
)

// FileDisk is a Device backed by a file, created sparse so large VBD images
// do not consume physical space until written. It is what cmd/bbmig uses to
// hold real disk images on both ends of a TCP migration.
type FileDisk struct {
	mu        sync.Mutex
	f         *os.File
	blockSize int
	numBlocks int
}

// CreateFileDisk creates (or truncates) path as a sparse image with the given
// geometry.
func CreateFileDisk(path string, numBlocks, blockSize int) (*FileDisk, error) {
	if numBlocks < 0 || blockSize <= 0 {
		return nil, fmt.Errorf("blockdev: bad geometry %dx%d", numBlocks, blockSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("blockdev: create image: %w", err)
	}
	if err := f.Truncate(int64(numBlocks) * int64(blockSize)); err != nil {
		f.Close()
		return nil, fmt.Errorf("blockdev: size image: %w", err)
	}
	return &FileDisk{f: f, blockSize: blockSize, numBlocks: numBlocks}, nil
}

// OpenFileDisk opens an existing image whose size must be an exact multiple
// of blockSize.
func OpenFileDisk(path string, blockSize int) (*FileDisk, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("blockdev: bad block size %d", blockSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("blockdev: open image: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("blockdev: stat image: %w", err)
	}
	if st.Size()%int64(blockSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("blockdev: image size %d not a multiple of block size %d", st.Size(), blockSize)
	}
	return &FileDisk{f: f, blockSize: blockSize, numBlocks: int(st.Size() / int64(blockSize))}, nil
}

// BlockSize implements Device.
func (d *FileDisk) BlockSize() int { return d.blockSize }

// NumBlocks implements Device.
func (d *FileDisk) NumBlocks() int { return d.numBlocks }

// ReadBlock implements Device.
func (d *FileDisk) ReadBlock(n int, dst []byte) error {
	if err := CheckRange(d, n); err != nil {
		return err
	}
	if len(dst) < d.blockSize {
		return fmt.Errorf("blockdev: read buffer %d < block size %d", len(dst), d.blockSize)
	}
	if _, err := d.f.ReadAt(dst[:d.blockSize], int64(n)*int64(d.blockSize)); err != nil {
		return fmt.Errorf("blockdev: read block %d: %w", n, err)
	}
	return nil
}

// WriteBlock implements Device.
func (d *FileDisk) WriteBlock(n int, src []byte) error {
	if err := CheckRange(d, n); err != nil {
		return err
	}
	if len(src) < d.blockSize {
		return fmt.Errorf("blockdev: write buffer %d < block size %d", len(src), d.blockSize)
	}
	if _, err := d.f.WriteAt(src[:d.blockSize], int64(n)*int64(d.blockSize)); err != nil {
		return fmt.Errorf("blockdev: write block %d: %w", n, err)
	}
	return nil
}

// Sync flushes the image to stable storage.
func (d *FileDisk) Sync() error { return d.f.Sync() }

// Close closes the underlying image file.
func (d *FileDisk) Close() error { return d.f.Close() }
