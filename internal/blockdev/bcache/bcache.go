// Package bcache implements the reference-counted block cache and
// copy-on-write snapshot layer behind the blockdev.Volume API.
//
// A Cache wraps any blockdev.Device and serves reads from an in-memory,
// LRU-evicted block set while buffering writes (dirty write-back). Blocks
// can be pinned with Get and released with Block.Release — the biscuit
// Bdev_block_t / minixfs bcache lifecycle — so concurrent out-migrations of
// one domain share cached reads instead of hammering the backing store.
// Snapshot freezes a consistent point-in-time view of the volume: the first
// guest write to a snapshotted block copies the old contents aside, so
// migrations, dedup scans, fingerprint audits, and pre-sync read frozen
// data while the guest keeps writing. Storage is carved from per-shard
// slabs and recycled through per-shard free lists, the same pooled-slab
// discipline MemDisk uses, so steady-state churn is allocation-free.
package bcache

import (
	"fmt"
	"sync"
	"sync/atomic"

	"bbmig/internal/bitmap"
	"bbmig/internal/blockdev"
)

// shardCount is the lock-striping width, matching MemDisk: guest writes,
// migration snapshot reads, and background scans touching different blocks
// proceed in parallel.
const shardCount = 16

// DefaultMaxBlocks is the cache capacity used when New is given 0: 4096
// blocks, 16 MiB of 4 KiB blocks per volume.
const DefaultMaxBlocks = 4096

// slabBlocks bounds how many blocks' worth of storage a shard allocates at
// once; evicted block buffers return to a per-shard free list first.
const slabBlocks = 64

// Cache is a reference-counted, snapshot-capable block cache over a backing
// Device. It implements blockdev.Volume (and blockdev.Allocator,
// conservatively, so SkipUnused keeps working through a wrapped device).
// All methods are safe for concurrent use.
type Cache struct {
	backing   blockdev.Device
	blockSize int
	numBlocks int
	shardCap  int // per-shard block capacity before LRU eviction

	shards [shardCount]shard

	snapMu sync.Mutex
	snaps  map[*snapshot]struct{}

	statMu sync.Mutex
	stats  Stats

	released atomic.Bool
}

// shard holds one lock stripe of cached blocks plus its slab and free list.
type shard struct {
	mu     sync.Mutex
	blocks map[int]*block
	// lruHead/lruTail chain UNPINNED blocks only, most recently used first.
	lruHead, lruTail *block
	slab             []byte
	free             [][]byte
}

// block is one cached block: its storage, pin count, and dirty flag.
// A pinned block (refs > 0) is off the LRU chain and immune to eviction.
type block struct {
	n          int
	data       []byte
	refs       int
	dirty      bool
	prev, next *block
}

// Stats is a point-in-time snapshot of cache counters, exposed for tests
// and the cache hit-rate benchmarks.
type Stats struct {
	// Hits counts reads (live or snapshot) served from cached blocks.
	Hits int64
	// Misses counts reads that had to touch the backing device.
	Misses int64
	// Evictions counts blocks dropped by LRU pressure.
	Evictions int64
	// Writebacks counts dirty blocks flushed to the backing device.
	Writebacks int64
	// CowCopies counts blocks materialized aside on first write while
	// snapshots were outstanding; a copy shared by several snapshots
	// counts once.
	CowCopies int64
	// Snapshots is the number of currently outstanding snapshots.
	Snapshots int
	// Cached is the number of blocks currently resident in the cache.
	Cached int
	// Pinned is the number of blocks currently pinned by Get.
	Pinned int
	// Dirty is the number of resident blocks awaiting write-back.
	Dirty int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any reads.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// New wraps backing in a Cache holding at most maxBlocks blocks
// (0 selects DefaultMaxBlocks).
func New(backing blockdev.Device, maxBlocks int) *Cache {
	if maxBlocks <= 0 {
		maxBlocks = DefaultMaxBlocks
	}
	shardCap := (maxBlocks + shardCount - 1) / shardCount
	if shardCap < 1 {
		shardCap = 1
	}
	c := &Cache{
		backing:   backing,
		blockSize: backing.BlockSize(),
		numBlocks: backing.NumBlocks(),
		shardCap:  shardCap,
		snaps:     make(map[*snapshot]struct{}),
	}
	for i := range c.shards {
		c.shards[i].blocks = make(map[int]*block)
	}
	return c
}

func (c *Cache) shard(n int) *shard { return &c.shards[n%shardCount] }

// BlockSize implements blockdev.Device.
func (c *Cache) BlockSize() int { return c.blockSize }

// NumBlocks implements blockdev.Device.
func (c *Cache) NumBlocks() int { return c.numBlocks }

// ErrReleased is returned for I/O against a released Cache.
var ErrReleased = fmt.Errorf("bcache: volume released")

// checkIO validates a block number and buffer for one I/O.
func (c *Cache) checkIO(n int, buf []byte) error {
	if c.released.Load() {
		return ErrReleased
	}
	if err := blockdev.CheckRange(c, n); err != nil {
		return err
	}
	if len(buf) < c.blockSize {
		return fmt.Errorf("bcache: buffer %d < block size %d", len(buf), c.blockSize)
	}
	return nil
}

// alloc carves one block's storage from the shard free list or slab.
// Caller holds s.mu.
func (c *Cache) alloc(s *shard) []byte {
	if k := len(s.free); k > 0 {
		buf := s.free[k-1]
		s.free = s.free[:k-1]
		return buf
	}
	if len(s.slab) < c.blockSize {
		blocks := c.shardCap
		if blocks > slabBlocks {
			blocks = slabBlocks
		}
		s.slab = make([]byte, blocks*c.blockSize)
	}
	buf := s.slab[:c.blockSize:c.blockSize]
	s.slab = s.slab[c.blockSize:]
	return buf
}

// lruPush inserts b at the head (most recently used) of the shard's
// unpinned chain. Caller holds s.mu.
func (s *shard) lruPush(b *block) {
	b.prev = nil
	b.next = s.lruHead
	if s.lruHead != nil {
		s.lruHead.prev = b
	}
	s.lruHead = b
	if s.lruTail == nil {
		s.lruTail = b
	}
}

// lruRemove unlinks b from the unpinned chain. Caller holds s.mu.
func (s *shard) lruRemove(b *block) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		s.lruHead = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		s.lruTail = b.prev
	}
	b.prev, b.next = nil, nil
}

// lruTouch moves an unpinned b to the head of the chain. Caller holds s.mu.
func (s *shard) lruTouch(b *block) {
	if s.lruHead == b {
		return
	}
	s.lruRemove(b)
	s.lruPush(b)
}

// evict sheds least-recently-used unpinned blocks until the shard is back
// under capacity, writing dirty victims back first. keep is the block the
// caller is about to hand out and must survive even if it is the LRU tail —
// without it a shard full of pinned blocks would evict the block being
// served. Caller holds s.mu.
func (c *Cache) evict(s *shard, keep *block) error {
	victim := s.lruTail
	for len(s.blocks) > c.shardCap && victim != nil {
		if victim == keep {
			victim = victim.prev
			continue
		}
		prev := victim.prev
		if victim.dirty {
			if err := c.backing.WriteBlock(victim.n, victim.data); err != nil {
				return fmt.Errorf("bcache: write-back block %d: %w", victim.n, err)
			}
			victim.dirty = false
			c.count(func(st *Stats) { st.Writebacks++ })
		}
		s.lruRemove(victim)
		delete(s.blocks, victim.n)
		s.free = append(s.free, victim.data)
		victim.data = nil
		c.count(func(st *Stats) { st.Evictions++ })
		victim = prev
	}
	return nil
}

// fill loads block n into the shard (from the free list/slab and backing
// device) and returns it. Caller holds s.mu and has checked b absent.
func (c *Cache) fill(s *shard, n int) (*block, error) {
	buf := c.alloc(s)
	if err := c.backing.ReadBlock(n, buf); err != nil {
		s.free = append(s.free, buf)
		return nil, err
	}
	b := &block{n: n, data: buf}
	s.blocks[n] = b
	s.lruPush(b)
	if err := c.evict(s, b); err != nil {
		return nil, err
	}
	return b, nil
}

// count applies a mutation to the stats counters.
func (c *Cache) count(f func(*Stats)) {
	c.statMu.Lock()
	f(&c.stats)
	c.statMu.Unlock()
}

// ReadBlock implements blockdev.Device: cache hit or fill-from-backing.
func (c *Cache) ReadBlock(n int, dst []byte) error {
	if err := c.checkIO(n, dst); err != nil {
		return err
	}
	s := c.shard(n)
	s.mu.Lock()
	defer s.mu.Unlock()
	if b := s.blocks[n]; b != nil {
		copy(dst, b.data)
		if b.refs == 0 {
			s.lruTouch(b)
		}
		c.count(func(st *Stats) { st.Hits++ })
		return nil
	}
	c.count(func(st *Stats) { st.Misses++ })
	b, err := c.fill(s, n)
	if err != nil {
		return err
	}
	copy(dst, b.data)
	return nil
}

// WriteBlock implements blockdev.Device: copy-on-write for outstanding
// snapshots, then buffer the new contents dirty in the cache.
func (c *Cache) WriteBlock(n int, src []byte) error {
	if err := c.checkIO(n, src); err != nil {
		return err
	}
	s := c.shard(n)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := c.cowCopy(s, n); err != nil {
		return err
	}
	b := s.blocks[n]
	if b == nil {
		b = &block{n: n, data: c.alloc(s)}
		s.blocks[n] = b
		s.lruPush(b)
	} else if b.refs == 0 {
		s.lruTouch(b)
	}
	copy(b.data, src)
	b.dirty = true
	return c.evict(s, b)
}

// cowCopy preserves the pre-write contents of block n for every
// outstanding snapshot that has not copied it aside yet. Caller holds
// s.mu; lock order is shard.mu → snapMu → snapshot.mu.
func (c *Cache) cowCopy(s *shard, n int) error {
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	if len(c.snaps) == 0 {
		return nil
	}
	// One immutable copy of the old contents is shared by every snapshot
	// that still needs it; it is only materialized if at least one does.
	var old []byte
	for snap := range c.snaps {
		snap.mu.Lock()
		_, have := snap.overlay[n]
		if !have && old == nil {
			old = make([]byte, c.blockSize)
			if b := s.blocks[n]; b != nil {
				copy(old, b.data)
			} else if err := c.backing.ReadBlock(n, old); err != nil {
				snap.mu.Unlock()
				return fmt.Errorf("bcache: cow read block %d: %w", n, err)
			}
			c.count(func(st *Stats) { st.CowCopies++ })
		}
		if !have {
			snap.overlay[n] = old
		}
		snap.mu.Unlock()
	}
	return nil
}

// Get pins block n in the cache and returns it. The pin holds the block
// resident (immune to eviction) until Release. Data contents track live
// writes to the block; callers needing a frozen view use Snapshot instead.
func (c *Cache) Get(n int) (*Block, error) {
	if c.released.Load() {
		return nil, ErrReleased
	}
	if err := blockdev.CheckRange(c, n); err != nil {
		return nil, err
	}
	s := c.shard(n)
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.blocks[n]
	if b != nil {
		c.count(func(st *Stats) { st.Hits++ })
	} else {
		c.count(func(st *Stats) { st.Misses++ })
		var err error
		if b, err = c.fill(s, n); err != nil {
			return nil, err
		}
	}
	if b.refs == 0 {
		s.lruRemove(b)
	}
	b.refs++
	return &Block{c: c, b: b}, nil
}

// Block is a pinned cache block handle returned by Get.
type Block struct {
	c    *Cache
	b    *block
	done bool
}

// Num returns the block number.
func (h *Block) Num() int { return h.b.n }

// Data returns the cached block contents. The slice aliases cache storage:
// treat it as read-only, and note that concurrent WriteBlock calls to the
// same block show through, exactly like a shared buffer cache page.
func (h *Block) Data() []byte { return h.b.data }

// Release drops the pin. Releasing a handle twice panics — that is a
// refcounting bug the property tests exist to catch.
func (h *Block) Release() {
	s := h.c.shard(h.b.n)
	s.mu.Lock()
	defer s.mu.Unlock()
	if h.done || h.b.refs <= 0 {
		panic("bcache: block released twice")
	}
	h.done = true
	h.b.refs--
	if h.b.refs == 0 {
		s.lruPush(h.b)
		// Unpinning may have put the shard over capacity.
		_ = h.c.evict(s, nil)
	}
}

// Flush writes every dirty cached block back to the backing device.
func (c *Cache) Flush() error {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, b := range s.blocks {
			if !b.dirty {
				continue
			}
			if err := c.backing.WriteBlock(b.n, b.data); err != nil {
				s.mu.Unlock()
				return fmt.Errorf("bcache: flush block %d: %w", b.n, err)
			}
			b.dirty = false
			c.count(func(st *Stats) { st.Writebacks++ })
		}
		s.mu.Unlock()
	}
	return nil
}

// Snapshot implements blockdev.Volume: it freezes a point-in-time read-only
// view. Taking a snapshot is O(1); the cost is paid lazily by the first
// write to each block while the snapshot is outstanding.
func (c *Cache) Snapshot() blockdev.Snapshot {
	sn := &snapshot{c: c, overlay: make(map[int][]byte)}
	c.snapMu.Lock()
	c.snaps[sn] = struct{}{}
	c.snapMu.Unlock()
	return sn
}

// Release implements blockdev.Volume: flush dirty blocks and end the
// volume's lifecycle. It fails — leaving the cache usable — if snapshots
// or pinned blocks are still outstanding, which makes leaked references
// loud instead of silent.
func (c *Cache) Release() error {
	c.snapMu.Lock()
	outstanding := len(c.snaps)
	c.snapMu.Unlock()
	if outstanding > 0 {
		return fmt.Errorf("bcache: release with %d snapshots outstanding", outstanding)
	}
	if pinned := c.Stats().Pinned; pinned > 0 {
		return fmt.Errorf("bcache: release with %d blocks pinned", pinned)
	}
	if err := c.Flush(); err != nil {
		return err
	}
	c.released.Store(true)
	return nil
}

// AllocatedBitmap implements blockdev.Allocator. When the backing device
// knows its allocation footprint the result is that bitmap plus any cached
// dirty blocks not yet written back; otherwise every block is reported
// allocated, which is always safe.
func (c *Cache) AllocatedBitmap() *bitmap.Bitmap {
	var bm *bitmap.Bitmap
	if a, ok := c.backing.(blockdev.Allocator); ok {
		bm = a.AllocatedBitmap()
	} else {
		bm = bitmap.New(c.numBlocks)
		for n := 0; n < c.numBlocks; n++ {
			bm.Set(n)
		}
		return bm
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, b := range s.blocks {
			if b.dirty {
				bm.Set(b.n)
			}
		}
		s.mu.Unlock()
	}
	return bm
}

// Stats returns a consistent copy of the cache counters plus current
// residency numbers.
func (c *Cache) Stats() Stats {
	c.statMu.Lock()
	st := c.stats
	c.statMu.Unlock()
	c.snapMu.Lock()
	st.Snapshots = len(c.snaps)
	c.snapMu.Unlock()
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Cached += len(s.blocks)
		for _, b := range s.blocks {
			if b.refs > 0 {
				st.Pinned++
			}
			if b.dirty {
				st.Dirty++
			}
		}
		s.mu.Unlock()
	}
	return st
}
