package bcache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"bbmig/internal/blockdev"
)

const testBS = 512 // small blocks keep the property tests fast

// fillBlock writes a deterministic pattern for (block, generation) into buf.
func fillBlock(buf []byte, n, gen int) {
	r := rand.New(rand.NewSource(int64(n)*1e6 + int64(gen)))
	r.Read(buf)
}

func mustFP(t *testing.T, d blockdev.Device) [32]byte {
	t.Helper()
	fp, err := blockdev.Fingerprint(d)
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	return fp
}

// TestCacheMatchesReference drives an identical random op sequence through a
// cached device and a plain MemDisk and demands indistinguishable behavior,
// then flushes and demands the backing file converged too.
func TestCacheMatchesReference(t *testing.T) {
	const blocks = 257 // odd: exercises uneven shard distribution
	backing := blockdev.NewMemDisk(blocks, testBS)
	c := New(backing, 32) // far smaller than the device: constant eviction
	ref := blockdev.NewMemDisk(blocks, testBS)

	r := rand.New(rand.NewSource(42))
	buf := make([]byte, testBS)
	got := make([]byte, testBS)
	want := make([]byte, testBS)
	for i := 0; i < 5000; i++ {
		n := r.Intn(blocks)
		if r.Intn(2) == 0 {
			fillBlock(buf, n, i)
			if err := c.WriteBlock(n, buf); err != nil {
				t.Fatalf("op %d WriteBlock(%d): %v", i, n, err)
			}
			if err := ref.WriteBlock(n, buf); err != nil {
				t.Fatalf("ref WriteBlock: %v", err)
			}
		} else {
			if err := c.ReadBlock(n, got); err != nil {
				t.Fatalf("op %d ReadBlock(%d): %v", i, n, err)
			}
			if err := ref.ReadBlock(n, want); err != nil {
				t.Fatalf("ref ReadBlock: %v", err)
			}
			if string(got) != string(want) {
				t.Fatalf("op %d: block %d diverged from reference", i, n)
			}
		}
	}
	if mustFP(t, c) != mustFP(t, ref) {
		t.Fatal("cached device fingerprint diverged from reference")
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if mustFP(t, backing) != mustFP(t, ref) {
		t.Fatal("backing device did not converge to reference after Flush")
	}
	st := c.Stats()
	if st.Evictions == 0 || st.Writebacks == 0 {
		t.Fatalf("under-capacity run should evict and write back, got %+v", st)
	}
	if st.Dirty != 0 {
		t.Fatalf("dirty blocks after Flush: %+v", st)
	}
}

// TestSnapshotFrozenView proves Snapshot returns a point-in-time device: the
// live volume keeps mutating while every snapshot read sees pre-write bytes.
func TestSnapshotFrozenView(t *testing.T) {
	const blocks = 64
	backing := blockdev.NewMemDisk(blocks, testBS)
	c := New(backing, 16)
	buf := make([]byte, testBS)
	for n := 0; n < blocks; n++ {
		fillBlock(buf, n, 1)
		if err := c.WriteBlock(n, buf); err != nil {
			t.Fatal(err)
		}
	}
	before := mustFP(t, c)

	snap := c.Snapshot()
	for n := 0; n < blocks; n++ { // overwrite every block on the live volume
		fillBlock(buf, n, 2)
		if err := c.WriteBlock(n, buf); err != nil {
			t.Fatal(err)
		}
	}
	if fp := mustFP(t, snap); fp != before {
		t.Fatal("snapshot does not show the point-in-time content")
	}
	if fp := mustFP(t, c); fp == before {
		t.Fatal("live volume should have moved on")
	}
	st := c.Stats()
	if st.CowCopies == 0 {
		t.Fatalf("overwriting a snapshotted volume must CoW, got %+v", st)
	}
	if st.Snapshots != 1 {
		t.Fatalf("Snapshots = %d, want 1", st.Snapshots)
	}
	if err := snap.WriteBlock(0, buf); err != blockdev.ErrSnapshotReadOnly {
		t.Fatalf("snapshot write: got %v, want ErrSnapshotReadOnly", err)
	}

	snap.Release()
	if st := c.Stats(); st.Snapshots != 0 {
		t.Fatalf("Snapshots = %d after Release, want 0", st.Snapshots)
	}
	if err := snap.ReadBlock(0, buf); err == nil {
		t.Fatal("read from released snapshot should fail")
	}
}

// TestTwoSnapshotsShareCopies takes two snapshots at the same point and
// checks one copy-aside serves both, then that a later snapshot sees the
// newer content, not the old copy.
func TestTwoSnapshotsShareCopies(t *testing.T) {
	backing := blockdev.NewMemDisk(8, testBS)
	c := New(backing, 0)
	buf := make([]byte, testBS)
	fillBlock(buf, 0, 1)
	if err := c.WriteBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	s1, s2 := c.Snapshot(), c.Snapshot()
	old := mustFP(t, s1)

	fillBlock(buf, 0, 2)
	if err := c.WriteBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	s3 := c.Snapshot() // taken after the write: sees generation 2
	fillBlock(buf, 0, 3)
	if err := c.WriteBlock(0, buf); err != nil {
		t.Fatal(err)
	}

	if mustFP(t, s1) != old || mustFP(t, s2) != old {
		t.Fatal("same-instant snapshots must agree on the old content")
	}
	if fp := mustFP(t, s3); fp == old || fp == mustFP(t, c) {
		t.Fatal("later snapshot must see generation 2, not 1 or 3")
	}
	if st := c.Stats(); st.CowCopies != 2 {
		// One copy serves s1+s2 (gen 1), one serves s3 (gen 2).
		t.Fatalf("CowCopies = %d, want 2 (shared per generation)", st.CowCopies)
	}
	s1.Release()
	s2.Release()
	s3.Release()
}

// TestRefcountLifecycle checks pin accounting: Release of the volume is
// refused while handles are out, double handle release panics, and counts
// return to zero.
func TestRefcountLifecycle(t *testing.T) {
	backing := blockdev.NewMemDisk(8, testBS)
	c := New(backing, 0)
	h, err := c.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if h.Num() != 3 || len(h.Data()) != testBS {
		t.Fatalf("handle: num %d data %d", h.Num(), len(h.Data()))
	}
	if st := c.Stats(); st.Pinned != 1 {
		t.Fatalf("Pinned = %d, want 1", st.Pinned)
	}
	if err := c.Release(); err == nil {
		t.Fatal("volume Release must refuse while blocks are pinned")
	}
	h2, err := c.Get(3) // second pin of the same block
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	if st := c.Stats(); st.Pinned != 1 {
		t.Fatalf("Pinned = %d after one of two releases, want 1", st.Pinned)
	}
	h2.Release()
	if st := c.Stats(); st.Pinned != 0 {
		t.Fatalf("Pinned = %d, want 0", st.Pinned)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("double Release of a block handle must panic")
			}
		}()
		h2.Release()
	}()

	snap := c.Snapshot()
	if err := c.Release(); err == nil {
		t.Fatal("volume Release must refuse while snapshots are out")
	}
	snap.Release()
	if err := c.Release(); err != nil {
		t.Fatalf("final Release: %v", err)
	}
	if err := c.ReadBlock(0, make([]byte, testBS)); err != ErrReleased {
		t.Fatalf("I/O after Release: got %v, want ErrReleased", err)
	}
	if _, err := c.Get(0); err != ErrReleased {
		t.Fatalf("Get after Release: got %v, want ErrReleased", err)
	}
}

// TestEvictionSkipsPinned pins blocks in one shard far past its capacity and
// checks none of them are evicted (their contents survive, the shard just
// runs over budget), while unpinned neighbors are still shed.
func TestEvictionSkipsPinned(t *testing.T) {
	const blocks = 16 * shardCount
	backing := blockdev.NewMemDisk(blocks, testBS)
	c := New(backing, shardCount) // shardCap = 1: every shard holds one block
	buf := make([]byte, testBS)
	for n := 0; n < blocks; n++ {
		fillBlock(buf, n, 1)
		if err := c.WriteBlock(n, buf); err != nil {
			t.Fatal(err)
		}
	}
	// Pin 8 blocks that all land in shard 0 (same residue mod shardCount).
	var handles []*Block
	for i := 0; i < 8; i++ {
		h, err := c.Get(i * shardCount)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	// Hammer shard 0 with other blocks: pressure must evict only unpinned.
	for i := 8; i < 16; i++ {
		if err := c.ReadBlock(i*shardCount, buf); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range handles {
		want := make([]byte, testBS)
		fillBlock(want, h.Num(), 1)
		if string(h.Data()) != string(want) {
			t.Fatalf("pinned block %d corrupted by eviction pressure", h.Num())
		}
		h.Release()
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatalf("unpinned blocks should have been evicted, got %+v", st)
	}
	if mustFP(t, c) != mustFP(t, blockdevGen1(blocks)) {
		t.Fatal("device content corrupted under pin pressure")
	}
}

// blockdevGen1 builds the expected generation-1 image as a reference.
func blockdevGen1(blocks int) blockdev.Device {
	ref := blockdev.NewMemDisk(blocks, testBS)
	buf := make([]byte, testBS)
	for n := 0; n < blocks; n++ {
		fillBlock(buf, n, 1)
		_ = ref.WriteBlock(n, buf)
	}
	return ref
}

// TestAllocatedBitmap checks the Allocator view: backing bitmap plus cached
// dirty blocks not yet written back.
func TestAllocatedBitmap(t *testing.T) {
	backing := blockdev.NewMemDisk(32, testBS)
	c := New(backing, 0)
	buf := make([]byte, testBS)
	fillBlock(buf, 7, 1)
	if err := c.WriteBlock(7, buf); err != nil {
		t.Fatal(err)
	}
	bm := c.AllocatedBitmap()
	if !bm.Test(7) {
		t.Fatal("dirty cached block 7 missing from AllocatedBitmap")
	}
	if bm.Count() != 1 {
		t.Fatalf("AllocatedBitmap count = %d, want 1", bm.Count())
	}
}

// TestSnapshotUnderLoad is the -race consistency suite: a writer hammers the
// volume while a reader migrates a snapshot to a destination disk. The
// destination must fingerprint identical to the snapshot — stable across the
// entire copy — and (with overwhelming probability) different from the live
// volume the writer kept mutating.
func TestSnapshotUnderLoad(t *testing.T) {
	const blocks = 128
	backing := blockdev.NewMemDisk(blocks, testBS)
	c := New(backing, 24)
	buf := make([]byte, testBS)
	for n := 0; n < blocks; n++ {
		fillBlock(buf, n, 1)
		if err := c.WriteBlock(n, buf); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			wbuf := make([]byte, testBS)
			for gen := 2; ; gen++ {
				select {
				case <-stop:
					return
				default:
				}
				n := r.Intn(blocks)
				fillBlock(wbuf, n, gen)
				if err := c.WriteBlock(n, wbuf); err != nil {
					t.Errorf("writer: %v", err)
					return
				}
			}
		}(int64(w))
	}

	wr := rand.New(rand.NewSource(99))
	for round := 0; round < 4; round++ {
		snap := c.Snapshot()
		fpBefore := mustFP(t, snap)
		dst := blockdev.NewMemDisk(blocks, testBS)
		rbuf := make([]byte, testBS)
		wbuf := make([]byte, testBS)
		for n := 0; n < blocks; n++ {
			if err := snap.ReadBlock(n, rbuf); err != nil {
				t.Fatalf("round %d: snapshot read %d: %v", round, n, err)
			}
			if err := dst.WriteBlock(n, rbuf); err != nil {
				t.Fatal(err)
			}
			// Mutate the live volume mid-copy from this goroutine too, so
			// the copy demonstrably races ahead of and behind live writes
			// even when GOMAXPROCS=1 starves the background writers.
			if n%4 == 0 {
				target := wr.Intn(blocks)
				fillBlock(wbuf, target, 1000+round*blocks+n)
				if err := c.WriteBlock(target, wbuf); err != nil {
					t.Fatal(err)
				}
			}
		}
		fpAfter := mustFP(t, snap)
		snap.Release()
		if fpBefore != fpAfter {
			t.Fatalf("round %d: snapshot fingerprint drifted during the copy", round)
		}
		if mustFP(t, dst) != fpBefore {
			t.Fatalf("round %d: destination differs from the frozen source", round)
		}
	}
	close(stop)
	wg.Wait()

	st := c.Stats()
	if st.CowCopies == 0 {
		t.Fatalf("load test never exercised CoW, got %+v", st)
	}
	if st.Snapshots != 0 {
		t.Fatalf("snapshots leaked: %+v", st)
	}
}

// TestConcurrentMixedOps runs live reads, writes, pins, snapshots, and
// flushes together purely to give the race detector surface area.
func TestConcurrentMixedOps(t *testing.T) {
	const blocks = 96
	backing := blockdev.NewMemDisk(blocks, testBS)
	c := New(backing, 16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			buf := make([]byte, testBS)
			for i := 0; i < 400; i++ {
				n := r.Intn(blocks)
				switch r.Intn(5) {
				case 0:
					fillBlock(buf, n, i)
					if err := c.WriteBlock(n, buf); err != nil {
						t.Errorf("write: %v", err)
					}
				case 1:
					if err := c.ReadBlock(n, buf); err != nil {
						t.Errorf("read: %v", err)
					}
				case 2:
					h, err := c.Get(n)
					if err != nil {
						t.Errorf("get: %v", err)
						continue
					}
					copy(buf, h.Data())
					h.Release()
				case 3:
					snap := c.Snapshot()
					if err := snap.ReadBlock(n, buf); err != nil {
						t.Errorf("snap read: %v", err)
					}
					snap.Release()
				case 4:
					if err := c.Flush(); err != nil {
						t.Errorf("flush: %v", err)
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	st := c.Stats()
	if st.Pinned != 0 || st.Snapshots != 0 {
		t.Fatalf("leaked pins or snapshots: %+v", st)
	}
	if err := c.Release(); err != nil {
		t.Fatalf("Release: %v", err)
	}
}

func BenchmarkCacheReadHit(b *testing.B) {
	backing := blockdev.NewMemDisk(1024, blockdev.BlockSize)
	c := New(backing, 2048) // everything fits: pure hit path
	buf := make([]byte, blockdev.BlockSize)
	for n := 0; n < 1024; n++ {
		_ = c.WriteBlock(n, buf)
	}
	b.SetBytes(blockdev.BlockSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.ReadBlock(i%1024, buf); err != nil {
			b.Fatal(err)
		}
	}
	if hr := c.Stats().HitRate(); hr < 0.99 {
		b.Fatalf("hit rate %.3f, want ~1", hr)
	}
}

// BenchmarkSnapshotScan measures a full-device scan — the shape of the
// fingerprint and dedup passes — reading a frozen snapshot while a writer
// owns the live path for the whole run.
func BenchmarkSnapshotScan(b *testing.B) {
	const blocks = 2048
	backing := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
	c := New(backing, blocks)
	buf := make([]byte, blockdev.BlockSize)
	for n := 0; n < blocks; n++ {
		if err := c.WriteBlock(n, buf); err != nil {
			b.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(1))
		wbuf := make([]byte, blockdev.BlockSize)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := c.WriteBlock(r.Intn(blocks), wbuf); err != nil {
				return
			}
		}
	}()
	b.SetBytes(int64(blocks) * blockdev.BlockSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := c.Snapshot()
		for n := 0; n < blocks; n++ {
			if err := snap.ReadBlock(n, buf); err != nil {
				b.Fatal(err)
			}
		}
		snap.Release()
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}

func ExampleCache() {
	vol := New(blockdev.NewMemDisk(8, 512), 0)
	buf := make([]byte, 512)
	buf[0] = 'a'
	_ = vol.WriteBlock(0, buf)
	snap := vol.Snapshot()
	buf[0] = 'b'
	_ = vol.WriteBlock(0, buf) // CoW: the snapshot keeps 'a'
	_ = snap.ReadBlock(0, buf)
	fmt.Printf("snapshot sees %c\n", buf[0])
	snap.Release()
	_ = vol.Release()
	// Output: snapshot sees a
}
