package bcache

import (
	"fmt"
	"sync"

	"bbmig/internal/blockdev"
)

// snapshot is a frozen point-in-time view of a Cache, implementing
// blockdev.Snapshot. Blocks the guest has overwritten since the snapshot
// was taken are served from the copy-aside overlay; untouched blocks are
// read through the live cache, because untouched means their live contents
// still equal the snapshot-time contents.
type snapshot struct {
	c *Cache

	mu       sync.Mutex
	overlay  map[int][]byte // block → immutable pre-write contents
	released bool
}

// BlockSize implements blockdev.Device.
func (sn *snapshot) BlockSize() int { return sn.c.blockSize }

// NumBlocks implements blockdev.Device.
func (sn *snapshot) NumBlocks() int { return sn.c.numBlocks }

// ReadBlock implements blockdev.Device: overlay first, then the live
// cache. The whole lookup runs under the block's shard lock so it cannot
// interleave with a writer's copy-aside-then-overwrite sequence.
func (sn *snapshot) ReadBlock(n int, dst []byte) error {
	c := sn.c
	if err := c.checkIO(n, dst); err != nil {
		return err
	}
	s := c.shard(n)
	s.mu.Lock()
	defer s.mu.Unlock()
	sn.mu.Lock()
	if sn.released {
		sn.mu.Unlock()
		return fmt.Errorf("bcache: read block %d from released snapshot", n)
	}
	old := sn.overlay[n]
	sn.mu.Unlock()
	if old != nil {
		copy(dst, old)
		c.count(func(st *Stats) { st.Hits++ })
		return nil
	}
	if b := s.blocks[n]; b != nil {
		copy(dst, b.data)
		if b.refs == 0 {
			s.lruTouch(b)
		}
		c.count(func(st *Stats) { st.Hits++ })
		return nil
	}
	c.count(func(st *Stats) { st.Misses++ })
	return c.backing.ReadBlock(n, dst)
}

// WriteBlock implements blockdev.Device by refusing: snapshots are frozen.
func (sn *snapshot) WriteBlock(int, []byte) error {
	return blockdev.ErrSnapshotReadOnly
}

// Release implements blockdev.Snapshot: deregister from the cache and drop
// the overlay. Live writes stop copying aside for this snapshot, and the
// copied blocks become garbage (shared copies are freed when the last
// snapshot referencing them goes).
func (sn *snapshot) Release() {
	// Deregister first, then mark released: snapMu before sn.mu, the same
	// order writers use, so Release cannot deadlock against a CoW copy.
	sn.c.snapMu.Lock()
	delete(sn.c.snaps, sn)
	sn.c.snapMu.Unlock()
	sn.mu.Lock()
	sn.released = true
	sn.overlay = nil
	sn.mu.Unlock()
}
