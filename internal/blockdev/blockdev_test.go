package blockdev

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func fillPattern(t *testing.T, d Device, seed int64, frac float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, d.BlockSize())
	for n := 0; n < d.NumBlocks(); n++ {
		if rng.Float64() > frac {
			continue
		}
		rng.Read(buf)
		if err := d.WriteBlock(n, buf); err != nil {
			t.Fatalf("write %d: %v", n, err)
		}
	}
}

func testDeviceBasics(t *testing.T, d Device) {
	t.Helper()
	bs := d.BlockSize()
	buf := make([]byte, bs)
	// unwritten blocks read as zeros
	if err := d.ReadBlock(0, buf); err != nil {
		t.Fatalf("read zero block: %v", err)
	}
	if !bytes.Equal(buf, make([]byte, bs)) {
		t.Fatal("fresh block not zero")
	}
	// write/read round trip
	src := bytes.Repeat([]byte{0xAB}, bs)
	if err := d.WriteBlock(3, src); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := d.ReadBlock(3, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(buf, src) {
		t.Fatal("round trip mismatch")
	}
	// overwrite
	src2 := bytes.Repeat([]byte{0x12}, bs)
	if err := d.WriteBlock(3, src2); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	d.ReadBlock(3, buf)
	if !bytes.Equal(buf, src2) {
		t.Fatal("overwrite not visible")
	}
	// range errors
	if err := d.ReadBlock(d.NumBlocks(), buf); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read OOB: %v", err)
	}
	if err := d.WriteBlock(-1, src); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("write OOB: %v", err)
	}
	// short buffers
	if err := d.ReadBlock(0, buf[:10]); err == nil {
		t.Fatal("short read buffer accepted")
	}
	if err := d.WriteBlock(0, buf[:10]); err == nil {
		t.Fatal("short write buffer accepted")
	}
}

func TestMemDiskBasics(t *testing.T) {
	testDeviceBasics(t, NewMemDisk(16, BlockSize))
}

func TestFileDiskBasics(t *testing.T) {
	d, err := CreateFileDisk(filepath.Join(t.TempDir(), "img"), 16, BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	testDeviceBasics(t, d)
}

func TestMemDiskLazyAllocation(t *testing.T) {
	d := NewMemDisk(1<<20, BlockSize) // "4 GiB" disk
	if d.WrittenBlocks() != 0 {
		t.Fatal("blocks allocated before write")
	}
	buf := make([]byte, BlockSize)
	d.WriteBlock(12345, buf)
	d.WriteBlock(12345, buf)
	if d.WrittenBlocks() != 1 {
		t.Fatalf("WrittenBlocks = %d", d.WrittenBlocks())
	}
}

func TestFileDiskReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "img")
	d, err := CreateFileDisk(path, 8, BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	src := bytes.Repeat([]byte{7}, BlockSize)
	d.WriteBlock(5, src)
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	d.Close()

	d2, err := OpenFileDisk(path, BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.NumBlocks() != 8 {
		t.Fatalf("NumBlocks = %d", d2.NumBlocks())
	}
	buf := make([]byte, BlockSize)
	d2.ReadBlock(5, buf)
	if !bytes.Equal(buf, src) {
		t.Fatal("persisted block mismatch")
	}
}

func TestOpenFileDiskRejectsBadSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "img")
	d, _ := CreateFileDisk(path, 2, 100) // 200 bytes
	d.Close()
	if _, err := OpenFileDisk(path, BlockSize); err == nil {
		t.Fatal("misaligned image accepted")
	}
	if _, err := OpenFileDisk(filepath.Join(t.TempDir(), "missing"), BlockSize); err == nil {
		t.Fatal("missing image accepted")
	}
}

func TestExtentBlocks(t *testing.T) {
	cases := []struct {
		ext    Extent
		lo, hi int
	}{
		{Extent{0, 0}, 0, 0},
		{Extent{0, 1}, 0, 1},
		{Extent{0, 4096}, 0, 1},
		{Extent{0, 4097}, 0, 2},
		{Extent{4095, 2}, 0, 2},
		{Extent{8192, 4096}, 2, 3},
		{Extent{10000, 10000}, 2, 5},
	}
	for _, c := range cases {
		lo, hi := c.ext.Blocks(BlockSize)
		if lo != c.lo || hi != c.hi {
			t.Errorf("Extent%+v.Blocks = [%d,%d), want [%d,%d)", c.ext, lo, hi, c.lo, c.hi)
		}
	}
}

func TestQuickExtentCoversEveryByte(t *testing.T) {
	f := func(offRaw uint32, lenRaw uint16) bool {
		e := Extent{Offset: int64(offRaw), Length: int64(lenRaw)}
		lo, hi := e.Blocks(BlockSize)
		if e.Length == 0 {
			return lo == hi
		}
		// First and last byte of the extent must fall inside [lo, hi).
		first := e.Offset / BlockSize
		last := (e.Offset + e.Length - 1) / BlockSize
		return int64(lo) == first && int64(hi) == last+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintAndDiff(t *testing.T) {
	a := NewMemDisk(64, BlockSize)
	b := NewMemDisk(64, BlockSize)
	fillPattern(t, a, 1, 0.5)
	fillPattern(t, b, 1, 0.5) // same seed → same contents
	fa, err := Fingerprint(a)
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := Fingerprint(b)
	if fa != fb {
		t.Fatal("identical disks fingerprint differently")
	}
	diffs, err := Diff(a, b)
	if err != nil || len(diffs) != 0 {
		t.Fatalf("Diff identical = %v, %v", diffs, err)
	}
	// perturb one block
	buf := bytes.Repeat([]byte{0xEE}, BlockSize)
	b.WriteBlock(17, buf)
	fb2, _ := Fingerprint(b)
	if fa == fb2 {
		t.Fatal("fingerprint blind to change")
	}
	diffs, _ = Diff(a, b)
	if len(diffs) != 1 || diffs[0] != 17 {
		t.Fatalf("Diff = %v, want [17]", diffs)
	}
	bf1, _ := BlockFingerprint(a, 17)
	bf2, _ := BlockFingerprint(b, 17)
	if bf1 == bf2 {
		t.Fatal("block fingerprint blind to change")
	}
}

func TestDiffGeometryMismatch(t *testing.T) {
	if _, err := Diff(NewMemDisk(4, BlockSize), NewMemDisk(5, BlockSize)); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

func TestCapacity(t *testing.T) {
	if got := Capacity(NewMemDisk(10, 4096)); got != 40960 {
		t.Fatalf("Capacity = %d", got)
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "READ" || Write.String() != "WRITE" || Op(9).String() == "" {
		t.Fatal("Op.String wrong")
	}
}

func TestMemDiskConcurrent(t *testing.T) {
	d := NewMemDisk(256, BlockSize)
	done := make(chan error, 8)
	for w := 0; w < 4; w++ {
		go func(w int) {
			buf := bytes.Repeat([]byte{byte(w)}, BlockSize)
			for i := 0; i < 200; i++ {
				if err := d.WriteBlock((w*64+i)%256, buf); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
		go func() {
			buf := make([]byte, BlockSize)
			for i := 0; i < 200; i++ {
				if err := d.ReadBlock(i%256, buf); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestMemDiskAllocatedBitmap(t *testing.T) {
	d := NewMemDisk(64, BlockSize)
	if d.AllocatedBitmap().Count() != 0 {
		t.Fatal("fresh disk reports allocated blocks")
	}
	buf := make([]byte, BlockSize)
	for _, n := range []int{0, 7, 63} {
		d.WriteBlock(n, buf)
	}
	bm := d.AllocatedBitmap()
	if bm.Count() != 3 || !bm.Test(7) || bm.Test(8) {
		t.Fatalf("allocation bitmap wrong: %v", bm)
	}
	// reads must not allocate
	d.ReadBlock(30, buf)
	if d.AllocatedBitmap().Count() != 3 {
		t.Fatal("read allocated a block")
	}
}
