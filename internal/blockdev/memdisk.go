package blockdev

import (
	"fmt"
	"sync"

	"bbmig/internal/bitmap"
)

// MemDisk is a RAM-backed Device. Blocks are allocated lazily, so a "40 GB"
// MemDisk that is mostly zeros costs memory proportional to its written
// footprint only — this is what lets integration tests and the simulator
// instantiate paper-scale VBDs.
type MemDisk struct {
	mu        sync.RWMutex
	blocks    map[int][]byte // only blocks that were ever written
	blockSize int
	numBlocks int
}

// NewMemDisk returns a zero-filled MemDisk with numBlocks blocks of
// blockSize bytes.
func NewMemDisk(numBlocks, blockSize int) *MemDisk {
	if numBlocks < 0 || blockSize <= 0 {
		panic(fmt.Sprintf("blockdev: bad geometry %dx%d", numBlocks, blockSize))
	}
	return &MemDisk{
		blocks:    make(map[int][]byte),
		blockSize: blockSize,
		numBlocks: numBlocks,
	}
}

// BlockSize implements Device.
func (m *MemDisk) BlockSize() int { return m.blockSize }

// NumBlocks implements Device.
func (m *MemDisk) NumBlocks() int { return m.numBlocks }

// ReadBlock implements Device. Never-written blocks read as zeros.
func (m *MemDisk) ReadBlock(n int, dst []byte) error {
	if err := CheckRange(m, n); err != nil {
		return err
	}
	if len(dst) < m.blockSize {
		return fmt.Errorf("blockdev: read buffer %d < block size %d", len(dst), m.blockSize)
	}
	m.mu.RLock()
	blk := m.blocks[n]
	if blk == nil {
		m.mu.RUnlock()
		clear(dst[:m.blockSize])
		return nil
	}
	copy(dst, blk)
	m.mu.RUnlock()
	return nil
}

// WriteBlock implements Device.
func (m *MemDisk) WriteBlock(n int, src []byte) error {
	if err := CheckRange(m, n); err != nil {
		return err
	}
	if len(src) < m.blockSize {
		return fmt.Errorf("blockdev: write buffer %d < block size %d", len(src), m.blockSize)
	}
	m.mu.Lock()
	blk := m.blocks[n]
	if blk == nil {
		blk = make([]byte, m.blockSize)
		m.blocks[n] = blk
	}
	copy(blk, src)
	m.mu.Unlock()
	return nil
}

// WrittenBlocks returns how many blocks have ever been written (the
// allocation footprint).
func (m *MemDisk) WrittenBlocks() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.blocks)
}

// AllocatedBitmap implements Allocator: one set bit per block that has ever
// been written. Blocks outside the bitmap read as zeros, so a migration may
// skip them when the destination device is freshly zeroed.
func (m *MemDisk) AllocatedBitmap() *bitmap.Bitmap {
	m.mu.RLock()
	defer m.mu.RUnlock()
	bm := bitmap.New(m.numBlocks)
	for n := range m.blocks {
		bm.Set(n)
	}
	return bm
}
