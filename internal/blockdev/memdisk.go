package blockdev

import (
	"fmt"
	"sync"

	"bbmig/internal/bitmap"
)

// memDiskShards is the lock-striping width: block state is spread over this
// many independently locked shards so the parallel migration pipeline's
// scatter writers and the guest workload don't serialize on one mutex. 16
// shards keeps per-disk overhead trivial while letting a worker pool scale.
const memDiskShards = 16

// MemDisk is a RAM-backed Device. Blocks are allocated lazily, so a "40 GB"
// MemDisk that is mostly zeros costs memory proportional to its written
// footprint only — this is what lets integration tests and the simulator
// instantiate paper-scale VBDs. Block state is sharded by block number, so
// concurrent readers and writers of different blocks proceed in parallel.
type MemDisk struct {
	shards    [memDiskShards]memDiskShard
	blockSize int
	numBlocks int
}

type memDiskShard struct {
	mu     sync.RWMutex
	blocks map[int][]byte // only blocks that were ever written
	slab   []byte         // spare storage first-writes carve block slices from
}

// memDiskSlabBlocks bounds how many blocks' worth of storage a shard
// allocates at once. Carving first-write block storage from slabs keeps a
// bulk restore (a migration landing on a cold destination disk) at one
// allocation per slab instead of one per block, without giving up the
// lazy, sparse footprint: slack is bounded by one partial slab per shard.
const memDiskSlabBlocks = 64

// NewMemDisk returns a zero-filled MemDisk with numBlocks blocks of
// blockSize bytes.
func NewMemDisk(numBlocks, blockSize int) *MemDisk {
	if numBlocks < 0 || blockSize <= 0 {
		panic(fmt.Sprintf("blockdev: bad geometry %dx%d", numBlocks, blockSize))
	}
	m := &MemDisk{
		blockSize: blockSize,
		numBlocks: numBlocks,
	}
	for i := range m.shards {
		m.shards[i].blocks = make(map[int][]byte)
	}
	return m
}

func (m *MemDisk) shard(n int) *memDiskShard { return &m.shards[n%memDiskShards] }

// BlockSize implements Device.
func (m *MemDisk) BlockSize() int { return m.blockSize }

// NumBlocks implements Device.
func (m *MemDisk) NumBlocks() int { return m.numBlocks }

// ReadBlock implements Device. Never-written blocks read as zeros.
func (m *MemDisk) ReadBlock(n int, dst []byte) error {
	if err := CheckRange(m, n); err != nil {
		return err
	}
	if len(dst) < m.blockSize {
		return fmt.Errorf("blockdev: read buffer %d < block size %d", len(dst), m.blockSize)
	}
	s := m.shard(n)
	s.mu.RLock()
	blk := s.blocks[n]
	if blk == nil {
		s.mu.RUnlock()
		clear(dst[:m.blockSize])
		return nil
	}
	copy(dst, blk)
	s.mu.RUnlock()
	return nil
}

// WriteBlock implements Device.
func (m *MemDisk) WriteBlock(n int, src []byte) error {
	if err := CheckRange(m, n); err != nil {
		return err
	}
	if len(src) < m.blockSize {
		return fmt.Errorf("blockdev: write buffer %d < block size %d", len(src), m.blockSize)
	}
	s := m.shard(n)
	s.mu.Lock()
	blk := s.blocks[n]
	if blk == nil {
		if len(s.slab) < m.blockSize {
			// Size the slab to the disk: tiny disks get single-block slabs
			// so an 8-block test fixture doesn't allocate 64 blocks' slack.
			blocks := (m.numBlocks + memDiskShards - 1) / memDiskShards
			if blocks > memDiskSlabBlocks {
				blocks = memDiskSlabBlocks
			}
			if blocks < 1 {
				blocks = 1
			}
			s.slab = make([]byte, blocks*m.blockSize)
		}
		blk = s.slab[:m.blockSize:m.blockSize]
		s.slab = s.slab[m.blockSize:]
		s.blocks[n] = blk
	}
	copy(blk, src)
	s.mu.Unlock()
	return nil
}

// WrittenBlocks returns how many blocks have ever been written (the
// allocation footprint).
func (m *MemDisk) WrittenBlocks() int {
	total := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		total += len(s.blocks)
		s.mu.RUnlock()
	}
	return total
}

// AllocatedBitmap implements Allocator: one set bit per block that has ever
// been written. Blocks outside the bitmap read as zeros, so a migration may
// skip them when the destination device is freshly zeroed.
func (m *MemDisk) AllocatedBitmap() *bitmap.Bitmap {
	bm := bitmap.New(m.numBlocks)
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for n := range s.blocks {
			bm.Set(n)
		}
		s.mu.RUnlock()
	}
	return bm
}
