// Package blockdev provides the virtual block device (VBD) substrate the
// migration engine operates on.
//
// The paper migrates a Xen Virtual Block Device backed by a local SATA disk.
// Here a Device is any fixed-size array of equally-sized blocks addressable
// by block number. Two implementations are provided: MemDisk (RAM-backed,
// used by tests and the paper-scale simulator) and FileDisk (sparse
// file-backed, used by the CLI and TCP examples). The migration algorithms
// never look below the block interface, which is exactly the transparency
// property the paper claims ("storage migration occurs at the block level;
// the file system cannot observe the migration", §IV-A-4).
package blockdev

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"

	"bbmig/internal/bitmap"
)

// BlockSize is the default block granularity: the paper maps one bitmap bit
// to one 4 KiB block ("modern OS often reads from or writes to disk by a
// group of sectors as a block, usually a 4KB block", §IV-A-2).
const BlockSize = 4096

// SectorSize is the physical sector granularity, used only by the
// granularity ablation (512 B bitmap vs 4 KiB bitmap).
const SectorSize = 512

// Op distinguishes read and write requests.
type Op uint8

const (
	// Read requests copy a block from the device.
	Read Op = iota
	// Write requests overwrite a block on the device.
	Write
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case Read:
		return "READ"
	case Write:
		return "WRITE"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Request is an I/O request as seen by the block backend driver: the paper's
// R<O, N, VM> triple (§IV-A-3) plus the data payload for writes.
type Request struct {
	Op     Op
	Block  int    // block number N
	Domain int    // ID of the domain that submitted the request
	Data   []byte // write payload (exactly one block) — nil for reads
}

// ErrOutOfRange is returned for block numbers outside the device.
var ErrOutOfRange = errors.New("blockdev: block number out of range")

// Device is a fixed-geometry virtual block device.
//
// ReadBlock fills dst (len ≥ BlockSize()) with the block's contents;
// WriteBlock replaces the block. Implementations must be safe for concurrent
// use: during post-copy the VM's I/O stream and the migration pusher touch
// the device from different goroutines.
type Device interface {
	// BlockSize returns the block size in bytes.
	BlockSize() int
	// NumBlocks returns the number of blocks on the device.
	NumBlocks() int
	// ReadBlock copies block n into dst, which must be at least BlockSize bytes.
	ReadBlock(n int, dst []byte) error
	// WriteBlock overwrites block n with src, which must be at least BlockSize bytes.
	WriteBlock(n int, src []byte) error
}

// Capacity returns the device size in bytes.
func Capacity(d Device) int64 { return int64(d.BlockSize()) * int64(d.NumBlocks()) }

// Snapshot is a frozen point-in-time view of a Volume. It is a read-only
// Device: ReadBlock always returns the contents the volume held at the
// instant the snapshot was taken, no matter how the live volume has been
// written since; WriteBlock fails with ErrSnapshotReadOnly. Release frees
// the copy-aside storage — every snapshot must be released exactly once,
// and reads after Release fail.
type Snapshot interface {
	Device
	// Release drops the snapshot and frees its copy-aside blocks.
	Release()
}

// Volume is the redesigned storage surface the engine and host daemon
// operate on: a Device that can also freeze consistent point-in-time views
// of itself. Migration pre-copy iterations, dedup ScanSource passes,
// Fingerprint audits, and hostd pre-sync all read a Snapshot while the
// guest keeps writing the live volume — the paper's block-level
// transparency claim (§IV-A-4) made literal. Release flushes any cached
// dirty state to the backing device and ends the volume's lifecycle.
type Volume interface {
	Device
	// Snapshot freezes a point-in-time read-only view of the volume.
	Snapshot() Snapshot
	// Release flushes outstanding dirty state and releases the volume. It
	// fails if snapshots or pinned blocks are still outstanding.
	Release() error
}

// ErrSnapshotReadOnly is returned by WriteBlock on a Snapshot.
var ErrSnapshotReadOnly = errors.New("blockdev: snapshot is read-only")

// SnapshotOf freezes a point-in-time view of d when the device is
// snapshot-capable and returns it along with its release function. For a
// plain Device it returns the device itself and a no-op release: callers
// get best-effort live reads, exactly the pre-Volume behaviour, so the
// default engine path is unchanged byte for byte.
func SnapshotOf(d Device) (Device, func()) {
	if v, ok := d.(Volume); ok {
		snap := v.Snapshot()
		return snap, snap.Release
	}
	return d, func() {}
}

// Allocator is implemented by devices that know which blocks hold data.
// The migration engine's SkipUnused option (the paper's §VII future-work
// item: "if the Guest OS ... can tell the migration process which part is
// not used, the amount of migrated data can be reduced further") uses it to
// elide never-written blocks from the first pre-copy iteration, relying on
// the destination VBD reading zeros for blocks it never receives.
type Allocator interface {
	// AllocatedBitmap returns a bitmap with one set bit per block that may
	// contain nonzero data.
	AllocatedBitmap() *bitmap.Bitmap
}

// Extent describes a byte range of the device, as submitted by a guest file
// system. Guests issue extent-granular writes; the backend splits them into
// blocks ("split the requested area into 4K blocks and set corresponding
// bits", §IV-B).
type Extent struct {
	Offset int64 // byte offset
	Length int64 // byte length
}

// Blocks returns the half-open block-number range [lo, hi) covered by the
// extent for the given block size.
func (e Extent) Blocks(blockSize int) (lo, hi int) {
	if e.Length <= 0 {
		return 0, 0
	}
	lo = int(e.Offset / int64(blockSize))
	hi = int((e.Offset + e.Length + int64(blockSize) - 1) / int64(blockSize))
	return lo, hi
}

// CheckRange validates a block number against a device.
func CheckRange(d Device, n int) error {
	if n < 0 || n >= d.NumBlocks() {
		return fmt.Errorf("%w: block %d of %d", ErrOutOfRange, n, d.NumBlocks())
	}
	return nil
}

// scanBufs recycles the buffer pair used by whole-device scans so that
// Fingerprint and Diff — which hostd now runs repeatedly against snapshots —
// stop allocating a block buffer (or two) per call.
var scanBufs = sync.Pool{New: func() any {
	p := new([2][]byte)
	p[0] = make([]byte, BlockSize)
	p[1] = make([]byte, BlockSize)
	return p
}}

// getScanBufs returns a pooled buffer pair sized for bs-byte blocks.
func getScanBufs(bs int) *[2][]byte {
	p := scanBufs.Get().(*[2][]byte)
	if cap(p[0]) < bs {
		p[0] = make([]byte, bs)
		p[1] = make([]byte, bs)
	}
	p[0] = p[0][:bs]
	p[1] = p[1][:bs]
	return p
}

// Fingerprint hashes the full device contents. Tests use it to assert the
// paper's consistency requirement: after migration the source and destination
// disks are bit-identical; hostd runs it against snapshots for background
// divergence audits.
func Fingerprint(d Device) ([32]byte, error) {
	h := sha256.New()
	bufs := getScanBufs(d.BlockSize())
	defer scanBufs.Put(bufs)
	buf := bufs[0]
	for n := 0; n < d.NumBlocks(); n++ {
		if err := d.ReadBlock(n, buf); err != nil {
			return [32]byte{}, fmt.Errorf("fingerprint block %d: %w", n, err)
		}
		h.Write(buf)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out, nil
}

// BlockFingerprint hashes a single block, for fine-grained divergence checks.
func BlockFingerprint(d Device, n int) ([32]byte, error) {
	bufs := getScanBufs(d.BlockSize())
	defer scanBufs.Put(bufs)
	if err := d.ReadBlock(n, bufs[0]); err != nil {
		return [32]byte{}, err
	}
	return sha256.Sum256(bufs[0]), nil
}

// Diff returns the block numbers at which two devices differ. It returns an
// error if geometries differ.
func Diff(a, b Device) ([]int, error) {
	if a.BlockSize() != b.BlockSize() || a.NumBlocks() != b.NumBlocks() {
		return nil, fmt.Errorf("blockdev: geometry mismatch: %dx%d vs %dx%d",
			a.NumBlocks(), a.BlockSize(), b.NumBlocks(), b.BlockSize())
	}
	var diffs []int
	bufs := getScanBufs(a.BlockSize())
	defer scanBufs.Put(bufs)
	ba, bb := bufs[0], bufs[1]
	for n := 0; n < a.NumBlocks(); n++ {
		if err := a.ReadBlock(n, ba); err != nil {
			return nil, err
		}
		if err := b.ReadBlock(n, bb); err != nil {
			return nil, err
		}
		if !bytes.Equal(ba, bb) {
			diffs = append(diffs, n)
		}
	}
	return diffs, nil
}
