package sim

import (
	"fmt"
	"time"

	"bbmig/internal/blkback"
	"bbmig/internal/blockdev"
	"bbmig/internal/clock"
	"bbmig/internal/metrics"
	"bbmig/internal/workload"
)

// This file defines one entry point per table/figure of the paper's
// evaluation (§VI). Each returns both raw results and a rendered
// metrics.Table/Series so cmd/bbench and bench_test.go print rows directly
// comparable to the paper.

// TableIWorkloads lists the three §VI-B workloads in Table I column order.
func TableIWorkloads() []workload.Kind {
	return []workload.Kind{workload.Web, workload.Stream, workload.Diabolic}
}

// TableI reproduces "RESULTS FOR DIFFERENT WORKLOADS": total migration time,
// downtime, and amount of migrated data for the three workloads under
// primary TPM.
func TableI(seed int64) ([]*Result, *metrics.Table) {
	var results []*Result
	t := &metrics.Table{
		Title:   "TABLE I — results for different workloads (TPM, 39 070 MB VBD)",
		Columns: []string{"metric", "dynamic web server", "low latency server", "diabolical server"},
	}
	rows := [3][]string{
		{"Total migration time (s)"},
		{"Downtime (ms)"},
		{"Amount of migrated data (MB)"},
	}
	for _, kind := range TableIWorkloads() {
		p := Defaults(kind)
		p.Seed = seed
		r := RunTPM(p)
		results = append(results, r)
		rows[0] = append(rows[0], fmt.Sprintf("%.0f", r.Report.TotalTime.Seconds()))
		rows[1] = append(rows[1], fmt.Sprintf("%d", r.Report.Downtime.Milliseconds()))
		rows[2] = append(rows[2], fmt.Sprintf("%.0f", r.Report.MigratedMB()))
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return results, t
}

// TableII reproduces "IM RESULTS COMPARED WITH TPM": each primary result is
// followed by an incremental migration back after the dwell period.
func TableII(primary []*Result) ([]*Result, *metrics.Table) {
	t := &metrics.Table{
		Title:   "TABLE II — IM results compared with TPM",
		Columns: []string{"scheme", "workload", "migration time (s)", "amount of migrated data (MB)"},
	}
	var ims []*Result
	// Table II reports storage migration time (see Report.StorageTime).
	for _, r := range primary {
		t.AddRow("Primary TPM", r.Report.Workload,
			fmt.Sprintf("%.1f", r.Report.StorageTime().Seconds()),
			fmt.Sprintf("%.1f", r.Report.MigratedMB()))
	}
	for _, r := range primary {
		im := r.RunIM()
		ims = append(ims, im)
		t.AddRow("IM", im.Report.Workload,
			fmt.Sprintf("%.1f", im.Report.StorageTime().Seconds()),
			fmt.Sprintf("%.1f", im.Report.MigratedMB()))
	}
	return ims, t
}

// TrackingOverheadResult is one row of Table III: throughput of a Bonnie-like
// write pattern with and without block-bitmap write tracking, measured on the
// real blkback backend (not simulated — this is the one experiment that runs
// at native speed in both the paper and here).
type TrackingOverheadResult struct {
	Test            string
	NormalKBps      float64
	TrackedKBps     float64
	OverheadPercent float64
}

// TableIII measures the I/O performance overhead of the synchronization
// mechanism: every write intercepted and marked in the block-bitmap
// (§VI-C-5, "the performance overhead is less than 1 percent").
//
// The tracking cost itself — the extra work blkback does per intercepted
// write — is measured for real on this machine, by running the same write
// stream through the actual Backend with tracking off and on and taking the
// per-operation time difference. That delta is then applied to the paper's
// SATA2 baseline throughputs (Table III "Normal" row: a 4 KiB write costs
// 42-157 µs on their disk), because a RAM-backed test device would make the
// denominator, not the mechanism, the story: nanosecond "disk" writes
// inflate a ~20 ns bitmap update into a fake double-digit overhead.
func TableIII(blocks int, opsPerTest int) ([]TrackingOverheadResult, *metrics.Table) {
	dev := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
	buf := make([]byte, blockdev.BlockSize)
	rbuf := make([]byte, blockdev.BlockSize)

	// measure returns the best-of-3 mean ns/op of the op stream.
	measure := func(tracked bool, op func(b *blkback.Backend, i int)) float64 {
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			b := blkback.NewBackend(dev, 1)
			if tracked {
				b.StartTracking()
			}
			clk := clock.NewReal()
			start := clk.Now()
			for i := 0; i < opsPerTest; i++ {
				op(b, i)
			}
			ns := float64(clk.Now()-start) / float64(opsPerTest)
			if rep == 0 || ns < best {
				best = ns
			}
		}
		return best
	}

	tests := []struct {
		name      string
		paperKBps float64 // Table III "Normal" row (SATA2 baseline)
		op        func(b *blkback.Backend, i int)
	}{
		// putc: sequential single-block writes (char-at-a-time buffered)
		{"putc", 47740, func(b *blkback.Backend, i int) {
			b.Submit(blockdev.Request{Op: blockdev.Write, Block: i % blocks, Domain: 1, Data: buf})
		}},
		// write(2): sequential block writes with stride (block syscalls)
		{"write(2)", 96122, func(b *blkback.Backend, i int) {
			b.Submit(blockdev.Request{Op: blockdev.Write, Block: (i * 4) % blocks, Domain: 1, Data: buf})
		}},
		// rewrite: read-modify-write of the same region
		{"rewrite", 26125, func(b *blkback.Backend, i int) {
			n := i % (blocks / 2)
			b.Submit(blockdev.Request{Op: blockdev.Read, Block: n, Domain: 1, Data: rbuf})
			b.Submit(blockdev.Request{Op: blockdev.Write, Block: n, Domain: 1, Data: buf})
		}},
	}
	var results []TrackingOverheadResult
	t := &metrics.Table{
		Title:   "TABLE III — I/O performance comparison (KB/s)",
		Columns: []string{"", "putc", "write(2)", "rewrite"},
	}
	normalRow := []string{"Normal"}
	trackedRow := []string{"With writes tracked"}
	const blockKB = float64(blockdev.BlockSize) / 1024
	for _, tc := range tests {
		normalNs := measure(false, tc.op)
		trackedNs := measure(true, tc.op)
		deltaNs := trackedNs - normalNs
		if deltaNs < 0 {
			deltaNs = 0 // measurement noise; tracking cannot speed writes up
		}
		// paper baseline: time one 4 KiB write takes on the SATA2 disk
		baselineNs := blockKB / tc.paperKBps * 1e9
		trackedKBps := blockKB / ((baselineNs + deltaNs) / 1e9)
		overhead := (tc.paperKBps - trackedKBps) / tc.paperKBps * 100
		results = append(results, TrackingOverheadResult{
			Test: tc.name, NormalKBps: tc.paperKBps, TrackedKBps: trackedKBps, OverheadPercent: overhead,
		})
		normalRow = append(normalRow, fmt.Sprintf("%.0f", tc.paperKBps))
		trackedRow = append(trackedRow, fmt.Sprintf("%.0f", trackedKBps))
	}
	t.AddRow(normalRow...)
	t.AddRow(trackedRow...)
	return results, t
}

// Fig5 reproduces "Throughput of the SPECweb_Banking server while migration":
// the web workload's achieved throughput across the migration window shows no
// noticeable drop.
func Fig5(seed int64) *Result {
	p := Defaults(workload.Web)
	p.Seed = seed
	p.DwellAfter = 15 * time.Minute // figure extends past the migration
	return RunTPM(p)
}

// Fig6 reproduces "Impact on Bonnie++ throughput" plus §VI-C-3's rate-limited
// variant: unlimited migration roughly halves Bonnie++ throughput in its
// disk-bound phases; capping the migration bandwidth roughly halves the
// impact while lengthening pre-copy on the order of a third.
func Fig6(seed int64) (unlimited, limited *Result) {
	p := Defaults(workload.Diabolic)
	p.Seed = seed
	p.DwellAfter = 10 * time.Minute
	unlimited = RunTPM(p)

	pl := p
	pl.RateLimit = p.NetBytesPerSec * 0.70 // the paper "simply limits" the rate
	limited = RunTPM(pl)
	return unlimited, limited
}

// LocalityStats reproduces the §IV-A-2 write-locality measurements that
// motivate bitmap synchronization over delta forwarding.
func LocalityStats() *metrics.Table {
	t := &metrics.Table{
		Title:   "Write locality (§IV-A-2): writes that rewrite previously written blocks",
		Columns: []string{"workload", "writes", "unique blocks", "rewrite %", "paper"},
	}
	nb := Defaults(workload.Web).DiskMB << 20 / blockdev.BlockSize
	cases := []struct {
		kind    workload.Kind
		horizon time.Duration
		paper   string
	}{
		{workload.Kernel, 10 * time.Minute, "~11%"},
		{workload.Web, 30 * time.Minute, "25.2%"},
		{workload.Diabolic, 0, "35.6%"},
	}
	for _, c := range cases {
		g := workload.New(c.kind, nb, 1)
		horizon := c.horizon
		if d, ok := g.(*workload.Diabolical); ok {
			horizon = d.CycleDuration()
		}
		st := workload.Locality(g, horizon)
		t.AddRow(c.kind.String(), fmt.Sprintf("%d", st.Writes),
			fmt.Sprintf("%d", st.UniqueBlocks),
			fmt.Sprintf("%.1f%%", st.RewriteRatio*100), c.paper)
	}
	return t
}

// IterationDetail renders the §VI-C-1..3 per-iteration narrative (pre-copy
// iteration count, retransferred blocks, post-copy duration and pull count)
// for one workload.
func IterationDetail(r *Result) *metrics.Table {
	t := &metrics.Table{
		Title:   fmt.Sprintf("Pre-copy iterations — %s", r.Report.Workload),
		Columns: []string{"iteration", "blocks sent", "duration (s)", "dirty at end"},
	}
	for _, it := range r.Report.DiskIterations {
		t.AddRow(fmt.Sprintf("%d", it.Index), fmt.Sprintf("%d", it.Units),
			fmt.Sprintf("%.2f", it.Duration.Seconds()), fmt.Sprintf("%d", it.DirtyEnd))
	}
	t.AddRow("post-copy", fmt.Sprintf("%d pushed / %d pulled", r.Report.BlocksPushed, r.Report.BlocksPulled),
		fmt.Sprintf("%.3f", r.Report.PostCopyTime.Seconds()), "0")
	return t
}

// GranularityAblation compares bitmap memory cost at 512 B vs 4 KiB
// granularity for a given disk size, the §IV-A-2 sizing argument.
func GranularityAblation(diskBytes int64) *metrics.Table {
	t := &metrics.Table{
		Title:   "Bitmap granularity ablation (§IV-A-2)",
		Columns: []string{"granularity", "bits", "bitmap size"},
	}
	for _, g := range []struct {
		name string
		unit int64
	}{{"512 B sector", 512}, {"4 KiB block", blockdev.BlockSize}} {
		bits := diskBytes / g.unit
		t.AddRow(g.name, fmt.Sprintf("%d", bits), fmt.Sprintf("%.2f MiB", float64(bits/8)/(1<<20)))
	}
	return t
}

// DowntimeVsGranularity quantifies the §IV-A-2 granularity choice in
// downtime terms: the freeze-and-copy phase transfers the whole block-bitmap,
// so a 512 B-sector bitmap (8x larger) directly inflates every downtime in
// Table I. The sweep reruns the baseline accounting with each granularity's
// bitmap size.
func DowntimeVsGranularity(kind workload.Kind, seed int64) *metrics.Table {
	p := Defaults(kind)
	p.Seed = seed
	p.DwellAfter = time.Minute
	r := RunTPM(p)
	baseline := r.Report.Downtime
	// remove the 4 KiB bitmap's transfer cost to get the bitmap-free floor
	numBlocks := p.DiskMB << 20 / blockdev.BlockSize
	base4k := time.Duration(float64(numBlocks/8+16) / p.NetBytesPerSec * float64(time.Second))
	floor := baseline - base4k

	t := &metrics.Table{
		Title:   fmt.Sprintf("Downtime vs bitmap granularity — %s (§IV-A-2)", kind),
		Columns: []string{"granularity", "bitmap size (MiB)", "bitmap transfer", "downtime"},
	}
	for _, g := range []struct {
		name string
		unit int64
	}{{"4 KiB block", blockdev.BlockSize}, {"1 KiB", 1024}, {"512 B sector", 512}} {
		bits := int64(p.DiskMB) << 20 / g.unit
		bmBytes := float64(bits/8 + 16)
		xfer := time.Duration(bmBytes / p.NetBytesPerSec * float64(time.Second))
		t.AddRow(g.name,
			fmt.Sprintf("%.2f", bmBytes/(1<<20)),
			fmt.Sprintf("%d ms", xfer.Milliseconds()),
			fmt.Sprintf("%d ms", (floor+xfer).Milliseconds()))
	}
	return t
}

// SchemeComparison quantifies §II's related-work arguments at paper scale:
// for one workload it derives the headline metrics of every scheme the paper
// discusses — freeze-and-copy (ISR/Collective), pure on-demand fetching,
// Bradford-style delta forward-and-replay, and TPM — from the same
// calibrated testbed model. The orderings (who wins on downtime, who keeps a
// residual dependency, who blocks I/O after resume) are the paper's
// qualitative claims made numeric.
func SchemeComparison(kind workload.Kind, seed int64) *metrics.Table {
	p := Defaults(kind)
	p.Seed = seed
	p.DwellAfter = time.Minute
	tpm := RunTPM(p)

	diskBytes := float64(int64(p.DiskMB) << 20)
	memBytes := float64(int64(p.MemMB) << 20)
	net := p.NetBytesPerSec

	// Freeze-and-copy: one copy, VM frozen throughout (§II-B, ISR).
	fcDowntime := time.Duration((diskBytes + memBytes) / net * float64(time.Second))

	// On-demand: downtime like shared-storage migration (memory only), but
	// the source dependency never ends (§II-B). Residual dependency after
	// one dwell period = blocks never read or written on the destination.
	onDemandDowntime := tpm.Report.Downtime // same freeze content minus the bitmap
	touched := tpm.FreshBlocks()            // proxy: the workload's working set
	numBlocks := p.DiskMB << 20 / blockdev.BlockSize
	residual := numBlocks - touched

	// Delta forward-and-replay (Bradford): downtime like shared-storage,
	// but after resume guest I/O blocks until the queued deltas replay.
	// Delta volume = every write during the full-disk pass, redundancy
	// included; replay at disk speed.
	g := workload.New(kind, numBlocks, seed)
	copyDur := time.Duration(diskBytes / net * float64(time.Second))
	st := workload.Locality(g, copyDur)
	deltaBytes := float64(st.Writes) * blockdev.BlockSize
	ioBlocked := time.Duration(deltaBytes / p.DiskBytesPerSec * float64(time.Second))
	redundantMB := float64(st.Rewrites) * blockdev.BlockSize / (1 << 20)

	t := &metrics.Table{
		Title:   fmt.Sprintf("Scheme comparison at paper scale — %s (§II)", kind),
		Columns: []string{"scheme", "downtime", "post-resume I/O block", "residual dependency", "redundant data"},
	}
	t.AddRow("freeze-and-copy (ISR)", fmtDur(fcDowntime), "none", "none", "none")
	t.AddRow("on-demand fetching", fmtDur(onDemandDowntime), "per-read faults",
		fmt.Sprintf("%d blocks, unbounded", residual), "none")
	t.AddRow("delta forward (Bradford)", fmtDur(onDemandDowntime), fmtDur(ioBlocked), "none",
		fmt.Sprintf("%.0f MB rewritten deltas", redundantMB))
	t.AddRow("TPM (this paper)", fmtDur(tpm.Report.Downtime),
		fmt.Sprintf("pull-on-read for %v", tpm.Report.PostCopyTime.Round(time.Millisecond)),
		fmt.Sprintf("ends after %v", tpm.Report.PostCopyTime.Round(time.Millisecond)), "none")
	return t
}

func fmtDur(d time.Duration) string {
	if d >= time.Second {
		return fmt.Sprintf("%.1f s", d.Seconds())
	}
	return fmt.Sprintf("%d ms", d.Milliseconds())
}

// StreamSweep measures what striped transfer and extent coalescing buy once
// the per-frame serialization stall is modelled explicitly instead of being
// folded into the measured effective bandwidth: the same kernel-build-style
// transfer at 1..8 streams, per-block vs 64-block extents. FrameLatency is
// set to a flush-per-message cost representative of a syscall+wakeup
// (~150 µs), which reproduces the gap between per-block transfer throughput
// and line rate that motivates the parallel pipeline.
func StreamSweep(seed int64) ([]*Result, *metrics.Table) {
	t := &metrics.Table{
		Title:   "Striped transfer sweep — web workload, per-frame stall 150 µs",
		Columns: []string{"streams", "extent blocks", "total time (s)", "precopy (s)", "migrated (MB)"},
	}
	var results []*Result
	for _, c := range []struct{ streams, extent int }{
		{1, 1}, {2, 1}, {4, 1}, {8, 1}, {1, 64}, {4, 64},
	} {
		p := Defaults(workload.Web)
		p.Seed = seed
		p.Streams = c.streams
		p.MaxExtentBlocks = c.extent
		p.FrameLatency = 150 * time.Microsecond
		p.DwellAfter = time.Minute
		r := RunTPM(p)
		results = append(results, r)
		t.AddRow(fmt.Sprintf("%d", c.streams), fmt.Sprintf("%d", c.extent),
			fmt.Sprintf("%.0f", r.Report.TotalTime.Seconds()),
			fmt.Sprintf("%.0f", r.Report.PreCopyTime.Seconds()),
			fmt.Sprintf("%.0f", r.Report.MigratedMB()))
	}
	return results, t
}

// AdaptiveSweep compares the transfer policies on a latency-modelled link
// (per-frame stall 150 µs, the StreamSweep calibration): the paper's fixed
// per-block format, a hand-tuned fixed 64-block extent, and the adaptive
// slow-start that core.AdaptivePolicy implements. The adaptive row must at
// least match the hand-tuned one without anyone picking the constant.
func AdaptiveSweep(seed int64) ([]*Result, *metrics.Table) {
	t := &metrics.Table{
		Title:   "Transfer policy sweep — web workload, per-frame stall 150 µs",
		Columns: []string{"policy", "total time (s)", "precopy (s)", "migrated (MB)"},
	}
	var results []*Result
	for _, c := range []struct {
		name     string
		extent   int
		adaptive bool
	}{
		{"default (per-block)", 1, false},
		{"fixed 64-block extents", 64, false},
		{"adaptive slow-start", 1, true},
	} {
		p := Defaults(workload.Web)
		p.Seed = seed
		p.MaxExtentBlocks = c.extent
		p.AdaptiveExtents = c.adaptive
		p.FrameLatency = 150 * time.Microsecond
		p.DwellAfter = time.Minute
		r := RunTPM(p)
		results = append(results, r)
		t.AddRow(c.name,
			fmt.Sprintf("%.0f", r.Report.TotalTime.Seconds()),
			fmt.Sprintf("%.0f", r.Report.PreCopyTime.Seconds()),
			fmt.Sprintf("%.0f", r.Report.MigratedMB()))
	}
	return results, t
}

// FaultSweep quantifies what resumable migration buys at paper scale: a
// 10-second link outage is injected at several points of a web-workload TPM
// migration, and the resumed run (re-send only the interrupted iteration,
// the engine's journal semantics) is compared against the naive
// fail-and-restart alternative (everything transferred before the cut is
// wasted, plus a full second migration). Wire totals count disk payloads,
// memory pages, and re-sent bytes.
func FaultSweep(seed int64) ([]*Result, *metrics.Table) {
	t := &metrics.Table{
		Title: "Fault sweep — web workload, 10 s link outage, resume vs restart",
		Columns: []string{
			"outage at", "resume total (s)", "resume wire (MB)", "re-sent (MB)",
			"restart total (s)", "restart wire (MB)", "wire saved",
		},
	}
	base := Defaults(workload.Web)
	base.Seed = seed
	base.DwellAfter = time.Minute
	clean := RunTPM(base)
	cleanWire := float64(clean.Report.MigratedBytes + clean.Report.MemBytesMoved)
	cleanTime := (clean.MigEnd - clean.MigStart).Seconds()
	const outage = 10 * time.Second

	var results []*Result
	for _, frac := range []float64{0.25, 0.50, 0.75} {
		p := base
		p.OutageAt = clean.MigStart + time.Duration(frac*float64(clean.MigEnd-clean.MigStart))
		p.OutageDuration = outage
		r := RunTPM(p)
		results = append(results, r)
		resumeWire := float64(r.Report.MigratedBytes+r.Report.MemBytesMoved+r.Report.ResentBytes) / 1e6
		// Restart arm: the work up to the cut is wasted, then a full
		// migration re-runs after the outage.
		restartWire := (frac*cleanWire + cleanWire) / 1e6
		restartTime := frac*cleanTime + outage.Seconds() + cleanTime
		saved := (1 - resumeWire/restartWire) * 100
		t.AddRow(
			fmt.Sprintf("%.0f%% (%.0f s)", frac*100, frac*cleanTime),
			fmt.Sprintf("%.0f", (r.MigEnd-r.MigStart).Seconds()),
			fmt.Sprintf("%.0f", resumeWire),
			fmt.Sprintf("%.1f", float64(r.Report.ResentBytes)/1e6),
			fmt.Sprintf("%.0f", restartTime),
			fmt.Sprintf("%.0f", restartWire),
			fmt.Sprintf("%.0f%%", saved),
		)
	}
	return results, t
}
