package sim

import (
	"testing"

	"bbmig/internal/workload"
)

// TestSwarmModelBasics pins the parallel-flow wire model: a swarm run moves
// the template share off the source channel (fewer source bytes than
// single-source dedup at the same dedup share), accounts the peer-produced
// blocks, and still ends no later than the single-source run.
func TestSwarmModelBasics(t *testing.T) {
	base := Defaults(workload.Web)
	base.DwellAfter = 0
	base.Dedup = true
	base.DedupShare = dedupZeroShare
	single := RunTPM(base)

	p := base
	p.Swarm = true
	p.SwarmShare = dedupTemplateShare
	p.SwarmBytesPerSec = 3 * base.NetBytesPerSec
	sw := RunTPM(p)

	if sw.Report.SwarmBlocks == 0 {
		t.Fatal("swarm run reports zero peer-produced blocks")
	}
	if single.Report.SwarmBlocks != 0 {
		t.Fatalf("single-source run reports %d swarm blocks", single.Report.SwarmBlocks)
	}
	if sw.Report.MigratedBytes >= single.Report.MigratedBytes {
		t.Fatalf("swarm source channel moved %d bytes, single-source %d",
			sw.Report.MigratedBytes, single.Report.MigratedBytes)
	}
	if (sw.MigEnd - sw.MigStart) >= (single.MigEnd - single.MigStart) {
		t.Fatal("swarm run not faster than single-source dedup on the same link")
	}
	// Share clamping: dedup share + swarm share never exceeds the whole disk.
	p.DedupShare = 0.8
	p.SwarmShare = 0.8
	if r := RunTPM(p); r.Report.MigratedBytes > sw.Report.MigratedBytes {
		t.Fatal("clamped swarm share produced more source bytes than the honest split")
	}
}

// TestSwarmSweepAcceptance pins the tentpole's headline number: evacuating
// the clone fleet toward cold destinations with three warm swarm peers per
// migration must cut the makespan at least 2x versus PR 5's single-source
// dedup, which can only elide what the cold destination already holds.
func TestSwarmSweepAcceptance(t *testing.T) {
	rows, tab := SwarmSweep(1)
	if tab.String() == "" {
		t.Fatal("empty table")
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	literal, single, swarm := rows[0], rows[1], rows[2]
	if single.Speedup != 1 {
		t.Fatalf("single-source speedup %.2f, want exactly 1x (it is the baseline)", single.Speedup)
	}
	if literal.Speedup >= 1 {
		t.Fatalf("literal speedup %.2fx, should be slower than single-source dedup", literal.Speedup)
	}
	if swarm.Speedup < 2 {
		t.Fatalf("swarm speedup %.2fx over single-source dedup, acceptance bar is 2x", swarm.Speedup)
	}
	if swarm.SwarmBlocks == 0 {
		t.Fatal("swarm arm reports no peer-produced blocks")
	}
	if single.SwarmBlocks != 0 || literal.SwarmBlocks != 0 {
		t.Fatal("non-swarm arms report peer-produced blocks")
	}
	if swarm.FleetWireGB >= single.FleetWireGB {
		t.Fatalf("swarm source wire %.1f GB not below single-source %.1f GB",
			swarm.FleetWireGB, single.FleetWireGB)
	}
}
