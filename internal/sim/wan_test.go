package sim

import (
	"testing"
	"time"

	"bbmig/internal/workload"
)

// findRow picks the (hotPct, label) row out of a WANSweep result.
func findRow(t *testing.T, rows []WANSweepRow, hotPct int, label string) WANSweepRow {
	t.Helper()
	for _, r := range rows {
		if r.HotPct == hotPct && r.Label == label {
			return r
		}
	}
	t.Fatalf("no row for %d%% / %q", hotPct, label)
	return WANSweepRow{}
}

// TestWANSweepDeltaBar pins the ISSUE acceptance: across the whole
// 11-35% hot-rewrite sweep, the dedup+delta arm ships at least 3x fewer
// return-trip wire bytes than dedup alone, and at least 3x fewer than
// literal transfer.
func TestWANSweepDeltaBar(t *testing.T) {
	rows, table := WANSweep(7)
	if len(rows) != 3*len(wanHotShares) {
		t.Fatalf("expected %d rows, got %d", 3*len(wanHotShares), len(rows))
	}
	for _, hot := range wanHotShares {
		lit := findRow(t, rows, hot, "literal")
		ded := findRow(t, rows, hot, "dedup only")
		del := findRow(t, rows, hot, "dedup + delta")
		if del.ReturnWireMB*3 > ded.ReturnWireMB {
			t.Errorf("%d%%: delta arm %0.f MB not 3x under dedup-only %0.f MB",
				hot, del.ReturnWireMB, ded.ReturnWireMB)
		}
		if del.ReturnWireMB*3 > lit.ReturnWireMB {
			t.Errorf("%d%%: delta arm %0.f MB not 3x under literal %0.f MB",
				hot, del.ReturnWireMB, lit.ReturnWireMB)
		}
		if del.DeltaBlocks == 0 {
			t.Errorf("%d%%: delta arm patched no blocks", hot)
		}
		if lit.DeltaBlocks != 0 || ded.DeltaBlocks != 0 {
			t.Errorf("%d%%: non-delta arms report patched blocks", hot)
		}
		// The trip home must also get faster, not just thinner.
		if del.TripTime >= ded.TripTime {
			t.Errorf("%d%%: delta trip %v not faster than dedup-only %v",
				hot, del.TripTime, ded.TripTime)
		}
	}
	if len(table.Rows) != len(rows) {
		t.Fatalf("table rows %d != sweep rows %d", len(table.Rows), len(rows))
	}
}

// TestWANSweepMonotone checks the sweep behaves like a model should:
// more rewrites cost more wire in every arm, and the reduction stays
// roughly stable because the per-block win is share-independent.
func TestWANSweepMonotone(t *testing.T) {
	rows, _ := WANSweep(7)
	for _, label := range []string{"literal", "dedup only", "dedup + delta"} {
		prev := 0.0
		for _, hot := range wanHotShares {
			r := findRow(t, rows, hot, label)
			if r.ReturnWireMB <= prev {
				t.Errorf("%s: wire not increasing at %d%% (%.0f <= %.0f MB)",
					label, hot, r.ReturnWireMB, prev)
			}
			prev = r.ReturnWireMB
		}
	}
}

// TestSimDeltaColdFallback: delta against a destination that matches no
// chunks (DeltaMatchShare 0) must fall back to literal-plus-signature —
// strictly worse than plain literal, never silently cheaper.
func TestSimDeltaColdFallback(t *testing.T) {
	p := Defaults(workload.Web)
	p.DiskMB = 512
	p.MemMB = 64
	p.Seed = 3
	p.DwellAfter = time.Minute

	lit := RunTPM(p)
	p.Delta = true
	p.DeltaMatchShare = 0
	cold := RunTPM(p)
	if cold.Report.DeltaBlocks != 0 {
		t.Fatalf("cold delta run claims %d patched blocks", cold.Report.DeltaBlocks)
	}
	if cold.Report.MigratedBytes <= lit.Report.MigratedBytes {
		t.Fatalf("cold delta run (%d B) should pay signature overhead over literal (%d B)",
			cold.Report.MigratedBytes, lit.Report.MigratedBytes)
	}
}
