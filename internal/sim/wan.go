package sim

import (
	"fmt"
	"time"

	"bbmig/internal/bitmap"
	"bbmig/internal/blockdev"
	"bbmig/internal/metrics"
	"bbmig/internal/workload"
)

// The WAN return-trip delta model. WANSweep answers the delta layer's
// sizing question at paper scale: the Table II IM scenario migrates a
// whole environment out for a work session and back home afterwards, and
// the trip back crosses the same slow, latency-heavy wide-area link. The
// destination of that return trip is the original host, which still holds
// a stale copy of every block — so divergence there is dominated by
// hot-block *rewrites* (a database page updated in place, a log head
// appended) rather than fresh content. Dedup can only help when a rewrite
// restores bytes the home host already indexes; delta encoding ships just
// the changed chunks of each rewritten block against the stale copy.
//
// Link and divergence constants:
//
//   - wanUplinkBytesPerSec / wanFrameStall model the asymmetric WAN path
//     of transport.NewWAN: a ~6 MB/s uplink with an RTT-dominated
//     per-frame stall. The downlink (signature replies) is priced into
//     deltaSigPerBlock as wire bytes.
//   - wanRewriteDedupShare is the fraction of rewritten blocks whose new
//     content the home host happens to still hold (a rewrite that undid
//     itself, a template block restored) — the most dedup alone can claim.
//   - wanRewriteMatchShare is the mean fraction of a rewritten block's
//     chunks the stale home copy still matches: hot rewrites touch a
//     block's head or a few records, not the whole 4 KiB.
const (
	wanUplinkBytesPerSec = 6e6
	wanFrameStall        = 20 * time.Millisecond
	wanExtentBlocks      = 64

	wanRewriteDedupShare = 0.10
	wanRewriteMatchShare = 0.88
)

// wanHotShares are the swept hot-block-rewrite working-set sizes, as
// percentages of the VBD dirtied during the away-session dwell.
var wanHotShares = []int{11, 19, 27, 35}

// WANSweepRow is one (hot share, arm) outcome of the sweep.
type WANSweepRow struct {
	// HotPct is the percentage of the VBD rewritten during the dwell.
	HotPct int
	// Label names the arm ("literal", "dedup only", "dedup + delta").
	Label string
	// ReturnWireMB is the return trip's disk wire bytes (iteration
	// payloads, post-copy pushes, and the dirty bitmap), in MB.
	ReturnWireMB float64
	// Reduction is the wire reduction versus the literal arm at the same
	// hot share (1x for the literal arm itself).
	Reduction float64
	// DeltaBlocks is how many blocks travelled as patches.
	DeltaBlocks int
	// TripTime is the return migration's duration.
	TripTime time.Duration
}

// WANSweep runs the Table II return trip over a WAN link profile for each
// hot-rewrite share, three ways per share: literal transfer, content dedup
// alone, and dedup composed with delta encoding. The guest is idle on the
// trip home (the paper's IM scenario), so iteration 1 carries exactly the
// dwell's rewrite working set. The acceptance bar the test pins: at every
// swept share, the delta arm ships at least 3x fewer return-trip wire
// bytes than dedup alone.
func WANSweep(seed int64) ([]WANSweepRow, *metrics.Table) {
	base := Defaults(workload.Web)
	base.Seed = seed
	base.NetBytesPerSec = wanUplinkBytesPerSec
	base.FrameLatency = wanFrameStall
	base.MaxExtentBlocks = wanExtentBlocks
	base.DwellAfter = 0
	numBlocks := int(int64(base.DiskMB) << 20 / blockdev.BlockSize)

	arms := []struct {
		label string
		dedup bool
		delta bool
	}{
		{"literal", false, false},
		{"dedup only", true, false},
		{"dedup + delta", true, true},
	}
	var rows []WANSweepRow
	for _, hotPct := range wanHotShares {
		hot := numBlocks * hotPct / 100
		var literal float64
		for _, arm := range arms {
			p := base
			p.Seed = seed + int64(hotPct)
			p.Dedup = arm.dedup
			p.DedupShare = wanRewriteDedupShare
			p.Delta = arm.delta
			p.DeltaMatchShare = wanRewriteMatchShare
			fresh := bitmap.New(numBlocks)
			fresh.SetRange(0, hot)
			r := run(p, fresh, nil, 0)
			wire := float64(r.Report.MigratedBytes)
			if arm.label == "literal" {
				literal = wire
			}
			rows = append(rows, WANSweepRow{
				HotPct:       hotPct,
				Label:        arm.label,
				ReturnWireMB: wire / 1e6,
				Reduction:    literal / wire,
				DeltaBlocks:  r.Report.DeltaBlocks,
				TripTime:     r.MigEnd - r.MigStart,
			})
		}
	}

	t := &metrics.Table{
		Title: fmt.Sprintf("WAN return-trip delta sweep — %d MB VBD home over a %.0f MB/s uplink",
			base.DiskMB, wanUplinkBytesPerSec/1e6),
		Columns: []string{
			"hot rewrites", "arm", "return wire (MB)", "reduction", "patched blocks", "trip (s)",
		},
	}
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%d%%", r.HotPct),
			r.Label,
			fmt.Sprintf("%.0f", r.ReturnWireMB),
			fmt.Sprintf("%.1fx", r.Reduction),
			fmt.Sprintf("%d", r.DeltaBlocks),
			fmt.Sprintf("%.0f", r.TripTime.Seconds()),
		)
	}
	return rows, t
}
