package sim

import (
	"fmt"
	"math"
	"time"

	"bbmig/internal/blockdev"
	"bbmig/internal/forecast"
	"bbmig/internal/metrics"
)

// The fleet model. Where ClusterSweep drains one paper-testbed host at full
// engine fidelity, FleetSweep answers the autopilot's question at datacenter
// scale: across hundreds of hosts and ten thousand domains with time-varying
// write rates, how much does forecast-driven scheduling — migrate each
// domain in a predicted write-rate trough instead of whenever a slot frees —
// buy in drain makespan, downtime, and interference (blocks re-sent because
// the guest dirtied them mid-copy)?
//
// The model trades the engine's block-level machinery for a closed-form
// replay of its §IV iteration law, the same one forecast.PredictConvergence
// uses: each pre-copy iteration ships the previous iteration's dirty set at
// the migration's bandwidth share while the guest dirties
// hot·(1−exp(−writes/hot)) unique blocks, and the final set travels in the
// freeze window. That keeps a 10 000-domain sweep inside a second-scale
// wall-time budget, and every per-domain outcome streams straight into
// metrics.StreamStats accumulators — nothing per-domain is materialized.
//
// Each domain's write process is hashed from the sweep seed (size, hot set,
// rates, phase), so a seed pins the whole fleet: same seed, same rows.

// FleetShape selects the fleet's write-rate time profile.
type FleetShape int

const (
	// FleetDiurnal gives every domain a square wave — half the period at a
	// high rate near its migration's bandwidth share, half near idle — with
	// a hashed phase, the datacenter day/night pattern trough scheduling
	// exists for.
	FleetDiurnal FleetShape = iota
	// FleetConstant gives every domain a flat moderate rate: no troughs to
	// find, so predictive and reactive scheduling should tie — the sweep's
	// control arm.
	FleetConstant
	// FleetBursty gives every domain short hashed bursts over a near-idle
	// floor: unforecastable at heartbeat grain, so prediction degrades to
	// the long-run mean and buys little.
	FleetBursty
)

// String names the shape for row labels.
func (s FleetShape) String() string {
	switch s {
	case FleetDiurnal:
		return "diurnal"
	case FleetConstant:
		return "constant"
	case FleetBursty:
		return "bursty"
	}
	return fmt.Sprintf("shape(%d)", int(s))
}

// Fleet model constants: the engine stop conditions mirror Defaults, the
// trough test mirrors cluster.DefaultTroughRatio.
const (
	fleetMaxIters       = 4
	fleetDirtyThreshold = 8
	fleetFixedDowntime  = 30 * time.Millisecond
	fleetTroughRatio    = 2.0
)

// FleetParams parameterizes one fleet drain simulation.
type FleetParams struct {
	// Seed pins every hashed per-domain parameter.
	Seed int64
	// Hosts and Domains size the fleet; domain i lives on host i mod Hosts,
	// and the first Hosts/5 hosts (at least one) are drained.
	Hosts, Domains int
	// Shape selects the write-rate profile.
	Shape FleetShape
	// Predictive selects the scheduling policy: false migrates each host's
	// domains in index order as slots free (reactive); true feeds a
	// forecast.Model per domain from warmup heartbeats and starts each
	// migration on the quietest candidate, waiting for the earliest
	// predicted trough when every candidate is loud.
	Predictive bool

	// LinkBps is each draining host's uplink; zero selects the paper's
	// effective rate (Defaults().NetBytesPerSec).
	LinkBps float64
	// PerHostCap is the concurrent-migration cap per draining host; each
	// migration runs at the steady-state fair share LinkBps/PerHostCap.
	// Zero selects 4, the knee ClusterSweep finds.
	PerHostCap int
	// Heartbeat is the observation cadence warmup counters arrive at; zero
	// selects 30 s.
	Heartbeat time.Duration
	// Period is the diurnal square-wave period — the sim's compressed
	// "day", scaled so a drain spans several troughs the way a real drain
	// spans several off-peak windows; zero selects 20 min.
	Period time.Duration
	// WarmupPeriods is how many periods of heartbeat history the forecast
	// models see before the drain begins; zero selects 3 (enough that the
	// period lag sits well inside the autocorrelation scan).
	WarmupPeriods int
}

// withFleetDefaults fills zero fields.
func (p FleetParams) withFleetDefaults() FleetParams {
	if p.LinkBps <= 0 {
		p.LinkBps = Defaults(0).NetBytesPerSec
	}
	if p.PerHostCap <= 0 {
		p.PerHostCap = 4
	}
	if p.Heartbeat <= 0 {
		p.Heartbeat = 30 * time.Second
	}
	if p.Period <= 0 {
		p.Period = 20 * time.Minute
	}
	if p.WarmupPeriods <= 0 {
		p.WarmupPeriods = 3
	}
	return p
}

// FleetRow is one (shape, policy) arm's outcome.
type FleetRow struct {
	// Shape and Policy label the arm ("diurnal", "predictive", ...).
	Shape, Policy string
	// Hosts, Domains, Drained, and Migrations restate the arm's scale
	// (Migrations = domains hosted on the Drained hosts).
	Hosts, Domains, Drained, Migrations int
	// Makespan is the slowest draining host's evacuation duration.
	Makespan time.Duration
	// MeanDuration averages per-migration wall time (pre-copy + freeze).
	MeanDuration time.Duration
	// MeanDowntime and MaxDowntime aggregate the per-VM freeze windows.
	MeanDowntime, MaxDowntime time.Duration
	// HighStarts counts migrations that began while their domain wrote in
	// its high phase — the interference the predictive policy exists to
	// avoid.
	HighStarts int
	// RetransBlocks counts blocks sent beyond each image's size: pre-copy
	// re-sends plus the freeze-window copy, the wire cost of migrating a
	// writing guest.
	RetransBlocks int64
	// Speedup, on predictive rows, is the same-shape reactive arm's
	// makespan divided by this one's (zero on reactive rows).
	Speedup float64
}

// fleetDomain is one domain's hashed ground truth.
type fleetDomain struct {
	size, hot float64 // image and rewrite-set sizes, blocks
	high, low float64 // write rates, blocks/second
	phase     time.Duration
	mdl       *forecast.Model
}

// splitmix64 is the per-domain parameter hash (Steele et al.'s SplitMix64
// finalizer): cheap, stateless, and seed-deterministic.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fleetU draws a uniform [0,1) hashed from (seed, domain, salt).
func fleetU(seed int64, idx int, salt uint64) float64 {
	h := splitmix64(uint64(seed) ^ saltMix(uint64(idx), salt))
	return float64(h>>11) / (1 << 53)
}

// saltMix folds the domain index and salt into one hash input.
func saltMix(idx, salt uint64) uint64 {
	return splitmix64(idx*0x9e3779b97f4a7c15 + salt)
}

// newFleetDomains hashes the fleet's ground truth from the seed. The high
// rate straddles the migration's transfer share (1.0–1.5x), so a high-phase
// migration hits the §IV plateau and a trough migration converges in a
// couple of iterations — the paper's convergent/divergent dichotomy.
func newFleetDomains(p FleetParams) []fleetDomain {
	shareBlk := p.LinkBps / float64(p.PerHostCap) / blockdev.BlockSize
	doms := make([]fleetDomain, p.Domains)
	for i := range doms {
		u1 := fleetU(p.Seed, i, 1)
		u2 := fleetU(p.Seed, i, 2)
		u3 := fleetU(p.Seed, i, 3)
		u4 := fleetU(p.Seed, i, 4)
		d := &doms[i]
		d.size = float64(1<<17) * (1 + u1) // 512 MB – 1 GB of 4 KiB blocks
		d.hot = d.size * (0.6 + 0.15*u2)
		d.phase = time.Duration(u4 * float64(p.Period))
		switch p.Shape {
		case FleetDiurnal:
			d.high = (1.0 + 0.5*u3) * shareBlk
			d.low = 0.01 * d.high
		case FleetConstant:
			d.high = (0.25 + 0.1*u3) * shareBlk
			d.low = d.high
		case FleetBursty:
			d.high = (1.5 + 0.5*u3) * shareBlk
			d.low = 0.03 * d.high
		}
	}
	return doms
}

// rateAt returns domain i's true write rate at simulated time t.
func (p FleetParams) rateAt(doms []fleetDomain, i int, t time.Duration) float64 {
	d := &doms[i]
	switch p.Shape {
	case FleetConstant:
		return d.high
	case FleetDiurnal:
		ph := (t + d.phase) % p.Period
		if ph < p.Period/2 {
			return d.high
		}
		return d.low
	case FleetBursty:
		// One heartbeat-wide burst on average every eighth beat.
		beat := uint64((t + d.phase) / p.Heartbeat)
		if splitmix64(uint64(p.Seed)^saltMix(uint64(i), 0x105+beat*2))%8 == 0 {
			return d.high
		}
		return d.low
	}
	return 0
}

// writesIn integrates domain i's true write rate over [from, to) in blocks —
// closed form for the square wave, beat-quantized for bursts.
func (p FleetParams) writesIn(doms []fleetDomain, i int, from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	d := &doms[i]
	switch p.Shape {
	case FleetConstant:
		return d.high * (to - from).Seconds()
	case FleetDiurnal:
		cum := func(t time.Duration) float64 {
			sec := (t + d.phase).Seconds()
			psec := p.Period.Seconds()
			half := psec / 2
			n := math.Floor(sec / psec)
			rem := sec - n*psec
			w := n * (d.high + d.low) * half
			if rem <= half {
				return w + d.high*rem
			}
			return w + d.high*half + d.low*(rem-half)
		}
		return cum(to) - cum(from)
	case FleetBursty:
		var w float64
		for t := from; t < to; {
			next := (t/p.Heartbeat + 1) * p.Heartbeat
			if next > to {
				next = to
			}
			w += p.rateAt(doms, i, t) * (next - t).Seconds()
			t = next
		}
		return w
	}
	return 0
}

// migrate replays the §IV iteration law for one domain starting at start:
// returns total duration (pre-copy + freeze), the freeze window, and blocks
// sent on the wire.
func (p FleetParams) migrate(doms []fleetDomain, i int, start time.Duration) (dur, down time.Duration, sent float64) {
	d := &doms[i]
	shareBlk := p.LinkBps / float64(p.PerHostCap) / blockdev.BlockSize
	toSend := d.size
	t := start
	prev := math.Inf(1)
	var pre float64
	for iter := 1; ; iter++ {
		step := toSend / shareBlk
		writes := p.writesIn(doms, i, t, t+fdur(step))
		sent += toSend
		pre += step
		t += fdur(step)
		dirty := d.hot * (1 - math.Exp(-writes/d.hot))
		if dirty <= fleetDirtyThreshold || iter >= fleetMaxIters || dirty >= prev {
			down = fdur(dirty/shareBlk) + fleetFixedDowntime
			sent += dirty
			break
		}
		prev, toSend = dirty, dirty
	}
	return fdur(pre) + down, down, sent
}

// fdur converts seconds to a Duration.
func fdur(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}

// warmupModels feeds every domain's forecast model the heartbeat counter
// stream an autopilot would see: cumulative writes at Heartbeat cadence for
// WarmupPeriods periods. Counters accumulate incrementally, so warmup is
// O(domains × beats) regardless of shape.
func warmupModels(p FleetParams, doms []fleetDomain) {
	beats := int(time.Duration(p.WarmupPeriods) * p.Period / p.Heartbeat)
	cum := make([]float64, len(doms))
	for i := range doms {
		doms[i].mdl = forecast.NewModel(forecast.Config{})
	}
	for b := 1; b <= beats; b++ {
		at := time.Duration(b) * p.Heartbeat
		for i := range doms {
			cum[i] += p.writesIn(doms, i, at-p.Heartbeat, at)
			doms[i].mdl.ObserveCount(at, int64(cum[i]))
		}
	}
}

// pickMigration chooses the next migration for a freed slot. Reactive takes
// the first pending domain now. Predictive runs every candidate through the
// trough test — quiet means its forecast rate at the slot time is within
// fleetTroughRatio of its own predicted trough — and migrates quiet
// candidates earliest-deadline-first: the one whose trough is predicted to
// end soonest goes now, so no trough is wasted on a domain that had plenty
// left. When every candidate is loud the slot asks the forecaster both
// questions — migrate the quietest loud domain now, or idle until the
// earliest predicted trough among the candidates and migrate there — and
// takes whichever predicted completion is sooner. Without that comparison
// the drain tail (domains deep in their high phase) would park slots for up
// to half a period when pushing through costs one loud migration.
func (p FleetParams) pickMigration(doms []fleetDomain, pending []int, now time.Duration) (pick int, startAt time.Duration) {
	if !p.Predictive {
		return 0, now
	}
	step := p.Period / 32
	best, bestRem := -1, time.Duration(math.MaxInt64)
	for k, i := range pending {
		mdl := doms[i].mdl
		troughAt, troughRate := mdl.NextTrough(now, p.Period)
		limit := fleetTroughRatio*troughRate + 1e-9
		if troughAt > now || mdl.RateAt(now) > limit {
			continue // loud now
		}
		rem := p.Period // predicted time until the forecast leaves the trough band
		for off := step; off <= p.Period; off += step {
			if mdl.RateAt(now+off) > limit {
				rem = off
				break
			}
		}
		if rem < p.predictTotal(doms, i, now) {
			continue // trough too short to finish in — migrating would cross
		}
		if rem < bestRem {
			best, bestRem = k, rem
		}
	}
	if best >= 0 {
		return best, now
	}

	// Everyone is loud: quietest-now versus earliest-trough, by predicted
	// completion.
	loudest, loudRate := 0, math.Inf(1)
	for k, i := range pending {
		if r := doms[i].mdl.RateAt(now); r < loudRate {
			loudest, loudRate = k, r
		}
	}
	wait, waitAt := -1, time.Duration(math.MaxInt64)
	for k, i := range pending {
		if at, _ := doms[i].mdl.NextTrough(now, p.Period); at > now && at < waitAt {
			wait, waitAt = k, at
		}
	}
	if wait < 0 {
		return loudest, now
	}
	loud := p.predictTotal(doms, pending[loudest], now)
	quiet := (waitAt - now) + p.predictTotal(doms, pending[wait], waitAt)
	if quiet < loud {
		return wait, waitAt
	}
	return loudest, now
}

// predictTotal is the forecaster's answer to "how long would migrating
// domain i starting at startAt take": predicted pre-copy plus freeze for the
// (domain, link-share) pair, the same call the cluster's PredictMigration
// makes.
func (p FleetParams) predictTotal(doms []fleetDomain, i int, startAt time.Duration) time.Duration {
	cv := doms[i].mdl.PredictConvergence(forecast.MigrationParams{
		StartAt:        startAt,
		Blocks:         int(doms[i].size),
		BlocksPerSec:   p.LinkBps / float64(p.PerHostCap) / blockdev.BlockSize,
		MaxIterations:  fleetMaxIters,
		DirtyThreshold: fleetDirtyThreshold,
	})
	return cv.PreCopyTime + cv.Downtime
}

// RunFleet simulates one drain arm and streams the outcomes into one row.
func RunFleet(p FleetParams) FleetRow {
	p = p.withFleetDefaults()
	doms := newFleetDomains(p)
	drained := p.Hosts / 5
	if drained < 1 {
		drained = 1
	}
	drainAt := time.Duration(p.WarmupPeriods) * p.Period
	if p.Predictive {
		warmupModels(p, doms)
	}

	var duration, downtime, retrans metrics.StreamStats
	var makespan time.Duration
	migrations, highStarts := 0, 0

	for h := 0; h < drained; h++ {
		var pending []int
		for i := h; i < p.Domains; i += p.Hosts {
			pending = append(pending, i)
		}
		slots := make([]time.Duration, p.PerHostCap)
		for s := range slots {
			slots[s] = drainAt
		}
		for len(pending) > 0 {
			s := 0
			for k := range slots {
				if slots[k] < slots[s] {
					s = k
				}
			}
			pick, startAt := p.pickMigration(doms, pending, slots[s])
			i := pending[pick]
			pending = append(pending[:pick], pending[pick+1:]...)

			dur, down, sent := p.migrate(doms, i, startAt)
			slots[s] = startAt + dur
			migrations++
			duration.Add(dur.Seconds())
			downtime.Add(down.Seconds())
			retrans.Add(sent - doms[i].size)
			if p.rateAt(doms, i, startAt) > (doms[i].high+doms[i].low)/2 {
				highStarts++
			}
		}
		for _, end := range slots {
			if span := end - drainAt; span > makespan {
				makespan = span
			}
		}
	}

	policy := "reactive"
	if p.Predictive {
		policy = "predictive"
	}
	return FleetRow{
		Shape: p.Shape.String(), Policy: policy,
		Hosts: p.Hosts, Domains: p.Domains, Drained: drained, Migrations: migrations,
		Makespan:      makespan,
		MeanDuration:  fdur(duration.Mean()),
		MeanDowntime:  fdur(downtime.Mean()),
		MaxDowntime:   fdur(downtime.Max()),
		HighStarts:    highStarts,
		RetransBlocks: int64(retrans.Mean() * float64(retrans.Count())),
	}
}

// FleetSweep runs the reactive and predictive arms over all three shapes at
// the given scale and stamps each predictive row's Speedup against its
// same-shape reactive arm. The headline is the diurnal pair: trough-aware
// scheduling should beat reactive by well over 1.5x on makespan while
// collapsing downtime, tie on the constant control, and roughly tie on the
// unforecastable bursty arm.
func FleetSweep(seed int64, hosts, domains int) ([]FleetRow, *metrics.Table) {
	var rows []FleetRow
	for _, shape := range []FleetShape{FleetDiurnal, FleetConstant, FleetBursty} {
		base := FleetParams{Seed: seed, Hosts: hosts, Domains: domains, Shape: shape}
		re := RunFleet(base)
		base.Predictive = true
		pr := RunFleet(base)
		if pr.Makespan > 0 {
			pr.Speedup = float64(re.Makespan) / float64(pr.Makespan)
		}
		rows = append(rows, re, pr)
	}

	t := &metrics.Table{
		Title: fmt.Sprintf("Fleet drain sweep — %d domains, %d hosts, reactive vs predictive", domains, hosts),
		Columns: []string{
			"shape", "policy", "migs", "makespan (s)", "mean dur (s)",
			"mean down (ms)", "max down (ms)", "high starts", "retrans (GB)", "speedup",
		},
	}
	for _, r := range rows {
		speedup := "-"
		if r.Speedup > 0 {
			speedup = fmt.Sprintf("%.2f", r.Speedup)
		}
		t.AddRow(r.Shape, r.Policy,
			fmt.Sprintf("%d", r.Migrations),
			fmt.Sprintf("%.0f", r.Makespan.Seconds()),
			fmt.Sprintf("%.1f", r.MeanDuration.Seconds()),
			fmt.Sprintf("%d", r.MeanDowntime.Milliseconds()),
			fmt.Sprintf("%d", r.MaxDowntime.Milliseconds()),
			fmt.Sprintf("%d", r.HighStarts),
			fmt.Sprintf("%.1f", float64(r.RetransBlocks)*blockdev.BlockSize/1e9),
			speedup,
		)
	}
	return rows, t
}
