package sim

import (
	"fmt"
	"time"

	"bbmig/internal/metrics"
	"bbmig/internal/workload"
)

// The clone-fleet dedup model. DedupSweep answers the content-addressed
// transfer layer's sizing question at paper scale: when a maintenance drain
// must evacuate a fleet of template-provisioned domains (cloned web
// servers, golden-image guests) between hosts that already hold much of
// each other's content, how many bytes does the advert/want/reference
// protocol keep off the wire, and what does that do to the evacuation
// makespan?
//
// Content shares, calibrated to a template-provisioned VBD rather than the
// paper's hand-installed one: dedupZeroShare of a provisioned image was
// never written (zero blocks, elided without even an advert round trip) and
// dedupTemplateShare of it is template-derived content every clone shares.
// A *cold* destination — first clone to arrive — can only produce the zero
// blocks; a *warm* destination already hosting (or retaining) clone
// siblings produces the template content too, which is the steady state of
// a clone fleet being shuffled between the same hosts.
const (
	dedupZeroShare     = 0.35
	dedupTemplateShare = 0.55
)

// DedupSweepRow is one arm's outcome.
type DedupSweepRow struct {
	// Label names the arm ("literal", "dedup, cold", "dedup, warm").
	Label string
	// Share is the modelled destination-held content fraction.
	Share float64
	// PerDomainWireMB is one migration's wire bytes (disk accounting plus
	// memory pages), in MB.
	PerDomainWireMB float64
	// FleetWireGB is the whole evacuation's wire total, in GB.
	FleetWireGB float64
	// Reduction is the fleet wire reduction versus the literal arm (1x for
	// the literal arm itself).
	Reduction float64
	// DedupBlocks is one migration's reference-materialized block count.
	DedupBlocks int
	// Makespan is the evacuation's duration under the ClusterSweep wave
	// model at the sweet-spot concurrency.
	Makespan time.Duration
}

// DedupSweep evacuates the ClusterSweep fleet (8 paper-testbed web domains,
// uplink budget 4x one link, concurrency 4) three times: literal transfer,
// content dedup against cold destinations (only zero blocks elide), and
// content dedup against warm clone-hosting destinations (zeros plus
// template overlap). The acceptance bar the test pins: warm-fleet
// evacuation moves at least 5x fewer bytes than literal.
func DedupSweep(seed int64) ([]DedupSweepRow, *metrics.Table) {
	base := Defaults(workload.Web)
	base.Seed = seed
	base.DwellAfter = time.Minute
	link := base.NetBytesPerSec
	budget := clusterUplinkLinks * link
	const concurrency = 4
	rate := link
	if share := budget / concurrency; share < rate {
		rate = share
	}

	arms := []struct {
		label string
		dedup bool
		share float64
	}{
		{"literal", false, 0},
		{"dedup, cold destinations", true, dedupZeroShare},
		{"dedup, warm clone hosts", true, dedupZeroShare + dedupTemplateShare},
	}
	var rows []DedupSweepRow
	var literalFleet float64
	for _, arm := range arms {
		row := DedupSweepRow{Label: arm.label, Share: arm.share}
		idx := 0
		for idx < clusterDomains {
			waveMax := time.Duration(0)
			for k := 0; k < concurrency && idx < clusterDomains; k++ {
				p := base
				p.Seed = seed + int64(idx)
				p.NetBytesPerSec = rate
				p.Dedup = arm.dedup
				p.DedupShare = arm.share
				r := RunTPM(p)
				wire := float64(r.Report.MigratedBytes + r.Report.MemBytesMoved)
				row.FleetWireGB += wire / 1e9
				if idx == 0 {
					row.PerDomainWireMB = wire / 1e6
					row.DedupBlocks = r.Report.DedupBlocks
				}
				if dur := r.MigEnd - r.MigStart; dur > waveMax {
					waveMax = dur
				}
				idx++
			}
			row.Makespan += waveMax
		}
		if arm.label == "literal" {
			literalFleet = row.FleetWireGB
		}
		row.Reduction = literalFleet / row.FleetWireGB
		rows = append(rows, row)
	}

	t := &metrics.Table{
		Title: fmt.Sprintf("Clone-fleet dedup sweep — %d template-derived web domains, concurrency %d",
			clusterDomains, concurrency),
		Columns: []string{
			"arm", "held share", "per-domain wire (MB)", "fleet wire (GB)",
			"reduction", "ref blocks", "makespan (s)",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Label,
			fmt.Sprintf("%.0f%%", r.Share*100),
			fmt.Sprintf("%.0f", r.PerDomainWireMB),
			fmt.Sprintf("%.1f", r.FleetWireGB),
			fmt.Sprintf("%.1fx", r.Reduction),
			fmt.Sprintf("%d", r.DedupBlocks),
			fmt.Sprintf("%.0f", r.Makespan.Seconds()),
		)
	}
	return rows, t
}
