package sim

import "testing"

// TestClusterSweep pins the acceptance properties of the evacuation model:
// makespan improves with scheduler concurrency until the uplink budget
// saturates, per-VM downtime never exceeds twice the solo figure, and the
// injected-outage arm completes via resume at a re-send cost that is noise
// against the evacuation's volume.
func TestClusterSweep(t *testing.T) {
	rows, tab := ClusterSweep(1)
	if tab == nil || len(tab.Rows) != len(rows) {
		t.Fatalf("table rows %d != result rows %d", len(tab.Rows), len(rows))
	}
	byLabel := map[string]ClusterSweepRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	solo, c2, c4, c8 := byLabel["1"], byLabel["2"], byLabel["4"], byLabel["8"]

	// Makespan strictly improves while the budget has headroom.
	if !(c2.Makespan < solo.Makespan) || !(c4.Makespan < c2.Makespan) {
		t.Fatalf("makespan did not improve with concurrency: c1=%v c2=%v c4=%v",
			solo.Makespan, c2.Makespan, c4.Makespan)
	}
	// Concurrency 4 saturates the 4-link uplink: at least ~3x over serial.
	if c4.Makespan*3 > solo.Makespan {
		t.Fatalf("c=4 makespan %v vs serial %v: expected ~4x improvement", c4.Makespan, solo.Makespan)
	}
	// Per-VM downtime stays within 2x of a solo migration at every
	// concurrency, including the oversubscribed one.
	limit := 2 * solo.MaxDowntime
	for _, r := range rows {
		if r.MaxDowntime > limit {
			t.Fatalf("row %q max downtime %v exceeds 2x solo (%v)", r.Label, r.MaxDowntime, limit)
		}
	}
	// Oversubscription must show up as a downtime cost, or the 2x bound
	// above is testing nothing.
	if c8.MaxDowntime <= solo.MaxDowntime {
		t.Fatalf("c=8 downtime %v not above solo %v; the contention model is broken", c8.MaxDowntime, solo.MaxDowntime)
	}

	// The fault arm: the drain survives a 10 s outage via resume, re-sending
	// only the in-flight window.
	fault, ok := byLabel["4 + 10 s outage"]
	if !ok {
		t.Fatal("fault arm missing")
	}
	if fault.Retries < 1 {
		t.Fatalf("fault arm recorded %d retries", fault.Retries)
	}
	if fault.ResentMB <= 0 || fault.ResentMB > 10 {
		t.Fatalf("fault arm re-sent %.1f MB; resume should cost well under 10 MB", fault.ResentMB)
	}
	// The outage may stall one wave by ~its duration but must not cost a
	// restart-scale makespan regression vs the clean c=4 run.
	if fault.Makespan > c4.Makespan+c4.Makespan/4 {
		t.Fatalf("faulted makespan %v vs clean %v: resume should bound the penalty", fault.Makespan, c4.Makespan)
	}
}
