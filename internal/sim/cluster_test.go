package sim

import (
	"testing"
	"time"

	"bbmig/internal/workload"
)

// TestClusterSweep pins the acceptance properties of the evacuation model:
// makespan improves with scheduler concurrency until the uplink budget
// saturates, per-VM downtime never exceeds twice the solo figure, and the
// injected-outage arm completes via resume at a re-send cost that is noise
// against the evacuation's volume.
func TestClusterSweep(t *testing.T) {
	rows, tab := ClusterSweep(1)
	if tab == nil || len(tab.Rows) != len(rows) {
		t.Fatalf("table rows %d != result rows %d", len(tab.Rows), len(rows))
	}
	byLabel := map[string]ClusterSweepRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	solo, c2, c4, c8 := byLabel["1"], byLabel["2"], byLabel["4"], byLabel["8"]

	// Makespan strictly improves while the budget has headroom.
	if !(c2.Makespan < solo.Makespan) || !(c4.Makespan < c2.Makespan) {
		t.Fatalf("makespan did not improve with concurrency: c1=%v c2=%v c4=%v",
			solo.Makespan, c2.Makespan, c4.Makespan)
	}
	// Concurrency 4 saturates the 4-link uplink: at least ~3x over serial.
	if c4.Makespan*3 > solo.Makespan {
		t.Fatalf("c=4 makespan %v vs serial %v: expected ~4x improvement", c4.Makespan, solo.Makespan)
	}
	// Per-VM downtime stays within 2x of a solo migration at every
	// concurrency, including the oversubscribed one.
	limit := 2 * solo.MaxDowntime
	for _, r := range rows {
		if r.MaxDowntime > limit {
			t.Fatalf("row %q max downtime %v exceeds 2x solo (%v)", r.Label, r.MaxDowntime, limit)
		}
	}
	// Oversubscription must show up as a downtime cost, or the 2x bound
	// above is testing nothing.
	if c8.MaxDowntime <= solo.MaxDowntime {
		t.Fatalf("c=8 downtime %v not above solo %v; the contention model is broken", c8.MaxDowntime, solo.MaxDowntime)
	}

	// The fault arm: the drain survives a 10 s outage via resume, re-sending
	// only the in-flight window.
	fault, ok := byLabel["4 + 10 s outage"]
	if !ok {
		t.Fatal("fault arm missing")
	}
	if fault.Retries < 1 {
		t.Fatalf("fault arm recorded %d retries", fault.Retries)
	}
	if fault.ResentMB <= 0 || fault.ResentMB > 10 {
		t.Fatalf("fault arm re-sent %.1f MB; resume should cost well under 10 MB", fault.ResentMB)
	}
	// The outage may stall one wave by ~its duration but must not cost a
	// restart-scale makespan regression vs the clean c=4 run.
	if fault.Makespan > c4.Makespan+c4.Makespan/4 {
		t.Fatalf("faulted makespan %v vs clean %v: resume should bound the penalty", fault.Makespan, c4.Makespan)
	}
}

// TestEstimateMigration pins the schedule estimator against the full
// simulation: across the plain, dedup, and dedup+delta wire configurations
// the closed-form estimate must land within 20% of RunTPM's measured
// migration duration. The old estimator ignored the negotiated wire
// reductions entirely, so a dedup-heavy drain aimed its outage injection
// (and any schedule built on it) past the end of the real transfer.
func TestEstimateMigration(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations skipped in -short mode")
	}
	cases := []struct {
		name string
		mut  func(*Params)
	}{
		{"plain", func(p *Params) {}},
		{"dedup half", func(p *Params) { p.Dedup = true; p.DedupShare = 0.5 }},
		{"dedup heavy", func(p *Params) { p.Dedup = true; p.DedupShare = 0.8 }},
		{"dedup+delta", func(p *Params) {
			p.Dedup, p.DedupShare = true, 0.3
			p.Delta, p.DeltaMatchShare = true, 0.9
		}},
	}
	for _, tc := range cases {
		p := Defaults(workload.Web)
		p.DwellAfter = time.Minute
		tc.mut(&p)
		got := estimateMigration(p, p.NetBytesPerSec)
		r := RunTPM(p)
		actual := r.MigEnd - r.MigStart
		ratio := float64(got) / float64(actual)
		if ratio < 0.8 || ratio > 1.2 {
			t.Errorf("%s: estimate %v vs simulated %v (ratio %.2f), want within 20%%",
				tc.name, got.Round(time.Second), actual.Round(time.Second), ratio)
		}
	}
}
