// Package sim replays the paper's evaluation at full scale — a 39 070 MB
// VBD, 512 MB of guest memory, a Gigabit LAN — in milliseconds of wall time.
//
// The real engine in internal/core moves actual bytes and cannot usefully
// push 39 GB through a laptop for every benchmark run, so sim mirrors the
// engine's phase logic (the same iteration rules, stop conditions, bitmap
// mechanics, and push/pull post-copy) at bitmap granularity on a virtual
// timeline: block *numbers* move, block *contents* don't. Workload
// generators are shared with the real engine, so the dirty-block dynamics
// that drive every Table I/II number come from the same access streams the
// integration tests replay against real devices.
//
// Two resources are modelled, calibrated to the paper's testbed:
//
//   - the migration path (NetBytesPerSec): the effective Gigabit rate,
//     39 097 MB / 796.1 s ≈ 49.1 MB/s in Table I's web row;
//   - the shared local disk (DiskBytesPerSec): when the migration's
//     sequential scan and the guest's I/O overlap, both are scaled
//     proportionally to fit the disk's contended capacity — the mechanism
//     behind Fig. 6's Bonnie++ throughput dip and §VI-C-3's observation
//     that capping migration bandwidth halves the impact while lengthening
//     pre-copy ~37%.
package sim

import (
	"fmt"
	"math"
	"time"

	"bbmig/internal/bitmap"
	"bbmig/internal/blockdev"
	"bbmig/internal/core"
	"bbmig/internal/metrics"
	"bbmig/internal/workload"
)

// Params configures one simulated migration.
type Params struct {
	// DiskMB is the VBD size (paper: 39 070 MB ≈ a "40 GB" VBD).
	DiskMB int
	// MemMB is the guest memory size (paper: 512 MB).
	MemMB int
	// Workload selects the guest load; Seed fixes its randomness.
	Workload workload.Kind
	Seed     int64

	// NetBytesPerSec is the effective migration path bandwidth.
	NetBytesPerSec float64
	// DiskBytesPerSec is the contended disk capacity available when the
	// migration scan and guest I/O overlap.
	DiskBytesPerSec float64
	// RateLimit caps the migration's pre-copy bandwidth (§VI-C-3);
	// 0 means unlimited.
	RateLimit float64

	// Streams is the number of striped transport connections the transfer
	// path fans frames across; zero or one models the paper's single blkd
	// socket.
	Streams int
	// MaxExtentBlocks is the per-frame block coalescing limit; zero or one
	// models the paper's block-per-message format. Larger extents amortize
	// the per-frame header and the FrameLatency stall.
	MaxExtentBlocks int
	// FrameLatency is the per-frame serialization stall of the transfer
	// path (per-message flush and handling). It is amortized across the
	// frame's payload and divided by Streams (frames on different streams
	// overlap). Zero — the default — folds the stall into NetBytesPerSec
	// the way the paper's measured effective bandwidth already does, so
	// calibrated results are unchanged.
	FrameLatency time.Duration

	// AdaptiveExtents models core.AdaptivePolicy's slow-start extent
	// growth: the live coalescing limit starts at MaxExtentBlocks and
	// doubles each integration step the migration transfers, up to
	// adaptiveExtentCap. With FrameLatency zero it changes nothing.
	AdaptiveExtents bool

	// Dedup models negotiated content-addressed transfer (core.Config.Dedup)
	// on the first disk pre-copy iteration — the bulk image copy: every
	// block costs a fingerprint advert, and the DedupShare fraction whose
	// content the destination can already produce travels as a 16-byte
	// reference instead of a literal. Later iterations carry fresh guest
	// writes and are modelled literal (conservative: rewrites of identical
	// content would dedup too).
	Dedup bool
	// DedupShare is the fraction of iteration-1 content the destination
	// already holds: never-written zero blocks plus template overlap with
	// retained peer copies and clone-sibling disks. Ignored unless Dedup.
	DedupShare float64

	// Delta models negotiated delta encoding (core.Config.Delta) on the
	// first disk pre-copy iteration — the one whose blocks have stale
	// counterparts on the destination, an IM return trip's hot rewrites.
	// Every block dedup could not reference pays the signature round trip
	// (deltaSigPerBlock) and ships only its changed chunk fraction
	// (1 − DeltaMatchShare) as patch payload; when that is no cheaper than
	// the literal the model applies the engine's patch-vs-literal fallback,
	// literal plus the sunk signature cost. Later iterations are modelled
	// literal, as in the engine.
	Delta bool
	// DeltaMatchShare is the mean fraction of a diverged block's chunks the
	// destination's stale copy still matches — high for hot-block rewrites
	// (a head touched, the tail intact), zero for wholesale replacement or
	// a cold destination. Ignored unless Delta.
	DeltaMatchShare float64

	// Swarm models multi-source fetch (core.Config.Swarm) on top of Dedup:
	// during iteration 1 an extra SwarmShare fraction of the content —
	// blocks the destination does not hold but peer machines do — arrives
	// over the peers' sidecar sessions at SwarmBytesPerSec aggregate, in
	// parallel with the source's stream. On the main channel those blocks
	// cost only advert and reference bytes, so the source's uplink carries
	// the literal remainder while the fleet carries the bulk. Ignored
	// unless Dedup.
	Swarm bool
	// SwarmShare is the iteration-1 content fraction swarm peers produce,
	// beyond the DedupShare the destination holds locally (the two sum to
	// at most 1).
	SwarmShare float64
	// SwarmBytesPerSec is the nominated peers' aggregate serve bandwidth —
	// sidecar links, separate from the migration path and from the source
	// host's disk, so an outage on the migration link does not stall them.
	SwarmBytesPerSec float64

	// OnEvent, when non-nil, receives the same typed progress events the
	// real engine emits (phase transitions, iteration ends, suspend,
	// resume, completion) on the simulated timeline — the simulator no
	// longer needs to be inferred from its cursor position.
	OnEvent core.EventFunc

	// OutageAt, when positive, severs the migration link once at that point
	// on the simulated timeline; the link stays down for OutageDuration
	// while the guest keeps running (and dirtying) at full disk speed.
	// The migration resumes the way the engine does — re-entering the
	// interrupted iteration and re-sending it — with the penalty recorded
	// in Report.Retries and Report.ResentBytes. Zero disables the fault.
	OutageAt       time.Duration
	OutageDuration time.Duration

	// Engine stop conditions, mirroring core.Config.
	MaxDiskIters           int
	DiskDirtyThresholdBlks int
	MaxMemIters            int
	MemDirtyThresholdPages int

	// FixedDowntime is the suspend/resume/device-reattach overhead that
	// exists regardless of transfer sizes.
	FixedDowntime time.Duration
	// PostCopyLatency is the control-path overhead of entering and running
	// the post-copy protocol (proc-file polling and per-pull round trips in
	// the paper's blkd).
	PostCopyLatency time.Duration

	// Step is the integration step for the contention model.
	Step time.Duration

	// DwellAfter is how long the guest keeps running on the destination
	// before an incremental migration back is measured (Table II).
	DwellAfter time.Duration
}

// Defaults returns the paper-testbed parameters for a given workload.
func Defaults(kind workload.Kind) Params {
	return Params{
		DiskMB:                 39070,
		MemMB:                  512,
		Workload:               kind,
		Seed:                   1,
		NetBytesPerSec:         49.1e6 * 1.048576, // 49.1 MiB/s in bytes
		DiskBytesPerSec:        76e6 * 1.048576,
		MaxDiskIters:           4,
		DiskDirtyThresholdBlks: 8,
		MaxMemIters:            30,
		MemDirtyThresholdPages: 64,
		FixedDowntime:          30 * time.Millisecond,
		PostCopyLatency:        330 * time.Millisecond,
		Step:                   250 * time.Millisecond,
		DwellAfter:             30 * time.Minute,
	}
}

// frameOverhead is the per-block wire overhead (transport header).
const frameOverhead = 13

// adaptiveExtentCap bounds the modelled slow-start growth, mirroring the
// engine-side clamp of extents to what one frame can carry.
const adaptiveExtentCap = 1024

// Result is the outcome of a simulated migration.
type Result struct {
	Report *metrics.Report
	// WorkloadSeries samples the guest's achieved I/O throughput (MB/s);
	// MigrationSeries samples the migration transfer rate. Together they
	// regenerate Figures 5 and 6.
	WorkloadSeries  metrics.Series
	MigrationSeries metrics.Series
	// MigStart/MigEnd bound the migration on the shared timeline.
	MigStart, MigEnd time.Duration

	// carried state for an incremental migration back
	fresh *bitmap.Bitmap
	cur   *cursor
	p     Params
	now   time.Duration
}

// FreshBlocks returns how many blocks were dirtied on the destination since
// the resume — the IM working set.
func (r *Result) FreshBlocks() int { return r.fresh.Count() }

// sim holds the running state of one migration simulation.
type sim struct {
	p          Params
	numBlocks  int
	numPages   int
	now        time.Duration
	cur        *cursor
	dirty      *bitmap.Bitmap // tracked writes since last swap (source side)
	fresh      *bitmap.Bitmap // destination-side new writes (IM)
	trackDirty bool
	trackFresh bool

	memDirty float64 // expected dirty pages (analytic hot-set model)
	memProf  workload.MemoryProfile
	memPhase bool // memory pre-copy active: frames are single pages
	extent   int  // live extent coalescing limit (adaptive growth)

	outageArmed   bool          // OutageAt not yet reached
	linkDownUntil time.Duration // link dead until this instant
	faultFired    bool          // latched for the transfer loop to consume

	rep        *metrics.Report
	wSeries    metrics.Series
	mSeries    metrics.Series
	preCopying bool // disk contention active (migration reading the disk)
	postCopy   *postCopyState
}

type postCopyState struct {
	remaining *bitmap.Bitmap
	pushPos   int
	pulled    int
	stale     int
}

// RunTPM simulates a primary whole-disk TPM migration.
func RunTPM(p Params) *Result {
	return run(p, nil, nil, 0)
}

// RunIM simulates migrating the VM back using the fresh bitmap accumulated
// in a previous Result (after its dwell period). The guest is idle during
// the trip back — the paper's IM scenario migrates the environment home
// after the work session (maintenance done, telecommute over), so no
// workload dirties blocks mid-flight.
func (r *Result) RunIM() *Result {
	return run(r.p, r.fresh, nil, r.now)
}

func run(p Params, initial *bitmap.Bitmap, cur *cursor, start time.Duration) *Result {
	idle := initial != nil && cur == nil
	if p.Step <= 0 {
		p.Step = 250 * time.Millisecond
	}
	if p.Streams < 1 {
		p.Streams = 1
	}
	if p.MaxExtentBlocks < 1 {
		p.MaxExtentBlocks = 1
	}
	numBlocks := p.DiskMB << 20 / blockdev.BlockSize
	numPages := p.MemMB << 20 / 4096
	if cur == nil {
		g := workload.Generator(workload.New(p.Workload, numBlocks, p.Seed))
		if idle {
			g = idleGenerator{}
		}
		cur = newCursor(g)
	}
	s := &sim{
		p:         p,
		numBlocks: numBlocks,
		numPages:  numPages,
		now:       start,
		cur:       cur,
		dirty:     bitmap.New(numBlocks),
		fresh:     bitmap.New(numBlocks),
		memProf:   workload.Profile(p.Workload),
		rep: &metrics.Report{
			Scheme:      "TPM",
			Workload:    p.Workload.String(),
			DiskBytes:   int64(p.DiskMB) << 20,
			MemoryBytes: int64(p.MemMB) << 20,
		},
	}
	if initial != nil {
		s.rep.Scheme = "IM"
	}
	s.extent = p.MaxExtentBlocks
	s.outageArmed = p.OutageAt > 0
	s.wSeries = metrics.Series{Label: p.Workload.String() + " throughput", Unit: "MB/s"}
	s.mSeries = metrics.Series{Label: "migration transfer rate", Unit: "MB/s"}

	migStart := s.now
	s.trackDirty = true // blkback starts recording before the first copy

	// --- Disk pre-copy (§IV-A-1): iterative, bitmap-driven. ---
	s.emit(core.Event{Kind: core.EventPhaseStart, Phase: core.PhaseDiskPreCopy})
	s.preCopying = true
	toSend := initial
	if toSend == nil {
		toSend = bitmap.NewAllSet(numBlocks)
	}
	prevSent := toSend.Count()
	for iter := 1; ; iter++ {
		iterStart := s.now
		sentBlocks := toSend.Count()
		iterBytes := int64(sentBlocks) * blockdev.BlockSize
		if (p.Dedup || p.Delta) && iter == 1 {
			// Content-addressed iteration 1: every block pays the advert,
			// the present share travels as references, the rest literally —
			// or, with Delta negotiated, as signature-priced patches.
			share, swarmShare := 0.0, 0.0
			if p.Dedup {
				share = clamp01(p.DedupShare)
				if p.Swarm && p.SwarmBytesPerSec > 0 {
					swarmShare = clamp01(p.SwarmShare)
					if share+swarmShare > 1 {
						swarmShare = 1 - share
					}
				}
			}
			refsSwarm := int(float64(sentBlocks) * swarmShare)
			refs := int(float64(sentBlocks)*share) + refsSwarm
			lits := sentBlocks - refs
			litWire := float64(lits) * s.perBlockWire()
			if p.Delta && lits > 0 {
				match := clamp01(p.DeltaMatchShare)
				perPatch := deltaSigPerBlock + deltaPatchPerBlockOverhead +
					(1-match)*blockdev.BlockSize
				if lit := s.perBlockWire(); perPatch >= lit+deltaSigPerBlock {
					// Patch no smaller than the literal: the engine falls
					// back, with the signature round trip already sunk.
					perPatch = lit + deltaSigPerBlock
				} else {
					s.rep.DeltaBlocks += lits
				}
				litWire = float64(lits) * perPatch
			}
			wire := litWire + float64(refs)*dedupRefPerBlock
			if p.Dedup {
				wire += float64(sentBlocks) * dedupAdvertPerBlock
			}
			if refsSwarm > 0 {
				// Swarm-produced blocks cross the peers' sidecar links in
				// parallel with the source stream; the iteration ends when
				// both flows drain.
				swarmWire := float64(refsSwarm) * swarmPerBlockWire
				s.transferWireParallel(wire, swarmWire)
			} else {
				s.transferWire(wire)
			}
			iterBytes = int64(wire)
			s.rep.DedupBlocks += refs
			s.rep.SwarmBlocks += refsSwarm
		} else {
			s.transferBlocks(int64(sentBlocks))
		}
		s.rep.DiskIterations = append(s.rep.DiskIterations, metrics.Iteration{
			Index: iter, Units: sentBlocks,
			Bytes:    iterBytes,
			Duration: s.now - iterStart, DirtyEnd: s.dirty.Count(),
		})
		s.emit(core.Event{
			Kind: core.EventIterationEnd, Phase: core.PhaseDiskPreCopy,
			Iteration: iter, Units: sentBlocks,
			Bytes: int64(sentBlocks) * blockdev.BlockSize, Dirty: s.dirty.Count(),
		})
		dirtyNow := s.dirty.Count()
		if dirtyNow <= p.DiskDirtyThresholdBlks || iter >= p.MaxDiskIters {
			break
		}
		if iter > 1 && dirtyNow >= prevSent {
			break // dirty rate caught up with transfer rate: stop proactively
		}
		prevSent = dirtyNow
		toSend = s.dirty.Clone()
		s.dirty.Reset()
	}
	s.preCopying = false

	// --- Memory pre-copy (Xen-style, analytic hot-set model). ---
	s.emit(core.Event{Kind: core.EventPhaseStart, Phase: core.PhaseMemPreCopy})
	s.memPreCopy()
	s.rep.PreCopyTime = s.now - migStart

	// --- Freeze-and-copy: final pages + CPU + block-bitmap. ---
	finalPages := s.memDirty
	bitmapBytes := float64(numBlocks/8 + 16)
	freezeBytes := finalPages*4096 + bitmapBytes + 4096 /* CPU state */
	s.emit(core.Event{Kind: core.EventPhaseStart, Phase: core.PhaseFreezeCopy})
	s.emit(core.Event{Kind: core.EventSuspended, Phase: core.PhaseFreezeCopy})
	downtime := p.FixedDowntime + time.Duration(freezeBytes/p.NetBytesPerSec*float64(time.Second))
	s.advanceNoDisk(downtime) // guest frozen: its I/O halts; clock moves
	s.rep.Downtime = downtime
	s.rep.MemBytesMoved += int64(finalPages * 4096)

	// Freeze bitmap: everything dirtied since the last iteration swap.
	carry := s.dirty.Clone()
	s.dirty.Reset()
	s.trackDirty = false

	// --- Post-copy: resume on destination; push everything in the bitmap
	// while guest reads pull (§IV-A-3). ---
	s.trackFresh = true
	s.emit(core.Event{Kind: core.EventPhaseStart, Phase: core.PhasePostCopy})
	s.emit(core.Event{Kind: core.EventResumed, Phase: core.PhasePostCopy})
	postStart := s.now
	carryInit := carry.Count()
	s.postCopy = &postCopyState{remaining: carry.Clone()}
	s.preCopying = true // pushes contend with the guest on the dest disk
	for s.postCopy.remaining.Any() {
		s.stepPostCopy()
	}
	s.preCopying = false
	s.now += p.PostCopyLatency
	s.rep.PostCopyTime = s.now - postStart
	s.rep.BlocksPushed = pushedCount(carryInit, s.postCopy)
	s.rep.BlocksPulled = s.postCopy.pulled
	s.rep.StalePushes = s.postCopy.stale
	s.postCopy = nil // synchronization complete; the dwell runs unmigrated
	s.rep.TotalTime = s.now - migStart
	migEnd := s.now
	s.emit(core.Event{Kind: core.EventCompleted, Phase: core.PhasePostCopy, Bytes: s.rep.MigratedBytes})

	// Amount of migrated data, using the paper's accounting: disk payloads
	// plus the bitmap (memory reported separately in MemBytesMoved).
	var diskBytes int64
	for _, it := range s.rep.DiskIterations {
		diskBytes += it.Bytes
	}
	pushed := int64(s.rep.BlocksPushed+s.rep.BlocksPulled) * blockdev.BlockSize
	s.rep.MigratedBytes = diskBytes + pushed + int64(bitmapBytes)

	// --- Dwell: the guest keeps running on the destination, feeding the
	// fresh bitmap that a later IM will carry back. ---
	dwellEnd := s.now + p.DwellAfter
	for s.now < dwellEnd {
		s.step(minDur(s.p.Step*40, dwellEnd-s.now))
	}

	return &Result{
		Report:          s.rep,
		WorkloadSeries:  s.wSeries,
		MigrationSeries: s.mSeries,
		MigStart:        migStart,
		MigEnd:          migEnd,
		fresh:           s.fresh,
		cur:             s.cur,
		p:               s.p,
		now:             s.now,
	}
}

func pushedCount(carryInit int, pc *postCopyState) int {
	// pushed = initial carry − pulled − superseded-by-writes
	n := carryInit - pc.pulled - pc.stale
	if n < 0 {
		n = 0
	}
	return n
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// emit forwards one progress event on the simulated timeline.
func (s *sim) emit(ev core.Event) {
	if s.p.OnEvent == nil {
		return
	}
	ev.Scheme, ev.Side, ev.At = s.rep.Scheme, "source", s.now
	s.p.OnEvent(ev)
}

// liveExtent returns the current coalescing limit: fixed, or the adaptive
// slow-start value.
func (s *sim) liveExtent() int {
	if s.extent < 1 {
		return 1
	}
	return s.extent
}

// growExtent advances the modelled slow start by one integration step.
func (s *sim) growExtent() {
	if !s.p.AdaptiveExtents || s.memPhase {
		return
	}
	if s.extent < 1 {
		s.extent = 1 // run() clamps MaxExtentBlocks, but never double from zero
	}
	if s.extent < adaptiveExtentCap {
		s.extent *= 2
		if s.extent > adaptiveExtentCap {
			s.extent = adaptiveExtentCap
		}
	}
}

// migFrameBytes returns the payload+header size of one frame in the current
// phase: disk phases coalesce up to the live extent limit per frame, but
// the engine never coalesces memory pages — each MsgMemPage is its own
// frame — so the stall amortization must not flatter the memory pre-copy.
func (s *sim) migFrameBytes() float64 {
	if s.memPhase {
		return 4096 + frameOverhead
	}
	return float64(blockdev.BlockSize*s.liveExtent() + frameOverhead)
}

// linkDown reports whether the modelled outage currently severs the link.
func (s *sim) linkDown() bool {
	return s.now < s.linkDownUntil
}

// consumeFault latches-and-clears the fired-fault flag; the transfer loops
// call it after each step to apply the engine's resume semantics (re-send
// the interrupted iteration).
func (s *sim) consumeFault() bool {
	if !s.faultFired {
		return false
	}
	s.faultFired = false
	s.rep.Retries++
	return true
}

// migRate returns the migration bandwidth before disk contention. When a
// per-frame stall is modelled, each frame of payload P costs P/net +
// FrameLatency/Streams seconds, so the effective rate rises with extent
// coalescing (bigger P) and striping (stall overlapped across streams).
// A severed link moves nothing.
func (s *sim) migRate() float64 {
	if s.linkDown() {
		return 0
	}
	r := s.p.NetBytesPerSec
	if s.p.FrameLatency > 0 {
		frameBytes := s.migFrameBytes()
		perByte := 1/r + s.p.FrameLatency.Seconds()/(float64(s.p.Streams)*frameBytes)
		r = 1 / perByte
	}
	if s.p.RateLimit > 0 && s.p.RateLimit < r {
		r = s.p.RateLimit
	}
	return r
}

// perBlockWire returns the wire bytes one block costs with the live extent
// coalescing: the frame header is shared by up to liveExtent blocks.
func (s *sim) perBlockWire() float64 {
	return blockdev.BlockSize + float64(frameOverhead)/float64(s.liveExtent())
}

// step advances one integration step of dt, returning the migration bytes
// credited. Guest accesses consumed in the step update the dirty/fresh
// bitmaps; contention scales both parties proportionally into the disk
// capacity (when the migration is touching the disk).
func (s *sim) step(dt time.Duration) float64 {
	demand := float64(s.cur.peekDemandBytes(dt)) / dt.Seconds()
	mig := 0.0
	if s.preCopying || s.postCopy != nil {
		mig = s.migRate()
	}
	wEff, mEff := demand, mig
	if s.preCopying && demand+mig > s.p.DiskBytesPerSec {
		scale := s.p.DiskBytesPerSec / (demand + mig)
		wEff, mEff = demand*scale, mig*scale
	}
	slow := 1.0
	if demand > 0 {
		slow = wEff / demand
	}
	s.cur.advance(time.Duration(float64(dt)*slow), s.applyAccess)
	s.advanceMemModel(dt)
	s.now += dt
	if s.outageArmed && s.now >= s.p.OutageAt {
		s.outageArmed = false
		s.linkDownUntil = s.now + s.p.OutageDuration
		s.faultFired = true
	}
	s.wSeries.Add(s.now, wEff/1e6)
	s.mSeries.Add(s.now, mEff/1e6)
	if mig > 0 {
		s.growExtent()
	}
	return mEff * dt.Seconds()
}

// advanceNoDisk moves time forward with the guest frozen (downtime window).
func (s *sim) advanceNoDisk(dt time.Duration) {
	s.now += dt
	s.wSeries.Add(s.now, 0)
}

// applyAccess folds one guest access into the tracking bitmaps.
func (s *sim) applyAccess(a workload.Access) {
	if a.Op == blockdev.Write {
		if s.trackDirty {
			s.dirty.SetRange(a.Block, a.Block+a.Count)
		}
		if s.trackFresh {
			s.fresh.SetRange(a.Block, a.Block+a.Count)
		}
		if s.postCopy != nil {
			for n := a.Block; n < a.Block+a.Count; n++ {
				if s.postCopy.remaining.Test(n) {
					s.postCopy.remaining.Clear(n) // local write supersedes push
					s.postCopy.stale++
				}
			}
		}
		return
	}
	// Read during post-copy: a dirty block is pulled immediately.
	if s.postCopy != nil {
		for n := a.Block; n < a.Block+a.Count; n++ {
			if s.postCopy.remaining.Test(n) {
				s.postCopy.remaining.Clear(n)
				s.postCopy.pulled++
			}
		}
	}
}

// inflightWindow is the data assumed lost in flight when the link is cut:
// everything already confirmed by the destination survives (its transfer
// cursor rides the resume ack), so the resume penalty is one transport
// window, not the interrupted iteration.
const inflightWindow = 256 << 10

// Dedup wire-cost constants: a 16-byte fingerprint per advertised block
// (plus the want bit and amortized frame headers) and a 16-byte fingerprint
// per referenced block — mirroring the engine's MsgHashAdvert/MsgBlockRef
// encoding in docs/WIRE.md §10.
const (
	dedupAdvertPerBlock = 17.0
	dedupRefPerBlock    = 16.0
)

// Delta wire-cost constants, mirroring WIRE.md §12 for a 4096-byte block
// at the default 128-byte chunk: the signature round trip is the 13-byte
// request frame plus the reply — 8-byte signature header, 32 records of
// 12 bytes, 13-byte frame — and a patch's fixed cost is its 8-byte header,
// 16-byte verify trailer, a few merged COPY/LITERAL op headers, and the
// 13-byte frame. The changed-chunk payload comes on top of the overhead.
const (
	deltaSigPerBlock           = 418.0
	deltaPatchPerBlockOverhead = 61.0
)

// swarmPerBlockWire is the sidecar cost of one swarm-fetched block: the
// block content plus the MsgSwarmFetch fingerprint (16 B), its hit-mask
// bit, and the amortized frame headers — mirroring WIRE.md §11.
const swarmPerBlockWire = blockdev.BlockSize + dedupAdvertPerBlock

// clamp01 bounds a fraction to [0, 1].
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// transferBlocks advances time until `blocks` blocks have crossed the wire.
// If the modelled outage fires mid-iteration, the link stalls for the
// outage window and the in-flight data is re-sent — the engine's
// cursor-exact resume semantics.
func (s *sim) transferBlocks(blocks int64) {
	s.transferWire(float64(blocks) * s.perBlockWire())
}

// transferWire advances time until `total` wire bytes have crossed.
func (s *sim) transferWire(total float64) {
	remaining := total
	for remaining > 0 {
		remaining -= s.step(s.p.Step)
		if s.consumeFault() && remaining > 0 {
			resend := math.Min(total-remaining, inflightWindow)
			if resend > 0 {
				s.rep.ResentBytes += int64(resend)
				remaining += resend
			}
		}
	}
}

// transferWireParallel advances time until both the main-channel bytes and
// the swarm sidecar bytes have crossed. The flows are independent links:
// the source stream rides the contended migration path (outages and all),
// the swarm total drains at the peers' aggregate rate, and the iteration —
// like the real destination, which answers the next advert only when the
// current extent settles — finishes with the slower of the two.
func (s *sim) transferWireParallel(total, swarmTotal float64) {
	remaining, swarmRemaining := total, swarmTotal
	for remaining > 0 || swarmRemaining > 0 {
		credit := s.step(s.p.Step)
		if remaining > 0 {
			remaining -= credit
			if s.consumeFault() && remaining > 0 {
				resend := math.Min(total-remaining, inflightWindow)
				if resend > 0 {
					s.rep.ResentBytes += int64(resend)
					remaining += resend
				}
			}
		} else {
			s.consumeFault() // an outage after the source drained costs nothing
		}
		swarmRemaining -= s.p.SwarmBytesPerSec * s.p.Step.Seconds()
	}
}

// stepPostCopy advances one step while the source pushes remaining blocks in
// ascending order (the guest's reads/writes meanwhile clear bits through
// applyAccess).
func (s *sim) stepPostCopy() {
	credit := s.step(s.p.Step)
	// An outage during post-copy just stalls the push; the remaining bitmap
	// is the source's durable view, so resume loses at most one step.
	s.consumeFault()
	if s.linkDown() {
		return
	}
	pushBlocks := int(credit / s.perBlockWire())
	if pushBlocks < 1 {
		pushBlocks = 1 // guarantee progress even under an extreme cap
	}
	pc := s.postCopy
	for i := 0; i < pushBlocks; i++ {
		n := pc.remaining.NextSet(pc.pushPos)
		if n < 0 {
			// wrap: guest writes may have cleared bits behind the cursor
			n = pc.remaining.NextSet(0)
			if n < 0 {
				return
			}
		}
		pc.remaining.Clear(n)
		pc.pushPos = n + 1
	}
}

// advanceMemModel integrates the hot-set dirty-page model: pages are
// re-dirtied at rate r across a hot set of H pages, so the expected dirty
// count approaches H exponentially.
func (s *sim) advanceMemModel(dt time.Duration) {
	if !s.trackDirty {
		return
	}
	h := float64(s.memProf.HotPages)
	r := s.memProf.DirtyRate
	if h <= 0 || r <= 0 {
		return
	}
	s.memDirty = h - (h-s.memDirty)*expNeg(r*dt.Seconds()/h)
}

// memPreCopy mirrors the engine's iterative memory pre-copy on the analytic
// model: iteration 1 sends every page; iteration k sends the pages dirtied
// during iteration k-1.
func (s *sim) memPreCopy() {
	s.memPhase = true
	defer func() { s.memPhase = false }()
	rate := s.migRate()
	toSend := float64(s.numPages)
	s.memDirty = 0
	prev := toSend
	for iter := 1; ; iter++ {
		dur := toSend * 4096 / rate
		iterStart := s.now
		// advance the world while pages stream (no disk contention:
		// memory moves over the NIC only)
		elapsed := time.Duration(0)
		total := time.Duration(dur * float64(time.Second))
		for elapsed < total {
			step := minDur(s.p.Step, total-elapsed)
			s.step(step)
			if s.consumeFault() {
				// Cursor-exact resume: only the in-flight window re-sends
				// once the link returns.
				resendSec := inflightWindow / rate
				if rewind := time.Duration(resendSec * float64(time.Second)); rewind < elapsed {
					elapsed -= rewind
				} else {
					elapsed = 0
				}
				s.rep.ResentBytes += inflightWindow
				continue
			}
			if s.linkDown() {
				continue // time passes, no pages move
			}
			elapsed += step
		}
		s.rep.MemBytesMoved += int64(toSend * 4096)
		dirtyNow := s.memDirty
		s.rep.MemIterations = append(s.rep.MemIterations, metrics.Iteration{
			Index: iter, Units: int(toSend), Bytes: int64(toSend * 4096),
			Duration: s.now - iterStart, DirtyEnd: int(dirtyNow),
		})
		if int(dirtyNow) <= s.p.MemDirtyThresholdPages || iter >= s.p.MaxMemIters {
			return
		}
		if iter > 1 && dirtyNow >= prev {
			return // writable working set saturated
		}
		prev = dirtyNow
		toSend = dirtyNow
		s.memDirty = 0
	}
}

// expNeg computes e^-x for x ≥ 0.
func expNeg(x float64) float64 {
	if x < 0 {
		panic(fmt.Sprintf("sim: expNeg(%v)", x))
	}
	return math.Exp(-x)
}
