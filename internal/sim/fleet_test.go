package sim

import (
	"reflect"
	"testing"
	"time"
)

// fleetRowsByArm indexes sweep rows by "shape/policy".
func fleetRowsByArm(t *testing.T, rows []FleetRow) map[string]FleetRow {
	t.Helper()
	m := make(map[string]FleetRow, len(rows))
	for _, r := range rows {
		m[r.Shape+"/"+r.Policy] = r
	}
	if len(m) != 6 {
		t.Fatalf("sweep produced %d distinct arms, want 6: %+v", len(m), rows)
	}
	return m
}

// TestFleetSweepDeterministic pins the regression contract: the same seed
// reproduces every row bit-for-bit — makespans, downtimes, retransmission,
// speedups — and a different seed actually changes the fleet.
func TestFleetSweepDeterministic(t *testing.T) {
	rows1, _ := FleetSweep(7, 40, 2000)
	rows2, _ := FleetSweep(7, 40, 2000)
	if !reflect.DeepEqual(rows1, rows2) {
		t.Fatalf("same seed, different rows:\n%+v\n%+v", rows1, rows2)
	}
	rows3, _ := FleetSweep(8, 40, 2000)
	if reflect.DeepEqual(rows1, rows3) {
		t.Fatalf("different seeds produced identical rows")
	}
}

// TestFleetPredictiveAcceptance pins the sweep's headline: on the diurnal
// shape, trough-aware scheduling beats reactive by at least 1.5x on drain
// makespan while collapsing downtime and interference, and the constant
// control arm ties.
func TestFleetPredictiveAcceptance(t *testing.T) {
	rows, _ := FleetSweep(1, 40, 2000)
	arm := fleetRowsByArm(t, rows)

	re, pr := arm["diurnal/reactive"], arm["diurnal/predictive"]
	if pr.Speedup < 1.5 {
		t.Errorf("diurnal predictive speedup = %.2f, want >= 1.5 (reactive %v vs predictive %v)",
			pr.Speedup, re.Makespan, pr.Makespan)
	}
	if pr.MeanDowntime*5 > re.MeanDowntime {
		t.Errorf("predictive mean downtime %v not under a fifth of reactive %v",
			pr.MeanDowntime, re.MeanDowntime)
	}
	if pr.HighStarts*4 > re.HighStarts {
		t.Errorf("predictive high starts %d not under a quarter of reactive %d",
			pr.HighStarts, re.HighStarts)
	}
	if pr.RetransBlocks*2 > re.RetransBlocks {
		t.Errorf("predictive retransmission %d blocks not under half of reactive %d",
			pr.RetransBlocks, re.RetransBlocks)
	}

	// The constant shape has no troughs: the policies must tie (the sweep
	// would be rigged if prediction "won" where there is nothing to predict).
	if s := arm["constant/predictive"].Speedup; s < 0.9 || s > 1.1 {
		t.Errorf("constant-shape speedup = %.2f, want ~1.0", s)
	}

	// Every arm migrated the full drained population.
	for name, r := range arm {
		if want := r.Drained * (r.Domains / r.Hosts); r.Migrations != want {
			t.Errorf("%s: %d migrations, want %d", name, r.Migrations, want)
		}
	}
}

// TestFleetSweepAtScale is the issue's scale acceptance: the full
// 10 000-domain, 200-host sweep — six arms, three of them feeding ten
// thousand forecast models from streaming heartbeat counters — completes
// well inside a 60 s wall budget, and the headline result holds at scale.
func TestFleetSweepAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-domain sweep skipped in -short mode")
	}
	start := time.Now()
	rows, tbl := FleetSweep(1, 200, 10000)
	wall := time.Since(start)
	if wall > 60*time.Second {
		t.Fatalf("10k-domain sweep took %v, budget 60s", wall)
	}
	arm := fleetRowsByArm(t, rows)
	if got := arm["diurnal/reactive"].Migrations; got != 2000 {
		t.Fatalf("drained %d domains, want 2000 (40 hosts x 50 domains)", got)
	}
	if s := arm["diurnal/predictive"].Speedup; s < 1.5 {
		t.Fatalf("diurnal predictive speedup at scale = %.2f, want >= 1.5\n%s", s, tbl)
	}
}
