package sim

import (
	"fmt"
	"time"

	"bbmig/internal/blockdev"
	"bbmig/internal/metrics"
	"bbmig/internal/workload"
)

// The cluster evacuation model. ClusterSweep answers the orchestrator's
// sizing question at paper scale: when a maintenance drain must move M
// paper-testbed domains off one host, how does the scheduler's concurrency
// cap trade evacuation makespan against per-VM downtime?
//
// Modelled resources: each destination host sits behind its own
// Gigabit-class link (the paper's effective rate), while the draining host's
// uplink carries clusterUplinkLinks times that — the global bandwidth budget
// the scheduler shares. A migration therefore runs at
// min(link, budget/concurrency): concurrency buys makespan until the uplink
// saturates, after which it only dilutes per-migration bandwidth and starts
// inflating the freeze-and-copy window (downtime). The scheduler runs the
// drain in waves of `concurrency` migrations; a wave ends when its slowest
// migration completes.

// clusterDomains is the number of domains evacuated in the sweep: two per
// destination host, the paper's own per-machine density, across four
// destinations.
const clusterDomains = 8

// clusterUplinkLinks sizes the draining host's uplink (the scheduler's
// global budget) in units of one destination link.
const clusterUplinkLinks = 4

// ClusterSweepRow is one concurrency setting's outcome.
type ClusterSweepRow struct {
	// Label names the row ("4", "4 + 10 s outage", ...).
	Label string
	// Concurrency is the scheduler cap the row models.
	Concurrency int
	// PerMigRate is the bandwidth one migration runs at, bytes/second.
	PerMigRate float64
	// Makespan is the whole evacuation's duration.
	Makespan time.Duration
	// MeanDowntime and MaxDowntime aggregate the per-VM freeze windows.
	MeanDowntime, MaxDowntime time.Duration
	// Retries and ResentMB quantify the injected-fault row's resume cost
	// (zero on clean rows).
	Retries  int
	ResentMB float64
}

// ClusterSweep evacuates clusterDomains paper-testbed web domains at
// scheduler concurrency 1, 2, 4, and 8, plus one arm where a 10-second link
// outage hits the first migration and the engine's resume path absorbs it.
// The paper's numbers to recognize: a solo web migration takes ~796 s with
// ~60 ms downtime, so the serial drain is ~6400 s; concurrency 4 saturates
// the modelled uplink and cuts the makespan ~4x while downtime stays at the
// solo figure, and concurrency 8 only halves per-migration bandwidth —
// makespan barely moves but every VM's freeze window roughly doubles.
func ClusterSweep(seed int64) ([]ClusterSweepRow, *metrics.Table) {
	base := Defaults(workload.Web)
	base.Seed = seed
	base.DwellAfter = time.Minute
	link := base.NetBytesPerSec
	budget := clusterUplinkLinks * link

	runRow := func(label string, c int, outage time.Duration) ClusterSweepRow {
		rate := link
		if share := budget / float64(c); share < rate {
			rate = share
		}
		row := ClusterSweepRow{Label: label, Concurrency: c, PerMigRate: rate}
		var totalDowntime time.Duration
		idx := 0
		for idx < clusterDomains {
			waveMax := time.Duration(0)
			for k := 0; k < c && idx < clusterDomains; k++ {
				p := base
				p.Seed = seed + int64(idx)
				p.NetBytesPerSec = rate
				if outage > 0 && idx == 0 {
					// Cut the first migration mid disk pre-copy (each
					// simulated migration runs on its own timeline from 0).
					p.OutageAt = time.Duration(0.4 * float64(estimateMigration(base, rate)))
					p.OutageDuration = outage
				}
				r := RunTPM(p)
				if dur := r.MigEnd - r.MigStart; dur > waveMax {
					waveMax = dur
				}
				dt := r.Report.Downtime
				totalDowntime += dt
				if dt > row.MaxDowntime {
					row.MaxDowntime = dt
				}
				row.Retries += r.Report.Retries
				row.ResentMB += float64(r.Report.ResentBytes) / 1e6
				idx++
			}
			row.Makespan += waveMax
		}
		row.MeanDowntime = totalDowntime / clusterDomains
		return row
	}

	var rows []ClusterSweepRow
	for _, c := range []int{1, 2, 4, 8} {
		rows = append(rows, runRow(fmt.Sprintf("%d", c), c, 0))
	}
	rows = append(rows, runRow("4 + 10 s outage", 4, 10*time.Second))

	t := &metrics.Table{
		Title: fmt.Sprintf("Cluster evacuation sweep — %d web domains, uplink budget %dx link",
			clusterDomains, clusterUplinkLinks),
		Columns: []string{
			"concurrency", "per-mig (MB/s)", "makespan (s)",
			"mean downtime (ms)", "max downtime (ms)", "retries", "re-sent (MB)",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Label,
			fmt.Sprintf("%.0f", r.PerMigRate/1e6),
			fmt.Sprintf("%.0f", r.Makespan.Seconds()),
			fmt.Sprintf("%d", r.MeanDowntime.Milliseconds()),
			fmt.Sprintf("%d", r.MaxDowntime.Milliseconds()),
			fmt.Sprintf("%d", r.Retries),
			fmt.Sprintf("%.1f", r.ResentMB),
		)
	}
	return rows, t
}

// estimateMigration predicts one migration's rough duration at the given
// rate — enough to aim an outage injection inside the transfer window, and
// close enough to the full simulation (within ~20%) to size a schedule.
// It prices iteration 1 the way the simulator does: with Dedup negotiated
// the DedupShare fraction travels as 16-byte references under a per-block
// advert, and with Delta the remaining literals pay the signature round trip
// and ship only their changed chunk fraction (with the engine's
// patch-vs-literal fallback). Later iterations' re-sends and the freeze
// window are workload-dependent and left out — the bulk copy dominates a
// paper-testbed migration.
func estimateMigration(p Params, rate float64) time.Duration {
	diskBlocks := float64(int64(p.DiskMB) << 20 / blockdev.BlockSize)
	extent := p.MaxExtentBlocks
	if extent < 1 {
		extent = 1
	}
	perLit := blockdev.BlockSize + float64(frameOverhead)/float64(extent)

	share := 0.0
	if p.Dedup {
		share = clamp01(p.DedupShare)
	}
	refs := diskBlocks * share
	lits := diskBlocks - refs
	litWire := lits * perLit
	if p.Delta && lits > 0 {
		perPatch := deltaSigPerBlock + deltaPatchPerBlockOverhead +
			(1-clamp01(p.DeltaMatchShare))*blockdev.BlockSize
		if perPatch >= perLit+deltaSigPerBlock {
			perPatch = perLit + deltaSigPerBlock
		}
		litWire = lits * perPatch
	}
	wire := litWire + refs*dedupRefPerBlock
	if p.Dedup {
		wire += diskBlocks * dedupAdvertPerBlock
	}
	wire += float64(int64(p.MemMB) << 20) // memory pre-copy travels literal
	return time.Duration(wire / rate * float64(time.Second))
}
