package sim

import (
	"time"

	"bbmig/internal/blockdev"
	"bbmig/internal/workload"
)

// cursor adapts a workload generator into a resumable, slowdown-aware event
// stream: the simulator peeks at the nominal I/O demand of the next window,
// decides how much of that demand the contended disk can actually serve, and
// then advances the workload's internal time by only the served fraction —
// modelling a guest whose I/O genuinely slows down under migration pressure,
// which is what Fig. 6 measures.
type cursor struct {
	g   workload.Generator
	buf []workload.Access
	wt  time.Duration // workload-internal time consumed so far
}

func newCursor(g workload.Generator) *cursor { return &cursor{g: g} }

// idleGenerator is the empty workload: a guest with no I/O. RunIM uses it
// because the paper's incremental migration happens after the work session
// has ended.
type idleGenerator struct{}

// Name implements workload.Generator.
func (idleGenerator) Name() string { return "idle" }

// Next implements workload.Generator: a single no-op read far in the future,
// repeated forever.
func (idleGenerator) Next() workload.Access {
	return workload.Access{At: 1000 * time.Hour, Op: blockdev.Read, Block: 0, Count: 1}
}

// Reset implements workload.Generator.
func (idleGenerator) Reset() {}

// fill extends the lookahead buffer until it covers horizon.
func (c *cursor) fill(horizon time.Duration) {
	for len(c.buf) == 0 || c.buf[len(c.buf)-1].At < horizon {
		c.buf = append(c.buf, c.g.Next())
	}
}

// peekDemandBytes returns the I/O bytes the workload would issue during the
// next dt of its own time, without consuming anything.
func (c *cursor) peekDemandBytes(dt time.Duration) int64 {
	horizon := c.wt + dt
	c.fill(horizon)
	var bytes int64
	for _, a := range c.buf {
		if a.At >= horizon {
			break
		}
		bytes += int64(a.Count) * blockdev.BlockSize
	}
	return bytes
}

// advance consumes d of workload time, invoking apply for each access.
func (c *cursor) advance(d time.Duration, apply func(workload.Access)) {
	horizon := c.wt + d
	c.fill(horizon)
	i := 0
	for ; i < len(c.buf) && c.buf[i].At < horizon; i++ {
		apply(c.buf[i])
	}
	c.buf = append(c.buf[:0], c.buf[i:]...)
	c.wt = horizon
}
