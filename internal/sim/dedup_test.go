package sim

import (
	"testing"

	"bbmig/internal/workload"
)

// TestDedupModelBasics pins the dedup wire model against the literal one:
// same phase dynamics, strictly fewer bytes, references accounted.
func TestDedupModelBasics(t *testing.T) {
	base := Defaults(workload.Web)
	base.DwellAfter = 0
	lit := RunTPM(base)

	p := base
	p.Dedup = true
	p.DedupShare = 0.5
	ded := RunTPM(p)

	if ded.Report.DedupBlocks == 0 {
		t.Fatal("dedup run reports zero reference blocks")
	}
	if ded.Report.MigratedBytes >= lit.Report.MigratedBytes {
		t.Fatalf("dedup moved %d bytes, literal %d", ded.Report.MigratedBytes, lit.Report.MigratedBytes)
	}
	if (ded.MigEnd - ded.MigStart) >= (lit.MigEnd - lit.MigStart) {
		t.Fatal("dedup run not faster than literal on the same link")
	}
	if lit.Report.DedupBlocks != 0 {
		t.Fatalf("literal run reports %d reference blocks", lit.Report.DedupBlocks)
	}
	// Share bounds clamp instead of corrupting the accounting.
	p.DedupShare = 1.5
	if r := RunTPM(p); r.Report.MigratedBytes >= lit.Report.MigratedBytes {
		t.Fatal("clamped share produced no savings")
	}
}

// TestDedupSweepAcceptance pins the tentpole's headline number: evacuating
// the clone fleet toward warm (clone-hosting) destinations must move at
// least 5x fewer bytes on the wire than literal transfer, and the makespan
// must shrink with it.
func TestDedupSweepAcceptance(t *testing.T) {
	rows, tab := DedupSweep(1)
	if tab.String() == "" {
		t.Fatal("empty table")
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	literal, cold, warm := rows[0], rows[1], rows[2]
	if literal.Reduction != 1 {
		t.Fatalf("literal reduction %.2f", literal.Reduction)
	}
	if cold.Reduction <= 1.2 {
		t.Fatalf("cold-destination reduction only %.2fx", cold.Reduction)
	}
	if warm.Reduction < 5 {
		t.Fatalf("warm clone-fleet reduction %.2fx, acceptance bar is 5x", warm.Reduction)
	}
	if warm.Makespan >= literal.Makespan {
		t.Fatalf("dedup makespan %v not below literal %v", warm.Makespan, literal.Makespan)
	}
	if warm.DedupBlocks == 0 {
		t.Fatal("warm arm reports no reference blocks")
	}
}
