package sim

import (
	"fmt"
	"time"

	"bbmig/internal/metrics"
	"bbmig/internal/workload"
)

// The swarm evacuation model. SwarmSweep answers the multi-source layer's
// sizing question at paper scale: when a clone fleet evacuates toward cold
// destinations — the first arrivals hold nothing, but the hosts staying
// behind are warm with clone siblings and retained copies — how much does
// fanning each migration's want-set across those peers' uplinks buy over
// PR 5's single-source dedup, which can only elide what the *destination*
// already holds?
//
// Single-source dedup at a cold destination elides just the zero share:
// the template content exists all over the fleet but only the source's
// uplink can carry it. The swarm arm fetches that template share from
// swarmPeerCount nominated warm peers in parallel with the source stream,
// so the evacuation drains at fleet bandwidth instead of source bandwidth.
const (
	// swarmPeerCount mirrors cluster.DefaultSwarmPeers: nominated warm
	// peers per migration, each contributing one link of serve bandwidth.
	swarmPeerCount = 3
)

// SwarmSweepRow is one arm's outcome.
type SwarmSweepRow struct {
	// Label names the arm ("literal", "single-source dedup", "swarm").
	Label string
	// PerDomainWireMB is one migration's source-channel wire bytes in MB.
	PerDomainWireMB float64
	// FleetWireGB is the whole evacuation's source-channel wire total, GB.
	FleetWireGB float64
	// SwarmBlocks is one migration's peer-produced block count.
	SwarmBlocks int
	// Makespan is the evacuation's duration under the ClusterSweep wave
	// model at the sweet-spot concurrency.
	Makespan time.Duration
	// Speedup is the makespan improvement versus the single-source dedup
	// arm (1x for that arm itself; the acceptance bar pins ≥2x for the
	// swarm arm).
	Speedup float64
}

// SwarmSweep evacuates the ClusterSweep fleet (8 paper-testbed web domains,
// uplink budget 4x one link, concurrency 4) toward cold destinations three
// times: literal transfer, single-source content dedup (only the zero share
// elides — the destination is cold), and swarm multi-source fetch (the
// template share arrives from three warm clone-hosting peers in parallel).
// The acceptance bar the test pins: the swarm arm's makespan beats
// single-source dedup by at least 2x.
func SwarmSweep(seed int64) ([]SwarmSweepRow, *metrics.Table) {
	base := Defaults(workload.Web)
	base.Seed = seed
	base.DwellAfter = time.Minute
	link := base.NetBytesPerSec
	budget := clusterUplinkLinks * link
	const concurrency = 4
	rate := link
	if share := budget / concurrency; share < rate {
		rate = share
	}

	arms := []struct {
		label      string
		dedup      bool
		swarm      bool
		share      float64
		swarmShare float64
	}{
		{"literal", false, false, 0, 0},
		{"single-source dedup, cold dest", true, false, dedupZeroShare, 0},
		{"swarm, 3 warm clone peers", true, true, dedupZeroShare, dedupTemplateShare},
	}
	var rows []SwarmSweepRow
	var baselineMakespan time.Duration
	for _, arm := range arms {
		row := SwarmSweepRow{Label: arm.label}
		idx := 0
		for idx < clusterDomains {
			waveMax := time.Duration(0)
			for k := 0; k < concurrency && idx < clusterDomains; k++ {
				p := base
				p.Seed = seed + int64(idx)
				p.NetBytesPerSec = rate
				p.Dedup = arm.dedup
				p.DedupShare = arm.share
				if arm.swarm {
					p.Swarm = true
					p.SwarmShare = arm.swarmShare
					// Each nominated peer serves over its own uplink; the
					// sidecar links are separate from the source path.
					p.SwarmBytesPerSec = swarmPeerCount * link
				}
				r := RunTPM(p)
				wire := float64(r.Report.MigratedBytes + r.Report.MemBytesMoved)
				row.FleetWireGB += wire / 1e9
				if idx == 0 {
					row.PerDomainWireMB = wire / 1e6
					row.SwarmBlocks = r.Report.SwarmBlocks
				}
				if dur := r.MigEnd - r.MigStart; dur > waveMax {
					waveMax = dur
				}
				idx++
			}
			row.Makespan += waveMax
		}
		if arm.label == arms[1].label {
			baselineMakespan = row.Makespan
		}
		rows = append(rows, row)
	}
	for i := range rows {
		if rows[i].Makespan > 0 {
			rows[i].Speedup = float64(baselineMakespan) / float64(rows[i].Makespan)
		}
	}

	t := &metrics.Table{
		Title: fmt.Sprintf("Swarm evacuation sweep — %d clone domains to cold hosts, concurrency %d, %d warm peers",
			clusterDomains, concurrency, swarmPeerCount),
		Columns: []string{
			"arm", "per-domain wire (MB)", "fleet wire (GB)",
			"swarm blocks", "makespan (s)", "vs single-source",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Label,
			fmt.Sprintf("%.0f", r.PerDomainWireMB),
			fmt.Sprintf("%.1f", r.FleetWireGB),
			fmt.Sprintf("%d", r.SwarmBlocks),
			fmt.Sprintf("%.0f", r.Makespan.Seconds()),
			fmt.Sprintf("%.1fx", r.Speedup),
		)
	}
	return rows, t
}
