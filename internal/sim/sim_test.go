package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"bbmig/internal/blockdev"
	"bbmig/internal/core"
	"bbmig/internal/workload"
)

// Band asserts keep the simulator honest against the paper's published
// numbers: wide enough to tolerate seed/model noise, tight enough that a
// regression in the engine logic or workload calibration trips them.

func TestTableIShape(t *testing.T) {
	results, tab := TableI(1)
	if len(results) != 3 {
		t.Fatalf("TableI returned %d results", len(results))
	}
	web, stream, diab := results[0].Report, results[1].Report, results[2].Report

	// Paper: 796 / 798 / 957 seconds.
	for _, want := range []struct {
		name     string
		total    float64
		lo, hi   float64
		paperVal float64
	}{
		{"web", web.TotalTime.Seconds(), 700, 900, 796},
		{"stream", stream.TotalTime.Seconds(), 700, 900, 798},
		{"diabolical", diab.TotalTime.Seconds(), 850, 1100, 957},
	} {
		if want.total < want.lo || want.total > want.hi {
			t.Errorf("%s: total %.0f s outside [%.0f, %.0f] (paper %.0f)",
				want.name, want.total, want.lo, want.hi, want.paperVal)
		}
	}
	// The diabolical server must take the longest, like the paper.
	if !(diab.TotalTime > web.TotalTime && diab.TotalTime > stream.TotalTime) {
		t.Error("diabolical migration not the slowest")
	}

	// Paper downtimes: 60 / 62 / 110 ms.
	check := func(name string, got time.Duration, lo, hi int64) {
		if ms := got.Milliseconds(); ms < lo || ms > hi {
			t.Errorf("%s downtime %d ms outside [%d, %d]", name, ms, lo, hi)
		}
	}
	check("web", web.Downtime, 35, 95)
	check("stream", stream.Downtime, 35, 95)
	check("diabolical", diab.Downtime, 85, 170)
	if diab.Downtime <= web.Downtime {
		t.Error("diabolical downtime not the largest")
	}

	// Paper amounts: 39097 / 39072 / 40934 MB on a 39070 MB disk.
	const disk = 39070.0
	if mb := web.MigratedMB(); mb < disk || mb > disk+200 {
		t.Errorf("web amount %.0f MB outside [%.0f, %.0f]", mb, disk, disk+200)
	}
	if mb := stream.MigratedMB(); mb < disk || mb > disk+50 {
		t.Errorf("stream amount %.0f MB outside tight band", mb)
	}
	if mb := diab.MigratedMB(); mb < disk+500 || mb > disk+2500 {
		t.Errorf("diabolical amount %.0f MB outside [+500, +2500]", mb)
	}
	if diab.MigratedBytes <= web.MigratedBytes {
		t.Error("diabolical amount not the largest")
	}
	if !strings.Contains(tab.String(), "TABLE I") {
		t.Error("table rendering broken")
	}
}

func TestIterationNarrative(t *testing.T) {
	results, _ := TableI(1)
	web, stream, diab := results[0].Report, results[1].Report, results[2].Report

	// §VI-C-1: web — 3 iterations, 6680 blocks retransferred, 62 left.
	if n := web.DiskIterationCount(); n < 2 || n > 4 {
		t.Errorf("web iterations = %d, paper saw 3", n)
	}
	if rb := web.RetransferredBlocks(); rb < 3000 || rb > 12000 {
		t.Errorf("web retransferred %d blocks, paper saw 6680", rb)
	}
	if left := web.BlocksPushed + web.BlocksPulled; left < 20 || left > 400 {
		t.Errorf("web post-copy synchronized %d blocks, paper saw 62", left)
	}
	// §VI-C-2: streaming — 2 iterations, 610 blocks, 5 left.
	if n := stream.DiskIterationCount(); n != 2 {
		t.Errorf("stream iterations = %d, paper saw 2", n)
	}
	if rb := stream.RetransferredBlocks(); rb < 300 || rb > 1200 {
		t.Errorf("stream retransferred %d blocks, paper saw 610", rb)
	}
	if left := stream.BlocksPushed + stream.BlocksPulled; left < 1 || left > 60 {
		t.Errorf("stream post-copy synchronized %d blocks, paper saw 5", left)
	}
	// §VI-C-3: diabolical — 4 iterations, ~1464 MB retransferred.
	if n := diab.DiskIterationCount(); n != 4 {
		t.Errorf("diabolical iterations = %d, paper saw 4", n)
	}
	retransMB := float64(diab.RetransferredBlocks()) * blockdev.BlockSize / (1 << 20)
	if retransMB < 600 || retransMB > 2200 {
		t.Errorf("diabolical retransferred %.0f MB, paper saw ~1464", retransMB)
	}
	// post-copy durations: paper 349 ms (web) / 380 ms (stream).
	if pc := web.PostCopyTime; pc < 100*time.Millisecond || pc > time.Second {
		t.Errorf("web post-copy %v, paper saw 349 ms", pc)
	}
	if !strings.Contains(IterationDetail(results[0]).String(), "post-copy") {
		t.Error("IterationDetail rendering broken")
	}
}

func TestTableIIShape(t *testing.T) {
	primary, _ := TableI(1)
	ims, tab := TableII(primary)
	if len(ims) != 3 {
		t.Fatalf("TableII returned %d IM results", len(ims))
	}
	web, stream, diab := ims[0].Report, ims[1].Report, ims[2].Report

	// Paper Table II: IM 1.0 s & 52.5 MB / 0.6 s & 5.5 MB / 17 s & 911.4 MB.
	type band struct {
		name       string
		rep        func() (float64, float64)
		tLo, tHi   float64
		mbLo, mbHi float64
	}
	for _, b := range []band{
		{"web", func() (float64, float64) { return web.StorageTime().Seconds(), web.MigratedMB() }, 0.3, 4, 30, 90},
		{"stream", func() (float64, float64) { return stream.StorageTime().Seconds(), stream.MigratedMB() }, 0.2, 3, 2, 12},
		{"diabolical", func() (float64, float64) { return diab.StorageTime().Seconds(), diab.MigratedMB() }, 8, 30, 450, 1200},
	} {
		secs, mb := b.rep()
		if secs < b.tLo || secs > b.tHi {
			t.Errorf("%s IM storage time %.1f s outside [%.1f, %.1f]", b.name, secs, b.tLo, b.tHi)
		}
		if mb < b.mbLo || mb > b.mbHi {
			t.Errorf("%s IM amount %.1f MB outside [%.1f, %.1f]", b.name, mb, b.mbLo, b.mbHi)
		}
	}
	// The defining claim: IM moves orders of magnitude less than primary.
	for i := range ims {
		if ims[i].Report.MigratedBytes*10 > primary[i].Report.MigratedBytes {
			t.Errorf("IM %d moved %d bytes vs primary %d — not incremental",
				i, ims[i].Report.MigratedBytes, primary[i].Report.MigratedBytes)
		}
		if ims[i].Report.Scheme != "IM" {
			t.Errorf("scheme %q", ims[i].Report.Scheme)
		}
	}
	if !strings.Contains(tab.String(), "IM") {
		t.Error("table rendering broken")
	}
}

func TestIMIdleSingleIteration(t *testing.T) {
	p := Defaults(workload.Stream)
	p.DwellAfter = 5 * time.Minute
	r := RunTPM(p)
	im := r.RunIM()
	// With the guest idle on the way back, nothing gets re-dirtied: IM is
	// one iteration and retransfers nothing.
	if n := im.Report.DiskIterationCount(); n != 1 {
		t.Fatalf("idle IM took %d iterations", n)
	}
	if im.Report.RetransferredBlocks() != 0 {
		t.Fatal("idle IM retransferred blocks")
	}
	if im.Report.DiskIterations[0].Units != r.FreshBlocks() {
		t.Fatalf("IM sent %d blocks, fresh set is %d",
			im.Report.DiskIterations[0].Units, r.FreshBlocks())
	}
}

func TestTableIIIOverheadUnderOnePercentish(t *testing.T) {
	results, tab := TableIII(1<<16, 200000)
	if len(results) != 3 {
		t.Fatalf("%d rows", len(results))
	}
	for _, r := range results {
		// The paper reports <1%; allow scheduling noise either way but fail
		// if tracking costs real throughput.
		if r.OverheadPercent > 2 {
			t.Errorf("%s: tracking overhead %.2f%% — should be ~free", r.Test, r.OverheadPercent)
		}
		if r.NormalKBps <= 0 || r.TrackedKBps <= 0 {
			t.Errorf("%s: degenerate throughput %+v", r.Test, r)
		}
	}
	if !strings.Contains(tab.String(), "With writes tracked") {
		t.Error("table rendering broken")
	}
}

func TestFig5NoVisibleDip(t *testing.T) {
	r := Fig5(1)
	during := r.WorkloadSeries.Mean(r.MigStart, r.MigEnd)
	after := r.WorkloadSeries.Mean(r.MigEnd+time.Minute, r.MigEnd+10*time.Minute)
	if after == 0 {
		t.Fatal("no post-migration samples")
	}
	drop := 1 - during/after
	if drop > 0.10 || drop < -0.10 {
		t.Fatalf("web throughput changed %.1f%% during migration — paper shows no noticeable drop", drop*100)
	}
}

func TestFig6ImpactAndRateLimit(t *testing.T) {
	unl, lim := Fig6(1)
	impact := func(r *Result) float64 {
		free := r.WorkloadSeries.Mean(r.MigEnd+2*time.Minute, r.MigEnd+8*time.Minute)
		during := r.WorkloadSeries.Mean(r.MigStart, r.MigEnd)
		if free == 0 {
			t.Fatal("no free-running samples")
		}
		return 1 - during/free
	}
	iu, il := impact(unl), impact(lim)
	// Unlimited migration visibly hurts Bonnie++ (Fig. 6)...
	if iu < 0.05 {
		t.Errorf("unlimited impact only %.1f%% — Fig 6 shows a clear dip", iu*100)
	}
	// ...limiting the rate reduces the impact (§VI-C-3: "about 50%")...
	if il > iu*0.8 {
		t.Errorf("limited impact %.1f%% not clearly below unlimited %.1f%%", il*100, iu*100)
	}
	// ...at the cost of a longer pre-copy (§VI-C-3: "about 37% longer").
	ratio := lim.Report.PreCopyTime.Seconds() / unl.Report.PreCopyTime.Seconds()
	if ratio < 1.15 || ratio > 1.70 {
		t.Errorf("rate-limited pre-copy %.2fx unlimited, paper saw ~1.37x", ratio)
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := TableI(7)
	b, _ := TableI(7)
	for i := range a {
		if a[i].Report.TotalTime != b[i].Report.TotalTime ||
			a[i].Report.MigratedBytes != b[i].Report.MigratedBytes ||
			a[i].Report.Downtime != b[i].Report.Downtime {
			t.Fatalf("run %d not deterministic", i)
		}
	}
}

func TestLocalityTable(t *testing.T) {
	tab := LocalityStats()
	out := tab.String()
	for _, w := range []string{"kernel-build", "dynamic-web-server", "diabolical-server", "25.2%"} {
		if !strings.Contains(out, w) {
			t.Fatalf("locality table missing %q:\n%s", w, out)
		}
	}
}

func TestGranularityAblation(t *testing.T) {
	tab := GranularityAblation(32 << 30)
	out := tab.String()
	// Paper: 1 MB bitmap per 32 GB disk at 4 KiB blocks, 8 MB at 512 B.
	if !strings.Contains(out, "1.00 MiB") || !strings.Contains(out, "8.00 MiB") {
		t.Fatalf("granularity ablation wrong:\n%s", out)
	}
}

func TestCursorSemantics(t *testing.T) {
	g := workload.NewStreaming(1<<20, 1)
	c := newCursor(g)
	d1 := c.peekDemandBytes(10 * time.Second)
	d2 := c.peekDemandBytes(10 * time.Second)
	if d1 != d2 {
		t.Fatal("peek consumed events")
	}
	if d1 <= 0 {
		t.Fatal("no demand from streaming workload")
	}
	var n1 int
	c.advance(10*time.Second, func(a workload.Access) { n1++ })
	if n1 == 0 {
		t.Fatal("advance applied nothing")
	}
	var n2 int
	c.advance(10*time.Second, func(a workload.Access) { n2++ })
	if n2 == 0 {
		t.Fatal("second advance applied nothing")
	}
	// no event may be applied twice: total events in 20s equal a fresh count
	g2 := workload.NewStreaming(1<<20, 1)
	fresh := 0
	for {
		if g2.Next().At >= 20*time.Second {
			break
		}
		fresh++
	}
	if n1+n2 != fresh {
		t.Fatalf("cursor applied %d events, stream has %d", n1+n2, fresh)
	}
}

func TestIdleGenerator(t *testing.T) {
	c := newCursor(idleGenerator{})
	if c.peekDemandBytes(time.Hour) != 0 {
		t.Fatal("idle guest has demand")
	}
	applied := 0
	c.advance(time.Hour, func(workload.Access) { applied++ })
	if applied != 0 {
		t.Fatal("idle guest applied accesses")
	}
	if (idleGenerator{}).Name() == "" {
		t.Fatal("unnamed")
	}
}

func TestRunTPMAccountingInvariants(t *testing.T) {
	p := Defaults(workload.Web)
	p.DwellAfter = time.Minute
	r := RunTPM(p)
	rep := r.Report
	if rep.TotalTime != rep.PreCopyTime+rep.Downtime+rep.PostCopyTime {
		t.Fatalf("phase times don't sum: %v != %v + %v + %v",
			rep.TotalTime, rep.PreCopyTime, rep.Downtime, rep.PostCopyTime)
	}
	var iterBytes int64
	for _, it := range rep.DiskIterations {
		iterBytes += it.Bytes
	}
	if rep.MigratedBytes < iterBytes {
		t.Fatal("amount excludes iteration payloads")
	}
	if rep.MemBytesMoved < rep.MemoryBytes {
		t.Fatal("memory pre-copy moved less than one full pass")
	}
	if rep.DiskIterations[0].Units != p.DiskMB<<20/blockdev.BlockSize {
		t.Fatal("first iteration didn't send the whole disk")
	}
}

func TestDowntimeVsGranularity(t *testing.T) {
	tab := DowntimeVsGranularity(workload.Web, 1)
	out := tab.String()
	if !strings.Contains(out, "512 B sector") || !strings.Contains(out, "4 KiB block") {
		t.Fatalf("sweep missing rows:\n%s", out)
	}
	// The 512B row's downtime must exceed the 4KiB row's by roughly the
	// extra 8.3 MiB of bitmap at ~49 MiB/s ≈ 160 ms.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var ms4k, ms512 int
	for _, ln := range lines {
		var bm float64
		var xferMS, dtMS int
		if n, _ := fmt.Sscanf(ln, "4 KiB block  %f  %d ms  %d ms", &bm, &xferMS, &dtMS); n == 3 {
			ms4k = dtMS
		}
		if n, _ := fmt.Sscanf(ln, "512 B sector  %f  %d ms  %d ms", &bm, &xferMS, &dtMS); n == 3 {
			ms512 = dtMS
		}
	}
	if ms4k == 0 || ms512 == 0 {
		t.Fatalf("could not parse sweep:\n%s", out)
	}
	if ms512 <= ms4k+100 {
		t.Fatalf("512B downtime %d ms not clearly above 4KiB %d ms:\n%s", ms512, ms4k, out)
	}
}

func TestSchemeComparison(t *testing.T) {
	tab := SchemeComparison(workload.Web, 1)
	out := tab.String()
	for _, want := range []string{"freeze-and-copy", "on-demand", "delta forward", "TPM"} {
		if !strings.Contains(out, want) {
			t.Fatalf("comparison missing %q:\n%s", want, out)
		}
	}
	// Freeze-and-copy's downtime must be catastrophic (~whole transfer,
	// >700 s at paper scale) while TPM's stays in milliseconds.
	if !strings.Contains(out, "unbounded") {
		t.Fatalf("on-demand residual dependency not flagged:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	var fcLine, tpmLine string
	for _, ln := range lines {
		if strings.HasPrefix(ln, "freeze-and-copy") {
			fcLine = ln
		}
		if strings.HasPrefix(ln, "TPM") {
			tpmLine = ln
		}
	}
	var fcS float64
	if _, err := fmt.Sscanf(strings.Fields(fcLine)[2], "%f", &fcS); err != nil || fcS < 700 {
		t.Fatalf("freeze-and-copy downtime %v (line %q)", fcS, fcLine)
	}
	if !strings.Contains(tpmLine, "ms") {
		t.Fatalf("TPM downtime not in ms: %q", tpmLine)
	}
}

// TestTableIRobustAcrossSeeds re-runs Table I with different workload seeds
// and requires the headline orderings to hold every time — the calibration
// must not depend on one lucky random stream.
func TestTableIRobustAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{2, 3, 5} {
		results, _ := TableI(seed)
		web, stream, diab := results[0].Report, results[1].Report, results[2].Report
		if !(diab.TotalTime > web.TotalTime) || !(diab.TotalTime > stream.TotalTime) {
			t.Errorf("seed %d: diabolical not slowest", seed)
		}
		if !(diab.Downtime > web.Downtime) {
			t.Errorf("seed %d: diabolical downtime not largest", seed)
		}
		if !(diab.MigratedBytes > web.MigratedBytes) {
			t.Errorf("seed %d: diabolical amount not largest", seed)
		}
		for i, r := range results {
			if ms := r.Report.Downtime.Milliseconds(); ms < 30 || ms > 200 {
				t.Errorf("seed %d workload %d: downtime %d ms out of band", seed, i, ms)
			}
			if s := r.Report.TotalTime.Seconds(); s < 650 || s > 1200 {
				t.Errorf("seed %d workload %d: total %.0f s out of band", seed, i, s)
			}
		}
	}
}

// TestStreamSweep checks the parallel-transfer model: with a per-frame
// stall, coalescing and striping must each recover transfer time, and the
// defaults (no stall) must leave the calibrated results untouched.
func TestStreamSweep(t *testing.T) {
	results, tab := StreamSweep(1)
	if len(results) != 6 {
		t.Fatalf("StreamSweep returned %d results", len(results))
	}
	oneStream := results[0].Report.TotalTime  // 1 stream, per-block
	fourStream := results[2].Report.TotalTime // 4 streams, per-block
	coalesced := results[4].Report.TotalTime  // 1 stream, 64-block extents
	if !(fourStream < oneStream) {
		t.Errorf("4 streams (%v) not faster than 1 (%v) under per-frame stall", fourStream, oneStream)
	}
	if !(coalesced < oneStream) {
		t.Errorf("coalescing (%v) not faster than per-block (%v) under per-frame stall", coalesced, oneStream)
	}
	if !strings.Contains(tab.String(), "Striped") {
		t.Error("sweep table rendering broken")
	}

	// Defaults (FrameLatency 0) must reproduce the calibrated paper band
	// regardless of the new knobs' zero values.
	p := Defaults(workload.Web)
	p.DwellAfter = time.Minute
	r := RunTPM(p)
	if s := r.Report.TotalTime.Seconds(); s < 700 || s > 900 {
		t.Errorf("default TPM total %.0f s left the calibrated band", s)
	}
}

// TestSimEventStream verifies the simulator emits the engine's event
// vocabulary in pipeline order on the virtual timeline.
func TestSimEventStream(t *testing.T) {
	p := Defaults(workload.Web)
	p.DiskMB, p.MemMB = 512, 32
	p.DwellAfter = time.Minute
	var phases []string
	var kinds []core.EventKind
	var lastAt time.Duration
	p.OnEvent = func(ev core.Event) {
		if ev.At < lastAt {
			t.Fatalf("event time went backwards: %v after %v", ev.At, lastAt)
		}
		lastAt = ev.At
		kinds = append(kinds, ev.Kind)
		if ev.Kind == core.EventPhaseStart {
			phases = append(phases, ev.Phase)
		}
	}
	RunTPM(p)
	want := []string{core.PhaseDiskPreCopy, core.PhaseMemPreCopy, core.PhaseFreezeCopy, core.PhasePostCopy}
	if strings.Join(phases, ",") != strings.Join(want, ",") {
		t.Fatalf("phases %v, want %v", phases, want)
	}
	var sawIter, sawSuspend, sawResume, sawDone bool
	for _, k := range kinds {
		switch k {
		case core.EventIterationEnd:
			sawIter = true
		case core.EventSuspended:
			sawSuspend = true
		case core.EventResumed:
			sawResume = true
		case core.EventCompleted:
			sawDone = true
		}
	}
	if !sawIter || !sawSuspend || !sawResume || !sawDone {
		t.Fatalf("missing lifecycle events: iter=%v suspend=%v resume=%v done=%v",
			sawIter, sawSuspend, sawResume, sawDone)
	}
}

// TestSimAdaptiveBeatsDefault is the modeled-link acceptance scenario at
// paper scale: with the per-frame stall modelled, the adaptive slow-start
// must beat the fixed per-block default and land within reach of the
// hand-tuned 64-block extent.
func TestSimAdaptiveBeatsDefault(t *testing.T) {
	results, _ := AdaptiveSweep(1)
	def, fixed64, adaptive := results[0].Report, results[1].Report, results[2].Report
	if adaptive.TotalTime >= def.TotalTime {
		t.Fatalf("adaptive total %v not better than default %v", adaptive.TotalTime, def.TotalTime)
	}
	// The slow-start must recover most of the hand-tuned fixed extent's win.
	if adaptive.TotalTime > fixed64.TotalTime*3/2 {
		t.Fatalf("adaptive total %v far behind hand-tuned %v", adaptive.TotalTime, fixed64.TotalTime)
	}
	if adaptive.Downtime > 10*def.Downtime {
		t.Fatalf("adaptive downtime regressed: %v vs %v", adaptive.Downtime, def.Downtime)
	}
}

// TestOutageResume: an injected outage must register as a retry, re-send a
// bounded amount (at most the interrupted iteration), stretch the migration
// by at least the outage window, and leave the converged outcome intact.
func TestOutageResume(t *testing.T) {
	base := Defaults(workload.Web)
	base.DwellAfter = time.Minute
	clean := RunTPM(base)

	p := base
	p.OutageAt = clean.MigStart + (clean.MigEnd-clean.MigStart)/2
	p.OutageDuration = 10 * time.Second
	r := RunTPM(p)

	if r.Report.Retries != 1 {
		t.Fatalf("retries = %d, want 1", r.Report.Retries)
	}
	if r.Report.ResentBytes <= 0 {
		t.Fatal("no bytes re-sent despite a mid-iteration outage")
	}
	cleanDur := clean.MigEnd - clean.MigStart
	faultDur := r.MigEnd - r.MigStart
	if faultDur < cleanDur+p.OutageDuration/2 {
		t.Fatalf("outage did not lengthen the migration: %v vs clean %v", faultDur, cleanDur)
	}
	// Resume must beat restart by a wide margin: the re-sent bytes stay a
	// small fraction of the full transfer.
	total := float64(clean.Report.MigratedBytes + clean.Report.MemBytesMoved)
	if f := float64(r.Report.ResentBytes) / total; f > 0.5 {
		t.Fatalf("re-sent %.0f%% of a full transfer; resume should rewind one iteration", f*100)
	}
}

// TestOutageZeroDisabled: the default parameters never arm the fault path.
func TestOutageZeroDisabled(t *testing.T) {
	p := Defaults(workload.Web)
	p.DwellAfter = time.Minute
	r := RunTPM(p)
	if r.Report.Retries != 0 || r.Report.ResentBytes != 0 {
		t.Fatalf("fault-free run recorded retries=%d resent=%d", r.Report.Retries, r.Report.ResentBytes)
	}
}

// TestFaultSweepShape: three rows, deterministic, and the resume arm always
// moves fewer wire bytes than the restart arm.
func TestFaultSweepShape(t *testing.T) {
	results, tab := FaultSweep(1)
	if len(results) != 3 || len(tab.Rows) != 3 {
		t.Fatalf("sweep produced %d results / %d rows", len(results), len(tab.Rows))
	}
	again, _ := FaultSweep(1)
	for i := range results {
		if results[i].Report.MigratedBytes != again[i].Report.MigratedBytes ||
			results[i].Report.Retries != again[i].Report.Retries {
			t.Fatalf("FaultSweep row %d not deterministic", i)
		}
		if results[i].Report.Retries < 1 {
			t.Fatalf("row %d: outage never fired", i)
		}
	}
}
