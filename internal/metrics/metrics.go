// Package metrics defines the measurement vocabulary of the paper's §III-A:
// downtime, disruption time, total migration time, amount of migrated data,
// and performance overhead — plus per-iteration detail and throughput time
// series for regenerating the evaluation's tables and figures.
package metrics

import (
	"fmt"
	"strings"
	"time"
)

// Iteration describes one pre-copy iteration (disk or memory).
type Iteration struct {
	Index    int           // 1-based iteration number
	Units    int           // blocks or pages transferred
	Bytes    int64         // wire bytes of the payloads
	Duration time.Duration // time the iteration took
	DirtyEnd int           // dirty units accumulated when the iteration ended
}

// Report aggregates everything a migration run measured. Scheme identifies
// the algorithm (TPM, IM, freeze-and-copy, on-demand, delta-forward) and
// Workload the driving load.
type Report struct {
	Scheme   string
	Workload string

	DiskBytes   int64 // VBD capacity
	MemoryBytes int64 // guest RAM size

	TotalTime    time.Duration // start → fully synchronized (§III-A)
	PreCopyTime  time.Duration // disk+memory pre-copy phases
	Downtime     time.Duration // VM paused → resumed
	PostCopyTime time.Duration // resume → fully synchronized

	MigratedBytes int64 // wire bytes in both directions
	MemBytesMoved int64 // memory-page wire bytes (reported separately when
	// matching the paper's Table I accounting, which counts disk data only)

	DiskIterations []Iteration
	MemIterations  []Iteration

	Retries     int   // connection failures survived by resuming the session
	ResentBytes int64 // wire bytes re-sent because a failure rewound an iteration

	DedupBlocks int // disk blocks materialized by reference (or zero-elided) instead of retransmitted
	SwarmBlocks int // disk blocks whose content arrived from swarm peers instead of the source
	DeltaBlocks int // disk blocks that travelled as COPY/LITERAL patches instead of literals

	BlocksPushed  int           // post-copy blocks pushed by the source
	BlocksPulled  int           // post-copy blocks pulled on demand
	StalePushes   int           // pushed blocks dropped (superseded by local writes)
	ReadStallTime time.Duration // total destination read time spent waiting on pulls
	IOBlockedTime time.Duration // destination I/O blocked for delta replay (Bradford baseline)

	ResidualDirty int // blocks never synchronized (on-demand baseline's residual dependency)
}

// StorageTime sums the disk pre-copy iterations and the post-copy phase —
// the "storage migration time" accounting the paper's Table II uses (its IM
// rows of 0.6-17 s cannot include the 512 MB memory pre-copy).
func (r *Report) StorageTime() time.Duration {
	total := r.PostCopyTime
	for _, it := range r.DiskIterations {
		total += it.Duration
	}
	return total
}

// RetransferredBlocks sums the disk blocks sent after the first iteration —
// the redundancy the paper reports ("6680 blocks have been retransferred").
func (r *Report) RetransferredBlocks() int {
	total := 0
	for _, it := range r.DiskIterations {
		if it.Index > 1 {
			total += it.Units
		}
	}
	return total
}

// DiskIterationCount returns how many disk pre-copy iterations ran.
func (r *Report) DiskIterationCount() int { return len(r.DiskIterations) }

// MigratedMB returns the amount of migrated data in the paper's MB units.
func (r *Report) MigratedMB() float64 { return float64(r.MigratedBytes) / (1 << 20) }

// String renders the report in the shape of the paper's Table I rows.
func (r *Report) String() string {
	var b strings.Builder
	if r.Workload != "" {
		fmt.Fprintf(&b, "%s / %s:\n", r.Scheme, r.Workload)
	} else {
		fmt.Fprintf(&b, "%s:\n", r.Scheme)
	}
	fmt.Fprintf(&b, "  total migration time : %.1f s\n", r.TotalTime.Seconds())
	fmt.Fprintf(&b, "  downtime             : %d ms\n", r.Downtime.Milliseconds())
	fmt.Fprintf(&b, "  amount migrated      : %.0f MB\n", r.MigratedMB())
	fmt.Fprintf(&b, "  disk iterations      : %d (retransferred %d blocks)\n",
		r.DiskIterationCount(), r.RetransferredBlocks())
	fmt.Fprintf(&b, "  post-copy            : %.0f ms (%d pushed, %d pulled, %d stale)\n",
		r.PostCopyTime.Seconds()*1000, r.BlocksPushed, r.BlocksPulled, r.StalePushes)
	if r.DedupBlocks > 0 {
		fmt.Fprintf(&b, "  dedup                : %d blocks by reference\n", r.DedupBlocks)
	}
	if r.SwarmBlocks > 0 {
		fmt.Fprintf(&b, "  swarm                : %d blocks fetched from peers\n", r.SwarmBlocks)
	}
	if r.DeltaBlocks > 0 {
		fmt.Fprintf(&b, "  delta                : %d blocks as patches\n", r.DeltaBlocks)
	}
	return b.String()
}

// Sample is one point of a throughput time series.
type Sample struct {
	At    time.Duration
	Value float64
}

// Series is a labelled throughput-over-time curve (Figures 5 and 6).
type Series struct {
	Label   string
	Unit    string
	Samples []Sample
}

// Add appends a sample.
func (s *Series) Add(at time.Duration, v float64) {
	s.Samples = append(s.Samples, Sample{At: at, Value: v})
}

// Mean returns the average sample value over [from, to).
func (s *Series) Mean(from, to time.Duration) float64 {
	sum, n := 0.0, 0
	for _, p := range s.Samples {
		if p.At >= from && p.At < to {
			sum += p.Value
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Min returns the smallest sample value over [from, to), or 0 if empty.
func (s *Series) Min(from, to time.Duration) float64 {
	first := true
	min := 0.0
	for _, p := range s.Samples {
		if p.At >= from && p.At < to {
			if first || p.Value < min {
				min = p.Value
				first = false
			}
		}
	}
	return min
}

// Render prints the series as aligned text rows, one per sample, suitable
// for regenerating a figure by eye or by plotting tool.
func (s *Series) Render(w *strings.Builder) {
	fmt.Fprintf(w, "# %s (%s)\n", s.Label, s.Unit)
	for _, p := range s.Samples {
		fmt.Fprintf(w, "%8.0f  %10.2f\n", p.At.Seconds(), p.Value)
	}
}

// Table renders labelled rows with a header, used by the bench harness to
// print paper-table lookalikes.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
