package metrics

import (
	"math"
	"testing"
)

// TestStreamStats checks the single-pass moments against direct computation
// and the Merge combine against one sequential pass.
func TestStreamStats(t *testing.T) {
	var empty StreamStats
	if empty.Count() != 0 || empty.Mean() != 0 || empty.Std() != 0 || empty.Min() != 0 || empty.Max() != 0 {
		t.Fatalf("zero value not empty: %+v", empty)
	}

	// A deterministic, not-too-nice sequence.
	var xs []float64
	x := 0.5
	for i := 0; i < 1000; i++ {
		x = 3.9 * x * (1 - x) // logistic map: chaotic but reproducible
		xs = append(xs, 100*x-25)
	}

	var s StreamStats
	var sum float64
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range xs {
		s.Add(v)
		sum += v
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	mean := sum / float64(len(xs))
	var m2 float64
	for _, v := range xs {
		m2 += (v - mean) * (v - mean)
	}
	std := math.Sqrt(m2 / float64(len(xs)))

	if s.Count() != int64(len(xs)) {
		t.Fatalf("Count = %d, want %d", s.Count(), len(xs))
	}
	if math.Abs(s.Mean()-mean) > 1e-9 {
		t.Fatalf("Mean = %g, want %g", s.Mean(), mean)
	}
	if math.Abs(s.Std()-std) > 1e-9 {
		t.Fatalf("Std = %g, want %g", s.Std(), std)
	}
	if s.Min() != min || s.Max() != max {
		t.Fatalf("Min/Max = %g/%g, want %g/%g", s.Min(), s.Max(), min, max)
	}

	// Merging two halves must equal the single pass, and merging an empty
	// accumulator either way must be a no-op.
	var a, b StreamStats
	for i, v := range xs {
		if i < len(xs)/3 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if a.Count() != s.Count() || math.Abs(a.Mean()-s.Mean()) > 1e-9 || math.Abs(a.Std()-s.Std()) > 1e-9 ||
		a.Min() != s.Min() || a.Max() != s.Max() {
		t.Fatalf("merged halves %+v != sequential %+v", a, s)
	}
	before := a
	a.Merge(&empty)
	if a != before {
		t.Fatalf("merging empty changed state: %+v -> %+v", before, a)
	}
	empty.Merge(&a)
	if empty != a {
		t.Fatalf("merge into empty != copy: %+v vs %+v", empty, a)
	}
}
