package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// LatencyTracker measures per-request service latency in labelled windows,
// quantifying the paper's §III-A *disruption time*: "the time interval
// during which clients connecting to the services running in the migrated
// VM observe degradation of service responsiveness — requests by the client
// take longer response time". Record every request with the window active at
// the time ("before" / "migrating" / "after"); compare the distributions to
// bound the disruption.
type LatencyTracker struct {
	mu      sync.Mutex
	window  string
	samples map[string][]time.Duration
}

// NewLatencyTracker returns a tracker starting in the given window.
func NewLatencyTracker(window string) *LatencyTracker {
	return &LatencyTracker{window: window, samples: map[string][]time.Duration{}}
}

// SetWindow switches the active window label.
func (l *LatencyTracker) SetWindow(w string) {
	l.mu.Lock()
	l.window = w
	l.mu.Unlock()
}

// Window returns the active window label.
func (l *LatencyTracker) Window() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.window
}

// Record files one request latency under the active window.
func (l *LatencyTracker) Record(d time.Duration) {
	l.mu.Lock()
	l.samples[l.window] = append(l.samples[l.window], d)
	l.mu.Unlock()
}

// Count returns how many samples the window holds.
func (l *LatencyTracker) Count(window string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.samples[window])
}

// Percentile returns the p-quantile (0 < p ≤ 1) of a window's latencies, or
// 0 if the window is empty.
func (l *LatencyTracker) Percentile(window string, p float64) time.Duration {
	l.mu.Lock()
	s := append([]time.Duration(nil), l.samples[window]...)
	l.mu.Unlock()
	if len(s) == 0 {
		return 0
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p*float64(len(s))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Max returns the largest latency in a window.
func (l *LatencyTracker) Max(window string) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	var max time.Duration
	for _, d := range l.samples[window] {
		if d > max {
			max = d
		}
	}
	return max
}

// Summary renders one line per window with p50/p99/max.
func (l *LatencyTracker) Summary() string {
	l.mu.Lock()
	windows := make([]string, 0, len(l.samples))
	for w := range l.samples {
		windows = append(windows, w)
	}
	l.mu.Unlock()
	sort.Strings(windows)
	out := ""
	for _, w := range windows {
		out += fmt.Sprintf("%-10s n=%-6d p50=%-10v p99=%-10v max=%v\n",
			w, l.Count(w), l.Percentile(w, 0.5), l.Percentile(w, 0.99), l.Max(w))
	}
	return out
}
