package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestRetransferredBlocks(t *testing.T) {
	r := Report{
		DiskIterations: []Iteration{
			{Index: 1, Units: 10000},
			{Index: 2, Units: 6000},
			{Index: 3, Units: 680},
		},
	}
	if got := r.RetransferredBlocks(); got != 6680 {
		t.Fatalf("RetransferredBlocks = %d", got)
	}
	if r.DiskIterationCount() != 3 {
		t.Fatal("iteration count wrong")
	}
}

func TestMigratedMB(t *testing.T) {
	r := Report{MigratedBytes: 39097 << 20}
	if got := r.MigratedMB(); got != 39097 {
		t.Fatalf("MigratedMB = %f", got)
	}
}

func TestReportString(t *testing.T) {
	r := Report{
		Scheme:        "TPM",
		Workload:      "web",
		TotalTime:     796 * time.Second,
		Downtime:      60 * time.Millisecond,
		MigratedBytes: 100 << 20,
		BlocksPushed:  61,
		BlocksPulled:  1,
	}
	s := r.String()
	for _, want := range []string{"TPM", "web", "796.0 s", "60 ms", "100 MB", "61 pushed, 1 pulled"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report %q missing %q", s, want)
		}
	}
}

func TestSeriesStats(t *testing.T) {
	var s Series
	s.Label, s.Unit = "throughput", "MB/s"
	for i := 0; i < 10; i++ {
		s.Add(time.Duration(i)*time.Second, float64(i))
	}
	if got := s.Mean(0, 10*time.Second); got != 4.5 {
		t.Fatalf("Mean = %f", got)
	}
	if got := s.Mean(2*time.Second, 4*time.Second); got != 2.5 {
		t.Fatalf("windowed Mean = %f", got)
	}
	if got := s.Min(3*time.Second, 8*time.Second); got != 3 {
		t.Fatalf("Min = %f", got)
	}
	if got := s.Min(20*time.Second, 30*time.Second); got != 0 {
		t.Fatalf("empty Min = %f", got)
	}
	if got := s.Mean(20*time.Second, 30*time.Second); got != 0 {
		t.Fatalf("empty Mean = %f", got)
	}
	var b strings.Builder
	s.Render(&b)
	if !strings.Contains(b.String(), "throughput") || len(strings.Split(b.String(), "\n")) < 10 {
		t.Fatal("Render output malformed")
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{
		Title:   "TABLE I",
		Columns: []string{"metric", "web", "stream"},
	}
	tb.AddRow("total (s)", "796", "798")
	tb.AddRow("downtime (ms)", "60", "62")
	out := tb.String()
	if !strings.Contains(out, "TABLE I") || !strings.Contains(out, "downtime (ms)") {
		t.Fatalf("table output %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	// columns aligned: header and first row start of col2 must match
	hdr, row := lines[1], lines[3]
	if strings.Index(hdr, "web") != strings.Index(row, "796") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestLatencyTracker(t *testing.T) {
	l := NewLatencyTracker("before")
	if l.Window() != "before" {
		t.Fatal("initial window wrong")
	}
	for i := 1; i <= 100; i++ {
		l.Record(time.Duration(i) * time.Millisecond)
	}
	l.SetWindow("migrating")
	for i := 1; i <= 10; i++ {
		l.Record(time.Duration(i*10) * time.Millisecond)
	}
	if l.Count("before") != 100 || l.Count("migrating") != 10 || l.Count("after") != 0 {
		t.Fatalf("counts wrong: %d %d", l.Count("before"), l.Count("migrating"))
	}
	if got := l.Percentile("before", 0.5); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := l.Percentile("before", 1.0); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
	if got := l.Percentile("empty", 0.5); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	if got := l.Max("migrating"); got != 100*time.Millisecond {
		t.Fatalf("max = %v", got)
	}
	s := l.Summary()
	if !strings.Contains(s, "before") || !strings.Contains(s, "migrating") {
		t.Fatalf("summary %q", s)
	}
}

func TestLatencyTrackerConcurrent(t *testing.T) {
	l := NewLatencyTracker("w")
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				l.Record(time.Microsecond)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if l.Count("w") != 4000 {
		t.Fatalf("Count = %d", l.Count("w"))
	}
}

func TestStorageTimeSumsDiskPhases(t *testing.T) {
	r := Report{
		PostCopyTime: 500 * time.Millisecond,
		DiskIterations: []Iteration{
			{Duration: 10 * time.Second},
			{Duration: 2 * time.Second},
		},
		MemIterations: []Iteration{{Duration: time.Hour}},
	}
	if got := r.StorageTime(); got != 12*time.Second+500*time.Millisecond {
		t.Fatalf("StorageTime = %v", got)
	}
}
