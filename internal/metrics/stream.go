package metrics

import "math"

// StreamStats is a single-pass (Welford) accumulator for a stream of
// values: count, mean, variance, min, and max in O(1) memory. The fleet
// simulator aggregates per-domain outcomes at 10k-domain scale through it
// instead of materializing per-domain time series; anything that wants a
// distribution summary without keeping samples can use it.
//
// The zero value is an empty accumulator ready for Add. StreamStats is not
// safe for concurrent use; Merge combines independently filled accumulators.
type StreamStats struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add folds one value into the accumulator.
func (s *StreamStats) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.mean, s.m2 = x, 0
		s.min, s.max = x, x
		return
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
}

// Merge folds another accumulator's state into this one (Chan et al.'s
// parallel combine), leaving o unchanged.
func (s *StreamStats) Merge(o *StreamStats) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	d := o.mean - s.mean
	s.m2 += o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	s.mean += d * float64(o.n) / float64(n)
	s.n = n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// Count returns how many values were added.
func (s *StreamStats) Count() int64 { return s.n }

// Mean returns the running mean (zero when empty).
func (s *StreamStats) Mean() float64 { return s.mean }

// Std returns the population standard deviation (zero when empty).
func (s *StreamStats) Std() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n))
}

// Min returns the smallest value seen (zero when empty).
func (s *StreamStats) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest value seen (zero when empty).
func (s *StreamStats) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}
