package dedup

import (
	"fmt"
	"sync"
)

// BlockReader is the slice of blockdev.Device an Index needs from a content
// source: random-access block reads plus shape. blockdev.MemDisk and
// blockdev.FileDisk both satisfy it.
type BlockReader interface {
	// ReadBlock copies block n into buf (len(buf) == BlockSize()).
	ReadBlock(n int, buf []byte) error
	// NumBlocks is the device size in blocks.
	NumBlocks() int
	// BlockSize is the block size in bytes.
	BlockSize() int
}

// loc names where one fingerprint's content can be read back: a block of a
// registered source.
type loc struct {
	source string
	block  int
}

// Index maps block fingerprints to locations where the content can be read
// back — the destination side of content-addressed transfer. Sources are
// named block devices (retained peer copies, hosted clone disks, the live
// VBD of an in-flight migration); entries are observations "source S held
// content H at block N when we looked".
//
// Observations are advisory: guest writes move content underneath the index
// all the time. Lookup therefore re-reads and re-hashes the candidate block
// before claiming the content, evicting entries that no longer verify, so
// the worst a stale (or corrupt-loaded) index can cause is a literal send
// that deduplication would have saved — never wrong bytes.
//
// An Index is safe for concurrent use and is meant to be shared: one
// hostd.Machine maintains one index across every inbound migration and
// pre-sync it serves.
type Index struct {
	mu        sync.Mutex
	blockSize int
	zero      Fingerprint
	sources   map[string]BlockReader
	entries   map[Fingerprint]loc
	rev       map[string]map[int]Fingerprint // source → block → observed fp
}

// NewIndex returns an empty index for devices of the given block size.
func NewIndex(blockSize int) *Index {
	if blockSize <= 0 {
		panic(fmt.Sprintf("dedup: block size %d", blockSize))
	}
	return &Index{
		blockSize: blockSize,
		zero:      ZeroFingerprint(blockSize),
		sources:   make(map[string]BlockReader),
		entries:   make(map[Fingerprint]loc),
		rev:       make(map[string]map[int]Fingerprint),
	}
}

// BlockSize returns the block size the index was built for.
func (ix *Index) BlockSize() int { return ix.blockSize }

// Len reports how many fingerprints are currently indexed (the implicit
// zero fingerprint not counted).
func (ix *Index) Len() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return len(ix.entries)
}

// RegisterSource makes (or re-makes) a named device available for lookups.
// Entries previously loaded or observed under the same name become
// resolvable again; registering does not scan — call ScanSource for that.
func (ix *Index) RegisterSource(name string, dev BlockReader) error {
	if dev.BlockSize() != ix.blockSize {
		return fmt.Errorf("dedup: source %q block size %d, index %d", name, dev.BlockSize(), ix.blockSize)
	}
	ix.mu.Lock()
	ix.sources[name] = dev
	ix.mu.Unlock()
	return nil
}

// HasSource reports whether a source of that name is registered.
func (ix *Index) HasSource(name string) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	_, ok := ix.sources[name]
	return ok
}

// DropSource unregisters a source and evicts every entry observed on it.
func (ix *Index) DropSource(name string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	delete(ix.sources, name)
	for block, fp := range ix.rev[name] {
		if l, ok := ix.entries[fp]; ok && l.source == name && l.block == block {
			delete(ix.entries, fp)
		}
	}
	delete(ix.rev, name)
}

// Observe records that the named source held content fp at block. Zero
// fingerprints are not stored (the zero block is implicit); an overwrite of
// a block retracts the entry its previous content claimed there.
func (ix *Index) Observe(source string, block int, fp Fingerprint) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.observeLocked(source, block, fp)
}

func (ix *Index) observeLocked(source string, block int, fp Fingerprint) {
	blocks := ix.rev[source]
	if blocks == nil {
		blocks = make(map[int]Fingerprint)
		ix.rev[source] = blocks
	}
	if prev, ok := blocks[block]; ok && prev != fp {
		if l, ok := ix.entries[prev]; ok && l.source == source && l.block == block {
			delete(ix.entries, prev)
		}
	}
	if fp == ix.zero {
		delete(blocks, block)
		return
	}
	blocks[block] = fp
	ix.entries[fp] = loc{source, block}
}

// ScanSource fingerprints every block of a registered source and records the
// observations, returning how many non-zero blocks it indexed. Call it once
// when a retained or clone disk first joins the index; later migrations keep
// the index warm through their own observations.
func (ix *Index) ScanSource(name string) (int, error) {
	ix.mu.Lock()
	dev := ix.sources[name]
	ix.mu.Unlock()
	if dev == nil {
		return 0, fmt.Errorf("dedup: scan of unregistered source %q", name)
	}
	return ix.ScanReader(name, dev)
}

// ScanReader fingerprints every block of r and records the observations
// under source name, like ScanSource, but reading from a caller-supplied
// view instead of the registered device. Hosts pass a frozen snapshot of a
// live volume here: the scan comes off the guest's hot path and observes a
// consistent image, while lookups still verify against the registered live
// device, so an observation the guest overwrites mid-scan simply misses
// later (it can never resolve to wrong bytes).
func (ix *Index) ScanReader(name string, r BlockReader) (int, error) {
	buf := make([]byte, ix.blockSize)
	indexed := 0
	for n := 0; n < r.NumBlocks(); n++ {
		if err := r.ReadBlock(n, buf); err != nil {
			return indexed, err
		}
		fp := Of(buf)
		if fp == ix.zero {
			continue
		}
		ix.Observe(name, n, fp)
		indexed++
	}
	return indexed, nil
}

// Lookup materializes the content behind fp, or reports that the index
// cannot. The zero fingerprint always succeeds. Any other hit re-reads the
// recorded block and re-hashes it; a mismatch (the block was overwritten
// since the observation) evicts the entry and reports a miss, so callers
// can trust returned bytes unconditionally. The returned slice is freshly
// allocated and the caller's to keep.
func (ix *Index) Lookup(fp Fingerprint) ([]byte, bool) {
	if fp == ix.zero {
		return make([]byte, ix.blockSize), true
	}
	ix.mu.Lock()
	l, ok := ix.entries[fp]
	var dev BlockReader
	if ok {
		dev = ix.sources[l.source]
	}
	ix.mu.Unlock()
	if !ok || dev == nil {
		return nil, false
	}
	if l.block < 0 || l.block >= dev.NumBlocks() {
		ix.evict(fp, l)
		return nil, false
	}
	buf := make([]byte, ix.blockSize)
	if err := dev.ReadBlock(l.block, buf); err != nil {
		ix.evict(fp, l)
		return nil, false
	}
	if Of(buf) != fp {
		ix.evict(fp, l)
		return nil, false
	}
	return buf, true
}

// Answer is the destination's half of one MsgHashAdvert: every advertised
// fingerprint the index can produce (verified by Lookup's re-hash) is
// staged for the references that follow, and everything else gets its want
// bit set. Zero fingerprints are neither wanted nor staged — zeros are
// implicit. Both the engine's receive loop and ServeSync answer adverts
// through here, so the reply semantics cannot diverge.
func (ix *Index) Answer(fps []Fingerprint) (want []byte, stage map[Fingerprint][]byte) {
	want = make([]byte, WantLen(len(fps)))
	stage = make(map[Fingerprint][]byte)
	for k, fp := range fps {
		if fp == ix.zero {
			continue
		}
		if _, ok := stage[fp]; ok {
			continue
		}
		if content, ok := ix.Lookup(fp); ok {
			stage[fp] = content
		} else {
			SetWant(want, k)
		}
	}
	return want, stage
}

// Materialize resolves one MsgBlockRef fingerprint: staged content first
// (captured at advert time, so it cannot be overwritten underneath), the
// index (verify-on-read) as fallback, zeros implicitly. ok is false when
// the content cannot be produced — a protocol error for the caller, never
// a silent wrong write.
func (ix *Index) Materialize(stage map[Fingerprint][]byte, fp Fingerprint) (content []byte, ok bool) {
	if fp == ix.zero {
		return make([]byte, ix.blockSize), true
	}
	if c := stage[fp]; c != nil {
		return c, true
	}
	return ix.Lookup(fp)
}

// evict removes one entry if it still names the given location.
func (ix *Index) evict(fp Fingerprint, l loc) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if cur, ok := ix.entries[fp]; ok && cur == l {
		delete(ix.entries, fp)
		if blocks := ix.rev[l.source]; blocks != nil && blocks[l.block] == fp {
			delete(blocks, l.block)
		}
	}
}
