package dedup

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"

	"bbmig/internal/bitmap"
)

// Persisted index format, mirroring the checksum discipline of
// bitmap/persist.go: magic, CRC-32 (IEEE) of the body, then the body —
// block size, entry count, and per entry the fingerprint, source-name, and
// block number. A torn or bit-rotted file fails the checksum and loads as
// an error; callers treat that as an empty index, which degrades every
// advert to "want the literal" (a full send). The verify-on-Lookup rule
// makes even an *undetected* corruption safe: a wrong entry fails the
// re-hash and is evicted, so persistence can never produce wrong bytes.
var persistMagic = [4]byte{'B', 'B', 'D', '1'}

// MarshalBinary serializes the index's observations (sources themselves are
// live devices and are re-registered by the owner after a load).
// Body layout: blockSize(8) | entryCount(8) | per entry:
// fingerprint(16) nameLen(2) name block(8), entries in fingerprint order so
// the wire form is deterministic.
func (ix *Index) MarshalBinary() ([]byte, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	fps := make([]Fingerprint, 0, len(ix.entries))
	for fp := range ix.entries {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool {
		a, b := fps[i], fps[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	body := make([]byte, 16, 16+len(fps)*(FingerprintSize+10))
	binary.LittleEndian.PutUint64(body[0:], uint64(ix.blockSize))
	binary.LittleEndian.PutUint64(body[8:], uint64(len(fps)))
	for _, fp := range fps {
		l := ix.entries[fp]
		if len(l.source) > 0xFFFF {
			return nil, fmt.Errorf("dedup: source name %q too long", l.source[:32])
		}
		body = append(body, fp[:]...)
		var hdr [2]byte
		binary.LittleEndian.PutUint16(hdr[:], uint16(len(l.source)))
		body = append(body, hdr[:]...)
		body = append(body, l.source...)
		var blk [8]byte
		binary.LittleEndian.PutUint64(blk[:], uint64(l.block))
		body = append(body, blk[:]...)
	}
	out := make([]byte, 8, 8+len(body))
	copy(out, persistMagic[:])
	binary.LittleEndian.PutUint32(out[4:], crc32.ChecksumIEEE(body))
	return append(out, body...), nil
}

// LoadBytes deserializes an index persisted by MarshalBinary. Any
// truncation, checksum mismatch, or structural inconsistency is an error —
// the caller starts from an empty index instead (full-send degradation).
// The loaded index has no registered sources; RegisterSource re-attaches
// the devices its entries reference, and entries whose source never
// re-registers simply miss on Lookup.
func LoadBytes(data []byte) (*Index, error) {
	if len(data) < 8+16 {
		return nil, fmt.Errorf("dedup: index truncated: %d bytes", len(data))
	}
	if [4]byte(data[:4]) != persistMagic {
		return nil, fmt.Errorf("dedup: bad index magic %q", data[:4])
	}
	body := data[8:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[4:]) {
		return nil, fmt.Errorf("dedup: index checksum mismatch (torn write?)")
	}
	blockSize := binary.LittleEndian.Uint64(body[0:])
	count := binary.LittleEndian.Uint64(body[8:])
	if blockSize == 0 || blockSize > 1<<30 {
		return nil, fmt.Errorf("dedup: index block size %d", blockSize)
	}
	const maxEntries = 1 << 28 // structural sanity; 4 GiB of entries is corruption
	if count > maxEntries {
		return nil, fmt.Errorf("dedup: index entry count %d", count)
	}
	ix := NewIndex(int(blockSize))
	off := 16
	for i := uint64(0); i < count; i++ {
		if len(body) < off+FingerprintSize+2 {
			return nil, fmt.Errorf("dedup: index entry %d truncated", i)
		}
		var fp Fingerprint
		copy(fp[:], body[off:])
		off += FingerprintSize
		nameLen := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if len(body) < off+nameLen+8 {
			return nil, fmt.Errorf("dedup: index entry %d truncated", i)
		}
		name := string(body[off : off+nameLen])
		off += nameLen
		block := int(int64(binary.LittleEndian.Uint64(body[off:])))
		off += 8
		if block < 0 {
			return nil, fmt.Errorf("dedup: index entry %d block %d", i, block)
		}
		if fp == ix.zero {
			continue // the zero block is implicit; a stored one is harmless noise
		}
		ix.observeLocked(name, block, fp) // single-threaded here; lock not needed but harmless
	}
	if off != len(body) {
		return nil, fmt.Errorf("dedup: index has %d trailing bytes", len(body)-off)
	}
	return ix, nil
}

// SaveFile persists the index atomically (temp + rename, checksummed), the
// discipline every migration persistence path shares.
func (ix *Index) SaveFile(path string) error {
	data, err := ix.MarshalBinary()
	if err != nil {
		return err
	}
	if err := bitmap.AtomicWriteFile(path, data); err != nil {
		return fmt.Errorf("dedup: save index: %w", err)
	}
	return nil
}

// LoadFile reads an index persisted by SaveFile. Corruption of any kind is
// an error; the caller degrades to an empty index (full send), never to
// wrong bytes.
func LoadFile(path string) (*Index, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dedup: load index: %w", err)
	}
	ix, err := LoadBytes(data)
	if err != nil {
		return nil, fmt.Errorf("dedup: load %s: %w", path, err)
	}
	return ix, nil
}
