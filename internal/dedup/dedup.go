// Package dedup implements content-addressed deduplication for the
// migration transfer path: per-block fingerprints, a destination-side
// fingerprint index over content the destination already holds (retained
// peer copies, disks of hosted clone siblings, blocks received earlier in
// the same migration, and the zero block), and the small payload encodings
// the dedup wire frames carry (fingerprint batches and want-bitmaps).
//
// The paper's block-bitmap (§IV-A-2) deduplicates positionally: a block
// dirtied many times ships once per iteration. This package deduplicates by
// content: a block whose bytes the destination can already produce — at any
// offset, from any retained disk — ships as a 16-byte reference instead of
// a 4 KiB literal, and all-zero blocks ship as references without even a
// round trip. The protocol on top (MsgHashAdvert / MsgHashWant /
// MsgBlockRef, see docs/WIRE.md §10) is negotiated; unconfigured peers keep
// the seed wire format.
//
// Safety model: the index is advisory, never trusted. Every Lookup re-reads
// the candidate block and re-hashes it before claiming the content, so
// stale entries (a source block overwritten since it was observed, a
// corrupt persisted index) degrade to "absent" — a full literal send —
// never to wrong bytes.
package dedup

import (
	"crypto/sha256"
	"fmt"
)

// FingerprintSize is the wire size of one block fingerprint: SHA-256
// truncated to 16 bytes (128 bits), collision-proof at any realistic fleet
// scale and small enough that a reference costs 1/256th of a 4 KiB literal.
const FingerprintSize = 16

// Fingerprint is the content hash of one disk block.
type Fingerprint [FingerprintSize]byte

// Of fingerprints one block's content.
func Of(data []byte) Fingerprint {
	sum := sha256.Sum256(data)
	var fp Fingerprint
	copy(fp[:], sum[:FingerprintSize])
	return fp
}

// IsZero reports whether data is all zero bytes (the candidate for
// zero-block elision).
func IsZero(data []byte) bool {
	for _, b := range data {
		if b != 0 {
			return false
		}
	}
	return true
}

// zeroFPs caches the zero-block fingerprint per block size.
var zeroFPs = map[int]Fingerprint{}

// ZeroFingerprint returns the fingerprint of an all-zero block of the given
// size. Every Index serves it without any observation: zero content is
// always materializable.
func ZeroFingerprint(blockSize int) Fingerprint {
	if fp, ok := zeroFPs[blockSize]; ok {
		return fp
	}
	return Of(make([]byte, blockSize))
}

func init() {
	// Pre-warm the common block size so the hot path never allocates a
	// scratch zero block (and the map is never written concurrently).
	zeroFPs[4096] = Of(make([]byte, 4096))
}

// AppendFingerprints appends the wire form of fps (FingerprintSize bytes
// each, in order) to buf — the MsgHashAdvert / MsgBlockRef payload encoding.
func AppendFingerprints(buf []byte, fps []Fingerprint) []byte {
	for i := range fps {
		buf = append(buf, fps[i][:]...)
	}
	return buf
}

// ParseFingerprints decodes a MsgHashAdvert / MsgBlockRef payload that must
// carry exactly count fingerprints.
func ParseFingerprints(payload []byte, count int) ([]Fingerprint, error) {
	if len(payload) != count*FingerprintSize {
		return nil, fmt.Errorf("dedup: fingerprint payload %d bytes, want %d×%d", len(payload), count, FingerprintSize)
	}
	fps := make([]Fingerprint, count)
	for i := range fps {
		copy(fps[i][:], payload[i*FingerprintSize:])
	}
	return fps, nil
}

// WantLen returns the MsgHashWant payload size for an advert of count
// blocks: one bit per block, LSB-first within each byte.
func WantLen(count int) int { return (count + 7) / 8 }

// SetWant marks block k of a want-bitmap as "send the literal".
func SetWant(buf []byte, k int) { buf[k/8] |= 1 << (k % 8) }

// Want reports whether block k of a want-bitmap asks for the literal.
func Want(buf []byte, k int) bool { return buf[k/8]&(1<<(k%8)) != 0 }

// ClearWant retracts block k's literal request from a want-bitmap — the
// destination does this after a swarm peer produced (and verification
// accepted) the block's content, leaving the source a reference to send.
func ClearWant(buf []byte, k int) { buf[k/8] &^= 1 << (k % 8) }

// WalkWant partitions an advertised extent into maximal same-verdict runs
// of its want-bitmap and calls fn once per run with the run's offset into
// the extent, its length, and whether the destination wants the literal —
// the one sender-side walk both the engine and the pre-sync path share, so
// the run framing cannot diverge between them.
func WalkWant(count int, want []byte, fn func(offset, n int, wanted bool) error) error {
	for k := 0; k < count; {
		wanted := Want(want, k)
		j := k + 1
		for j < count && Want(want, j) == wanted {
			j++
		}
		if err := fn(k, j-k, wanted); err != nil {
			return err
		}
		k = j
	}
	return nil
}
