package dedup

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"bbmig/internal/blockdev"
)

func scannedIndex(t *testing.T) (*Index, *blockdev.MemDisk) {
	t.Helper()
	disk := blockdev.NewMemDisk(32, blockdev.BlockSize)
	for n := 0; n < 32; n += 3 {
		fill(disk, n, byte(n+1))
	}
	ix := NewIndex(blockdev.BlockSize)
	if err := ix.RegisterSource("retained/web1", disk); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.ScanSource("retained/web1"); err != nil {
		t.Fatal(err)
	}
	return ix, disk
}

func TestIndexPersistRoundTrip(t *testing.T) {
	ix, disk := scannedIndex(t)
	path := filepath.Join(t.TempDir(), "index.bbdx")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	re, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != ix.Len() {
		t.Fatalf("reloaded %d entries, want %d", re.Len(), ix.Len())
	}
	if re.BlockSize() != blockdev.BlockSize {
		t.Fatalf("block size %d", re.BlockSize())
	}
	re.RegisterSource("retained/web1", disk)
	buf := make([]byte, blockdev.BlockSize)
	disk.ReadBlock(3, buf)
	if got, ok := re.Lookup(Of(buf)); !ok || !bytes.Equal(got, buf) {
		t.Fatal("reloaded entry does not resolve")
	}
}

// TestIndexPersistCorruption mirrors the bitmap persist suite: every flavour
// of file damage must load as an error (degrading the caller to full-send),
// never as an index claiming content it cannot verify.
func TestIndexPersistCorruption(t *testing.T) {
	ix, _ := scannedIndex(t)
	good, err := ix.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"magic only":     good[:4],
		"bad magic":      append([]byte{'X', 'X', 'X', 'X'}, good[4:]...),
		"truncated body": good[:len(good)-5],
		"trailing junk":  append(append([]byte{}, good...), 1, 2, 3),
	}
	// single bit flipped mid-body
	flipped := append([]byte{}, good...)
	flipped[len(flipped)/2] ^= 0x10
	cases["bit rot"] = flipped
	for name, data := range cases {
		if _, err := LoadBytes(data); err == nil {
			t.Errorf("%s: corrupt index loaded cleanly", name)
		}
	}
}

func TestIndexLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestIndexPersistTornWrite(t *testing.T) {
	ix, _ := scannedIndex(t)
	path := filepath.Join(t.TempDir(), "index.bbdx")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 9, len(data) / 2, len(data) - 1} {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadFile(path); err == nil {
			t.Fatalf("torn write at %d bytes loaded cleanly", cut)
		}
	}
}

// FuzzIndexLoad feeds attacker-shaped bytes to the index loader: it must
// never panic, and anything that does load must re-marshal to an equivalent
// index (the round-trip invariant). The safety property the engine relies
// on — corrupt indexes degrade to full-send, never wrong bytes — rests on
// Lookup's verify-on-read, which TestIndexLookupVerifies pins; this fuzz
// pins the parser itself.
func FuzzIndexLoad(f *testing.F) {
	disk := blockdev.NewMemDisk(16, blockdev.BlockSize)
	for n := 0; n < 16; n += 2 {
		fill(disk, n, byte(n+1))
	}
	ix := NewIndex(blockdev.BlockSize)
	ix.RegisterSource("seed", disk)
	ix.ScanSource("seed")
	good, _ := ix.MarshalBinary()
	f.Add(good)
	f.Add(good[:20])
	f.Add([]byte("BBD1garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := LoadBytes(data)
		if err != nil {
			return
		}
		re, err := loaded.MarshalBinary()
		if err != nil {
			t.Fatalf("loaded index failed to marshal: %v", err)
		}
		back, err := LoadBytes(re)
		if err != nil {
			t.Fatalf("re-marshalled index failed to load: %v", err)
		}
		if back.Len() != loaded.Len() {
			t.Fatalf("round trip changed entry count: %d != %d", back.Len(), loaded.Len())
		}
	})
}
