package dedup

import (
	"bytes"
	"testing"

	"bbmig/internal/blockdev"
)

func fill(disk *blockdev.MemDisk, n int, seed byte) {
	buf := make([]byte, disk.BlockSize())
	for i := range buf {
		buf[i] = seed ^ byte(i)
	}
	if err := disk.WriteBlock(n, buf); err != nil {
		panic(err)
	}
}

func TestFingerprintBasics(t *testing.T) {
	a := Of([]byte{1, 2, 3})
	b := Of([]byte{1, 2, 3})
	c := Of([]byte{1, 2, 4})
	if a != b {
		t.Fatal("same content, different fingerprints")
	}
	if a == c {
		t.Fatal("different content, same fingerprint")
	}
	zero := make([]byte, 4096)
	if Of(zero) != ZeroFingerprint(4096) {
		t.Fatal("zero fingerprint mismatch")
	}
	if !IsZero(zero) {
		t.Fatal("IsZero(zeros) = false")
	}
	zero[4095] = 1
	if IsZero(zero) {
		t.Fatal("IsZero(nonzero) = true")
	}
}

func TestFingerprintWire(t *testing.T) {
	fps := []Fingerprint{Of([]byte("a")), Of([]byte("b")), Of([]byte("c"))}
	buf := AppendFingerprints(nil, fps)
	if len(buf) != 3*FingerprintSize {
		t.Fatalf("encoded %d bytes", len(buf))
	}
	got, err := ParseFingerprints(buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fps {
		if got[i] != fps[i] {
			t.Fatalf("fingerprint %d did not round-trip", i)
		}
	}
	if _, err := ParseFingerprints(buf, 2); err == nil {
		t.Fatal("short count accepted")
	}
	if _, err := ParseFingerprints(buf[:10], 3); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestWantBits(t *testing.T) {
	buf := make([]byte, WantLen(11))
	if len(buf) != 2 {
		t.Fatalf("WantLen(11) = %d", len(buf))
	}
	SetWant(buf, 0)
	SetWant(buf, 7)
	SetWant(buf, 10)
	for k := 0; k < 11; k++ {
		want := k == 0 || k == 7 || k == 10
		if Want(buf, k) != want {
			t.Fatalf("bit %d = %v, want %v", k, Want(buf, k), want)
		}
	}
}

func TestIndexLookupVerifies(t *testing.T) {
	disk := blockdev.NewMemDisk(16, blockdev.BlockSize)
	fill(disk, 3, 0xAB)
	ix := NewIndex(blockdev.BlockSize)
	if err := ix.RegisterSource("d", disk); err != nil {
		t.Fatal(err)
	}
	if n, err := ix.ScanSource("d"); err != nil || n != 1 {
		t.Fatalf("scan: %d, %v", n, err)
	}

	buf := make([]byte, blockdev.BlockSize)
	disk.ReadBlock(3, buf)
	fp := Of(buf)
	got, ok := ix.Lookup(fp)
	if !ok || !bytes.Equal(got, buf) {
		t.Fatal("lookup of scanned content failed")
	}

	// Zero fingerprint materializes with no observation at all.
	z, ok := ix.Lookup(ZeroFingerprint(blockdev.BlockSize))
	if !ok || !IsZero(z) {
		t.Fatal("zero lookup failed")
	}

	// Overwrite the backing block: the stale entry must fail verification
	// and be evicted, never return the new bytes under the old fingerprint.
	fill(disk, 3, 0xCD)
	if _, ok := ix.Lookup(fp); ok {
		t.Fatal("stale entry verified after overwrite")
	}
	if _, ok := ix.Lookup(fp); ok {
		t.Fatal("evicted entry came back")
	}
}

func TestIndexObserveRetractsOverwrites(t *testing.T) {
	disk := blockdev.NewMemDisk(8, blockdev.BlockSize)
	ix := NewIndex(blockdev.BlockSize)
	ix.RegisterSource("d", disk)

	fill(disk, 0, 1)
	buf := make([]byte, blockdev.BlockSize)
	disk.ReadBlock(0, buf)
	fpA := Of(buf)
	ix.Observe("d", 0, fpA)
	if ix.Len() != 1 {
		t.Fatalf("len %d", ix.Len())
	}

	// New content at the same block retracts the old entry.
	fill(disk, 0, 2)
	disk.ReadBlock(0, buf)
	fpB := Of(buf)
	ix.Observe("d", 0, fpB)
	if _, ok := ix.Lookup(fpA); ok {
		t.Fatal("retracted entry still resolves")
	}
	if _, ok := ix.Lookup(fpB); !ok {
		t.Fatal("fresh entry does not resolve")
	}

	// Observing zero content retracts without storing.
	ix.Observe("d", 0, ZeroFingerprint(blockdev.BlockSize))
	if ix.Len() != 0 {
		t.Fatalf("zero observation stored: len %d", ix.Len())
	}
}

func TestIndexDropSource(t *testing.T) {
	disk := blockdev.NewMemDisk(8, blockdev.BlockSize)
	fill(disk, 1, 9)
	ix := NewIndex(blockdev.BlockSize)
	ix.RegisterSource("d", disk)
	ix.ScanSource("d")
	buf := make([]byte, blockdev.BlockSize)
	disk.ReadBlock(1, buf)
	if _, ok := ix.Lookup(Of(buf)); !ok {
		t.Fatal("entry missing before drop")
	}
	ix.DropSource("d")
	if ix.Len() != 0 || ix.HasSource("d") {
		t.Fatal("drop left state behind")
	}
	if _, ok := ix.Lookup(Of(buf)); ok {
		t.Fatal("entry resolves after drop")
	}
}

func TestIndexUnregisteredSourceMisses(t *testing.T) {
	disk := blockdev.NewMemDisk(8, blockdev.BlockSize)
	fill(disk, 2, 7)
	ix := NewIndex(blockdev.BlockSize)
	ix.RegisterSource("d", disk)
	ix.ScanSource("d")
	data, err := ix.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// A reloaded index has entries but no live devices: lookups must miss
	// cleanly until the owner re-registers the source.
	re, err := LoadBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, blockdev.BlockSize)
	disk.ReadBlock(2, buf)
	if _, ok := re.Lookup(Of(buf)); ok {
		t.Fatal("lookup resolved without a registered source")
	}
	re.RegisterSource("d", disk)
	if got, ok := re.Lookup(Of(buf)); !ok || !bytes.Equal(got, buf) {
		t.Fatal("lookup failed after re-registering the source")
	}
}
