package delta

import (
	"bytes"
	"crypto/sha256"
	"testing"
)

// FuzzDeltaSig feeds arbitrary bytes to the signature parser: it must never
// panic or over-read, and anything it accepts must re-marshal to exactly the
// input (the format admits no redundant encodings).
func FuzzDeltaSig(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(Sig(nil, DefaultChunk).Marshal())
	f.Add(Sig(bytes.Repeat([]byte{7}, 4096), DefaultChunk).Marshal())
	f.Add(Sig(bytes.Repeat([]byte{0}, 300), MinChunk).Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		sig, err := ParseSignature(data)
		if err != nil {
			return
		}
		if got := sig.Marshal(); !bytes.Equal(got, data) {
			t.Fatalf("accepted signature re-marshals differently: %d bytes vs %d", len(got), len(data))
		}
	})
}

// FuzzDeltaPatch feeds arbitrary (old, patch) pairs to Apply: it must never
// panic, over-read, or return bytes that fail the patch's own embedded
// strong hash — the "never unverified bytes" guarantee the destination's
// verify-on-apply path relies on.
func FuzzDeltaPatch(f *testing.F) {
	old := bytes.Repeat([]byte{0xA5, 0x5A, 3, 4}, 1024)
	target := append([]byte(nil), old...)
	copy(target[256:], bytes.Repeat([]byte{9}, 512))
	f.Add([]byte(nil), []byte(nil))
	f.Add(old, Diff(Sig(old, DefaultChunk), target))
	f.Add(old, Diff(Sig(old, MinChunk), old))
	f.Add([]byte{}, Diff(Sig(nil, DefaultChunk), target))
	f.Fuzz(func(t *testing.T, oldIn, patch []byte) {
		out, err := Apply(oldIn, patch)
		if err != nil {
			return
		}
		// Whatever Apply accepted must verify against the patch trailer.
		if len(patch) < verifySize {
			t.Fatalf("Apply accepted a %d-byte patch below the verify trailer", len(patch))
		}
		sum := sha256.Sum256(out)
		if !bytes.Equal(sum[:verifySize], patch[len(patch)-verifySize:]) {
			t.Fatalf("Apply returned bytes that fail the embedded strong hash")
		}
	})
}
