package delta

import (
	"bytes"
	"crypto/sha256"
	"math/rand"
	"testing"
)

// roundTrip asserts the codec's defining property for one (old, new) pair:
// Apply(old, Diff(Sig(old), new)) == new, byte for byte.
func roundTrip(t *testing.T, old, target []byte, chunk int) []byte {
	t.Helper()
	sig := Sig(old, chunk)
	parsed, err := ParseSignature(sig.Marshal())
	if err != nil {
		t.Fatalf("ParseSignature(Marshal()): %v", err)
	}
	patch := Diff(parsed, target)
	got, err := Apply(old, patch)
	if err != nil {
		t.Fatalf("Apply: %v (old %d bytes, target %d bytes, chunk %d)", err, len(old), len(target), chunk)
	}
	if !bytes.Equal(got, target) {
		t.Fatalf("Apply rebuilt %d bytes != target %d bytes", len(got), len(target))
	}
	return patch
}

// TestApplyDiffIdentity is the property test: for random (old, new) block
// pairs — plus the degenerate identical, disjoint, and all-zero cases — the
// reconstruction is byte-for-byte exact. Run under -race in CI.
func TestApplyDiffIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randBytes := func(n int) []byte {
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	chunks := []int{MinChunk, DefaultChunk, 512}
	lengths := []int{0, 1, 15, 16, 127, 128, 129, 4096, 4097, 12288}
	for _, chunk := range chunks {
		for _, n := range lengths {
			old := randBytes(n)
			// identical
			roundTrip(t, old, append([]byte(nil), old...), chunk)
			// disjoint random content
			roundTrip(t, old, randBytes(n), chunk)
			// all-zero on both sides
			roundTrip(t, make([]byte, n), make([]byte, n), chunk)
			// zero old, random new and vice versa
			roundTrip(t, make([]byte, n), randBytes(n), chunk)
			roundTrip(t, old, make([]byte, n), chunk)
			// different lengths
			roundTrip(t, old, randBytes(n/2), chunk)
			roundTrip(t, old, randBytes(n*2+7), chunk)
		}
	}
	// Fully random pairs at random lengths.
	for i := 0; i < 200; i++ {
		old := randBytes(rng.Intn(8192))
		target := randBytes(rng.Intn(8192))
		roundTrip(t, old, target, MinChunk+rng.Intn(512))
	}
	// Hot-rewrite shape: target is old with a few chunks overwritten.
	for i := 0; i < 50; i++ {
		old := randBytes(4096)
		target := append([]byte(nil), old...)
		for k := 0; k < 4; k++ {
			off := rng.Intn(len(target) - 64)
			rng.Read(target[off : off+64])
		}
		roundTrip(t, old, target, DefaultChunk)
	}
}

// TestPatchShrinksOnRewrite pins the codec's reason to exist: a hot-block
// rewrite (a few rows of a 4 KiB block changed) patches in a small fraction
// of the literal bytes, while an identical block patches in a few dozen.
func TestPatchShrinksOnRewrite(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	old := make([]byte, 4096)
	rng.Read(old)

	identical := roundTrip(t, old, append([]byte(nil), old...), DefaultChunk)
	if len(identical) > 64 {
		t.Errorf("identical content patched in %d bytes, want <= 64", len(identical))
	}

	target := append([]byte(nil), old...)
	rng.Read(target[512:768]) // one hot 256-byte rewrite
	patch := roundTrip(t, old, target, DefaultChunk)
	if len(patch) > len(target)/4 {
		t.Errorf("hot rewrite patched in %d bytes, want <= %d", len(patch), len(target)/4)
	}
}

// TestSignatureStrictness pins the parse-layer validation: truncation,
// padding, and out-of-range headers are all errors.
func TestSignatureStrictness(t *testing.T) {
	sig := Sig(bytes.Repeat([]byte{0xAB}, 4096), DefaultChunk).Marshal()
	if _, err := ParseSignature(sig); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
	if _, err := ParseSignature(sig[:len(sig)-1]); err == nil {
		t.Error("truncated signature accepted")
	}
	if _, err := ParseSignature(append(append([]byte(nil), sig...), 0)); err == nil {
		t.Error("padded signature accepted")
	}
	if _, err := ParseSignature(nil); err == nil {
		t.Error("empty signature accepted")
	}
	bad := append([]byte(nil), sig...)
	bad[0] = 1 // chunk size 1 < MinChunk
	bad[1], bad[2], bad[3] = 0, 0, 0
	if _, err := ParseSignature(bad); err == nil {
		t.Error("undersized chunk accepted")
	}
}

// TestApplyVerification pins verify-on-apply: a tampered patch or mismatched
// old content yields an error, never silently wrong bytes.
func TestApplyVerification(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	old := make([]byte, 4096)
	rng.Read(old)
	target := append([]byte(nil), old...)
	rng.Read(target[:256])
	patch := Diff(Sig(old, DefaultChunk), target)

	// Flip one bit of the embedded verify hash.
	bad := append([]byte(nil), patch...)
	bad[len(bad)-1] ^= 1
	if _, err := Apply(old, bad); err == nil {
		t.Error("tampered verify hash accepted")
	}
	// Apply against content the signature never described: COPY ops resolve
	// to different bytes, so the verify hash must reject the result.
	other := make([]byte, 4096)
	rng.Read(other)
	if _, err := Apply(other, patch); err == nil {
		t.Error("patch applied against mismatched old content")
	}
	// Sanity: the untampered patch still applies.
	got, err := Apply(old, patch)
	if err != nil || !bytes.Equal(got, target) {
		t.Fatalf("control apply failed: %v", err)
	}
	sum := sha256.Sum256(got)
	if !bytes.Equal(patch[len(patch)-16:], sum[:16]) {
		t.Error("patch trailer is not the truncated SHA-256 of the target")
	}
}
