// Package delta implements the rsync-style block delta codec behind the
// engine's WAN transfer path (Config.Delta): the destination summarizes the
// content it already holds as a chunk signature (a weak rolling hash plus a
// truncated SHA-256 strong hash per chunk), the source diffs the new content
// against that signature, and what crosses the wire is a COPY/LITERAL op
// stream — bytes only for the chunks that actually changed.
//
// The codec is deliberately self-describing and paranoid: signatures and
// patches are flat little-endian blobs with strict length validation, a
// patch carries a truncated SHA-256 of the whole reconstructed extent which
// Apply verifies before returning a single byte, and every parse path is
// fuzz-hardened (FuzzDeltaSig/FuzzDeltaPatch) — arbitrary input can fail,
// never panic, over-read, or yield unverified bytes.
package delta

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

const (
	// DefaultChunk is the signature chunk size in bytes. 128 splits a 4 KiB
	// block into 32 chunks — a 392-byte signature (under 10% of the block)
	// buying chunk-granular reuse on the forward path.
	DefaultChunk = 128
	// MinChunk bounds the chunk size from below; smaller chunks make the
	// signature larger than the content it describes.
	MinChunk = 16
	// MaxChunk bounds the chunk size from above (one frame payload must be
	// able to carry many chunks for the codec to be worth anything).
	MaxChunk = 64 << 10
	// MaxTarget bounds the content length a signature or patch may describe,
	// matching the transport's frame payload limit.
	MaxTarget = 64 << 20

	// strongSize is the truncated SHA-256 length per signature chunk.
	strongSize = 8
	// verifySize is the truncated SHA-256 length protecting a whole patch.
	verifySize = 16

	// sigHeaderLen is chunk(4) | oldLen(4).
	sigHeaderLen = 8
	// sigRecordLen is one chunk record: weak(4) | strong(8).
	sigRecordLen = 4 + strongSize
	// patchHeaderLen is chunk(4) | targetLen(4).
	patchHeaderLen = 8

	// patch opcodes
	opCopy    = 1 // chunkIdx(4) | chunkCount(4): chunks copied from old
	opLiteral = 2 // length(4) | bytes: verbatim content
)

// Signature describes existing content as fixed-size chunks, each carrying a
// weak rolling hash (for the O(1) sliding-window probe) and a truncated
// SHA-256 strong hash (for confirmation). A trailing short chunk is recorded
// so lengths round-trip, but Diff never matches against it.
type Signature struct {
	// Chunk is the chunk size in bytes, in [MinChunk, MaxChunk].
	Chunk int
	// OldLen is the length of the content the signature describes.
	OldLen int
	// Weak holds one rolling hash per chunk.
	Weak []uint32
	// Strong holds one truncated SHA-256 per chunk.
	Strong [][strongSize]byte
}

// numChunks returns how many chunk records describe oldLen bytes.
func numChunks(oldLen, chunk int) int {
	return (oldLen + chunk - 1) / chunk
}

// weakSum computes the rsync rolling checksum of p: two 16-bit sums packed
// into one uint32, cheap to slide one byte at a time.
func weakSum(p []byte) uint32 {
	var a, b uint32
	for i, c := range p {
		a += uint32(c)
		b += uint32(len(p)-i) * uint32(c)
	}
	return a&0xffff | b<<16
}

// weakRoll slides a window-w weak sum one byte: out leaves, in enters. All
// arithmetic is mod 2^16, so uint32 wraparound is harmless.
func weakRoll(sum uint32, w int, out, in byte) uint32 {
	a := sum & 0xffff
	b := sum >> 16
	a = a - uint32(out) + uint32(in)
	b = b - uint32(w)*uint32(out) + a
	return a&0xffff | b<<16
}

// strongOf returns the truncated SHA-256 chunk hash of p.
func strongOf(p []byte) (s [strongSize]byte) {
	sum := sha256.Sum256(p)
	copy(s[:], sum[:strongSize])
	return s
}

// Sig computes the signature of old with the given chunk size (0 selects
// DefaultChunk; out-of-range values are clamped).
func Sig(old []byte, chunk int) *Signature {
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	if chunk < MinChunk {
		chunk = MinChunk
	}
	if chunk > MaxChunk {
		chunk = MaxChunk
	}
	n := numChunks(len(old), chunk)
	s := &Signature{
		Chunk:  chunk,
		OldLen: len(old),
		Weak:   make([]uint32, 0, n),
		Strong: make([][strongSize]byte, 0, n),
	}
	for off := 0; off < len(old); off += chunk {
		end := off + chunk
		if end > len(old) {
			end = len(old)
		}
		s.Weak = append(s.Weak, weakSum(old[off:end]))
		s.Strong = append(s.Strong, strongOf(old[off:end]))
	}
	return s
}

// Marshal encodes the signature as a flat little-endian blob:
// chunk(4) | oldLen(4) | per chunk: weak(4) strong(8).
func (s *Signature) Marshal() []byte {
	out := make([]byte, sigHeaderLen+len(s.Weak)*sigRecordLen)
	binary.LittleEndian.PutUint32(out[0:], uint32(s.Chunk))
	binary.LittleEndian.PutUint32(out[4:], uint32(s.OldLen))
	p := sigHeaderLen
	for i, w := range s.Weak {
		binary.LittleEndian.PutUint32(out[p:], w)
		copy(out[p+4:], s.Strong[i][:])
		p += sigRecordLen
	}
	return out
}

// ParseSignature decodes and validates a marshaled signature. The record
// count must match the declared length exactly — trailing or missing bytes
// are an error, never silently tolerated.
func ParseSignature(data []byte) (*Signature, error) {
	if len(data) < sigHeaderLen {
		return nil, fmt.Errorf("delta: signature %d bytes, want >= %d", len(data), sigHeaderLen)
	}
	chunk := int(binary.LittleEndian.Uint32(data[0:]))
	oldLen := int(binary.LittleEndian.Uint32(data[4:]))
	if chunk < MinChunk || chunk > MaxChunk {
		return nil, fmt.Errorf("delta: chunk size %d outside [%d, %d]", chunk, MinChunk, MaxChunk)
	}
	if oldLen < 0 || oldLen > MaxTarget {
		return nil, fmt.Errorf("delta: signature describes %d bytes, max %d", oldLen, MaxTarget)
	}
	n := numChunks(oldLen, chunk)
	if want := sigHeaderLen + n*sigRecordLen; len(data) != want {
		return nil, fmt.Errorf("delta: signature %d bytes, want %d for %d chunks", len(data), want, n)
	}
	s := &Signature{
		Chunk:  chunk,
		OldLen: oldLen,
		Weak:   make([]uint32, 0, n),
		Strong: make([][strongSize]byte, 0, n),
	}
	p := sigHeaderLen
	for i := 0; i < n; i++ {
		s.Weak = append(s.Weak, binary.LittleEndian.Uint32(data[p:]))
		var st [strongSize]byte
		copy(st[:], data[p+4:])
		s.Strong = append(s.Strong, st)
		p += sigRecordLen
	}
	return s, nil
}

// patchWriter accumulates a patch's op stream, merging adjacent COPY runs.
type patchWriter struct {
	buf     []byte
	lit     []byte // pending literal bytes, flushed before any COPY
	copyIdx int    // first chunk of the pending COPY run (-1 = none)
	copyN   int
}

func (w *patchWriter) flushLit() {
	if len(w.lit) == 0 {
		return
	}
	var hdr [5]byte
	hdr[0] = opLiteral
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(w.lit)))
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, w.lit...)
	w.lit = w.lit[:0]
}

func (w *patchWriter) flushCopy() {
	if w.copyN == 0 {
		return
	}
	var hdr [9]byte
	hdr[0] = opCopy
	binary.LittleEndian.PutUint32(hdr[1:], uint32(w.copyIdx))
	binary.LittleEndian.PutUint32(hdr[5:], uint32(w.copyN))
	w.buf = append(w.buf, hdr[:]...)
	w.copyIdx, w.copyN = -1, 0
}

func (w *patchWriter) literal(p []byte) {
	w.flushCopy()
	w.lit = append(w.lit, p...)
}

func (w *patchWriter) copyChunk(idx int) {
	w.flushLit()
	if w.copyN > 0 && w.copyIdx+w.copyN == idx {
		w.copyN++
		return
	}
	w.flushCopy()
	w.copyIdx, w.copyN = idx, 1
}

// Diff computes the patch that rebuilds target from the content sig
// describes: chunk(4) | targetLen(4) | ops | truncated SHA-256(16) of
// target. COPY ops name whole chunks of the old content; everything the
// signature cannot supply travels as LITERAL bytes. Only full chunks are
// matched, so a signature's trailing short chunk never contributes.
func Diff(sig *Signature, target []byte) []byte {
	chunk := sig.Chunk
	// Index the signature's full chunks by weak hash. Collisions keep every
	// candidate: the strong hash arbitrates.
	byWeak := make(map[uint32][]int, len(sig.Weak))
	for i, w := range sig.Weak {
		if (i+1)*chunk <= sig.OldLen { // full chunks only
			byWeak[w] = append(byWeak[w], i)
		}
	}
	w := &patchWriter{copyIdx: -1}
	w.buf = make([]byte, patchHeaderLen, patchHeaderLen+64)
	binary.LittleEndian.PutUint32(w.buf[0:], uint32(chunk))
	binary.LittleEndian.PutUint32(w.buf[4:], uint32(len(target)))

	pos := 0
	var sum uint32
	fresh := true // sum must be recomputed for the window at pos
	for pos+chunk <= len(target) {
		if fresh {
			sum = weakSum(target[pos : pos+chunk])
			fresh = false
		}
		matched := -1
		if cands := byWeak[sum]; cands != nil {
			strong := strongOf(target[pos : pos+chunk])
			// Among strong-verified candidates prefer the one continuing the
			// pending COPY run: repetitive content (all-zero extents) then
			// merges into one op instead of one op per chunk.
			want := -1
			if w.copyN > 0 {
				want = w.copyIdx + w.copyN
			}
			for _, ci := range cands {
				if sig.Strong[ci] != strong {
					continue
				}
				if matched < 0 {
					matched = ci
				}
				if ci == want {
					matched = ci
					break
				}
			}
		}
		if matched >= 0 {
			w.copyChunk(matched)
			pos += chunk
			fresh = true
			continue
		}
		w.literal(target[pos : pos+1])
		if pos+chunk < len(target) {
			sum = weakRoll(sum, chunk, target[pos], target[pos+chunk])
		}
		pos++
	}
	w.literal(target[pos:]) // tail shorter than one chunk
	w.flushCopy()
	w.flushLit()
	verify := sha256.Sum256(target)
	w.buf = append(w.buf, verify[:verifySize]...)
	return w.buf
}

// Apply rebuilds the target content from old and a patch produced by Diff,
// verifying the patch's embedded strong hash over the full result before
// returning it. Any malformed op, out-of-range COPY, length mismatch, or
// hash mismatch returns an error and no bytes — the caller falls back to a
// literal transfer, never to wrong content.
func Apply(old, patch []byte) ([]byte, error) {
	if len(patch) < patchHeaderLen+verifySize {
		return nil, fmt.Errorf("delta: patch %d bytes, want >= %d", len(patch), patchHeaderLen+verifySize)
	}
	chunk := int(binary.LittleEndian.Uint32(patch[0:]))
	targetLen := int(binary.LittleEndian.Uint32(patch[4:]))
	if chunk < MinChunk || chunk > MaxChunk {
		return nil, fmt.Errorf("delta: patch chunk size %d outside [%d, %d]", chunk, MinChunk, MaxChunk)
	}
	if targetLen < 0 || targetLen > MaxTarget {
		return nil, fmt.Errorf("delta: patch target %d bytes, max %d", targetLen, MaxTarget)
	}
	ops := patch[patchHeaderLen : len(patch)-verifySize]
	verify := patch[len(patch)-verifySize:]
	fullChunks := len(old) / chunk

	capHint := targetLen
	if capHint > 1<<20 {
		capHint = 1 << 20 // grow on demand; a hostile header can't force the allocation
	}
	out := make([]byte, 0, capHint)
	for len(ops) > 0 {
		switch op := ops[0]; op {
		case opCopy:
			if len(ops) < 9 {
				return nil, fmt.Errorf("delta: truncated COPY op")
			}
			idx := int(binary.LittleEndian.Uint32(ops[1:]))
			n := int(binary.LittleEndian.Uint32(ops[5:]))
			ops = ops[9:]
			if n <= 0 || idx < 0 || idx > fullChunks-n {
				return nil, fmt.Errorf("delta: COPY [%d,+%d) outside %d old chunks", idx, n, fullChunks)
			}
			if len(out)+n*chunk > targetLen {
				return nil, fmt.Errorf("delta: ops overflow the declared %d-byte target", targetLen)
			}
			out = append(out, old[idx*chunk:(idx+n)*chunk]...)
		case opLiteral:
			if len(ops) < 5 {
				return nil, fmt.Errorf("delta: truncated LITERAL op")
			}
			n := int(binary.LittleEndian.Uint32(ops[1:]))
			ops = ops[5:]
			if n <= 0 || n > len(ops) {
				return nil, fmt.Errorf("delta: LITERAL of %d bytes with %d remaining", n, len(ops))
			}
			if len(out)+n > targetLen {
				return nil, fmt.Errorf("delta: ops overflow the declared %d-byte target", targetLen)
			}
			out = append(out, ops[:n]...)
			ops = ops[n:]
		default:
			return nil, fmt.Errorf("delta: unknown op %d", op)
		}
	}
	if len(out) != targetLen {
		return nil, fmt.Errorf("delta: ops rebuilt %d bytes, declared %d", len(out), targetLen)
	}
	sum := sha256.Sum256(out)
	for i := 0; i < verifySize; i++ {
		if sum[i] != verify[i] {
			return nil, fmt.Errorf("delta: strong hash mismatch on reconstructed content")
		}
	}
	return out, nil
}
