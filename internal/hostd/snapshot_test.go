package hostd

// Snapshot-consistency suite for the Volume redesign: domains are hammered
// with guest writes while migrating, and the destination must land on the
// freeze-time image — pre-copy iterations read frozen CoW snapshots, so
// racing writes can tear nothing. Run with -race.

import (
	"math/rand"
	"sync"
	"testing"

	"bbmig/internal/blockdev"
	"bbmig/internal/blockdev/bcache"
	"bbmig/internal/core"
	"bbmig/internal/transport"
	"bbmig/internal/vm"
	"bbmig/internal/workload"
)

// TestMigrationSnapshotConsistencyUnderLoad drives its own write load
// through Domain.Submit during a live migration and checks the destination
// equals the freeze-time fingerprint — not whatever the live disk looked
// like while pre-copy reads were in flight.
func TestMigrationSnapshotConsistencyUnderLoad(t *testing.T) {
	A, B := NewMachine("A"), NewMachine("B")
	A.SetCacheBlocks(256) // well under tBlocks: eviction runs during the test
	d, err := A.CreateDomain("guest", tBlocks, tPages, workload.Web, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	cache, ok := d.Disk().(*bcache.Cache)
	if !ok {
		t.Fatalf("domain disk is %T, want *bcache.Cache", d.Disk())
	}
	id := d.VM().DomainID

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			buf := make([]byte, blockdev.BlockSize)
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Read(buf[:64])
				req := blockdev.Request{
					Op: blockdev.Write, Block: r.Intn(tBlocks), Domain: id, Data: buf,
				}
				if err := d.Submit(req); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(int64(w))
	}

	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	resCh := make(chan error, 1)
	go func() {
		_, err := B.ServeOne(l, core.Config{})
		resCh <- err
	}()

	var freezeFP [32]byte
	cfg := core.Config{OnFreeze: func() {
		// The engine is at the suspend point: quiesce the test writers, then
		// record the image every later phase must reproduce on B.
		close(stop)
		wg.Wait()
		var err error
		if freezeFP, err = blockdev.Fingerprint(d.Disk()); err != nil {
			t.Errorf("freeze fingerprint: %v", err)
		}
	}}
	if _, err := A.MigrateOut("guest", "B", l.Addr().String(), cfg); err != nil {
		t.Fatalf("migrate out: %v", err)
	}
	if err := <-resCh; err != nil {
		t.Fatalf("serve: %v", err)
	}

	dB, ok := B.Domain("guest")
	if !ok {
		t.Fatal("domain not hosted on B")
	}
	if dB.VM().State() != vm.Running {
		t.Fatal("domain not running on B")
	}
	gotFP, err := blockdev.Fingerprint(dB.Disk())
	if err != nil {
		t.Fatal(err)
	}
	if gotFP != freezeFP {
		t.Fatal("destination disk differs from the freeze-time image")
	}
	st := cache.Stats()
	if st.Snapshots != 0 {
		t.Fatalf("per-iteration snapshots leaked: %+v", st)
	}
	if st.CowCopies == 0 {
		t.Fatalf("writes raced the pre-copy snapshot but never CoW'd: %+v", st)
	}
}

// TestFileDiskDomainRoundTrip hosts a domain on a file-backed disk via
// CreateDomainOn — the API-ripple case the Volume interfaces exist for —
// and round-trips it A→B→A with a live workload.
func TestFileDiskDomainRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fd, err := blockdev.CreateFileDisk(dir+"/guest.img", tBlocks, blockdev.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close()

	A, B := NewMachine("A"), NewMachine("B")
	d, err := A.CreateDomainOn("fvm", fd, tPages, workload.Web, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Disk().(*bcache.Cache); !ok {
		t.Fatalf("file-backed domain disk is %T, want a bcache volume", d.Disk())
	}

	hop(t, A, B, "fvm")
	dB, ok := B.Domain("fvm")
	if !ok {
		t.Fatal("domain not hosted on B")
	}
	dB.StopWorkload()

	// B's disk must equal A's retained frozen copy of the file-backed disk.
	A.mu.Lock()
	frozen := A.retained["fvm"]
	A.mu.Unlock()
	if frozen == nil {
		t.Fatal("A retained no copy")
	}
	diffs, err := blockdev.Diff(dB.Disk(), frozen)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("%d blocks differ between B's disk and A's frozen copy", len(diffs))
	}

	// Migrate back: the return trip rides the vault and stays incremental.
	rep := hop(t, B, A, "fvm")
	if rep.DiskIterations[0].Units >= tBlocks/2 {
		t.Fatalf("return trip sent %d blocks — not incremental", rep.DiskIterations[0].Units)
	}
	dA, ok := A.Domain("fvm")
	if !ok {
		t.Fatal("domain not back on A")
	}
	dA.StopWorkload()
	if _, ok := dA.Disk().(*bcache.Cache); !ok {
		t.Fatalf("returned domain disk is %T, want a bcache volume", dA.Disk())
	}
}
