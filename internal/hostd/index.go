// Machine-level content-fingerprint index maintenance: the destination side
// of content-addressed transfer (core.Config.Dedup) looks blocks up in one
// index per Machine, fed by every disk the machine can read back — retained
// peer copies of departed domains and the live disks of hosted domains
// (clone siblings of an inbound guest). The index is persisted alongside
// the retained-disk store when SetIndexPath is configured; a torn or
// corrupt index file degrades to an empty index (every advert answered
// "send the literal"), never to wrong bytes — dedup.Index re-verifies
// content on every lookup.

package hostd

import (
	"fmt"
	"os"

	"bbmig/internal/blockdev"
	"bbmig/internal/dedup"
)

// diskSourceName is the stable index-source name for one domain's disk. The
// same name follows the disk between the hosted and retained states (the
// Volume object itself is what MigrateOut retains), so observations made
// while a domain was hosted keep resolving after it departs.
func diskSourceName(domain string) string { return "disk/" + domain }

// ContentIndex returns the machine's content-fingerprint index, creating an
// empty one on first use. The index is shared by every inbound migration
// and pre-sync this machine serves; it is concurrency-safe.
func (m *Machine) ContentIndex() *dedup.Index {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.contentIndexLocked()
}

func (m *Machine) contentIndexLocked() *dedup.Index {
	if m.idx == nil {
		m.idx = dedup.NewIndex(blockdev.BlockSize)
		m.idxScanned = make(map[string]blockdev.Device)
	}
	return m.idx
}

// SetIndexPath configures where the machine persists its fingerprint index
// and loads any index already there. A missing file starts empty; a
// corrupt, torn, or wrong-block-size file also starts empty — full-send
// degradation, migrations always proceed — and the load error is returned
// so the operator can log it. Entries loaded from disk resolve again once
// the disks they reference re-register (a returning domain, a
// re-provisioned retained copy); until then lookups simply miss.
func (m *Machine) SetIndexPath(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.idxPath = path
	m.idx = nil
	m.contentIndexLocked()
	if _, err := os.Stat(path); err != nil {
		return nil // nothing persisted yet
	}
	ix, err := dedup.LoadFile(path)
	if err != nil {
		return fmt.Errorf("hostd: index at %s unusable (starting empty): %w", path, err)
	}
	if ix.BlockSize() != blockdev.BlockSize {
		return fmt.Errorf("hostd: index at %s has block size %d, want %d (starting empty)",
			path, ix.BlockSize(), blockdev.BlockSize)
	}
	m.idx = ix
	return nil
}

// SaveIndex persists the index to the configured path (a no-op without
// one). Called automatically after each dedup'd inbound migration or
// pre-sync; exposed so operators can checkpoint on their own schedule.
// Serialized on idxSaveMu: concurrent migrations finishing together must
// not interleave writes through the shared temp file.
func (m *Machine) SaveIndex() error {
	m.mu.Lock()
	idx, path := m.idx, m.idxPath
	m.mu.Unlock()
	if idx == nil || path == "" {
		return nil
	}
	m.idxSaveMu.Lock()
	defer m.idxSaveMu.Unlock()
	return idx.SaveFile(path)
}

// prepareDedup readies the index for an inbound dedup migration or
// pre-sync: every retained and hosted disk is registered as a lookup source
// and fingerprinted once if the index has never scanned it. That includes a
// returning domain's own retained copy — the disk the migration is about to
// overwrite — whose pre-existing content is exactly what a migrate-back
// references; references are materialized from advert-time staged copies,
// so self-referential content stays correct even as literals land around
// it. After the migration the engine's live observations cover the disk, so
// each source is scanned at most once per process.
func (m *Machine) prepareDedup() *dedup.Index {
	m.mu.Lock()
	idx := m.contentIndexLocked()
	disks := make(map[string]blockdev.Device, len(m.domains)+len(m.retained))
	// Retained copies first, hosted domains second: when a name is somehow
	// in both maps (a re-provisioned domain whose stale retained copy was
	// not reusable), the live disk must win the registration.
	for name, disk := range m.retained {
		disks[name] = disk
	}
	for name, d := range m.domains {
		disks[name] = d.disk
	}
	scanned := m.idxScanned
	m.mu.Unlock()

	for name, disk := range disks {
		src := diskSourceName(name)
		_ = idx.RegisterSource(src, disk) // block sizes are uniform here
		// Scan-once is per disk object, not per name: if the registration
		// re-points (a domain re-provisioned onto a fresh disk), the new
		// disk's content still needs one fingerprint pass.
		m.mu.Lock()
		todo := scanned[src] != disk
		scanned[src] = disk
		m.mu.Unlock()
		if todo {
			// The fingerprint pass reads a frozen snapshot when the disk is
			// a Volume (hosted domains always are): the scan cannot contend
			// with — or be torn by — the guest's live writes. Lookups still
			// verify against the registered live disk, so a block the guest
			// overwrites mid-scan degrades to a miss, never to wrong bytes.
			view, release := blockdev.SnapshotOf(disk)
			_, _ = idx.ScanReader(src, view) // best effort: a failed scan only costs hits
			release()
		}
	}
	return idx
}

// noteIndexed marks the inbound domain's disk as covered by live
// observations, so the next prepareDedup does not rescan what the engine
// already indexed block by block.
func (m *Machine) noteIndexed(domain string) {
	m.mu.Lock()
	if m.idxScanned != nil {
		if d, ok := m.domains[domain]; ok {
			m.idxScanned[diskSourceName(domain)] = d.disk
		}
	}
	m.mu.Unlock()
}

// dropIndexedDisk unregisters a domain's disk from the index and forgets
// its scan state — the cleanup for an inbound dedup migration that failed:
// the abandoned VBD must not stay pinned in (and answering adverts from)
// the machine-wide index.
func (m *Machine) dropIndexedDisk(domain string) {
	src := diskSourceName(domain)
	m.mu.Lock()
	idx := m.idx
	if m.idxScanned != nil {
		delete(m.idxScanned, src)
	}
	m.mu.Unlock()
	if idx != nil {
		idx.DropSource(src)
	}
}
