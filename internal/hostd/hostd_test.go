package hostd

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"bbmig/internal/blockdev"
	"bbmig/internal/core"
	"bbmig/internal/metrics"
	"bbmig/internal/transport"
	"bbmig/internal/vm"
	"bbmig/internal/workload"
)

const (
	tBlocks = 2048
	tPages  = 128
)

// hop migrates domain from src to dst over loopback TCP and returns the
// source report.
func hop(t *testing.T, src, dst *Machine, domain string) *metrics.Report {
	t.Helper()
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	resCh := make(chan error, 1)
	go func() {
		_, err := dst.ServeOne(l, core.Config{})
		resCh <- err
	}()
	rep, err := src.MigrateOut(domain, dst.Name, l.Addr().String(), core.Config{})
	if err != nil {
		t.Fatalf("hop %s→%s: source: %v", src.Name, dst.Name, err)
	}
	if err := <-resCh; err != nil {
		t.Fatalf("hop %s→%s: destination: %v", src.Name, dst.Name, err)
	}
	return rep
}

func TestAnnounceRoundTrip(t *testing.T) {
	a := announce{
		name:     "guest-7",
		srcHost:  "machine-A",
		geom:     transport.Geometry{BlockSize: 4096, NumBlocks: 100, PageSize: 4096, NumPages: 50},
		kind:     workload.Diabolic,
		work:     true,
		streams:  3,
		compress: -1,
	}
	data, err := a.marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := unmarshalAnnounce(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("round trip %+v != %+v", got, a)
	}
	if _, err := unmarshalAnnounce(data[:5]); err == nil {
		t.Fatal("truncated announce accepted")
	}
	if _, err := unmarshalAnnounce(append(data, 0)); err == nil {
		t.Fatal("oversized announce accepted")
	}
}

func TestCreateDomainBasics(t *testing.T) {
	m := NewMachine("A")
	d, err := m.CreateDomain("g", tBlocks, tPages, workload.Web, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if d.VM().State() != vm.Running {
		t.Fatal("new domain not running")
	}
	if _, err := m.CreateDomain("g", tBlocks, tPages, workload.Web, 1, false); err == nil {
		t.Fatal("duplicate domain accepted")
	}
	if len(m.Domains()) != 1 {
		t.Fatalf("Domains = %v", m.Domains())
	}
	if _, ok := m.Domain("g"); !ok {
		t.Fatal("lookup failed")
	}
	if _, err := m.MigrateOut("nope", "B", "127.0.0.1:1", core.Config{}); err == nil {
		t.Fatal("migrating unknown domain accepted")
	}
}

// TestHostdChainIncremental walks a quiescent domain A→B→C→A with manual
// writes between hops and asserts (1) byte-identical disks at every hop,
// (2) the C→A return trip is incremental: it transfers only the blocks
// dirtied since the domain left A.
func TestHostdChainIncremental(t *testing.T) {
	A, B, C := NewMachine("A"), NewMachine("B"), NewMachine("C")
	d, err := A.CreateDomain("guest", tBlocks, tPages, workload.Web, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	shadow := blockdev.NewMemDisk(tBlocks, blockdev.BlockSize)
	gen := uint32(0)
	write := func(d *Domain, lo, n int) {
		t.Helper()
		buf := make([]byte, blockdev.BlockSize)
		for i := lo; i < lo+n; i++ {
			gen++
			workload.FillBlock(buf, i, gen)
			if err := d.Submit(blockdev.Request{Op: blockdev.Write, Block: i, Domain: d.VM().DomainID, Data: buf}); err != nil {
				t.Fatal(err)
			}
			shadow.WriteBlock(i, buf)
		}
	}
	check := func(m *Machine) *Domain {
		t.Helper()
		dom, ok := m.Domain("guest")
		if !ok {
			t.Fatalf("guest not on %s", m.Name)
		}
		diffs, err := blockdev.Diff(dom.Disk(), shadow)
		if err != nil {
			t.Fatal(err)
		}
		if len(diffs) != 0 {
			t.Fatalf("on %s, %d blocks differ from truth", m.Name, len(diffs))
		}
		return dom
	}

	write(d, 100, 50)
	repAB := hop(t, A, B, "guest")
	if len(A.Domains()) != 0 {
		t.Fatal("domain still on A after migrating away")
	}
	dB := check(B)
	if repAB.DiskIterations[0].Units != tBlocks {
		t.Fatalf("first hop sent %d blocks, want full disk", repAB.DiskIterations[0].Units)
	}

	write(dB, 200, 30)
	repBC := hop(t, B, C, "guest")
	dC := check(C)
	if repBC.DiskIterations[0].Units != tBlocks {
		t.Fatalf("hop to unknown host C sent %d blocks, want full", repBC.DiskIterations[0].Units)
	}

	write(dC, 300, 20)
	repCA := hop(t, C, A, "guest")
	check(A)
	// Incremental: A diverges by the writes made on B (30) and C (20) only.
	sent := repCA.DiskIterations[0].Units
	if sent != 50 {
		t.Fatalf("return to A sent %d blocks, want exactly 50 divergent", sent)
	}
	if repCA.Scheme != "IM" {
		t.Fatalf("return scheme %q", repCA.Scheme)
	}
}

// TestHostdLiveWorkloadRoundTrip migrates a domain under its built-in web
// workload A→B and back, checking hosting state, disk consistency at each
// freeze point, and that the return trip is incremental.
func TestHostdLiveWorkloadRoundTrip(t *testing.T) {
	A, B := NewMachine("A"), NewMachine("B")
	if _, err := A.CreateDomain("web", tBlocks, tPages, workload.Web, 1, true); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the guest dirty some state

	hop(t, A, B, "web")
	dB, ok := B.Domain("web")
	if !ok {
		t.Fatal("domain not hosted on B")
	}
	if dB.VM().State() != vm.Running {
		t.Fatal("domain not running on B")
	}
	// The retained copy on A equals B's disk at the freeze point; B's disk
	// has since moved on (workload restarted). Verify the vault knows A's
	// divergence is exactly B's post-freeze writes: give the guest a moment,
	// then migrate back and compare.
	time.Sleep(80 * time.Millisecond)

	rep := hop(t, B, A, "web")
	dA, ok := A.Domain("web")
	if !ok {
		t.Fatal("domain not back on A")
	}
	if rep.DiskIterations[0].Units >= tBlocks/2 {
		t.Fatalf("return trip sent %d blocks — not incremental", rep.DiskIterations[0].Units)
	}
	// Quiesce and verify the disk matches B's retained frozen copy.
	dA.StopWorkload()
	B.mu.Lock()
	frozen := B.retained["web"]
	B.mu.Unlock()
	if frozen == nil {
		t.Fatal("B retained no copy")
	}
	// A's live disk = frozen + A's post-resume writes; every difference
	// must be flagged in A's vault as divergence of B.
	diffs, err := blockdev.Diff(dA.Disk(), frozen)
	if err != nil {
		t.Fatal(err)
	}
	divB := dA.Vault().InitialFor("B")
	for _, n := range diffs {
		if !divB.Test(n) {
			t.Fatalf("block %d differs from B's copy but is not in B's divergence set", n)
		}
	}
}

// TestHostdMigrationFailureKeepsGuest verifies a failed outbound migration
// leaves the domain running on the source.
func TestHostdMigrationFailureKeepsGuest(t *testing.T) {
	A := NewMachine("A")
	if _, err := A.CreateDomain("g", tBlocks, tPages, workload.Web, 1, true); err != nil {
		t.Fatal(err)
	}
	// destination that accepts and immediately slams the door
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := transport.Accept(l)
		if err == nil {
			c.Close()
		}
	}()
	if _, err := A.MigrateOut("g", "B", l.Addr().String(), core.Config{}); err == nil {
		t.Fatal("migration to a slammed door succeeded")
	}
	d, ok := A.Domain("g")
	if !ok {
		t.Fatal("domain evicted despite failed migration")
	}
	if d.VM().State() != vm.Running {
		t.Fatalf("guest state %v after failed migration", d.VM().State())
	}
	// the guest can still do I/O
	buf := make([]byte, blockdev.BlockSize)
	if err := d.Submit(blockdev.Request{Op: blockdev.Write, Block: 0, Domain: d.VM().DomainID, Data: buf}); err != nil {
		t.Fatal(err)
	}
	d.StopWorkload()
}

// TestHostdStripedHop migrates a domain daemon-to-daemon with a multi-stream
// transfer (announce-driven extra accepts, striped engine + vault hand-off)
// and verifies the received disk matches the source's frozen state.
func TestHostdStripedHop(t *testing.T) {
	A, B := NewMachine("A"), NewMachine("B")
	d, err := A.CreateDomain("guest", tBlocks, tPages, workload.Web, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	shadow := blockdev.NewMemDisk(tBlocks, blockdev.BlockSize)
	buf := make([]byte, blockdev.BlockSize)
	for i := 0; i < 600; i++ {
		workload.FillBlock(buf, i, 5)
		if err := d.Submit(blockdev.Request{Op: blockdev.Write, Block: i, Domain: d.VM().DomainID, Data: buf}); err != nil {
			t.Fatal(err)
		}
		shadow.WriteBlock(i, buf)
	}

	cfg := core.Config{Streams: 4, MaxExtentBlocks: 32, Workers: 3}
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	resCh := make(chan error, 1)
	go func() {
		_, err := B.ServeOne(l, cfg)
		resCh <- err
	}()
	rep, err := A.MigrateOut("guest", "B", l.Addr().String(), cfg)
	if err != nil {
		t.Fatalf("striped migrate out: %v", err)
	}
	if err := <-resCh; err != nil {
		t.Fatalf("striped serve: %v", err)
	}
	if rep.DiskIterations[0].Units != tBlocks {
		t.Fatalf("sent %d blocks, want full disk", rep.DiskIterations[0].Units)
	}
	dom, ok := B.Domain("guest")
	if !ok {
		t.Fatal("guest not hosted on B")
	}
	diffs, err := blockdev.Diff(dom.Disk(), shadow)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("striped hop corrupted %d blocks", len(diffs))
	}
	if dom.Vault() == nil {
		t.Fatal("vault not shipped over striped bundle")
	}
	if got := dom.VM().State(); got != vm.Running {
		t.Fatalf("received VM state %v", got)
	}
}

// TestHostdCompressedHop negotiates stream compression through the announce
// byte: the sender names a level, the unconfigured receiver adopts it, and
// the migrated disk arrives intact.
func TestHostdCompressedHop(t *testing.T) {
	A, B := NewMachine("A"), NewMachine("B")
	d, err := A.CreateDomain("guest", tBlocks, tPages, workload.Web, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	shadow := blockdev.NewMemDisk(tBlocks, blockdev.BlockSize)
	buf := make([]byte, blockdev.BlockSize)
	for i := 0; i < 400; i++ {
		workload.FillBlock(buf, i, 3)
		if err := d.Submit(blockdev.Request{Op: blockdev.Write, Block: i, Domain: d.VM().DomainID, Data: buf}); err != nil {
			t.Fatal(err)
		}
		shadow.WriteBlock(i, buf)
	}
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	resCh := make(chan error, 1)
	go func() {
		_, err := B.ServeOne(l, core.Config{}) // receiver unconfigured: adopts
		resCh <- err
	}()
	if _, err := A.MigrateOut("guest", "B", l.Addr().String(), core.Config{CompressLevel: 6}); err != nil {
		t.Fatalf("compressed migrate out: %v", err)
	}
	if err := <-resCh; err != nil {
		t.Fatalf("compressed serve: %v", err)
	}
	dom, ok := B.Domain("guest")
	if !ok {
		t.Fatal("guest not hosted on B")
	}
	diffs, err := blockdev.Diff(dom.Disk(), shadow)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("compressed hop corrupted %d blocks", len(diffs))
	}
}

// TestHostdCompressMismatchFails: a receiver pinned to a different level
// must refuse the migration at the announce, before any engine frame.
func TestHostdCompressMismatchFails(t *testing.T) {
	A, B := NewMachine("A"), NewMachine("B")
	if _, err := A.CreateDomain("guest", tBlocks, tPages, workload.Web, 1, false); err != nil {
		t.Fatal(err)
	}
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	resCh := make(chan error, 1)
	go func() {
		_, err := B.ServeOne(l, core.Config{CompressLevel: 9})
		resCh <- err
	}()
	_, srcErr := A.MigrateOut("guest", "B", l.Addr().String(), core.Config{CompressLevel: 1})
	dstErr := <-resCh
	if dstErr == nil {
		t.Fatal("receiver accepted a mismatched compress level")
	}
	if srcErr == nil {
		t.Fatal("sender never noticed the refusal")
	}
	if d, ok := A.Domain("guest"); !ok || d.VM().State() != vm.Running {
		t.Fatal("guest lost after refused migration")
	}
}

// TestHostdLiveStatus queries MigrationProgress for an in-flight migration
// from both machines: at the freeze point the outbound side must report the
// phase and bytes moved, and the inbound side must know the migration too.
func TestHostdLiveStatus(t *testing.T) {
	A, B := NewMachine("A"), NewMachine("B")
	if _, err := A.CreateDomain("guest", tBlocks, tPages, workload.Web, 1, false); err != nil {
		t.Fatal(err)
	}
	if _, ok := A.MigrationProgress("guest"); ok {
		t.Fatal("idle machine reports a migration")
	}
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	resCh := make(chan error, 1)
	go func() {
		_, err := B.ServeOne(l, core.Config{})
		resCh <- err
	}()
	var atFreezeA, atFreezeB core.Progress
	var okA, okB bool
	cfg := core.Config{OnFreeze: func() {
		atFreezeA, okA = A.MigrationProgress("guest")
		atFreezeB, okB = B.MigrationProgress("guest")
	}}
	if _, err := A.MigrateOut("guest", "B", l.Addr().String(), cfg); err != nil {
		t.Fatalf("migrate out: %v", err)
	}
	if err := <-resCh; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if !okA {
		t.Fatal("source machine had no live status at the freeze point")
	}
	if atFreezeA.Phase == "" || atFreezeA.Done {
		t.Fatalf("source live status %+v", atFreezeA)
	}
	if atFreezeA.BytesTransferred == 0 {
		t.Fatal("source live status reports zero bytes after the disk pre-copy")
	}
	if atFreezeA.Side != "source" {
		t.Fatalf("source live status side %q", atFreezeA.Side)
	}
	if !okB {
		t.Fatal("destination machine had no live status at the freeze point")
	}
	if atFreezeB.Side != "dest" || atFreezeB.Done {
		t.Fatalf("dest live status %+v", atFreezeB)
	}
	// After completion the entries are gone.
	if _, ok := A.MigrationProgress("guest"); ok {
		t.Fatal("source still reports a migration after completion")
	}
	if _, ok := B.MigrationProgress("guest"); ok {
		t.Fatal("dest still reports a migration after completion")
	}
	if n := len(A.ActiveMigrations()) + len(B.ActiveMigrations()); n != 0 {
		t.Fatalf("%d active migrations after completion", n)
	}
}

// flakyProxy forwards TCP connections to backend, cutting the first
// connection after capBytes of client→backend traffic; later connections
// pass through untouched. It models a link flap between two host daemons.
type flakyProxy struct {
	l       net.Listener
	backend string
	cap     int64
	first   sync.Once
	wg      sync.WaitGroup
}

func newFlakyProxy(t *testing.T, backend string, capBytes int64) *flakyProxy {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyProxy{l: l, backend: backend, cap: capBytes}
	go p.serve()
	return p
}

func (p *flakyProxy) addr() string { return p.l.Addr().String() }

func (p *flakyProxy) close() {
	p.l.Close()
	p.wg.Wait()
}

func (p *flakyProxy) serve() {
	for {
		client, err := p.l.Accept()
		if err != nil {
			return
		}
		flaky := false
		p.first.Do(func() { flaky = true })
		p.wg.Add(1)
		go p.forward(client, flaky)
	}
}

func (p *flakyProxy) forward(client net.Conn, flaky bool) {
	defer p.wg.Done()
	server, err := net.Dial("tcp", p.backend)
	if err != nil {
		client.Close()
		return
	}
	kill := func() {
		client.Close()
		server.Close()
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if flaky {
			io.CopyN(server, client, p.cap)
			kill()
			return
		}
		io.Copy(server, client)
		kill()
	}()
	go func() {
		defer wg.Done()
		io.Copy(client, server)
	}()
	wg.Wait()
}

// TestHostdResumableHop cuts the TCP link mid-migration between two host
// daemons; the source re-dials through the (now healthy) path, resumes the
// session, and the hop completes with the usual consistency guarantees —
// including the vault handoff that follows the engine exchange.
func TestHostdResumableHop(t *testing.T) {
	A, B := NewMachine("A"), NewMachine("B")
	d, err := A.CreateDomain("guest", tBlocks, tPages, workload.Web, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	shadow := blockdev.NewMemDisk(tBlocks, blockdev.BlockSize)
	buf := make([]byte, blockdev.BlockSize)
	for i := 100; i < 400; i++ {
		workload.FillBlock(buf, i, 1)
		if err := d.Submit(blockdev.Request{Op: blockdev.Write, Block: i, Domain: d.VM().DomainID, Data: buf}); err != nil {
			t.Fatal(err)
		}
		shadow.WriteBlock(i, buf)
	}

	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Cut the first connection roughly mid disk pre-copy (~2048 block
	// frames of 4 KiB): well after the announce, well before completion.
	proxy := newFlakyProxy(t, l.Addr().String(), int64(tBlocks)*blockdev.BlockSize/2)
	defer proxy.close()

	resCh := make(chan error, 1)
	go func() {
		_, err := B.ServeOne(l, core.Config{})
		resCh <- err
	}()
	rep, err := A.MigrateOut("guest", B.Name, proxy.addr(), core.Config{
		MaxRetries:   5,
		RetryBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("source: %v", err)
	}
	if err := <-resCh; err != nil {
		t.Fatalf("destination: %v", err)
	}
	if rep.Retries < 1 {
		t.Fatalf("migration survived %d retries, want ≥ 1 (fault never fired?)", rep.Retries)
	}
	dom, ok := B.Domain("guest")
	if !ok {
		t.Fatal("guest not hosted on B")
	}
	diffs, err := blockdev.Diff(dom.Disk(), shadow)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("%d blocks differ from truth after resumed hop", len(diffs))
	}
	if len(A.Domains()) != 0 {
		t.Fatal("domain still on A after a successful (resumed) migration")
	}
	// The vault must have survived the rebinds: migrating back is
	// incremental.
	if dom.Vault() == nil {
		t.Fatal("vault missing after resumed hop")
	}
}
