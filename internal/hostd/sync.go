// Load reporting and incremental pre-sync — the hostd surface the cluster
// orchestrator builds on. Load() is the per-machine utilization report a
// cluster heartbeat collects; SyncOut/ServeSync push a domain's divergence
// to a peer's retained-disk store *without* migrating, so a later MigrateOut
// to that peer ships only the blocks written since — the paper's IM applied
// as a pre-sync that shrinks the cutover window of planned maintenance.

package hostd

import (
	"fmt"
	"net"
	"sort"
	"time"

	"bbmig/internal/bitmap"
	"bbmig/internal/blockdev"
	"bbmig/internal/clock"
	"bbmig/internal/core"
	"bbmig/internal/dedup"
	"bbmig/internal/transport"
)

// Load is a point-in-time utilization snapshot of one Machine: the
// per-machine load report the cluster layer's register/heartbeat path
// collects to drive placement and admission decisions.
type Load struct {
	// Domains is the number of guests currently hosted.
	Domains int
	// Blocks is the total VBD size across hosted guests, in blocks — the
	// capacity proxy placement scores against.
	Blocks int64
	// ActiveMigrations counts in-flight inbound plus outbound migrations.
	ActiveMigrations int
	// RetainedDisks counts peer copies held for departed domains; a
	// migration of one of those domains back here is incremental.
	RetainedDisks int
	// Retained names the domains whose peer copies this machine holds,
	// sorted. The cluster's placement engine weights content overlap with
	// it: migrating a domain toward a host that retains its disk is both
	// positionally incremental (the vault) and content-deduplicable (the
	// fingerprint index).
	Retained []string
	// DomainWrites maps each hosted domain to its backend's cumulative
	// block-write counter. Successive heartbeats turn the deltas into
	// dirty-rate observations — the raw feed of the cluster layer's
	// forecast models. The counter restarts from zero when a domain
	// migrates (the destination builds a fresh backend); consumers treat a
	// backwards step as a restart.
	DomainWrites map[string]int64
}

// Load reports the machine's current utilization.
func (m *Machine) Load() Load {
	m.mu.Lock()
	defer m.mu.Unlock()
	l := Load{
		Domains:          len(m.domains),
		ActiveMigrations: len(m.migrating),
		RetainedDisks:    len(m.retained),
		DomainWrites:     make(map[string]int64, len(m.domains)),
	}
	for name := range m.retained {
		l.Retained = append(l.Retained, name)
	}
	sort.Strings(l.Retained)
	for name, d := range m.domains {
		l.Blocks += int64(d.disk.NumBlocks())
		l.DomainWrites[name] = d.backend.Stats().Writes
	}
	return l
}

// SyncReport summarizes one pre-sync transfer.
type SyncReport struct {
	// Domain is the synced domain's name.
	Domain string
	// Blocks is how many divergent blocks were shipped.
	Blocks int
	// WireBytes is the total bytes sent, frame headers included.
	WireBytes int64
	// DedupBlocks counts the shipped blocks that travelled as 16-byte
	// content references (or zero elisions) instead of literals — only with
	// core.Config.Dedup set on the pre-sync.
	DedupBlocks int
	// Duration is the transfer's wall (or virtual-clock) time.
	Duration time.Duration
}

// SyncOut pushes the named domain's divergence against destHost to the
// machine serving ServeSync at addr, without migrating: the destination
// stores the blocks in its retained-disk store and the local vault marks
// destHost synced, while the guest keeps running throughout (writes racing
// or following the sync re-diverge and travel later). A MigrateOut to
// destHost afterwards ships only the blocks written since — the incremental
// pre-sync the paper prescribes for planned maintenance, shrinking the final
// cutover window from a whole-disk copy to the recent write set.
//
// Honoured cfg fields: BandwidthLimit and Policy pace the transfer (the
// pacing verdict is re-read per frame, so a core.BudgetPolicy shares a
// cluster budget live), MaxExtentBlocks coalesces runs, Clock times and
// paces it. The sync stream is always a single uncompressed connection.
//
// On any failure the shipped set is re-diverged in the vault, so a torn sync
// can never make a later incremental migration skip blocks the destination
// missed.
func (m *Machine) SyncOut(domainName, destHost, addr string, cfg core.Config) (*SyncReport, error) {
	m.mu.Lock()
	d, ok := m.domains[domainName]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("hostd: no domain %q on %s", domainName, m.Name)
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.NewReal()
	}
	bm := d.vault.InitialFor(destHost)
	rep := &SyncReport{Domain: domainName}
	if bm.Count() == 0 {
		return rep, nil // destHost already holds an identical copy
	}

	conn, err := transport.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	mem := d.vmRef.Memory()
	ann := announce{
		name:    domainName,
		srcHost: m.Name,
		geom: transport.Geometry{
			BlockSize: d.disk.BlockSize(), NumBlocks: d.disk.NumBlocks(),
			PageSize: mem.PageSize(), NumPages: mem.NumPages(),
		},
		kind: d.workKind, work: d.hasWork, streams: 1,
		dedup: cfg.Dedup,
	}
	ab, err := ann.marshal()
	if err != nil {
		return nil, err
	}
	meter := transport.NewMeter(conn)
	if err := meter.Send(transport.Message{Type: transport.MsgAnnounce, Payload: ab}); err != nil {
		return nil, err
	}

	// Mark synced BEFORE reading any block: a write landing after this point
	// is re-recorded as divergence even if the sync's read misses it, and a
	// write landing before it is on the disk the reads observe. Either way no
	// write can fall between the synced set and the divergence set.
	d.vault.MarkSynced(destHost)
	// Freeze the read side on a snapshot taken after the mark: every block
	// the sync ships is the disk's content at this instant, so the peer copy
	// is a consistent image rather than a live-read race, and the guest's
	// writes proceed against the volume without contending with the pass.
	// A write that lands after the mark but before the snapshot is both in
	// the snapshot and re-diverged — shipped now and again later, safe twice.
	src, releaseSnap := blockdev.SnapshotOf(d.disk)
	defer releaseSnap()
	fail := func(err error) (*SyncReport, error) {
		d.vault.DivergePeer(destHost, bm) // a torn sync re-diverges the whole attempt
		return rep, err
	}

	// The pacing discipline below (limiter built from the policy's initial
	// verdict, re-read and SetRate'd per frame) intentionally mirrors the
	// engine's transfer.send; keep the two in step if either changes.
	pol := cfg.Policy
	if pol == nil {
		pol = core.DefaultPolicy{}
	}
	bw := cfg.BandwidthLimit
	if bw <= 0 {
		bw = clock.Unlimited
	}
	var limiter *clock.RateLimiter
	if rate := pol.PrecopyRate(bw); rate != clock.Unlimited && rate > 0 {
		limiter = clock.NewRateLimiter(clk, rate, rate/10)
	}

	bs := d.disk.BlockSize()
	maxExt := cfg.MaxExtentBlocks
	if maxExt < 1 {
		maxExt = 1
	}
	if limit := transport.MaxPayload / bs; maxExt > limit {
		maxExt = limit
	}
	start := clk.Now()
	send := func(msg transport.Message) error {
		if limiter != nil {
			if rate := pol.PrecopyRate(bw); rate > 0 && rate != limiter.Rate() {
				limiter.SetRate(rate)
			}
			limiter.Wait(msg.FrameSize())
		}
		return meter.Send(msg)
	}
	buf := make([]byte, maxExt*bs)
	for pos := 0; ; {
		ext := bm.NextExtent(pos, maxExt)
		if ext.Count == 0 {
			break
		}
		data := buf[:ext.Count*bs]
		for k := 0; k < ext.Count; k++ {
			if err := src.ReadBlock(ext.Start+k, data[k*bs:(k+1)*bs]); err != nil {
				return fail(err)
			}
		}
		if cfg.Dedup {
			if err := syncSendDedup(meter, send, pol, rep, ext, data, bs); err != nil {
				return fail(err)
			}
		} else {
			msg := transport.Message{Type: transport.MsgExtent, Arg: transport.ExtentArg(ext.Start, ext.Count), Payload: data}
			if ext.Count == 1 {
				msg = transport.Message{Type: transport.MsgBlockData, Arg: uint64(ext.Start), Payload: data}
			}
			if err := send(msg); err != nil {
				return fail(fmt.Errorf("hostd: sync send: %w", err))
			}
		}
		rep.Blocks += ext.Count
		pos = ext.End()
	}
	if err := meter.Send(transport.Message{Type: transport.MsgDone, Arg: uint64(rep.Blocks)}); err != nil {
		return fail(err)
	}
	// The ack is authoritative: bytes in a dead socket's buffer are not a
	// sync. Without it the vault could believe in a copy nobody holds.
	ackm, err := meter.Recv()
	if err != nil {
		return fail(fmt.Errorf("hostd: sync ack: %w", err))
	}
	if ackm.Type != transport.MsgDone {
		return fail(fmt.Errorf("hostd: sync ack: unexpected %v", ackm.Type))
	}
	rep.WireBytes = meter.BytesSent()
	rep.Duration = clk.Now() - start
	return rep, nil
}

// syncSendDedup moves one pre-sync extent under the content-dedup protocol:
// all-zero runs and destination-held content travel as 16-byte references,
// the rest as literals — the engine's advert/want/ref alternation
// (docs/WIRE.md §10) with the want reply read inline, since the sync stream
// has no concurrent reader.
func syncSendDedup(conn transport.Conn, send func(transport.Message) error, pol core.Policy, rep *SyncReport, ext bitmap.Extent, data []byte, bs int) error {
	zero := dedup.ZeroFingerprint(bs)
	fps := make([]dedup.Fingerprint, ext.Count)
	allZero := true
	for k := range fps {
		fps[k] = dedup.Of(data[k*bs : (k+1)*bs])
		if fps[k] != zero {
			allZero = false
		}
	}
	arg := transport.ExtentArg(ext.Start, ext.Count)
	if allZero {
		rep.DedupBlocks += ext.Count
		return send(transport.Message{Type: transport.MsgBlockRef, Arg: arg, Payload: dedup.AppendFingerprints(nil, fps)})
	}
	literal := func(sub bitmap.Extent, body []byte) transport.Message {
		if sub.Count == 1 {
			return transport.Message{Type: transport.MsgBlockData, Arg: uint64(sub.Start), Payload: body}
		}
		return transport.Message{Type: transport.MsgExtent, Arg: transport.ExtentArg(sub.Start, sub.Count), Payload: body}
	}
	if !pol.DedupExtent("pre-sync", ext.Count) {
		return send(literal(ext, data))
	}
	if err := send(transport.Message{Type: transport.MsgHashAdvert, Arg: arg, Payload: dedup.AppendFingerprints(nil, fps)}); err != nil {
		return err
	}
	reply, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("hostd: sync want: %w", err)
	}
	if reply.Type != transport.MsgHashWant || reply.Arg != arg {
		return fmt.Errorf("hostd: sync want: unexpected %v", reply.Type)
	}
	want := reply.Payload
	if len(want) != dedup.WantLen(ext.Count) {
		return fmt.Errorf("hostd: sync want bitmap %d bytes for %d blocks", len(want), ext.Count)
	}
	return dedup.WalkWant(ext.Count, want, func(off, n int, wanted bool) error {
		sub := bitmap.Extent{Start: ext.Start + off, Count: n}
		var m transport.Message
		if wanted {
			m = literal(sub, data[off*bs:(off+n)*bs])
		} else {
			m = transport.Message{Type: transport.MsgBlockRef, Arg: transport.ExtentArg(sub.Start, sub.Count), Payload: dedup.AppendFingerprints(nil, fps[off:off+n])}
			rep.DedupBlocks += sub.Count
		}
		return send(m)
	})
}

// ServeSync accepts exactly one inbound pre-sync on l and applies it to this
// machine's retained-disk store: the named domain's peer copy is created (or
// updated in place) so a later inbound migration of that domain runs
// incrementally. The domain itself does not move and no VM shell is created.
func (m *Machine) ServeSync(l net.Listener) (*SyncReport, error) {
	conn, err := transport.Accept(l)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	first, err := conn.Recv()
	if err != nil {
		return nil, err
	}
	if first.Type != transport.MsgAnnounce {
		return nil, fmt.Errorf("hostd: expected ANNOUNCE, got %v", first.Type)
	}
	ann, err := unmarshalAnnounce(first.Payload)
	if err != nil {
		return nil, err
	}

	m.mu.Lock()
	if _, exists := m.domains[ann.name]; exists {
		m.mu.Unlock()
		return nil, fmt.Errorf("hostd: domain %q is hosted on %s; sync targets only peer copies", ann.name, m.Name)
	}
	disk := m.retained[ann.name]
	if disk == nil || disk.NumBlocks() != ann.geom.NumBlocks {
		disk = m.newVolumeLocked(blockdev.NewMemDisk(ann.geom.NumBlocks, blockdev.BlockSize))
		m.retained[ann.name] = disk
	}
	m.mu.Unlock()

	// A dedup'd sync answers adverts from the machine index; the synced
	// disk itself is a registered source, so content the peer copy already
	// holds elsewhere (or clone siblings hold) never retransmits.
	var idx *dedup.Index
	var stage map[dedup.Fingerprint][]byte
	if ann.dedup {
		idx = m.prepareDedup()
	}
	self := diskSourceName(ann.name)

	rep := &SyncReport{Domain: ann.name}
	bs := disk.BlockSize()
	write := func(n int, data []byte) error {
		if err := disk.WriteBlock(n, data); err != nil {
			return err
		}
		if idx != nil {
			idx.Observe(self, n, dedup.Of(data))
		}
		return nil
	}
	for {
		msg, err := conn.Recv()
		if err != nil {
			return rep, fmt.Errorf("hostd: sync receive: %w", err)
		}
		switch msg.Type {
		case transport.MsgBlockData:
			if err := write(int(msg.Arg), msg.Payload); err != nil {
				return rep, err
			}
			rep.Blocks++
		case transport.MsgExtent:
			start, count := transport.ExtentSplit(msg.Arg)
			if count < 1 || start < 0 || start+count > disk.NumBlocks() || len(msg.Payload) != count*bs {
				return rep, fmt.Errorf("hostd: sync extent [%d,+%d) invalid", start, count)
			}
			for k := 0; k < count; k++ {
				if err := write(start+k, msg.Payload[k*bs:(k+1)*bs]); err != nil {
					return rep, err
				}
			}
			rep.Blocks += count
		case transport.MsgHashAdvert:
			if idx == nil {
				return rep, fmt.Errorf("hostd: HASH_ADVERT on a sync without dedup")
			}
			start, count := transport.ExtentSplit(msg.Arg)
			if count < 1 || start < 0 || start+count > disk.NumBlocks() {
				return rep, fmt.Errorf("hostd: sync advert [%d,+%d) invalid", start, count)
			}
			fps, err := dedup.ParseFingerprints(msg.Payload, count)
			if err != nil {
				return rep, err
			}
			var want []byte
			want, stage = idx.Answer(fps)
			if err := conn.Send(transport.Message{Type: transport.MsgHashWant, Arg: msg.Arg, Payload: want}); err != nil {
				return rep, err
			}
		case transport.MsgBlockRef:
			if idx == nil {
				return rep, fmt.Errorf("hostd: BLOCK_REF on a sync without dedup")
			}
			start, count := transport.ExtentSplit(msg.Arg)
			if count < 1 || start < 0 || start+count > disk.NumBlocks() {
				return rep, fmt.Errorf("hostd: sync ref [%d,+%d) invalid", start, count)
			}
			fps, err := dedup.ParseFingerprints(msg.Payload, count)
			if err != nil {
				return rep, err
			}
			for k, fp := range fps {
				content, ok := idx.Materialize(stage, fp)
				if !ok {
					return rep, fmt.Errorf("hostd: sync ref %d names unknown content", start+k)
				}
				if err := disk.WriteBlock(start+k, content); err != nil {
					return rep, err
				}
				// The fingerprint is already in hand: observe it directly
				// instead of re-hashing 4 KiB per referenced block.
				idx.Observe(self, start+k, fp)
			}
			rep.Blocks += count
			rep.DedupBlocks += count
		case transport.MsgDone:
			if int(msg.Arg) != rep.Blocks {
				return rep, fmt.Errorf("hostd: sync count %d, received %d", msg.Arg, rep.Blocks)
			}
			if err := conn.Send(transport.Message{Type: transport.MsgDone, Arg: msg.Arg}); err != nil {
				return rep, err
			}
			if idx != nil {
				_ = m.SaveIndex()
			}
			return rep, nil
		case transport.MsgError:
			return rep, fmt.Errorf("hostd: sync aborted by source: %s", msg.Payload)
		default:
			return rep, fmt.Errorf("hostd: unexpected sync frame %v", msg.Type)
		}
	}
}
