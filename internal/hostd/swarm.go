package hostd

import (
	"fmt"
	"net"

	"bbmig/internal/clock"
	"bbmig/internal/core"
	"bbmig/internal/dedup"
	"bbmig/internal/transport"
)

// This file is the peer half of swarm multi-source migration (WIRE.md §11):
// a machine that is neither source nor destination serves verified block
// content from its fingerprint index over a sidecar session, so an
// evacuating fleet's destinations can draw on every uplink that holds a
// copy. The serve loop mirrors ServeSync structurally — accept one
// connection, dispatch frames until the peer hangs up — and mirrors
// SyncOut's pacing discipline: the limiter's rate is re-read per answer
// from the shared budget, so an orchestrator retuning mid-flight takes
// effect on the next frame.

// SetSwarmPeers installs the machine's standing list of peer swarm-serve
// addresses. An inbound migration whose announce carries the swarm
// capability fetches from these when its own config nominates none; an
// empty list (the default) keeps inbound dedup single-source.
func (m *Machine) SetSwarmPeers(addrs ...string) {
	m.mu.Lock()
	m.swarmPeers = append([]string(nil), addrs...)
	m.mu.Unlock()
}

// swarmPeerList snapshots the standing peer list.
func (m *Machine) swarmPeerList() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.swarmPeers...)
}

// ServeSwarm accepts exactly one sidecar swarm-fetch session on l and
// serves it from the machine's content index until the fetching destination
// disconnects (the normal end of a session — the destination simply closes
// when its migration finishes, so a closed connection is success, not
// error). Every answered block is produced through the index's
// verify-on-read Lookup: stale or corrupt local content degrades to a miss
// the destination covers from the source, never to wrong bytes on the wire.
//
// budget, when non-nil, paces the session: the per-frame rate is the
// budget's current per-member share, re-read before every answer, and the
// session holds a Join for its whole lifetime so concurrent migrations and
// swarm serves dilute each other honestly. A nil budget serves unpaced.
func (m *Machine) ServeSwarm(l net.Listener, budget *core.RateBudget) error {
	conn, err := transport.Accept(l)
	if err != nil {
		return err
	}
	defer conn.Close()
	return m.serveSwarmConn(conn, budget)
}

// serveSwarmConn runs the hello exchange and fetch loop over an established
// sidecar connection.
func (m *Machine) serveSwarmConn(conn transport.Conn, budget *core.RateBudget) error {
	hello, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("hostd: swarm hello: %w", err)
	}
	if hello.Type != transport.MsgSwarmHello {
		return fmt.Errorf("hostd: expected SWARM_HELLO, got %v", hello.Type)
	}
	idx := m.prepareDedup()
	if int(hello.Arg) != idx.BlockSize() {
		_ = conn.Send(transport.Message{Type: transport.MsgError,
			Payload: []byte(fmt.Sprintf("hostd: swarm block size %d, index %d", hello.Arg, idx.BlockSize()))})
		return fmt.Errorf("hostd: swarm block size %d, index %d", hello.Arg, idx.BlockSize())
	}
	if err := conn.Send(transport.Message{Type: transport.MsgSwarmHello, Arg: hello.Arg, Payload: hello.Payload}); err != nil {
		return err
	}

	var leave func()
	var limiter *clock.RateLimiter
	if budget != nil {
		leave = budget.Join()
		defer leave()
		if rate := budget.Share(); rate > 0 && rate != clock.Unlimited {
			limiter = clock.NewRateLimiter(clock.NewReal(), rate, rate/10)
		}
	}

	for {
		msg, err := conn.Recv()
		if err != nil {
			return nil // session over: the destination closed its sidecar
		}
		if msg.Type != transport.MsgSwarmFetch {
			return fmt.Errorf("hostd: unexpected swarm frame %v", msg.Type)
		}
		if len(msg.Payload)%dedup.FingerprintSize != 0 {
			return fmt.Errorf("hostd: swarm fetch payload %d bytes not a fingerprint multiple", len(msg.Payload))
		}
		count := len(msg.Payload) / dedup.FingerprintSize
		fps, err := dedup.ParseFingerprints(msg.Payload, count)
		if err != nil {
			return err
		}
		mask := make([]byte, dedup.WantLen(count))
		body := make([]byte, 0, count*idx.BlockSize())
		for k, fp := range fps {
			if content, ok := idx.Lookup(fp); ok {
				dedup.SetWant(mask, k) // hit bit: content follows in order
				body = append(body, content...)
			}
		}
		reply := transport.Message{Type: transport.MsgSwarmBlock, Arg: msg.Arg, Payload: append(mask, body...)}
		if limiter != nil {
			if rate := budget.Share(); rate > 0 && rate != clock.Unlimited && rate != limiter.Rate() {
				limiter.SetRate(rate)
			}
			limiter.Wait(reply.FrameSize())
		}
		if err := conn.Send(reply); err != nil {
			return fmt.Errorf("hostd: swarm send: %w", err)
		}
	}
}
