package hostd

import (
	"os"
	"path/filepath"
	"testing"

	"bbmig/internal/blockdev"
	"bbmig/internal/core"
	"bbmig/internal/dedup"
	"bbmig/internal/metrics"
	"bbmig/internal/transport"
	"bbmig/internal/workload"
)

// writeTemplate fills a domain's disk (through its vault-tracking Submit
// path) with clone-template content: `filled` blocks cycling `distinct`
// template payloads.
func writeTemplate(t *testing.T, d *Domain, filled, distinct int) {
	t.Helper()
	buf := make([]byte, blockdev.BlockSize)
	for n := 0; n < filled; n++ {
		workload.FillBlock(buf, n%distinct, 3)
		err := d.Submit(blockdev.Request{Op: blockdev.Write, Block: n, Domain: d.VM().DomainID, Data: buf})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// dedupHop migrates domain src→dst with content dedup negotiated.
func dedupHop(t *testing.T, src, dst *Machine, domain string) *metrics.Report {
	t.Helper()
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	resCh := make(chan error, 1)
	go func() {
		_, err := dst.ServeOne(l, core.Config{})
		resCh <- err
	}()
	rep, err := src.MigrateOut(domain, dst.Name, l.Addr().String(), core.Config{Dedup: true, MaxExtentBlocks: 16})
	if err != nil {
		t.Fatalf("dedup hop %s→%s: source: %v", src.Name, dst.Name, err)
	}
	if err := <-resCh; err != nil {
		t.Fatalf("dedup hop %s→%s: destination: %v", src.Name, dst.Name, err)
	}
	return rep
}

// diskEqual compares a hosted domain's disk against an expected image disk.
func domainDiskEqual(t *testing.T, m *Machine, name string, want *blockdev.MemDisk) {
	t.Helper()
	d, ok := m.Domain(name)
	if !ok {
		t.Fatalf("domain %q not hosted on %s", name, m.Name)
	}
	diffs, err := blockdev.Diff(d.Disk(), want)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("%s on %s differs at %d blocks (first %v)", name, m.Name, len(diffs), diffs[0])
	}
}

// snapshot copies a domain's current disk image.
func snapshotDisk(t *testing.T, d *Domain) *blockdev.MemDisk {
	t.Helper()
	out := blockdev.NewMemDisk(d.Disk().NumBlocks(), d.Disk().BlockSize())
	buf := make([]byte, d.Disk().BlockSize())
	for n := 0; n < d.Disk().NumBlocks(); n++ {
		if err := d.Disk().ReadBlock(n, buf); err != nil {
			t.Fatal(err)
		}
		if err := out.WriteBlock(n, buf); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestDedupCloneFleet is the clone-fleet scenario the tentpole targets: two
// template-provisioned siblings migrate A→B; the first seeds B's machine
// index, so the second arrives almost entirely by reference — and both land
// byte-identical.
func TestDedupCloneFleet(t *testing.T) {
	a, b := NewMachine("A"), NewMachine("B")
	for _, name := range []string{"web1", "web2"} {
		d, err := a.CreateDomain(name, tBlocks, tPages, workload.Web, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		writeTemplate(t, d, tBlocks*3/4, 64)
	}
	d1, _ := a.Domain("web1")
	d2, _ := a.Domain("web2")
	want1, want2 := snapshotDisk(t, d1), snapshotDisk(t, d2)

	rep1 := dedupHop(t, a, b, "web1")
	rep2 := dedupHop(t, a, b, "web2")
	domainDiskEqual(t, b, "web1", want1)
	domainDiskEqual(t, b, "web2", want2)

	if rep2.DedupBlocks != tBlocks {
		t.Fatalf("sibling moved %d of %d blocks by reference", rep2.DedupBlocks, tBlocks)
	}
	// Memory pages never dedup, so the acceptance bar is on disk bytes: the
	// sibling's disk transfer must be at least 5x smaller than the first
	// clone's (which itself already dedups repeats and zeros).
	diskBytes := func(rep *metrics.Report) int64 {
		var total int64
		for _, it := range rep.DiskIterations {
			total += it.Bytes
		}
		return total
	}
	if d1b, d2b := diskBytes(rep1), diskBytes(rep2); d2b*5 > d1b {
		t.Fatalf("sibling's disk transfer %d bytes vs first clone's %d — less than 5x", d2b, d1b)
	}
}

// TestDedupMigrateBack pins the IM/vault integration: a domain migrates
// A→B, its blocks are rewritten on B — partly with the same content —
// and the migration back to A (positionally incremental via the vault)
// additionally references every rewritten-but-identical block from A's
// retained copy instead of retransmitting it.
func TestDedupMigrateBack(t *testing.T) {
	a, b := NewMachine("A"), NewMachine("B")
	d, err := a.CreateDomain("g", tBlocks, tPages, workload.Web, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	writeTemplate(t, d, 512, 64)
	dedupHop(t, a, b, "g")

	// On B: rewrite 256 blocks with content identical to what they already
	// held (the vault cannot know; the fingerprint index can) and 32 blocks
	// with genuinely new content.
	db, _ := b.Domain("g")
	buf := make([]byte, blockdev.BlockSize)
	for n := 0; n < 256; n++ {
		workload.FillBlock(buf, n%64, 3) // same template payload as writeTemplate
		if err := db.Submit(blockdev.Request{Op: blockdev.Write, Block: n, Domain: db.VM().DomainID, Data: buf}); err != nil {
			t.Fatal(err)
		}
	}
	for n := 600; n < 632; n++ {
		workload.FillBlock(buf, n, 99)
		if err := db.Submit(blockdev.Request{Op: blockdev.Write, Block: n, Domain: db.VM().DomainID, Data: buf}); err != nil {
			t.Fatal(err)
		}
	}
	want := snapshotDisk(t, db)

	rep := dedupHop(t, b, a, "g")
	domainDiskEqual(t, a, "g", want)
	if rep.Scheme != "IM" {
		t.Fatalf("migrate-back scheme %q, want IM", rep.Scheme)
	}
	// The incremental set is those 288 dirty blocks; at least the 256
	// identical rewrites must ride as references against A's retained copy.
	if rep.DedupBlocks < 256 {
		t.Fatalf("only %d blocks deduped on the way back", rep.DedupBlocks)
	}
}

// TestSyncOutDedup pins the drain pre-sync integration: a pre-sync with
// Dedup set ships identical-content divergence as references, and the
// synced copy matches what a literal sync produces.
func TestSyncOutDedup(t *testing.T) {
	a, b := NewMachine("A"), NewMachine("B")
	d, err := a.CreateDomain("g", tBlocks, tPages, workload.Web, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	writeTemplate(t, d, 512, 64)
	// B already holds the domain (a previous migration's retained copy):
	// migrate there and back so both sides know each other.
	dedupHop(t, a, b, "g")
	dedupHop(t, b, a, "g")

	// Diverge on A: rewrite 128 blocks with template content B still holds.
	da, _ := a.Domain("g")
	buf := make([]byte, blockdev.BlockSize)
	for n := 256; n < 384; n++ {
		workload.FillBlock(buf, n%64, 3)
		if err := da.Submit(blockdev.Request{Op: blockdev.Write, Block: n, Domain: da.VM().DomainID, Data: buf}); err != nil {
			t.Fatal(err)
		}
	}

	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srvCh := make(chan error, 1)
	go func() {
		_, err := b.ServeSync(l)
		srvCh <- err
	}()
	sr, err := a.SyncOut("g", "B", l.Addr().String(), core.Config{Dedup: true, MaxExtentBlocks: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-srvCh; err != nil {
		t.Fatal(err)
	}
	if sr.Blocks == 0 {
		t.Fatal("pre-sync shipped nothing")
	}
	if sr.DedupBlocks != sr.Blocks {
		t.Fatalf("pre-sync deduped %d of %d blocks, want all (content identical)", sr.DedupBlocks, sr.Blocks)
	}
	// B's retained copy must now byte-match A's live disk.
	b.mu.Lock()
	retained := b.retained["g"]
	b.mu.Unlock()
	if retained == nil {
		t.Fatal("no retained copy on B")
	}
	diffs, err := blockdev.Diff(da.Disk(), retained)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("synced copy differs at %d blocks", len(diffs))
	}
	// And the vault considers B synced: a MigrateOut now ships ~nothing.
	if div := da.Vault().DivergentBlocks("B"); div != 0 {
		t.Fatalf("vault still shows %d divergent blocks after sync", div)
	}
}

// TestIndexPersistence pins the hostd persistence path: the index survives
// a save/load round trip, and a corrupt index file degrades to an empty
// index (migrations still converge, just without cross-restart dedup).
func TestIndexPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "content.bbdx")

	a, b := NewMachine("A"), NewMachine("B")
	if err := b.SetIndexPath(path); err != nil {
		t.Fatal(err)
	}
	d, err := a.CreateDomain("g", tBlocks, tPages, workload.Web, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	writeTemplate(t, d, 512, 64)
	dedupHop(t, a, b, "g")

	if st, err := os.Stat(path); err != nil || st.Size() == 0 {
		t.Fatalf("index not persisted after migration: %v", err)
	}
	// A fresh machine loads the persisted index cleanly.
	if err := NewMachine("B2").SetIndexPath(path); err != nil {
		t.Fatalf("reload: %v", err)
	}

	// Corrupt it: SetIndexPath must report the damage but leave a usable
	// empty index behind — full-send degradation, never wrong bytes.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewMachine("C")
	if err := c.SetIndexPath(path); err == nil {
		t.Fatal("corrupt index loaded silently")
	}
	if c.ContentIndex().Len() != 0 {
		t.Fatal("corrupt load left entries behind")
	}
	// The degraded machine still serves a correct dedup migration.
	d2, _ := b.Domain("g")
	want := snapshotDisk(t, d2)
	dedupHop(t, b, c, "g")
	domainDiskEqual(t, c, "g", want)

	// A valid index persisted with a foreign block size is equally
	// unusable: reject it, start empty, keep migrating.
	foreign := filepath.Join(dir, "foreign.bbdx")
	if err := dedup.NewIndex(512).SaveFile(foreign); err != nil {
		t.Fatal(err)
	}
	e := NewMachine("E")
	if err := e.SetIndexPath(foreign); err == nil {
		t.Fatal("foreign-block-size index loaded silently")
	}
	if e.ContentIndex().BlockSize() != blockdev.BlockSize {
		t.Fatal("degraded index has the wrong block size")
	}
}
