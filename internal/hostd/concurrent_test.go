package hostd

import (
	"fmt"
	"sync"
	"testing"

	"bbmig/internal/blockdev"
	"bbmig/internal/core"
	"bbmig/internal/transport"
	"bbmig/internal/workload"
)

// seedPattern writes `writes` recognizable blocks into a domain.
func seedPattern(t *testing.T, d *Domain, writes int, gen uint32) {
	t.Helper()
	buf := make([]byte, blockdev.BlockSize)
	for i := 0; i < writes; i++ {
		workload.FillBlock(buf, i, gen)
		if err := d.Submit(blockdev.Request{Op: blockdev.Write, Block: i, Domain: d.VM().DomainID, Data: buf}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentMigrations runs four simultaneous migrations touching one
// hub machine — two outbound, two inbound — over real TCP, the load the
// cluster scheduler puts on a host during churn. The hub's bookkeeping
// (domains map, progress trackers, domain-ID allocation) must hold under
// -race, and every guest must land intact.
func TestConcurrentMigrations(t *testing.T) {
	hub := NewMachine("hub")
	var peers []*Machine
	for i := 0; i < 4; i++ {
		peers = append(peers, NewMachine(fmt.Sprintf("peer%d", i)))
	}
	// Two domains leave the hub; two arrive from peers 2 and 3.
	for i, m := range []*Machine{hub, hub, peers[2], peers[3]} {
		d, err := m.CreateDomain(fmt.Sprintf("dom%d", i), 512, 32, workload.Web, int64(i), false)
		if err != nil {
			t.Fatal(err)
		}
		seedPattern(t, d, 128, uint32(10+i))
	}

	type leg struct {
		src, dst *Machine
		domain   string
	}
	legs := []leg{
		{hub, peers[0], "dom0"},
		{hub, peers[1], "dom1"},
		{peers[2], hub, "dom2"},
		{peers[3], hub, "dom3"},
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(legs)*2)
	for _, g := range legs {
		l, err := transport.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(2)
		go func(g leg) {
			defer wg.Done()
			defer l.Close()
			if _, err := g.dst.ServeOne(l, core.Config{}); err != nil {
				errs <- fmt.Errorf("%s<-%s: %w", g.dst.Name, g.src.Name, err)
			}
		}(g)
		go func(g leg, addr string) {
			defer wg.Done()
			if _, err := g.src.MigrateOut(g.domain, g.dst.Name, addr, core.Config{}); err != nil {
				errs <- fmt.Errorf("%s->%s: %w", g.src.Name, g.dst.Name, err)
			}
		}(g, l.Addr().String())
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Every domain landed where it should, with its pattern intact.
	wantAt := map[string]*Machine{
		"dom0": peers[0], "dom1": peers[1], "dom2": hub, "dom3": hub,
	}
	buf := make([]byte, blockdev.BlockSize)
	want := make([]byte, blockdev.BlockSize)
	for i, domain := range []string{"dom0", "dom1", "dom2", "dom3"} {
		d, ok := wantAt[domain].Domain(domain)
		if !ok {
			t.Fatalf("%s not hosted on %s", domain, wantAt[domain].Name)
		}
		for b := 0; b < 128; b++ {
			workload.FillBlock(want, b, uint32(10+i))
			if err := d.Disk().ReadBlock(b, buf); err != nil {
				t.Fatal(err)
			}
			if string(buf) != string(want) {
				t.Fatalf("%s block %d corrupted by concurrent migration", domain, b)
			}
		}
	}
	if got := hub.Load(); got.Domains != 2 || got.ActiveMigrations != 0 {
		t.Fatalf("hub load %+v after the churn, want 2 domains, 0 active", got)
	}
	// Departed domains left retained peer copies behind for IM.
	if got := hub.Load().RetainedDisks; got != 2 {
		t.Fatalf("hub retains %d disks, want 2", got)
	}
}

// TestSyncOutIncremental pre-syncs a running domain to a peer, keeps
// writing, and verifies the follow-up migration ships only the divergence —
// the drain path's shrunken cutover window.
func TestSyncOutIncremental(t *testing.T) {
	A, B := NewMachine("A"), NewMachine("B")
	d, err := A.CreateDomain("guest", tBlocks, tPages, workload.Web, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	seedPattern(t, d, 600, 1)

	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	syncErr := make(chan error, 1)
	go func() {
		_, err := B.ServeSync(l)
		syncErr <- err
	}()
	sr, err := A.SyncOut("guest", "B", l.Addr().String(), core.Config{MaxExtentBlocks: 64})
	l.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-syncErr; err != nil {
		t.Fatal(err)
	}
	if sr.Blocks != tBlocks {
		t.Fatalf("first sync shipped %d blocks, want the whole %d-block disk", sr.Blocks, tBlocks)
	}
	if sr.WireBytes <= int64(tBlocks)*blockdev.BlockSize {
		t.Fatalf("wire bytes %d below payload size", sr.WireBytes)
	}
	if got := A.Load().ActiveMigrations; got != 0 {
		t.Fatalf("sync left %d active migrations", got)
	}

	// The guest keeps running: 40 more writes diverge B's copy again.
	seedPattern(t, d, 40, 2)
	if got := d.Vault().DivergentBlocks("B"); got != 40 {
		t.Fatalf("vault says %d divergent blocks after post-sync writes, want 40", got)
	}

	// A second sync ships exactly the divergence.
	l2, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		_, err := B.ServeSync(l2)
		syncErr <- err
	}()
	sr2, err := A.SyncOut("guest", "B", l2.Addr().String(), core.Config{MaxExtentBlocks: 64})
	l2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-syncErr; err != nil {
		t.Fatal(err)
	}
	if sr2.Blocks != 40 {
		t.Fatalf("incremental sync shipped %d blocks, want 40", sr2.Blocks)
	}

	// The cutover migration now has nothing to pre-copy in iteration 1.
	rep := hop(t, A, B, "guest")
	if units := rep.DiskIterations[0].Units; units != 0 {
		t.Fatalf("cutover iteration 1 sent %d blocks, want 0 after pre-sync", units)
	}
	// And B's disk is byte-identical to what the guest wrote.
	got, ok := B.Domain("guest")
	if !ok {
		t.Fatal("guest not on B")
	}
	buf := make([]byte, blockdev.BlockSize)
	want := make([]byte, blockdev.BlockSize)
	for b := 0; b < 600; b++ {
		gen := uint32(1)
		if b < 40 {
			gen = 2
		}
		workload.FillBlock(want, b, gen)
		if err := got.Disk().ReadBlock(b, buf); err != nil {
			t.Fatal(err)
		}
		if string(buf) != string(want) {
			t.Fatalf("block %d wrong after pre-synced migration", b)
		}
	}
}

// TestSyncOutRollback cuts the sync connection mid-transfer and verifies the
// vault re-diverges the attempted set, so a later incremental migration
// cannot skip blocks the peer never received.
func TestSyncOutRollback(t *testing.T) {
	A := NewMachine("A")
	d, err := A.CreateDomain("guest", tBlocks, tPages, workload.Web, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	seedPattern(t, d, 200, 1)

	// A half-open "destination" that accepts, reads nothing, and closes
	// after the first frame lands in its buffer window.
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan struct{})
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		close(accepted)
		c.Close() // the sync's sends (or its final ack wait) must fail
	}()
	_, err = A.SyncOut("guest", "B", l.Addr().String(), core.Config{})
	l.Close()
	<-accepted
	if err == nil {
		t.Fatal("sync against a dead peer reported success")
	}
	// The whole disk must still be owed to B.
	if got := d.Vault().DivergentBlocks("B"); got != tBlocks {
		t.Fatalf("vault owes B %d blocks after failed sync, want %d", got, tBlocks)
	}
}
