// Package hostd is the host-daemon layer above the migration engine: the
// role Domain0's toolstack (xend, xc_linux_save/restore) plays in the
// paper's testbed. A Machine hosts multiple guest domains — the evaluation
// runs "two domains concurrently on each physical machine" — provisions a
// VBD for inbound migrations, drives each guest's synthetic workload, and
// orchestrates outbound migrations. The per-domain Vault travels with the
// VM, so migrating to any previously visited host is automatically
// incremental (the paper's §VII multi-host future-work item).
//
// Wire protocol: an outbound migration opens a connection, sends one
// MsgAnnounce frame (domain name, source host, geometry, workload), runs the
// ordinary engine protocol, and finishes with a second MsgAnnounce frame
// carrying the domain's serialized vault — sent after the freeze, so it
// covers every write the guest ever made on the source.
package hostd

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"bbmig/internal/blkback"
	"bbmig/internal/blockdev"
	"bbmig/internal/blockdev/bcache"
	"bbmig/internal/clock"
	"bbmig/internal/core"
	"bbmig/internal/dedup"
	"bbmig/internal/metrics"
	"bbmig/internal/transport"
	"bbmig/internal/vm"
	"bbmig/internal/workload"
)

// Domain is one guest managed by a Machine: the VM, its local disk, the I/O
// plumbing, and the divergence vault that travels with it. The disk is a
// blockdev.Volume — a cached, snapshot-capable view over whatever backing
// device the domain was provisioned on (MemDisk by default, a FileDisk via
// CreateDomainOn) — so migrations, pre-syncs, and index scans read frozen
// point-in-time snapshots while the guest keeps writing.
type Domain struct {
	Name string

	vmRef   *vm.VM
	disk    blockdev.Volume
	backend *blkback.Backend
	router  *core.Router
	vault   *core.Vault

	workKind workload.Kind
	workSeed int64
	hasWork  bool
	stopWork chan struct{}
	workWG   sync.WaitGroup
}

// VM returns the guest.
func (d *Domain) VM() *vm.VM { return d.vmRef }

// Disk returns the guest's VBD as a snapshot-capable Volume.
func (d *Domain) Disk() blockdev.Volume { return d.disk }

// Vault returns the divergence vault (for inspection by tests and tools).
func (d *Domain) Vault() *core.Vault { return d.vault }

// Submit routes one I/O request through the domain's current path and
// records writes in the vault, for callers driving their own load instead of
// a built-in workload. Every guest write MUST go through here (or the
// built-in workload, which does): a write that bypasses the vault would be
// invisible to future incremental migrations.
func (d *Domain) Submit(req blockdev.Request) error {
	if err := d.router.Submit(req); err != nil {
		return err
	}
	if req.Op == blockdev.Write && req.Domain == d.vmRef.DomainID {
		d.vault.RecordWriteRange(req.Block, req.Block+1)
	}
	return nil
}

// startWorkload launches (or relaunches) the domain's synthetic load; each
// launch advances the seed so the guest's processes produce new I/O after a
// migration rather than replaying the old trace.
func (d *Domain) startWorkload() {
	d.stopWork = make(chan struct{})
	d.workSeed++
	gen := workload.New(d.workKind, d.disk.NumBlocks(), d.workSeed)
	stop := d.stopWork
	d.workWG.Add(1)
	go func() {
		defer d.workWG.Done()
		// speedup 200: a laptop-scale stand-in for a continuously busy guest
		_, _ = workload.Replay(clock.NewReal(), gen, d.vmRef.DomainID, 24*time.Hour, 200, d.Submit, stop)
	}()
}

// StopWorkload quiesces the domain's workload, waiting for in-flight I/O.
func (d *Domain) StopWorkload() {
	if d.stopWork == nil {
		return
	}
	close(d.stopWork)
	d.workWG.Wait()
	d.stopWork = nil
}

// Machine is one physical host running a set of domains.
type Machine struct {
	Name string

	mu        sync.Mutex
	domains   map[string]*Domain
	retained  map[string]blockdev.Volume // disks of departed domains
	migrating map[string]*core.ProgressTracker
	nextID    int

	// cacheBlocks sizes the block cache wrapped around each newly
	// provisioned volume (0 = bcache.DefaultMaxBlocks); see SetCacheBlocks.
	cacheBlocks int

	// content-dedup state (see index.go): the machine-wide fingerprint
	// index, which disk sources have been scanned into it, and where it is
	// persisted. idxSaveMu serializes SaveIndex so concurrent migrations
	// cannot interleave writes through the shared temp file.
	idx        *dedup.Index
	idxScanned map[string]blockdev.Device
	idxPath    string
	idxSaveMu  sync.Mutex

	// swarmPeers is the standing list of peer swarm-serve addresses an
	// inbound swarm-capable migration fetches from when the caller's config
	// does not nominate its own (see SetSwarmPeers).
	swarmPeers []string
}

// NewMachine returns an empty Machine.
func NewMachine(name string) *Machine {
	return &Machine{
		Name:      name,
		domains:   make(map[string]*Domain),
		retained:  make(map[string]blockdev.Volume),
		migrating: make(map[string]*core.ProgressTracker),
		nextID:    1,
	}
}

// SetCacheBlocks sizes the block cache wrapped around each volume this
// machine provisions from now on: n blocks of cached reads and buffered
// writes per domain disk (0 restores bcache.DefaultMaxBlocks). Volumes
// already provisioned keep their existing cache.
func (m *Machine) SetCacheBlocks(n int) {
	m.mu.Lock()
	m.cacheBlocks = n
	m.mu.Unlock()
}

// newVolumeLocked wraps dev in this machine's block cache, making it a
// snapshot-capable Volume; a device that already is one is used as-is.
// Caller holds m.mu.
func (m *Machine) newVolumeLocked(dev blockdev.Device) blockdev.Volume {
	if v, ok := dev.(blockdev.Volume); ok {
		return v
	}
	return bcache.New(dev, m.cacheBlocks)
}

// trackMigration registers a progress tracker for an in-flight migration of
// the named domain and chains it into cfg's event stream. The returned
// function unregisters it.
func (m *Machine) trackMigration(name string, cfg *core.Config) func() {
	tracker := core.NewProgressTracker()
	cfg.OnEvent = core.ChainEvents(tracker.Handle, cfg.OnEvent)
	m.mu.Lock()
	m.migrating[name] = tracker
	m.mu.Unlock()
	return func() {
		m.mu.Lock()
		delete(m.migrating, name)
		m.mu.Unlock()
	}
}

// MigrationProgress reports the live state of an in-flight migration
// (inbound or outbound) of the named domain: current phase, completed
// iterations, wire bytes moved, suspend/resume milestones. ok is false when
// no migration of that domain is running here.
func (m *Machine) MigrationProgress(name string) (p core.Progress, ok bool) {
	m.mu.Lock()
	t := m.migrating[name]
	m.mu.Unlock()
	if t == nil {
		return core.Progress{}, false
	}
	return t.Snapshot(), true
}

// ActiveMigrations lists the domains currently migrating to or from this
// machine.
func (m *Machine) ActiveMigrations() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.migrating))
	for n := range m.migrating {
		names = append(names, n)
	}
	return names
}

// Domains lists the names of the domains currently hosted here.
func (m *Machine) Domains() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.domains))
	for n := range m.domains {
		names = append(names, n)
	}
	return names
}

// Domain looks up a hosted domain.
func (m *Machine) Domain(name string) (*Domain, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.domains[name]
	return d, ok
}

// CreateDomain provisions and starts a fresh guest on a RAM-backed VBD.
// With hasWorkload the built-in generator of the given kind drives it
// continuously.
func (m *Machine) CreateDomain(name string, blocks, pages int, kind workload.Kind, seed int64, hasWorkload bool) (*Domain, error) {
	return m.CreateDomainOn(name, blockdev.NewMemDisk(blocks, blockdev.BlockSize), pages, kind, seed, hasWorkload)
}

// CreateDomainOn provisions and starts a fresh guest on a caller-supplied
// backing device — a blockdev.FileDisk for a durable guest image, or any
// other Device. Geometry is taken from the device. The device is wrapped in
// the machine's block cache (becoming a snapshot-capable Volume) unless it
// already is one; with a write-back cache in front, flush the volume
// (Disk().Release or bcache.Cache.Flush) before reading the backing file
// directly.
func (m *Machine) CreateDomainOn(name string, dev blockdev.Device, pages int, kind workload.Kind, seed int64, hasWorkload bool) (*Domain, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.domains[name]; exists {
		return nil, fmt.Errorf("hostd: domain %q already exists on %s", name, m.Name)
	}
	id := m.nextID
	m.nextID++
	vol := m.newVolumeLocked(dev)
	d := &Domain{
		Name:     name,
		vmRef:    vm.New(name, id, pages, 1024),
		disk:     vol,
		vault:    core.NewVault(vol.NumBlocks()),
		workKind: kind,
		workSeed: seed,
		hasWork:  hasWorkload,
	}
	d.backend = blkback.NewBackend(d.disk, id)
	d.router = core.NewRouter(d.backend.Submit)
	m.domains[name] = d
	if hasWorkload {
		d.startWorkload()
	}
	return d, nil
}

// clampCompress bounds a flate level to the engine's accepted range
// (core.Config applies the same bounds), so the one-byte announce encoding
// and the receiver's mismatch check see the value the engines will run.
func clampCompress(level int) int {
	if level < -2 {
		return -2
	}
	if level > 9 {
		return 9
	}
	return level
}

// announce is the first MsgAnnounce payload: identity, geometry, the
// transport stream count the sender will open, the stream compression level
// both engines must use (negotiated here so a mismatch fails the handshake
// instead of corrupting the stream), and whether the sender will run a
// resumable session (so the receiver arms its reconnect accept path before
// the engine handshake offers the token).
type announce struct {
	name     string
	srcHost  string
	geom     transport.Geometry
	kind     workload.Kind
	work     bool
	streams  int
	compress int
	resume   bool
	dedup    bool
	swarm    bool
	delta    bool
}

// announceHeaderLen is the fixed prefix before the variable-length fields.
const announceHeaderLen = 12

func (a announce) marshal() ([]byte, error) {
	gb, err := a.geom.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out := make([]byte, announceHeaderLen)
	binary.LittleEndian.PutUint16(out[0:], uint16(len(a.name)))
	binary.LittleEndian.PutUint16(out[2:], uint16(len(a.srcHost)))
	out[4] = byte(a.kind)
	if a.work {
		out[5] = 1
	}
	out[6] = byte(a.streams)        // 0 reads as 1: pre-striping senders
	out[7] = byte(int8(a.compress)) // flate level, -2..9; 0 = uncompressed
	if a.resume {
		out[8] = 1
	}
	if a.dedup {
		out[9] = 1 // capability byte: content-addressed dedup frames will flow
	}
	if a.swarm {
		out[10] = 1 // capability byte: destination may open sidecar swarm sessions
	}
	if a.delta {
		out[11] = 1 // capability byte: delta sig/patch frames will flow
	}
	out = append(out, a.name...)
	out = append(out, a.srcHost...)
	out = append(out, gb...)
	return out, nil
}

func unmarshalAnnounce(data []byte) (announce, error) {
	var a announce
	if len(data) < announceHeaderLen {
		return a, fmt.Errorf("hostd: announce truncated")
	}
	nameLen := int(binary.LittleEndian.Uint16(data[0:]))
	srcLen := int(binary.LittleEndian.Uint16(data[2:]))
	a.kind = workload.Kind(data[4])
	a.work = data[5] == 1
	a.streams = int(data[6])
	if a.streams < 1 {
		a.streams = 1
	}
	a.compress = int(int8(data[7]))
	a.resume = data[8] == 1
	a.dedup = data[9] == 1
	a.swarm = data[10] == 1
	a.delta = data[11] == 1
	const geomLen = 32
	if len(data) != announceHeaderLen+nameLen+srcLen+geomLen {
		return a, fmt.Errorf("hostd: announce length %d inconsistent", len(data))
	}
	a.name = string(data[announceHeaderLen : announceHeaderLen+nameLen])
	a.srcHost = string(data[announceHeaderLen+nameLen : announceHeaderLen+nameLen+srcLen])
	return a, a.geom.UnmarshalBinary(data[announceHeaderLen+nameLen+srcLen:])
}

// MigrateOut migrates a domain to the machine listening at addr. If the
// domain's vault knows destHost, only the divergent blocks travel. On
// success the domain leaves this machine; its disk is retained as the local
// peer copy so the domain can return incrementally.
func (m *Machine) MigrateOut(domainName, destHost, addr string, cfg core.Config) (*metrics.Report, error) {
	m.mu.Lock()
	d, ok := m.domains[domainName]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("hostd: no domain %q on %s", domainName, m.Name)
	}

	streams := cfg.Streams
	if streams < 1 {
		streams = 1
	}
	if streams > transport.MaxStreams {
		streams = transport.MaxStreams // the announce carries the count in one byte
	}
	conn0, err := transport.Dial(addr)
	if err != nil {
		return nil, err
	}

	mem := d.vmRef.Memory()
	ann := announce{
		name:    domainName,
		srcHost: m.Name,
		geom: transport.Geometry{
			BlockSize: d.disk.BlockSize(), NumBlocks: d.disk.NumBlocks(),
			PageSize: mem.PageSize(), NumPages: mem.NumPages(),
		},
		kind:     d.workKind,
		work:     d.hasWork,
		streams:  streams,
		compress: clampCompress(cfg.CompressLevel),
		resume:   cfg.MaxRetries > 0,
		dedup:    cfg.Dedup,
		swarm:    cfg.Dedup && cfg.Swarm,
		delta:    cfg.Delta,
	}
	ab, err := ann.marshal()
	if err != nil {
		conn0.Close()
		return nil, err
	}
	if err := conn0.Send(transport.Message{Type: transport.MsgAnnounce, Payload: ab}); err != nil {
		conn0.Close()
		return nil, err
	}
	// The announce names the stream count; dial the extra data streams and
	// label each so the destination can reassemble the bundle.
	var conn transport.Conn = conn0
	if streams > 1 {
		striped, err := transport.DialExtraStreams(addr, conn0, streams, nil)
		if err != nil {
			return nil, fmt.Errorf("hostd: %w", err)
		}
		conn = striped
	}
	// With retries enabled, each reconnect re-dials a single plain stream
	// (resumed epochs trade striping for simplicity; compression is
	// re-applied by the engine). cur tracks the live link so the vault
	// ships over whatever connection the migration ended on.
	cur := conn
	if cfg.MaxRetries > 0 {
		cfg.Redial = func() (transport.Conn, error) {
			c, err := transport.Dial(addr)
			if err != nil {
				return nil, err
			}
			cur = c
			return c, nil
		}
	}
	defer func() { cur.Close() }()

	// Seed incremental migration from the vault's view of the destination;
	// writes from here to the freeze are tracked by the backend as usual.
	d.backend.SeedDirty(d.vault.InitialFor(destHost))

	userFreeze := cfg.OnFreeze
	cfg.OnFreeze = func() {
		if userFreeze != nil {
			userFreeze()
		}
		d.StopWorkload()
		d.router.Freeze()
	}
	untrack := m.trackMigration(domainName, &cfg)
	defer untrack()
	rep, err := core.MigrateSource(cfg, core.Host{VM: d.vmRef, Backend: d.backend}, conn, d.backend.SwapDirty())
	if err != nil {
		// The guest must keep running here on failure.
		d.router.ResumeAt(d.backend.Submit)
		if d.hasWork && d.stopWork == nil {
			d.startWorkload()
		}
		return rep, err
	}

	// Ship the vault — captured after the freeze, it covers every write the
	// guest made on this host. The destination applies it before restarting
	// the guest's activity.
	vb, err := d.vault.MarshalBinary()
	if err != nil {
		return rep, err
	}
	if err := cur.Send(transport.Message{Type: transport.MsgAnnounce, Payload: vb}); err != nil {
		return rep, fmt.Errorf("hostd: ship vault: %w", err)
	}

	// Finite dependency achieved: drop the domain, retain the frozen disk
	// as this machine's peer copy.
	m.mu.Lock()
	delete(m.domains, domainName)
	m.retained[domainName] = d.disk
	m.mu.Unlock()
	return rep, nil
}

// ServeOne accepts exactly one inbound migration on l and hosts the received
// domain afterwards, returning the destination-side result. When the
// announce names more than one stream, the sender's extra connections are
// accepted from l and bundled before the engine runs.
func (m *Machine) ServeOne(l net.Listener, cfg core.Config) (*core.DestResult, error) {
	conn, err := transport.Accept(l)
	if err != nil {
		return nil, err
	}
	defer func() { conn.Close() }()
	return m.receive(&conn, l, cfg)
}

// receive runs the destination side over *connp, upgrading it in place to a
// striped bundle when the announce asks for one (so the caller's deferred
// Close tears down every stream).
func (m *Machine) receive(connp *transport.Conn, l net.Listener, cfg core.Config) (*core.DestResult, error) {
	conn := *connp
	first, err := conn.Recv()
	if err != nil {
		return nil, err
	}
	if first.Type != transport.MsgAnnounce {
		return nil, fmt.Errorf("hostd: expected ANNOUNCE, got %v", first.Type)
	}
	ann, err := unmarshalAnnounce(first.Payload)
	if err != nil {
		return nil, err
	}
	if ann.streams > 1 {
		// On failure AcceptExtraStreams already closed conn; the caller's
		// deferred second Close is harmless.
		striped, err := transport.AcceptExtraStreams(l, conn, ann.streams, nil)
		if err != nil {
			return nil, fmt.Errorf("hostd: %w", err)
		}
		conn, *connp = striped, striped
	}
	// Compression is negotiated by the announce: the sender names the level
	// and a receiver configured with a conflicting one refuses before any
	// engine frame crosses, rather than corrupting the stream. An
	// unconfigured receiver adopts the sender's level.
	if local := clampCompress(cfg.CompressLevel); local != 0 && local != ann.compress {
		return nil, fmt.Errorf("hostd: compress level mismatch: sender %d, receiver %d", ann.compress, local)
	}
	cfg.CompressLevel = ann.compress
	// Content dedup is a sender-declared capability the receiver adopts:
	// any hostd can serve adverts from its machine index, so there is
	// nothing to refuse. The index is readied before the engine runs so the
	// first advert already sees every retained and clone-sibling disk.
	cfg.Dedup = ann.dedup
	if ann.dedup {
		cfg.DedupIndex = m.prepareDedup()
		cfg.DedupName = diskSourceName(ann.name)
	}
	// Delta is likewise sender-declared and receiver-adopted: the receiver
	// only ever answers signature requests from its own disk content, so
	// there is nothing to refuse (its DeltaChunk stays a local knob — the
	// chunk size travels inside every signature and patch).
	cfg.Delta = ann.delta
	// Swarm is announced permission, not obligation: the sender allows
	// sidecar fetches, and this receiver engages them only when it actually
	// has peer addresses — from the caller's config (the cluster passes its
	// nominations there) or the machine's standing SetSwarmPeers list. An
	// un-announced migration never opens sidecar sessions, whatever the
	// receiver's configuration says.
	if ann.dedup && ann.swarm {
		if len(cfg.SwarmPeers) == 0 {
			cfg.SwarmPeers = m.swarmPeerList()
		}
		cfg.Swarm = len(cfg.SwarmPeers) > 0
	} else {
		cfg.Swarm = false
		cfg.SwarmPeers = nil
	}
	// A resumable sender reconnects to the same listener; the accept loop
	// parks there until a connection opens with the session's resume frame
	// and hands it (and the vault that follows the engine exchange) to the
	// engine. cur tracks the live link across rebinds — the engine may
	// recover from either its receive loop or a pull-send goroutine, so the
	// holder is mutex-guarded.
	var curMu sync.Mutex
	cur := conn
	liveConn := func() transport.Conn {
		curMu.Lock()
		defer curMu.Unlock()
		return cur
	}
	// The caller's deferred Close must tear down the link the migration
	// ended on, not the one it started on.
	defer func() { *connp = liveConn() }()
	if ann.resume {
		cfg.WaitReconnect = func(token transport.SessionToken, lastEpoch uint32) (transport.Conn, uint32, error) {
			c, epoch, err := transport.AcceptResume(l, token, lastEpoch, transport.DefaultResumeWait)
			if err != nil {
				return nil, 0, err
			}
			curMu.Lock()
			cur = c
			curMu.Unlock()
			return c, epoch, nil
		}
	}

	m.mu.Lock()
	if _, exists := m.domains[ann.name]; exists {
		m.mu.Unlock()
		return nil, fmt.Errorf("hostd: domain %q already hosted on %s", ann.name, m.Name)
	}
	id := m.nextID
	m.nextID++
	// A returning domain resumes onto this machine's retained copy; a new
	// one gets a fresh zeroed VBD behind the machine's block cache.
	disk := m.retained[ann.name]
	if disk == nil || disk.NumBlocks() != ann.geom.NumBlocks {
		disk = m.newVolumeLocked(blockdev.NewMemDisk(ann.geom.NumBlocks, blockdev.BlockSize))
	} else {
		delete(m.retained, ann.name)
	}
	m.mu.Unlock()

	d := &Domain{
		Name:     ann.name,
		disk:     disk,
		workKind: ann.kind,
		workSeed: int64(id) * 1000,
		hasWork:  ann.work,
	}
	shell := vm.New(ann.name, id, ann.geom.NumPages, 0)
	shell.Suspend()
	d.vmRef = shell
	d.backend = blkback.NewBackend(disk, id)
	d.router = core.NewRouter(d.backend.Submit)

	userResume := cfg.OnResume
	cfg.OnResume = func(g *blkback.PostCopyGate) {
		d.router.ResumeGate(g)
		if userResume != nil {
			userResume(g)
		}
	}
	untrack := m.trackMigration(ann.name, &cfg)
	defer untrack()
	// A failed inbound migration discards the domain (and its half-written
	// VBD, which the engine registered in the machine index); drop the
	// registration too, or the abandoned disk stays pinned in — and keeps
	// answering adverts from — the shared index.
	hosted := false
	if ann.dedup {
		defer func() {
			if !hosted {
				m.dropIndexedDisk(ann.name)
			}
		}()
	}
	res, err := core.MigrateDest(cfg, core.Host{VM: shell, Backend: d.backend}, conn)
	if err != nil {
		return res, err
	}

	// The vault frame follows the engine's Done exchange, on whatever
	// connection the migration ended on.
	vf, err := liveConn().Recv()
	if err != nil {
		return res, fmt.Errorf("hostd: waiting for vault: %w", err)
	}
	if vf.Type != transport.MsgAnnounce {
		return res, fmt.Errorf("hostd: expected vault frame, got %v", vf.Type)
	}
	vault, err := core.UnmarshalVault(vf.Payload)
	if err != nil {
		return res, err
	}
	// Bookkeeping order matters: the source now holds a copy frozen at the
	// freeze point (MarkSynced resets its set), and the post-copy fresh
	// writes happened after that point (RecordWrites re-diverges every
	// peer, including the source).
	vault.MarkSynced(ann.srcHost)
	vault.RecordWrites(res.Gate.FreshBitmap())
	d.vault = vault

	m.mu.Lock()
	m.domains[ann.name] = d
	m.mu.Unlock()
	if ann.dedup {
		hosted = true
		// The engine observed every received block; no rescan needed. The
		// persisted index now covers the new arrival too.
		m.noteIndexed(ann.name)
		_ = m.SaveIndex()
	}
	if d.hasWork {
		d.startWorkload()
	}
	return res, nil
}
