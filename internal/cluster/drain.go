package cluster

import (
	"fmt"
	"sort"
	"time"

	"bbmig/internal/hostd"
	"bbmig/internal/metrics"
)

// DefaultDrainRetries is the per-migration reconnect budget a drain uses
// when DrainOptions.Retries is zero: planned maintenance should ride out
// link flaps via the resume path rather than strand a half-evacuated host.
const DefaultDrainRetries = 3

// DrainOptions parameterizes one evacuation.
type DrainOptions struct {
	// PreSync pushes each domain's divergence to its target before the live
	// migration, shrinking the cutover window (the paper's IM pre-sync for
	// planned maintenance). Targets that already hold an old copy of the
	// domain benefit most; first-visit targets receive a full background
	// sync while the guest keeps running.
	PreSync bool
	// Retries is each migration's resume budget (core.Config.MaxRetries);
	// zero selects DefaultDrainRetries, negative disables resumption.
	Retries int
	// Exclude lists members never to place evacuated domains onto.
	Exclude []string
	// Replace lets a failed move re-place onto a different host and try
	// once more. It defaults to true; set ReplaceDisabled to turn it off.
	ReplaceDisabled bool
}

// Move records one domain's evacuation outcome.
type Move struct {
	// Domain is the migrated guest; Target the host it landed on (the last
	// one attempted, when Err is set).
	Domain, Target string
	// Sync is the pre-sync summary, when DrainOptions.PreSync asked for one
	// and the job got far enough to run it.
	Sync *hostd.SyncReport
	// Report is the source-side migration report (nil when the move died
	// before the engine produced one).
	Report *metrics.Report
	// Attempts counts scheduler jobs spent on the domain (1 = first try).
	Attempts int
	// Err is the terminal error; nil means the domain evacuated.
	Err error
}

// DrainResult summarizes one evacuation.
type DrainResult struct {
	// Host is the drained member.
	Host string
	// Moves has one entry per domain that was hosted there, in name order.
	Moves []Move
	// Makespan is the wall time from drain start to the last move settling.
	Makespan time.Duration
}

// Failed returns the moves that did not complete.
func (r *DrainResult) Failed() []Move {
	var out []Move
	for _, m := range r.Moves {
		if m.Err != nil {
			out = append(out, m)
		}
	}
	return out
}

// Drain evacuates every domain off the named host: the host is marked
// draining (no placement onto it), one PriorityEvacuate job per domain is
// submitted with the resume budget of DrainOptions.Retries, and the call
// blocks until every move settles. A move whose migration fails is re-placed
// onto a different host and retried once (unless ReplaceDisabled); link
// flaps within a move are ridden out by the engine's resume path without
// surfacing here at all.
//
// The host stays draining afterwards — maintenance usually follows — until
// Undrain re-admits it.
func (c *Cluster) Drain(host string, opts DrainOptions) (*DrainResult, error) {
	c.mu.Lock()
	mb, ok := c.members[host]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: unknown member %q", host)
	}
	mb.draining = true
	machine := mb.machine
	c.mu.Unlock()

	retries := opts.Retries
	if retries == 0 {
		retries = DefaultDrainRetries
	}
	if retries < 0 {
		retries = 0
	}
	cfg := c.opts.BaseConfig
	cfg.MaxRetries = retries

	domains := machine.Domains()
	sort.Strings(domains)
	start := c.opts.Now()
	res := &DrainResult{Host: host}

	type inflight struct {
		domain string
		ticket *Ticket
	}
	var flights []inflight
	for _, d := range domains {
		t, err := c.Submit(Job{
			Domain: d, From: host, Priority: PriorityEvacuate,
			PreSync: opts.PreSync, Config: &cfg,
		})
		if err != nil {
			res.Moves = append(res.Moves, Move{Domain: d, Attempts: 0, Err: err})
			continue
		}
		flights = append(flights, inflight{domain: d, ticket: t})
	}

	for _, f := range flights {
		err := f.ticket.Wait()
		mv := Move{Domain: f.domain, Target: f.ticket.Target(), Report: f.ticket.Report(), Attempts: 1}
		mv.Sync, _ = f.ticket.SyncReport()
		mv.Err = err
		if err != nil && !opts.ReplaceDisabled {
			// Re-place away from the failed target and try once more. A move
			// that died before dispatch has no target yet — an empty string
			// in the exclude list would exclude nothing (no member is named
			// ""), so drop empties rather than ship a vacuous exclusion.
			exclude := make([]string, 0, 1+len(opts.Exclude))
			for _, e := range append([]string{mv.Target}, opts.Exclude...) {
				if e != "" {
					exclude = append(exclude, e)
				}
			}
			if to, perr := c.PlaceDomain(f.domain, host, exclude...); perr == nil {
				if t2, serr := c.Submit(Job{
					Domain: f.domain, From: host, To: to, Priority: PriorityEvacuate,
					PreSync: opts.PreSync, Config: &cfg,
				}); serr == nil {
					mv.Attempts++
					mv.Err = t2.Wait()
					mv.Target = t2.Target()
					if rep := t2.Report(); rep != nil {
						mv.Report = rep
					}
					if sr, _ := t2.SyncReport(); sr != nil {
						mv.Sync = sr
					}
				}
			}
		}
		res.Moves = append(res.Moves, mv)
	}
	res.Makespan = c.opts.Now().Sub(start)
	return res, nil
}

// RebalanceResult summarizes one Rebalance pass.
type RebalanceResult struct {
	// Moves lists the migrations the pass ran, in submission order.
	Moves []Move
}

// planned is one spread-closing move a rebalance plan proposes.
type planned struct{ domain, from, to string }

// rebalancePlan heartbeats the schedulable members and greedily plans
// spread-≤1 moves against the fresh snapshot: while the spread between the
// most- and least-loaded eligible host exceeds one domain, ship one domain
// from the fullest host to the emptiest. Draining, stale, skipped, and
// excluded hosts neither give nor receive; skip lists domains not to plan
// (the autopilot's in-flight set). The plan is deterministic for a given
// snapshot: hosts tie-break by name, domains are claimed in name order.
func (c *Cluster) rebalancePlan(exclude map[string]bool, skip map[string]bool) []planned {
	// Plan against a consistent snapshot of fresh loads.
	c.mu.Lock()
	type hostCount struct {
		name    string
		machine *hostd.Machine
		count   int
	}
	var hosts []hostCount
	for _, m := range c.members {
		if exclude[m.name] || m.draining || !c.aliveLocked(m) {
			continue
		}
		c.heartbeatLocked(m)
		hosts = append(hosts, hostCount{m.name, m.machine, m.load.Domains})
	}
	c.mu.Unlock()
	if len(hosts) < 2 {
		return nil
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i].name < hosts[j].name })

	taken := make(map[string]int) // domains already claimed per source
	var plan []planned
	for {
		hi, lo := 0, 0
		for i := range hosts {
			if hosts[i].count > hosts[hi].count {
				hi = i
			}
			if hosts[i].count < hosts[lo].count {
				lo = i
			}
		}
		if hosts[hi].count-hosts[lo].count <= 1 {
			break
		}
		names := hosts[hi].machine.Domains()
		sort.Strings(names)
		claimed := false
		for taken[hosts[hi].name] < len(names) {
			d := names[taken[hosts[hi].name]]
			taken[hosts[hi].name]++
			if skip[d] {
				continue
			}
			plan = append(plan, planned{d, hosts[hi].name, hosts[lo].name})
			claimed = true
			break
		}
		if !claimed {
			break // nothing left to claim (loads moved under us, or all skipped)
		}
		hosts[hi].count--
		hosts[lo].count++
	}
	return plan
}

// Rebalance evens domain counts across schedulable members: while the
// spread between the most- and least-loaded eligible host exceeds one
// domain, it moves one domain from the fullest host to the emptiest, then
// waits for every submitted move. Draining, stale, and excluded hosts
// neither give nor receive.
func (c *Cluster) Rebalance(exclude ...string) (*RebalanceResult, error) {
	ex := make(map[string]bool, len(exclude))
	for _, n := range exclude {
		ex[n] = true
	}
	plan := c.rebalancePlan(ex, nil)

	res := &RebalanceResult{}
	var tickets []*Ticket
	for _, p := range plan {
		t, err := c.Submit(Job{Domain: p.domain, From: p.from, To: p.to, Priority: PriorityNormal})
		if err != nil {
			res.Moves = append(res.Moves, Move{Domain: p.domain, Target: p.to, Err: err})
			continue
		}
		tickets = append(tickets, t)
	}
	for _, t := range tickets {
		// Wait before reading the target: a move still queued at read time
		// has no resolved destination yet, and reporting the placement plan
		// instead of where the domain actually landed would lie whenever the
		// dispatcher re-placed it.
		mv := Move{Domain: t.Job().Domain, Attempts: 1}
		mv.Err = t.Wait()
		mv.Target = t.Target()
		mv.Report = t.Report()
		res.Moves = append(res.Moves, mv)
	}
	return res, nil
}
