package cluster

import (
	"bytes"
	"testing"

	"bbmig/internal/blockdev"
	"bbmig/internal/core"
	"bbmig/internal/workload"
)

// TestClusterSwarmMigration runs Options.Swarm end to end: a clone sibling
// on a third machine makes its shared index able to produce the moving
// domain's content, the scheduler nominates it and starts a sidecar serve
// session, and the cold destination fetches every non-zero block from the
// peer — so the source ships the whole disk by reference, and the landed
// bytes still verify.
func TestClusterSwarmMigration(t *testing.T) {
	const filled = 256
	c := New(Options{Swarm: true, BaseConfig: core.Config{Dedup: true, MaxExtentBlocks: 16}})
	ms := newFleet(t, c, 3, 4)
	addDomain(t, ms[0], "guest", filled)
	addDomain(t, ms[2], "sibling", filled) // identical template content
	for _, m := range ms {
		if _, err := c.Heartbeat(m.Name); err != nil {
			t.Fatal(err)
		}
	}

	tk, err := c.Submit(Job{Domain: "guest", From: "host0", To: "host1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	rep := tk.Report()
	if rep == nil {
		t.Fatal("no migration report")
	}
	// The zero blocks elide natively; the filled blocks exist only in the
	// sibling's index, so anything short of a full-reference transfer means
	// the swarm peer was never consulted.
	if rep.DedupBlocks != tBlocks {
		t.Fatalf("%d of %d blocks travelled by reference — swarm peer not consulted", rep.DedupBlocks, tBlocks)
	}

	d, ok := ms[1].Domain("guest")
	if !ok {
		t.Fatal("guest not hosted on destination")
	}
	want := make([]byte, blockdev.BlockSize)
	got := make([]byte, blockdev.BlockSize)
	for i := 0; i < filled; i++ {
		workload.FillBlock(want, i, 7)
		if err := d.Disk().ReadBlock(i, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d landed wrong", i)
		}
	}
}
