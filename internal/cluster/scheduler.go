package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"bbmig/internal/clock"
	"bbmig/internal/core"
	"bbmig/internal/hostd"
	"bbmig/internal/metrics"
)

// Priority orders queued jobs; higher runs first. Within a priority, jobs
// run in submission order.
type Priority uint8

// Job priorities, lowest to highest.
const (
	// PriorityLow suits background optimization moves.
	PriorityLow Priority = iota
	// PriorityNormal is the default for rebalancing and operator moves.
	PriorityNormal
	// PriorityHigh jumps the normal queue.
	PriorityHigh
	// PriorityEvacuate is reserved for drains: maintenance empties a host
	// before anything else runs.
	PriorityEvacuate
)

// String implements fmt.Stringer.
func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityNormal:
		return "normal"
	case PriorityHigh:
		return "high"
	case PriorityEvacuate:
		return "evacuate"
	}
	return fmt.Sprintf("Priority(%d)", uint8(p))
}

// Job describes one migration for the scheduler.
type Job struct {
	// Domain is the guest to move; it must be hosted on From at submit time.
	Domain string
	// From is the source member name.
	From string
	// To, when non-empty, pins the destination; empty lets the placement
	// engine choose at dispatch time (fresher loads win).
	To string
	// Priority orders the queue; the zero value is PriorityLow.
	Priority Priority
	// PreSync, when true, pushes the domain's divergence to the destination
	// (hostd.SyncOut) before the live migration, so the cutover ships only
	// blocks written since — the paper's IM pre-sync. A pre-sync failure is
	// recorded but does not fail the job: the migration simply runs without
	// the head start.
	PreSync bool
	// Config, when non-nil, replaces the cluster's BaseConfig for this job
	// (the scheduler still wraps its Policy in the shared-budget decorator).
	Config *core.Config
	// NotBefore, when non-zero, holds the job in the queue until that
	// time: the caller's own trough plan. With Options.Forecast on and
	// NotBefore zero, admission stamps its own deferral from the domain's
	// predicted trough (low/normal priority only).
	NotBefore time.Time
}

// JobState is a Ticket's lifecycle position.
type JobState uint8

// Ticket states.
const (
	// JobQueued means the job is admitted to the queue but not started.
	JobQueued JobState = iota
	// JobRunning means the migration (or its pre-sync) is in flight.
	JobRunning
	// JobDone means the migration completed; Report is set.
	JobDone
	// JobFailed means the migration errored; Err is set and the guest keeps
	// running on the source.
	JobFailed
	// JobCanceled means Cancel won the race before the job started.
	JobCanceled
)

// String implements fmt.Stringer.
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	case JobCanceled:
		return "canceled"
	}
	return fmt.Sprintf("JobState(%d)", uint8(s))
}

// Ticket tracks one submitted job. All methods are safe for concurrent use.
type Ticket struct {
	c   *Cluster
	seq uint64
	job Job

	mu        sync.Mutex
	state     JobState
	target    string
	report    *metrics.Report
	sync      *hostd.SyncReport
	syncE     error
	err       error
	done      chan struct{}
	notBefore time.Time // resolved deferral (explicit or trough-stamped)
	deferEval bool      // trough deferral decided (it is decided once)
	wakeArmed bool      // a re-dispatch timer for notBefore exists
}

// Job returns the submitted job (To as submitted; see Target for the
// resolved destination).
func (t *Ticket) Job() Job { return t.job }

// State returns the ticket's current lifecycle state.
func (t *Ticket) State() JobState {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// Target returns the resolved destination member (empty until dispatch).
func (t *Ticket) Target() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.target
}

// NotBefore returns the job's resolved earliest-start time: the submitted
// Job.NotBefore, or the trough admission stamped onto it (zero when the job
// is free to start immediately).
func (t *Ticket) NotBefore() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.notBefore
}

// Report returns the source-side migration report (nil until JobDone, and on
// failures that died before the engine produced one).
func (t *Ticket) Report() *metrics.Report {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.report
}

// SyncReport returns the pre-sync outcome: the transfer summary and the
// pre-sync's own error, if it had one (a pre-sync failure leaves the
// migration itself to run, so Err may still be nil).
func (t *Ticket) SyncReport() (*hostd.SyncReport, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sync, t.syncE
}

// Err returns the terminal error (nil while running and on success).
func (t *Ticket) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Done returns a channel closed when the ticket reaches a terminal state.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks until the ticket is terminal and returns Err.
func (t *Ticket) Wait() error {
	<-t.done
	return t.Err()
}

// Cancel removes a still-queued job from the scheduler, returning true on
// success. A job that already started cannot be canceled — the migration
// either completes or fails on its own (block-bitmap migrations are not
// abortable mid-flight without stranding the guest), so Cancel returns
// false and the caller Waits.
func (t *Ticket) Cancel() bool {
	t.mu.Lock()
	if t.state != JobQueued {
		t.mu.Unlock()
		return false
	}
	t.state = JobCanceled
	t.err = fmt.Errorf("cluster: job canceled")
	close(t.done)
	t.mu.Unlock()

	c := t.c
	c.mu.Lock()
	for i, q := range c.pending {
		if q == t {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
	return true
}

// Submit admits a job to the scheduler, returning its ticket. The job is
// validated against current membership (source registered and hosting the
// domain, pinned destination registered and distinct); it starts as soon as
// admission control allows — possibly before Submit returns.
func (c *Cluster) Submit(job Job) (*Ticket, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	src, ok := c.members[job.From]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown source member %q", job.From)
	}
	if _, hosted := src.machine.Domain(job.Domain); !hosted {
		return nil, fmt.Errorf("cluster: domain %q not hosted on %q", job.Domain, job.From)
	}
	if job.To != "" {
		if _, ok := c.members[job.To]; !ok {
			return nil, fmt.Errorf("cluster: unknown destination member %q", job.To)
		}
		if job.To == job.From {
			return nil, fmt.Errorf("cluster: job source and destination are both %q", job.From)
		}
	}
	c.seq++
	t := &Ticket{c: c, seq: c.seq, job: job, done: make(chan struct{}), notBefore: job.NotBefore}
	c.pending = append(c.pending, t)
	sort.SliceStable(c.pending, func(i, j int) bool {
		if c.pending[i].job.Priority != c.pending[j].job.Priority {
			return c.pending[i].job.Priority > c.pending[j].job.Priority
		}
		return c.pending[i].seq < c.pending[j].seq
	})
	c.dispatchLocked()
	return t, nil
}

// dispatchLocked starts every queued job admission control allows, in
// priority order. Jobs whose source or (placed) destination is saturated are
// skipped, not blocked on — a stalled high-priority job never starves an
// admissible lower-priority one on other hosts.
func (c *Cluster) dispatchLocked() {
	kept := c.pending[:0]
	for _, t := range c.pending {
		if t.State() != JobQueued {
			continue // canceled concurrently
		}
		if !c.admitLocked(t) {
			kept = append(kept, t)
			continue
		}
	}
	c.pending = kept
}

// Dispatch re-runs admission control over the queue immediately. The
// scheduler calls it on every submit, completion, and deferral expiry;
// exporting it lets control loops (and tests driving a synthetic
// Options.Now) force re-evaluation after time or load they control has
// moved.
func (c *Cluster) Dispatch() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dispatchLocked()
}

// deferredLocked reports whether t must keep waiting for its earliest-start
// time. On the first admission attempt of a low/normal-priority job with
// Forecast on, it also decides — once — whether to stamp a predicted-trough
// deferral onto the ticket: if the domain's current predicted write rate
// exceeds the predicted trough rate by Options.TroughRatio, starting now
// would balloon the pre-copy's retransfers (§IV: the dirty rate would catch
// the transfer rate sooner), so the job waits for the trough instead. A
// deferred ticket arms a one-shot timer to re-dispatch when its time comes.
func (c *Cluster) deferredLocked(t *Ticket) bool {
	now := c.opts.Now()
	t.mu.Lock()
	if !t.deferEval {
		t.deferEval = true
		if t.notBefore.IsZero() && c.opts.Forecast && t.job.Priority <= PriorityNormal {
			if until, ok := c.troughLocked(t.job.Domain, now); ok {
				t.notBefore = until
			}
		}
	}
	nb := t.notBefore
	armed := t.wakeArmed
	if !nb.IsZero() && now.Before(nb) && !armed {
		t.wakeArmed = true
	}
	t.mu.Unlock()
	if nb.IsZero() || !now.Before(nb) {
		return false
	}
	if !armed {
		time.AfterFunc(nb.Sub(now), c.Dispatch)
	}
	return true
}

// troughLocked asks the domain's forecast model whether now is a bad time
// to migrate, returning the predicted trough time when deferral is worth it.
func (c *Cluster) troughLocked(domain string, now time.Time) (time.Time, bool) {
	mdl, ok := c.models[domain]
	if !ok || mdl.Samples() < 16 {
		return time.Time{}, false // not enough history to disagree with "now"
	}
	at := now.Sub(c.start)
	cur := mdl.RateAt(at)
	troughAt, troughRate := mdl.NextTrough(at, c.opts.ForecastHorizon)
	if troughAt <= at || cur <= c.opts.TroughRatio*troughRate+1e-9 {
		return time.Time{}, false
	}
	return c.start.Add(troughAt), true
}

// admitLocked starts t if admission control allows, reporting whether it
// left the queue.
func (c *Cluster) admitLocked(t *Ticket) bool {
	if c.deferredLocked(t) {
		return false
	}
	if c.running >= c.opts.MaxTotal {
		return false
	}
	// Bandwidth admission: never start a migration that would dilute the
	// per-migration share below the configured floor. Read the live budget,
	// not Options — SetTotal retunes and out-of-band Joins count too.
	if c.opts.MinShare > 0 {
		if total := c.budget.Total(); total != clock.Unlimited &&
			total/int64(c.budget.Active()+1) < c.opts.MinShare {
			return false
		}
	}
	src, ok := c.members[t.job.From]
	if !ok || !c.aliveLocked(src) {
		return false
	}
	if src.runningIn+src.runningOut >= c.opts.MaxPerHost {
		return false
	}
	var dst *member
	if t.job.To != "" {
		dst = c.members[t.job.To]
		if dst == nil || !c.aliveLocked(dst) ||
			dst.runningIn+dst.runningOut >= c.opts.MaxPerHost {
			return false
		}
		// Concurrency pressure is transient (defer above); a pinned
		// destination out of domain capacity is not — fail the job rather
		// than park it forever or overfill the host past its contract.
		if dst.capacity-dst.load.Domains-dst.runningIn <= 0 {
			return c.failQueuedLocked(t, fmt.Errorf(
				"cluster: pinned destination %q is at capacity (%d domains)", dst.name, dst.load.Domains))
		}
	} else {
		var err error
		if dst, err = c.placeLocked(t.job.Domain, t.job.From, nil); err != nil {
			return false // no destination right now; retry at next dispatch
		}
	}

	// Claim the ticket: Cancel may have flipped it since the queue scan
	// (it takes only t.mu), and a canceled ticket must neither run nor have
	// its closed done channel closed again.
	t.mu.Lock()
	if t.state != JobQueued {
		t.mu.Unlock()
		return true // leave the queue without running
	}
	t.state = JobRunning
	t.target = dst.name
	t.mu.Unlock()

	src.runningOut++
	dst.runningIn++
	c.running++
	// Reserve the bandwidth share at admission, not when the job goroutine
	// gets scheduled, so the MinShare check above always sees every
	// already-admitted migration in Budget().Active().
	leave := c.budget.Join()
	go c.runJob(t, src.machine, dst.machine, leave)
	return true
}

// failQueuedLocked moves a still-queued ticket straight to JobFailed (a
// permanent admission rejection), reporting whether it left the queue.
func (c *Cluster) failQueuedLocked(t *Ticket, err error) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != JobQueued {
		return true // canceled concurrently; drop either way
	}
	t.state = JobFailed
	t.err = err
	close(t.done)
	return true
}

// jobConfig builds the source-side migration config for t: the job override
// or BaseConfig, with a fresh inner policy from PolicyFactory when set, all
// wrapped in the shared-budget decorator. PolicyFactory wins over a bare
// Policy even when both are set: concurrent jobs must never share one
// stateful policy instance, and only the factory can mint a fresh one per
// migration. A bare Policy is used as-is and therefore must be stateless.
func (c *Cluster) jobConfig(t *Ticket) core.Config {
	cfg := c.opts.BaseConfig
	if t.job.Config != nil {
		cfg = *t.job.Config
	}
	inner := cfg.Policy
	if c.opts.PolicyFactory != nil {
		inner = c.opts.PolicyFactory()
	}
	cfg.Policy = &core.BudgetPolicy{Inner: inner, Budget: c.budget}
	return cfg
}

// runJob drives one admitted migration end to end: optional pre-sync, then
// MigrateOut against a dedicated listener served by the destination machine.
// leave releases the budget share admitLocked reserved; it must run BEFORE
// finishJob's re-dispatch or a MinShare-deferred job would still see this
// migration holding a share and never start (leave is idempotent, so the
// deferred call is just a safety net for panics).
func (c *Cluster) runJob(t *Ticket, src, dst *hostd.Machine, leave func()) {
	cfg := c.jobConfig(t)
	defer leave()

	if t.job.PreSync {
		sr, err := c.preSync(t, src, dst, cfg)
		t.mu.Lock()
		t.sync, t.syncE = sr, err
		t.mu.Unlock()
	}

	// Swarm fan-out: start sidecar serve sessions on nominated peers and
	// allow them in the announce. With no willing peers the flag stays off
	// and the migration runs exactly as before.
	var swarmAddrs []string
	if c.opts.Swarm && cfg.Dedup {
		var stopPeers func()
		swarmAddrs, stopPeers = c.startSwarmPeers(t)
		defer stopPeers()
		cfg.Swarm = len(swarmAddrs) > 0
	}

	l, err := c.opts.Listen()
	if err != nil {
		leave()
		c.finishJob(t, nil, fmt.Errorf("cluster: listen: %w", err))
		return
	}
	destErr := make(chan error, 1)
	go func() {
		// Local-only knobs ride along; negotiated ones (streams, compress)
		// arrive in the announce, which an unconfigured receiver adopts.
		// Swarm peer addresses are local to the destination: it engages them
		// only when the announce carries the swarm capability.
		dcfg := core.Config{
			Clock: cfg.Clock, Workers: cfg.Workers, MaxExtentBlocks: cfg.MaxExtentBlocks,
			SwarmPeers: swarmAddrs,
		}
		_, err := dst.ServeOne(l, dcfg)
		destErr <- err
	}()
	rep, err := src.MigrateOut(t.job.Domain, dst.Name, l.Addr().String(), cfg)
	// Close the listener before collecting the destination: if the source
	// died without ever dialing (or while the destination is parked waiting
	// for a reconnect that cannot come), the accept path must be unblocked.
	l.Close()
	derr := <-destErr
	if err == nil && derr != nil {
		err = fmt.Errorf("cluster: destination %s: %w", dst.Name, derr)
	}
	leave()
	c.finishJob(t, rep, err)
}

// preSync runs the job's incremental pre-sync leg on its own listener.
func (c *Cluster) preSync(t *Ticket, src, dst *hostd.Machine, cfg core.Config) (*hostd.SyncReport, error) {
	l, err := c.opts.Listen()
	if err != nil {
		return nil, fmt.Errorf("cluster: presync listen: %w", err)
	}
	destErr := make(chan error, 1)
	go func() {
		_, err := dst.ServeSync(l)
		destErr <- err
	}()
	sr, err := src.SyncOut(t.job.Domain, dst.Name, l.Addr().String(), cfg)
	l.Close() // unblock the acceptor when the source never dialed
	derr := <-destErr
	if err == nil && sr != nil && sr.Blocks == 0 {
		return sr, nil // nothing diverged: no connection was opened
	}
	if err == nil && derr != nil {
		err = derr
	}
	return sr, err
}

// finishJob releases t's reservations, refreshes both endpoints' loads,
// records the outcome, and re-dispatches the queue.
func (c *Cluster) finishJob(t *Ticket, rep *metrics.Report, err error) {
	c.mu.Lock()
	if src := c.members[t.job.From]; src != nil {
		src.runningOut--
		c.heartbeatLocked(src)
	}
	if dst := c.members[t.Target()]; dst != nil {
		dst.runningIn--
		c.heartbeatLocked(dst)
	}
	c.running--
	c.mu.Unlock()

	t.mu.Lock()
	t.report = rep
	t.err = err
	if err != nil {
		t.state = JobFailed
	} else {
		t.state = JobDone
	}
	close(t.done)
	t.mu.Unlock()

	c.mu.Lock()
	c.dispatchLocked()
	c.mu.Unlock()
}
