package cluster

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"bbmig/internal/blockdev"
	"bbmig/internal/core"
	"bbmig/internal/hostd"
	"bbmig/internal/workload"
)

const (
	tBlocks = 512
	tPages  = 32
)

// newFleet builds n machines named host0..host(n-1), registered with cap.
func newFleet(t *testing.T, c *Cluster, n, capacity int) []*hostd.Machine {
	t.Helper()
	var ms []*hostd.Machine
	for i := 0; i < n; i++ {
		m := hostd.NewMachine("host" + string(rune('0'+i)))
		if err := c.Register(m, MemberOptions{Capacity: capacity}); err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	return ms
}

// addDomain creates a workload-free domain and writes a recognizable
// pattern so migrated bytes are verifiable.
func addDomain(t *testing.T, m *hostd.Machine, name string, writes int) {
	t.Helper()
	d, err := m.CreateDomain(name, tBlocks, tPages, workload.Web, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, blockdev.BlockSize)
	for i := 0; i < writes; i++ {
		workload.FillBlock(buf, i, 7)
		if err := d.Submit(blockdev.Request{Op: blockdev.Write, Block: i, Domain: d.VM().DomainID, Data: buf}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPlacementScoring(t *testing.T) {
	c := New(Options{})
	ms := newFleet(t, c, 3, 4)
	// host0 is the source; host1 carries 3 domains, host2 one: host2 wins on
	// headroom.
	addDomain(t, ms[1], "a", 4)
	addDomain(t, ms[1], "b", 4)
	addDomain(t, ms[1], "c", 4)
	addDomain(t, ms[2], "d", 4)
	for _, m := range ms {
		if _, err := c.Heartbeat(m.Name); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.Place("host0")
	if err != nil {
		t.Fatal(err)
	}
	if got != "host2" {
		t.Fatalf("placed on %s, want host2", got)
	}
	// Excluding host2 falls back to host1.
	if got, err = c.Place("host0", "host2"); err != nil || got != "host1" {
		t.Fatalf("place with exclusion = %s, %v; want host1", got, err)
	}
	// A draining host is no candidate.
	c.mu.Lock()
	c.members["host2"].draining = true
	c.mu.Unlock()
	if got, err = c.Place("host0"); err != nil || got != "host1" {
		t.Fatalf("place around draining host = %s, %v; want host1", got, err)
	}
	// Full hosts are no candidates: fill host1 to capacity.
	addDomain(t, ms[1], "e", 1)
	if _, err := c.Heartbeat("host1"); err != nil {
		t.Fatal(err)
	}
	if _, err = c.Place("host0"); err == nil {
		t.Fatal("placement succeeded with every host full or draining")
	}
}

// TestPlacementContentOverlap pins the content-overlap weight: with
// otherwise-equal candidates, the host retaining the moving domain's disk
// wins placement (the move there is incremental and content-deduplicable),
// beating the lexicographic tiebreak that would otherwise pick the earlier
// name. Domain-less placement ignores the signal.
func TestPlacementContentOverlap(t *testing.T) {
	c := New(Options{})
	ms := newFleet(t, c, 3, 4)
	// host2 once hosted g and migrated it to host0, so host2 retains g's
	// disk; host1 is an equally empty cold candidate.
	addDomain(t, ms[2], "g", 8)
	tk, err := c.Submit(Job{Domain: "g", From: "host2", To: "host0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if _, err := c.Heartbeat(m.Name); err != nil {
			t.Fatal(err)
		}
	}
	if got := ms[2].Load().Retained; len(got) != 1 || got[0] != "g" {
		t.Fatalf("host2 retained = %v, want [g]", got)
	}
	if got, err := c.PlaceDomain("g", "host0"); err != nil || got != "host2" {
		t.Fatalf("PlaceDomain(g) = %s, %v; want host2 (retains g)", got, err)
	}
	if got, err := c.Place("host0"); err != nil || got != "host1" {
		t.Fatalf("Place without domain = %s, %v; want host1 (lexicographic)", got, err)
	}
}

func TestPlacementStaleness(t *testing.T) {
	now := time.Unix(1000, 0)
	c := New(Options{
		HeartbeatTTL: time.Minute,
		Now:          func() time.Time { return now },
	})
	newFleet(t, c, 2, 4)
	if got, err := c.Place("host0"); err != nil || got != "host1" {
		t.Fatalf("place = %s, %v", got, err)
	}
	now = now.Add(2 * time.Minute) // host1's heartbeat ages out
	if _, err := c.Place("host0"); err == nil {
		t.Fatal("stale member still placeable")
	}
	if !c.Status().Members[1].Stale {
		t.Fatal("status does not mark host1 stale")
	}
	if _, err := c.Heartbeat("host1"); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Place("host0"); err != nil || got != "host1" {
		t.Fatalf("place after heartbeat = %s, %v", got, err)
	}
}

func TestSubmitMovesDomain(t *testing.T) {
	c := New(Options{})
	ms := newFleet(t, c, 2, 4)
	addDomain(t, ms[0], "guest", 64)
	ticket, err := c.Submit(Job{Domain: "guest", From: "host0", Priority: PriorityNormal})
	if err != nil {
		t.Fatal(err)
	}
	if err := ticket.Wait(); err != nil {
		t.Fatal(err)
	}
	if st := ticket.State(); st != JobDone {
		t.Fatalf("state %v, want done", st)
	}
	if ticket.Target() != "host1" {
		t.Fatalf("landed on %s", ticket.Target())
	}
	if ticket.Report() == nil || ticket.Report().DiskIterations[0].Units != tBlocks {
		t.Fatalf("unexpected report %+v", ticket.Report())
	}
	if _, ok := ms[1].Domain("guest"); !ok {
		t.Fatal("guest not hosted on host1")
	}
	if _, ok := ms[0].Domain("guest"); ok {
		t.Fatal("guest still hosted on host0")
	}
	st := c.Status()
	if st.Running != 0 || st.Queued != 0 {
		t.Fatalf("status %+v after completion", st)
	}
	if st.Members[1].Load.Domains != 1 {
		t.Fatalf("host1 load %+v not refreshed", st.Members[1].Load)
	}
}

func TestPriorityOrderAndCancel(t *testing.T) {
	c := New(Options{MaxTotal: 1, MaxPerHost: 1})
	ms := newFleet(t, c, 2, 8)
	for _, d := range []string{"d1", "d2", "d3"} {
		addDomain(t, ms[0], d, 8)
	}
	// d1 starts immediately (queue empty); d2 queues at low priority, d3 at
	// evacuate priority and must run before d2.
	t1, err := c.Submit(Job{Domain: "d1", From: "host0", Priority: PriorityLow})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := c.Submit(Job{Domain: "d2", From: "host0", Priority: PriorityLow})
	if err != nil {
		t.Fatal(err)
	}
	t3, err := c.Submit(Job{Domain: "d3", From: "host0", Priority: PriorityEvacuate})
	if err != nil {
		t.Fatal(err)
	}
	if err := t3.Wait(); err != nil {
		t.Fatal(err)
	}
	// The evacuate job finished; the low-priority one behind it must still
	// be queued or just started — it cannot have finished first.
	if t2.State() == JobDone {
		t.Fatal("low-priority job overtook the evacuate job")
	}
	if err := t2.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := t1.Wait(); err != nil {
		t.Fatal(err)
	}

	// Cancellation: queue one more and cancel it before it can start.
	addDomain(t, ms[0], "d4", 8)
	addDomain(t, ms[0], "d5", 8)
	g1, err := c.Submit(Job{Domain: "d4", From: "host0"})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := c.Submit(Job{Domain: "d5", From: "host0"})
	if err != nil {
		t.Fatal(err)
	}
	if g2.State() == JobQueued {
		if !g2.Cancel() {
			t.Fatal("queued job refused cancellation")
		}
		if g2.State() != JobCanceled || g2.Err() == nil {
			t.Fatalf("canceled ticket state %v err %v", g2.State(), g2.Err())
		}
	}
	if err := g1.Wait(); err != nil {
		t.Fatal(err)
	}
	if g2.State() == JobCanceled {
		if _, ok := ms[0].Domain("d5"); !ok {
			t.Fatal("canceled job still migrated its domain")
		}
	}
}

func TestPinnedDestinationCapacity(t *testing.T) {
	c := New(Options{})
	a := hostd.NewMachine("hostA")
	b := hostd.NewMachine("hostB")
	if err := c.Register(a, MemberOptions{Capacity: 8}); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(b, MemberOptions{Capacity: 1}); err != nil {
		t.Fatal(err)
	}
	addDomain(t, a, "d1", 8)
	addDomain(t, b, "full", 8)
	for _, n := range []string{"hostA", "hostB"} {
		if _, err := c.Heartbeat(n); err != nil {
			t.Fatal(err)
		}
	}
	// hostB is at its registered capacity: a job pinned to it must fail
	// fast instead of overfilling the host or parking forever.
	ticket, err := c.Submit(Job{Domain: "d1", From: "hostA", To: "hostB"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ticket.Wait(); err == nil {
		t.Fatal("job pinned to a full host was admitted")
	}
	if st := ticket.State(); st != JobFailed {
		t.Fatalf("ticket state %v, want failed", st)
	}
	if _, ok := a.Domain("d1"); !ok {
		t.Fatal("domain left the source despite the rejection")
	}
}

func TestMinShareAdmission(t *testing.T) {
	gate := make(chan struct{})
	c := New(Options{
		GlobalBandwidth: 100e6,
		MinShare:        60e6, // only one migration fits the floor
		MaxTotal:        4,
	})
	ms := newFleet(t, c, 3, 8)
	addDomain(t, ms[0], "d1", 8)
	addDomain(t, ms[0], "d2", 8)
	hold := core.Config{OnFreeze: func() { <-gate }}
	t1, err := c.Submit(Job{Domain: "d1", From: "host0", Config: &hold})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := c.Submit(Job{Domain: "d2", From: "host0"})
	if err != nil {
		t.Fatal(err)
	}
	if st := t1.State(); st != JobRunning {
		t.Fatalf("first job %v, want running", st)
	}
	if st := t2.State(); st != JobQueued {
		t.Fatalf("second job %v, want queued behind the bandwidth floor", st)
	}
	close(gate)
	if err := t1.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestDrainEvacuatesHost(t *testing.T) {
	c := New(Options{MaxTotal: 2, MaxPerHost: 2})
	ms := newFleet(t, c, 4, 8)
	domains := []string{"d1", "d2", "d3", "d4"}
	for _, d := range domains {
		addDomain(t, ms[0], d, 32)
	}
	res, err := c.Drain("host0", DrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed()) != 0 {
		t.Fatalf("failed moves: %+v", res.Failed())
	}
	if len(res.Moves) != len(domains) {
		t.Fatalf("%d moves, want %d", len(res.Moves), len(domains))
	}
	if got := ms[0].Load().Domains; got != 0 {
		t.Fatalf("host0 still hosts %d domains", got)
	}
	targets := map[string]int{}
	for _, mv := range res.Moves {
		targets[mv.Target]++
		if mv.Target == "host0" {
			t.Fatal("a move landed back on the draining host")
		}
	}
	if len(targets) < 2 {
		t.Fatalf("evacuees all stacked on one host: %v", targets)
	}
	if res.Makespan <= 0 {
		t.Fatal("makespan not recorded")
	}
	// The drained host is out of the placement pool until Undrain.
	if to, err := c.Place("host1"); err == nil && to == "host0" {
		t.Fatal("drained host still receives placements")
	}
	if err := c.Undrain("host0"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place("host1"); err != nil {
		t.Fatal(err)
	}
}

func TestDrainPreSyncShrinksCutover(t *testing.T) {
	c := New(Options{})
	ms := newFleet(t, c, 2, 4)
	addDomain(t, ms[0], "guest", 200)
	res, err := c.Drain("host0", DrainOptions{PreSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed()) != 0 {
		t.Fatalf("failed moves: %+v", res.Failed())
	}
	mv := res.Moves[0]
	if mv.Sync == nil || mv.Sync.Blocks != tBlocks {
		t.Fatalf("pre-sync report %+v, want %d blocks", mv.Sync, tBlocks)
	}
	// Everything was pre-synced while the guest ran; the cutover migration's
	// first disk iteration ships only what diverged since — nothing here.
	if units := mv.Report.DiskIterations[0].Units; units != 0 {
		t.Fatalf("cutover first iteration sent %d blocks, want 0 after pre-sync", units)
	}
	if mv.Report.Scheme != "IM" {
		t.Fatalf("cutover scheme %q, want IM", mv.Report.Scheme)
	}
	// Destination actually holds the data.
	d, ok := ms[1].Domain("guest")
	if !ok {
		t.Fatal("guest not on host1")
	}
	buf := make([]byte, blockdev.BlockSize)
	want := make([]byte, blockdev.BlockSize)
	for i := 0; i < 200; i++ {
		workload.FillBlock(want, i, 7)
		if err := d.Disk().ReadBlock(i, buf); err != nil {
			t.Fatal(err)
		}
		if string(buf) != string(want) {
			t.Fatalf("block %d corrupted after pre-synced drain", i)
		}
	}
}

// proxiedListener makes a cluster migration dial through a fault-injecting
// proxy: Addr returns the proxy's address while Accept serves the real
// listener behind it.
type proxiedListener struct {
	net.Listener
	proxy *flakyProxy
}

func (p *proxiedListener) Addr() net.Addr { return p.proxy.l.Addr() }

func TestDrainSurvivesLinkFault(t *testing.T) {
	var proxies []*flakyProxy
	var mu sync.Mutex
	c := New(Options{
		Listen: func() (net.Listener, error) {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			// Cut the first connection mid disk pre-copy; later connections
			// (the resume re-dial) pass through clean.
			p := newFlakyProxy(l.Addr().String(), int64(tBlocks)*blockdev.BlockSize/2)
			mu.Lock()
			proxies = append(proxies, p)
			mu.Unlock()
			return &proxiedListener{Listener: l, proxy: p}, nil
		},
	})
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, p := range proxies {
			p.close()
		}
	}()
	ms := newFleet(t, c, 2, 4)
	addDomain(t, ms[0], "guest", 300)
	res, err := c.Drain("host0", DrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed()) != 0 {
		t.Fatalf("drain did not survive the link fault: %+v", res.Failed())
	}
	mv := res.Moves[0]
	if mv.Attempts != 1 {
		t.Fatalf("move took %d scheduler attempts; the resume path should have absorbed the fault", mv.Attempts)
	}
	if mv.Report == nil || mv.Report.Retries < 1 {
		t.Fatalf("report %+v records no resume retry", mv.Report)
	}
	if _, ok := ms[1].Domain("guest"); !ok {
		t.Fatal("guest not on host1 after faulted drain")
	}
}

func TestRebalance(t *testing.T) {
	c := New(Options{})
	ms := newFleet(t, c, 3, 8)
	for _, d := range []string{"d1", "d2", "d3", "d4", "d5", "d6"} {
		addDomain(t, ms[0], d, 8)
	}
	res, err := c.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	for _, mv := range res.Moves {
		if mv.Err != nil {
			t.Fatalf("rebalance move %+v failed: %v", mv, mv.Err)
		}
	}
	var counts []int
	for _, m := range ms {
		counts = append(counts, m.Load().Domains)
	}
	for _, n := range counts {
		if n != 2 {
			t.Fatalf("rebalance left domain counts %v, want [2 2 2]", counts)
		}
	}
}

// flakyProxy forwards TCP connections to backend, cutting the first one
// after capBytes of client→backend traffic; later connections pass through
// untouched. (Mirrors the hostd test helper.)
type flakyProxy struct {
	l       net.Listener
	backend string
	cap     int64
	first   sync.Once
	wg      sync.WaitGroup
}

func newFlakyProxy(backend string, capBytes int64) *flakyProxy {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	p := &flakyProxy{l: l, backend: backend, cap: capBytes}
	go p.serve()
	return p
}

func (p *flakyProxy) close() {
	p.l.Close()
	p.wg.Wait()
}

func (p *flakyProxy) serve() {
	for {
		client, err := p.l.Accept()
		if err != nil {
			return
		}
		flaky := false
		p.first.Do(func() { flaky = true })
		p.wg.Add(1)
		go p.forward(client, flaky)
	}
}

func (p *flakyProxy) forward(client net.Conn, flaky bool) {
	defer p.wg.Done()
	server, err := net.Dial("tcp", p.backend)
	if err != nil {
		client.Close()
		return
	}
	kill := func() {
		client.Close()
		server.Close()
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if flaky {
			io.CopyN(server, client, p.cap)
			kill()
			return
		}
		io.Copy(server, client)
		kill()
	}()
	go func() {
		defer wg.Done()
		io.Copy(client, server)
	}()
	wg.Wait()
}
