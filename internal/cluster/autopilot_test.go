package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"bbmig/internal/blockdev"
	"bbmig/internal/forecast"
	"bbmig/internal/hostd"
	"bbmig/internal/workload"
)

// stressFleet builds nHosts machines and nDomains tiny domains packed onto
// the first two hosts — the worst-case imbalance the autopilot must close.
func stressFleet(t *testing.T, c *Cluster, nHosts, nDomains int) []*hostd.Machine {
	t.Helper()
	var ms []*hostd.Machine
	for i := 0; i < nHosts; i++ {
		m := hostd.NewMachine(fmt.Sprintf("host%d", i))
		if err := c.Register(m, MemberOptions{Capacity: nDomains}); err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	buf := make([]byte, blockdev.BlockSize)
	for i := 0; i < nDomains; i++ {
		m := ms[i%2]
		d, err := m.CreateDomain(fmt.Sprintf("vm%03d", i), 64, 8, workload.Web, int64(i+1), false)
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; b < 4; b++ {
			workload.FillBlock(buf, b, 3)
			if err := d.Submit(blockdev.Request{Op: blockdev.Write, Block: b, Domain: d.VM().DomainID, Data: buf}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return ms
}

// TestAutopilotStress is the loop's concurrency gauntlet (run it with
// -race): a 200-domain fleet packed onto two of eight hosts, with heartbeat
// hammers, a concurrent drain + undrain, and manual submissions racing the
// autopilot. It must converge to spread <= 1 with no deadlock, every ticket
// terminal, and the shared budget drained back to zero active shares.
func TestAutopilotStress(t *testing.T) {
	const nHosts, nDomains = 8, 200
	c := New(Options{
		GlobalBandwidth: 512 << 20,
		MaxPerHost:      4,
		MaxTotal:        8,
		Forecast:        true,
	})
	ms := stressFleet(t, c, nHosts, nDomains)

	ap := c.StartAutopilot(AutopilotOptions{Interval: 10 * time.Millisecond, MaxMovesPerCycle: 8})

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Heartbeat hammers: the observation path races the scheduler's own
	// finish-time heartbeats and the autopilot's HeartbeatAll.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Heartbeat(fmt.Sprintf("host%d", rng.Intn(nHosts))); err != nil {
					t.Error(err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(int64(g))
	}

	// A drain races the autopilot: empty host2, then re-admit it.
	wg.Add(1)
	drainErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		time.Sleep(50 * time.Millisecond)
		if _, err := c.Drain("host2", DrainOptions{}); err != nil {
			drainErr <- err
			return
		}
		drainErr <- c.Undrain("host2")
	}()

	// Manual submissions race the planner's snapshots: some will lose the
	// race to an autopilot move of the same domain and error — that is the
	// point; every ticket that was accepted must still settle.
	var tickets []*Ticket
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 25; i++ {
			time.Sleep(5 * time.Millisecond)
			name := fmt.Sprintf("vm%03d", rng.Intn(nDomains))
			for _, m := range ms {
				if _, hosted := m.Domain(name); hosted {
					if tk, err := c.Submit(Job{Domain: name, From: m.Name, Priority: PriorityNormal}); err == nil {
						tickets = append(tickets, tk)
					}
					break
				}
			}
		}
	}()

	// Wait for convergence: spread <= 1 over schedulable hosts.
	deadline := time.Now().Add(90 * time.Second)
	for {
		st := c.Status()
		lo, hi := 1<<30, 0
		for _, m := range st.Members {
			if m.Draining {
				continue
			}
			if m.Load.Domains < lo {
				lo = m.Load.Domains
			}
			if m.Load.Domains > hi {
				hi = m.Load.Domains
			}
		}
		if hi-lo <= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no convergence: spread %d after 90s; status %+v", hi-lo, st)
		}
		time.Sleep(20 * time.Millisecond)
	}

	close(stop)
	wg.Wait()
	if err := <-drainErr; err != nil {
		t.Fatalf("drain leg: %v", err)
	}
	ap.Stop() // blocks until every autopilot move settles
	for _, tk := range tickets {
		select {
		case <-tk.Done():
		case <-time.After(60 * time.Second):
			t.Fatalf("manual ticket for %q stuck in state %v", tk.Job().Domain, tk.State())
		}
	}

	// Budget integrity: every Join has left; the per-migration share is
	// back to the whole pool.
	if got := c.Budget().Active(); got != 0 {
		t.Fatalf("budget leak: %d active shares after quiescence", got)
	}
	if share, total := c.Budget().Share(), c.Budget().Total(); share != total {
		t.Fatalf("budget share %d != total %d with nothing in flight", share, total)
	}

	// No domain lost or duplicated across the fleet.
	seen := make(map[string]string, nDomains)
	for _, m := range ms {
		for _, d := range m.Domains() {
			if prev, dup := seen[d]; dup {
				t.Fatalf("domain %s on both %s and %s", d, prev, m.Name)
			}
			seen[d] = m.Name
		}
	}
	if len(seen) != nDomains {
		t.Fatalf("fleet holds %d domains, want %d", len(seen), nDomains)
	}

	st := ap.Stats()
	if st.Completed == 0 {
		t.Fatalf("autopilot completed no moves: %+v", st)
	}
	if st.InFlight != 0 {
		t.Fatalf("autopilot reports %d in-flight after Stop: %+v", st.InFlight, st)
	}
}

// TestTroughDeferral drives the forecast-fed admission path on a synthetic
// clock: a domain with a square-wave write rate submits a migration mid-high
// phase and must be parked on a NotBefore in the predicted trough, while a
// high-priority job sails through immediately.
func TestTroughDeferral(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	fakeNow := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}

	c := New(Options{
		Forecast:       true,
		ForecastConfig: forecast.Config{Buckets: 16},
		Now:            fakeNow,
	})
	a := hostd.NewMachine("hostA")
	b := hostd.NewMachine("hostB")
	if err := c.Register(a, MemberOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(b, MemberOptions{}); err != nil {
		t.Fatal(err)
	}
	d, err := a.CreateDomain("vmA", tBlocks, tPages, workload.Web, 1, false)
	if err != nil {
		t.Fatal(err)
	}

	// Square wave: 16 beats of 30 s per period (8 min), writes only in the
	// first half. Six periods of history, ending mid-high-phase.
	const beat = 30 * time.Second
	buf := make([]byte, blockdev.BlockSize)
	writeBurst := func(n int) {
		for i := 0; i < n; i++ {
			workload.FillBlock(buf, i%tBlocks, 5)
			if err := d.Submit(blockdev.Request{Op: blockdev.Write, Block: i % tBlocks, Domain: d.VM().DomainID, Data: buf}); err != nil {
				t.Fatal(err)
			}
		}
	}
	beats := 6*16 + 4 // six periods, then 4 beats into the high phase
	for i := 0; i < beats; i++ {
		if (i%16)/8 == 0 {
			writeBurst(60) // high phase: 2 blocks/s
		}
		advance(beat)
		if _, err := c.Heartbeat("hostA"); err != nil {
			t.Fatal(err)
		}
	}

	mdl, ok := c.DomainModel("vmA")
	if !ok {
		t.Fatal("no forecast model for vmA")
	}
	if p, ok := mdl.Period(); !ok || p < 6*time.Minute || p > 10*time.Minute {
		t.Fatalf("period = %v (ok=%v), want ~8m", p, ok)
	}

	// Mid-high-phase submit: must be deferred into the coming trough.
	tk, err := c.Submit(Job{Domain: "vmA", From: "hostA", Priority: PriorityNormal})
	if err != nil {
		t.Fatal(err)
	}
	if st := tk.State(); st != JobQueued {
		t.Fatalf("mid-high-phase job state = %v, want queued on a trough deferral", st)
	}
	nb := tk.NotBefore()
	if nb.IsZero() || !nb.After(fakeNow()) {
		t.Fatalf("NotBefore = %v, want a future trough (now %v)", nb, fakeNow())
	}
	if wait := nb.Sub(fakeNow()); wait > 8*time.Minute {
		t.Fatalf("deferral %v exceeds one period", wait)
	}
	if st := c.Status(); st.Deferred != 1 {
		t.Fatalf("Status.Deferred = %d, want 1", st.Deferred)
	}

	// The forecast also answers the (domain, link-share) question directly.
	if cv, err := c.PredictMigration("vmA"); err != nil || cv.Iterations < 1 {
		t.Fatalf("PredictMigration = %+v, %v", cv, err)
	}

	// Time reaches the trough: the job dispatches and completes.
	advance(nb.Sub(fakeNow()) + time.Second)
	c.Dispatch()
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	if tk.Target() != "hostB" {
		t.Fatalf("vmA landed on %q, want hostB", tk.Target())
	}

	// High-priority work is never trough-deferred: move it back during the
	// next high phase.
	advance(8 * time.Minute) // arbitrary; rebuild phase by heartbeating writes
	for i := 0; i < 20; i++ {
		advance(beat)
		if _, err := c.Heartbeat("hostB"); err != nil {
			t.Fatal(err)
		}
	}
	tk2, err := c.Submit(Job{Domain: "vmA", From: "hostB", Priority: PriorityHigh})
	if err != nil {
		t.Fatal(err)
	}
	if err := tk2.Wait(); err != nil {
		t.Fatal(err)
	}
	if !tk2.NotBefore().IsZero() {
		t.Fatalf("high-priority job was trough-deferred to %v", tk2.NotBefore())
	}
}
