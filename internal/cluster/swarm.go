package cluster

import (
	"sort"

	"bbmig/internal/hostd"
)

// Swarm orchestration: when Options.Swarm is on and a job's config runs
// content dedup, the scheduler nominates peer machines whose indexes
// plausibly hold the moving domain's content, starts one sidecar
// swarm-serve session per nominee (hostd.ServeSwarm, paced from the shared
// budget), and hands the session addresses to the destination config. The
// migration channel is untouched; tearing the sessions down just reverts
// the migration to single-source dedup.

// swarmNominee ranks one candidate peer.
type swarmNominee struct {
	machine *hostd.Machine
	name    string
	overlap float64
	content int
}

// nominateSwarmPeers picks up to max peer machines for a migration of
// domain from src to dst, best content first. The ranking reuses
// placement's content-overlap signal — a retained copy of the very domain
// is the strongest evidence a member's index can answer its adverts — and
// falls back to how much content the member's index covers at all (hosted
// plus retained disks), which is what serves clone siblings' template
// blocks. Members holding nothing, the endpoints themselves, and
// draining/stale members are never nominated.
func (c *Cluster) nominateSwarmPeers(domain, src, dst string, max int) []swarmNominee {
	c.mu.Lock()
	defer c.mu.Unlock()
	var nominees []swarmNominee
	for _, m := range c.members {
		if m.name == src || m.name == dst || m.draining || !c.aliveLocked(m) {
			continue
		}
		content := m.load.Domains + m.load.RetainedDisks
		if content == 0 {
			continue // an empty index answers only misses; don't bother dialing
		}
		nominees = append(nominees, swarmNominee{
			machine: m.machine,
			name:    m.name,
			overlap: contentOverlap(m, domain),
			content: content,
		})
	}
	sort.Slice(nominees, func(i, j int) bool {
		if nominees[i].overlap != nominees[j].overlap {
			return nominees[i].overlap > nominees[j].overlap
		}
		if nominees[i].content != nominees[j].content {
			return nominees[i].content > nominees[j].content
		}
		return nominees[i].name < nominees[j].name
	})
	if len(nominees) > max {
		nominees = nominees[:max]
	}
	return nominees
}

// startSwarmPeers nominates peers for t's migration and starts one sidecar
// serve session per nominee, returning the session addresses and a cleanup
// that closes every listener (unblocking acceptors whose destination never
// dialed; accepted sessions end when the destination closes its sidecar).
// Peer serving draws shares from the cluster budget, so swarm uplinks and
// ordinary migrations dilute each other honestly. Returns no addresses when
// nothing is worth nominating — the migration then runs single-source.
func (c *Cluster) startSwarmPeers(t *Ticket) ([]string, func()) {
	nominees := c.nominateSwarmPeers(t.job.Domain, t.job.From, t.Target(), c.opts.SwarmPeers)
	var addrs []string
	var closers []func()
	for _, n := range nominees {
		l, err := c.opts.Listen()
		if err != nil {
			continue
		}
		machine := n.machine
		go func() { _ = machine.ServeSwarm(l, c.budget) }()
		addrs = append(addrs, l.Addr().String())
		closers = append(closers, func() { l.Close() })
	}
	cleanup := func() {
		for _, cl := range closers {
			cl()
		}
	}
	return addrs, cleanup
}
